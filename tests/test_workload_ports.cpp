// Port-parity pins for the three native-backend bench ports
// (message_passing, mutex_noise, quantum_hybrid → workload campaigns):
//
//  1. ENGINE-DIRECT PARITY — at pinned seeds, the workload path
//     (run_scenario_trial) reports metrics bit-identical to driving the
//     engine directly with the preset's configuration, i.e. exactly what
//     the pre-port benches computed per trial.
//  2. GOLDEN BASELINE — a committed cells file
//     (tests/baselines/workload_ports.jsonl, generated once with
//     bench/campaign_worker at the parameters below) is reproduced
//     byte-for-byte by re-running the same grid, so the ported values can
//     never drift silently (the fig1 pattern).
//
// Regenerate the golden after an INTENDED behavior change with:
//   ./bench/campaign_worker --scenarios=mp-abd,mp-abd-crash2,mutex-noise,\
//     hybrid-quantum,hybrid-q4,hybrid-q8 --ns=4,8 --trials=12 \
//     --seed=20000625 --shard=0/1 --cells=tests/baselines/workload_ports.jsonl
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "msg/abd_sim.h"
#include "mutex/fast_mutex.h"
#include "noise/catalog.h"
#include "scenario/scenario.h"
#include "sched/hybrid.h"
#include "sim/trial_executor.h"

namespace leancon {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// The single observation of a sample metric in a one-trial outcome.
double observed(const trial_outcome& out, const std::string& name) {
  const summary& s = out.metrics.sample(name);
  EXPECT_EQ(s.count(), 1u) << name;
  return s.mean();
}

TEST(WorkloadPorts, MpAbdMatchesEngineDirectAtPinnedSeeds) {
  // The exact per-trial values the pre-port message_passing bench computed
  // from mp_result must flow through the workload unchanged.
  scenario_params params;
  params.n = 8;
  for (const std::uint64_t seed : {24u, 25u, 19937u}) {
    const trial_outcome out = run_scenario_trial("mp-abd", params, seed);

    mp_config config;  // the mp-abd preset's configuration, replicated
    config.inputs = split_inputs(params.n);
    config.net = figure1_params(make_exponential(1.0));
    config.protocol = protocol_kind::lean;
    config.seed = seed;
    const mp_result mp = run_message_passing(config);

    std::uint64_t register_ops = 0;
    for (const auto& proc : mp.processes) {
      register_ops += proc.register_ops;
    }
    // The success notion is the pre-port bench's: all LIVE processes
    // decided, with the decision-time columns taken from the same fields.
    EXPECT_EQ(out.decided, mp.all_live_decided) << seed;
    EXPECT_FALSE(out.violation) << seed;
    EXPECT_EQ(observed(out, "messages"),
              static_cast<double>(mp.total_messages))
        << seed;
    EXPECT_EQ(observed(out, "register_ops"),
              static_cast<double>(register_ops))
        << seed;
    EXPECT_EQ(observed(out, "msgs_per_reg_op"),
              static_cast<double>(mp.total_messages) /
                  static_cast<double>(register_ops))
        << seed;
    EXPECT_EQ(observed(out, "reg_ops_per_proc"),
              static_cast<double>(register_ops) /
                  static_cast<double>(params.n))
        << seed;
    EXPECT_EQ(observed(out, "first_time"), mp.first_decision_time) << seed;
    EXPECT_EQ(observed(out, "last_time"), mp.last_decision_time) << seed;
  }
}

TEST(WorkloadPorts, MpAbdCrashFamilyCapsAtAStrictMinority) {
  scenario_params params;
  params.n = 8;
  const trial_outcome out =
      run_scenario_trial("mp-abd-crash2", params, 77);
  EXPECT_EQ(observed(out, "survivors"), 6.0);
  EXPECT_FALSE(out.violation);

  // At n = 4 the requested 3 crashes cap to (n - 1) / 2 = 1, so majorities
  // still form and the run completes.
  params.n = 4;
  const trial_outcome capped =
      run_scenario_trial("mp-abd-crash3", params, 78);
  EXPECT_EQ(observed(capped, "survivors"), 3.0);
  EXPECT_FALSE(capped.violation);
}

TEST(WorkloadPorts, MutexNoiseMatchesEngineDirectAtPinnedSeeds) {
  scenario_params params;
  params.n = 4;
  for (const std::uint64_t seed : {25u, 26u, 4099u}) {
    const trial_outcome out = run_scenario_trial("mutex-noise", params, seed);

    mutex_config config;  // the mutex-noise preset's configuration
    config.processes = params.n;
    config.entries_per_process = 4;
    config.sched = figure1_params(make_exponential(1.0));
    config.seed = seed;
    const mutex_result mx = run_mutex(config);

    EXPECT_EQ(out.decided, mx.all_finished) << seed;
    EXPECT_EQ(out.violation,
              mx.overlap_violations > 0 || mx.canary_violations > 0)
        << seed;
    EXPECT_EQ(observed(out, "total_ops"), static_cast<double>(mx.total_ops))
        << seed;
    EXPECT_EQ(observed(out, "entries"),
              static_cast<double>(mx.total_entries))
        << seed;
    EXPECT_EQ(observed(out, "fast_path_frac"),
              static_cast<double>(mx.fast_path_entries) /
                  static_cast<double>(mx.total_entries))
        << seed;
    // The port's per-entry columns (the pre-port bench's ops/entry and
    // sim-time/entry) derive from the same engine values.
    EXPECT_EQ(observed(out, "ops_per_entry"),
              static_cast<double>(mx.total_ops) /
                  static_cast<double>(mx.total_entries))
        << seed;
    EXPECT_EQ(observed(out, "time_per_entry"),
              mx.finish_time / static_cast<double>(mx.total_entries))
        << seed;
  }
}

TEST(WorkloadPorts, HybridQuantumMatchesEngineDirectAtPinnedSeeds) {
  scenario_params params;
  params.n = 4;
  for (const std::uint64_t seed : {26u, 27u, 65537u}) {
    const trial_outcome out =
        run_scenario_trial("hybrid-quantum", params, seed);

    hybrid_config config;  // the hybrid-quantum preset's configuration
    config.inputs = split_inputs(params.n);
    config.priorities.resize(params.n);
    for (std::size_t i = 0; i < params.n; ++i) {
      config.priorities[i] = static_cast<int>(i % 2);
    }
    config.quantum = 8;
    config.initial_quantum_used.assign(params.n, seed % config.quantum);
    const auto adversary = make_random_preemption(0.3, seed);
    const hybrid_result hy = run_hybrid(config, *adversary);

    EXPECT_EQ(out.decided, hy.all_decided) << seed;
    EXPECT_EQ(observed(out, "total_ops"), static_cast<double>(hy.total_ops))
        << seed;
    EXPECT_EQ(observed(out, "max_ops"),
              static_cast<double>(hy.max_ops_per_process))
        << seed;
    EXPECT_EQ(observed(out, "preemptions"),
              static_cast<double>(hy.preemptions))
        << seed;
    EXPECT_EQ(observed(out, "dispatches"),
              static_cast<double>(hy.dispatches))
        << seed;
    EXPECT_LE(observed(out, "max_ops"), 12.0) << seed;  // Theorem 14
  }
}

TEST(WorkloadPorts, HybridSweepFamilyHonorsTheorem14FromQuantum8) {
  // The seed-sampled quantum family: every draw at quantum >= 8 decides
  // within 12 ops; the location rollup exposes the worst case.
  scenario_params params;
  params.n = 8;
  for (const char* key : {"hybrid-q8", "hybrid-q12", "hybrid-q16"}) {
    trial_stats stats;
    for (std::uint64_t t = 0; t < 24; ++t) {
      const trial_outcome out =
          run_scenario_trial(key, params, trial_seed(99, t));
      EXPECT_TRUE(out.decided) << key << " trial " << t;
      EXPECT_FALSE(out.violation) << key << " trial " << t;
      stats.record(out);
    }
    EXPECT_LE(stats.max_ops().max(), 12.0) << key;
  }
}

TEST(WorkloadPorts, GoldenCellsFileReproducesByteForByte) {
  // The committed golden was produced by campaign_worker (header comment);
  // the identical grid re-run here must rewrite it byte-for-byte.
  campaign_grid grid;
  grid.scenarios = {"mp-abd", "mp-abd-crash2", "mutex-noise",
                    "hybrid-quantum", "hybrid-q4", "hybrid-q8"};
  grid.ns = {4, 8};
  grid.trials = 12;
  grid.seed = 20000625;

  const std::string golden_path = std::string(LEANCON_SOURCE_DIR) +
                                  "/tests/baselines/workload_ports.jsonl";
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty());

  const std::string fresh_path = testing::TempDir() + "workload_ports.jsonl";
  {
    campaign_io io(fresh_path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(grid, opts);
  }
  EXPECT_EQ(read_file(fresh_path), golden)
      << "ported workload output drifted from the committed golden";

  // And the golden parses into exactly the grid's cells.
  std::size_t skipped = 0;
  const auto records = campaign_io::read_records(golden_path, &skipped);
  EXPECT_EQ(skipped, 0u);
  EXPECT_EQ(records.size(), grid.scenarios.size() * grid.ns.size());
}

}  // namespace
}  // namespace leancon
