#include "core/combined_machine.h"

#include <gtest/gtest.h>

#include <memory>

#include "memory/sim_memory.h"
#include "test_util.h"
#include "util/rng.h"

namespace leancon {
namespace {

std::vector<std::unique_ptr<consensus_machine>> make_combined(
    const std::vector<int>& inputs, std::uint64_t r_max, std::uint64_t seed) {
  auto params = backup_params::for_processes(inputs.size());
  std::vector<std::unique_ptr<consensus_machine>> machines;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    machines.push_back(std::make_unique<combined_machine>(
        inputs[i], r_max, params, rng(seed, i + 1)));
  }
  return machines;
}

TEST(Combined, DefaultRMaxGrowsPolylog) {
  EXPECT_GT(default_r_max(1), 16u);
  EXPECT_LT(default_r_max(1u << 20), 4000u);
  EXPECT_GT(default_r_max(1u << 20), default_r_max(4));
}

TEST(Combined, UnanimousDecidesInLeanStageEightOps) {
  sim_memory mem;
  auto machines = make_combined({1, 1, 1}, 8, 5);
  rng sched(6);
  ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched));
  for (const auto& m : machines) {
    EXPECT_EQ(m->decision(), 1);
    EXPECT_EQ(m->steps(), 8u);
    auto* cm = dynamic_cast<combined_machine*>(m.get());
    ASSERT_NE(cm, nullptr);
    EXPECT_FALSE(cm->backup_entered());
  }
}

TEST(Combined, LockstepForcedIntoBackupStillAgrees) {
  // Strict alternation stalls the lean stage (FLP), the cutoff trips, and
  // the backup resolves the conflict. Safety must hold throughout.
  for (int trial = 0; trial < 30; ++trial) {
    sim_memory mem;
    auto machines = make_combined({0, 1}, /*r_max=*/3, 100 + trial);
    ASSERT_TRUE(
        testing::pattern_schedule_run(machines, mem, {0, 1}, 500000));
    ASSERT_EQ(machines[0]->decision(), machines[1]->decision());
    for (const auto& m : machines) {
      auto* cm = dynamic_cast<combined_machine*>(m.get());
      EXPECT_TRUE(cm->backup_entered());
    }
  }
}

TEST(Combined, TinyRMaxRandomSchedulesSafe) {
  rng sched(7);
  for (int trial = 0; trial < 100; ++trial) {
    sim_memory mem;
    auto machines = make_combined({0, 1, 0, 1}, /*r_max=*/1, 300 + trial);
    ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched));
    const int d = machines[0]->decision();
    for (const auto& m : machines) ASSERT_EQ(m->decision(), d);
  }
}

TEST(Combined, Theorem15Handoff_EarlyLeanDecisionForcesBackupInputs) {
  // Construct the hybrid scenario directly: one fast process decides in the
  // lean stage; a laggard with the opposite input exhausts its r_max and
  // must enter the backup ALREADY converted to the winner's bit.
  sim_memory mem;
  auto params = backup_params::for_processes(2);
  combined_machine fast(1, /*r_max=*/8, params, rng(1, 1));
  combined_machine slow(0, /*r_max=*/8, params, rng(1, 2));

  // Fast runs alone for two rounds and decides 1 at round 2.
  for (int i = 0; i < 8; ++i) fast.apply(mem.execute(0, fast.next_op()));
  ASSERT_TRUE(fast.done());
  ASSERT_EQ(fast.decision(), 1);

  // The slow process now runs. By Lemma 4 it decides b = 1 within a round —
  // but even if it ran to its cutoff, its preference would already be 1.
  int guard = 0;
  while (!slow.done() && guard++ < 100000) {
    slow.apply(mem.execute(1, slow.next_op()));
    if (slow.in_lean_stage()) {
      // After its first full round, the laggard must have adopted 1.
      if (slow.lean().round() >= 2) {
        ASSERT_EQ(slow.lean().preference(), 1);
      }
    }
  }
  ASSERT_TRUE(slow.done());
  EXPECT_EQ(slow.decision(), 1);
}

TEST(Combined, BackupInputsEqualLeanPreferenceAtCutoff) {
  // Drive a single machine to exhaustion and check the backup adopted the
  // final lean preference (Section 8's handoff rule).
  sim_memory mem;
  for (std::uint64_t r = 1; r <= 5; ++r) {
    mem.poke({space::race0, r}, 1);
    mem.poke({space::race1, r}, 1);
  }
  auto params = backup_params::for_processes(1);
  combined_machine m(1, /*r_max=*/3, params, rng(9));
  // Lean stage: 3 rounds * 4 ops, never decides (both arrays stay marked).
  for (int i = 0; i < 12; ++i) m.apply(mem.execute(0, m.next_op()));
  EXPECT_FALSE(m.in_lean_stage());
  EXPECT_TRUE(m.backup_entered());
  // Backup runs solo: must decide the carried preference (1).
  int guard = 0;
  while (!m.done() && guard++ < 100000) {
    m.apply(mem.execute(0, m.next_op()));
  }
  ASSERT_TRUE(m.done());
  EXPECT_EQ(m.decision(), 1);
}

TEST(Combined, StepsSumLeanAndBackup) {
  sim_memory mem;
  auto params = backup_params::for_processes(1);
  combined_machine m(0, /*r_max=*/2, params, rng(3));
  std::uint64_t count = 0;
  while (!m.done()) {
    m.apply(mem.execute(0, m.next_op()));
    ++count;
  }
  EXPECT_EQ(m.steps(), count);
}

TEST(Combined, LeanRoundIsZeroInBackupStage) {
  sim_memory mem;
  for (std::uint64_t r = 1; r <= 3; ++r) {
    mem.poke({space::race0, r}, 1);
    mem.poke({space::race1, r}, 1);
  }
  auto params = backup_params::for_processes(1);
  combined_machine m(0, /*r_max=*/2, params, rng(4));
  for (int i = 0; i < 8; ++i) m.apply(mem.execute(0, m.next_op()));
  EXPECT_TRUE(m.backup_entered());
  EXPECT_EQ(m.lean_round(), 0u);
}

TEST(Combined, ManyProcessesTinyCutoffAgree) {
  rng sched(15);
  for (std::size_t n : {3u, 5u, 9u}) {
    sim_memory mem;
    std::vector<int> inputs;
    for (std::size_t i = 0; i < n; ++i) {
      inputs.push_back(static_cast<int>(i % 2));
    }
    auto machines = make_combined(inputs, /*r_max=*/2, 777 + n);
    ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched,
                                             5'000'000));
    for (const auto& m : machines) {
      ASSERT_EQ(m->decision(), machines[0]->decision());
    }
  }
}

}  // namespace
}  // namespace leancon
