// Configuration fuzzing: hundreds of randomly drawn simulator setups —
// distribution x process count x protocol x adversary delays x failures x
// crash adversaries — each verified against the full invariant checker.
// This is the widest net for interaction bugs between modules.
#include <gtest/gtest.h>

#include "noise/catalog.h"
#include "sched/adversary.h"
#include "sched/crash_adversary.h"
#include "sim/simulator.h"

namespace leancon {
namespace {

distribution_ptr pick_distribution(rng& gen) {
  const auto catalog = figure1_catalog();
  // Also exercise the theorem distributions and ablation extras sometimes.
  switch (gen.below(catalog.size() + 3)) {
    case 6: return make_two_point(1.0, 2.0);
    case 7: return make_pareto(0.5, 2.5);
    case 8: return make_lognormal(0.0, 0.5);
    default: break;
  }
  return catalog[gen.below(catalog.size())].dist;
}

delay_adversary_ptr pick_adversary(rng& gen) {
  const double m = gen.uniform(0.1, 4.0);
  switch (gen.below(8)) {
    case 0: return nullptr;
    case 1: return make_zero_delays();
    case 2: return make_constant_delays(m);
    case 3: return make_alternating_delays(m);
    case 4: return make_staggered_delays(m, 1 + static_cast<int>(gen.below(8)));
    case 5: return make_random_bounded_delays(m, gen.next());
    case 6: return make_burst_delays(m, 2 + gen.below(16));
    default: return make_zeno_delays(m);
  }
}

crash_adversary_ptr pick_crashes(rng& gen, std::size_t n) {
  switch (gen.below(5)) {
    case 0: return make_kill_leader(gen.below(n), 1 + gen.below(4));
    case 1: return make_kill_winner(gen.below(n));
    case 2: return make_kill_poised(gen.below(n / 2 + 1));
    case 3: return make_kill_random(gen.below(n), 0.02, gen.next());
    default: return nullptr;
  }
}

TEST(Fuzz, RandomConfigurationsNeverViolateSafety) {
  rng gen(0xF0221);
  int decided_runs = 0;
  for (int trial = 0; trial < 300; ++trial) {
    const std::size_t n = 2 + gen.below(24);
    sim_config config;
    // Random input pattern (ensures unanimous patterns are covered too).
    const int pattern = static_cast<int>(gen.below(4));
    config.inputs.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      switch (pattern) {
        case 0: config.inputs[i] = static_cast<int>(i % 2); break;
        case 1: config.inputs[i] = 0; break;
        case 2: config.inputs[i] = 1; break;
        default: config.inputs[i] = static_cast<int>(gen.below(2));
      }
    }
    config.sched.noise = pick_distribution(gen);
    if (gen.bernoulli(0.3)) {
      config.sched.write_noise = pick_distribution(gen);
    }
    config.sched.adversary = pick_adversary(gen);
    config.sched.halt_probability = gen.bernoulli(0.3) ? gen.uniform(0.0, 0.05)
                                                       : 0.0;
    config.sched.starts =
        static_cast<start_mode>(gen.below(3));
    config.sched.stagger_step = gen.uniform(0.0, 2.0);
    config.sched.start_dither = 1e-8;
    config.protocol = static_cast<protocol_kind>(gen.below(3));
    if (config.protocol == protocol_kind::combined) {
      config.r_max = 1 + gen.below(16);
    }
    config.crashes = pick_crashes(gen, n);
    config.seed = gen.next();
    config.max_total_ops = 2'000'000;

    const auto result = simulate(config);
    ASSERT_TRUE(result.violations.empty())
        << "trial " << trial << " n=" << n << " dist "
        << config.sched.noise->name() << ": " << result.violations.front();
    if (result.any_decided) {
      ++decided_runs;
      for (const auto& p : result.processes) {
        if (p.decided) {
          ASSERT_EQ(p.decision, result.decision) << "trial " << trial;
        }
      }
    }
  }
  // The vast majority of random configurations must actually decide
  // (failures/crashes can wipe out small groups occasionally).
  EXPECT_GT(decided_runs, 260);
}

TEST(Fuzz, DegenerateConstantNoiseWithDitherStillSafe) {
  // constant(1) violates the model's non-degeneracy assumption; with start
  // dither the interleaving stays well-defined and safety must hold even if
  // termination may take until the op budget.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim_config config;
    config.inputs = split_inputs(6);
    config.sched = figure1_params(make_constant(1.0));
    config.seed = seed;
    config.max_total_ops = 200'000;
    const auto result = simulate(config);
    ASSERT_TRUE(result.violations.empty()) << "seed " << seed;
  }
}

TEST(Fuzz, ExtremeScaleSmoke) {
  // One large-n run end-to-end (the Figure 1 top point, scaled down).
  sim_config config;
  config.inputs = split_inputs(20000);
  config.sched = figure1_params(make_exponential(1.0));
  config.stop = stop_mode::first_decision;
  config.check_invariants = true;
  config.seed = 7;
  const auto result = simulate(config);
  EXPECT_TRUE(result.any_decided);
  EXPECT_TRUE(result.violations.empty());
}

}  // namespace
}  // namespace leancon
