// Misbehaving stand-in for campaign_worker, exec'd by tests/test_fleet.cpp
// through fleet_config::plan_hook to drive the supervisor's failure paths
// deterministically:
//
//   --mode=die     exit 1 immediately (a crash before any work)
//   --mode=usage   exit 2 (the worker's "re-running cannot help" code)
//   --mode=freeze  emit ONE valid heartbeat line (real pid + fingerprint of
//                  this exact argv, so the supervisor attributes it), ignore
//                  SIGTERM, and hang — the live-pid-but-stale-heartbeat case
//                  that forces the SIGTERM → grace → SIGKILL escalation
//
// Unknown flags are ignored so the supervisor's standard worker argv
// (--scenarios=..., --cells=...) passes through harmlessly.
#include <chrono>
#include <csignal>
#include <cstring>
#include <string>
#include <thread>

#include "obs/heartbeat.h"

int main(int argc, char** argv) {
  std::string mode = "die";
  std::string hb_path;
  std::string shard = "0/1";
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto value = [&arg](const char* prefix) -> const char* {
      const std::size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = value("--mode=")) mode = v;
    if (const char* v = value("--heartbeat=")) hb_path = v;
    if (const char* v = value("--shard=")) shard = v;
  }
  if (mode == "usage") return 2;
  if (mode == "freeze") {
    std::signal(SIGTERM, SIG_IGN);
    if (!hb_path.empty()) {
      leancon::obs::heartbeat hb(hb_path, /*interval_s=*/3600.0);
      hb.set_identity(shard, leancon::obs::argv_fingerprint(argc, argv));
      hb.flush_now();
      std::this_thread::sleep_for(std::chrono::seconds(600));
    } else {
      std::this_thread::sleep_for(std::chrono::seconds(600));
    }
    return 0;
  }
  return 1;  // mode=die
}
