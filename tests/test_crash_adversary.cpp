#include "sched/crash_adversary.h"

#include <gtest/gtest.h>

#include "noise/distribution.h"
#include "sim/simulator.h"

namespace leancon {
namespace {

std::vector<process_view> make_views(
    std::initializer_list<std::uint64_t> rounds) {
  std::vector<process_view> views;
  for (auto r : rounds) {
    process_view v;
    v.round = r;
    views.push_back(v);
  }
  return views;
}

TEST(KillLeader, KillsTheMaxRoundProcess) {
  auto adv = make_kill_leader(/*budget=*/2, /*every=*/2);
  auto views = make_views({1, 3, 2});
  const auto victim = adv->maybe_kill(views, 1);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 1);
}

TEST(KillLeader, RespectsBudget) {
  auto adv = make_kill_leader(/*budget=*/1, /*every=*/1);
  auto views = make_views({5, 6});
  EXPECT_TRUE(adv->maybe_kill(views, 0).has_value());
  views[1].round = 50;  // well past any trigger
  EXPECT_FALSE(adv->maybe_kill(views, 0).has_value());
}

TEST(KillLeader, WaitsForTrigger) {
  auto adv = make_kill_leader(/*budget=*/5, /*every=*/4);
  auto views = make_views({1, 1});
  EXPECT_FALSE(adv->maybe_kill(views, 0).has_value());  // below round 2
  views[0].round = 2;
  EXPECT_TRUE(adv->maybe_kill(views, 0).has_value());
  // Next trigger is 2 + 4 = 6.
  views[1].round = 5;
  EXPECT_FALSE(adv->maybe_kill(views, 1).has_value());
  views[1].round = 6;
  EXPECT_TRUE(adv->maybe_kill(views, 1).has_value());
}

TEST(KillLeader, IgnoresDeadAndDecided) {
  auto adv = make_kill_leader(/*budget=*/3, /*every=*/1);
  auto views = make_views({9, 4, 2});
  views[0].halted = true;
  views[1].decided = true;
  const auto victim = adv->maybe_kill(views, 2);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 2);
}

TEST(KillWinner, TriggersOnlyAtTwoRoundLead) {
  auto adv = make_kill_winner(/*budget=*/1);
  auto views = make_views({4, 3});
  EXPECT_FALSE(adv->maybe_kill(views, 0).has_value());  // lead of 1 only
  views[0].round = 5;
  const auto victim = adv->maybe_kill(views, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0);
}

TEST(KillWinner, OnlyExaminesTheStepper) {
  auto adv = make_kill_winner(/*budget=*/1);
  auto views = make_views({5, 3});
  EXPECT_FALSE(adv->maybe_kill(views, 1).has_value());
}

TEST(KillPoised, TriggersOnlyOnPoisedStepper) {
  auto adv = make_kill_poised(/*budget=*/2);
  auto views = make_views({3, 2});
  EXPECT_FALSE(adv->maybe_kill(views, 0).has_value());
  views[0].poised_to_decide = true;
  const auto victim = adv->maybe_kill(views, 0);
  ASSERT_TRUE(victim.has_value());
  EXPECT_EQ(*victim, 0);
  // Only the stepping process is examined.
  views[1].poised_to_decide = true;
  EXPECT_TRUE(adv->maybe_kill(views, 1).has_value());
  EXPECT_FALSE(adv->maybe_kill(views, 1).has_value());  // budget spent
}

TEST(KillRandom, BudgetAndLiveness) {
  auto adv = make_kill_random(/*budget=*/2, /*p=*/1.0, /*salt=*/3);
  auto views = make_views({1, 1, 1});
  EXPECT_TRUE(adv->maybe_kill(views, 0).has_value());
  EXPECT_TRUE(adv->maybe_kill(views, 0).has_value());
  EXPECT_FALSE(adv->maybe_kill(views, 0).has_value());  // budget exhausted
}

TEST(KillRandom, NeverFiresAtZeroProbability) {
  auto adv = make_kill_random(/*budget=*/10, /*p=*/0.0, /*salt=*/3);
  auto views = make_views({1, 1});
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(adv->maybe_kill(views, 0).has_value());
  }
}

// ---------------------------------------------------------------------------
// End-to-end: adaptive crashes inside the simulator.
// ---------------------------------------------------------------------------

TEST(CrashSim, KillLeaderDelaysButCannotPreventTermination) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim_config config;
    config.inputs = split_inputs(8);
    config.sched = figure1_params(make_exponential(1.0));
    config.seed = seed;
    config.crashes = make_kill_leader(/*budget=*/3, /*every=*/2);
    const auto result = simulate(config);
    ASSERT_TRUE(result.violations.empty()) << "seed " << seed;
    ASSERT_TRUE(result.any_decided) << "seed " << seed;
    ASSERT_LE(result.halted_processes, 3u);
    for (const auto& p : result.processes) {
      if (p.decided) ASSERT_EQ(p.decision, result.decision);
    }
  }
}

TEST(CrashSim, KillWinnerDecapitatesButSurvivorsAgree) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim_config config;
    config.inputs = split_inputs(6);
    config.sched = figure1_params(make_uniform(0.0, 2.0));
    config.seed = seed;
    config.crashes = make_kill_winner(/*budget=*/2);
    const auto result = simulate(config);
    ASSERT_TRUE(result.violations.empty()) << "seed " << seed;
    ASSERT_TRUE(result.any_decided);
  }
}

TEST(CrashSim, KillPoisedWithFullBudgetBlocksEveryDecision) {
  // Every decision is preceded by a "poised" state (the cell a(1-p)[r-1]
  // only transitions 0 -> 1, so if the deciding read sees 0 the adversary's
  // check before that read saw 0 too). Hence budget >= n kills every
  // would-be decider and nobody ever decides.
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim_config config;
    config.inputs = split_inputs(2);
    config.sched = figure1_params(make_exponential(1.0));
    config.crashes = make_kill_poised(2);
    config.seed = 6000 + seed;
    const auto r = simulate(config);
    ASSERT_TRUE(r.violations.empty());
    EXPECT_FALSE(r.any_decided) << "seed " << seed;
    EXPECT_EQ(r.halted_processes, 2u);
  }
}

TEST(CrashSim, KillPoisedSpendsItsBudgetButCannotStopTheRace) {
  // With budget < n the adversary decapitates exactly `budget` would-be
  // deciders and the survivors still decide: the racing arrays persist
  // after a crash, so the victim's marks keep working for its team. This is
  // the mechanism behind the paper's O(log n) conjecture for crash failures.
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    sim_config config;
    config.inputs = split_inputs(4);
    config.sched = figure1_params(make_exponential(1.0));
    config.crashes = make_kill_poised(1);
    config.seed = 6100 + seed;
    const auto r = simulate(config);
    ASSERT_TRUE(r.violations.empty());
    ASSERT_TRUE(r.any_decided) << "seed " << seed;
    EXPECT_EQ(r.halted_processes, 1u) << "seed " << seed;
  }
}

TEST(CrashSim, KillPoisedNeverBreaksSafety) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    sim_config config;
    config.inputs = split_inputs(8);
    config.sched = figure1_params(make_exponential(1.0));
    config.crashes = make_kill_poised(4);
    config.seed = seed * 7;
    const auto result = simulate(config);
    ASSERT_TRUE(result.violations.empty()) << "seed " << seed;
    for (const auto& p : result.processes) {
      if (p.decided) ASSERT_EQ(p.decision, result.decision);
    }
  }
}

TEST(CrashSim, BudgetNMinusOneStillDecides) {
  // Even killing all but one process leaves a solo runner that decides.
  sim_config config;
  config.inputs = split_inputs(4);
  config.sched = figure1_params(make_exponential(1.0));
  config.seed = 5;
  config.crashes = make_kill_random(/*budget=*/3, /*p=*/0.05, /*salt=*/9);
  const auto result = simulate(config);
  EXPECT_TRUE(result.violations.empty());
  EXPECT_TRUE(result.any_decided);
}

}  // namespace
}  // namespace leancon
