#include "sim/runner.h"

#include <gtest/gtest.h>

#include "noise/catalog.h"
#include "sim/trial_executor.h"

namespace leancon {
namespace {

sim_config base_config(std::size_t n, std::uint64_t seed) {
  sim_config config;
  config.inputs = split_inputs(n);
  config.sched = figure1_params(make_exponential(1.0));
  config.seed = seed;
  return config;
}

TEST(Runner, AggregatesAllTrials) {
  const auto stats = run_trials(base_config(8, 1), 25);
  EXPECT_EQ(stats.trials, 25u);
  EXPECT_EQ(stats.decided_trials, 25u);
  EXPECT_EQ(stats.undecided_trials, 0u);
  EXPECT_EQ(stats.violation_trials, 0u);
  EXPECT_EQ(stats.round().count(), 25u);
}

TEST(Runner, FirstRoundAtLeastTwo) {
  const auto stats = run_trials(base_config(4, 2), 20);
  EXPECT_GE(stats.round().min(), 2.0);
}

TEST(Runner, TrialsUseDistinctSeeds) {
  // With one process the outcome is deterministic (always 8 ops), but with
  // several processes total op counts should vary across trials.
  const auto stats = run_trials(base_config(16, 3), 20);
  EXPECT_GT(stats.total_ops().max(), stats.total_ops().min());
}

TEST(Runner, ReproducibleAcrossCalls) {
  const auto a = run_trials(base_config(8, 7), 10);
  const auto b = run_trials(base_config(8, 7), 10);
  EXPECT_DOUBLE_EQ(a.round().mean(), b.round().mean());
  EXPECT_DOUBLE_EQ(a.total_ops().mean(), b.total_ops().mean());
}

TEST(Runner, LastRoundWithinOneOfFirst) {
  const auto stats = run_trials(base_config(8, 9), 25);
  ASSERT_EQ(stats.last_round().count(), 25u);
  // Lemma 4b, aggregated: last <= first + 1 in every trial, so the means
  // must satisfy the same bound.
  EXPECT_LE(stats.last_round().mean(), stats.round().mean() + 1.0);
  EXPECT_GE(stats.last_round().mean(), stats.round().mean());
}

TEST(Runner, FirstDecisionStopModeSkipsLastRound) {
  auto config = base_config(8, 11);
  config.stop = stop_mode::first_decision;
  const auto stats = run_trials(config, 10);
  EXPECT_EQ(stats.last_round().count(), 0u);
  EXPECT_EQ(stats.round().count(), 10u);
}

TEST(Runner, CertainFailureCountsUndecided) {
  auto config = base_config(4, 13);
  config.sched.halt_probability = 1.0;
  const auto stats = run_trials(config, 5);
  EXPECT_EQ(stats.undecided_trials, 5u);
  EXPECT_EQ(stats.decided_trials, 0u);
}

TEST(Runner, UndecidedTrialsStillCountOpsMetrics) {
  // Ops-side metrics must include budget-exhausted/all-halted trials:
  // dropping them biases cost means low exactly when the adversary is
  // strongest. Decision-side metrics stay decided-only.
  auto config = base_config(4, 13);
  config.sched.halt_probability = 1.0;  // nobody ever decides
  const auto stats = run_trials(config, 5);
  EXPECT_EQ(stats.total_ops().count(), 5u);
  EXPECT_EQ(stats.max_ops().count(), 5u);
  EXPECT_EQ(stats.pref_switches().count(), 5u);
  EXPECT_EQ(stats.survivors().count(), 5u);
  EXPECT_DOUBLE_EQ(stats.survivors().max(), 0.0);  // everyone halts
  EXPECT_EQ(stats.round().count(), 0u);
  EXPECT_EQ(stats.first_time().count(), 0u);
  EXPECT_EQ(stats.last_round().count(), 0u);
}

TEST(Runner, SeedDerivationFollowsTheSplitmixContract) {
  // run_trials(base, k) must simulate exactly the configs seeded with
  // trial_seed(base.seed, 0..k-1).
  const auto config = base_config(8, 29);
  const auto stats = run_trials(config, 3);
  ASSERT_EQ(stats.round().samples().size(), 3u);
  for (std::uint64_t t = 0; t < 3; ++t) {
    sim_config manual = config;
    manual.seed = trial_seed(config.seed, t);
    const auto r = simulate(manual);
    EXPECT_EQ(static_cast<double>(r.first_decision_round),
              stats.round().samples()[t])
        << "trial " << t;
  }
}

TEST(Runner, CombinedProtocolTracksBackupEntries) {
  auto config = base_config(6, 17);
  config.protocol = protocol_kind::combined;
  config.r_max = 1;  // forces frequent backup entry
  const auto stats = run_trials(config, 20);
  EXPECT_EQ(stats.decided_trials, 20u);
  EXPECT_GT(stats.backup_trials, 0u);
}

TEST(Runner, Theorem12ShapeHoldsInMiniature) {
  // The headline result, asserted inside the test suite (the benches measure
  // it at scale): mean first-decision round grows with n but stays small —
  // Theta(log n) with small constants under exp(1) noise.
  auto small = base_config(2, 41);
  auto large = base_config(64, 43);
  small.stop = stop_mode::first_decision;
  large.stop = stop_mode::first_decision;
  const auto s = run_trials(small, 300);
  const auto l = run_trials(large, 300);
  EXPECT_GT(l.round().mean(), s.round().mean());
  EXPECT_LT(l.round().mean(), 10.0)
      << "64 processes should settle within a handful of rounds";
  EXPECT_GE(s.round().mean(), 2.0);
}

TEST(Runner, OpsMetricsArePlausible) {
  const auto stats = run_trials(base_config(8, 19), 10);
  // Every live process performs at least 8 ops (two rounds minimum).
  EXPECT_GE(stats.ops_per_process().min(), 8.0);
  EXPECT_GE(stats.max_ops().min(), stats.ops_per_process().min());
}

}  // namespace
}  // namespace leancon
