// Tests for deterministic cell → shard assignment: CLI parsing, exact
// partitioning for any shard count, stability of the assignment under grid
// edits (append a scenario — surviving cells keep their shard), and
// order/ordinal preservation through filter_shard. Plus the --only-cells
// ordinal-list surface (campaign_cli): parse, format, filter, and the
// rejection of duplicate/out-of-range ordinals by name.
#include "exp/campaign_shard.h"

#include <gtest/gtest.h>

#include <map>
#include <stdexcept>

#include "exp/campaign_cli.h"

namespace leancon {
namespace {

std::vector<campaign_cell> demo_cells() {
  campaign_grid grid;
  grid.scenarios = {"figure1-exp1", "mp-abd", "mutex-noise", "crash-heavy"};
  grid.ns = {2, 4, 8, 16};
  grid.trials = 50;
  grid.seed = 9;
  return grid.expand();
}

TEST(ShardSpec, ParsesTheCliForm) {
  const shard_spec s = parse_shard("2/5");
  EXPECT_EQ(s.index, 2u);
  EXPECT_EQ(s.count, 5u);
  const shard_spec whole = parse_shard("0/1");
  EXPECT_EQ(whole.index, 0u);
  EXPECT_EQ(whole.count, 1u);
}

TEST(ShardSpec, RejectsMalformedAndOutOfRangeText) {
  for (const char* bad : {"", "3", "/4", "3/", "a/b", "1/1x", "x1/2", "1//2",
                          "1/0", "3/3", "5/2", "-1/2"}) {
    EXPECT_THROW(parse_shard(bad), std::invalid_argument) << bad;
  }
}

TEST(Shard, EveryCellBelongsToExactlyOneShard) {
  const auto cells = demo_cells();
  for (const std::uint64_t k : {1u, 2u, 3u, 5u, 7u}) {
    std::size_t total = 0;
    for (std::uint64_t i = 0; i < k; ++i) {
      total += filter_shard(cells, {i, k}).size();
    }
    EXPECT_EQ(total, cells.size()) << "k=" << k;
    for (const auto& cell : cells) {
      EXPECT_LT(shard_of(cell, k), k);
    }
  }
  // k = 1 is the whole campaign.
  EXPECT_EQ(filter_shard(cells, {0, 1}).size(), cells.size());
}

TEST(Shard, AssignmentDependsOnlyOnTheResumeKey) {
  // Two cells with the same (scenario, variant, n, trials, seed) — i.e. the
  // same (config hash, seed) resume key — land in the same shard no matter
  // how they were built; changing the seed or the config moves the key.
  campaign_cell cell;
  cell.scenario = "figure1-exp1";
  cell.params.n = 8;
  cell.params.seed = 1234;
  cell.trials = 100;
  cell.ordinal = 3;  // position must NOT matter

  campaign_cell moved = cell;
  moved.ordinal = 17;
  for (const std::uint64_t k : {2u, 3u, 5u, 16u}) {
    EXPECT_EQ(shard_of(cell, k), shard_of(moved, k)) << "k=" << k;
  }

  // Distinct seeds (or configs) spread across shards eventually: with 64
  // key variations and k = 2 it is statistically impossible for the hash
  // to put all of them on one side unless it ignored the field.
  std::map<std::uint64_t, int> by_seed, by_n;
  for (std::uint64_t v = 0; v < 64; ++v) {
    campaign_cell seeded = cell;
    seeded.params.seed = v;
    ++by_seed[shard_of(seeded, 2)];
    campaign_cell resized = cell;
    resized.params.n = v + 1;
    ++by_n[shard_of(resized, 2)];
  }
  EXPECT_EQ(by_seed.size(), 2u);
  EXPECT_EQ(by_n.size(), 2u);
}

TEST(Shard, StableUnderAppendingGridEdits) {
  // Appending a scenario leaves earlier cells' (seed, hash) intact, so
  // their shard assignment must not move — a shard's partial cells file
  // stays valid after the grid grows.
  campaign_grid grid;
  grid.scenarios = {"figure1-exp1", "mp-abd"};
  grid.ns = {4, 8};
  grid.trials = 30;
  grid.seed = 5;
  const auto before = grid.expand();

  grid.scenarios.push_back("mutex-noise");
  const auto after = grid.expand();
  ASSERT_GT(after.size(), before.size());
  for (std::size_t i = 0; i < before.size(); ++i) {
    ASSERT_EQ(before[i].scenario, after[i].scenario) << i;
    ASSERT_EQ(before[i].params.seed, after[i].params.seed) << i;
    for (const std::uint64_t k : {2u, 3u, 5u}) {
      EXPECT_EQ(shard_of(before[i], k), shard_of(after[i], k))
          << "cell " << i << " k=" << k;
    }
  }
}

TEST(Shard, FilterPreservesOrderOrdinalsAndSeeds) {
  const auto cells = demo_cells();
  for (const std::uint64_t k : {2u, 3u}) {
    for (std::uint64_t i = 0; i < k; ++i) {
      const auto mine = filter_shard(cells, {i, k});
      std::uint64_t last_ordinal = 0;
      bool first = true;
      for (const auto& cell : mine) {
        EXPECT_EQ(shard_of(cell, k), i);
        if (!first) EXPECT_GT(cell.ordinal, last_ordinal);
        last_ordinal = cell.ordinal;
        first = false;
        // The filtered cell is the grid's cell verbatim.
        EXPECT_EQ(cell.params.seed, cells[cell.ordinal].params.seed);
        EXPECT_EQ(cell.scenario, cells[cell.ordinal].scenario);
      }
    }
  }
  EXPECT_THROW(filter_shard(cells, {3, 3}), std::invalid_argument);
  EXPECT_THROW(shard_of(cells[0], 0), std::invalid_argument);
}

TEST(OrdinalList, ParsesFormatsAndFiltersInGridOrder) {
  const auto ordinals = parse_ordinal_list("7,3,11");
  ASSERT_EQ(ordinals.size(), 3u);
  EXPECT_EQ(ordinals[0], 7u);
  EXPECT_EQ(ordinals[1], 3u);
  EXPECT_EQ(ordinals[2], 11u);
  EXPECT_EQ(format_ordinal_list(ordinals), "7,3,11");
  EXPECT_TRUE(parse_ordinal_list("").empty());

  const auto cells = demo_cells();
  const auto kept = filter_ordinals(cells, ordinals);
  ASSERT_EQ(kept.size(), 3u);
  // Filtered cells come back in GRID order (ordinal-ascending), verbatim.
  EXPECT_EQ(kept[0].ordinal, 3u);
  EXPECT_EQ(kept[1].ordinal, 7u);
  EXPECT_EQ(kept[2].ordinal, 11u);
  for (const auto& cell : kept) {
    EXPECT_EQ(cell.params.seed, cells[cell.ordinal].params.seed);
    EXPECT_EQ(cell.scenario, cells[cell.ordinal].scenario);
  }
}

TEST(OrdinalList, RejectsDuplicatesNamingTheOffender) {
  // A duplicate ordinal is a caller bug (a rebalance handing the same
  // cell out twice); silently collapsing it would run the cell once and
  // hide the bug. The worker turns this throw into its usage exit (2).
  try {
    parse_ordinal_list("3,7,3");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate cell ordinal 3"),
              std::string::npos)
        << e.what();
  }
  for (const char* bad : {"x", "3x", "1.5", "0x3"}) {
    EXPECT_THROW(parse_ordinal_list(bad), std::invalid_argument) << bad;
  }
}

TEST(OrdinalList, OutOfRangeOrdinalIsNamedNotDropped) {
  const auto cells = demo_cells();
  try {
    filter_ordinals(cells, parse_ordinal_list("2,999"));
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cell ordinal 999"), std::string::npos) << what;
    EXPECT_NE(what.find(std::to_string(cells.size())), std::string::npos)
        << what;
  }
}

}  // namespace
}  // namespace leancon
