// Shared helpers for the test suite: random-interleaving executors that
// drive protocol machines directly (adversarial scheduling without the
// timing layer), used by the adopt-commit / conciliator / backup tests.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/machine.h"
#include "memory/sim_memory.h"
#include "util/rng.h"

namespace leancon::testing {

/// Runs machines to completion under a uniformly random interleaving:
/// at every step a uniformly random unfinished machine executes one op.
/// Returns false if the op budget ran out before every machine finished.
inline bool random_schedule_run(
    std::vector<std::unique_ptr<consensus_machine>>& machines,
    sim_memory& memory, rng& gen, std::uint64_t max_ops = 1'000'000) {
  std::vector<std::size_t> pending;
  for (std::size_t i = 0; i < machines.size(); ++i) {
    if (!machines[i]->done()) pending.push_back(i);
  }
  std::uint64_t ops = 0;
  while (!pending.empty() && ops < max_ops) {
    const std::size_t slot = gen.below(pending.size());
    const std::size_t idx = pending[slot];
    auto& m = *machines[idx];
    const operation op = m.next_op();
    const std::uint64_t value = memory.execute(static_cast<int>(idx), op);
    m.apply(value);
    ++ops;
    if (m.done()) {
      pending[slot] = pending.back();
      pending.pop_back();
    }
  }
  return pending.empty();
}

/// Runs machines under a fixed repeating pid pattern (e.g. strict
/// alternation), a deterministic adversarial schedule. Finished machines are
/// skipped. Returns false on budget exhaustion.
inline bool pattern_schedule_run(
    std::vector<std::unique_ptr<consensus_machine>>& machines,
    sim_memory& memory, const std::vector<std::size_t>& pattern,
    std::uint64_t max_ops = 1'000'000) {
  std::uint64_t ops = 0;
  std::size_t cursor = 0;
  auto all_done = [&]() {
    for (const auto& m : machines) {
      if (!m->done()) return false;
    }
    return true;
  };
  while (!all_done() && ops < max_ops) {
    const std::size_t idx = pattern[cursor % pattern.size()];
    ++cursor;
    if (idx >= machines.size() || machines[idx]->done()) continue;
    auto& m = *machines[idx];
    const operation op = m.next_op();
    const std::uint64_t value = memory.execute(static_cast<int>(idx), op);
    m.apply(value);
    ++ops;
  }
  return all_done();
}

}  // namespace leancon::testing
