// Tests for the persistent worker pool: every submitted task runs exactly
// once, the caller participates (progress with zero spare workers, nested
// run), concurrency caps hold, exceptions propagate, and concurrent batches
// from several threads all complete.
#include "exp/worker_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

namespace leancon {
namespace {

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  worker_pool pool(3);
  constexpr std::uint64_t kTasks = 500;
  std::vector<std::atomic<int>> hits(kTasks);
  pool.run(kTasks, [&](std::uint64_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::uint64_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "task " << i;
  }
}

TEST(WorkerPool, ZeroTasksReturnsImmediately) {
  worker_pool pool(2);
  bool ran = false;
  pool.run(0, [&](std::uint64_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(WorkerPool, SizeResolvesHardwareConcurrency) {
  worker_pool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(worker_pool(5).size(), 5u);
}

TEST(WorkerPool, CallerParticipates) {
  // A pool whose single worker is parked still finishes: the caller drains
  // its own batch. With cap 1 exactly one thread executes at a time.
  worker_pool pool(1);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  pool.run(
      64,
      [&](std::uint64_t) {
        const int now = concurrent.fetch_add(1) + 1;
        int seen = max_concurrent.load();
        while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
        }
        concurrent.fetch_sub(1);
      },
      1);
  EXPECT_EQ(max_concurrent.load(), 1);
}

TEST(WorkerPool, CapBoundsConcurrency) {
  worker_pool pool(8);
  std::atomic<int> concurrent{0};
  std::atomic<int> max_concurrent{0};
  pool.run(
      200,
      [&](std::uint64_t) {
        const int now = concurrent.fetch_add(1) + 1;
        int seen = max_concurrent.load();
        while (now > seen && !max_concurrent.compare_exchange_weak(seen, now)) {
        }
        // A small spin so tasks overlap if the cap were violated.
        for (volatile int spin = 0; spin < 1000; ++spin) {
        }
        concurrent.fetch_sub(1);
      },
      3);
  EXPECT_LE(max_concurrent.load(), 3);
  EXPECT_GE(max_concurrent.load(), 1);
}

TEST(WorkerPool, NestedRunDoesNotDeadlock) {
  worker_pool pool(2);
  std::atomic<int> inner_total{0};
  pool.run(4, [&](std::uint64_t) {
    pool.run(8, [&](std::uint64_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 32);
}

TEST(WorkerPool, FirstExceptionPropagates) {
  worker_pool pool(4);
  std::atomic<int> executed{0};
  try {
    pool.run(100, [&](std::uint64_t i) {
      executed.fetch_add(1, std::memory_order_relaxed);
      if (i == 3) throw std::runtime_error("task 3 failed");
    });
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "task 3 failed");
  }
  // The batch drains (unclaimed tasks are dropped) and the pool survives.
  EXPECT_LE(executed.load(), 100);
  std::atomic<int> after{0};
  pool.run(10, [&](std::uint64_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(after.load(), 10);
}

TEST(WorkerPool, ConcurrentBatchesFromManyThreadsComplete) {
  worker_pool pool(3);
  constexpr int kClients = 4;
  constexpr std::uint64_t kTasks = 100;
  std::vector<std::atomic<std::uint64_t>> done(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      pool.run(kTasks, [&, c](std::uint64_t) {
        done[c].fetch_add(1, std::memory_order_relaxed);
      });
    });
  }
  for (auto& th : clients) th.join();
  for (int c = 0; c < kClients; ++c) {
    EXPECT_EQ(done[c].load(), kTasks) << "client " << c;
  }
}

TEST(WorkerPool, SharedPoolIsASingleton) {
  worker_pool& a = worker_pool::shared();
  worker_pool& b = worker_pool::shared();
  EXPECT_EQ(&a, &b);
  EXPECT_GE(a.size(), 1u);
  std::atomic<int> total{0};
  a.run(16, [&](std::uint64_t) {
    total.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(total.load(), 16);
}

}  // namespace
}  // namespace leancon
