#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <queue>
#include <vector>

#include "util/rng.h"

namespace leancon {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  event_queue q;
  q.push(3.0, 1);
  q.push(1.0, 2);
  q.push(2.0, 3);
  EXPECT_EQ(q.pop().pid, 2);
  EXPECT_EQ(q.pop().pid, 3);
  EXPECT_EQ(q.pop().pid, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  event_queue q;
  q.push(1.0, 7);
  q.push(1.0, 8);
  q.push(1.0, 9);
  EXPECT_EQ(q.pop().pid, 7);
  EXPECT_EQ(q.pop().pid, 8);
  EXPECT_EQ(q.pop().pid, 9);
}

TEST(EventQueue, SizeTracksContents) {
  event_queue q;
  EXPECT_TRUE(q.empty());
  q.push(1.0, 0);
  q.push(2.0, 1);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PeekDoesNotRemove) {
  event_queue q;
  q.push(5.0, 4);
  EXPECT_EQ(q.peek().pid, 4);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  event_queue q;
  q.push(10.0, 0);
  q.push(1.0, 1);
  EXPECT_EQ(q.pop().pid, 1);
  q.push(5.0, 2);
  EXPECT_EQ(q.pop().pid, 2);
  EXPECT_EQ(q.pop().pid, 0);
}

TEST(EventQueue, ManyEventsStaySorted) {
  event_queue q;
  // Insert a deterministic scramble.
  for (int i = 0; i < 1000; ++i) {
    q.push(static_cast<double>((i * 7919) % 1000), i);
  }
  double last = -1.0;
  while (!q.empty()) {
    const auto e = q.pop();
    ASSERT_GE(e.time, last);
    last = e.time;
  }
}

TEST(EventQueue, ReserveDoesNotChangeContents) {
  event_queue q;
  q.push(2.0, 0);
  q.reserve(1024);
  q.push(1.0, 1);
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.pop().pid, 1);
  EXPECT_EQ(q.pop().pid, 0);
}

TEST(EventQueue, ClearResetsTiebreakCounter) {
  event_queue q;
  q.push(1.0, 0);
  q.push(1.0, 1);
  q.clear();
  EXPECT_TRUE(q.empty());
  // After clear(), insertion order restarts: a fresh tie must pop in the
  // fresh insertion order, proving the sequence counter was reset too.
  q.push(5.0, 9);
  q.push(5.0, 8);
  EXPECT_EQ(q.pop().pid, 9);
  EXPECT_EQ(q.pop().pid, 8);
}

// Reference model: std::priority_queue with the exact (time, seq) order the
// flat heap promises. Any correct heap pops a total order identically, so
// the two must agree event-for-event over random interleaved push/pop
// sequences — including deliberate timestamp ties.
TEST(EventQueue, RandomOpsMatchPriorityQueueReference) {
  struct later {
    bool operator()(const sim_event& a, const sim_event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    event_queue q;
    std::priority_queue<sim_event, std::vector<sim_event>, later> ref;
    std::uint64_t next_seq = 0;
    rng gen(seed, 0xe4e27);
    for (int step = 0; step < 4000; ++step) {
      const bool do_push = ref.empty() || gen.below(100) < 60;
      if (do_push) {
        // Coarse timestamps so ties are common, not probability-zero.
        const double time = static_cast<double>(gen.below(64));
        const int pid = static_cast<int>(gen.below(16));
        q.push(time, pid);
        ref.push(sim_event{time, next_seq++, pid});
      } else {
        ASSERT_EQ(q.empty(), ref.empty());
        const sim_event got = q.pop();
        const sim_event want = ref.top();
        ref.pop();
        ASSERT_EQ(got.time, want.time) << "seed=" << seed << " step=" << step;
        ASSERT_EQ(got.seq, want.seq) << "seed=" << seed << " step=" << step;
        ASSERT_EQ(got.pid, want.pid) << "seed=" << seed << " step=" << step;
      }
    }
    while (!ref.empty()) {
      ASSERT_FALSE(q.empty());
      const sim_event got = q.pop();
      ASSERT_EQ(got.seq, ref.top().seq);
      ASSERT_EQ(got.pid, ref.top().pid);
      ref.pop();
    }
    EXPECT_TRUE(q.empty());
  }
}

// --- event_scheduler -------------------------------------------------------

TEST(EventScheduler, PopsPrimedSlotsInTimeOrder) {
  event_scheduler s;
  s.reset(3);
  s.prime(0, 3.0);
  s.prime(1, 1.0);
  s.prime(2, 2.0);
  s.build();
  EXPECT_EQ(s.top().pid, 1);
  s.remove_top();
  EXPECT_EQ(s.top().pid, 2);
  s.remove_top();
  EXPECT_EQ(s.top().pid, 0);
  s.remove_top();
  EXPECT_TRUE(s.empty());
}

TEST(EventScheduler, TiesBreakByPrimeOrder) {
  event_scheduler s;
  s.reset(4);
  // Primed out of pid order: the tiebreak is the prime() call order (the
  // sequence number), exactly like event_queue's push order.
  s.prime(2, 1.0);
  s.prime(0, 1.0);
  s.prime(3, 1.0);
  s.build();
  EXPECT_EQ(s.top().pid, 2);
  s.remove_top();
  EXPECT_EQ(s.top().pid, 0);
  s.remove_top();
  EXPECT_EQ(s.top().pid, 3);
  s.remove_top();
  EXPECT_TRUE(s.empty());  // pid 1 was never primed
}

TEST(EventScheduler, RescheduleTiesLoseToEarlierSeq) {
  event_scheduler s;
  s.reset(2);
  s.prime(0, 1.0);  // seq 0
  s.prime(1, 1.0);  // seq 1
  s.build();
  EXPECT_EQ(s.top().pid, 0);
  // Rescheduling pid 0 to the SAME time gives it a fresh (larger) sequence
  // number, so pid 1's untouched event now wins the tie.
  s.reschedule_top(1.0);
  EXPECT_EQ(s.top().pid, 1);
}

TEST(EventScheduler, SingleSlotAndReuse) {
  event_scheduler s;
  s.reset(1);
  s.prime(0, 2.0);
  s.build();
  EXPECT_EQ(s.top().pid, 0);
  EXPECT_EQ(s.top().time, 2.0);
  s.reschedule_top(5.0);
  EXPECT_EQ(s.top().time, 5.0);
  s.remove_top();
  EXPECT_TRUE(s.empty());
  // reset() restarts the tiebreak counter for the next trial.
  s.reset(2);
  s.prime(0, 1.0);
  s.prime(1, 1.0);
  s.build();
  EXPECT_EQ(s.top().pid, 0);
}

// Reference model: the scheduler's winner-only discipline replayed against
// std::priority_queue under the exact (time, seq) order. Each live slot
// holds one pending event; every step either reschedules the winner to a
// later (sometimes EQUAL — ties must break on seq) time or removes it.
// Runs across sizes spanning every unrolled replay depth plus a
// non-power-of-two n, so the padded empty slots are exercised too.
TEST(EventScheduler, RandomRescheduleMatchesPriorityQueueReference) {
  struct later {
    bool operator()(const sim_event& a, const sim_event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  for (const std::size_t n : {1, 2, 3, 5, 8, 17, 33, 100, 130}) {
    event_scheduler s;
    s.reset(n);
    std::priority_queue<sim_event, std::vector<sim_event>, later> ref;
    std::uint64_t next_seq = 0;
    rng gen(n, 0x5ced);
    for (std::size_t pid = 0; pid < n; ++pid) {
      // Coarse timestamps so ties are common, not probability-zero.
      const double t = static_cast<double>(gen.below(8)) * 0.25;
      s.prime(static_cast<int>(pid), t);
      ref.push(sim_event{t, next_seq++, static_cast<int>(pid)});
    }
    s.build();
    for (int step = 0; step < 2000 && !ref.empty(); ++step) {
      ASSERT_FALSE(s.empty());
      const sim_event want = ref.top();
      const sim_event got = s.top();
      ASSERT_EQ(got.time, want.time) << "n=" << n << " step=" << step;
      ASSERT_EQ(got.seq, want.seq) << "n=" << n << " step=" << step;
      ASSERT_EQ(got.pid, want.pid) << "n=" << n << " step=" << step;
      ref.pop();
      if (gen.below(10) == 0) {
        s.remove_top();
      } else {
        const double t = want.time + static_cast<double>(gen.below(6)) * 0.25;
        s.reschedule_top(t);
        ref.push(sim_event{t, next_seq++, want.pid});
      }
    }
    while (!ref.empty()) {
      ASSERT_FALSE(s.empty());
      ASSERT_EQ(s.top().seq, ref.top().seq) << "n=" << n;
      ASSERT_EQ(s.top().pid, ref.top().pid) << "n=" << n;
      s.remove_top();
      ref.pop();
    }
    EXPECT_TRUE(s.empty()) << "n=" << n;
  }
}

}  // namespace
}  // namespace leancon
