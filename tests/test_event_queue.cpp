#include "sim/event_queue.h"

#include <gtest/gtest.h>

namespace leancon {
namespace {

TEST(EventQueue, PopsInTimeOrder) {
  event_queue q;
  q.push(3.0, 1);
  q.push(1.0, 2);
  q.push(2.0, 3);
  EXPECT_EQ(q.pop().pid, 2);
  EXPECT_EQ(q.pop().pid, 3);
  EXPECT_EQ(q.pop().pid, 1);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  event_queue q;
  q.push(1.0, 7);
  q.push(1.0, 8);
  q.push(1.0, 9);
  EXPECT_EQ(q.pop().pid, 7);
  EXPECT_EQ(q.pop().pid, 8);
  EXPECT_EQ(q.pop().pid, 9);
}

TEST(EventQueue, SizeTracksContents) {
  event_queue q;
  EXPECT_TRUE(q.empty());
  q.push(1.0, 0);
  q.push(2.0, 1);
  EXPECT_EQ(q.size(), 2u);
  q.pop();
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, PeekDoesNotRemove) {
  event_queue q;
  q.push(5.0, 4);
  EXPECT_EQ(q.peek().pid, 4);
  EXPECT_EQ(q.size(), 1u);
}

TEST(EventQueue, InterleavedPushPop) {
  event_queue q;
  q.push(10.0, 0);
  q.push(1.0, 1);
  EXPECT_EQ(q.pop().pid, 1);
  q.push(5.0, 2);
  EXPECT_EQ(q.pop().pid, 2);
  EXPECT_EQ(q.pop().pid, 0);
}

TEST(EventQueue, ManyEventsStaySorted) {
  event_queue q;
  // Insert a deterministic scramble.
  for (int i = 0; i < 1000; ++i) {
    q.push(static_cast<double>((i * 7919) % 1000), i);
  }
  double last = -1.0;
  while (!q.empty()) {
    const auto e = q.pop();
    ASSERT_GE(e.time, last);
    last = e.time;
  }
}

}  // namespace
}  // namespace leancon
