#include "backup/backup_machine.h"

#include <gtest/gtest.h>

#include <memory>

#include "memory/sim_memory.h"
#include "test_util.h"
#include "util/rng.h"

namespace leancon {
namespace {

std::vector<std::unique_ptr<consensus_machine>> make_backups(
    const std::vector<int>& inputs, std::uint64_t seed,
    double write_prob = 0.0) {
  auto params = backup_params::for_processes(inputs.size());
  if (write_prob > 0.0) params.write_prob = write_prob;
  std::vector<std::unique_ptr<consensus_machine>> machines;
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    machines.push_back(
        std::make_unique<backup_machine>(inputs[i], params, rng(seed, i + 1)));
  }
  return machines;
}

TEST(Backup, RejectsNonBitInput) {
  EXPECT_THROW(
      backup_machine(3, backup_params::for_processes(2), rng(1)),
      std::invalid_argument);
}

TEST(Backup, SoloDecidesOwnValueQuickly) {
  for (int bit = 0; bit < 2; ++bit) {
    sim_memory mem;
    backup_machine m(bit, backup_params::for_processes(1), rng(42));
    while (!m.done()) {
      const operation op = m.next_op();
      m.apply(mem.execute(0, op));
    }
    EXPECT_EQ(m.decision(), bit);
    EXPECT_EQ(m.round(), 1u);
    EXPECT_EQ(m.steps(), 4u);  // a clean adopt-commit, no conciliator needed
  }
}

TEST(Backup, UnanimousInputsCommitInRoundOne) {
  rng sched(7);
  for (int trial = 0; trial < 50; ++trial) {
    sim_memory mem;
    auto machines = make_backups({1, 1, 1, 1}, 100 + trial);
    ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched));
    for (const auto& m : machines) {
      EXPECT_EQ(m->decision(), 1);
      auto* bm = dynamic_cast<backup_machine*>(m.get());
      ASSERT_NE(bm, nullptr);
      EXPECT_EQ(bm->round(), 1u);
    }
  }
}

TEST(Backup, SplitInputsTerminateAndAgreeUnderRandomSchedules) {
  rng sched(8);
  for (int trial = 0; trial < 100; ++trial) {
    sim_memory mem;
    auto machines = make_backups({0, 1, 0, 1}, 500 + trial);
    ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched))
        << "trial " << trial;
    const int d = machines[0]->decision();
    EXPECT_TRUE(d == 0 || d == 1);
    for (const auto& m : machines) ASSERT_EQ(m->decision(), d);
  }
}

TEST(Backup, AdversarialAlternationStillTerminates) {
  // A deterministic alternating schedule cannot stall the backup forever:
  // the conciliator's local coins are outside the scheduler's control.
  for (int trial = 0; trial < 25; ++trial) {
    sim_memory mem;
    auto machines = make_backups({0, 1}, 900 + trial);
    ASSERT_TRUE(
        testing::pattern_schedule_run(machines, mem, {0, 1}, 500000))
        << "trial " << trial;
    ASSERT_EQ(machines[0]->decision(), machines[1]->decision());
  }
}

TEST(Backup, ReverseAndSkewedPatternsTerminate) {
  for (const auto& pattern : std::vector<std::vector<std::size_t>>{
           {1, 0}, {0, 0, 1}, {0, 1, 1, 1}, {1, 1, 0, 0}}) {
    sim_memory mem;
    auto machines = make_backups({0, 1}, 1234);
    ASSERT_TRUE(testing::pattern_schedule_run(machines, mem, pattern, 500000));
    ASSERT_EQ(machines[0]->decision(), machines[1]->decision());
  }
}

TEST(Backup, ValidityDecisionIsSomeInput) {
  rng sched(9);
  for (int trial = 0; trial < 50; ++trial) {
    sim_memory mem;
    // Three processes with input 0, one with 1.
    auto machines = make_backups({0, 0, 0, 1}, 700 + trial);
    ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched));
    const int d = machines[0]->decision();
    EXPECT_TRUE(d == 0 || d == 1);
  }
}

TEST(Backup, LargerGroupsConverge) {
  rng sched(10);
  for (std::size_t n : {6u, 10u, 16u}) {
    sim_memory mem;
    std::vector<int> inputs;
    for (std::size_t i = 0; i < n; ++i) inputs.push_back(static_cast<int>(i % 2));
    auto machines = make_backups(inputs, 40 + n);
    ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched, 5'000'000));
    for (const auto& m : machines) {
      ASSERT_EQ(m->decision(), machines[0]->decision());
    }
  }
}

TEST(Backup, HighWriteProbabilityStillSafe) {
  // write_prob = 1 degrades agreement probability per round but never
  // safety; rounds simply repeat until an adopt-commit commits.
  rng sched(11);
  for (int trial = 0; trial < 50; ++trial) {
    sim_memory mem;
    auto machines = make_backups({0, 1, 1}, 4000 + trial, /*write_prob=*/1.0);
    ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched));
    ASSERT_EQ(machines[1]->decision(), machines[0]->decision());
    ASSERT_EQ(machines[2]->decision(), machines[0]->decision());
  }
}

TEST(Backup, StuckGuardTriggersAtMaxRounds) {
  backup_params params;
  params.max_rounds = 0;  // degenerate: stuck before the first round
  backup_machine m(0, params, rng(1));
  EXPECT_TRUE(m.stuck());
  EXPECT_THROW(m.next_op(), std::logic_error);
}

TEST(Backup, DecisionBeforeDoneThrows) {
  backup_machine m(0, backup_params::for_processes(2), rng(1));
  EXPECT_THROW(m.decision(), std::logic_error);
}

TEST(Backup, StepsAccumulateAcrossRounds) {
  sim_memory mem;
  backup_machine m(0, backup_params::for_processes(1), rng(5));
  std::uint64_t count = 0;
  while (!m.done()) {
    const operation op = m.next_op();
    m.apply(mem.execute(0, op));
    ++count;
  }
  EXPECT_EQ(m.steps(), count);
}

}  // namespace
}  // namespace leancon
