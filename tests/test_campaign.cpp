// Tests for the campaign engine: grid expansion (incl. per-cell trial
// counts), pool-size/cap/scheduling bit-identity (with native metrics
// present), ordered streaming, resume/skip-completed, native-backend
// cells (native metrics end-to-end, no fabricated round metrics, tweak
// fail-fast), and the acceptance pin — the Figure 1 smoke grid run
// through the campaign engine reproduces the committed BENCH baseline
// exactly.
#include "exp/campaign.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "exp/campaign_io.h"
#include "exp/worker_pool.h"
#include "noise/catalog.h"
#include "sim/trial_executor.h"
#include "util/json.h"

namespace leancon {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::vector<campaign_cell> small_grid() {
  campaign_grid grid;
  grid.scenarios = {"figure1-exp1", "crash-heavy", "figure1-norm"};
  grid.ns = {4, 8};
  grid.trials = 40;
  grid.seed = 7;
  return grid.expand();
}

void expect_same_metrics(const cell_metrics& a, const cell_metrics& b,
                         const std::string& what) {
  ASSERT_EQ(a.values.size(), b.values.size()) << what;
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_EQ(a.values[i].first, b.values[i].first) << what;
    const double x = a.values[i].second;
    const double y = b.values[i].second;
    if (std::isnan(x) && std::isnan(y)) continue;
    EXPECT_EQ(x, y) << what << " metric " << a.values[i].first;
  }
}

TEST(CampaignGrid, ExpandsScenarioMajorWithDecorrelatedSeeds) {
  campaign_grid grid;
  grid.scenarios = {"a", "b"};
  grid.ns = {2, 4, 8};
  grid.trials = 11;
  grid.seed = 3;
  const auto cells = grid.expand();
  ASSERT_EQ(cells.size(), 6u);
  EXPECT_EQ(cells[0].scenario, "a");
  EXPECT_EQ(cells[2].scenario, "a");
  EXPECT_EQ(cells[3].scenario, "b");
  EXPECT_EQ(cells[1].params.n, 4u);
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(cells[i].trials, 11u);
    EXPECT_EQ(cells[i].params.seed, trial_seed(3, i));
    seeds.insert(cells[i].params.seed);
  }
  EXPECT_EQ(seeds.size(), cells.size());
}

TEST(CampaignCell, LabelAndHashCoverTheConfig) {
  campaign_cell cell;
  cell.scenario = "figure1-exp1";
  cell.params.n = 16;
  cell.trials = 100;
  EXPECT_EQ(cell.label(), "figure1-exp1/n=16");
  const std::uint64_t base = cell_hash(cell);

  campaign_cell variant = cell;
  variant.variant = "h=0.01";
  EXPECT_EQ(variant.label(), "figure1-exp1/h=0.01/n=16");
  EXPECT_NE(cell_hash(variant), base);

  campaign_cell other_n = cell;
  other_n.params.n = 32;
  EXPECT_NE(cell_hash(other_n), base);

  campaign_cell other_trials = cell;
  other_trials.trials = 101;
  EXPECT_NE(cell_hash(other_trials), base);

  // The seed is deliberately NOT part of the hash: resume keys on
  // (hash, seed) pairs.
  campaign_cell other_seed = cell;
  other_seed.params.seed = 999;
  EXPECT_EQ(cell_hash(other_seed), base);
}

TEST(Campaign, BitIdenticalAcrossPoolSizesAndCaps) {
  const auto cells = small_grid();
  campaign_options base_opts;
  base_opts.threads = 1;
  worker_pool pool1(1);
  base_opts.pool = &pool1;
  const auto reference = run_campaign(cells, base_opts);
  ASSERT_EQ(reference.size(), cells.size());

  for (const unsigned size : {2u, 4u, 8u}) {
    worker_pool pool(size);
    campaign_options opts;
    opts.threads = size;
    opts.pool = &pool;
    const auto got = run_campaign(cells, opts);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_same_metrics(reference[i].metrics, got[i].metrics,
                          "pool " + std::to_string(size) + " cell " +
                              got[i].cell.label());
    }
  }
}

TEST(Campaign, BitIdenticalAcrossCellSchedulingOrders) {
  const auto cells = small_grid();
  std::vector<campaign_cell> reversed(cells.rbegin(), cells.rend());

  worker_pool pool(4);
  campaign_options opts;
  opts.threads = 4;
  opts.pool = &pool;
  const auto forward = run_campaign(cells, opts);
  const auto backward = run_campaign(reversed, opts);
  ASSERT_EQ(forward.size(), backward.size());
  for (std::size_t i = 0; i < forward.size(); ++i) {
    const std::size_t j = forward.size() - 1 - i;
    EXPECT_EQ(forward[i].cell.label(), backward[j].cell.label());
    expect_same_metrics(forward[i].metrics, backward[j].metrics,
                        forward[i].cell.label());
  }
}

TEST(Campaign, MatchesTrialExecutorCellByCell) {
  // A campaign cell and a standalone executor batch of the same config are
  // the same computation.
  const auto cells = small_grid();
  worker_pool pool(2);
  campaign_options opts;
  opts.threads = 2;
  opts.pool = &pool;
  const auto results = run_campaign(cells, opts);
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const auto config = make_scenario(cells[i].scenario, cells[i].params);
    const auto stats = trial_executor().run(config, cells[i].trials);
    expect_same_metrics(results[i].metrics, default_cell_metrics(stats),
                        cells[i].label());
  }
}

TEST(Campaign, OnCellStreamsInCellOrder) {
  const auto cells = small_grid();
  worker_pool pool(4);
  campaign_options opts;
  opts.threads = 4;
  opts.pool = &pool;
  std::vector<std::string> seen;
  opts.on_cell = [&](const cell_result& r) { seen.push_back(r.cell.label()); };
  const auto results = run_campaign(cells, opts);
  ASSERT_EQ(seen.size(), cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    EXPECT_EQ(seen[i], cells[i].label()) << i;
    EXPECT_GT(results[i].seconds, 0.0);
    EXPECT_FALSE(results[i].resumed);
  }
}

TEST(Campaign, UnknownScenarioThrowsBeforeRunning) {
  std::vector<campaign_cell> cells = small_grid();
  cells[1].scenario = "no-such-scenario";
  bool ran = false;
  campaign_options opts;
  opts.on_cell = [&](const cell_result&) { ran = true; };
  EXPECT_THROW(run_campaign(cells, opts), std::invalid_argument);
  EXPECT_FALSE(ran);
}

TEST(Campaign, TweakAndVariantDefineDistinctCells) {
  campaign_cell plain;
  plain.scenario = "figure1-exp1";
  plain.params.n = 8;
  plain.params.seed = 5;
  plain.trials = 60;

  campaign_cell halting = plain;
  halting.variant = "h=0.05";
  halting.tweak = [](sim_config& config) {
    config.sched.halt_probability = 0.05;
  };

  const auto results = run_campaign({plain, halting});
  EXPECT_NE(cell_hash(plain), cell_hash(halting));
  // Heavy halting at h = 0.05 loses processes; the plain cell never does.
  EXPECT_EQ(results[0].metrics.get("mean_survivors"), 8.0);
  EXPECT_LT(results[1].metrics.get("mean_survivors"), 8.0);
}

TEST(Campaign, NativeBackendCellsReportNativeMetricsAndNoFabricatedRounds) {
  campaign_grid grid;
  grid.scenarios = {"mp-abd", "mutex-noise", "hybrid-quantum"};
  grid.ns = {4};
  grid.trials = 10;
  grid.seed = 11;
  worker_pool pool(4);
  campaign_options opts;
  opts.threads = 4;
  opts.pool = &pool;
  const auto results = run_campaign(grid, opts);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& r : results) {
    EXPECT_EQ(r.metrics.get("trials"), 10.0) << r.cell.label();
    EXPECT_EQ(r.metrics.get("decided"), 10.0) << r.cell.label();
    EXPECT_EQ(r.metrics.get("violations"), 0.0) << r.cell.label();
    // Native backends have no lean-round notion: every round metric is
    // ABSENT from the extraction (NaN reads), never a fabricated zero.
    for (const char* name : {"mean_round", "round_ci95", "round_p50",
                             "round_p95", "round_min", "round_max",
                             "mean_last_round"}) {
      EXPECT_TRUE(std::isnan(r.metrics.get(name)))
          << r.cell.label() << " " << name;
    }
  }
  // Each backend's native metrics flow through the extraction.
  EXPECT_GT(results[0].metrics.get("mean_messages"), 0.0);
  EXPECT_GT(results[0].metrics.get("messages_sum"), 0.0);
  EXPECT_GT(results[0].metrics.get("mean_msgs_per_reg_op"), 2.0);
  EXPECT_GT(results[1].metrics.get("mean_entries"), 0.0);
  EXPECT_GE(results[1].metrics.get("mean_slow_path_entries"), 0.0);
  EXPECT_GT(results[1].metrics.get("mean_total_ops"), 0.0);
  EXPECT_GE(results[2].metrics.get("mean_preemptions"), 0.0);
  EXPECT_LE(results[2].metrics.get("mean_max_ops"), 12.0);  // Theorem 14

  // Determinism holds for native backends too.
  const auto again = run_campaign(grid, opts);
  for (std::size_t i = 0; i < results.size(); ++i) {
    expect_same_metrics(results[i].metrics, again[i].metrics,
                        results[i].cell.label());
  }
}

TEST(Campaign, NativeGridIsBitIdenticalAcrossPoolSizes) {
  // Satellite of the unified-workload contract: pool-size bit-identity
  // must hold with backend-native metrics present, not just for the
  // shared-memory names.
  campaign_grid grid;
  grid.scenarios = {"mp-abd", "mutex-noise", "hybrid-quantum",
                    "figure1-exp1"};
  grid.ns = {4, 8};
  grid.trials = 24;
  grid.seed = 29;
  const auto cells = grid.expand();

  worker_pool pool1(1);
  campaign_options base_opts;
  base_opts.threads = 1;
  base_opts.pool = &pool1;
  const auto reference = run_campaign(cells, base_opts);
  for (const unsigned size : {2u, 4u, 8u}) {
    worker_pool pool(size);
    campaign_options opts;
    opts.threads = size;
    opts.pool = &pool;
    const auto got = run_campaign(cells, opts);
    ASSERT_EQ(got.size(), reference.size());
    for (std::size_t i = 0; i < got.size(); ++i) {
      expect_same_metrics(reference[i].metrics, got[i].metrics,
                          "pool " + std::to_string(size) + " cell " +
                              got[i].cell.label());
    }
  }
}

TEST(Campaign, NativeBackendCellWithTweakFailsFastBeforeRunning) {
  // A sim_config tweak cannot apply to a native backend; the campaign
  // must reject it up front (no silent drop, no work scheduled).
  std::vector<campaign_cell> cells = small_grid();
  campaign_cell bad;
  bad.scenario = "mp-abd";
  bad.params.n = 4;
  bad.trials = 5;
  bad.variant = "tweaked";
  bad.tweak = [](sim_config& config) { config.sched.halt_probability = 0.5; };
  cells.push_back(bad);

  bool ran = false;
  campaign_options opts;
  opts.on_cell = [&](const cell_result&) { ran = true; };
  try {
    run_campaign(cells, opts);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("mp-abd"), std::string::npos);
    EXPECT_NE(what.find("tweak"), std::string::npos);
  }
  EXPECT_FALSE(ran);
}

TEST(CampaignGrid, TrialsForScalesPerCellWithStableSeeds) {
  campaign_grid grid;
  grid.scenarios = {"figure1-exp1", "mp-abd"};
  grid.ns = {4, 64, 1024};
  grid.trials = 100;
  grid.seed = 5;
  const auto flat = grid.expand();

  // Op-budget style: down-weight large n.
  grid.trials_for = [](const std::string&, std::uint64_t n) {
    return std::max<std::uint64_t>(2, 4096 / n);
  };
  const auto budgeted = grid.expand();
  ASSERT_EQ(budgeted.size(), flat.size());
  for (std::size_t i = 0; i < budgeted.size(); ++i) {
    EXPECT_EQ(budgeted[i].trials,
              std::max<std::uint64_t>(2, 4096 / budgeted[i].params.n));
    // The seed depends only on the grid shape, never on the trial
    // schedule: resume keys of unchanged cells stay stable.
    EXPECT_EQ(budgeted[i].params.seed, flat[i].params.seed) << i;
    EXPECT_EQ(budgeted[i].scenario, flat[i].scenario) << i;
  }
}

// --- Streaming + resume ----------------------------------------------------

TEST(CampaignIo, EmittedFileIsByteIdenticalAcrossPoolSizes) {
  const auto cells = small_grid();
  std::vector<std::string> contents;
  for (const unsigned size : {1u, 2u, 4u, 8u}) {
    const std::string path = testing::TempDir() + "cells_pool" +
                             std::to_string(size) + ".jsonl";
    worker_pool pool(size);
    campaign_io io(path, false);
    campaign_options opts;
    opts.threads = size;
    opts.pool = &pool;
    opts.io = &io;
    run_campaign(cells, opts);
    contents.push_back(read_file(path));
  }
  for (std::size_t i = 1; i < contents.size(); ++i) {
    EXPECT_EQ(contents[0], contents[i]) << "pool size index " << i;
  }
  EXPECT_NE(contents[0].find("\"cell\": \"figure1-exp1/n=4\""),
            std::string::npos);
}

TEST(CampaignIo, ResumeSkipsCompletedCellsAndRestoresMetrics) {
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "cells_resume.jsonl";

  std::vector<cell_result> first;
  {
    campaign_io io(path, false);
    campaign_options opts;
    opts.io = &io;
    first = run_campaign(cells, opts);
  }

  campaign_io io(path, true);
  EXPECT_EQ(io.loaded(), cells.size());
  EXPECT_EQ(io.skipped_lines(), 0u);
  campaign_options opts;
  opts.io = &io;
  const auto second = run_campaign(cells, opts);
  ASSERT_EQ(second.size(), first.size());
  for (std::size_t i = 0; i < second.size(); ++i) {
    EXPECT_TRUE(second[i].resumed) << i;
    EXPECT_EQ(second[i].seconds, 0.0);
    expect_same_metrics(first[i].metrics, second[i].metrics,
                        second[i].cell.label());
  }
  // Nothing was re-emitted: the file still holds exactly one line per cell.
  std::istringstream lines(read_file(path));
  std::string line;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    if (!line.empty()) ++count;
  }
  EXPECT_EQ(count, cells.size());
}

TEST(CampaignIo, PartialFileRerunsOnlyMissingCells) {
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "cells_partial.jsonl";
  {
    campaign_io io(path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  // Keep the first three lines plus one torn line (a crash mid-write).
  const std::string full = read_file(path);
  std::size_t cut = 0;
  for (int i = 0; i < 3; ++i) cut = full.find('\n', cut) + 1;
  {
    std::ofstream out(path, std::ios::trunc);
    out << full.substr(0, cut) << "{\"cell\": \"torn";
  }

  campaign_io io(path, true);
  EXPECT_EQ(io.loaded(), 3u);
  EXPECT_EQ(io.skipped_lines(), 1u);
  campaign_options opts;
  opts.io = &io;
  const auto results = run_campaign(cells, opts);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i].resumed, i < 3) << i;
  }
  // The re-run cells were appended; resume again finds everything.
  campaign_io io2(path, true);
  EXPECT_EQ(io2.loaded(), cells.size());
}

TEST(CampaignIo, RecordSecondsIsOptInAndRoundTrips) {
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "cells_seconds.jsonl";
  {
    campaign_io io(path, false, /*record_seconds=*/true);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  std::size_t skipped = 0;
  const auto records = campaign_io::read_records(path, &skipped);
  EXPECT_EQ(skipped, 0u);
  ASSERT_EQ(records.size(), cells.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].label, cells[i].label()) << i;
    EXPECT_EQ(records[i].scenario, cells[i].scenario) << i;
    EXPECT_EQ(records[i].n, cells[i].params.n) << i;
    EXPECT_EQ(records[i].trials, cells[i].trials) << i;
    EXPECT_EQ(records[i].seed, cells[i].params.seed) << i;
    EXPECT_GT(records[i].seconds, 0.0) << i;
  }

  // The default (seconds off) keeps the historical line shape.
  const std::string plain_path = testing::TempDir() + "cells_noseconds.jsonl";
  {
    campaign_io io(plain_path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  const std::string plain = read_file(plain_path);
  EXPECT_EQ(plain.find("\"seconds\""), std::string::npos);
  // Resume works on a seconds-carrying file exactly as on a plain one.
  campaign_io io(path, true, true);
  EXPECT_EQ(io.loaded(), cells.size());
  campaign_options opts;
  opts.io = &io;
  const auto resumed = run_campaign(cells, opts);
  for (const auto& r : resumed) EXPECT_TRUE(r.resumed);
}

TEST(CampaignIo, ChangedConfigDoesNotMatchOldRecords) {
  auto cells = small_grid();
  const std::string path = testing::TempDir() + "cells_changed.jsonl";
  {
    campaign_io io(path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  // More trials = a different config hash = a fresh run for every cell.
  for (auto& cell : cells) cell.trials += 1;
  campaign_io io(path, true);
  campaign_options opts;
  opts.io = &io;
  const auto results = run_campaign(cells, opts);
  for (const auto& r : results) EXPECT_FALSE(r.resumed);
}

// --- Merging shard/overlap files -------------------------------------------

std::string write_lines(const std::string& name,
                        const std::vector<std::string>& lines) {
  const std::string path = testing::TempDir() + name;
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  for (const auto& line : lines) out << line << "\n";
  return path;
}

std::vector<std::string> file_lines(const std::string& path) {
  std::istringstream in(read_file(path));
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines.push_back(line);
  }
  return lines;
}

TEST(CampaignIoMerge, DuplicateIdenticalCellsDeduplicateAndCount) {
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "merge_dup_full.jsonl";
  {
    campaign_io io(path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  const auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), cells.size());
  // A second file repeating the first three cells (e.g. two resume
  // fragments of the same shard): identical bytes merge away.
  const std::string overlap = write_lines(
      "merge_dup_overlap.jsonl", {lines[0], lines[1], lines[2]});

  const auto merged = campaign_io::merge_files({path, overlap});
  EXPECT_EQ(merged.lines.size(), cells.size());
  EXPECT_EQ(merged.records.size(), cells.size());
  EXPECT_EQ(merged.duplicate_cells, 3u);
  EXPECT_EQ(merged.skipped_lines, 0u);
  for (std::size_t i = 0; i < merged.lines.size(); ++i) {
    EXPECT_EQ(merged.lines[i], lines[i]) << i;
    EXPECT_EQ(merged.records[i].ordinal, i);
  }
}

TEST(CampaignIoMerge, SameKeyDifferentBytesIsAHardErrorNamingTheCell) {
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "merge_conflict_a.jsonl";
  {
    campaign_io io(path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  auto lines = file_lines(path);
  // Corrupt one metric digit of the second cell: same (hash, seed) key,
  // different bytes — two shards disagreeing about one cell must never
  // merge silently.
  std::string& line = lines[1];
  const std::size_t pos = line.find("\"metrics\": {");
  ASSERT_NE(pos, std::string::npos);
  const std::size_t digit = line.find_first_of("0123456789", pos + 12 + 12);
  ASSERT_NE(digit, std::string::npos);
  line[digit] = line[digit] == '9' ? '8' : '9';
  const std::string conflicting =
      write_lines("merge_conflict_b.jsonl", {lines[1]});

  try {
    campaign_io::merge_files({path, conflicting});
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(cells[1].label()), std::string::npos) << what;
    EXPECT_NE(what.find("merge_conflict_a.jsonl"), std::string::npos) << what;
    EXPECT_NE(what.find("merge_conflict_b.jsonl"), std::string::npos) << what;
  }
}

TEST(CampaignIoMerge, SecondsOnlyDifferencesDeduplicateAsReruns) {
  // Two overlapping --cell-seconds files: a re-run of the same cell lands
  // on the same (hash, seed) key with identical deterministic fields but a
  // different wall-clock "seconds" value. That is the same result, not a
  // conflict — it must dedup (and count) like a byte-identical duplicate.
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "merge_seconds_a.jsonl";
  {
    campaign_io io(path, false, /*record_seconds=*/true);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  const auto lines = file_lines(path);
  ASSERT_EQ(lines.size(), cells.size());
  // The re-run file: every line with its timing rewritten (a re-run never
  // reproduces the wall clock; forcing the difference keeps the test
  // deterministic).
  std::vector<std::string> rerun;
  for (const auto& line : lines) {
    const std::size_t pos = line.find("\"seconds\": ");
    ASSERT_NE(pos, std::string::npos) << line;
    const std::size_t end = line.find(',', pos);
    ASSERT_NE(end, std::string::npos) << line;
    rerun.push_back(line.substr(0, pos) + "\"seconds\": 123.5" +
                    line.substr(end));
    ASSERT_NE(rerun.back(), line);
  }
  const std::string rerun_path =
      write_lines("merge_seconds_b.jsonl", rerun);

  const auto merged = campaign_io::merge_files({path, rerun_path});
  EXPECT_EQ(merged.lines.size(), cells.size());
  EXPECT_EQ(merged.duplicate_cells, cells.size());
  EXPECT_EQ(merged.skipped_lines, 0u);
  // First-seen lines win, so the merge reproduces file A byte for byte.
  for (std::size_t i = 0; i < merged.lines.size(); ++i) {
    EXPECT_EQ(merged.lines[i], lines[i]) << i;
  }

  // The tolerance is ONLY for "seconds": a re-run whose metrics also
  // diverged is still the hard conflict it always was.
  std::string corrupt = rerun[1];
  const std::size_t mpos = corrupt.find("\"metrics\": {");
  ASSERT_NE(mpos, std::string::npos);
  const std::size_t digit =
      corrupt.find_first_of("0123456789", mpos + 12 + 12);
  ASSERT_NE(digit, std::string::npos);
  corrupt[digit] = corrupt[digit] == '9' ? '8' : '9';
  const std::string corrupt_path =
      write_lines("merge_seconds_c.jsonl", {corrupt});
  EXPECT_THROW(campaign_io::merge_files({path, corrupt_path}),
               std::runtime_error);
}

TEST(CampaignIoMerge, TornTailInOneShardIsSkippedAndCounted) {
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "merge_torn_a.jsonl";
  {
    campaign_io io(path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  const auto lines = file_lines(path);
  // Shard B dies mid-write: a healthy line plus a torn final one.
  const std::string torn_path = testing::TempDir() + "merge_torn_b.jsonl";
  {
    std::ofstream out(torn_path, std::ios::trunc | std::ios::binary);
    out << lines[3] << "\n" << lines[4].substr(0, lines[4].size() / 2);
  }

  const auto merged = campaign_io::merge_files({torn_path, path});
  EXPECT_EQ(merged.lines.size(), cells.size());
  EXPECT_EQ(merged.skipped_lines, 1u);  // the torn tail
  EXPECT_EQ(merged.duplicate_cells, 1u);  // lines[3], intact in both
  for (std::size_t i = 0; i < merged.lines.size(); ++i) {
    EXPECT_EQ(merged.lines[i], lines[i]) << i;
  }
}

TEST(CampaignIoMerge, EmptyShardFilesAndEmptyInputsAreFine) {
  const std::string empty = write_lines("merge_empty.jsonl", {});
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "merge_with_empty.jsonl";
  {
    campaign_io io(path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  // An empty shard (its hash range owned no cells) contributes nothing.
  const auto merged = campaign_io::merge_files({empty, path, empty});
  EXPECT_EQ(merged.lines.size(), cells.size());
  EXPECT_EQ(merged.duplicate_cells, 0u);
  EXPECT_EQ(merged.skipped_lines, 0u);

  const auto nothing = campaign_io::merge_files({empty});
  EXPECT_TRUE(nothing.lines.empty());
  EXPECT_TRUE(nothing.records.empty());

  EXPECT_THROW(campaign_io::merge_files({"no/such/file.jsonl"}),
               std::runtime_error);
}

TEST(CampaignIoMerge, SurfacesMissingAndEmptyInputsAsNamedLists) {
  const std::string empty = write_lines("merge_surfaced_empty.jsonl", {});
  const auto cells = small_grid();
  const std::string path = testing::TempDir() + "merge_surfaced.jsonl";
  {
    campaign_io io(path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  // tolerate_missing collects unreadable paths instead of throwing — the
  // fleet supervisor knows which shards died and must see WHICH inputs
  // contributed nothing rather than a short merge.
  const auto merged = campaign_io::merge_files(
      {path, "no/such/shard.jsonl", empty}, /*tolerate_missing=*/true);
  EXPECT_EQ(merged.lines.size(), cells.size());
  ASSERT_EQ(merged.missing_files.size(), 1u);
  EXPECT_EQ(merged.missing_files[0], "no/such/shard.jsonl");
  ASSERT_EQ(merged.empty_files.size(), 1u);
  EXPECT_EQ(merged.empty_files[0], empty);

  // Without tolerate_missing the unreadable path still throws (the
  // campaign_report CLI path), and readable-but-empty inputs are still
  // named.
  EXPECT_THROW(campaign_io::merge_files({path, "no/such/shard.jsonl"}),
               std::runtime_error);
  const auto strict = campaign_io::merge_files({path, empty});
  EXPECT_TRUE(strict.missing_files.empty());
  ASSERT_EQ(strict.empty_files.size(), 1u);
}

// --- Acceptance pin --------------------------------------------------------

TEST(Campaign, Figure1SmokeGridMatchesCommittedBaseline) {
  // The committed baseline was produced by bench/fig1_mean_round with
  // --nmax=100 --trials=20 --op-budget=200000 --seed=20000625. Rebuilding
  // that grid here and running it through the campaign engine must
  // reproduce every series value bit-for-bit, for any pool size.
  const std::string path = std::string(LEANCON_SOURCE_DIR) +
                           "/bench/baselines/BENCH_fig1_mean_round.json";
  const json::value baseline = json::parse(read_file(path));
  const json::value* series = baseline.find("series");
  ASSERT_NE(series, nullptr);

  const auto catalog = figure1_catalog();
  const std::uint64_t seed = 20000625;
  const std::vector<std::uint64_t> ns{1, 10, 100};
  std::vector<campaign_cell> cells;
  for (const auto n : ns) {
    for (std::size_t d = 0; d < catalog.size(); ++d) {
      const std::uint64_t per_trial = n * 48 + 8;
      campaign_cell cell;
      cell.scenario = "figure1-" + catalog[d].key;
      cell.params.n = n;
      cell.params.seed = seed + d * 1000003 + n;
      cell.trials = std::max<std::uint64_t>(
          6, std::min<std::uint64_t>(20, 200000 / per_trial));
      cells.push_back(std::move(cell));
    }
  }

  worker_pool pool(4);
  campaign_options opts;
  opts.threads = 4;
  opts.pool = &pool;
  const auto results = run_campaign(cells, opts);

  double sim_ops = 0.0;
  ASSERT_EQ(series->items.size(), catalog.size());
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::size_t d = i % catalog.size();
    const std::size_t n_index = i / catalog.size();
    const auto& m = results[i].metrics;
    sim_ops += m.get("total_ops_sum");

    const json::value& ser = series->items[d];
    ASSERT_EQ(ser.find("name")->str, catalog[d].dist->name());
    const json::value& pt = ser.find("points")->items[n_index];
    EXPECT_EQ(pt.find("x")->num, static_cast<double>(ns[n_index]));
    EXPECT_EQ(pt.find("mean_round")->num, m.get("mean_round"))
        << results[i].cell.label();
    EXPECT_EQ(pt.find("ci95")->num, m.get("round_ci95"))
        << results[i].cell.label();
    EXPECT_EQ(pt.find("trials")->num, m.get("trials"))
        << results[i].cell.label();
  }
  // The accumulated operation counter matches exactly too (same values,
  // same summation order).
  EXPECT_EQ(baseline.find("counters")->find("sim_ops")->num, sim_ops);
}

}  // namespace
}  // namespace leancon
