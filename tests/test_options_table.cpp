#include "util/options.h"
#include "util/table.h"

#include <gtest/gtest.h>

#include <sstream>

namespace leancon {
namespace {

options make_options() {
  options opts;
  opts.add("trials", "100", "number of trials");
  opts.add("noise", "exp1", "noise distribution key");
  opts.add("scale", "1.5", "noise scale");
  opts.add("verbose", "false", "chatty output");
  opts.add("sweep", "1,10,100", "n sweep");
  return opts;
}

/// Fixture capturing parse() diagnostics so rejected-input tests keep the
/// gtest log clean and can assert exactly what the user would be told.
class OptionsDiagnostics : public ::testing::Test {
 protected:
  OptionsDiagnostics() : opts_(make_options()) {
    opts_.set_diagnostics(diag_);
  }
  options opts_;
  std::ostringstream diag_;
};

TEST(Options, DefaultsApply) {
  auto opts = make_options();
  const char* argv[] = {"prog"};
  ASSERT_TRUE(opts.parse(1, argv));
  EXPECT_EQ(opts.get_int("trials"), 100);
  EXPECT_EQ(opts.get("noise"), "exp1");
  EXPECT_DOUBLE_EQ(opts.get_double("scale"), 1.5);
  EXPECT_FALSE(opts.get_bool("verbose"));
}

TEST(Options, EqualsSyntax) {
  auto opts = make_options();
  const char* argv[] = {"prog", "--trials=42", "--noise=geom",
                        "--verbose=true"};
  ASSERT_TRUE(opts.parse(4, argv));
  EXPECT_EQ(opts.get_int("trials"), 42);
  EXPECT_EQ(opts.get("noise"), "geom");
  EXPECT_TRUE(opts.get_bool("verbose"));
}

TEST(Options, SpaceSyntax) {
  auto opts = make_options();
  const char* argv[] = {"prog", "--trials", "7"};
  ASSERT_TRUE(opts.parse(3, argv));
  EXPECT_EQ(opts.get_int("trials"), 7);
}

TEST(Options, BareBooleanFlagImpliesTrue) {
  auto opts = make_options();
  const char* argv[] = {"prog", "--verbose"};
  ASSERT_TRUE(opts.parse(2, argv));
  EXPECT_TRUE(opts.get_bool("verbose"));
}

TEST(Options, BareBooleanFollowedByAnotherFlag) {
  auto opts = make_options();
  const char* argv[] = {"prog", "--verbose", "--trials=9"};
  ASSERT_TRUE(opts.parse(3, argv));
  EXPECT_TRUE(opts.get_bool("verbose"));
  EXPECT_EQ(opts.get_int("trials"), 9);
}

TEST_F(OptionsDiagnostics, UnknownFlagRejectedWithUsageOnStream) {
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_FALSE(opts_.parse(2, argv));
  EXPECT_NE(diag_.str().find("unknown flag --bogus"), std::string::npos);
  EXPECT_NE(diag_.str().find("usage: prog"), std::string::npos);
}

TEST_F(OptionsDiagnostics, MissingValueRejectedWithMessageOnStream) {
  const char* argv[] = {"prog", "--trials"};
  EXPECT_FALSE(opts_.parse(2, argv));
  EXPECT_NE(diag_.str().find("flag --trials needs a value"),
            std::string::npos);
}

TEST_F(OptionsDiagnostics, PositionalRejectedWithMessageOnStream) {
  const char* argv[] = {"prog", "17"};
  EXPECT_FALSE(opts_.parse(2, argv));
  EXPECT_NE(diag_.str().find("unexpected positional argument: 17"),
            std::string::npos);
}

TEST_F(OptionsDiagnostics, HelpReturnsFalseAndWritesUsageToStream) {
  const char* argv[] = {"prog", "--help"};
  EXPECT_FALSE(opts_.parse(2, argv));
  EXPECT_NE(diag_.str().find("usage: prog"), std::string::npos);
  EXPECT_NE(diag_.str().find("--trials"), std::string::npos);
}

TEST_F(OptionsDiagnostics, AcceptedParseWritesNothing) {
  const char* argv[] = {"prog", "--trials=42"};
  EXPECT_TRUE(opts_.parse(2, argv));
  EXPECT_TRUE(diag_.str().empty());
}

TEST(Options, FlagValuesReportParsedOverDefault) {
  auto opts = make_options();
  const char* argv[] = {"prog", "--trials=42"};
  ASSERT_TRUE(opts.parse(2, argv));
  bool saw_trials = false, saw_noise = false;
  for (const auto& [name, value] : opts.flag_values()) {
    if (name == "trials") {
      saw_trials = true;
      EXPECT_EQ(value, "42");
    }
    if (name == "noise") {
      saw_noise = true;
      EXPECT_EQ(value, "exp1");  // default applies
    }
  }
  EXPECT_TRUE(saw_trials);
  EXPECT_TRUE(saw_noise);
}

TEST(Options, IntListParsing) {
  auto opts = make_options();
  const char* argv[] = {"prog", "--sweep=1,10,100,1000"};
  ASSERT_TRUE(opts.parse(2, argv));
  const auto sweep = opts.get_int_list("sweep");
  ASSERT_EQ(sweep.size(), 4u);
  EXPECT_EQ(sweep[0], 1);
  EXPECT_EQ(sweep[3], 1000);
}

TEST(Options, UndeclaredGetThrows) {
  auto opts = make_options();
  EXPECT_THROW(opts.get("nope"), std::invalid_argument);
}

TEST(Options, BoolSpellings) {
  auto opts = make_options();
  const char* argv[] = {"prog", "--verbose=yes"};
  ASSERT_TRUE(opts.parse(2, argv));
  EXPECT_TRUE(opts.get_bool("verbose"));
}

TEST(Options, UsageMentionsFlagsAndDefaults) {
  auto opts = make_options();
  const std::string u = opts.usage("prog");
  EXPECT_NE(u.find("--trials"), std::string::npos);
  EXPECT_NE(u.find("100"), std::string::npos);
}

TEST(Table, RendersAlignedColumns) {
  table t({"n", "mean", "note"});
  t.begin_row();
  t.cell(std::int64_t{10});
  t.cell(3.14159, 2);
  t.cell("hello");
  t.begin_row();
  t.cell(std::int64_t{100000});
  t.cell(2.0, 2);
  t.cell("x");
  const std::string s = t.to_string();
  EXPECT_NE(s.find("100000"), std::string::npos);
  EXPECT_NE(s.find("3.14"), std::string::npos);
  EXPECT_NE(s.find("hello"), std::string::npos);
  // Header separator present.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, HandlesRaggedRows) {
  table t({"a", "b"});
  t.begin_row();
  t.cell("only-one");
  EXPECT_NO_THROW(t.to_string());
}

TEST(Table, FormatDouble) {
  EXPECT_EQ(format_double(1.23456, 2), "1.23");
  EXPECT_EQ(format_double(2.0, 0), "2");
}

}  // namespace
}  // namespace leancon
