#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

namespace leancon {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next(), b.next()) << "diverged at step " << i;
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, StreamsAreIndependent) {
  rng a(7, 1), b(7, 2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SameSeedSameStreamIdentical) {
  rng a(7, 3), b(7, 3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, Uniform01InRange) {
  rng gen(123);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform01();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(Rng, Uniform01MeanNearHalf) {
  rng gen(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += gen.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformRespectsBounds) {
  rng gen(9);
  for (int i = 0; i < 10000; ++i) {
    const double u = gen.uniform(2.5, 7.5);
    ASSERT_GE(u, 2.5);
    ASSERT_LT(u, 7.5);
  }
}

TEST(Rng, BelowZeroBoundReturnsZero) {
  rng gen(1);
  EXPECT_EQ(gen.below(0), 0u);
}

TEST(Rng, BelowStaysBelow) {
  rng gen(77);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 7ull, 100ull, 1ull << 40}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(gen.below(bound), bound);
    }
  }
}

TEST(Rng, BelowOneAlwaysZero) {
  rng gen(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.below(1), 0u);
}

TEST(Rng, BelowCoversSupport) {
  rng gen(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(gen.below(7));
  EXPECT_EQ(seen.size(), 7u);
}

TEST(Rng, BernoulliEdges) {
  rng gen(4);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(gen.bernoulli(0.0));
    EXPECT_TRUE(gen.bernoulli(1.0));
    EXPECT_FALSE(gen.bernoulli(-1.0));
    EXPECT_TRUE(gen.bernoulli(2.0));
  }
}

TEST(Rng, BernoulliRate) {
  rng gen(8);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += gen.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanAndPositivity) {
  rng gen(10);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = gen.exponential(2.0);
    ASSERT_GE(x, 0.0);
    sum += x;
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMoments) {
  rng gen(12);
  double sum = 0, sumsq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double x = gen.normal(3.0, 2.0);
    sum += x;
    sumsq += x * x;
  }
  const double mean = sum / n;
  const double var = sumsq / n - mean * mean;
  EXPECT_NEAR(mean, 3.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.1);
}

TEST(Rng, GeometricSupportAndMean) {
  rng gen(13);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t g = gen.geometric(0.5);
    ASSERT_GE(g, 1u);
    sum += static_cast<double>(g);
  }
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, GeometricPOneIsAlwaysOne) {
  rng gen(14);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(gen.geometric(1.0), 1u);
}

TEST(Rng, ForkDiverges) {
  rng parent(21);
  rng child = parent.fork();
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next() == child.next()) ++equal;
  }
  EXPECT_LE(equal, 1);
}

TEST(Rng, SplitmixAdvances) {
  std::uint64_t s = 0;
  const auto a = splitmix64_next(s);
  const auto b = splitmix64_next(s);
  EXPECT_NE(a, b);
  EXPECT_NE(s, 0u);
}


TEST(Rng, FillMatchesRepeatedNext) {
  rng a(7), b(7);
  std::uint64_t block[257];
  a.fill(block, 257);
  for (int i = 0; i < 257; ++i) {
    ASSERT_EQ(block[i], b.next()) << "index " << i;
  }
  EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SplitmixFillMatchesRepeatedAdvance) {
  std::uint64_t block[16];
  splitmix64_fill(0xfeedULL, block, 16);
  std::uint64_t state = 0xfeedULL;
  for (int i = 0; i < 16; ++i) {
    ASSERT_EQ(block[i], splitmix64_next(state));
  }
}

TEST(Rng, BoundedUintMatchesBelowExactly) {
  // Across bounds with different rejection thresholds (powers of two have
  // threshold 0; odd bounds near 2^63 reject nearly half the words).
  const std::uint64_t bounds[] = {1,
                                  2,
                                  3,
                                  10,
                                  64,
                                  1000003,
                                  (1ULL << 62) + 12345,
                                  0x9000000000000001ULL};
  for (const std::uint64_t bound : bounds) {
    const bounded_uint draw(bound);
    rng a(21, bound), b(21, bound);
    for (int i = 0; i < 5000; ++i) {
      ASSERT_EQ(draw(a), b.below(bound)) << "bound " << bound << " i " << i;
    }
    ASSERT_EQ(a.next(), b.next()) << "stream diverged for bound " << bound;
  }
}

TEST(Rng, BoundedUintZeroBoundReturnsZero) {
  const bounded_uint draw(0);
  rng gen(1);
  EXPECT_EQ(draw(gen), 0u);
}

}  // namespace
}  // namespace leancon
