// Tests for the shared bench harness: recording surfaces, warmup/repetition
// accounting, run selection, the BENCH json emitter, and the schema
// validator (including the committed smoke-scale baseline).
#include "harness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "exp/campaign_io.h"

namespace leancon::bench {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(Point, SetAppendsAndOverwrites) {
  point p;
  p.set("mean", 1.0).set("ci95", 0.5);
  ASSERT_EQ(p.metrics.size(), 2u);
  p.set("mean", 2.0);
  ASSERT_EQ(p.metrics.size(), 2u);
  EXPECT_EQ(p.metrics[0].first, "mean");
  EXPECT_DOUBLE_EQ(p.metrics[0].second, 2.0);
}

TEST(Series, AtAppendsPointsInOrder) {
  series s{"run", "curve", {}};
  s.at(1.0).set("y", 10.0);
  s.at(2.0).set("y", 20.0);
  ASSERT_EQ(s.points.size(), 2u);
  EXPECT_DOUBLE_EQ(s.points[0].x, 1.0);
  EXPECT_DOUBLE_EQ(s.points[1].x, 2.0);
}

TEST(Harness, TimeExecutesWarmupPlusRepeat) {
  harness h("timing");
  int calls = 0;
  double mean_seconds = -1.0;
  h.add("timed", [&](run_context& ctx) {
    EXPECT_EQ(ctx.warmup(), 2u);
    EXPECT_EQ(ctx.repeat(), 3u);
    mean_seconds = ctx.time([&] { ++calls; });
  });
  const char* argv[] = {"prog", "--warmup=2", "--repeat=3"};
  ASSERT_EQ(h.main(3, argv), 0);
  EXPECT_EQ(calls, 5);  // 2 untimed + 3 timed
  EXPECT_GE(mean_seconds, 0.0);
}

TEST(Harness, RepeatZeroIsClampedToOne) {
  harness h("timing");
  int calls = 0;
  h.add("timed", [&](run_context& ctx) { ctx.time([&] { ++calls; }); });
  const char* argv[] = {"prog", "--repeat=0"};
  ASSERT_EQ(h.main(2, argv), 0);
  EXPECT_EQ(calls, 1);
}

TEST(Harness, RunFilterSelectsMatchingRuns) {
  harness h("filtered");
  std::vector<std::string> executed;
  h.add("alpha", [&](run_context&) { executed.push_back("alpha"); });
  h.add("beta", [&](run_context&) { executed.push_back("beta"); });
  h.add("alphabet", [&](run_context&) { executed.push_back("alphabet"); });
  const char* argv[] = {"prog", "--run=alpha"};
  ASSERT_EQ(h.main(2, argv), 0);
  ASSERT_EQ(executed.size(), 2u);
  EXPECT_EQ(executed[0], "alpha");
  EXPECT_EQ(executed[1], "alphabet");
}

TEST(Harness, RunFailurePropagatesToExitCode) {
  harness h("failing");
  testing::internal::CaptureStderr();
  h.add("broken", [](run_context& ctx) { ctx.fail("cannot open sink"); });
  const char* argv[] = {"prog"};
  EXPECT_EQ(h.main(1, argv), 1);
  EXPECT_NE(testing::internal::GetCapturedStderr().find("cannot open sink"),
            std::string::npos);
}

TEST(Harness, NoMatchingRunFails) {
  harness h("filtered");
  h.add("alpha", [](run_context&) {});
  const char* argv[] = {"prog", "--run=nope"};
  EXPECT_EQ(h.main(2, argv), 1);
}

TEST(Harness, BadFlagFailsWithoutPollutingStderr) {
  harness h("strict");
  std::ostringstream sink;
  h.opts().set_diagnostics(sink);
  h.add("noop", [](run_context&) {});
  const char* argv[] = {"prog", "--bogus=1"};
  EXPECT_EQ(h.main(2, argv), 1);
  EXPECT_NE(sink.str().find("unknown flag --bogus"), std::string::npos);
}

TEST(Harness, SeriesReferencesSurviveLaterAdds) {
  // Regression test: benches hold several series references at once (one
  // per curve), so add_series must never invalidate previously returned
  // references.
  options opts;
  results res;
  run_context ctx("run", opts, res, 0, 1);
  series& first = ctx.add_series("first");
  for (int i = 0; i < 100; ++i) {
    ctx.add_series("later" + std::to_string(i));
  }
  first.at(1.0).set("y", 42.0);
  ASSERT_EQ(res.series_list.front().points.size(), 1u);
  EXPECT_DOUBLE_EQ(res.series_list.front().points[0].metrics[0].second, 42.0);
}

TEST(Harness, CountersAccumulateAcrossCalls) {
  harness h("counting");
  h.add("ops", [](run_context& ctx) {
    ctx.add_counter("sim_ops", 10.0);
    ctx.add_counter("sim_ops", 32.0);
  });
  const std::string path = testing::TempDir() + "counters.json";
  const std::string json_flag = "--json=" + path;
  const char* argv[] = {"prog", json_flag.c_str()};
  ASSERT_EQ(h.main(2, argv), 0);
  const std::string text = read_file(path);
  EXPECT_NE(text.find("\"sim_ops\": 42"), std::string::npos);
  EXPECT_NE(text.find("\"seconds/ops\""), std::string::npos);
}

TEST(Harness, JsonRoundTripValidatesAndCarriesParams) {
  harness h("roundtrip");
  h.opts().add("trials", "100", "trial count");
  h.add("sweep", [](run_context& ctx) {
    auto& s = ctx.add_series("exp(1)");
    s.at(1.0).set("mean_round", 2.0).set("ci95", 0.125);
    s.at(10.0).set("mean_round", 4.5).set("ci95", 0.25);
  });
  const std::string path = testing::TempDir() + "roundtrip.json";
  const std::string json_flag = "--json=" + path;
  const char* argv[] = {"prog", json_flag.c_str(), "--trials=7"};
  ASSERT_EQ(h.main(3, argv), 0);

  const std::string text = read_file(path);
  EXPECT_EQ(validate_bench_json(text), std::nullopt)
      << *validate_bench_json(text);
  EXPECT_NE(text.find("\"bench\": \"roundtrip\""), std::string::npos);
  EXPECT_NE(text.find("\"trials\": \"7\""), std::string::npos);
  EXPECT_NE(text.find("\"name\": \"exp(1)\""), std::string::npos);
  EXPECT_NE(text.find("\"mean_round\": 4.5"), std::string::npos);
}

TEST(Harness, NonFiniteMetricsSerializeAsNull) {
  results r;
  r.bench = "nulls";
  series s{"run", "curve", {}};
  s.at(0.0).set("bad", std::nan(""));
  r.series_list.push_back(s);
  const std::string text = to_json(r);
  EXPECT_NE(text.find("\"bad\": null"), std::string::npos);
  EXPECT_EQ(validate_bench_json(text), std::nullopt)
      << *validate_bench_json(text);
}

TEST(Validator, AcceptsMinimalDocument) {
  EXPECT_EQ(validate_bench_json(
                R"({"bench": "b", "params": {}, "series": [], "seconds": 0})"),
            std::nullopt);
}

TEST(Validator, RejectsSchemaViolations) {
  // Each entry violates exactly one schema rule.
  const char* bad[] = {
      R"([])",                                                  // not an object
      R"({"params": {}, "series": [], "seconds": 0})",          // no bench
      R"({"bench": "", "params": {}, "series": [], "seconds": 0})",
      R"({"bench": "b", "series": [], "seconds": 0})",          // no params
      R"({"bench": "b", "params": {"k": 1}, "series": [], "seconds": 0})",
      R"({"bench": "b", "params": {}, "series": {}, "seconds": 0})",
      R"({"bench": "b", "params": {}, "series": [{"name": "s", "points": []}],
          "seconds": 0})",                                      // series no run
      R"({"bench": "b", "params": {}, "series":
          [{"run": "r", "name": "s", "points": [{"y": 1}]}],
          "seconds": 0})",                                      // point no x
      R"({"bench": "b", "params": {}, "series":
          [{"run": "r", "name": "s", "points": [{"x": 1, "m": "v"}]}],
          "seconds": 0})",                                      // string metric
      R"({"bench": "b", "params": {}, "series": [], "seconds": -1})",
      R"({"bench": "b", "params": {}, "series": [],
          "counters": {"c": "x"}, "seconds": 0})",
      R"({"bench": "b", "params": {}, "series": [], "seconds": 0,
          "extra": 1})",                                        // unknown key
      R"({"bench": "b", "params": {}, "series": [], "seconds": 0} trailing)",
      R"(not json at all)",
  };
  for (const char* doc : bad) {
    EXPECT_NE(validate_bench_json(doc), std::nullopt) << doc;
  }
}

TEST(CampaignBench, AggregatesCellsFilesIntoValidBenchJson) {
  // Run a mixed shared-memory/native grid streaming into two cells files
  // (with per-cell seconds recorded), then aggregate both through the
  // campaign-level BENCH emitter.
  const std::string path_a = testing::TempDir() + "campaign_bench_a.jsonl";
  const std::string path_b = testing::TempDir() + "campaign_bench_b.jsonl";
  campaign_grid grid;
  grid.scenarios = {"figure1-exp1", "mp-abd"};
  grid.ns = {4, 8};
  grid.trials = 12;
  grid.seed = 3;
  {
    campaign_io io(path_a, false, /*record_seconds=*/true);
    campaign_options opts;
    opts.io = &io;
    run_campaign(grid, opts);
  }
  campaign_grid grid_b = grid;
  grid_b.scenarios = {"mutex-noise"};
  grid_b.seed = 4;
  {
    campaign_io io(path_b, false, /*record_seconds=*/true);
    campaign_options opts;
    opts.io = &io;
    run_campaign(grid_b, opts);
  }

  const results res = campaign_bench("unit_campaign", {path_a, path_b});
  EXPECT_EQ(res.bench, "unit_campaign");
  // One series per scenario group, points at each n. The inputs are MERGED
  // in campaign-position order (both files carry cells at indices 0 and 1,
  // which interleave), so mutex-noise — index 0 of its campaign — groups
  // before mp-abd — indices 2, 3 of its campaign.
  ASSERT_EQ(res.series_list.size(), 3u);
  EXPECT_EQ(res.series_list[0].name, "figure1-exp1");
  EXPECT_EQ(res.series_list[1].name, "mutex-noise");
  EXPECT_EQ(res.series_list[2].name, "mp-abd");
  for (const auto& ser : res.series_list) {
    ASSERT_EQ(ser.points.size(), 2u) << ser.name;
    EXPECT_EQ(ser.points[0].x, 4.0) << ser.name;
    EXPECT_EQ(ser.points[1].x, 8.0) << ser.name;
  }
  // Shared-memory points carry round metrics; native points carry their
  // native metrics and NO round metrics at all.
  const auto has_metric = [](const point& pt, const std::string& name) {
    for (const auto& [key, value] : pt.metrics) {
      if (key == name) return true;
      (void)value;
    }
    return false;
  };
  EXPECT_TRUE(has_metric(res.series_list[0].points[0], "mean_round"));
  EXPECT_FALSE(has_metric(res.series_list[2].points[0], "mean_round"));
  EXPECT_TRUE(has_metric(res.series_list[2].points[0], "mean_messages"));
  EXPECT_TRUE(
      has_metric(res.series_list[1].points[0], "mean_slow_path_entries"));

  // Counters: cells, roll-ups, per-cell seconds.
  const auto counter = [&res](const std::string& name) {
    for (const auto& [key, value] : res.counters) {
      if (key == name) return value;
    }
    return std::nan("");
  };
  EXPECT_EQ(counter("cells"), 6.0);
  EXPECT_EQ(counter("trials_total"), 72.0);
  EXPECT_GT(counter("sim_ops"), 0.0);  // figure1 + mutex total_ops_sum
  EXPECT_GT(counter("cell_seconds_total"), 0.0);
  EXPECT_GT(counter("cell_seconds/figure1-exp1/n=4"), 0.0);
  EXPECT_EQ(counter("skipped_lines"), 0.0);

  // The aggregate lands in the existing BENCH validator flow.
  const std::string text = to_json(res);
  EXPECT_EQ(validate_bench_json(text), std::nullopt)
      << *validate_bench_json(text);
}

TEST(Validator, CommittedFig1BaselineValidates) {
  const std::string path =
      std::string(LEANCON_SOURCE_DIR) + "/bench/baselines/BENCH_fig1_mean_round.json";
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(validate_bench_json(text), std::nullopt)
      << *validate_bench_json(text);
  EXPECT_NE(text.find("\"bench\": \"fig1_mean_round\""), std::string::npos);
  EXPECT_NE(text.find("\"mean_round\""), std::string::npos);
  // Campaign-era counters: the resolved cap, the persistent pool size, and
  // per-cell compute time.
  EXPECT_NE(text.find("\"pool_size\""), std::string::npos);
  EXPECT_NE(text.find("\"cell_seconds/figure1-exp1/n=100\""),
            std::string::npos);
}

TEST(Validator, CommittedScalingBaselineValidates) {
  const std::string path =
      std::string(LEANCON_SOURCE_DIR) + "/bench/baselines/BENCH_scaling_logn.json";
  const std::string text = read_file(path);
  ASSERT_FALSE(text.empty());
  EXPECT_EQ(validate_bench_json(text), std::nullopt)
      << *validate_bench_json(text);
  EXPECT_NE(text.find("\"bench\": \"scaling_logn\""), std::string::npos);
  EXPECT_NE(text.find("\"fit_slope\""), std::string::npos);
  EXPECT_NE(text.find("\"cell_seconds/figure1-exp1/n=64\""),
            std::string::npos);
}

}  // namespace
}  // namespace leancon::bench
