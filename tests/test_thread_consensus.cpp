// Native-thread end-to-end tests: lean-consensus (with the bounded-space
// combined fallback) over std::atomic registers and real std::thread
// scheduling. Every run must satisfy agreement and validity; termination is
// guaranteed by the combined protocol regardless of hardware scheduling.
#include "runtime/thread_consensus.h"

#include <gtest/gtest.h>

#include "noise/catalog.h"

namespace leancon {
namespace {

TEST(ThreadConsensus, RejectsEmpty) {
  thread_run_config config;
  EXPECT_THROW(run_threads(config), std::invalid_argument);
}

TEST(ThreadConsensus, SoloThreadDecidesOwnInput) {
  for (int bit = 0; bit < 2; ++bit) {
    thread_run_config config;
    config.inputs = {bit};
    config.seed = 17;
    const auto result = run_threads(config);
    EXPECT_TRUE(result.all_decided);
    EXPECT_EQ(result.decision, bit);
    EXPECT_EQ(result.max_steps, 8u);
  }
}

TEST(ThreadConsensus, UnanimousInputsDecideThatBit) {
  for (int bit = 0; bit < 2; ++bit) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      thread_run_config config;
      config.inputs = std::vector<int>(4, bit);
      config.seed = seed;
      const auto result = run_threads(config);
      ASSERT_TRUE(result.all_decided);
      ASSERT_TRUE(result.agreement);
      ASSERT_EQ(result.decision, bit) << "validity violated";
    }
  }
}

TEST(ThreadConsensus, SplitInputsAgree) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    thread_run_config config;
    config.inputs = {0, 1};
    config.seed = seed;
    const auto result = run_threads(config);
    ASSERT_TRUE(result.all_decided) << "seed " << seed;
    ASSERT_TRUE(result.agreement) << "seed " << seed;
    ASSERT_TRUE(result.decision == 0 || result.decision == 1);
  }
}

TEST(ThreadConsensus, FourThreadsSplitAgree) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    thread_run_config config;
    config.inputs = {0, 1, 0, 1};
    config.seed = seed;
    const auto result = run_threads(config);
    ASSERT_TRUE(result.all_decided) << "seed " << seed;
    ASSERT_TRUE(result.agreement) << "seed " << seed;
  }
}

TEST(ThreadConsensus, InjectedNoiseRuns) {
  thread_run_config config;
  config.inputs = {0, 1, 0, 1};
  config.injected_noise = make_exponential(1.0);
  config.noise_scale_ns = 100.0;
  config.seed = 23;
  const auto result = run_threads(config);
  EXPECT_TRUE(result.all_decided);
  EXPECT_TRUE(result.agreement);
}

TEST(ThreadConsensus, HeavierNoiseStillSafe) {
  thread_run_config config;
  config.inputs = {0, 1, 1, 0, 1, 0};
  config.injected_noise = make_two_point(1.0, 2.0);
  config.noise_scale_ns = 500.0;
  config.seed = 29;
  const auto result = run_threads(config);
  EXPECT_TRUE(result.all_decided);
  EXPECT_TRUE(result.agreement);
}

TEST(ThreadConsensus, EightThreadsManySeeds) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    thread_run_config config;
    config.inputs = {0, 1, 0, 1, 0, 1, 0, 1};
    config.seed = seed;
    const auto result = run_threads(config);
    ASSERT_TRUE(result.all_decided) << "seed " << seed;
    ASSERT_TRUE(result.agreement) << "seed " << seed;
  }
}

TEST(ThreadConsensus, StepsAndRoundsReported) {
  thread_run_config config;
  config.inputs = {0, 1};
  config.seed = 31;
  const auto result = run_threads(config);
  ASSERT_EQ(result.steps.size(), 2u);
  ASSERT_EQ(result.lean_rounds.size(), 2u);
  for (auto s : result.steps) EXPECT_GE(s, 8u);
  EXPECT_GE(result.wall_ms, 0.0);
}

TEST(ThreadConsensus, YieldStormStillAgrees) {
  // Forced yields create genuine interleaving on an oversubscribed host.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    thread_run_config config;
    config.inputs = {0, 1, 0, 1};
    config.yield_probability = 0.5;
    config.seed = seed;
    const auto result = run_threads(config);
    ASSERT_TRUE(result.all_decided) << "seed " << seed;
    ASSERT_TRUE(result.agreement) << "seed " << seed;
  }
}

TEST(ThreadConsensus, TinyRMaxForcesBackupYetAgrees) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    thread_run_config config;
    config.inputs = {0, 1, 0, 1};
    config.r_max = 1;
    config.seed = seed;
    const auto result = run_threads(config);
    ASSERT_TRUE(result.all_decided) << "seed " << seed;
    ASSERT_TRUE(result.agreement) << "seed " << seed;
  }
}

}  // namespace
}  // namespace leancon
