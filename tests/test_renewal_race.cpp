#include "race/renewal_race.h"

#include <gtest/gtest.h>

#include "noise/catalog.h"
#include "stats/summary.h"

namespace leancon {
namespace {

race_config base_race(std::size_t n, std::uint64_t seed,
                      distribution_ptr noise = nullptr) {
  race_config config;
  config.n = n;
  config.lead = 2;
  config.sched = figure1_params(noise ? noise : make_exponential(1.0));
  config.seed = seed;
  return config;
}

TEST(RenewalRace, RejectsBadParameters) {
  race_config config = base_race(0, 1);
  EXPECT_THROW(run_race(config), std::invalid_argument);
  config = base_race(2, 1);
  config.lead = 0;
  EXPECT_THROW(run_race(config), std::invalid_argument);
}

TEST(RenewalRace, SoloRacerWinsImmediately) {
  const auto result = run_race(base_race(1, 3));
  EXPECT_TRUE(result.won);
  EXPECT_EQ(result.winner, 0);
  EXPECT_EQ(result.winning_round, 1u);
}

TEST(RenewalRace, TwoRacersProduceAWinner) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto result = run_race(base_race(2, seed));
    ASSERT_TRUE(result.won) << "seed " << seed;
    ASSERT_TRUE(result.winner == 0 || result.winner == 1);
    ASSERT_GE(result.winning_round, 1u);
  }
}

TEST(RenewalRace, DeterministicForFixedSeed) {
  const auto a = run_race(base_race(8, 11));
  const auto b = run_race(base_race(8, 11));
  EXPECT_EQ(a.winner, b.winner);
  EXPECT_EQ(a.winning_round, b.winning_round);
  EXPECT_DOUBLE_EQ(a.winning_time, b.winning_time);
}

TEST(RenewalRace, WinningTimeBeatsRivalsAtWinningRound) {
  // Re-derive the race by hand for a small case and confirm consistency:
  // the winner's (R + c)-th completion precedes every rival's R-th.
  const auto result = run_race(base_race(4, 17));
  ASSERT_TRUE(result.won);
  EXPECT_GT(result.winning_time, 0.0);
}

TEST(RenewalRace, MeanRoundsGrowWithN) {
  // Corollary 11: E[R] = O(log n); with more racers the race takes longer
  // (they bunch up), so mean rounds should increase from n=2 to n=64.
  summary small, large;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    small.add(static_cast<double>(run_race(base_race(2, seed)).winning_round));
    large.add(
        static_cast<double>(run_race(base_race(64, seed)).winning_round));
  }
  EXPECT_GT(large.mean(), small.mean());
}

TEST(RenewalRace, BiggerLeadTakesLonger) {
  summary lead1, lead3;
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    auto c1 = base_race(8, seed);
    c1.lead = 1;
    auto c3 = base_race(8, seed);
    c3.lead = 3;
    lead1.add(static_cast<double>(run_race(c1).winning_round));
    lead3.add(static_cast<double>(run_race(c3).winning_round));
  }
  EXPECT_LT(lead1.mean(), lead3.mean());
}

TEST(RenewalRace, CertainHaltingEndsTheRace) {
  auto config = base_race(4, 5);
  config.sched.halt_probability = 1.0;
  const auto result = run_race(config);
  EXPECT_FALSE(result.won);
  EXPECT_TRUE(result.all_halted);
}

TEST(RenewalRace, PartialHaltingLeavesSurvivorWinning) {
  auto config = base_race(8, 7);
  config.sched.halt_probability = 0.05;
  const auto result = run_race(config);
  // Either someone wins or everyone halted; both are legitimate outcomes,
  // but with 8 racers at 5% per-round-op death a winner is overwhelmingly
  // likely.
  EXPECT_TRUE(result.won || result.all_halted);
}

TEST(RenewalRace, AdversaryDelaysDoNotPreventVictory) {
  for (const auto& adv : {make_constant_delays(1.0),
                          make_alternating_delays(1.0),
                          make_burst_delays(2.0, 6)}) {
    auto config = base_race(8, 13);
    config.sched.adversary = adv;
    const auto result = run_race(config);
    ASSERT_TRUE(result.won) << adv->name();
  }
}

TEST(RenewalRace, TwoPointNoiseAlsoResolves) {
  // The Theorem 13 distribution takes longer but still produces a winner.
  const auto result = run_race(base_race(16, 19, make_two_point(1.0, 2.0)));
  EXPECT_TRUE(result.won);
}

}  // namespace
}  // namespace leancon
