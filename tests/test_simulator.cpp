#include "sim/simulator.h"

#include <gtest/gtest.h>

#include "noise/catalog.h"

namespace leancon {
namespace {

sim_config base_config(std::size_t n, std::uint64_t seed,
                       distribution_ptr noise = nullptr) {
  sim_config config;
  config.inputs = split_inputs(n);
  config.sched = figure1_params(noise ? noise : make_exponential(1.0));
  config.seed = seed;
  return config;
}

TEST(Simulator, InputHelpers) {
  const auto split = split_inputs(5);
  EXPECT_EQ(split, (std::vector<int>{0, 1, 0, 1, 0}));
  const auto unanimous = unanimous_inputs(3, 1);
  EXPECT_EQ(unanimous, (std::vector<int>{1, 1, 1}));
}

TEST(Simulator, RejectsEmpty) {
  sim_config config;
  config.sched = figure1_params(make_exponential(1.0));
  EXPECT_THROW(simulate(config), std::invalid_argument);
}

TEST(Simulator, SingleProcessDecidesAtRoundTwo) {
  const auto result = simulate(base_config(1, 7));
  EXPECT_TRUE(result.any_decided);
  EXPECT_TRUE(result.all_live_decided);
  EXPECT_EQ(result.first_decision_round, 2u);
  EXPECT_EQ(result.processes[0].ops, 8u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Simulator, DeterministicForFixedSeed) {
  const auto a = simulate(base_config(16, 99));
  const auto b = simulate(base_config(16, 99));
  EXPECT_EQ(a.first_decision_round, b.first_decision_round);
  EXPECT_EQ(a.total_ops, b.total_ops);
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_DOUBLE_EQ(a.first_decision_time, b.first_decision_time);
}

TEST(Simulator, DifferentSeedsDiffer) {
  // Not guaranteed per-pair, but across a handful of seeds the total op
  // counts should not all coincide.
  std::set<std::uint64_t> totals;
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    totals.insert(simulate(base_config(16, seed)).total_ops);
  }
  EXPECT_GT(totals.size(), 1u);
}

TEST(Simulator, UnanimousInputsDecideInEightOpsEach) {
  auto config = base_config(8, 3);
  config.inputs = unanimous_inputs(8, 1);
  const auto result = simulate(config);
  EXPECT_TRUE(result.all_live_decided);
  EXPECT_EQ(result.decision, 1);
  for (const auto& p : result.processes) {
    EXPECT_TRUE(p.decided);
    EXPECT_EQ(p.ops, 8u);  // Lemma 3
    EXPECT_EQ(p.preference_switches, 0u);
  }
  EXPECT_TRUE(result.violations.empty());
}

TEST(Simulator, SplitInputsAgreeAndSatisfyLemmas) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto result = simulate(base_config(10, seed));
    ASSERT_TRUE(result.all_live_decided) << "seed " << seed;
    ASSERT_TRUE(result.violations.empty())
        << "seed " << seed << ": " << result.violations.front();
    for (const auto& p : result.processes) {
      ASSERT_EQ(p.decision, result.decision);
    }
    // Lemma 4b at whole-execution level.
    ASSERT_LE(result.last_decision_round, result.first_decision_round + 1);
  }
}

TEST(Simulator, StopAtFirstDecisionStopsEarly) {
  auto config = base_config(32, 11);
  config.stop = stop_mode::first_decision;
  const auto result = simulate(config);
  EXPECT_TRUE(result.any_decided);
  EXPECT_FALSE(result.all_live_decided);
  EXPECT_EQ(result.ops_until_first_decision, result.total_ops);
}

TEST(Simulator, OpBudgetStopsRunawayExecutions) {
  auto config = base_config(4, 5);
  config.max_total_ops = 50;
  config.stop = stop_mode::all_decided;
  const auto result = simulate(config);
  EXPECT_LE(result.total_ops, 50u);
}

TEST(Simulator, TotalOpsEqualsSumOfProcessOps) {
  const auto result = simulate(base_config(12, 13));
  std::uint64_t sum = 0;
  for (const auto& p : result.processes) sum += p.ops;
  EXPECT_EQ(result.total_ops, sum);
}

TEST(Simulator, AllProcessesHaltWithCertainFailure) {
  auto config = base_config(6, 17);
  config.sched.halt_probability = 1.0;
  const auto result = simulate(config);
  EXPECT_FALSE(result.any_decided);
  EXPECT_EQ(result.halted_processes, 6u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Simulator, ModerateFailuresStillDecideSafely) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto config = base_config(16, seed);
    config.sched.halt_probability = 0.01;
    const auto result = simulate(config);
    ASSERT_TRUE(result.violations.empty()) << "seed " << seed;
    // If anyone decided, all survivors agree (checker verified agreement).
    if (result.any_decided) {
      for (const auto& p : result.processes) {
        if (p.decided) ASSERT_EQ(p.decision, result.decision);
      }
    }
  }
}

TEST(Simulator, CombinedProtocolRunsAndAgrees) {
  auto config = base_config(8, 23);
  config.protocol = protocol_kind::combined;
  config.r_max = 2;  // tiny cutoff to force some backup entries
  const auto result = simulate(config);
  EXPECT_TRUE(result.all_live_decided);
  EXPECT_TRUE(result.violations.empty());
  for (const auto& p : result.processes) {
    EXPECT_EQ(p.decision, result.decision);
  }
}

TEST(Simulator, BackupProtocolStandalone) {
  auto config = base_config(6, 29);
  config.protocol = protocol_kind::backup;
  const auto result = simulate(config);
  EXPECT_TRUE(result.all_live_decided);
  for (const auto& p : result.processes) {
    EXPECT_EQ(p.decision, result.decision);
  }
}

TEST(Simulator, AdversaryDelaysDoNotBreakSafety) {
  for (const auto& adv :
       {make_constant_delays(2.0), make_alternating_delays(2.0),
        make_staggered_delays(2.0, 4), make_burst_delays(4.0, 8)}) {
    auto config = base_config(8, 31);
    config.sched.adversary = adv;
    const auto result = simulate(config);
    ASSERT_TRUE(result.all_live_decided) << adv->name();
    ASSERT_TRUE(result.violations.empty()) << adv->name();
  }
}

TEST(Simulator, MaxRoundReachedIsMonotoneWithFirstDecision) {
  const auto result = simulate(base_config(16, 37));
  EXPECT_GE(result.max_round_reached, result.first_decision_round);
}

TEST(Simulator, ProtocolNames) {
  EXPECT_EQ(protocol_name(protocol_kind::lean), "lean");
  EXPECT_EQ(protocol_name(protocol_kind::combined), "combined");
  EXPECT_EQ(protocol_name(protocol_kind::backup), "backup");
}

TEST(Simulator, LowerBoundDistributionStillTerminates) {
  auto config = base_config(32, 41, make_two_point(1.0, 2.0));
  const auto result = simulate(config);
  EXPECT_TRUE(result.all_live_decided);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Simulator, PreferenceSwitchesAreTracked) {
  // With split inputs someone almost always defects eventually; check the
  // counters are plumbed through (over several seeds at least one switch).
  std::uint64_t switches = 0;
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const auto result = simulate(base_config(16, seed));
    for (const auto& p : result.processes) switches += p.preference_switches;
  }
  EXPECT_GT(switches, 0u);
}

}  // namespace
}  // namespace leancon
