#include "sched/noisy_params.h"

#include <gtest/gtest.h>

#include <cmath>

#include "noise/catalog.h"
#include "sched/adversary.h"
#include "sim/simulator.h"

namespace leancon {
namespace {

TEST(NoisyParams, Figure1ConfigurationMatchesPaper) {
  const auto p = figure1_params(make_exponential(1.0));
  EXPECT_EQ(p.adversary, nullptr);
  EXPECT_DOUBLE_EQ(p.halt_probability, 0.0);
  EXPECT_EQ(p.starts, start_mode::dithered);
  EXPECT_DOUBLE_EQ(p.start_dither, 1e-8);
}

TEST(NoisyParams, DitheredStartsAreTiny) {
  const auto p = figure1_params(make_exponential(1.0));
  rng gen(3);
  for (int pid = 0; pid < 100; ++pid) {
    const double s = p.start_offset(pid, 100, gen);
    ASSERT_GE(s, 0.0);
    ASSERT_LT(s, 1e-8);
  }
}

TEST(NoisyParams, StaggeredStartsGrowWithPid) {
  noisy_params p = figure1_params(make_exponential(1.0));
  p.starts = start_mode::staggered;
  p.stagger_step = 2.0;
  rng gen(4);
  const double s0 = p.start_offset(0, 10, gen);
  const double s5 = p.start_offset(5, 10, gen);
  EXPECT_LT(s0, 1.0);
  EXPECT_GE(s5, 10.0);
}

TEST(NoisyParams, RandomStartsWithinWindow) {
  noisy_params p = figure1_params(make_exponential(1.0));
  p.starts = start_mode::random;
  p.stagger_step = 1.0;
  rng gen(5);
  for (int i = 0; i < 100; ++i) {
    const double s = p.start_offset(i, 10, gen);
    ASSERT_GE(s, 0.0);
    ASSERT_LE(s, 10.0 + 1e-8);
  }
}

TEST(NoisyParams, IncrementIncludesAdversaryAndNoise) {
  noisy_params p = figure1_params(make_constant(1.0));
  p.adversary = make_constant_delays(0.5);
  rng gen(6);
  bool halted = false;
  const double inc = p.op_increment(0, 1, false, gen, halted);
  EXPECT_FALSE(halted);
  EXPECT_DOUBLE_EQ(inc, 1.5);
}

TEST(NoisyParams, WriteNoiseOverridesForWrites) {
  noisy_params p = figure1_params(make_constant(1.0));
  p.write_noise = make_constant(3.0);
  rng gen(7);
  bool halted = false;
  EXPECT_DOUBLE_EQ(p.op_increment(0, 1, /*is_write=*/false, gen, halted), 1.0);
  EXPECT_DOUBLE_EQ(p.op_increment(0, 2, /*is_write=*/true, gen, halted), 3.0);
}

TEST(NoisyParams, HaltProbabilityOneAlwaysHalts) {
  noisy_params p = figure1_params(make_exponential(1.0));
  p.halt_probability = 1.0;
  rng gen(8);
  bool halted = false;
  p.op_increment(0, 1, false, gen, halted);
  EXPECT_TRUE(halted);
}

TEST(NoisyParams, HaltRateIsRespected) {
  noisy_params p = figure1_params(make_exponential(1.0));
  p.halt_probability = 0.25;
  rng gen(9);
  int halts = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    bool halted = false;
    p.op_increment(0, static_cast<std::uint64_t>(i) + 1, false, gen, halted);
    halts += halted ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(halts) / n, 0.25, 0.01);
}

TEST(NoisyParams, MissingNoiseThrows) {
  noisy_params p;
  rng gen(10);
  bool halted = false;
  EXPECT_THROW(p.op_increment(0, 1, false, gen, halted), std::logic_error);
}

// ---------------------------------------------------------------------------
// Delay adversaries.
// ---------------------------------------------------------------------------

class AdversaryBounds
    : public ::testing::TestWithParam<delay_adversary_ptr> {};

TEST_P(AdversaryBounds, DelaysStayWithinDeclaredBound) {
  const auto& adv = *GetParam();
  for (int pid = 0; pid < 16; ++pid) {
    for (std::uint64_t j = 1; j <= 200; ++j) {
      const double d = adv.delay(pid, j);
      ASSERT_GE(d, 0.0) << adv.name();
      ASSERT_LE(d, adv.bound()) << adv.name();
    }
  }
}

TEST_P(AdversaryBounds, DeterministicAcrossCalls) {
  const auto& adv = *GetParam();
  for (int pid = 0; pid < 4; ++pid) {
    for (std::uint64_t j = 1; j <= 20; ++j) {
      ASSERT_DOUBLE_EQ(adv.delay(pid, j), adv.delay(pid, j));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, AdversaryBounds,
    ::testing::Values(make_zero_delays(), make_constant_delays(2.0),
                      make_alternating_delays(1.5),
                      make_staggered_delays(2.0, 8),
                      make_random_bounded_delays(3.0, 42),
                      make_burst_delays(4.0, 10), make_pack_delays(1.0)),
    [](const ::testing::TestParamInfo<delay_adversary_ptr>& info) {
      std::string name = info.param->name();
      for (auto& ch : name) {
        if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
      }
      return name;
    });

TEST(Adversary, ZeroIsAlwaysZero) {
  const auto adv = make_zero_delays();
  EXPECT_DOUBLE_EQ(adv->delay(3, 17), 0.0);
  EXPECT_DOUBLE_EQ(adv->bound(), 0.0);
}

TEST(Adversary, RandomBoundedVariesWithSalt) {
  const auto a = make_random_bounded_delays(1.0, 1);
  const auto b = make_random_bounded_delays(1.0, 2);
  int differing = 0;
  for (std::uint64_t j = 1; j <= 50; ++j) {
    if (a->delay(0, j) != b->delay(0, j)) ++differing;
  }
  EXPECT_GT(differing, 40);
}

TEST(Adversary, BurstFiresPeriodically) {
  const auto adv = make_burst_delays(5.0, 4);
  int bursts = 0;
  for (std::uint64_t j = 1; j <= 40; ++j) {
    if (adv->delay(0, j) == 5.0) ++bursts;
  }
  EXPECT_EQ(bursts, 10);
}

TEST(Adversary, ZenoRespectsPrefixSumConstraint) {
  // Section 10 statistical adversary: individual delays are unbounded, but
  // sum_{j<=r} Delta_ij <= r * M for every r.
  const double m = 2.0;
  const auto adv = make_zeno_delays(m);
  double prefix = 0.0;
  double largest = 0.0;
  for (std::uint64_t j = 1; j <= 4096; ++j) {
    const double d = adv->delay(0, j);
    ASSERT_GE(d, 0.0);
    prefix += d;
    largest = std::max(largest, d);
    ASSERT_LE(prefix, m * static_cast<double>(j) + 1e-9) << "at j=" << j;
  }
  // The whole point: single delays exceed any fixed per-op bound.
  EXPECT_GT(largest, 100.0 * m);
  EXPECT_TRUE(std::isinf(adv->bound()));
}

TEST(Adversary, ZenoDoesNotPreventTermination) {
  // The paper conjectures O(log n) still holds under the statistical
  // constraint; at minimum the protocol must keep terminating safely.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    sim_config config;
    config.inputs = split_inputs(8);
    config.sched = figure1_params(make_exponential(1.0));
    config.sched.adversary = make_zeno_delays(1.0);
    config.seed = seed;
    const auto result = simulate(config);
    ASSERT_TRUE(result.all_live_decided) << "seed " << seed;
    ASSERT_TRUE(result.violations.empty());
  }
}

// --- Compiled fast-path bit-equality ---------------------------------------
//
// The simulator evaluates adversaries and noise through the tagged-union
// fast path (compile()); the virtual interface stays the reference. These
// tests pin exact double equality between the two over a (pid, j) grid and
// over shared rng streams, so any drift in the compiled arithmetic — not
// just a statistical change — fails loudly.

TEST(CompiledDelays, EveryBuiltinMatchesVirtualExactly) {
  const delay_adversary_ptr adversaries[] = {
      make_zero_delays(),
      make_constant_delays(0.75),
      make_alternating_delays(1.25),
      make_staggered_delays(2.0, 8),
      make_staggered_delays(0.5, 3),
      make_random_bounded_delays(1.5, 0x5eedULL),
      make_burst_delays(3.0, 7),
      make_pack_delays(1.0),
      make_zeno_delays(2.0),
  };
  for (const auto& adv : adversaries) {
    const compiled_delays fast = adv->compile();
    for (int pid = 0; pid < 17; ++pid) {
      for (std::uint64_t j = 1; j <= 130; ++j) {
        ASSERT_EQ(fast(pid, j), adv->delay(pid, j))
            << adv->name() << " pid=" << pid << " j=" << j;
      }
    }
  }
}

TEST(CompiledDelays, CustomSubclassRoutesThroughVirtual) {
  class tent_delays final : public delay_adversary {
   public:
    double delay(int pid, std::uint64_t j) const override {
      return pid == 0 && j % 3 == 0 ? 0.5 : 0.0;
    }
    double bound() const override { return 0.5; }
    std::string name() const override { return "tent"; }
  };
  tent_delays adv;
  const compiled_delays fast = adv.compile();
  EXPECT_EQ(fast.kind, adversary_kind::custom);
  for (int pid = 0; pid < 3; ++pid) {
    for (std::uint64_t j = 1; j <= 12; ++j) {
      ASSERT_EQ(fast(pid, j), adv.delay(pid, j));
    }
  }
}

TEST(CompiledSampler, EveryBuiltinDistributionMatchesVirtualExactly) {
  const distribution_ptr dists[] = {
      make_constant(1.5),
      make_uniform(0.25, 2.0),
      make_exponential(1.0),
      make_shifted_exponential(0.5, 0.5),
      make_truncated_normal(1.0, 0.2, 0.0, 2.0),
      make_two_point(2.0 / 3.0, 4.0 / 3.0),
      make_geometric(0.5),
      make_pathological_heavy(12),  // custom fallback
      make_pareto(1.0, 2.5),        // custom fallback
      make_lognormal(0.0, 0.5),     // custom fallback
  };
  for (const auto& dist : dists) {
    const compiled_sampler fast = dist->compile();
    // Identical seeds: the two paths must consume the identical draw
    // sequence and produce the identical doubles.
    rng a(99, 7), b(99, 7);
    for (int i = 0; i < 2000; ++i) {
      ASSERT_EQ(fast.sample(a), dist->sample(b))
          << dist->name() << " draw " << i;
    }
    // And leave the generators in the same state.
    ASSERT_EQ(a.next(), b.next()) << dist->name();
  }
}

TEST(IncrementSampler, MatchesOpIncrementAcrossConfigurations) {
  const auto base_noise = make_truncated_normal(1.0, 0.2, 0.0, 2.0);
  noisy_params configs[4];
  configs[0] = figure1_params(make_exponential(1.0));
  configs[1] = figure1_params(base_noise);
  configs[1].adversary = make_pack_delays(1.0);
  configs[2] = figure1_params(make_geometric(0.5));
  configs[2].write_noise = make_two_point(2.0 / 3.0, 4.0 / 3.0);
  configs[2].adversary = make_random_bounded_delays(1.0, 0xabcdULL);
  configs[3] = figure1_params(make_pathological_heavy(6));
  configs[3].halt_probability = 0.05;
  for (const auto& p : configs) {
    const increment_sampler fast(p);
    rng a(5, 11), b(5, 11);
    for (std::uint64_t j = 1; j <= 3000; ++j) {
      const bool is_write = j % 4 == 3;
      bool halted_fast = false, halted_ref = false;
      const double inc_fast =
          fast(static_cast<int>(j % 5), j, is_write, a, halted_fast);
      const double inc_ref =
          p.op_increment(static_cast<int>(j % 5), j, is_write, b, halted_ref);
      ASSERT_EQ(halted_fast, halted_ref) << "op " << j;
      ASSERT_EQ(inc_fast, inc_ref) << "op " << j;
    }
    ASSERT_EQ(a.next(), b.next());
  }
}

TEST(IncrementSampler, MissingNoiseThrowsAtCompileTime) {
  noisy_params p;
  EXPECT_THROW(increment_sampler{p}, std::logic_error);
}

}  // namespace
}  // namespace leancon
