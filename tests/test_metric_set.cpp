// Tests for the unified workload API's aggregation currency: metric_set
// counters/samples, record-vs-direct bit-identity, index-ordered merge
// properties vs single-pass accumulation, and absent-vs-zero semantics
// (absent metrics read NaN/empty, render "-" in tables, and are omitted
// from JSON — never fabricated zeros).
#include "stats/metric_set.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "sim/runner.h"
#include "util/table.h"

namespace leancon {
namespace {

void expect_bit_identical(const summary& a, const summary& b,
                          const std::string& what) {
  ASSERT_EQ(a.count(), b.count()) << what;
  if (a.count() > 0) {
    EXPECT_EQ(a.mean(), b.mean()) << what;
    EXPECT_EQ(a.variance(), b.variance()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
  EXPECT_EQ(a.samples(), b.samples()) << what;
}

TEST(MetricSet, CountersAccumulateAndMergeByName) {
  metric_set a;
  a.count("retries", 2).count("retries", 3).count("drops", 1);
  EXPECT_EQ(a.counter_total("retries"), 5.0);
  EXPECT_EQ(a.counter_total("drops"), 1.0);

  metric_set b;
  b.count("drops", 4).count("new_counter", 7);
  a.merge(b);
  EXPECT_EQ(a.counter_total("retries"), 5.0);
  EXPECT_EQ(a.counter_total("drops"), 5.0);
  EXPECT_EQ(a.counter_total("new_counter"), 7.0);
  // Entry order: a's entries stay in place, b's new names append.
  ASSERT_EQ(a.entries().size(), 3u);
  EXPECT_EQ(a.entries()[0].name, "retries");
  EXPECT_EQ(a.entries()[1].name, "drops");
  EXPECT_EQ(a.entries()[2].name, "new_counter");
}

TEST(MetricSet, ObservePreservesInsertionOrderAndRollup) {
  metric_set m;
  m.observe("round", 3.0, metric_rollup::location);
  m.observe("ops", 12.0, metric_rollup::mean_and_sum);
  m.observe("round", 5.0);  // rollup fixed by the first observation
  ASSERT_EQ(m.entries().size(), 2u);
  EXPECT_EQ(m.entries()[0].name, "round");
  EXPECT_EQ(m.entries()[0].rollup, metric_rollup::location);
  EXPECT_EQ(m.entries()[1].rollup, metric_rollup::mean_and_sum);
  EXPECT_EQ(m.sample("round").count(), 2u);
  EXPECT_EQ(m.sample("round").min(), 3.0);
}

TEST(MetricSet, RecordReplaysTrialsBitIdenticallyToDirectObservation) {
  // Aggregating per-trial metric_sets via record() must be BIT-identical
  // to observing every value on one set directly — the property that lets
  // trial_stats wrap metric_set without moving any committed baseline.
  metric_set direct;
  metric_set recorded;
  std::uint64_t state = 88172645463325252ULL;
  const auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return static_cast<double>(state % 10000) / 100.0;
  };
  for (int trial = 0; trial < 200; ++trial) {
    metric_set one;
    const double x = next();
    one.observe("cost", x, metric_rollup::location);
    direct.observe("cost", x, metric_rollup::location);
    if (trial % 3 == 0) {  // a metric only some trials emit
      const double y = next();
      one.observe("sparse", y);
      direct.observe("sparse", y);
    }
    one.count("ops", 2.0);
    direct.count("ops", 2.0);
    recorded.record(one);
  }
  ASSERT_EQ(recorded.entries().size(), direct.entries().size());
  expect_bit_identical(recorded.sample("cost"), direct.sample("cost"), "cost");
  expect_bit_identical(recorded.sample("sparse"), direct.sample("sparse"),
                       "sparse");
  EXPECT_EQ(recorded.counter_total("ops"), direct.counter_total("ops"));
}

TEST(MetricSet, IndexOrderedMergeIsDeterministicVsSinglePass) {
  // The executor/campaign contract: chunk the trials any way, accumulate
  // each chunk with record(), fold the chunks IN INDEX ORDER — count,
  // min, max, and retained samples match single-pass accumulation
  // exactly; mean/variance agree to floating-point grouping error; and
  // re-folding the same chunks is bit-identical.
  std::vector<double> xs;
  for (int i = 0; i < 257; ++i) {
    xs.push_back(std::sin(static_cast<double>(i)) * 50.0 + 50.0);
  }
  metric_set single;
  for (const double x : xs) single.observe("cost", x);

  for (const std::size_t n_chunks : {1u, 2u, 5u, 16u}) {
    std::vector<metric_set> chunks(n_chunks);
    for (std::size_t i = 0; i < xs.size(); ++i) {
      chunks[i * n_chunks / xs.size()].observe("cost", xs[i]);
    }
    metric_set folded;
    for (const auto& chunk : chunks) folded.merge(chunk);
    metric_set folded_again;
    for (const auto& chunk : chunks) folded_again.merge(chunk);

    const summary& f = folded.sample("cost");
    const summary& s = single.sample("cost");
    EXPECT_EQ(f.count(), s.count());
    EXPECT_EQ(f.min(), s.min());
    EXPECT_EQ(f.max(), s.max());
    EXPECT_EQ(f.samples(), s.samples());
    EXPECT_NEAR(f.mean(), s.mean(), 1e-9);
    EXPECT_NEAR(f.variance(), s.variance(), 1e-9);
    expect_bit_identical(f, folded_again.sample("cost"),
                         "refold " + std::to_string(n_chunks));
  }
}

TEST(MetricSet, KindChangesThrow) {
  metric_set m;
  m.count("x", 1.0);
  EXPECT_THROW(m.observe("x", 2.0), std::logic_error);
  metric_set other;
  other.observe("x", 2.0);
  EXPECT_THROW(m.merge(other), std::logic_error);
  EXPECT_THROW(m.record(other), std::logic_error);
}

TEST(MetricSet, AbsentIsNotZero) {
  metric_set m;
  m.observe("present", 3.0);
  EXPECT_EQ(m.find("absent"), nullptr);
  EXPECT_EQ(m.sample("absent").count(), 0u);
  EXPECT_TRUE(std::isnan(m.sample("absent").min()));
  EXPECT_TRUE(std::isnan(m.counter_total("absent")));
  // sample() of a counter name is also the empty summary, not a zero one.
  m.count("c", 9.0);
  EXPECT_EQ(m.sample("c").count(), 0u);
}

// --- Absent-vs-zero semantics through the reporting stack -------------------

TEST(MetricSet, AbsentMetricsAreAbsentInCellMetricsTablesAndJson) {
  // A native-style outcome with no round metrics, aggregated and extracted.
  trial_stats stats;
  trial_outcome out;
  out.decided = true;
  out.metrics.observe("messages", 120.0, metric_rollup::mean_and_sum);
  stats.record(out);

  const cell_metrics m = default_cell_metrics(stats);
  // Native metric present...
  EXPECT_EQ(m.get("mean_messages"), 120.0);
  EXPECT_EQ(m.get("messages_sum"), 120.0);
  // ...round metrics absent (NaN reads), not zero.
  EXPECT_TRUE(std::isnan(m.get("mean_round")));
  EXPECT_TRUE(std::isnan(m.get("round_p95")));
  for (const auto& [name, value] : m.values) {
    EXPECT_EQ(name.find("round"), std::string::npos) << name;
    (void)value;
  }

  // Tables render the absent value as "-" (both via NaN cells and via
  // columns the row never set).
  {
    table tbl({"cell", "mean_round"});
    tbl.begin_row();
    tbl.cell(std::string("mp-abd/n=4"));
    tbl.cell(m.get("mean_round"), 2);
    EXPECT_NE(tbl.to_string().find(" - "), std::string::npos);
  }
  {
    metric_table tbl({"cell"});
    tbl.begin_row({"mp-abd/n=4"});
    tbl.set("mean_messages", m.get("mean_messages"), 1);
    tbl.begin_row({"figure1/n=4"});
    tbl.set("mean_round", 3.5, 1);
    const std::string text = tbl.to_string();
    EXPECT_NE(text.find("mean_messages"), std::string::npos);
    EXPECT_NE(text.find("mean_round"), std::string::npos);
    EXPECT_NE(text.find("-"), std::string::npos);
  }

  // The campaign_io line omits absent metrics entirely (no "mean_round"
  // key, no null placeholder for it).
  const std::string path = testing::TempDir() + "metricset_absent.jsonl";
  {
    campaign_io io(path, false);
    cell_result r;
    r.cell.scenario = "mp-abd";
    r.cell.params.n = 4;
    r.cell.trials = 1;
    r.metrics = m;
    io.emit(r);
  }
  const auto records = campaign_io::read_records(path);
  ASSERT_EQ(records.size(), 1u);
  bool has_round = false;
  for (const auto& [name, value] : records[0].metrics.values) {
    has_round = has_round || name == "mean_round";
    (void)value;
  }
  EXPECT_FALSE(has_round);
  EXPECT_EQ(records[0].metrics.get("mean_messages"), 120.0);
  EXPECT_TRUE(std::isnan(records[0].metrics.get("mean_round")));
}

// --- Pre-bound metric handles ----------------------------------------------

TEST(MetricHandles, HandleEmissionMatchesNameEmissionExactly) {
  metric_binder bind;
  const metric_handle ops = bind.sample("ops", metric_rollup::mean_and_sum);
  const metric_handle round = bind.sample("round", metric_rollup::location);
  const metric_handle retries = bind.counter("retries");

  metric_set by_handle, by_name;
  for (int t = 0; t < 50; ++t) {
    by_handle.observe(ops, 10.0 + t).observe(round, 3.0 + t % 4);
    by_handle.count(retries, t % 3);
    by_name.observe("ops", 10.0 + t, metric_rollup::mean_and_sum)
        .observe("round", 3.0 + t % 4, metric_rollup::location);
    by_name.count("retries", t % 3);
  }
  ASSERT_EQ(by_handle.entries().size(), by_name.entries().size());
  for (std::size_t i = 0; i < by_handle.entries().size(); ++i) {
    const auto& a = by_handle.entries()[i];
    const auto& b = by_name.entries()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.is_counter, b.is_counter);
    EXPECT_EQ(a.rollup, b.rollup);
    EXPECT_EQ(a.total, b.total);
    EXPECT_EQ(a.stats.count(), b.stats.count());
    EXPECT_EQ(a.stats.mean(), b.stats.mean());
  }
}

TEST(MetricHandles, StaleHintFallsBackToNameScan) {
  metric_binder bind;
  const metric_handle first = bind.sample("first");
  const metric_handle second = bind.sample("second");

  // Omit "first": "second" arrives with hint 1 on an empty set (hint >
  // size), then with hint 1 while sitting at index 0 (name mismatch at the
  // hinted slot after "late" lands there... exercised below). Both misses
  // must resolve by name without duplicating entries.
  metric_set m;
  m.observe(second, 5.0);
  ASSERT_EQ(m.entries().size(), 1u);
  EXPECT_EQ(m.entries()[0].name, "second");

  m.observe("late", 1.0);
  m.observe(second, 7.0);  // hint 1 now points at "late"
  ASSERT_EQ(m.entries().size(), 2u);
  EXPECT_EQ(m.sample("second").count(), 2u);
  EXPECT_EQ(m.sample("late").count(), 1u);
  (void)first;
}

TEST(MetricHandles, KindMismatchThrowsLikeNamePath) {
  metric_binder bind;
  const metric_handle h = bind.counter("x");
  metric_set m;
  m.observe("x", 1.0);
  EXPECT_THROW(m.count(h, 1.0), std::logic_error);
}

TEST(MetricHandles, RecordOfHandleEmittedTrialsMatchesNameEmittedTrials) {
  metric_binder bind;
  const metric_handle ops = bind.sample("ops");
  const metric_handle gap = bind.sample("gap");  // conditionally omitted
  const metric_handle tailm = bind.sample("tail");

  metric_set agg_handle, agg_name;
  for (int t = 0; t < 40; ++t) {
    metric_set one_h, one_n;
    one_h.observe(ops, 1.0 * t);
    one_n.observe("ops", 1.0 * t);
    if (t % 3 != 0) {
      one_h.observe(gap, 2.0 * t);
      one_n.observe("gap", 2.0 * t);
    }
    one_h.observe(tailm, 3.0 * t);
    one_n.observe("tail", 3.0 * t);
    agg_handle.record(one_h);
    agg_name.record(one_n);
  }
  ASSERT_EQ(agg_handle.entries().size(), agg_name.entries().size());
  for (std::size_t i = 0; i < agg_handle.entries().size(); ++i) {
    const auto& a = agg_handle.entries()[i];
    const auto& b = agg_name.entries()[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_EQ(a.stats.count(), b.stats.count());
    EXPECT_EQ(a.stats.mean(), b.stats.mean());
    EXPECT_EQ(a.stats.variance(), b.stats.variance());
  }
}

}  // namespace
}  // namespace leancon
