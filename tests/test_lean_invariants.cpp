// Property tests: the paper's safety lemmas must hold on every simulated
// execution, across all catalog distributions, process counts, protocols,
// adversary delays, and failure rates. The invariant_checker is attached as
// a trace hook inside the simulator, so each trial re-verifies Lemma 2,
// Lemma 4a/4b, agreement, and validity operation by operation.
#include "core/invariants.h"

#include <gtest/gtest.h>

#include "noise/catalog.h"
#include "sim/simulator.h"

namespace leancon {
namespace {

// ---------------------------------------------------------------------------
// Unit tests of the checker itself (it must actually catch violations).
// ---------------------------------------------------------------------------

TEST(InvariantChecker, CleanRunReportsOk) {
  invariant_checker checker({0, 1});
  checker.on_op(0, operation::write({space::race0, 1}, 1), 1);
  checker.on_op(1, operation::write({space::race1, 1}, 1), 1);
  checker.on_op(0, operation::write({space::race0, 2}, 1), 1);
  EXPECT_TRUE(checker.ok());
}

TEST(InvariantChecker, CatchesLemma2Skip) {
  invariant_checker checker({0, 1});
  checker.on_op(0, operation::write({space::race0, 3}, 1), 1);  // skips 1, 2
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("Lemma 2"), std::string::npos);
}

TEST(InvariantChecker, CatchesLemma2InputViolation) {
  invariant_checker checker({0, 0});  // nobody has input 1
  checker.on_op(0, operation::write({space::race1, 1}, 1), 1);
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("Lemma 2"), std::string::npos);
}

TEST(InvariantChecker, CatchesLemma4aLateWrite) {
  invariant_checker checker({0, 1});
  checker.on_op(0, operation::write({space::race0, 1}, 1), 1);
  checker.on_op(0, operation::write({space::race0, 2}, 1), 1);
  checker.on_decision(0, 0, 2);
  checker.on_op(1, operation::write({space::race1, 1}, 1), 1);  // legal (r=1)
  EXPECT_TRUE(checker.ok());
  checker.on_op(1, operation::write({space::race1, 2}, 1), 1);  // forbidden
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("Lemma 4a"), std::string::npos);
}

TEST(InvariantChecker, CatchesLemma4aEarlierWrite) {
  invariant_checker checker({0, 1});
  checker.on_op(0, operation::write({space::race0, 1}, 1), 1);
  checker.on_op(1, operation::write({space::race1, 1}, 1), 1);
  checker.on_decision(0, 0, 1);  // decision at round 1 with a1[1] already set
  ASSERT_FALSE(checker.ok());
}

TEST(InvariantChecker, CatchesDisagreement) {
  invariant_checker checker({0, 1});
  checker.on_op(0, operation::write({space::race0, 1}, 1), 1);
  checker.on_op(1, operation::write({space::race1, 1}, 1), 1);
  checker.on_decision(0, 0, 5);
  checker.on_decision(1, 1, 9);
  ASSERT_FALSE(checker.ok());
}

TEST(InvariantChecker, CatchesValidityViolation) {
  invariant_checker checker({0, 0});
  checker.on_decision(0, 1, 2);
  ASSERT_FALSE(checker.ok());
  EXPECT_NE(checker.violations().front().find("Validity"), std::string::npos);
}

TEST(InvariantChecker, CatchesLemma4bWindow) {
  invariant_checker checker({0, 1});
  checker.on_op(0, operation::write({space::race0, 1}, 1), 1);
  for (std::uint64_t r = 2; r <= 6; ++r) {
    checker.on_op(0, operation::write({space::race0, r}, 1), 1);
  }
  checker.on_decision(0, 0, 2);
  checker.on_decision(1, 0, 6);
  ASSERT_FALSE(checker.ok());
  bool found = false;
  for (const auto& v : checker.violations()) {
    found = found || v.find("Lemma 4b") != std::string::npos;
  }
  EXPECT_TRUE(found);
}

TEST(InvariantChecker, BackupDecisionsSkipRoundWindow) {
  invariant_checker checker({0, 1});
  checker.on_op(0, operation::write({space::race0, 1}, 1), 1);
  checker.on_decision(0, 0, 2);
  checker.on_backup_decision(1, 0);  // same bit, no round constraint
  EXPECT_TRUE(checker.ok());
  checker.on_backup_decision(1, 1);  // disagreement still caught
  EXPECT_FALSE(checker.ok());
}

// ---------------------------------------------------------------------------
// Property sweep: every Figure-1 distribution x n x protocol.
// ---------------------------------------------------------------------------

struct property_case {
  std::string dist_key;
  std::size_t n;
  protocol_kind protocol;
};

class SafetySweep : public ::testing::TestWithParam<property_case> {};

TEST_P(SafetySweep, LemmasHoldAcrossSeeds) {
  const auto& param = GetParam();
  const auto dist = find_distribution(param.dist_key);
  ASSERT_TRUE(dist.has_value());
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim_config config;
    config.inputs = split_inputs(param.n);
    config.sched = figure1_params(*dist);
    config.protocol = param.protocol;
    if (param.protocol == protocol_kind::combined) config.r_max = 3;
    config.seed = seed * 104729;
    const auto result = simulate(config);
    ASSERT_TRUE(result.violations.empty())
        << param.dist_key << " n=" << param.n << " seed=" << seed << ": "
        << result.violations.front();
    ASSERT_TRUE(result.all_live_decided)
        << param.dist_key << " n=" << param.n << " seed=" << seed;
    for (const auto& p : result.processes) {
      ASSERT_EQ(p.decision, result.decision);
    }
  }
}

std::vector<property_case> property_cases() {
  std::vector<property_case> cases;
  for (const auto& entry : figure1_catalog()) {
    for (std::size_t n : {2u, 5u, 16u}) {
      cases.push_back({entry.key, n, protocol_kind::lean});
    }
    cases.push_back({entry.key, 8u, protocol_kind::combined});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, SafetySweep, ::testing::ValuesIn(property_cases()),
    [](const ::testing::TestParamInfo<property_case>& info) {
      std::string key = info.param.dist_key;
      for (auto& c : key) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return key + "_n" + std::to_string(info.param.n) + "_" +
             std::string(protocol_name(info.param.protocol));
    });

// ---------------------------------------------------------------------------
// Unanimity: Lemma 3 at the execution level, across distributions.
// ---------------------------------------------------------------------------

class UnanimitySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(UnanimitySweep, EveryProcessDecidesInExactlyEightOps) {
  const auto dist = find_distribution(GetParam());
  ASSERT_TRUE(dist.has_value());
  for (int bit = 0; bit < 2; ++bit) {
    sim_config config;
    config.inputs = unanimous_inputs(12, bit);
    config.sched = figure1_params(*dist);
    config.seed = 321 + static_cast<std::uint64_t>(bit);
    const auto result = simulate(config);
    ASSERT_TRUE(result.all_live_decided);
    ASSERT_EQ(result.decision, bit);
    for (const auto& p : result.processes) {
      ASSERT_EQ(p.ops, 8u);  // Lemma 3
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Distributions, UnanimitySweep,
    ::testing::Values("norm", "twopoint", "delayed-poisson", "geom", "unif",
                      "exp1", "lower"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string key = info.param;
      for (auto& c : key) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return key;
    });

// ---------------------------------------------------------------------------
// Failures: random halting at various rates must never break safety.
// ---------------------------------------------------------------------------

class FailureSweep : public ::testing::TestWithParam<double> {};

TEST_P(FailureSweep, HaltingNeverBreaksSafety) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    sim_config config;
    config.inputs = split_inputs(12);
    config.sched = figure1_params(make_exponential(1.0));
    config.sched.halt_probability = GetParam();
    config.seed = seed * 31;
    const auto result = simulate(config);
    ASSERT_TRUE(result.violations.empty()) << "seed " << seed;
    if (result.any_decided) {
      for (const auto& p : result.processes) {
        if (p.decided) ASSERT_EQ(p.decision, result.decision);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, FailureSweep,
                         ::testing::Values(0.001, 0.01, 0.05, 0.2, 0.5),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "h" + std::to_string(static_cast<int>(
                                            info.param * 1000));
                         });

}  // namespace
}  // namespace leancon
