// Tests for the campaign service (src/serve): the persistent cell cache
// (LRU, persistence, conflict hardness), the classify → schedule →
// coalesce → stream service core (cold/warm/partial-overlap byte-identity
// against the single-process cells file, coalescing between concurrent
// requests, eviction accounting, runner-failure propagation, the fleet
// scheduling path), and the daemon end to end over its unix socket —
// including kill -9 and restart with a warm cache.
#include "serve/service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "fleet/supervisor.h"
#include "fleet/worker_proc.h"
#include "serve/cell_cache.h"
#include "util/json.h"

namespace leancon {
namespace {

// Injected by tests/CMakeLists.txt as $<TARGET_FILE:...>.
#ifndef LEANCON_SERVE_BIN
#define LEANCON_SERVE_BIN "campaign_serve"
#endif
#ifndef LEANCON_SUBMIT_BIN
#define LEANCON_SUBMIT_BIN "campaign_submit"
#endif
#ifndef LEANCON_WORKER_BIN
#define LEANCON_WORKER_BIN "campaign_worker"
#endif

std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "serve_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

serve::grid_request small_request() {
  serve::grid_request req;
  req.grid.scenarios = {"mutex-noise", "hybrid-q8"};
  req.grid.ns = {2, 4};
  req.grid.trials = 4;
  req.grid.seed = 1;
  req.grid_flags = {"--scenarios=mutex-noise,hybrid-q8", "--ns=2,4",
                    "--trials=4", "--op-budget=0", "--seed=1"};
  return req;
}

/// The cells file a single-process campaign writes for `grid` — the byte
/// reference every service assertion compares against.
std::string single_process_bytes(const std::string& dir,
                                 const campaign_grid& grid) {
  const std::string path = dir + "/single.jsonl";
  {
    campaign_io io(path);
    campaign_options opts;
    opts.threads = 2;
    opts.io = &io;
    run_campaign(grid.expand(), opts);
  }
  return read_file(path);
}

/// Runs one request and returns (stats, concatenated streamed bytes).
std::pair<serve::request_stats, std::string> run_request(
    serve::cell_service& service, const serve::grid_request& req) {
  std::string bytes;
  const auto stats = service.run(req, [&bytes](const std::string& line) {
    bytes += line;
    bytes += '\n';
  });
  return {stats, bytes};
}

/// The lines of a cold run of `req`, keyed for cache seeding.
struct seeded_line {
  std::uint64_t hash = 0;
  std::uint64_t seed = 0;
  std::string line;
};
std::vector<seeded_line> cold_lines(const serve::grid_request& req) {
  std::vector<seeded_line> out;
  campaign_options opts;
  opts.threads = 2;
  opts.on_cell = [&out](const cell_result& r) {
    std::string line = campaign_io::format_line(r, false);
    while (!line.empty() && line.back() == '\n') line.pop_back();
    out.push_back({r.hash, r.cell.params.seed, std::move(line)});
  };
  run_campaign(req.grid.expand(), opts);
  return out;
}

double counter_from_json(const std::string& path, const std::string& name) {
  const json::value root = json::parse(read_file(path));
  const json::value* counters = root.find("counters");
  EXPECT_NE(counters, nullptr) << path;
  if (counters == nullptr) return -1.0;
  const json::value* v = counters->find(name.c_str());
  EXPECT_NE(v, nullptr) << name << " missing in " << path;
  return v == nullptr ? -1.0 : v->num;
}

// --- cell_cache ------------------------------------------------------------

TEST(ServeCellCache, InsertFindAndReloadFromDisk) {
  const std::string dir = fresh_dir("cache_reload");
  const std::string path = dir + "/cache.jsonl";
  const auto lines = cold_lines(small_request());
  ASSERT_EQ(lines.size(), 4u);
  {
    serve::cell_cache cache(path);
    EXPECT_EQ(cache.loaded(), 0u);
    for (const auto& l : lines) cache.insert(l.hash, l.seed, l.line);
    EXPECT_EQ(cache.entries(), lines.size());
    const auto hit = cache.find(lines[1].hash, lines[1].seed);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, lines[1].line);
    EXPECT_FALSE(cache.find(1, 2).has_value());
    // Identical re-insertion is benign (a coalesced race resolving twice).
    cache.insert(lines[0].hash, lines[0].seed, lines[0].line);
    EXPECT_EQ(cache.entries(), lines.size());
  }
  // Reopen: every entry restored from the file, bytes intact.
  serve::cell_cache cache(path);
  EXPECT_EQ(cache.loaded(), lines.size());
  EXPECT_EQ(cache.skipped_lines(), 0u);
  for (const auto& l : lines) {
    const auto hit = cache.find(l.hash, l.seed);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, l.line);
  }
  // The cache file IS a cells file: merge_files reads it unchanged.
  const auto merged = campaign_io::merge_files({path});
  EXPECT_EQ(merged.records.size(), lines.size());
  EXPECT_EQ(merged.skipped_lines, 0u);
}

TEST(ServeCellCache, ConflictingBytesAreAHardError) {
  const std::string dir = fresh_dir("cache_conflict");
  const auto lines = cold_lines(small_request());
  serve::cell_cache cache(dir + "/cache.jsonl");
  cache.insert(lines[0].hash, lines[0].seed, lines[0].line);
  // Same key, different bytes: a determinism violation or a foreign cache
  // — mirroring merge_files, never something to overwrite silently.
  EXPECT_THROW(
      cache.insert(lines[0].hash, lines[0].seed, lines[1].line),
      std::runtime_error);
}

TEST(ServeCellCache, SizeCapEvictsLeastRecentlyUsed) {
  const std::string dir = fresh_dir("cache_lru");
  const auto lines = cold_lines(small_request());
  // Cap sized for roughly two entries, so inserting all four must evict.
  const std::uint64_t cap =
      2 * (lines[0].line.size() + 1) + lines[1].line.size() / 2;
  serve::cell_cache cache(dir + "/cache.jsonl", cap);
  cache.insert(lines[0].hash, lines[0].seed, lines[0].line);
  cache.insert(lines[1].hash, lines[1].seed, lines[1].line);
  // Touch entry 0 so entry 1 is now the least recently used.
  ASSERT_TRUE(cache.find(lines[0].hash, lines[0].seed).has_value());
  cache.insert(lines[2].hash, lines[2].seed, lines[2].line);
  EXPECT_GE(cache.evictions(), 1u);
  EXPECT_LE(cache.bytes(), cap);
  // The refreshed entry survived its unrefreshed sibling.
  EXPECT_FALSE(cache.find(lines[1].hash, lines[1].seed).has_value());
  EXPECT_TRUE(cache.find(lines[2].hash, lines[2].seed).has_value());

  // A cap smaller than any single line still holds the newest entry — a
  // cache that cannot keep one line would thrash into uselessness.
  serve::cell_cache tiny(dir + "/tiny.jsonl", 8);
  tiny.insert(lines[0].hash, lines[0].seed, lines[0].line);
  EXPECT_EQ(tiny.entries(), 1u);
  EXPECT_TRUE(tiny.find(lines[0].hash, lines[0].seed).has_value());
}

TEST(ServeCellCache, CompactionDropsEvictedLinesFromDisk) {
  const std::string dir = fresh_dir("cache_compact");
  const std::string path = dir + "/cache.jsonl";
  const auto lines = cold_lines(small_request());
  const std::uint64_t cap = 2 * (lines[0].line.size() + 64);
  {
    serve::cell_cache cache(path, cap);
    for (const auto& l : lines) cache.insert(l.hash, l.seed, l.line);
    EXPECT_GE(cache.evictions(), 1u);
  }  // destructor compacts
  // The rewritten file holds exactly the survivors; a reload agrees.
  serve::cell_cache cache(path, cap);
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_LE(cache.bytes(), cap);
  EXPECT_GE(cache.loaded(), 1u);
  EXPECT_LT(cache.loaded(), lines.size());
}

// --- cell_service ----------------------------------------------------------

TEST(ServeService, ColdThenWarmAreByteIdenticalToSingleProcess) {
  const std::string dir = fresh_dir("svc_warm");
  const auto req = small_request();
  const std::string reference = single_process_bytes(dir, req.grid);

  serve::cell_cache cache(dir + "/cache.jsonl");
  serve::cell_service service(cache,
                              serve::cell_service::pool_runner(2));

  const auto [cold, cold_bytes] = run_request(service, req);
  EXPECT_EQ(cold.cells, 4u);
  EXPECT_EQ(cold.cache_hits, 0u);
  EXPECT_EQ(cold.cache_misses, 4u);
  EXPECT_EQ(cold.coalesced, 0u);
  EXPECT_GT(cold.sim_ops, 0.0);
  EXPECT_EQ(cold_bytes, reference);

  // THE serving contract: the warm pass answers every cell from the cache
  // byte-for-byte with zero simulator work.
  const auto [warm, warm_bytes] = run_request(service, req);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(warm.sim_ops, 0.0);
  EXPECT_EQ(warm_bytes, reference);

  const auto totals = service.totals();
  EXPECT_EQ(totals.cells, 8u);
  EXPECT_EQ(totals.cache_hits, 4u);
  EXPECT_EQ(service.requests(), 2u);
}

TEST(ServeService, PartialOverlapSimulatesOnlyTheMissingCells) {
  const std::string dir = fresh_dir("svc_partial");
  // Grid B extends grid A by APPENDED scenarios, so A's cells are a
  // positional prefix of B's — same ordinals, hence same per-cell seeds
  // (trial_seed(seed, ordinal)) and same resume keys.
  serve::grid_request a;
  a.grid.scenarios = {"mutex-noise"};
  a.grid.ns = {2, 4};
  a.grid.trials = 4;
  a.grid.seed = 1;
  a.grid_flags = {"--scenarios=mutex-noise", "--ns=2,4", "--trials=4",
                  "--op-budget=0", "--seed=1"};
  const auto b = small_request();

  serve::cell_cache cache(dir + "/cache.jsonl");
  serve::cell_service service(cache,
                              serve::cell_service::pool_runner(2));
  const auto [cold_a, bytes_a] = run_request(service, a);
  EXPECT_EQ(cold_a.cache_misses, 2u);
  EXPECT_EQ(bytes_a, single_process_bytes(dir, a.grid));

  const auto [partial, bytes_b] = run_request(service, b);
  EXPECT_EQ(partial.cells, 4u);
  EXPECT_EQ(partial.cache_hits, 2u);    // A's cells, from the cache
  EXPECT_EQ(partial.cache_misses, 2u);  // only the appended scenario runs
  EXPECT_EQ(bytes_b, single_process_bytes(dir, b.grid));
}

TEST(ServeService, ConcurrentOverlappingRequestsCoalesceInFlightCells) {
  const std::string dir = fresh_dir("svc_coalesce");
  const auto req = small_request();
  const std::string reference = single_process_bytes(dir, req.grid);

  // Gate the miss runner so request A's cells are verifiably in flight
  // while request B classifies.
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  bool gate_open = false;
  std::atomic<bool> runner_entered{false};
  auto inner = serve::cell_service::pool_runner(2);
  serve::miss_runner gated =
      [&](const serve::grid_request& r,
          const std::vector<campaign_cell>& missing,
          const serve::line_sink& sink) {
        runner_entered.store(true);
        std::unique_lock<std::mutex> lk(gate_mu);
        gate_cv.wait(lk, [&] { return gate_open; });
        lk.unlock();
        inner(r, missing, sink);
      };

  serve::cell_cache cache(dir + "/cache.jsonl");
  serve::cell_service service(cache, std::move(gated));

  serve::request_stats stats_a, stats_b;
  std::string bytes_a, bytes_b;
  std::thread ta([&] {
    stats_a = service.run(req, [&](const std::string& line) {
      bytes_a += line;
      bytes_a += '\n';
    });
  });
  // A owns every cell (registered before its runner was invoked) once the
  // gated runner reports in.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (!runner_entered.load()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  std::thread tb([&] {
    stats_b = service.run(req, [&](const std::string& line) {
      bytes_b += line;
      bytes_b += '\n';
    });
  });
  // B never simulates: every cell is either already in flight when it
  // classifies, or already cached by the time it gets there.
  {
    std::lock_guard<std::mutex> lk(gate_mu);
    gate_open = true;
  }
  gate_cv.notify_all();
  ta.join();
  tb.join();

  EXPECT_EQ(stats_a.cache_misses, 4u);
  EXPECT_EQ(stats_b.cache_misses, 0u);
  EXPECT_GT(stats_b.coalesced, 0u);
  EXPECT_EQ(stats_b.coalesced + stats_b.cache_hits, 4u);
  EXPECT_EQ(stats_b.sim_ops, 0.0);  // the work was A's, not B's
  EXPECT_EQ(bytes_a, reference);
  EXPECT_EQ(bytes_b, reference);
  EXPECT_GE(service.totals().coalesced, stats_b.coalesced);
}

TEST(ServeService, RunnerFailureFailsTheRequestAndFreesTheCells) {
  const std::string dir = fresh_dir("svc_fail");
  const auto req = small_request();
  serve::cell_cache cache(dir + "/cache.jsonl");

  int calls = 0;
  serve::miss_runner flaky =
      [&calls](const serve::grid_request& r,
               const std::vector<campaign_cell>& missing,
               const serve::line_sink& sink) {
        if (++calls == 1) throw std::runtime_error("injected runner death");
        serve::cell_service::pool_runner(2)(r, missing, sink);
      };
  serve::cell_service service(cache, std::move(flaky));

  EXPECT_THROW(
      service.run(req, [](const std::string&) {}),
      std::runtime_error);
  // The failed cells were released, not leaked as forever-in-flight: a
  // retry claims and simulates them successfully.
  const auto [retry, bytes] = run_request(service, req);
  EXPECT_EQ(retry.cache_misses, 4u);
  EXPECT_EQ(bytes, single_process_bytes(dir, req.grid));
}

TEST(ServeService, EvictionsDuringARequestSurfaceInItsStats) {
  const std::string dir = fresh_dir("svc_evict");
  const auto req = small_request();
  const auto lines = cold_lines(req);
  const std::uint64_t cap = 2 * (lines[0].line.size() + 64);
  serve::cell_cache cache(dir + "/cache.jsonl", cap);
  serve::cell_service service(cache,
                              serve::cell_service::pool_runner(2));
  const auto [cold, bytes] = run_request(service, req);
  EXPECT_GT(cold.evictions, 0u);
  // Eviction never corrupts the stream: the bytes still match.
  EXPECT_EQ(bytes, single_process_bytes(dir, req.grid));
}

TEST(ServeService, FleetRunnerSchedulesMissesThroughTheSupervisor) {
  const std::string dir = fresh_dir("svc_fleet");
  const auto req = small_request();
  const std::string reference = single_process_bytes(dir, req.grid);

  fleet::fleet_config base;
  base.shards = 2;
  base.worker_argv = {LEANCON_WORKER_BIN};
  base.run_dir = dir + "/fleet";
  base.worker_threads = 1;
  base.worker_heartbeat_interval_s = 0.02;
  base.heartbeat_interval_s = 0.05;
  base.backoff_s = 0.01;
  base.verbose = false;

  serve::cell_cache cache(dir + "/cache.jsonl");
  serve::cell_service service(
      cache, serve::cell_service::fleet_runner(std::move(base)));

  const auto [cold, cold_bytes] = run_request(service, req);
  EXPECT_EQ(cold.cache_misses, 4u);
  EXPECT_EQ(cold_bytes, reference);

  const auto [warm, warm_bytes] = run_request(service, req);
  EXPECT_EQ(warm.cache_hits, 4u);
  EXPECT_EQ(warm.sim_ops, 0.0);
  EXPECT_EQ(warm_bytes, reference);
}

// --- Daemon end to end -----------------------------------------------------

/// Kills the daemon on scope exit so a failed assertion never leaks it.
struct daemon_guard {
  fleet::worker_proc proc;
  ~daemon_guard() {
    if (proc.spawned() && proc.running()) proc.kill(SIGKILL);
  }
  void wait_exit() {
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(30);
    while (proc.running()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
};

int run_client(const std::vector<std::string>& argv,
               const std::string& log_path) {
  fleet::worker_proc proc;
  proc.spawn(argv, log_path);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (proc.running()) {
    if (std::chrono::steady_clock::now() >= deadline) {
      proc.kill(SIGKILL);
      return -1;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return proc.signaled() ? -proc.term_signal() : proc.exit_code();
}

/// Submits the small grid, retrying while the daemon is still binding its
/// socket; returns the last exit code.
int submit_small(const std::string& socket, const std::string& out,
                 const std::string& json, const std::string& log) {
  const std::vector<std::string> argv = {
      LEANCON_SUBMIT_BIN, "--socket=" + socket,
      "--scenarios=mutex-noise,hybrid-q8", "--ns=2,4", "--trials=4",
      "--op-budget=0", "--seed=1", "--out=" + out, "--json=" + json,
      "--quiet=true"};
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int code = -1;
  while (std::chrono::steady_clock::now() < deadline) {
    code = run_client(argv, log);
    if (code == 0) return 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  return code;
}

TEST(ServeDaemon, ColdWarmAndKillRestartOverTheUnixSocket) {
  const std::string dir = fresh_dir("daemon");
  const std::string socket = dir + "/serve.sock";
  const std::string cache = dir + "/cache.jsonl";

  serve::grid_request req = small_request();
  const std::string reference = single_process_bytes(dir, req.grid);

  daemon_guard daemon;
  daemon.proc.spawn({LEANCON_SERVE_BIN, "--socket=" + socket,
                     "--cache=" + cache, "--threads=2",
                     "--heartbeat=" + dir + "/hb.jsonl",
                     "--heartbeat-interval=0.05", "--quiet=true"},
                    dir + "/serve_log.txt");

  // Cold: every cell simulated, stream byte-identical to single-process.
  ASSERT_EQ(submit_small(socket, dir + "/out1.jsonl", dir + "/sub1.json",
                         dir + "/sub1_log.txt"),
            0)
      << read_file(dir + "/sub1_log.txt");
  EXPECT_EQ(read_file(dir + "/out1.jsonl"), reference);
  EXPECT_EQ(counter_from_json(dir + "/sub1.json", "cells"), 4.0);
  EXPECT_EQ(counter_from_json(dir + "/sub1.json", "cache_hits"), 0.0);
  EXPECT_EQ(counter_from_json(dir + "/sub1.json", "cache_misses"), 4.0);

  // Warm: byte-identical again, all hits, zero simulator work.
  ASSERT_EQ(submit_small(socket, dir + "/out2.jsonl", dir + "/sub2.json",
                         dir + "/sub2_log.txt"),
            0)
      << read_file(dir + "/sub2_log.txt");
  EXPECT_EQ(read_file(dir + "/out2.jsonl"), reference);
  EXPECT_EQ(counter_from_json(dir + "/sub2.json", "cache_hits"), 4.0);
  EXPECT_EQ(counter_from_json(dir + "/sub2.json", "sim_ops"), 0.0);

  // The daemon heartbeats under the "serve" shard identity.
  EXPECT_NE(read_file(dir + "/hb.jsonl").find("\"shard\":\"serve\""),
            std::string::npos);

  // kill -9: the appended-on-insert cache file survives, so a restarted
  // daemon answers the same grid fully warm.
  daemon.proc.kill(SIGKILL);
  daemon.wait_exit();
  ASSERT_TRUE(daemon.proc.signaled());

  daemon_guard revived;
  revived.proc.spawn({LEANCON_SERVE_BIN, "--socket=" + socket,
                      "--cache=" + cache, "--threads=2", "--quiet=true"},
                     dir + "/serve_log2.txt");
  ASSERT_EQ(submit_small(socket, dir + "/out3.jsonl", dir + "/sub3.json",
                         dir + "/sub3_log.txt"),
            0)
      << read_file(dir + "/sub3_log.txt");
  EXPECT_EQ(read_file(dir + "/out3.jsonl"), reference);
  EXPECT_EQ(counter_from_json(dir + "/sub3.json", "cache_hits"), 4.0);
  EXPECT_EQ(counter_from_json(dir + "/sub3.json", "sim_ops"), 0.0);

  // Clean shutdown on SIGTERM: exit 0 (cache compacted on the way out).
  revived.proc.kill(SIGTERM);
  revived.wait_exit();
  ASSERT_FALSE(revived.proc.signaled());
  EXPECT_EQ(revived.proc.exit_code(), 0);
}

}  // namespace
}  // namespace leancon
