#include "trace/trace.h"

#include <gtest/gtest.h>

#include "noise/catalog.h"
#include "sim/simulator.h"

namespace leancon {
namespace {

trace_event make_write(double time, int pid, int array, std::uint64_t index) {
  trace_event e;
  e.time = time;
  e.pid = pid;
  e.op = operation::write(
      {array == 0 ? space::race0 : space::race1, index}, 1);
  e.round = index;
  return e;
}

TEST(Trace, EmptyTraceRendersPlaceholder) {
  execution_trace trace;
  EXPECT_TRUE(trace.empty());
  EXPECT_NE(trace.render_race_chart().find("empty"), std::string::npos);
}

TEST(Trace, FrontierTracksHighestWrite) {
  execution_trace trace;
  trace.add(make_write(1.0, 0, 0, 1));
  trace.add(make_write(2.0, 0, 1, 1));
  trace.add(make_write(3.0, 0, 0, 2));
  EXPECT_EQ(trace.frontier(0, 0), 1u);
  EXPECT_EQ(trace.frontier(0, 2), 2u);
  EXPECT_EQ(trace.frontier(1, 2), 1u);
  EXPECT_EQ(trace.frontier(1, 0), 0u);
}

TEST(Trace, ReadsDoNotMoveFrontier) {
  execution_trace trace;
  trace_event e;
  e.time = 1.0;
  e.op = operation::read({space::race0, 9});
  trace.add(e);
  EXPECT_EQ(trace.frontier(0, 0), 0u);
}

TEST(Trace, RaceChartShowsBothArrays) {
  execution_trace trace;
  for (std::uint64_t r = 1; r <= 5; ++r) {
    trace.add(make_write(static_cast<double>(r), 0, 0, r));
  }
  trace.add(make_write(5.5, 1, 1, 1));
  const std::string chart = trace.render_race_chart(4, 10);
  EXPECT_NE(chart.find("a0"), std::string::npos);
  EXPECT_NE(chart.find("a1"), std::string::npos);
  EXPECT_NE(chart.find('#'), std::string::npos);
  // Final bucket must show the a0 frontier at 5.
  EXPECT_NE(chart.find(" 5 "), std::string::npos);
}

TEST(Trace, ProcessSummaryCountsOpsAndDecisions) {
  execution_trace trace;
  trace.add(make_write(1.0, 0, 0, 1));
  trace.add(make_write(2.0, 0, 0, 2));
  trace_event decide = make_write(3.0, 1, 1, 1);
  decide.decided = true;
  decide.decision = 1;
  trace.add(decide);
  const std::string summary = trace.render_process_summary(2);
  EXPECT_NE(summary.find("p0"), std::string::npos);
  EXPECT_NE(summary.find("ops=2"), std::string::npos);
  EXPECT_NE(summary.find("decision=1"), std::string::npos);
}

TEST(Trace, SimulatorEventHookFeedsTrace) {
  execution_trace trace;
  sim_config config;
  config.inputs = split_inputs(4);
  config.sched = figure1_params(make_exponential(1.0));
  config.seed = 5;
  config.event_hook = [&trace](const trace_event& e) { trace.add(e); };
  const auto result = simulate(config);
  ASSERT_TRUE(result.all_live_decided);
  EXPECT_EQ(trace.size(), result.total_ops);

  // Events arrive in nondecreasing simulated time.
  for (std::size_t i = 1; i < trace.events().size(); ++i) {
    ASSERT_LE(trace.events()[i - 1].time, trace.events()[i].time);
  }
  // The chart and summary render non-trivially.
  EXPECT_GT(trace.render_race_chart().size(), 100u);
  EXPECT_NE(trace.render_process_summary(4).find("decision="),
            std::string::npos);
  // Exactly the decided processes carry decision marks.
  std::size_t decisions = 0;
  for (const auto& e : trace.events()) {
    if (e.decided) ++decisions;
  }
  EXPECT_EQ(decisions, 4u);
}

TEST(Trace, FrontiersNeverExceedMaxRound) {
  execution_trace trace;
  sim_config config;
  config.inputs = split_inputs(6);
  config.sched = figure1_params(make_uniform(0.0, 2.0));
  config.seed = 9;
  config.event_hook = [&trace](const trace_event& e) { trace.add(e); };
  const auto result = simulate(config);
  EXPECT_LE(trace.frontier(0, trace.size()), result.max_round_reached);
  EXPECT_LE(trace.frontier(1, trace.size()), result.max_round_reached);
}

}  // namespace
}  // namespace leancon
