// Exhaustive interleaving verification of the safety arguments, on the
// src/check/ subsystem:
//   * lean-consensus Lemmas 2-4, agreement, validity — every reachable state
//     of 2- and 3-process executions with capped rounds;
//   * adopt-commit coherence/convergence/validity — every interleaving;
//   * conciliator validity/unanimity — every interleaving and coin outcome;
//   * ABD atomicity — every delivery order of the canonical register
//     workloads.
//
// These checks are the mechanical counterpart of the paper's Section 5 and
// the backup's safety argument: they would catch, e.g., reordering the
// four operations of a round, dropping the "superfluous" write, or the
// doorway re-read in the adopt-commit object.
//
// The state counts asserted here equal the retired tests/model_check.h
// checkers' counts exactly (verified side by side before that header was
// deleted): the new engine explores the same reachable sets.
#include <gtest/gtest.h>

#include "check/explorer.h"
#include "check/systems.h"

namespace leancon::check {
namespace {

mc_verdict run_full(const checkable& sys) {
  explore_options opts;
  opts.por = false;  // the old checkers' exact exploration
  return explore(sys, opts);
}

std::string first_violation(const mc_verdict& v) {
  return v.violations.empty() ? std::string("(none)") : v.violations.front();
}

TEST(LeanModelCheck, TwoProcessesSplitInputs) {
  const auto result = run_full(*make_lean_system({0, 1}, /*round_cap=*/5));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.states_visited, 100u);
  // Exact parity with the retired hand-rolled checker.
  EXPECT_EQ(result.states_visited, 783u);
}

TEST(LeanModelCheck, TwoProcessesUnanimousZero) {
  const auto result = run_full(*make_lean_system({0, 0}, /*round_cap=*/5));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.max_progress, 0u);
  EXPECT_EQ(result.states_visited, 145u);
}

TEST(LeanModelCheck, TwoProcessesUnanimousOne) {
  const auto result = run_full(*make_lean_system({1, 1}, /*round_cap=*/5));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_EQ(result.states_visited, 81u);
}

TEST(LeanModelCheck, ThreeProcessesSplit) {
  const auto result = run_full(*make_lean_system({0, 1, 0}, /*round_cap=*/4));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.states_visited, 1000u);
}

TEST(LeanModelCheck, ThreeProcessesOtherSplit) {
  const auto result = run_full(*make_lean_system({1, 0, 1}, /*round_cap=*/4));
  EXPECT_TRUE(result.ok()) << first_violation(result);
}

TEST(LeanModelCheck, ThreeProcessesUnanimous) {
  const auto result = run_full(*make_lean_system({1, 1, 1}, /*round_cap=*/4));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.max_progress, 0u);
}

TEST(LeanModelCheck, DecisionsActuallyOccurInSplitRuns) {
  // Sanity check on the checker itself: some schedules do reach decisions
  // even with split inputs (e.g. one process running solo).
  const auto result = run_full(*make_lean_system({0, 1}, /*round_cap=*/5));
  EXPECT_GT(result.max_progress, 0u);
}

TEST(LeanModelCheck, PartialOrderReductionKeepsTheVerdict) {
  const auto full = run_full(*make_lean_system({0, 1, 1}, /*round_cap=*/4));
  const auto reduced = explore(*make_lean_system({0, 1, 1}, /*round_cap=*/4));
  EXPECT_TRUE(full.ok());
  EXPECT_TRUE(reduced.ok());
  EXPECT_LT(reduced.states_visited, full.states_visited);
  EXPECT_GT(reduced.por_skipped, 0u);
  EXPECT_EQ(reduced.terminal_states, full.terminal_states);
}

class ConciliatorExhaustive
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(ConciliatorExhaustive, AllInterleavingsAndCoinOutcomesSafe) {
  const auto result = run_full(*make_conciliator_system(GetParam()));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.states_visited, 2u);
  EXPECT_EQ(result.max_progress, GetParam().size());
}

INSTANTIATE_TEST_SUITE_P(
    InputCombos, ConciliatorExhaustive,
    ::testing::Values(std::vector<int>{0, 0}, std::vector<int>{0, 1},
                      std::vector<int>{1, 1}, std::vector<int>{0, 0, 0},
                      std::vector<int>{0, 1, 0}, std::vector<int>{1, 1, 0},
                      std::vector<int>{0, 1, 1, 0}),
    [](const ::testing::TestParamInfo<std::vector<int>>& info) {
      std::string name = "in";
      for (int b : info.param) name += std::to_string(b);
      return name;
    });

class AdoptCommitExhaustive
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(AdoptCommitExhaustive, AllInterleavingsSafe) {
  const auto result = run_full(*make_adopt_commit_system(GetParam()));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_GT(result.states_visited, 1u);
  // The object is wait-free: every process returns in every interleaving.
  EXPECT_EQ(result.max_progress, GetParam().size());
}

INSTANTIATE_TEST_SUITE_P(
    InputCombos, AdoptCommitExhaustive,
    ::testing::Values(std::vector<int>{0, 0}, std::vector<int>{0, 1},
                      std::vector<int>{1, 0}, std::vector<int>{1, 1},
                      std::vector<int>{0, 0, 0}, std::vector<int>{0, 0, 1},
                      std::vector<int>{0, 1, 1}, std::vector<int>{1, 1, 1},
                      std::vector<int>{0, 1, 0}, std::vector<int>{1, 0, 1},
                      std::vector<int>{0, 1, 1, 0}),
    [](const ::testing::TestParamInfo<std::vector<int>>& info) {
      std::string name = "in";
      for (int b : info.param) name += std::to_string(b);
      return name;
    });

TEST(AbdModelCheck, TwoProcessRegisterWorkloadIsAtomic) {
  const auto result = run_full(*make_abd_register_system(2));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  // Both clients complete both operations in every delivery order.
  EXPECT_EQ(result.max_progress, 4u);
  EXPECT_GT(result.terminal_states, 0u);
}

TEST(AbdModelCheck, ThreeProcessWriterReaderRaceIsAtomic) {
  const auto result = explore(*make_abd_register_system(3));
  EXPECT_TRUE(result.ok()) << first_violation(result);
  EXPECT_EQ(result.max_progress, 2u);
}

TEST(AbdModelCheck, WeakenedQuorumIsCaughtAsStaleRead) {
  // With quorum 1 at n = 2, a write can complete against the writer's own
  // replica alone; a read started afterwards can then complete against the
  // reader's stale replica. The atomicity invariant must find such a
  // schedule — this is the proof the check has teeth.
  const location reg{space::scratch, 0};
  std::vector<std::vector<operation>> scripts = {
      {operation::write(reg, 1)},
      {operation::read(reg), operation::read(reg)}};
  const auto result =
      run_full(*make_abd_system_with_quorum(std::move(scripts), 1));
  EXPECT_GT(result.violations_total, 0u);
  bool stale = false;
  for (const auto& v : result.violations) {
    stale = stale || v.find("stale read") != std::string::npos;
  }
  EXPECT_TRUE(stale) << first_violation(result);
}

}  // namespace
}  // namespace leancon::check
