// Exhaustive interleaving verification of the safety arguments:
//   * lean-consensus Lemmas 2-4, agreement, validity — every reachable state
//     of 2- and 3-process executions with capped rounds;
//   * adopt-commit coherence/convergence/validity — every interleaving.
//
// These checks are the mechanical counterpart of the paper's Section 5 and
// the backup's safety argument: they would catch, e.g., reordering the
// four operations of a round, dropping the "superfluous" write, or the
// doorway re-read in the adopt-commit object.
#include "model_check.h"

#include <gtest/gtest.h>

namespace leancon {
namespace {

using testing::adopt_commit_model_checker;
using testing::lean_model_checker;

TEST(LeanModelCheck, TwoProcessesSplitInputs) {
  lean_model_checker checker({0, 1}, /*round_cap=*/5);
  const auto result = checker.run();
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_GT(result.states_visited, 100u);
}

TEST(LeanModelCheck, TwoProcessesUnanimousZero) {
  lean_model_checker checker({0, 0}, /*round_cap=*/5);
  const auto result = checker.run();
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_GT(result.decisions_seen, 0u);
}

TEST(LeanModelCheck, TwoProcessesUnanimousOne) {
  lean_model_checker checker({1, 1}, /*round_cap=*/5);
  const auto result = checker.run();
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(LeanModelCheck, ThreeProcessesSplit) {
  lean_model_checker checker({0, 1, 0}, /*round_cap=*/4);
  const auto result = checker.run();
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_GT(result.states_visited, 1000u);
}

TEST(LeanModelCheck, ThreeProcessesOtherSplit) {
  lean_model_checker checker({1, 0, 1}, /*round_cap=*/4);
  const auto result = checker.run();
  EXPECT_TRUE(result.ok()) << result.violations.front();
}

TEST(LeanModelCheck, ThreeProcessesUnanimous) {
  lean_model_checker checker({1, 1, 1}, /*round_cap=*/4);
  const auto result = checker.run();
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_GT(result.decisions_seen, 0u);
}

TEST(LeanModelCheck, DecisionsActuallyOccurInSplitRuns) {
  // Sanity check on the checker itself: some schedules do reach decisions
  // even with split inputs (e.g. one process running solo).
  lean_model_checker checker({0, 1}, /*round_cap=*/5);
  const auto result = checker.run();
  EXPECT_GT(result.decisions_seen, 0u);
}

class ConciliatorExhaustive
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(ConciliatorExhaustive, AllInterleavingsAndCoinOutcomesSafe) {
  testing::conciliator_model_checker checker(GetParam());
  const auto result = checker.run();
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_GT(result.states_visited, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    InputCombos, ConciliatorExhaustive,
    ::testing::Values(std::vector<int>{0, 0}, std::vector<int>{0, 1},
                      std::vector<int>{1, 1}, std::vector<int>{0, 0, 0},
                      std::vector<int>{0, 1, 0}, std::vector<int>{1, 1, 0},
                      std::vector<int>{0, 1, 1, 0}),
    [](const ::testing::TestParamInfo<std::vector<int>>& info) {
      std::string name = "in";
      for (int b : info.param) name += std::to_string(b);
      return name;
    });

class AdoptCommitExhaustive
    : public ::testing::TestWithParam<std::vector<int>> {};

TEST_P(AdoptCommitExhaustive, AllInterleavingsSafe) {
  adopt_commit_model_checker checker(GetParam());
  const auto result = checker.run();
  EXPECT_TRUE(result.ok()) << result.violations.front();
  EXPECT_GT(result.states_visited, 1u);
}

INSTANTIATE_TEST_SUITE_P(
    InputCombos, AdoptCommitExhaustive,
    ::testing::Values(std::vector<int>{0, 0}, std::vector<int>{0, 1},
                      std::vector<int>{1, 0}, std::vector<int>{1, 1},
                      std::vector<int>{0, 0, 0}, std::vector<int>{0, 0, 1},
                      std::vector<int>{0, 1, 1}, std::vector<int>{1, 1, 1},
                      std::vector<int>{0, 1, 0}, std::vector<int>{1, 0, 1},
                      std::vector<int>{0, 1, 1, 0}),
    [](const ::testing::TestParamInfo<std::vector<int>>& info) {
      std::string name = "in";
      for (int b : info.param) name += std::to_string(b);
      return name;
    });

}  // namespace
}  // namespace leancon
