// Effect-size helper tests on hand-computed fixtures: Cohen's d and the
// normal overlapping coefficient from raw moments and from the
// mean/ci95/count triple a campaign cell records.
#include "stats/effect_size.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/summary.h"

namespace leancon {
namespace {

TEST(EffectSize, NormalCdfMatchesTabulatedValues) {
  EXPECT_DOUBLE_EQ(normal_cdf(0.0), 0.5);
  EXPECT_NEAR(normal_cdf(1.96), 0.9750021048517795, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 0.15865525393145707, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(EffectSize, HandComputedCohensD) {
  // Equal spread, one-sd mean gap: d = (12 - 10) / 2 = 1, and
  // OVL = 2 * Phi(-1/2) = 2 * 0.30853753872598694 = 0.6170750774519739.
  const effect_size e = cohens_d(12.0, 2.0, 100, 10.0, 2.0, 100);
  EXPECT_DOUBLE_EQ(e.cohens_d, 1.0);
  EXPECT_NEAR(e.overlap, 0.6170750774519739, 1e-12);

  // Sign follows the argument order; the overlap does not.
  const effect_size flipped = cohens_d(10.0, 2.0, 100, 12.0, 2.0, 100);
  EXPECT_DOUBLE_EQ(flipped.cohens_d, -1.0);
  EXPECT_NEAR(flipped.overlap, e.overlap, 1e-15);

  // Unequal groups: pooled sd = sqrt((9*1 + 4*9) / 13) = sqrt(45/13)
  // = 1.8605210188381265, d = (7 - 5) / 1.8605210188381265.
  const effect_size uneven = cohens_d(7.0, 1.0, 10, 5.0, 3.0, 5);
  EXPECT_NEAR(uneven.cohens_d, 2.0 / std::sqrt(45.0 / 13.0), 1e-15);

  // Identical groups: no effect, full overlap.
  const effect_size none = cohens_d(4.0, 1.5, 30, 4.0, 1.5, 30);
  EXPECT_DOUBLE_EQ(none.cohens_d, 0.0);
  EXPECT_DOUBLE_EQ(none.overlap, 1.0);
}

TEST(EffectSize, DegenerateInputsFollowTheArithmetic) {
  // Zero pooled variance: identical point masses (d = 0) or infinitely
  // separated ones (d = +-inf, overlap 0).
  const effect_size same = cohens_d(3.0, 0.0, 10, 3.0, 0.0, 10);
  EXPECT_DOUBLE_EQ(same.cohens_d, 0.0);
  EXPECT_DOUBLE_EQ(same.overlap, 1.0);
  const effect_size apart = cohens_d(4.0, 0.0, 10, 3.0, 0.0, 10);
  EXPECT_TRUE(std::isinf(apart.cohens_d));
  EXPECT_GT(apart.cohens_d, 0.0);
  EXPECT_DOUBLE_EQ(apart.overlap, 0.0);

  // Below two observations per group there is no variance information.
  const effect_size tiny = cohens_d(4.0, 0.0, 1, 3.0, 1.0, 50);
  EXPECT_TRUE(std::isnan(tiny.cohens_d));
  EXPECT_TRUE(std::isnan(tiny.overlap));
}

TEST(EffectSize, InvertsTheCi95ASummaryRecords) {
  // ci95 = 1.96 * sd / sqrt(n) (summary::ci95_halfwidth), so the ci95 form
  // must recover the raw-moment answer exactly: sd 2, n 100 => ci95 0.392.
  const effect_size from_ci =
      cohens_d_from_ci95(12.0, 1.96 * 2.0 / 10.0, 100, 10.0,
                         1.96 * 2.0 / 10.0, 100);
  EXPECT_DOUBLE_EQ(from_ci.cohens_d, 1.0);

  // Round-trip through an actual summary: two synthetic samples with known
  // means; cohens_d_from_ci95 over (mean, ci95, count) must agree with
  // cohens_d over (mean, stddev, count) to floating-point rounding.
  summary a, b;
  for (int i = 0; i < 40; ++i) {
    a.add(10.0 + (i % 5));  // mean 12, spread {0..4}
    b.add(14.0 + (i % 3));  // mean 15, spread {0..2}
  }
  const effect_size direct =
      cohens_d(a.mean(), a.stddev(), a.count(), b.mean(), b.stddev(),
               b.count());
  const effect_size via_ci =
      cohens_d_from_ci95(a.mean(), a.ci95_halfwidth(), a.count(), b.mean(),
                         b.ci95_halfwidth(), b.count());
  EXPECT_NEAR(via_ci.cohens_d, direct.cohens_d, 1e-12);
  EXPECT_NEAR(via_ci.overlap, direct.overlap, 1e-12);
  EXPECT_LT(direct.cohens_d, 0.0);  // a sits below b
}

}  // namespace
}  // namespace leancon
