#include "backup/conciliator.h"

#include <gtest/gtest.h>

#include "memory/sim_memory.h"
#include "util/rng.h"

namespace leancon {
namespace {

void step(conciliator_machine& m, sim_memory& mem, int pid = 0) {
  const operation op = m.next_op();
  m.apply(mem.execute(pid, op));
}

TEST(Conciliator, RejectsBadParameters) {
  rng_coin coin{rng(1)};
  EXPECT_THROW(conciliator_machine(1, 2, 0.5, &coin), std::invalid_argument);
  EXPECT_THROW(conciliator_machine(1, 0, 0.0, &coin), std::invalid_argument);
  EXPECT_THROW(conciliator_machine(1, 0, 1.5, &coin), std::invalid_argument);
  EXPECT_THROW(conciliator_machine(1, 0, 0.5, nullptr),
               std::invalid_argument);
}

TEST(Conciliator, SoloWithProbabilityOneWritesAndReturnsOwnValue) {
  rng_coin coin{rng(2)};
  sim_memory mem;
  conciliator_machine m(1, 1, 1.0, &coin);
  while (!m.done()) step(m, mem);
  EXPECT_EQ(m.value(), 1);
  EXPECT_EQ(m.steps(), 2u);  // one read (empty), one write
  EXPECT_EQ(mem.peek({space::conc_value, 1}), encode_proposal(1));
}

TEST(Conciliator, AdoptsPreexistingValue) {
  rng_coin coin{rng(3)};
  sim_memory mem;
  mem.poke({space::conc_value, 1}, encode_proposal(0));
  conciliator_machine m(1, 1, 1.0, &coin);
  while (!m.done()) step(m, mem);
  EXPECT_EQ(m.value(), 0);
  EXPECT_EQ(m.steps(), 1u);  // the first read already resolves it
}

TEST(Conciliator, UnanimityIsPreservedAlways) {
  // Only input values are ever written: if every participant carries v, the
  // output is v in every schedule. Try many random interleavings.
  rng gen(4);
  for (int trial = 0; trial < 100; ++trial) {
    sim_memory mem;
    const int v = trial % 2;
    std::vector<conciliator_machine> machines;
    std::vector<rng_coin> coins;
    coins.reserve(4);
    for (int i = 0; i < 4; ++i) coins.emplace_back(rng(1000 + trial * 4 + i));
    for (int i = 0; i < 4; ++i) {
      machines.emplace_back(1, v, 0.25, &coins[static_cast<std::size_t>(i)]);
    }
    std::vector<std::size_t> pending{0, 1, 2, 3};
    std::uint64_t guard = 0;
    while (!pending.empty() && guard++ < 100000) {
      const std::size_t slot = gen.below(pending.size());
      const std::size_t idx = pending[slot];
      step(machines[idx], mem, static_cast<int>(idx));
      if (machines[idx].done()) {
        pending[slot] = pending.back();
        pending.pop_back();
      }
    }
    ASSERT_TRUE(pending.empty()) << "conciliator failed to terminate";
    for (const auto& m : machines) ASSERT_EQ(m.value(), v);
  }
}

TEST(Conciliator, ValidityOutputsAreInputs) {
  rng gen(5);
  for (int trial = 0; trial < 100; ++trial) {
    sim_memory mem;
    std::vector<conciliator_machine> machines;
    std::vector<rng_coin> coins;
    std::vector<int> inputs;
    coins.reserve(3);
    for (int i = 0; i < 3; ++i) coins.emplace_back(rng(2000 + trial * 3 + i));
    for (int i = 0; i < 3; ++i) {
      inputs.push_back(static_cast<int>(gen.below(2)));
      machines.emplace_back(1, inputs.back(), 0.3,
                            &coins[static_cast<std::size_t>(i)]);
    }
    std::vector<std::size_t> pending{0, 1, 2};
    while (!pending.empty()) {
      const std::size_t slot = gen.below(pending.size());
      const std::size_t idx = pending[slot];
      step(machines[idx], mem, static_cast<int>(idx));
      if (machines[idx].done()) {
        pending[slot] = pending.back();
        pending.pop_back();
      }
    }
    for (const auto& m : machines) {
      bool present = false;
      for (int b : inputs) present = present || b == m.value();
      ASSERT_TRUE(present);
    }
  }
}

TEST(Conciliator, AgreementProbabilityIsSubstantial) {
  // With p = 1/(2n) and random scheduling, all processes should agree in a
  // clear majority of rounds (the analysis gives a constant bound; we verify
  // it is comfortably bounded away from zero).
  rng gen(6);
  const int n = 4;
  int agreements = 0;
  const int trials = 500;
  for (int trial = 0; trial < trials; ++trial) {
    sim_memory mem;
    std::vector<conciliator_machine> machines;
    std::vector<rng_coin> coins;
    coins.reserve(n);
    for (int i = 0; i < n; ++i) coins.emplace_back(rng(3000 + trial * n + i));
    for (int i = 0; i < n; ++i) {
      machines.emplace_back(1, i % 2, 1.0 / (2.0 * n),
                            &coins[static_cast<std::size_t>(i)]);
    }
    std::vector<std::size_t> pending;
    for (int i = 0; i < n; ++i) pending.push_back(static_cast<std::size_t>(i));
    while (!pending.empty()) {
      const std::size_t slot = gen.below(pending.size());
      const std::size_t idx = pending[slot];
      step(machines[idx], mem, static_cast<int>(idx));
      if (machines[idx].done()) {
        pending[slot] = pending.back();
        pending.pop_back();
      }
    }
    bool agree = true;
    for (const auto& m : machines) agree = agree && m.value() ==
                                           machines[0].value();
    agreements += agree ? 1 : 0;
  }
  EXPECT_GT(agreements, trials / 4)
      << "conciliator agreement rate collapsed: " << agreements << "/"
      << trials;
}

TEST(Conciliator, ValueBeforeDoneThrows) {
  rng_coin coin{rng(7)};
  conciliator_machine m(1, 0, 0.5, &coin);
  EXPECT_THROW(m.value(), std::logic_error);
}

}  // namespace
}  // namespace leancon
