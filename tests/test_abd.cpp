// Message-passing substrate tests: ABD-emulated registers under noisy
// network delays, and consensus protocols running on top.
//
// Checked:
//   * register semantics via scripted machines (write-then-read, freshness
//     across processes, virtual prefix cells),
//   * real-time ordering of emulated operations against their timestamps
//     (the checkable core of atomicity: if op1 completes before op2 starts
//     on the same register, op2's timestamp is not older),
//   * lean-consensus and the combined protocol over the network: agreement,
//     validity, termination across seeds, with and without crashes.
#include "msg/abd_sim.h"

#include <gtest/gtest.h>

#include <map>

#include "id/id_machine.h"
#include "noise/catalog.h"

namespace leancon {
namespace {

/// A machine that executes a fixed script of operations, recording results.
class scripted_machine final : public consensus_machine {
 public:
  explicit scripted_machine(std::vector<operation> script)
      : script_(std::move(script)) {}

  operation next_op() const override { return script_.at(cursor_); }
  void apply(std::uint64_t result) override {
    results_.push_back(result);
    ++cursor_;
  }
  bool done() const override { return cursor_ >= script_.size(); }
  int decision() const override { return 0; }
  std::uint64_t steps() const override { return cursor_; }

  const std::vector<std::uint64_t>& results() const { return results_; }

 private:
  std::vector<operation> script_;
  std::size_t cursor_ = 0;
  std::vector<std::uint64_t> results_;
};

mp_config base_config(std::size_t n, std::uint64_t seed) {
  mp_config config;
  config.inputs = split_inputs(n);
  config.net = figure1_params(make_exponential(1.0));
  config.seed = seed;
  return config;
}

TEST(AbdSim, RejectsBadConfig) {
  mp_config config;
  config.net = figure1_params(make_exponential(1.0));
  EXPECT_THROW(run_message_passing(config), std::invalid_argument);
  config = base_config(4, 1);
  config.crashes = 2;  // not a strict minority
  EXPECT_THROW(run_message_passing(config), std::invalid_argument);
}

TEST(AbdSim, WriteThenReadReturnsValue) {
  auto config = base_config(3, 2);
  const location cell{space::scratch, 7};
  std::vector<std::uint64_t> observed;
  config.factory = [&](int pid, int, rng) -> std::unique_ptr<consensus_machine> {
    if (pid == 0) {
      return std::make_unique<scripted_machine>(std::vector<operation>{
          operation::write(cell, 42), operation::read(cell)});
    }
    return std::make_unique<scripted_machine>(std::vector<operation>{});
  };
  config.op_hook = [&](const abd_op_record& rec) {
    if (rec.op.kind == op_kind::read) observed.push_back(rec.result);
  };
  run_message_passing(config);
  ASSERT_EQ(observed.size(), 1u);
  EXPECT_EQ(observed[0], 42u);
}

TEST(AbdSim, VirtualPrefixReadsOneOverTheNetwork) {
  auto config = base_config(3, 3);
  std::vector<std::uint64_t> observed;
  config.factory = [&](int pid, int, rng) -> std::unique_ptr<consensus_machine> {
    if (pid == 0) {
      return std::make_unique<scripted_machine>(std::vector<operation>{
          operation::read({space::race0, 0}),
          operation::read({space::race1, 0}),
          operation::read({space::race0, 1})});
    }
    return std::make_unique<scripted_machine>(std::vector<operation>{});
  };
  config.op_hook = [&](const abd_op_record& rec) {
    observed.push_back(rec.result);
  };
  run_message_passing(config);
  ASSERT_EQ(observed.size(), 3u);
  EXPECT_EQ(observed[0], 1u);  // a0[0] prefix
  EXPECT_EQ(observed[1], 1u);  // a1[0] prefix
  EXPECT_EQ(observed[2], 0u);  // ordinary cell
}

TEST(AbdSim, RealTimeOrderRespectsTimestamps) {
  // Two writers and a reader hammer one register; whenever op1 ends before
  // op2 starts (same register), op2's settled timestamp must not be older.
  auto config = base_config(4, 5);
  const location cell{space::scratch, 1};
  std::vector<abd_op_record> records;
  config.factory = [&](int pid, int, rng) -> std::unique_ptr<consensus_machine> {
    std::vector<operation> script;
    for (int k = 0; k < 6; ++k) {
      if (pid < 2) {
        script.push_back(operation::write(
            cell, static_cast<std::uint64_t>(pid * 100 + k)));
      } else {
        script.push_back(operation::read(cell));
      }
    }
    return std::make_unique<scripted_machine>(std::move(script));
  };
  config.op_hook = [&](const abd_op_record& rec) { records.push_back(rec); };
  run_message_passing(config);
  ASSERT_GT(records.size(), 12u);
  for (const auto& a : records) {
    for (const auto& b : records) {
      if (a.end_time < b.start_time) {
        EXPECT_FALSE(b.timestamp < a.timestamp)
            << "op ending at " << a.end_time << " has newer timestamp than "
            << "op starting at " << b.start_time;
      }
    }
  }
}

TEST(AbdSim, LeanConsensusOverTheNetworkAgrees) {
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    auto config = base_config(6, seed * 11);
    const auto result = run_message_passing(config);
    ASSERT_TRUE(result.all_live_decided) << "seed " << seed;
    ASSERT_TRUE(result.decision == 0 || result.decision == 1);
    for (const auto& p : result.processes) {
      ASSERT_EQ(p.decision, result.decision);
    }
  }
}

TEST(AbdSim, UnanimousInputsSatisfyValidity) {
  for (int bit = 0; bit < 2; ++bit) {
    auto config = base_config(5, 77 + static_cast<std::uint64_t>(bit));
    config.inputs = unanimous_inputs(5, bit);
    const auto result = run_message_passing(config);
    ASSERT_TRUE(result.all_live_decided);
    EXPECT_EQ(result.decision, bit);
    // Lemma 3 carries over: 8 emulated operations each.
    for (const auto& p : result.processes) {
      EXPECT_EQ(p.register_ops, 8u);
    }
  }
}

TEST(AbdSim, SurvivesMinorityCrashes) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto config = base_config(7, seed * 13);
    config.crashes = 3;  // strict minority of 7
    const auto result = run_message_passing(config);
    ASSERT_TRUE(result.all_live_decided) << "seed " << seed;
    for (const auto& p : result.processes) {
      if (p.decided) ASSERT_EQ(p.decision, result.decision);
    }
  }
}

TEST(AbdSim, CombinedProtocolOverTheNetwork) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    auto config = base_config(4, seed * 17);
    config.protocol = protocol_kind::combined;
    config.r_max = 2;  // force occasional backup entry
    const auto result = run_message_passing(config);
    ASSERT_TRUE(result.all_live_decided) << "seed " << seed;
    for (const auto& p : result.processes) {
      ASSERT_EQ(p.decision, result.decision);
    }
  }
}

TEST(AbdSim, IdTournamentComposesOverTheNetwork) {
  // Full-stack composition: the footnote-2 id tournament (which itself
  // stacks combined = lean + backup per tree node) running over ABD-emulated
  // registers over the noisy network. Every layer's guarantees must hold
  // end to end: one live winner id, unanimously.
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    mp_config config;
    config.inputs.assign(4, 0);
    config.net = figure1_params(make_exponential(1.0));
    config.seed = 3000 + seed;
    config.max_messages = 30'000'000;
    config.factory = [](int pid, int, rng gen) {
      return std::make_unique<id_machine>(static_cast<std::uint64_t>(pid), 4,
                                          id_params{}, gen);
    };
    const auto result = run_message_passing(config);
    ASSERT_TRUE(result.all_live_decided) << "seed " << seed;
    ASSERT_GE(result.decision, 0);
    ASSERT_LT(result.decision, 4);
    for (const auto& p : result.processes) {
      ASSERT_EQ(p.decision, result.decision);
    }
  }
}

TEST(AbdSim, DeterministicForFixedSeed) {
  const auto a = run_message_passing(base_config(5, 99));
  const auto b = run_message_passing(base_config(5, 99));
  EXPECT_EQ(a.decision, b.decision);
  EXPECT_EQ(a.total_messages, b.total_messages);
  EXPECT_DOUBLE_EQ(a.first_decision_time, b.first_decision_time);
}

TEST(AbdSim, MessageBudgetStopsRunaways) {
  auto config = base_config(4, 3);
  config.max_messages = 100;
  const auto result = run_message_passing(config);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LE(result.total_messages, 100u);
}

TEST(AbdSim, MessageCountsAreAccounted) {
  const auto result = run_message_passing(base_config(4, 21));
  std::uint64_t sent = 0;
  for (const auto& p : result.processes) sent += p.messages_sent;
  // Every delivered message was sent; some sent messages may remain
  // undelivered when the run stops early.
  EXPECT_GE(sent, result.total_messages);
  EXPECT_GT(sent, 0u);
}

}  // namespace
}  // namespace leancon
