#include "noise/catalog.h"
#include "noise/distribution.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace leancon {
namespace {

// ---------------------------------------------------------------------------
// Parameterized properties over the full catalog.
// ---------------------------------------------------------------------------

class CatalogTest : public ::testing::TestWithParam<named_distribution> {};

double empirical_quantile(std::vector<double> v, double q) {
  const auto idx = static_cast<std::size_t>(q * (v.size() - 1));
  std::nth_element(v.begin(), v.begin() + static_cast<std::ptrdiff_t>(idx),
                   v.end());
  return v[idx];
}

TEST_P(CatalogTest, SamplesAreNonNegative) {
  rng gen(100);
  const auto& d = *GetParam().dist;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_GE(d.sample(gen), 0.0) << d.name();
  }
}

TEST_P(CatalogTest, NameIsNonEmpty) {
  EXPECT_FALSE(GetParam().dist->name().empty());
}

TEST_P(CatalogTest, NonDegenerateUnlessDeclared) {
  rng gen(101);
  const auto& d = *GetParam().dist;
  std::set<double> values;
  for (int i = 0; i < 2000; ++i) values.insert(d.sample(gen));
  if (d.degenerate()) {
    EXPECT_EQ(values.size(), 1u) << d.name();
  } else {
    EXPECT_GT(values.size(), 1u)
        << d.name() << " violates the model's non-degeneracy requirement";
  }
}

TEST_P(CatalogTest, EmpiricalMeanMatchesAnalytic) {
  const auto& d = *GetParam().dist;
  const double mean = d.mean();
  if (mean < 0.0) {
    // Infinite/undefined mean (Theorem 1 pathological, heavy pareto): no
    // bounded number of trials can estimate it, so these distributions MUST
    // provide an analytic median — EmpiricalQuantilesBracketAnalyticMedian
    // is then their bounded-trial sampler check. Here, additionally pin
    // that bounded trials stay finite.
    ASSERT_GE(d.median(), 0.0)
        << d.name() << " must provide an analytic median";
    rng gen(102);
    for (int i = 0; i < 20000; ++i) {
      ASSERT_TRUE(std::isfinite(d.sample(gen))) << d.name();
    }
    return;
  }
  rng gen(102);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += d.sample(gen);
  const double tolerance = 0.05 * std::max(1.0, mean);
  EXPECT_NEAR(sum / n, mean, tolerance) << d.name();
}

TEST_P(CatalogTest, EmpiricalQuantilesBracketAnalyticMedian) {
  const auto& d = *GetParam().dist;
  const double med = d.median();
  if (med < 0.0) GTEST_SKIP() << "no analytic median: " << d.name();
  rng gen(103);
  std::vector<double> samples(20001);
  for (auto& x : samples) x = d.sample(gen);
  EXPECT_LE(empirical_quantile(samples, 0.45), med + 1e-12) << d.name();
  EXPECT_GE(empirical_quantile(samples, 0.55), med - 1e-12) << d.name();
}

TEST_P(CatalogTest, FindDistributionRoundTrips) {
  const auto found = find_distribution(GetParam().key);
  ASSERT_TRUE(found.has_value()) << GetParam().key;
  EXPECT_EQ((*found)->name(), GetParam().dist->name());
}

INSTANTIATE_TEST_SUITE_P(
    FullCatalog, CatalogTest, ::testing::ValuesIn(full_catalog()),
    [](const ::testing::TestParamInfo<named_distribution>& info) {
      std::string key = info.param.key;
      for (auto& c : key) {
        if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
      }
      return key;
    });

// ---------------------------------------------------------------------------
// Distribution-specific behaviour.
// ---------------------------------------------------------------------------

TEST(Distributions, Figure1CatalogHasTheSixPaperEntries) {
  const auto cat = figure1_catalog();
  ASSERT_EQ(cat.size(), 6u);
  EXPECT_EQ(cat[0].dist->name(), "normal(1,0.04)");
  EXPECT_EQ(cat[5].dist->name(), "exponential(1)");
}

TEST(Distributions, TruncatedNormalStaysInSupport) {
  rng gen(7);
  const auto d = make_truncated_normal(1.0, 0.2, 0.0, 2.0);
  for (int i = 0; i < 20000; ++i) {
    const double x = d->sample(gen);
    ASSERT_GT(x, 0.0);
    ASSERT_LT(x, 2.0);
  }
}

TEST(Distributions, TwoPointTakesExactlyTwoValues) {
  rng gen(8);
  const auto d = make_two_point(2.0 / 3.0, 4.0 / 3.0);
  std::set<double> values;
  for (int i = 0; i < 2000; ++i) values.insert(d->sample(gen));
  EXPECT_EQ(values.size(), 2u);
  EXPECT_TRUE(values.count(2.0 / 3.0));
  EXPECT_TRUE(values.count(4.0 / 3.0));
}

TEST(Distributions, GeometricProducesPositiveIntegers) {
  rng gen(9);
  const auto d = make_geometric(0.5);
  for (int i = 0; i < 5000; ++i) {
    const double x = d->sample(gen);
    ASSERT_GE(x, 1.0);
    ASSERT_EQ(x, std::floor(x));
  }
}

TEST(Distributions, ShiftedExponentialRespectsShift) {
  rng gen(10);
  const auto d = make_shifted_exponential(0.5, 0.5);
  for (int i = 0; i < 5000; ++i) {
    ASSERT_GE(d->sample(gen), 0.5);
  }
  EXPECT_DOUBLE_EQ(d->mean(), 1.0);
}

TEST(Distributions, PathologicalSupportIsPowersOfTwoSquared) {
  rng gen(11);
  const auto d = make_pathological_heavy(8);
  for (int i = 0; i < 5000; ++i) {
    const double x = d->sample(gen);
    // x must be 2^{k^2} for some 1 <= k <= 8.
    bool matched = false;
    for (int k = 1; k <= 8; ++k) {
      if (x == std::ldexp(1.0, k * k)) matched = true;
    }
    ASSERT_TRUE(matched) << x;
  }
}

TEST(Distributions, PathologicalTailProbabilities) {
  // P[X = 2^1] = 1/2, P[X = 2^4] = 1/4 (geometric halving).
  rng gen(12);
  const auto d = make_pathological_heavy(12);
  int k1 = 0, k2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = d->sample(gen);
    if (x == 2.0) ++k1;
    if (x == 16.0) ++k2;
  }
  EXPECT_NEAR(static_cast<double>(k1) / n, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(k2) / n, 0.25, 0.01);
}

TEST(Distributions, PathologicalReportsInfiniteMean) {
  EXPECT_LT(make_pathological_heavy()->mean(), 0.0);
}

TEST(Distributions, ParetoHeavyReportsInfiniteMean) {
  EXPECT_LT(make_pareto(0.5, 0.9)->mean(), 0.0);
  EXPECT_GT(make_pareto(0.5, 2.5)->mean(), 0.0);
}

TEST(Distributions, AnalyticMediansMatchClosedForms) {
  // P[X = 2^1] = 1/2, so inf{x : F(x) >= 1/2} = 2 regardless of truncation.
  EXPECT_DOUBLE_EQ(make_pathological_heavy()->median(), 2.0);
  // Pareto median = scale * 2^(1/alpha).
  EXPECT_DOUBLE_EQ(make_pareto(0.5, 0.9)->median(),
                   0.5 * std::pow(2.0, 1.0 / 0.9));
  EXPECT_DOUBLE_EQ(make_exponential(1.0)->median(), std::log(2.0));
  EXPECT_DOUBLE_EQ(make_geometric(0.5)->median(), 1.0);
  EXPECT_DOUBLE_EQ(make_two_point(1.0, 2.0)->median(), 1.0);
  EXPECT_DOUBLE_EQ(make_lognormal(0.0, 0.5)->median(), 1.0);
  EXPECT_DOUBLE_EQ(make_truncated_normal(1.0, 0.2, 0.0, 2.0)->median(), 1.0);
  // Symmetry detection must tolerate floating-point midpoint rounding.
  EXPECT_DOUBLE_EQ(make_truncated_normal(0.3, 0.1, 0.1, 0.5)->median(), 0.3);
  // Asymmetric truncation has no closed form we rely on: median is unknown.
  EXPECT_LT(make_truncated_normal(1.0, 0.2, 0.5, 2.0)->median(), 0.0);
}

TEST(Distributions, InfiniteMeanCatalogEntriesProvideMedians) {
  // Every infinite-mean catalog entry must be coverable by the median
  // check; this pins the contract for future heavy-tailed additions.
  for (const auto& entry : full_catalog()) {
    if (entry.dist->mean() < 0.0) {
      EXPECT_GE(entry.dist->median(), 0.0) << entry.key;
    }
  }
}

TEST(Distributions, ConstantIsDegenerate) {
  const auto d = make_constant(1.0);
  EXPECT_TRUE(d->degenerate());
  rng gen(1);
  EXPECT_DOUBLE_EQ(d->sample(gen), 1.0);
}

TEST(Distributions, InvalidParametersThrow) {
  EXPECT_THROW(make_uniform(2.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_exponential(0.0), std::invalid_argument);
  EXPECT_THROW(make_exponential(-1.0), std::invalid_argument);
  EXPECT_THROW(make_truncated_normal(1.0, 0.0, 0.0, 2.0),
               std::invalid_argument);
  EXPECT_THROW(make_two_point(1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_two_point(-1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_geometric(0.0), std::invalid_argument);
  EXPECT_THROW(make_geometric(1.5), std::invalid_argument);
  EXPECT_THROW(make_pathological_heavy(1), std::invalid_argument);
  EXPECT_THROW(make_pareto(0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(make_lognormal(0.0, 0.0), std::invalid_argument);
}

TEST(Distributions, UnknownCatalogKeyReturnsNullopt) {
  EXPECT_FALSE(find_distribution("no-such-distribution").has_value());
}

TEST(Distributions, CatalogKeysListsEverything) {
  const std::string keys = catalog_keys();
  for (const auto& entry : full_catalog()) {
    EXPECT_NE(keys.find(entry.key), std::string::npos) << entry.key;
  }
}

}  // namespace
}  // namespace leancon
