#include "memory/atomic_memory.h"
#include "memory/sim_memory.h"

#include <gtest/gtest.h>

namespace leancon {
namespace {

TEST(Location, PackingIsInjectiveAcrossSpaces) {
  const location a{space::race0, 5};
  const location b{space::race1, 5};
  const location c{space::race0, 6};
  EXPECT_NE(a.packed(), b.packed());
  EXPECT_NE(a.packed(), c.packed());
  EXPECT_EQ(a.packed(), (location{space::race0, 5}).packed());
}

TEST(Location, SpaceNamesAreStable) {
  EXPECT_EQ(space_name(space::race0), "a0");
  EXPECT_EQ(space_name(space::race1), "a1");
  EXPECT_EQ(space_name(space::ac_proposal), "ac_prop");
}

TEST(ProposalEncoding, RoundTrips) {
  EXPECT_TRUE(proposal_empty(0));
  EXPECT_FALSE(proposal_empty(encode_proposal(0)));
  EXPECT_EQ(decode_proposal(encode_proposal(0)), 0);
  EXPECT_EQ(decode_proposal(encode_proposal(1)), 1);
}

TEST(SimMemory, FreshCellsReadZero) {
  sim_memory mem;
  EXPECT_EQ(mem.execute(0, operation::read({space::race0, 7})), 0u);
  EXPECT_EQ(mem.execute(0, operation::read({space::scratch, 123})), 0u);
}

TEST(SimMemory, VirtualPrefixIsOne) {
  sim_memory mem;
  EXPECT_EQ(mem.execute(0, operation::read({space::race0, 0})), 1u);
  EXPECT_EQ(mem.execute(0, operation::read({space::race1, 0})), 1u);
}

TEST(SimMemory, WriteThenRead) {
  sim_memory mem;
  mem.execute(1, operation::write({space::race1, 3}, 1));
  EXPECT_EQ(mem.execute(2, operation::read({space::race1, 3})), 1u);
}

TEST(SimMemory, LastWriteWins) {
  sim_memory mem;
  mem.execute(0, operation::write({space::scratch, 0}, 5));
  mem.execute(1, operation::write({space::scratch, 0}, 9));
  EXPECT_EQ(mem.execute(2, operation::read({space::scratch, 0})), 9u);
}

TEST(SimMemory, CountsOpsByKindAndSpace) {
  sim_memory mem;
  mem.execute(0, operation::read({space::race0, 1}));
  mem.execute(0, operation::read({space::race1, 1}));
  mem.execute(0, operation::write({space::race0, 1}, 1));
  EXPECT_EQ(mem.op_count(), 3u);
  EXPECT_EQ(mem.read_count(), 2u);
  EXPECT_EQ(mem.write_count(), 1u);
  EXPECT_EQ(mem.op_count(space::race0), 2u);
  EXPECT_EQ(mem.op_count(space::race1), 1u);
}

TEST(SimMemory, TraceHookSeesOperations) {
  sim_memory mem;
  int hook_calls = 0;
  std::uint64_t last_value = 0;
  mem.set_trace_hook([&](int pid, const operation& op, std::uint64_t value) {
    ++hook_calls;
    last_value = value;
    EXPECT_EQ(pid, 4);
    EXPECT_EQ(op.where.where, space::race0);
  });
  mem.execute(4, operation::write({space::race0, 2}, 1));
  mem.execute(4, operation::read({space::race0, 2}));
  EXPECT_EQ(hook_calls, 2);
  EXPECT_EQ(last_value, 1u);
}

TEST(SimMemory, PeekPokeDoNotCount) {
  sim_memory mem;
  mem.poke({space::scratch, 1}, 42);
  EXPECT_EQ(mem.peek({space::scratch, 1}), 42u);
  EXPECT_EQ(mem.op_count(), 0u);
}

TEST(SimMemory, ResetRestoresInitialState) {
  sim_memory mem;
  mem.execute(0, operation::write({space::race0, 1}, 1));
  mem.reset();
  EXPECT_EQ(mem.op_count(), 0u);
  EXPECT_EQ(mem.peek({space::race0, 1}), 0u);
  EXPECT_EQ(mem.peek({space::race0, 0}), 1u);  // prefix re-established
}

TEST(AtomicMemory, VirtualPrefixIsOne) {
  atomic_memory mem;
  EXPECT_EQ(mem.execute(operation::read({space::race0, 0})), 1u);
  EXPECT_EQ(mem.execute(operation::read({space::race1, 0})), 1u);
}

TEST(AtomicMemory, WriteThenRead) {
  atomic_memory mem;
  mem.execute(operation::write({space::ac_proposal, 9}, encode_proposal(1)));
  EXPECT_EQ(mem.execute(operation::read({space::ac_proposal, 9})),
            encode_proposal(1));
}

TEST(AtomicMemory, FreshCellsReadZero) {
  atomic_memory mem;
  EXPECT_EQ(mem.execute(operation::read({space::race0, 100})), 0u);
}

TEST(AtomicMemory, OutOfRangeThrows) {
  atomic_memory_config config;
  config.race_rounds = 8;
  atomic_memory mem(config);
  EXPECT_THROW(mem.execute(operation::read({space::race0, 8})),
               std::out_of_range);
  EXPECT_NO_THROW(mem.execute(operation::read({space::race0, 7})));
}

TEST(AtomicMemory, CapacityPerSpace) {
  atomic_memory_config config;
  config.race_rounds = 10;
  config.backup_rounds = 20;
  config.scratch_cells = 5;
  EXPECT_EQ(config.capacity(space::race0), 10u);
  EXPECT_EQ(config.capacity(space::ac_door1), 20u);
  EXPECT_EQ(config.capacity(space::scratch), 5u);
}

}  // namespace
}  // namespace leancon
