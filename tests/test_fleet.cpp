// Supervisor tests: the fleet's fork/watch/heal/merge loop against the real
// campaign_worker binary plus a deliberately misbehaving fake worker
// (tests/fake_worker.cpp), substituted per (shard, attempt) through
// fleet_config::plan_hook. The load-bearing property throughout: the merged
// stream stays byte-identical to a single-process campaign no matter which
// workers died on the way.
#include "fleet/supervisor.h"

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "exp/campaign_shard.h"
#include "fleet/hb_tail.h"
#include "fleet/worker_proc.h"
#include "harness.h"

namespace leancon {
namespace {

// Both binaries are injected by tests/CMakeLists.txt as $<TARGET_FILE:...>.
#ifndef LEANCON_WORKER_BIN
#define LEANCON_WORKER_BIN "campaign_worker"
#endif
#ifndef LEANCON_FAKE_WORKER_BIN
#define LEANCON_FAKE_WORKER_BIN "fake_worker"
#endif

campaign_grid test_grid() {
  campaign_grid grid;
  grid.scenarios = {"mutex-noise", "hybrid-q8"};
  grid.ns = {2, 4};
  grid.trials = 4;
  grid.seed = 1;
  return grid;
}

std::vector<std::string> test_grid_flags() {
  return {"--scenarios=mutex-noise,hybrid-q8", "--ns=2,4", "--trials=4",
          "--op-budget=0", "--seed=1"};
}

/// A fresh run directory under the gtest temp root.
std::string fresh_dir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "fleet_" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

/// The file a single-process campaign writes for the same grid — the byte
/// reference every fleet assertion compares against.
std::string single_process_bytes(const std::string& dir) {
  const std::string path = dir + "/single.jsonl";
  {
    campaign_io io(path);
    campaign_options copts;
    copts.threads = 2;
    copts.io = &io;
    run_campaign(test_grid(), copts);
  }
  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

std::string merged_bytes(const fleet::fleet_report& rep) {
  std::string bytes;
  for (const auto& line : rep.merged.lines) {
    bytes += line;
    bytes += '\n';
  }
  return bytes;
}

fleet::fleet_config base_config(const std::string& dir,
                                std::uint64_t shards) {
  fleet::fleet_config cfg;
  cfg.grid = test_grid();
  cfg.grid_flags = test_grid_flags();
  cfg.shards = shards;
  cfg.run_dir = dir;
  cfg.worker_argv = {LEANCON_WORKER_BIN};
  cfg.worker_threads = 1;
  cfg.worker_heartbeat_interval_s = 0.02;
  cfg.backoff_s = 0.01;
  cfg.heartbeat_interval_s = 0.05;
  cfg.verbose = false;
  return cfg;
}

/// A shard (for k = `shards`) owning at least `min_cells` cells, so an
/// injected death at cell 1 leaves work to heal.
std::uint64_t shard_owning(std::uint64_t shards, std::size_t min_cells) {
  const auto cells = test_grid().expand();
  for (std::uint64_t i = 0; i < shards; ++i) {
    if (filter_shard(cells, {i, shards}).size() >= min_cells) return i;
  }
  ADD_FAILURE() << "no shard owns " << min_cells << " cells";
  return 0;
}

double counter_of(const bench::results& res, const std::string& name) {
  for (const auto& [key, value] : res.counters) {
    if (key == name) return value;
  }
  return -1.0;
}

/// A syntactically complete heartbeat line for tailer tests.
std::string hb_line(double uptime_s, std::uint64_t trials_done,
                    const std::string& rate = "1.5",
                    const std::string& eta = "10") {
  std::ostringstream os;
  os << "{\"uptime_s\": " << uptime_s << ", \"cells_done\": 0, "
     << "\"cells_total\": 4, \"trials_done\": " << trials_done
     << ", \"trials_total\": 16, \"trials_per_sec\": " << rate
     << ", \"eta_s\": " << eta
     << ", \"current_cell\": \"c\", \"rss_kb\": 100, \"shard\": \"0/1\", "
     << "\"pid\": 42, \"argv_hash\": \"0x0\"}";
  return os.str();
}

TEST(FleetHbTail, NullRateAndEtaParseAsNaN) {
  // The heartbeat emitter writes null where the rate/ETA are undefined
  // (obs/heartbeat.h); the tailer must accept those lines — a healthy but
  // not-yet-progressing worker would otherwise count as unparseable and,
  // with every line skipped, read as LOST to the staleness clock.
  fleet::hb_sample s;
  ASSERT_TRUE(parse_hb_line(hb_line(0.5, 0, "null", "null"), s));
  EXPECT_TRUE(std::isnan(s.trials_per_sec));
  EXPECT_TRUE(std::isnan(s.eta_s));
  ASSERT_TRUE(parse_hb_line(hb_line(0.5, 8), s));
  EXPECT_EQ(s.trials_per_sec, 1.5);
  // A bare non-finite token is NOT valid JSON and must stay rejected.
  EXPECT_FALSE(parse_hb_line(hb_line(0.5, 8, "inf", "nan"), s));
}

TEST(FleetHbTail, ShrunkFileResetsAndReTailsFromTheStart) {
  const std::string dir = fresh_dir("hbtail");
  const std::string path = dir + "/hb.jsonl";
  fleet::hb_tail tail(path);
  {
    std::ofstream out(path, std::ios::binary);
    out << hb_line(1.0, 4) << "\n" << hb_line(2.0, 8) << "\n";
  }
  EXPECT_EQ(tail.poll(), 2u);
  EXPECT_EQ(tail.last().trials_done, 8u);
  EXPECT_EQ(tail.resets(), 0u);

  // A healed worker truncates and recreates the file with a SHORTER
  // history. Before the shrink check, poll() would seek past EOF and read
  // nothing forever — the restarted worker would look silent until the
  // staleness clock killed it again.
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << hb_line(0.5, 2) << "\n";
  }
  EXPECT_EQ(tail.poll(), 1u);
  EXPECT_EQ(tail.resets(), 1u);
  EXPECT_EQ(tail.last().trials_done, 2u);
  EXPECT_EQ(tail.skipped(), 0u);

  // Appends after the reset tail normally.
  {
    std::ofstream out(path, std::ios::app | std::ios::binary);
    out << hb_line(1.5, 6) << "\n";
  }
  EXPECT_EQ(tail.poll(), 1u);
  EXPECT_EQ(tail.resets(), 1u);
  EXPECT_EQ(tail.last().trials_done, 6u);
}

TEST(FleetHbTail, TruncationMidPartialLineDropsTheStaleBuffer) {
  const std::string dir = fresh_dir("hbtail_partial");
  const std::string path = dir + "/hb.jsonl";
  fleet::hb_tail tail(path);
  // The worker dies mid-write: a complete line plus a torn prefix.
  const std::string full = hb_line(1.0, 4);
  {
    std::ofstream out(path, std::ios::binary);
    out << full << "\n" << full.substr(0, full.size() / 2);
  }
  EXPECT_EQ(tail.poll(), 1u);

  // The healed worker starts a fresh file. The buffered torn prefix
  // belonged to the dead incarnation — gluing the new file's first line
  // onto it would yield garbage (one skipped line and one lost sample).
  {
    std::ofstream out(path, std::ios::trunc | std::ios::binary);
    out << hb_line(0.25, 1) << "\n";
  }
  EXPECT_EQ(tail.poll(), 1u);
  EXPECT_EQ(tail.resets(), 1u);
  EXPECT_EQ(tail.skipped(), 0u);
  EXPECT_EQ(tail.last().trials_done, 1u);
}

TEST(FleetWorkerProc, BadOnlyCellsListExitsWithUsageCode) {
  // Duplicate and out-of-range --only-cells ordinals are caller bugs the
  // worker must refuse (exit 2) rather than silently run: a duplicate
  // would double-run a cell, an out-of-range ordinal would silently drop
  // one from the rebalance.
  const std::string dir = fresh_dir("only_cells_usage");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  int which = 0;
  for (const char* bad : {"--only-cells=1,1", "--only-cells=999"}) {
    fleet::worker_proc proc;
    proc.spawn({LEANCON_WORKER_BIN, "--scenarios=mutex-noise", "--ns=2,4",
                "--trials=2", bad,
                "--cells=" + dir + "/cells" + std::to_string(which) +
                    ".jsonl"},
               dir + "/log" + std::to_string(which) + ".txt");
    ++which;
    while (proc.running()) {
      ASSERT_LT(std::chrono::steady_clock::now(), deadline);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    ASSERT_TRUE(proc.reaped());
    EXPECT_EQ(proc.exit_code(), fleet::exit_usage) << bad;
  }
}

TEST(FleetKillRule, ParsesAndRejects) {
  const fleet::kill_rule rule = fleet::parse_kill_rule("1@cells:2");
  EXPECT_EQ(rule.shard, 1u);
  EXPECT_EQ(rule.after_cells, 2u);
  EXPECT_THROW(fleet::parse_kill_rule("nonsense"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_kill_rule("@cells:2"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_kill_rule("1@cells:x"), std::invalid_argument);
  EXPECT_THROW(fleet::parse_kill_rule("1.5@cells:2"), std::invalid_argument);
}

TEST(FleetWorkerProc, WorkerExitsWithUsageCodeOnBadFlags) {
  const std::string dir = fresh_dir("usage");
  fleet::worker_proc proc;
  proc.spawn({LEANCON_WORKER_BIN, "--scenarios=no-such-scenario",
              "--cells=" + dir + "/cells.jsonl"},
             dir + "/log.txt");
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (proc.running()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_TRUE(proc.reaped());
  ASSERT_FALSE(proc.signaled());
  EXPECT_EQ(proc.exit_code(), fleet::exit_usage);

  fleet::worker_proc no_cells;
  no_cells.spawn({LEANCON_WORKER_BIN, "--scenarios=mutex-noise"},
                 dir + "/log2.txt");
  while (no_cells.running()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(no_cells.exit_code(), fleet::exit_usage);
}

TEST(FleetSupervisor, CleanRunIsByteIdenticalToSingleProcess) {
  const std::string dir = fresh_dir("clean");
  const auto rep = fleet::run_fleet(base_config(dir, 3));
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.restarts, 0u);
  EXPECT_EQ(rep.lost_events, 0u);
  EXPECT_EQ(rep.missing_cells, 0u);
  EXPECT_EQ(rep.jobs.size(), 3u);
  EXPECT_EQ(merged_bytes(rep), single_process_bytes(dir));
}

TEST(FleetSupervisor, OnlyOrdinalsRunsJustThoseCellsByteIdentical) {
  // The restricted mode the campaign service schedules cache misses
  // through: the fleet runs ONLY the named full-grid ordinals, and each
  // record is byte-identical to the same cell's line in a full
  // single-process run (ordinals, seeds, and hashes are grid-positional,
  // so the subset changes nothing).
  const std::string dir = fresh_dir("only_ordinals");
  auto cfg = base_config(dir, 2);
  cfg.only_ordinals = {0, 3};
  const auto rep = fleet::run_fleet(cfg);
  ASSERT_TRUE(rep.ok) << rep.error;
  ASSERT_EQ(rep.merged.records.size(), 2u);
  EXPECT_EQ(rep.merged.records[0].ordinal, 0u);
  EXPECT_EQ(rep.merged.records[1].ordinal, 3u);

  std::istringstream single(single_process_bytes(dir));
  std::vector<std::string> full_lines;
  std::string line;
  while (std::getline(single, line)) full_lines.push_back(line);
  ASSERT_EQ(full_lines.size(), 4u);
  EXPECT_EQ(rep.merged.lines[0], full_lines[0]);
  EXPECT_EQ(rep.merged.lines[1], full_lines[3]);

  // An out-of-range ordinal fails the whole run up front (never a
  // silently smaller campaign).
  cfg.only_ordinals = {0, 99};
  cfg.run_dir = fresh_dir("only_ordinals_bad");
  EXPECT_THROW(fleet::run_fleet(cfg), std::invalid_argument);
}

TEST(FleetSupervisor, KilledWorkerHealsWithResumeByteIdentical) {
  const std::string dir = fresh_dir("heal");
  auto cfg = base_config(dir, 2);
  const std::uint64_t victim = shard_owning(2, 2);
  cfg.kill_rules = {{victim, 1}};
  cfg.retries = 2;
  const auto rep = fleet::run_fleet(cfg);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_GE(rep.injected_kills, 1u);
  EXPECT_GE(rep.lost_events, 1u);
  EXPECT_GE(rep.restarts, 1u);
  EXPECT_EQ(rep.rebalanced_cells, 0u);
  for (const auto& job : rep.jobs) {
    if (job.shard == victim) EXPECT_EQ(job.attempts, 2u);
    EXPECT_TRUE(job.complete);
  }
  EXPECT_EQ(merged_bytes(rep), single_process_bytes(dir));
}

TEST(FleetSupervisor, FrozenWorkerIsDetectedAndHealed) {
  const std::string dir = fresh_dir("freeze");
  auto cfg = base_config(dir, 2);
  const std::uint64_t victim = shard_owning(2, 1);
  // First attempt of the victim shard: a live pid that emits one valid
  // heartbeat line (correct pid + fingerprint) and then stops advancing —
  // only the uptime_s staleness check can catch it. It also ignores
  // SIGTERM, forcing the SIGKILL escalation.
  cfg.stale_timeout_s = 0.4;
  cfg.term_grace_s = 0.2;
  cfg.plan_hook = [victim](fleet::spawn_plan& plan) {
    if (plan.shard == victim && plan.attempt == 0 && !plan.rebalance) {
      plan.argv = {LEANCON_FAKE_WORKER_BIN, "--mode=freeze",
                   "--heartbeat=" + plan.heartbeat_path,
                   "--shard=" + std::to_string(victim) + "/2"};
    }
  };
  const auto rep = fleet::run_fleet(cfg);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_GE(rep.lost_events, 1u);
  EXPECT_GE(rep.restarts, 1u);
  EXPECT_EQ(merged_bytes(rep), single_process_bytes(dir));
}

TEST(FleetSupervisor, ExhaustedRetriesRebalanceOntoSurvivors) {
  const std::string dir = fresh_dir("rebalance");
  auto cfg = base_config(dir, 2);
  const std::uint64_t victim = shard_owning(2, 1);
  const std::uint64_t victim_cells =
      filter_shard(test_grid().expand(), {victim, 2}).size();
  // EVERY direct attempt of the victim shard crashes instantly; only the
  // post-exhaustion rebalance jobs (--only-cells, not rewritten here) run
  // the real worker.
  cfg.retries = 1;
  cfg.plan_hook = [victim](fleet::spawn_plan& plan) {
    if (plan.shard == victim && !plan.rebalance) {
      plan.argv = {LEANCON_FAKE_WORKER_BIN, "--mode=die"};
    }
  };
  const auto rep = fleet::run_fleet(cfg);
  ASSERT_TRUE(rep.ok) << rep.error;
  EXPECT_EQ(rep.rebalanced_cells, victim_cells);
  EXPECT_GE(rep.restarts, 1u);  // the retry that also crashed
  bool saw_rebalance_job = false;
  for (const auto& job : rep.jobs) {
    if (job.rebalance) {
      saw_rebalance_job = true;
      EXPECT_TRUE(job.complete);
      EXPECT_EQ(job.shard, victim);
    }
  }
  EXPECT_TRUE(saw_rebalance_job);
  EXPECT_EQ(merged_bytes(rep), single_process_bytes(dir));
}

TEST(FleetSupervisor, UsageExitAbortsInsteadOfRetrying) {
  const std::string dir = fresh_dir("usage_abort");
  auto cfg = base_config(dir, 2);
  const std::uint64_t victim = shard_owning(2, 1);
  cfg.plan_hook = [victim](fleet::spawn_plan& plan) {
    if (plan.shard == victim && !plan.rebalance) {
      plan.argv = {LEANCON_FAKE_WORKER_BIN, "--mode=usage"};
    }
  };
  const auto rep = fleet::run_fleet(cfg);
  EXPECT_FALSE(rep.ok);
  EXPECT_NE(rep.error.find("usage"), std::string::npos) << rep.error;
  EXPECT_EQ(rep.restarts, 0u);
}

TEST(FleetSupervisor, MergedBenchCarriesFleetAndCoverageCounters) {
  const std::string dir = fresh_dir("bench");
  auto cfg = base_config(dir, 2);
  cfg.kill_rules = {{shard_owning(2, 2), 1}};
  const auto rep = fleet::run_fleet(cfg);
  ASSERT_TRUE(rep.ok) << rep.error;
  ASSERT_GE(rep.restarts, 1u);

  // The launcher feeds rep.merged into campaign_bench and appends the
  // fleet.* counters; the merged union must look exactly like a healthy
  // single-file campaign to the aggregator.
  const bench::results res = bench::campaign_bench("fleet_test", rep.merged);
  EXPECT_EQ(counter_of(res, "cells"), 4.0);
  EXPECT_EQ(counter_of(res, "missing_files"), 0.0);
  EXPECT_EQ(counter_of(res, "empty_files"), 0.0);
  EXPECT_EQ(counter_of(res, "duplicate_cells"), 0.0);
  EXPECT_EQ(counter_of(res, "skipped_lines"), 0.0);
}

}  // namespace
}  // namespace leancon
