// Scenario-wide invariant fuzzing: every registered preset — shared-memory
// and native backends alike — is swept over seeds and process counts, and
// every trial_outcome is checked against the paper's safety invariants:
// no violation flag (agreement, validity, mutual exclusion, and the hybrid
// lemmas all fold into it; shared-memory presets run with the full
// invariant checker enabled via a tweak), decision-side metrics observed
// only on deciding trials (never fabricated), and all observations finite.
// Related work (Aspnes, arXiv:cs/0206012; Clementi et al.,
// arXiv:1807.05626) stresses that noisy-schedule guarantees must hold
// under EVERY adversary — the registry's adversary families are part of
// the sweep by construction.
//
// The second half fuzzes the distributed-campaign contract: a grid split
// across k campaign_shard workers (k in {1, 2, 3, 5}) must reassemble —
// via campaign_io::merge_files — byte-for-byte into the single-process
// campaign's cells file.
#include <gtest/gtest.h>

#include <cmath>
#include <fstream>
#include <sstream>

#include "exp/campaign.h"
#include "exp/campaign_io.h"
#include "exp/campaign_shard.h"
#include "scenario/scenario.h"
#include "sim/trial_executor.h"

namespace leancon {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

TEST(InvariantFuzz, EveryRegisteredScenarioIsSafeAcrossSeedsAndSizes) {
  ASSERT_GE(scenario_registry().size(), 30u)
      << "the registry shrank; update the fuzz expectations";
  for (const auto& spec : scenario_registry()) {
    for (const std::uint64_t n : {4u, 9u}) {
      scenario_params params;
      params.n = n;
      params.seed = 0xF0220 + n;
      // Native backends reject tweaks; shared-memory presets get the full
      // invariant checker turned on (measured presets default it off).
      workload w = spec.make(params, nullptr);
      if (w.config) {
        w = spec.make(params, [](sim_config& config) {
          config.check_invariants = true;
        });
      }
      trial_stats stats;
      for (std::uint64_t t = 0; t < 6; ++t) {
        const trial_outcome out = w.run_trial(trial_seed(params.seed, t));
        ASSERT_FALSE(out.violation)
            << spec.key << " n=" << n << " trial " << t
            << ": safety violated";
        // Decision-side observations exist only when something decided: a
        // fabricated round/time for an undecided trial is the bug class
        // the unified workload API eliminated.
        for (const char* name :
             {"round", "first_time", "last_round", "last_time"}) {
          const std::uint64_t count = out.metrics.sample(name).count();
          EXPECT_LE(count, out.decided ? 1u : 0u)
              << spec.key << " n=" << n << " trial " << t << " " << name;
        }
        // Every observation and counter must be finite — absent metrics
        // are omitted, never recorded as NaN/inf.
        for (const auto& e : out.metrics.entries()) {
          if (e.is_counter) {
            EXPECT_TRUE(std::isfinite(e.total))
                << spec.key << " n=" << n << " " << e.name;
          } else {
            for (const double x : e.stats.samples()) {
              EXPECT_TRUE(std::isfinite(x))
                  << spec.key << " n=" << n << " " << e.name;
            }
          }
        }
        stats.record(out);
      }
      EXPECT_EQ(stats.trials, 6u) << spec.key;
      EXPECT_EQ(stats.decided_trials + stats.undecided_trials, 6u)
          << spec.key;
      EXPECT_EQ(stats.violation_trials, 0u) << spec.key;
    }
  }
}

TEST(InvariantFuzz, ShardedCampaignMergesByteIdenticalToSingleProcess) {
  // A mixed shared-memory/native grid, run once in-process and once split
  // into k shard files for every k in {1, 2, 3, 5}: the merged union must
  // reproduce the single-process cells file byte-for-byte.
  campaign_grid grid;
  grid.scenarios = {"figure1-exp1", "crash-heavy", "mp-abd", "mutex-noise",
                    "hybrid-q8"};
  grid.ns = {2, 5};
  grid.trials = 6;
  grid.seed = 17;
  const auto cells = grid.expand();

  const std::string single_path = testing::TempDir() + "fuzz_single.jsonl";
  {
    campaign_io io(single_path, false);
    campaign_options opts;
    opts.io = &io;
    run_campaign(cells, opts);
  }
  const std::string single = read_file(single_path);
  ASSERT_FALSE(single.empty());

  for (const std::uint64_t k : {1u, 2u, 3u, 5u}) {
    std::vector<std::string> shard_paths;
    std::size_t assigned = 0;
    for (std::uint64_t i = 0; i < k; ++i) {
      const auto mine = filter_shard(cells, {i, k});
      assigned += mine.size();
      const std::string path = testing::TempDir() + "fuzz_shard_" +
                               std::to_string(k) + "_" + std::to_string(i) +
                               ".jsonl";
      campaign_io io(path, false);
      campaign_options opts;
      opts.io = &io;
      run_campaign(mine, opts);
      shard_paths.push_back(path);
    }
    ASSERT_EQ(assigned, cells.size()) << "k=" << k;

    const auto merged = campaign_io::merge_files(shard_paths);
    EXPECT_EQ(merged.duplicate_cells, 0u) << "k=" << k;
    EXPECT_EQ(merged.skipped_lines, 0u) << "k=" << k;
    std::string reassembled;
    for (const auto& line : merged.lines) {
      reassembled += line;
      reassembled += '\n';
    }
    EXPECT_EQ(reassembled, single) << "k=" << k;
  }
}

}  // namespace
}  // namespace leancon
