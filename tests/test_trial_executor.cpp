#include "sim/trial_executor.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "noise/catalog.h"
#include "sched/crash_adversary.h"

namespace leancon {
namespace {

sim_config base_config(std::size_t n, std::uint64_t seed) {
  sim_config config;
  config.inputs = split_inputs(n);
  config.sched = figure1_params(make_exponential(1.0));
  config.seed = seed;
  return config;
}

trial_stats run_with_threads(const sim_config& config, std::uint64_t trials,
                             unsigned threads) {
  executor_options opts;
  opts.threads = threads;
  return trial_executor(opts).run(config, trials);
}

// Bit-identical: exact floating-point equality, not EXPECT_DOUBLE_EQ's
// 4-ULP tolerance. Empty summaries have NaN min/max, which never compare
// equal, so those are gated on count().
void expect_bit_identical(const summary& a, const summary& b,
                          const std::string& what) {
  EXPECT_EQ(a.count(), b.count()) << what;
  if (a.count() > 0) {
    EXPECT_EQ(a.mean(), b.mean()) << what;
    EXPECT_EQ(a.variance(), b.variance()) << what;
    EXPECT_EQ(a.min(), b.min()) << what;
    EXPECT_EQ(a.max(), b.max()) << what;
  }
  EXPECT_EQ(a.samples(), b.samples()) << what;
}

void expect_bit_identical(const trial_stats& a, const trial_stats& b) {
  EXPECT_EQ(a.trials, b.trials);
  EXPECT_EQ(a.decided_trials, b.decided_trials);
  EXPECT_EQ(a.undecided_trials, b.undecided_trials);
  EXPECT_EQ(a.violation_trials, b.violation_trials);
  EXPECT_EQ(a.backup_trials, b.backup_trials);
  // The whole metric set — entry names, kinds, ORDER, and every summary —
  // must match bit-for-bit.
  ASSERT_EQ(a.metrics.entries().size(), b.metrics.entries().size());
  for (std::size_t i = 0; i < a.metrics.entries().size(); ++i) {
    const auto& ea = a.metrics.entries()[i];
    const auto& eb = b.metrics.entries()[i];
    EXPECT_EQ(ea.name, eb.name) << "entry " << i;
    EXPECT_EQ(ea.is_counter, eb.is_counter) << ea.name;
    EXPECT_EQ(ea.rollup, eb.rollup) << ea.name;
    if (ea.is_counter) {
      EXPECT_EQ(ea.total, eb.total) << ea.name;
    } else {
      expect_bit_identical(ea.stats, eb.stats, ea.name);
    }
  }
}

TEST(TrialExecutor, ThreadCountsProduceBitIdenticalStats) {
  const auto config = base_config(16, 7);
  const auto one = run_with_threads(config, 200, 1);
  const auto two = run_with_threads(config, 200, 2);
  const auto eight = run_with_threads(config, 200, 8);
  expect_bit_identical(one, two);
  expect_bit_identical(one, eight);
}

TEST(TrialExecutor, CombinedProtocolWithCrashesIdenticalAcrossThreads) {
  auto config = base_config(8, 23);
  config.protocol = protocol_kind::combined;
  config.r_max = 2;  // frequent backup entry
  config.crashes = make_kill_poised(2);
  config.stop = stop_mode::first_decision;
  const auto one = run_with_threads(config, 120, 1);
  const auto four = run_with_threads(config, 120, 4);
  const auto eight = run_with_threads(config, 120, 8);
  expect_bit_identical(one, four);
  expect_bit_identical(one, eight);
  EXPECT_EQ(one.trials, 120u);
}

TEST(TrialExecutor, MatchesRunTrials) {
  const auto config = base_config(8, 11);
  expect_bit_identical(run_trials(config, 50), run_with_threads(config, 50, 4));
}

TEST(TrialExecutor, SeedsAreTheSplitmixStream) {
  // Documented contract: trial t's seed is the t-th output of the splitmix64
  // stream seeded with the base seed.
  const std::uint64_t base = 20000625;
  std::uint64_t state = base;
  for (std::uint64_t t = 0; t < 16; ++t) {
    EXPECT_EQ(trial_seed(base, t), splitmix64_next(state)) << "trial " << t;
  }
}

TEST(TrialExecutor, NearbyBaseSeedsDoNotShareTrialSeeds) {
  // The old affine map mix + t * gamma + t made nearby base seeds reuse each
  // other's trial-seed sequences at shifted offsets.
  std::set<std::uint64_t> seen;
  constexpr std::uint64_t kBatches = 8;
  constexpr std::uint64_t kTrials = 256;
  for (std::uint64_t base = 1; base <= kBatches; ++base) {
    for (std::uint64_t t = 0; t < kTrials; ++t) {
      seen.insert(trial_seed(base, t));
    }
  }
  EXPECT_EQ(seen.size(), kBatches * kTrials);
}

TEST(TrialExecutor, ZeroTrialsIsEmpty) {
  const auto stats = run_with_threads(base_config(4, 1), 0, 4);
  EXPECT_EQ(stats.trials, 0u);
  EXPECT_EQ(stats.round().count(), 0u);
  EXPECT_TRUE(std::isnan(stats.round().min()));
  EXPECT_TRUE(std::isnan(stats.total_ops().max()));
}

TEST(TrialExecutor, WorkloadFormMatchesSimConfigForm) {
  // The generic workload overload and the sim_config overload are the same
  // computation: same chunk grid, same per-trial seeds, same outcomes.
  const auto config = base_config(8, 17);
  const workload w = make_sim_workload(config);
  executor_options opts;
  opts.threads = 4;
  const trial_executor exec(opts);
  expect_bit_identical(exec.run(config, 40), exec.run(w, config.seed, 40));
}

TEST(TrialExecutor, HardwareConcurrencyResolves) {
  executor_options opts;
  opts.threads = 0;
  const trial_executor exec(opts);
  EXPECT_GE(exec.threads(), 1u);
  const auto stats = exec.run(base_config(8, 3), 40);
  EXPECT_EQ(stats.trials, 40u);
  expect_bit_identical(stats, run_with_threads(base_config(8, 3), 40, 1));
}

TEST(TrialExecutor, BaseAdversaryIsNotConsumedAcrossRuns) {
  // The configured adversary is cloned per trial, so its budget state never
  // leaks between trials or between whole runs sharing one sim_config.
  auto config = base_config(6, 31);
  config.crashes = make_kill_poised(1);
  config.stop = stop_mode::first_decision;
  const auto first = run_with_threads(config, 30, 2);
  const auto second = run_with_threads(config, 30, 2);
  expect_bit_identical(first, second);
}

TEST(TrialExecutor, EventHookConfigsStillAggregateEverything) {
  // Hooked configs run single-threaded (the hook observes operations in
  // order) but must produce the same aggregate as an unhooked parallel run.
  auto hooked = base_config(8, 13);
  std::uint64_t observed = 0;
  hooked.event_hook = [&observed](const trace_event&) { ++observed; };
  const auto with_hook = run_with_threads(hooked, 25, 8);
  EXPECT_GT(observed, 0u);

  const auto plain = run_with_threads(base_config(8, 13), 25, 8);
  expect_bit_identical(with_hook, plain);
  double op_sum = 0.0;
  for (const double ops : with_hook.total_ops().samples()) op_sum += ops;
  EXPECT_EQ(static_cast<double>(observed), op_sum);
}

TEST(TrialExecutor, WorkloadFormRunsHookedConfigsSingleThreaded) {
  // The workload overload honors the event_hook rule too: the per-trial
  // config copies share the hook's captured state, so a parallel run
  // would race on it.
  auto hooked = base_config(8, 13);
  std::uint64_t observed = 0;
  hooked.event_hook = [&observed](const trace_event&) { ++observed; };
  executor_options opts;
  opts.threads = 8;
  const auto stats =
      trial_executor(opts).run(make_sim_workload(hooked), hooked.seed, 25);
  EXPECT_GT(observed, 0u);
  double op_sum = 0.0;
  for (const double ops : stats.total_ops().samples()) op_sum += ops;
  EXPECT_EQ(static_cast<double>(observed), op_sum);
  expect_bit_identical(stats, run_with_threads(base_config(8, 13), 25, 8));
}

}  // namespace
}  // namespace leancon
