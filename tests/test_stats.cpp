#include "stats/histogram.h"
#include "stats/regression.h"
#include "stats/summary.h"
#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>

namespace leancon {
namespace {

TEST(Summary, ExactMomentsOnKnownData) {
  summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // unbiased
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(Summary, EmptyIsSafe) {
  summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.stderror(), 0.0);
}

TEST(Summary, EmptyMinMaxIsNaN) {
  // A fabricated 0.0 prints as a plausible value in bench tables; NaN
  // renders as absent in both the table and the JSON emitters.
  summary s;
  EXPECT_TRUE(std::isnan(s.min()));
  EXPECT_TRUE(std::isnan(s.max()));
  s.add(-3.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), -3.0);
}

TEST(Summary, SingleValue) {
  summary s;
  s.add(3.5);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(Summary, QuantilesExact) {
  summary s;
  for (int i = 1; i <= 101; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 51.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 101.0);
  EXPECT_DOUBLE_EQ(s.median(), 51.0);
}

TEST(Summary, QuantileInterpolates) {
  summary s;
  s.add(0.0);
  s.add(10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
}

TEST(Summary, QuantileWithoutSamplesThrows) {
  summary s(/*keep_samples=*/false);
  s.add(1.0);
  EXPECT_THROW(s.quantile(0.5), std::logic_error);
}

TEST(Summary, TailFraction) {
  summary s;
  for (int i = 1; i <= 10; ++i) s.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(s.tail_fraction_above(7.0), 0.3);
  EXPECT_DOUBLE_EQ(s.tail_fraction_above(10.0), 0.0);
  EXPECT_DOUBLE_EQ(s.tail_fraction_above(0.0), 1.0);
}

TEST(Summary, Ci95ShrinksWithSamples) {
  summary small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2 == 0 ? 1.0 : 2.0);
  for (int i = 0; i < 1000; ++i) large.add(i % 2 == 0 ? 1.0 : 2.0);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

// --- summary::merge (Chan's parallel Welford combine) ----------------------

TEST(SummaryMerge, MatchesSinglePassAccumulation) {
  // Property test: for random data and random split points, merging
  // partials must agree with one-pass accumulation on every statistic.
  rng gen(99);
  for (int round = 0; round < 20; ++round) {
    const std::size_t total = 1 + gen.below(400);
    std::vector<double> data;
    for (std::size_t i = 0; i < total; ++i) {
      data.push_back(gen.normal(5.0, 3.0));
    }

    summary single;
    for (double x : data) single.add(x);

    const std::size_t parts = 1 + gen.below(8);
    summary merged;
    std::size_t next = 0;
    for (std::size_t p = 0; p < parts; ++p) {
      summary part;
      // Last part takes the remainder; earlier parts take random (possibly
      // empty) prefixes.
      const std::size_t end =
          p + 1 == parts ? total : next + gen.below(total - next + 1);
      for (; next < end; ++next) part.add(data[next]);
      merged.merge(part);
    }

    ASSERT_EQ(merged.count(), single.count());
    EXPECT_NEAR(merged.mean(), single.mean(),
                1e-12 * (1.0 + std::abs(single.mean())));
    EXPECT_NEAR(merged.variance(), single.variance(),
                1e-9 * (1.0 + single.variance()));
    EXPECT_DOUBLE_EQ(merged.min(), single.min());
    EXPECT_DOUBLE_EQ(merged.max(), single.max());
    // Samples concatenate in order, so quantiles are exactly the one-pass
    // quantiles.
    EXPECT_EQ(merged.samples(), single.samples());
    EXPECT_DOUBLE_EQ(merged.quantile(0.25), single.quantile(0.25));
    EXPECT_DOUBLE_EQ(merged.median(), single.median());
    EXPECT_DOUBLE_EQ(merged.quantile(0.95), single.quantile(0.95));
  }
}

TEST(SummaryMerge, EmptySidesAreIdentities) {
  summary full;
  for (double x : {1.0, 2.0, 7.0}) full.add(x);

  summary left;  // empty.merge(full) copies
  left.merge(full);
  EXPECT_EQ(left.count(), 3u);
  EXPECT_DOUBLE_EQ(left.mean(), full.mean());
  EXPECT_DOUBLE_EQ(left.variance(), full.variance());
  EXPECT_DOUBLE_EQ(left.min(), 1.0);
  EXPECT_DOUBLE_EQ(left.max(), 7.0);
  EXPECT_EQ(left.samples(), full.samples());

  summary right = full;  // full.merge(empty) is a no-op
  right.merge(summary());
  EXPECT_EQ(right.count(), 3u);
  EXPECT_DOUBLE_EQ(right.mean(), full.mean());
  EXPECT_DOUBLE_EQ(right.variance(), full.variance());
  EXPECT_EQ(right.samples(), full.samples());

  summary both;  // empty.merge(empty) stays empty
  both.merge(summary());
  EXPECT_EQ(both.count(), 0u);
  EXPECT_TRUE(std::isnan(both.min()));
}

TEST(SummaryMerge, WithoutRetainedSamples) {
  summary a(/*keep_samples=*/false), b(/*keep_samples=*/false);
  for (double x : {2.0, 4.0, 4.0, 4.0}) a.add(x);
  for (double x : {5.0, 5.0, 7.0, 9.0}) b.add(x);
  a.merge(b);
  EXPECT_EQ(a.count(), 8u);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), 2.0);
  EXPECT_DOUBLE_EQ(a.max(), 9.0);
}

TEST(SummaryMerge, RetentionMismatchThrows) {
  summary keeper;
  summary dropper(/*keep_samples=*/false);
  dropper.add(1.0);
  // Folding sample-less data into a sample-keeping summary would silently
  // break its quantile contract.
  EXPECT_THROW(keeper.merge(dropper), std::logic_error);
  // The other direction is fine: the target never promised quantiles.
  summary dropper2(/*keep_samples=*/false);
  summary keeper2;
  keeper2.add(2.0);
  dropper2.merge(keeper2);
  EXPECT_EQ(dropper2.count(), 1u);
  EXPECT_DOUBLE_EQ(dropper2.mean(), 2.0);
}

TEST(Histogram, BinningAndEdges) {
  histogram h(0.0, 10.0, 10);
  h.add(0.5);   // bin 0
  h.add(9.99);  // bin 9
  h.add(-5.0);  // clamps to bin 0
  h.add(50.0);  // clamps to bin 9
  h.add(5.0);   // bin 5
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.counts()[0], 2u);
  EXPECT_EQ(h.counts()[5], 1u);
  EXPECT_EQ(h.counts()[9], 2u);
  EXPECT_DOUBLE_EQ(h.bin_low(5), 5.0);
  EXPECT_DOUBLE_EQ(h.bin_high(5), 6.0);
}

TEST(Histogram, InvalidConstructionThrows) {
  EXPECT_THROW(histogram(1.0, 1.0, 10), std::invalid_argument);
  EXPECT_THROW(histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, RenderMentionsCounts) {
  histogram h(0.0, 2.0, 2);
  h.add(0.5);
  h.add(1.5);
  h.add(1.6);
  const std::string s = h.to_string();
  EXPECT_NE(s.find("#"), std::string::npos);
  EXPECT_NE(s.find("2"), std::string::npos);
}

TEST(Log2Histogram, HeavyTailBuckets) {
  log2_histogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(1024.0);
  h.add(0.0);  // harmless; lands in the bottom bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(Regression, ExactLine) {
  std::vector<double> x{1, 2, 3, 4, 5};
  std::vector<double> y{3, 5, 7, 9, 11};  // y = 2x + 1
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-12);
  EXPECT_EQ(fit.points, 5u);
}

TEST(Regression, Log2Fit) {
  // y = 3 * log2(x) + 0.5
  std::vector<double> x{2, 4, 8, 16, 1024};
  std::vector<double> y;
  for (double v : x) y.push_back(3.0 * std::log2(v) + 0.5);
  const auto fit = fit_against_log2(x, y);
  EXPECT_NEAR(fit.slope, 3.0, 1e-9);
  EXPECT_NEAR(fit.intercept, 0.5, 1e-9);
}

TEST(Regression, DegenerateInputs) {
  EXPECT_THROW(fit_linear({1.0}, {1.0, 2.0}), std::invalid_argument);
  const auto too_few = fit_linear({1.0}, {1.0});
  EXPECT_EQ(too_few.slope, 0.0);
  const auto same_x = fit_linear({2.0, 2.0}, {1.0, 3.0});
  EXPECT_EQ(same_x.slope, 0.0);
}

TEST(Regression, NoisyDataStillRecoversTrend) {
  rng gen(5);
  std::vector<double> x, y;
  for (int i = 1; i <= 200; ++i) {
    x.push_back(i);
    y.push_back(0.7 * i + 2.0 + gen.normal(0.0, 0.5));
  }
  const auto fit = fit_linear(x, y);
  EXPECT_NEAR(fit.slope, 0.7, 0.02);
  EXPECT_GT(fit.r_squared, 0.98);
}

}  // namespace
}  // namespace leancon
