// Exhaustive interleaving model checkers for small process counts.
//
// These explore EVERY reachable interleaving of the protocol state machines
// (with memoization on the joint machine+memory state) and verify the safety
// lemmas in all of them — a mechanical complement to the paper's pencil
// proofs of Lemmas 2-4 and to the adopt-commit correctness argument.
//
// lean-consensus does not terminate under all schedules (that is the FLP
// point), so the lean checker bounds exploration with a round cap: machines
// whose round exceeds the cap are suspended. Safety must hold at every
// reachable state regardless.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "backup/adopt_commit.h"
#include "backup/conciliator.h"
#include "core/lean_machine.h"

namespace leancon::testing {

struct mc_result {
  std::uint64_t states_visited = 0;
  std::uint64_t decisions_seen = 0;
  std::vector<std::string> violations;
  bool ok() const { return violations.empty(); }
};

/// Exhaustive check of lean-consensus safety for `inputs.size()` processes
/// with rounds capped at `round_cap` (arrays of size round_cap + 1).
/// Verifies, at every reachable state:
///   * Lemma 2 (array contiguity given the virtual 1-prefix),
///   * Lemma 4a (no rival write at any decision round),
///   * agreement and validity of all decisions made so far,
///   * Lemma 4b (decision rounds within a window of one).
class lean_model_checker {
 public:
  lean_model_checker(std::vector<int> inputs, std::uint64_t round_cap)
      : inputs_(std::move(inputs)), cap_(round_cap) {}

  mc_result run() {
    mc_result result;
    std::vector<lean_machine> machines;
    machines.reserve(inputs_.size());
    for (int b : inputs_) machines.emplace_back(b, cap_);
    state s;
    s.machines = std::move(machines);
    s.a[0] = s.a[1] = 1;  // bit 0 = virtual prefix cell a*[0] = 1
    explore(s, result);
    return result;
  }

 private:
  struct state {
    std::vector<lean_machine> machines;
    // Bit r of a[b] is the value of ab[r]; cap <= 62.
    std::uint64_t a[2] = {0, 0};

    std::uint64_t encode_machine(const lean_machine& m) const {
      return (static_cast<std::uint64_t>(m.current_phase()) << 0) |
             (static_cast<std::uint64_t>(m.preference()) << 2) |
             (m.round() << 3) |
             (m.staged_a0() << 11) |
             (static_cast<std::uint64_t>(m.done()) << 12) |
             (static_cast<std::uint64_t>(m.done() ? m.decision() : 0) << 13) |
             (static_cast<std::uint64_t>(m.exhausted()) << 14);
    }

    std::string key() const {
      std::string k;
      k.reserve(machines.size() * 8 + 16);
      auto append = [&k](std::uint64_t v) {
        k.append(reinterpret_cast<const char*>(&v), sizeof v);
      };
      for (const auto& m : machines) append(encode_machine(m));
      append(a[0]);
      append(a[1]);
      return k;
    }
  };

  void check_state(const state& s, mc_result& result) {
    // Lemma 2: each array is a contiguous prefix of set bits. (The virtual
    // prefix occupies bit 0; a set bit r >= 2 requires bit r-1.)
    for (int b = 0; b < 2; ++b) {
      const std::uint64_t bits = s.a[b];
      // bits+1 is a power of two iff bits is all-ones from bit 0.
      if ((bits & (bits + 1)) != 0) {
        result.violations.push_back("Lemma 2: a" + std::to_string(b) +
                                    " not contiguous: " +
                                    std::to_string(bits));
      }
      // Validity precondition of Lemma 2(a): a_b[1] set requires input b.
      bool input_present = false;
      for (int in : inputs_) input_present = input_present || in == b;
      if ((bits & 2) != 0 && !input_present) {
        result.violations.push_back("Lemma 2a: a" + std::to_string(b) +
                                    "[1] set without input " +
                                    std::to_string(b));
      }
    }
    // Decision checks.
    int decided_bit = -1;
    std::uint64_t min_round = 0, max_round = 0;
    for (const auto& m : s.machines) {
      if (!m.done()) continue;
      const int bit = m.decision();
      const std::uint64_t r = m.round();
      bool input_present = false;
      for (int in : inputs_) input_present = input_present || in == bit;
      if (!input_present) {
        result.violations.push_back("Validity: decided " +
                                    std::to_string(bit));
      }
      if (decided_bit == -1) {
        decided_bit = bit;
        min_round = max_round = r;
      } else {
        if (bit != decided_bit) {
          result.violations.push_back("Agreement: " + std::to_string(bit) +
                                      " vs " + std::to_string(decided_bit));
        }
        min_round = std::min(min_round, r);
        max_round = std::max(max_round, r);
      }
      // Lemma 4a: rival array bit at the decision round must be clear.
      if ((s.a[1 - bit] >> r) & 1) {
        result.violations.push_back(
            "Lemma 4a: a" + std::to_string(1 - bit) + "[" +
            std::to_string(r) + "] set despite decision");
      }
    }
    if (decided_bit != -1 && max_round > min_round + 1) {
      result.violations.push_back("Lemma 4b: rounds span [" +
                                  std::to_string(min_round) + "," +
                                  std::to_string(max_round) + "]");
    }
  }

  void explore(const state& s, mc_result& result) {
    if (!result.violations.empty()) return;  // fail fast
    auto [it, inserted] = visited_.insert(s.key());
    (void)it;
    if (!inserted) return;
    ++result.states_visited;
    check_state(s, result);

    for (std::size_t i = 0; i < s.machines.size(); ++i) {
      const auto& m = s.machines[i];
      if (m.done() || m.exhausted()) continue;
      state next = s;
      auto& nm = next.machines[i];
      const operation op = nm.next_op();
      std::uint64_t value = 0;
      const int array = op.where.where == space::race0 ? 0 : 1;
      if (op.kind == op_kind::read) {
        value = (next.a[array] >> op.where.index) & 1;
      } else {
        next.a[array] |= (std::uint64_t{1} << op.where.index);
        value = 1;
      }
      const bool was_done = nm.done();
      nm.apply(value);
      if (!was_done && nm.done()) ++result.decisions_seen;
      explore(next, result);
    }
  }

  std::vector<int> inputs_;
  std::uint64_t cap_;
  std::unordered_set<std::string> visited_;
};

/// Exhaustive check of the adopt-commit object for `inputs.size()` processes:
/// every interleaving terminates (the object is wait-free and bounded), and
/// at every terminal state coherence, convergence, and validity hold.
class adopt_commit_model_checker {
 public:
  explicit adopt_commit_model_checker(std::vector<int> inputs)
      : inputs_(std::move(inputs)) {}

  mc_result run() {
    mc_result result;
    state s;
    for (int b : inputs_) s.machines.emplace_back(/*round=*/1, b);
    explore(s, result);
    return result;
  }

 private:
  struct state {
    std::vector<adopt_commit_machine> machines;
    std::uint64_t door[2] = {0, 0};
    std::uint64_t proposal = 0;  // encoded; 0 = empty

    std::string key() const {
      std::string k;
      auto append = [&k](std::uint64_t v) {
        k.append(reinterpret_cast<const char*>(&v), sizeof v);
      };
      for (const auto& m : machines) {
        std::uint64_t enc =
            static_cast<std::uint64_t>(m.phase_index()) |
            (static_cast<std::uint64_t>(m.done()) << 8);
        if (m.done()) {
          enc |= (static_cast<std::uint64_t>(m.value()) << 9) |
                 (static_cast<std::uint64_t>(
                      m.outcome() == adopt_commit_machine::verdict::commit)
                  << 10);
        }
        append(enc);
      }
      append(door[0]);
      append(door[1]);
      append(proposal);
      return k;
    }
  };

  void check_terminal(const state& s, mc_result& result) {
    // Coherence + agreement-on-commit + convergence + validity.
    int committed_value = -1;
    for (const auto& m : s.machines) {
      if (m.outcome() == adopt_commit_machine::verdict::commit) {
        if (committed_value != -1 && committed_value != m.value()) {
          result.violations.push_back("AC: two different commits");
        }
        committed_value = m.value();
      }
      bool input_present = false;
      for (int in : inputs_) input_present = input_present || in == m.value();
      if (!input_present) {
        result.violations.push_back("AC validity: returned " +
                                    std::to_string(m.value()));
      }
    }
    if (committed_value != -1) {
      for (const auto& m : s.machines) {
        if (m.value() != committed_value) {
          result.violations.push_back(
              "AC coherence: adopt " + std::to_string(m.value()) +
              " alongside commit " + std::to_string(committed_value));
        }
      }
    }
    bool unanimous = true;
    for (int in : inputs_) unanimous = unanimous && in == inputs_[0];
    if (unanimous) {
      for (const auto& m : s.machines) {
        if (m.outcome() != adopt_commit_machine::verdict::commit ||
            m.value() != inputs_[0]) {
          result.violations.push_back("AC convergence violated");
        }
      }
    }
  }

  void explore(const state& s, mc_result& result) {
    if (!result.violations.empty()) return;
    auto [it, inserted] = visited_.insert(s.key());
    (void)it;
    if (!inserted) return;
    ++result.states_visited;

    bool all_done = true;
    for (std::size_t i = 0; i < s.machines.size(); ++i) {
      const auto& m = s.machines[i];
      if (m.done()) continue;
      all_done = false;
      state next = s;
      auto& nm = next.machines[i];
      const operation op = nm.next_op();
      std::uint64_t value = 0;
      switch (op.where.where) {
        case space::ac_door0:
        case space::ac_door1: {
          const int d = op.where.where == space::ac_door0 ? 0 : 1;
          if (op.kind == op_kind::read) {
            value = next.door[d];
          } else {
            next.door[d] = op.value;
            value = op.value;
          }
          break;
        }
        case space::ac_proposal:
          if (op.kind == op_kind::read) {
            value = next.proposal;
          } else {
            next.proposal = op.value;
            value = op.value;
          }
          break;
        default:
          result.violations.push_back("AC touched unexpected space");
          return;
      }
      nm.apply(value);
      if (nm.done()) ++result.decisions_seen;
      explore(next, result);
    }
    if (all_done) check_terminal(s, result);
  }

  std::vector<int> inputs_;
  std::unordered_set<std::string> visited_;
};

/// Exhaustive check of the conciliator: every interleaving AND every
/// combination of local coin outcomes. Verifies at each reachable state:
///   * validity — finished machines return some participant's input,
///   * unanimity preservation — with unanimous inputs v, every return is v,
///   * register integrity — the race register only ever holds an input.
/// (Per-round agreement is probabilistic by design and not asserted.)
class conciliator_model_checker {
 public:
  explicit conciliator_model_checker(std::vector<int> inputs)
      : inputs_(std::move(inputs)) {}

  mc_result run() {
    mc_result result;
    state s;
    // The write probability is irrelevant under a forced coin; any value in
    // (0, 1] is accepted by the constructor.
    coin_.value = false;
    for (int b : inputs_) {
      s.machines.emplace_back(/*round=*/1, b, 0.5, &coin_);
    }
    explore(s, result);
    return result;
  }

 private:
  /// Coin that returns a preset outcome and records consumption; the
  /// explorer re-runs a step with the other outcome iff it was consumed.
  struct forced_coin final : coin_source {
    bool value = false;
    bool consumed = false;
    bool flip(double) override {
      consumed = true;
      return value;
    }
  };

  struct state {
    std::vector<conciliator_machine> machines;
    std::uint64_t reg = 0;  // the round's conc_value register

    std::string key() const {
      std::string k;
      auto append = [&k](std::uint64_t v) {
        k.append(reinterpret_cast<const char*>(&v), sizeof v);
      };
      for (const auto& m : machines) {
        append(static_cast<std::uint64_t>(m.phase_index()) |
               (static_cast<std::uint64_t>(m.done()) << 8) |
               (static_cast<std::uint64_t>(m.done() ? m.value() + 1 : 0)
                << 9));
      }
      append(reg);
      return k;
    }
  };

  void check_state(const state& s, mc_result& result) {
    bool unanimous = true;
    for (int in : inputs_) unanimous = unanimous && in == inputs_[0];
    if (!proposal_empty(s.reg)) {
      const int v = decode_proposal(s.reg);
      bool present = false;
      for (int in : inputs_) present = present || in == v;
      if (!present) {
        result.violations.push_back("conciliator: register holds non-input");
      }
    }
    for (const auto& m : s.machines) {
      if (!m.done()) continue;
      bool present = false;
      for (int in : inputs_) present = present || in == m.value();
      if (!present) {
        result.violations.push_back("conciliator validity: returned " +
                                    std::to_string(m.value()));
      }
      if (unanimous && m.value() != inputs_[0]) {
        result.violations.push_back("conciliator unanimity violated");
      }
    }
  }

  // Executes machine i's next op on a copy of `s` with the coin forced to
  // `outcome`; returns the successor and whether the coin was consumed.
  state step(const state& s, std::size_t i, bool outcome, bool& consumed) {
    state next = s;
    coin_.value = outcome;
    coin_.consumed = false;
    for (auto& m : next.machines) m.rebind_coin(&coin_);
    auto& nm = next.machines[i];
    const operation op = nm.next_op();
    std::uint64_t value = 0;
    if (op.kind == op_kind::read) {
      value = next.reg;
    } else {
      next.reg = op.value;
      value = op.value;
    }
    nm.apply(value);
    consumed = coin_.consumed;
    return next;
  }

  void explore(const state& s, mc_result& result) {
    if (!result.violations.empty()) return;
    auto [it, inserted] = visited_.insert(s.key());
    (void)it;
    if (!inserted) return;
    ++result.states_visited;
    check_state(s, result);

    for (std::size_t i = 0; i < s.machines.size(); ++i) {
      if (s.machines[i].done()) continue;
      bool consumed = false;
      state tails = step(s, i, /*outcome=*/false, consumed);
      explore(tails, result);
      if (consumed) {
        bool consumed2 = false;
        state heads = step(s, i, /*outcome=*/true, consumed2);
        explore(heads, result);
      }
      if (s.machines[i].done()) ++result.decisions_seen;
    }
  }

  std::vector<int> inputs_;
  forced_coin coin_;
  std::unordered_set<std::string> visited_;
};

}  // namespace leancon::testing
