// Lamport's fast mutual exclusion under noisy scheduling (the Section 10
// Gafni-Mitzenmacher direction). Mutual exclusion is checked exactly (at
// most one holder after every atomic step) plus via the canary register.
#include "mutex/fast_mutex.h"

#include <gtest/gtest.h>

#include "memory/sim_memory.h"
#include "noise/catalog.h"

namespace leancon {
namespace {

void step(fast_mutex_machine& m, sim_memory& mem, int pid = 0) {
  const operation op = m.next_op();
  m.apply(mem.execute(pid, op));
}

mutex_config base_config(std::size_t n, std::uint64_t seed) {
  mutex_config config;
  config.processes = n;
  config.entries_per_process = 4;
  config.sched = figure1_params(make_exponential(1.0));
  config.seed = seed;
  return config;
}

TEST(FastMutex, RejectsBadPid) {
  EXPECT_THROW(fast_mutex_machine(2, 2, 1), std::invalid_argument);
  EXPECT_THROW(fast_mutex_machine(-1, 2, 1), std::invalid_argument);
}

TEST(FastMutex, ZeroEntriesIsDoneImmediately) {
  fast_mutex_machine m(0, 2, 0);
  EXPECT_TRUE(m.done());
}

TEST(FastMutex, UncontendedEntryTakesFastPath) {
  sim_memory mem;
  fast_mutex_machine m(0, 4, 1, /*cs_work=*/2);
  std::uint64_t guard = 0;
  while (!m.done() && guard++ < 1000) step(m, mem);
  ASSERT_TRUE(m.done());
  EXPECT_EQ(m.completed_entries(), 1u);
  EXPECT_EQ(m.fast_path_entries(), 1u);
  EXPECT_EQ(m.canary_violations(), 0u);
  // Fast path: b:=1, x:=i, read y, y:=i, read x, canary, 2 reads, y:=0,
  // b:=0 -> 10 operations.
  EXPECT_EQ(m.steps(), 10u);
}

TEST(FastMutex, InCriticalSectionWindowIsTracked) {
  sim_memory mem;
  fast_mutex_machine m(0, 2, 1, 1);
  EXPECT_FALSE(m.in_critical_section());
  // Drive until in CS.
  std::uint64_t guard = 0;
  while (!m.in_critical_section() && guard++ < 100) step(m, mem);
  ASSERT_TRUE(m.in_critical_section());
  // ...and until out.
  guard = 0;
  while (m.in_critical_section() && guard++ < 100) step(m, mem);
  EXPECT_FALSE(m.in_critical_section());
}

TEST(FastMutex, ContenderBacksOffWhenLockHeld) {
  sim_memory mem;
  mem.poke(fast_mutex_machine::y_reg(), 2);  // process 1 holds the lock
  fast_mutex_machine m(0, 2, 1);
  step(m, mem);  // b := 1
  step(m, mem);  // x := 1
  step(m, mem);  // read y = 2 -> back off
  step(m, mem);  // b := 0
  // Spins on y until released.
  for (int i = 0; i < 5; ++i) step(m, mem);
  EXPECT_FALSE(m.in_critical_section());
  mem.poke(fast_mutex_machine::y_reg(), 0);
  std::uint64_t guard = 0;
  while (!m.done() && guard++ < 1000) step(m, mem);
  EXPECT_TRUE(m.done());
  EXPECT_EQ(m.fast_path_entries(), 0u);  // this entry saw contention
}

class MutexNoiseSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(MutexNoiseSweep, MutualExclusionHoldsUnderNoisyScheduling) {
  const auto dist = find_distribution(GetParam());
  ASSERT_TRUE(dist.has_value());
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    auto config = base_config(4, seed * 19);
    config.sched = figure1_params(*dist);
    const auto result = run_mutex(config);
    ASSERT_TRUE(result.all_finished) << GetParam() << " seed " << seed;
    EXPECT_EQ(result.overlap_violations, 0u) << GetParam();
    EXPECT_EQ(result.canary_violations, 0u) << GetParam();
    EXPECT_EQ(result.total_entries, 16u);
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, MutexNoiseSweep,
                         ::testing::Values("exp1", "unif", "geom", "twopoint",
                                           "norm"),
                         [](const ::testing::TestParamInfo<std::string>& i) {
                           std::string key = i.param;
                           for (auto& c : key) {
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           }
                           return key;
                         });

TEST(FastMutex, HighContentionManyProcesses) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto config = base_config(8, 100 + seed);
    config.entries_per_process = 3;
    const auto result = run_mutex(config);
    ASSERT_TRUE(result.all_finished) << "seed " << seed;
    EXPECT_EQ(result.overlap_violations, 0u);
    EXPECT_EQ(result.canary_violations, 0u);
    EXPECT_EQ(result.total_entries, 24u);
  }
}

TEST(FastMutex, SoloProcessIsAllFastPath) {
  auto config = base_config(1, 3);
  config.entries_per_process = 10;
  const auto result = run_mutex(config);
  EXPECT_TRUE(result.all_finished);
  EXPECT_EQ(result.fast_path_entries, 10u);
  EXPECT_EQ(result.total_entries, 10u);
}

TEST(FastMutex, AdversaryDelaysDoNotBreakExclusion) {
  for (const auto& adv : {make_constant_delays(2.0),
                          make_alternating_delays(2.0),
                          make_burst_delays(4.0, 8)}) {
    auto config = base_config(4, 55);
    config.sched.adversary = adv;
    const auto result = run_mutex(config);
    ASSERT_TRUE(result.all_finished) << adv->name();
    EXPECT_EQ(result.overlap_violations, 0u) << adv->name();
    EXPECT_EQ(result.canary_violations, 0u) << adv->name();
  }
}

TEST(FastMutex, OpsAccounting) {
  const auto result = run_mutex(base_config(3, 9));
  std::uint64_t sum = 0;
  for (auto ops : result.ops_per_process) sum += ops;
  EXPECT_EQ(sum, result.total_ops);
}

}  // namespace
}  // namespace leancon
