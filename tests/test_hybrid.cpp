// Theorem 14: under hybrid quantum/priority uniprocessor scheduling with
// quantum >= 8, every process running lean-consensus decides after at most
// 12 operations — for every legal preemption strategy. These tests sweep
// quantum sizes, priority layouts, initial quantum consumption, and
// adversaries (including the proof's preempt-before-write scenario), and
// also exhibit the quantum-4 lockstep that motivates the bound.
#include "sched/hybrid.h"

#include <gtest/gtest.h>

namespace leancon {
namespace {

hybrid_config two_process_config(std::uint64_t quantum) {
  hybrid_config config;
  config.inputs = {0, 1};
  config.priorities = {0, 0};
  config.quantum = quantum;
  return config;
}

TEST(Hybrid, SoloProcessDecidesInEightOps) {
  hybrid_config config;
  config.inputs = {1};
  config.priorities = {0};
  config.quantum = 8;
  auto adv = make_run_to_completion();
  const auto result = run_hybrid(config, *adv);
  EXPECT_TRUE(result.all_decided);
  EXPECT_EQ(result.decision, 1);
  EXPECT_EQ(result.max_ops_per_process, 8u);
}

TEST(Hybrid, RunToCompletionTwoProcesses) {
  auto config = two_process_config(8);
  auto adv = make_run_to_completion();
  const auto result = run_hybrid(config, *adv);
  EXPECT_TRUE(result.all_decided);
  EXPECT_LE(result.max_ops_per_process, 12u);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Hybrid, QuantumFourRoundRobinLocksStepForever) {
  // One lean round is exactly 4 operations. With quantum 4 and both
  // processes starting mid-quantum (2 ops already consumed), every quantum
  // covers the second half of one round and the first half of the next:
  // both processes read each round's cells before either writes them, and
  // the race stays tied forever. This is the counterexample showing why
  // Theorem 14 requires quantum >= 8.
  auto config = two_process_config(4);
  config.initial_quantum_used = {2, 2};
  config.max_total_ops = 4000;
  auto adv = make_round_robin();
  const auto result = run_hybrid(config, *adv);
  EXPECT_FALSE(result.all_decided);
  EXPECT_EQ(result.total_ops, 4000u);
  EXPECT_TRUE(result.violations.empty());  // safety holds regardless
}

TEST(Hybrid, QuantumFourAlignedStartsHappenToDecide) {
  // The same quantum-4 round-robin with full initial quanta aligns quanta
  // with round boundaries: each process sees the other's completed round and
  // adopts, so the execution terminates. The non-termination above is a
  // property of the offset, not of the quantum alone.
  auto config = two_process_config(4);
  config.max_total_ops = 4000;
  auto adv = make_round_robin();
  const auto result = run_hybrid(config, *adv);
  EXPECT_TRUE(result.all_decided);
  EXPECT_TRUE(result.violations.empty());
}

TEST(Hybrid, QuantumEightRoundRobinDecides) {
  auto config = two_process_config(8);
  auto adv = make_round_robin();
  const auto result = run_hybrid(config, *adv);
  EXPECT_TRUE(result.all_decided);
  EXPECT_LE(result.max_ops_per_process, 12u);
}

TEST(Hybrid, PreemptBeforeWriteScenarioMeetsTheBound) {
  // The proof's bad case: pid 0 (lowest priority) is preempted between its
  // round-1 reads and its round-1 write; the preemptor chain then decides
  // within one quantum and pid 0 finishes by round 3 (12 ops).
  hybrid_config config;
  config.inputs = {0, 1, 1};
  config.priorities = {0, 1, 2};
  config.quantum = 8;
  auto adv = make_preempt_before_write();
  const auto result = run_hybrid(config, *adv);
  EXPECT_TRUE(result.all_decided);
  EXPECT_LE(result.max_ops_per_process, 12u);
  EXPECT_EQ(result.decision, 1)
      << "the preempted zero-preferring process must adopt the winners' bit";
  EXPECT_TRUE(result.violations.empty());
}

TEST(Hybrid, MidQuantumStartStillMeetsTheBound) {
  // Processes may start the protocol with most of their quantum already
  // consumed by other work (Section 3.2).
  hybrid_config config;
  config.inputs = {0, 1};
  config.priorities = {0, 0};
  config.quantum = 8;
  config.initial_quantum_used = {6, 0};
  auto adv = make_round_robin();
  const auto result = run_hybrid(config, *adv);
  EXPECT_TRUE(result.all_decided);
  EXPECT_LE(result.max_ops_per_process, 12u);
}

struct theorem14_case {
  std::uint64_t quantum;
  std::size_t n;
  int adversary;  // 0 rtc, 1 round-robin, 2 preempt-before-write, 3 random
  std::uint64_t salt;
};

class Theorem14Sweep : public ::testing::TestWithParam<theorem14_case> {};

TEST_P(Theorem14Sweep, AtMostTwelveOpsPerProcess) {
  const auto param = GetParam();
  hybrid_config config;
  for (std::size_t i = 0; i < param.n; ++i) {
    config.inputs.push_back(static_cast<int>(i % 2));
    // Mixed priority bands, including ties, exercise both preemption rules.
    config.priorities.push_back(static_cast<int>(i / 2));
  }
  config.quantum = param.quantum;
  // Vary initial quantum consumption deterministically.
  for (std::size_t i = 0; i < param.n; ++i) {
    config.initial_quantum_used.push_back((param.salt + i) %
                                          (param.quantum + 1));
  }
  preemption_adversary_ptr adv;
  switch (param.adversary) {
    case 0: adv = make_run_to_completion(); break;
    case 1: adv = make_round_robin(); break;
    case 2: adv = make_preempt_before_write(); break;
    default: adv = make_random_preemption(0.3, param.salt); break;
  }
  const auto result = run_hybrid(config, *adv);
  ASSERT_TRUE(result.all_decided) << adv->name();
  EXPECT_LE(result.max_ops_per_process, 12u) << adv->name();
  EXPECT_TRUE(result.violations.empty());
}

std::vector<theorem14_case> theorem14_cases() {
  std::vector<theorem14_case> cases;
  for (std::uint64_t quantum : {8u, 9u, 12u, 16u}) {
    for (std::size_t n : {2u, 3u, 5u, 8u}) {
      for (int adversary : {0, 1, 2, 3}) {
        cases.push_back({quantum, n, adversary, quantum * 31 + n * 7 +
                                                    static_cast<std::uint64_t>(
                                                        adversary)});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    QuantumAndAdversaries, Theorem14Sweep,
    ::testing::ValuesIn(theorem14_cases()),
    [](const ::testing::TestParamInfo<theorem14_case>& info) {
      const auto& p = info.param;
      return "q" + std::to_string(p.quantum) + "_n" + std::to_string(p.n) +
             "_adv" + std::to_string(p.adversary);
    });

TEST(Hybrid, RandomPreemptionManySeedsSafe) {
  for (std::uint64_t salt = 1; salt <= 20; ++salt) {
    hybrid_config config;
    config.inputs = {0, 1, 0, 1};
    config.priorities = {0, 1, 1, 2};
    config.quantum = 8;
    auto adv = make_random_preemption(0.5, salt);
    const auto result = run_hybrid(config, *adv);
    ASSERT_TRUE(result.all_decided) << "salt " << salt;
    ASSERT_LE(result.max_ops_per_process, 12u) << "salt " << salt;
    ASSERT_TRUE(result.violations.empty());
  }
}

namespace {
/// An adversary that ignores legality — the runner must reject its picks.
class rogue_adversary final : public preemption_adversary {
 public:
  int choose(int running, const std::vector<int>&,
             const std::vector<hybrid_process_view>& view) override {
    // Demand a same-priority switch mid-quantum (illegal by construction
    // below), or any out-of-legal-set process.
    return running == 0 && !view[1].done ? 1 : -1;
  }
  std::string name() const override { return "rogue"; }
};
}  // namespace

TEST(Hybrid, IllegalAdversaryPickIsRejected) {
  hybrid_config config;
  config.inputs = {0, 1};
  config.priorities = {0, 0};  // equal priority: mid-quantum switch illegal
  config.quantum = 8;
  rogue_adversary adv;
  EXPECT_THROW(run_hybrid(config, adv), std::logic_error);
}

TEST(Hybrid, MismatchedConfigThrows) {
  hybrid_config config;
  config.inputs = {0, 1};
  config.priorities = {0};
  auto adv = make_run_to_completion();
  EXPECT_THROW(run_hybrid(config, *adv), std::invalid_argument);
}

TEST(Hybrid, OpsPerProcessAccounting) {
  auto config = two_process_config(8);
  auto adv = make_round_robin();
  const auto result = run_hybrid(config, *adv);
  std::uint64_t sum = 0;
  for (auto ops : result.ops_per_process) sum += ops;
  EXPECT_EQ(sum, result.total_ops);
}

}  // namespace
}  // namespace leancon
