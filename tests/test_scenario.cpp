#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/trial_executor.h"

namespace leancon {
namespace {

TEST(Scenario, RegistryHasUniqueNonEmptyKeys) {
  const auto& registry = scenario_registry();
  ASSERT_GE(registry.size(), 16u);  // figure-1 + extras + PR 3 families
  std::set<std::string> keys;
  for (const auto& spec : registry) {
    EXPECT_FALSE(spec.key.empty());
    EXPECT_FALSE(spec.description.empty());
    // Exactly one workload form per spec.
    EXPECT_NE(static_cast<bool>(spec.build), static_cast<bool>(spec.run_one))
        << spec.key;
    EXPECT_TRUE(keys.insert(spec.key).second) << "duplicate " << spec.key;
  }
  // The four families ROADMAP listed as missing are now presets.
  for (const char* key :
       {"mp-abd", "mutex-noise", "hybrid-quantum", "adv-pack", "adv-burst",
        "adv-random"}) {
    EXPECT_NE(find_scenario(key), nullptr) << key;
  }
}

TEST(Scenario, FindRoundTripsAndUnknownIsNull) {
  for (const auto& spec : scenario_registry()) {
    const scenario_spec* found = find_scenario(spec.key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->key, spec.key);
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(Scenario, MakeScenarioThrowsWithKnownKeysListed) {
  try {
    make_scenario("no-such-scenario", {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    EXPECT_NE(what.find("figure1-exp1"), std::string::npos);
  }
}

TEST(Scenario, KeysStringListsEveryScenario) {
  const std::string keys = scenario_keys();
  for (const auto& spec : scenario_registry()) {
    EXPECT_NE(keys.find(spec.key), std::string::npos) << spec.key;
  }
}

TEST(Scenario, Figure1PresetMatchesThePaperSetup) {
  scenario_params params;
  params.n = 8;
  params.seed = 3;
  const sim_config config = make_scenario("figure1-exp1", params);
  EXPECT_EQ(config.inputs.size(), 8u);
  EXPECT_EQ(config.inputs, split_inputs(8));
  EXPECT_EQ(config.stop, stop_mode::first_decision);
  EXPECT_EQ(config.seed, 3u);
  EXPECT_FALSE(config.check_invariants);
  EXPECT_EQ(config.crashes, nullptr);
}

TEST(Scenario, CombinedCutoffFamilySetsProtocolAndRmax) {
  const struct {
    const char* key;
    std::uint64_t r_max;
  } expected[] = {{"combined-cutoff-1", 1},
                  {"combined-cutoff-4", 4},
                  {"combined-default", 0}};
  for (const auto& e : expected) {
    const sim_config config = make_scenario(e.key, {});
    EXPECT_EQ(config.protocol, protocol_kind::combined) << e.key;
    EXPECT_EQ(config.r_max, e.r_max) << e.key;
    EXPECT_EQ(config.stop, stop_mode::all_decided) << e.key;
  }
}

TEST(Scenario, CrashHeavyCarriesAnAdversary) {
  scenario_params params;
  params.n = 8;
  const sim_config config = make_scenario("crash-heavy", params);
  ASSERT_NE(config.crashes, nullptr);
  EXPECT_EQ(config.crashes->name(), "kill-poised");
}

TEST(Scenario, StartModesDifferFromTheDitheredDefault) {
  EXPECT_EQ(make_scenario("staggered-starts", {}).sched.starts,
            start_mode::staggered);
  EXPECT_EQ(make_scenario("random-starts", {}).sched.starts,
            start_mode::random);
  EXPECT_EQ(make_scenario("figure1-exp1", {}).sched.starts,
            start_mode::dithered);
}

TEST(Scenario, EveryBuildScenarioRunsOnTheExecutor) {
  executor_options opts;
  opts.threads = 2;
  const trial_executor exec(opts);
  for (const auto& spec : scenario_registry()) {
    if (!spec.build) continue;
    scenario_params params;
    params.n = 4;
    params.seed = 5;
    sim_config config = spec.build(params);
    config.max_total_ops = 200000;  // keep adversarial cells bounded
    const auto stats = exec.run(config, 3);
    EXPECT_EQ(stats.trials, 3u) << spec.key;
    EXPECT_EQ(stats.total_ops.count(), 3u) << spec.key;
  }
}

TEST(Scenario, EveryScenarioRunsOneTrial) {
  for (const auto& spec : scenario_registry()) {
    scenario_params params;
    params.n = 4;
    params.seed = 9;
    const sim_result r = run_scenario_trial(spec.key, params, 1234567);
    EXPECT_GT(r.total_ops, 0u) << spec.key;
    EXPECT_TRUE(r.violations.empty()) << spec.key;
  }
}

TEST(Scenario, AdversaryDelayFamilyCarriesAnAdversary) {
  for (const char* key : {"adv-pack", "adv-burst", "adv-random"}) {
    scenario_params params;
    params.n = 8;
    const sim_config config = make_scenario(key, params);
    ASSERT_NE(config.sched.adversary, nullptr) << key;
    EXPECT_GT(config.sched.adversary->bound(), 0.0) << key;
  }
  EXPECT_EQ(make_scenario("figure1-exp1", {}).sched.adversary, nullptr);
}

TEST(Scenario, CustomBackendPresetsHaveNoSimConfig) {
  for (const char* key : {"mp-abd", "mutex-noise", "hybrid-quantum"}) {
    try {
      make_scenario(key, {});
      FAIL() << key << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("custom backend"),
                std::string::npos)
          << key;
    }
  }
}

TEST(Scenario, CustomBackendTrialsDecideAndAreDeterministic) {
  for (const char* key : {"mp-abd", "mutex-noise", "hybrid-quantum"}) {
    scenario_params params;
    params.n = 4;
    params.seed = 21;
    const sim_result a = run_scenario_trial(key, params, 42);
    const sim_result b = run_scenario_trial(key, params, 42);
    EXPECT_TRUE(a.any_decided) << key;
    EXPECT_TRUE(a.all_live_decided) << key;
    EXPECT_EQ(a.total_ops, b.total_ops) << key;
    EXPECT_EQ(a.decision, b.decision) << key;
    EXPECT_EQ(a.first_decision_time, b.first_decision_time) << key;
    ASSERT_EQ(a.processes.size(), 4u) << key;
    // Noise-driven backends vary with the seed (hybrid-quantum legitimately
    // does not have to: the protocol is deterministic and preemption only
    // moves op counts when it hits the pre-write window).
    if (std::string(key) == "hybrid-quantum") continue;
    bool any_differs = false;
    for (std::uint64_t seed = 43; seed < 59 && !any_differs; ++seed) {
      const sim_result c = run_scenario_trial(key, params, seed);
      any_differs = c.total_ops != a.total_ops ||
                    c.first_decision_time != a.first_decision_time;
    }
    EXPECT_TRUE(any_differs) << key;
  }
}

TEST(Scenario, HybridQuantumRespectsTheoremFourteenBound) {
  // Theorem 14: quantum >= 8 bounds every process at 12 operations, for any
  // legal preemption schedule — including the preset's random adversary.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    scenario_params params;
    params.n = 6;
    const sim_result r = run_scenario_trial("hybrid-quantum", params, seed);
    EXPECT_TRUE(r.any_decided);
    for (const auto& p : r.processes) {
      EXPECT_LE(p.ops, 12u) << "seed " << seed;
    }
  }
}

TEST(Scenario, BuildingTwiceIsDeterministic) {
  scenario_params params;
  params.n = 8;
  params.seed = 17;
  for (const char* key : {"figure1-norm", "crash-heavy", "heavy-tail"}) {
    const auto a = run_trials(make_scenario(key, params), 10);
    const auto b = run_trials(make_scenario(key, params), 10);
    EXPECT_EQ(a.decided_trials, b.decided_trials) << key;
    EXPECT_EQ(a.first_round.samples(), b.first_round.samples()) << key;
    EXPECT_EQ(a.total_ops.samples(), b.total_ops.samples()) << key;
  }
}

}  // namespace
}  // namespace leancon
