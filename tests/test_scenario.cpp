#include "scenario/scenario.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "sim/trial_executor.h"

namespace leancon {
namespace {

const char* const kNativeKeys[] = {"mp-abd", "mutex-noise", "hybrid-quantum"};

bool is_native(const std::string& key) {
  return !make_workload(key, {}).config;
}

TEST(Scenario, RegistryHasUniqueNonEmptyKeysAndOneWorkloadForm) {
  const auto& registry = scenario_registry();
  ASSERT_GE(registry.size(), 16u);  // figure-1 + extras + PR 3 families
  std::set<std::string> keys;
  for (const auto& spec : registry) {
    EXPECT_FALSE(spec.key.empty());
    EXPECT_FALSE(spec.description.empty());
    // THE workload form: every spec makes a runnable workload.
    ASSERT_TRUE(static_cast<bool>(spec.make)) << spec.key;
    const workload w = spec.make({}, nullptr);
    EXPECT_TRUE(static_cast<bool>(w.run_trial)) << spec.key;
    EXPECT_TRUE(keys.insert(spec.key).second) << "duplicate " << spec.key;
  }
  // The four families ROADMAP listed as missing are now presets.
  for (const char* key :
       {"mp-abd", "mutex-noise", "hybrid-quantum", "adv-pack", "adv-burst",
        "adv-random"}) {
    EXPECT_NE(find_scenario(key), nullptr) << key;
  }
}

TEST(Scenario, FindRoundTripsAndUnknownIsNull) {
  for (const auto& spec : scenario_registry()) {
    const scenario_spec* found = find_scenario(spec.key);
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found->key, spec.key);
  }
  EXPECT_EQ(find_scenario("no-such-scenario"), nullptr);
}

TEST(Scenario, MakeScenarioThrowsWithKnownKeysListed) {
  try {
    make_scenario("no-such-scenario", {});
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    EXPECT_NE(what.find("figure1-exp1"), std::string::npos);
  }
}

TEST(Scenario, KeysStringListsEveryScenario) {
  const std::string keys = scenario_keys();
  for (const auto& spec : scenario_registry()) {
    EXPECT_NE(keys.find(spec.key), std::string::npos) << spec.key;
  }
}

TEST(Scenario, Figure1PresetMatchesThePaperSetup) {
  scenario_params params;
  params.n = 8;
  params.seed = 3;
  const sim_config config = make_scenario("figure1-exp1", params);
  EXPECT_EQ(config.inputs.size(), 8u);
  EXPECT_EQ(config.inputs, split_inputs(8));
  EXPECT_EQ(config.stop, stop_mode::first_decision);
  EXPECT_EQ(config.seed, 3u);
  EXPECT_FALSE(config.check_invariants);
  EXPECT_EQ(config.crashes, nullptr);
}

TEST(Scenario, CombinedCutoffFamilySetsProtocolAndRmax) {
  const struct {
    const char* key;
    std::uint64_t r_max;
  } expected[] = {{"combined-cutoff-1", 1},
                  {"combined-cutoff-4", 4},
                  {"combined-default", 0}};
  for (const auto& e : expected) {
    const sim_config config = make_scenario(e.key, {});
    EXPECT_EQ(config.protocol, protocol_kind::combined) << e.key;
    EXPECT_EQ(config.r_max, e.r_max) << e.key;
    EXPECT_EQ(config.stop, stop_mode::all_decided) << e.key;
  }
}

TEST(Scenario, CrashHeavyCarriesAnAdversary) {
  scenario_params params;
  params.n = 8;
  const sim_config config = make_scenario("crash-heavy", params);
  ASSERT_NE(config.crashes, nullptr);
  EXPECT_EQ(config.crashes->name(), "kill-poised");
}

TEST(Scenario, StartModesDifferFromTheDitheredDefault) {
  EXPECT_EQ(make_scenario("staggered-starts", {}).sched.starts,
            start_mode::staggered);
  EXPECT_EQ(make_scenario("random-starts", {}).sched.starts,
            start_mode::random);
  EXPECT_EQ(make_scenario("figure1-exp1", {}).sched.starts,
            start_mode::dithered);
}

TEST(Scenario, TweakAppliesToSharedMemoryWorkloadsAtBuildTime) {
  scenario_params params;
  params.n = 4;
  params.seed = 5;
  const workload w = make_workload(
      "figure1-exp1", params,
      [](sim_config& config) { config.sched.halt_probability = 1.0; });
  ASSERT_TRUE(static_cast<bool>(w.config));
  EXPECT_EQ(w.config->sched.halt_probability, 1.0);
  // Everyone halts before deciding, so the trial reports undecided and
  // carries no round metrics.
  const trial_outcome out = w.run_trial(7);
  EXPECT_FALSE(out.decided);
  EXPECT_EQ(out.metrics.find("round"), nullptr);
}

TEST(Scenario, EverySharedMemoryScenarioRunsOnTheExecutor) {
  executor_options opts;
  opts.threads = 2;
  const trial_executor exec(opts);
  for (const auto& spec : scenario_registry()) {
    scenario_params params;
    params.n = 4;
    params.seed = 5;
    const workload w = spec.make(params, nullptr);
    if (!w.config) continue;  // native backends covered below
    sim_config config = *w.config;
    config.max_total_ops = 200000;  // keep adversarial cells bounded
    const auto stats = exec.run(config, 3);
    EXPECT_EQ(stats.trials, 3u) << spec.key;
    EXPECT_EQ(stats.total_ops().count(), 3u) << spec.key;
  }
}

TEST(Scenario, EveryScenarioRunsOneTrialThroughTheUnifiedForm) {
  for (const auto& spec : scenario_registry()) {
    scenario_params params;
    params.n = 4;
    params.seed = 9;
    const trial_outcome out = run_scenario_trial(spec.key, params, 1234567);
    EXPECT_FALSE(out.violation) << spec.key;
    EXPECT_FALSE(out.metrics.empty()) << spec.key;
    // Every workload reports at least one cost metric with one observation.
    bool any_sample = false;
    for (const auto& e : out.metrics.entries()) {
      any_sample = any_sample || (!e.is_counter && e.stats.count() > 0);
    }
    EXPECT_TRUE(any_sample) << spec.key;
  }
}

TEST(Scenario, ExecutorRunsNativeWorkloads) {
  executor_options opts;
  opts.threads = 2;
  const trial_executor exec(opts);
  for (const char* key : kNativeKeys) {
    scenario_params params;
    params.n = 4;
    params.seed = 31;
    const workload w = make_workload(key, params);
    const auto stats = exec.run(w, params.seed, 6);
    EXPECT_EQ(stats.trials, 6u) << key;
    EXPECT_EQ(stats.decided_trials, 6u) << key;
    // Native workloads have no lean-round notion: the metric is ABSENT,
    // not zero.
    EXPECT_EQ(stats.round().count(), 0u) << key;
    EXPECT_EQ(stats.metrics.find("round"), nullptr) << key;
  }
}

TEST(Scenario, AdversaryDelayFamilyCarriesAnAdversaryAndExtraMetric) {
  for (const char* key : {"adv-pack", "adv-burst", "adv-random"}) {
    scenario_params params;
    params.n = 8;
    const sim_config config = make_scenario(key, params);
    ASSERT_NE(config.sched.adversary, nullptr) << key;
    EXPECT_GT(config.sched.adversary->bound(), 0.0) << key;
    // The family's extra metric: operations the schedule forced before the
    // first decision.
    const trial_outcome out = run_scenario_trial(key, params, 99);
    ASSERT_TRUE(out.decided) << key;
    EXPECT_GT(out.metrics.sample("ops_to_first").count(), 0u) << key;
  }
  EXPECT_EQ(make_scenario("figure1-exp1", {}).sched.adversary, nullptr);
}

TEST(Scenario, NativeBackendPresetsHaveNoSimConfig) {
  for (const char* key : kNativeKeys) {
    EXPECT_TRUE(is_native(key)) << key;
    try {
      make_scenario(key, {});
      FAIL() << key << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("native backend"),
                std::string::npos)
          << key;
    }
  }
}

TEST(Scenario, NativeBackendPresetsRejectTweaksLoudly) {
  // A sim_config tweak cannot apply to a native backend; it must fail
  // fast, not be silently dropped.
  for (const char* key : kNativeKeys) {
    try {
      make_workload(key, {}, [](sim_config&) {});
      FAIL() << key << ": expected std::invalid_argument";
    } catch (const std::invalid_argument& e) {
      const std::string what = e.what();
      EXPECT_NE(what.find(key), std::string::npos) << key;
      EXPECT_NE(what.find("tweak"), std::string::npos) << key;
    }
  }
  // Shared-memory presets accept a tweak (and a null tweak is fine
  // everywhere).
  EXPECT_NO_THROW(make_workload("figure1-exp1", {}, [](sim_config&) {}));
  for (const char* key : kNativeKeys) {
    EXPECT_NO_THROW(make_workload(key, {}, nullptr)) << key;
  }
}

TEST(Scenario, NativeBackendsEmitNativeMetrics) {
  scenario_params params;
  params.n = 4;
  params.seed = 21;

  const trial_outcome mp = run_scenario_trial("mp-abd", params, 42);
  EXPECT_TRUE(mp.decided);
  EXPECT_GT(mp.metrics.sample("messages").mean(), 0.0);
  EXPECT_GT(mp.metrics.sample("register_ops").mean(), 0.0);
  // ABD: each emulated op is two majority exchanges, so several messages
  // per register operation.
  EXPECT_GT(mp.metrics.sample("msgs_per_reg_op").mean(), 2.0);

  const trial_outcome mx = run_scenario_trial("mutex-noise", params, 42);
  EXPECT_TRUE(mx.decided);
  EXPECT_FALSE(mx.violation);
  EXPECT_EQ(mx.metrics.sample("entries").mean(), 4.0 * params.n);
  EXPECT_GT(mx.metrics.sample("fast_path_frac").count(), 0u);
  EXPECT_GT(mx.metrics.sample("finish_time").mean(), 0.0);

  const trial_outcome hy = run_scenario_trial("hybrid-quantum", params, 42);
  EXPECT_TRUE(hy.decided);
  EXPECT_GT(hy.metrics.sample("dispatches").mean(), 0.0);
  EXPECT_GT(hy.metrics.sample("preemptions").count(), 0u);
}

TEST(Scenario, NativeBackendTrialsDecideAndAreDeterministic) {
  for (const char* key : kNativeKeys) {
    scenario_params params;
    params.n = 4;
    params.seed = 21;
    const workload w = make_workload(key, params);
    const trial_outcome a = w.run_trial(42);
    const trial_outcome b = w.run_trial(42);
    EXPECT_TRUE(a.decided) << key;
    ASSERT_EQ(a.metrics.entries().size(), b.metrics.entries().size()) << key;
    for (std::size_t i = 0; i < a.metrics.entries().size(); ++i) {
      const auto& ea = a.metrics.entries()[i];
      const auto& eb = b.metrics.entries()[i];
      EXPECT_EQ(ea.name, eb.name) << key;
      EXPECT_EQ(ea.stats.samples(), eb.stats.samples())
          << key << " " << ea.name;
    }
    // Noise-driven backends vary with the seed (hybrid-quantum legitimately
    // does not have to: the protocol is deterministic and preemption only
    // moves op counts when it hits the pre-write window).
    if (std::string(key) == "hybrid-quantum") continue;
    const std::string cost = std::string(key) == "mp-abd" ? "messages"
                                                          : "total_ops";
    bool any_differs = false;
    for (std::uint64_t seed = 43; seed < 59 && !any_differs; ++seed) {
      const trial_outcome c = w.run_trial(seed);
      any_differs =
          c.metrics.sample(cost).mean() != a.metrics.sample(cost).mean();
    }
    EXPECT_TRUE(any_differs) << key;
  }
}

TEST(Scenario, HybridQuantumRespectsTheoremFourteenBound) {
  // Theorem 14: quantum >= 8 bounds every process at 12 operations, for any
  // legal preemption schedule — including the preset's random adversary.
  // max_ops is the native metric carrying the bound.
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    scenario_params params;
    params.n = 6;
    const trial_outcome out =
        run_scenario_trial("hybrid-quantum", params, seed);
    EXPECT_TRUE(out.decided);
    ASSERT_EQ(out.metrics.sample("max_ops").count(), 1u);
    EXPECT_LE(out.metrics.sample("max_ops").mean(), 12.0) << "seed " << seed;
  }
}

TEST(Scenario, BuildingTwiceIsDeterministic) {
  scenario_params params;
  params.n = 8;
  params.seed = 17;
  for (const char* key : {"figure1-norm", "crash-heavy", "heavy-tail"}) {
    const auto a = run_trials(make_scenario(key, params), 10);
    const auto b = run_trials(make_scenario(key, params), 10);
    EXPECT_EQ(a.decided_trials, b.decided_trials) << key;
    EXPECT_EQ(a.round().samples(), b.round().samples()) << key;
    EXPECT_EQ(a.total_ops().samples(), b.total_ops().samples()) << key;
  }
}

}  // namespace
}  // namespace leancon
