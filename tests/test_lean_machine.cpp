#include "core/lean_machine.h"

#include <gtest/gtest.h>

#include "memory/sim_memory.h"

namespace leancon {
namespace {

/// Executes exactly one operation of `m` against `mem` on behalf of `pid`.
void step(lean_machine& m, sim_memory& mem, int pid = 0) {
  const operation op = m.next_op();
  m.apply(mem.execute(pid, op));
}

TEST(LeanMachine, RejectsNonBitInput) {
  EXPECT_THROW(lean_machine(2), std::invalid_argument);
  EXPECT_THROW(lean_machine(-1), std::invalid_argument);
}

TEST(LeanMachine, InitialState) {
  lean_machine m(1);
  EXPECT_EQ(m.round(), 1u);
  EXPECT_EQ(m.preference(), 1);
  EXPECT_EQ(m.input(), 1);
  EXPECT_FALSE(m.done());
  EXPECT_FALSE(m.exhausted());
  EXPECT_EQ(m.steps(), 0u);
  EXPECT_EQ(m.current_phase(), lean_machine::phase::read_a0);
}

TEST(LeanMachine, RoundEmitsExactlyFourOpsInPaperOrder) {
  // Section 4: "in each round the process carries out exactly four
  // operations in the same sequence: two reads, a write, and another read."
  lean_machine m(0);
  sim_memory mem;

  operation op = m.next_op();
  EXPECT_EQ(op.kind, op_kind::read);
  EXPECT_EQ(op.where.where, space::race0);
  EXPECT_EQ(op.where.index, 1u);
  step(m, mem);

  op = m.next_op();
  EXPECT_EQ(op.kind, op_kind::read);
  EXPECT_EQ(op.where.where, space::race1);
  EXPECT_EQ(op.where.index, 1u);
  step(m, mem);

  op = m.next_op();
  EXPECT_EQ(op.kind, op_kind::write);
  EXPECT_EQ(op.where.where, space::race0);  // prefers 0
  EXPECT_EQ(op.where.index, 1u);
  EXPECT_EQ(op.value, 1u);
  step(m, mem);

  op = m.next_op();
  EXPECT_EQ(op.kind, op_kind::read);
  EXPECT_EQ(op.where.where, space::race1);  // rival array
  EXPECT_EQ(op.where.index, 0u);            // r - 1
  step(m, mem);

  EXPECT_EQ(m.steps(), 4u);
  EXPECT_EQ(m.round(), 2u);  // prefix a1[0] = 1 prevented a round-1 decision
  EXPECT_FALSE(m.done());
}

TEST(LeanMachine, SoloProcessDecidesAtRoundTwoInEightOps) {
  lean_machine m(1);
  sim_memory mem;
  while (!m.done()) step(m, mem);
  EXPECT_EQ(m.decision(), 1);
  EXPECT_EQ(m.steps(), 8u);
  EXPECT_EQ(m.round(), 2u);
}

TEST(LeanMachine, Lemma3UnanimousPairDecidesInEightOps) {
  // Two processes, both input 0, any interleaving: both decide 0 in 8 ops.
  for (int pattern = 0; pattern < 4; ++pattern) {
    sim_memory mem;
    lean_machine a(0), b(0);
    // Four deterministic interleavings: alternation phase shifts.
    int toggle = pattern;
    while (!a.done() || !b.done()) {
      lean_machine& m = (toggle++ % 2 == 0 && !a.done()) || b.done() ? a : b;
      step(m, mem, &m == &a ? 0 : 1);
    }
    EXPECT_EQ(a.decision(), 0);
    EXPECT_EQ(b.decision(), 0);
    EXPECT_EQ(a.steps(), 8u);
    EXPECT_EQ(b.steps(), 8u);
  }
}

TEST(LeanMachine, AdoptsRivalPreferenceWhenBehind) {
  sim_memory mem;
  // A rival already set a1[1] (and nothing is in a0[1]).
  mem.poke({space::race1, 1}, 1);
  lean_machine m(0);
  step(m, mem);  // reads a0[1] = 0
  step(m, mem);  // reads a1[1] = 1 -> must adopt preference 1
  EXPECT_EQ(m.preference(), 1);
  EXPECT_EQ(m.preference_switches(), 1u);
  const operation op = m.next_op();
  EXPECT_EQ(op.where.where, space::race1);  // writes the adopted side
}

TEST(LeanMachine, KeepsPreferenceWhenBothSet) {
  sim_memory mem;
  mem.poke({space::race0, 1}, 1);
  mem.poke({space::race1, 1}, 1);
  lean_machine m(0);
  step(m, mem);
  step(m, mem);
  EXPECT_EQ(m.preference(), 0);
  EXPECT_EQ(m.preference_switches(), 0u);
}

TEST(LeanMachine, KeepsPreferenceWhenBothClear) {
  sim_memory mem;
  lean_machine m(1);
  step(m, mem);
  step(m, mem);
  EXPECT_EQ(m.preference(), 1);
}

TEST(LeanMachine, DoesNotAdoptOwnSide) {
  sim_memory mem;
  mem.poke({space::race0, 1}, 1);  // own side already marked by a teammate
  lean_machine m(0);
  step(m, mem);
  step(m, mem);
  EXPECT_EQ(m.preference(), 0);
  EXPECT_EQ(m.preference_switches(), 0u);
}

TEST(LeanMachine, DecidesWhenRivalPrevRoundClear) {
  sim_memory mem;
  lean_machine m(1);
  // Round 1: a1[0] prefix = 1, no decision. Round 2: a0[1] still 0 -> decide.
  for (int i = 0; i < 8; ++i) step(m, mem);
  EXPECT_TRUE(m.done());
  EXPECT_EQ(m.decision(), 1);
}

TEST(LeanMachine, ContinuesWhenRivalPrevRoundSet) {
  sim_memory mem;
  // Both arrays already marked through round 2: the machine keeps its
  // preference (no side is strictly ahead) and cannot decide at round 2
  // because the rival's round-1 cell is set.
  mem.poke({space::race0, 1}, 1);
  mem.poke({space::race0, 2}, 1);
  mem.poke({space::race1, 1}, 1);
  mem.poke({space::race1, 2}, 1);
  lean_machine m(1);
  for (int i = 0; i < 8; ++i) step(m, mem);
  EXPECT_FALSE(m.done());
  EXPECT_EQ(m.preference(), 1);
  EXPECT_EQ(m.round(), 3u);
}

TEST(LeanMachine, ExhaustsAtMaxRound) {
  sim_memory mem;
  // Keep both arrays marked ahead so the machine neither adopts nor decides.
  for (std::uint64_t r = 1; r <= 5; ++r) {
    mem.poke({space::race0, r}, 1);
    mem.poke({space::race1, r}, 1);
  }
  lean_machine m(1, /*max_round=*/3);
  while (!m.exhausted()) step(m, mem);
  EXPECT_EQ(m.round(), 3u);
  EXPECT_FALSE(m.done());
  EXPECT_EQ(m.steps(), 12u);  // 3 rounds * 4 ops
  EXPECT_THROW(m.next_op(), std::logic_error);
  EXPECT_THROW(m.apply(0), std::logic_error);
}

TEST(LeanMachine, ZeroMaxRoundExhaustsImmediately) {
  lean_machine m(0, 0);
  EXPECT_TRUE(m.exhausted());
}

TEST(LeanMachine, MisuseAfterDecisionThrows) {
  sim_memory mem;
  lean_machine m(0);
  while (!m.done()) step(m, mem);
  EXPECT_THROW(m.next_op(), std::logic_error);
  EXPECT_THROW(m.apply(0), std::logic_error);
}

TEST(LeanMachine, LeanRoundMatchesRound) {
  lean_machine m(0);
  EXPECT_EQ(m.lean_round(), m.round());
}

TEST(LeanMachine, TwoSplitProcessesLockstepNeverDecide) {
  // The FLP-style bad schedule: strict alternation keeps the racers tied
  // forever. Safety holds but termination does not — this is exactly why the
  // paper needs noise. We verify 100 rounds of non-termination.
  sim_memory mem;
  lean_machine a(0), b(1);
  for (int round = 0; round < 100; ++round) {
    for (int op = 0; op < 4; ++op) {
      step(a, mem, 0);
      step(b, mem, 1);
    }
    ASSERT_FALSE(a.done());
    ASSERT_FALSE(b.done());
  }
  EXPECT_EQ(a.round(), 101u);
  EXPECT_EQ(b.round(), 101u);
}

TEST(LeanMachine, StaggeredStartLetsLeaderWin) {
  // If one process runs alone for two full rounds, it decides; the laggard
  // then adopts and decides one round later (Lemma 4b).
  sim_memory mem;
  lean_machine fast(1), slow(0);
  for (int i = 0; i < 8; ++i) step(fast, mem, 0);
  EXPECT_TRUE(fast.done());
  EXPECT_EQ(fast.decision(), 1);
  while (!slow.done()) step(slow, mem, 1);
  EXPECT_EQ(slow.decision(), 1);
  EXPECT_LE(slow.round(), fast.round() + 1);
}

}  // namespace
}  // namespace leancon
