// Id consensus (paper footnote 2): a (lg n)-depth tournament of binary
// consensus instances agreeing on the id of some active process.
//
// Checked properties, across sizes, schedules, and seeds:
//   * Agreement: every process decides the same id.
//   * Validity: the decided id is in [0, n) (every id is a live proposer).
//   * Termination under noisy scheduling and under random interleavings.
//   * The per-subtree candidate invariant (indirectly: disagreement or a
//     missing announcement would throw / fail agreement).
#include "id/id_machine.h"

#include <gtest/gtest.h>

#include <memory>

#include "memory/sim_memory.h"
#include "noise/catalog.h"
#include "sim/simulator.h"
#include "test_util.h"
#include "util/rng.h"

namespace leancon {
namespace {

std::vector<std::unique_ptr<consensus_machine>> make_id_machines(
    std::size_t n, std::uint64_t seed, id_params params = {}) {
  std::vector<std::unique_ptr<consensus_machine>> machines;
  for (std::size_t i = 0; i < n; ++i) {
    machines.push_back(
        std::make_unique<id_machine>(i, n, params, rng(seed, i + 1)));
  }
  return machines;
}

TEST(IdConsensus, RejectsBadConfig) {
  EXPECT_THROW(id_machine(0, 0, {}, rng(1)), std::invalid_argument);
  EXPECT_THROW(id_machine(3, 3, {}, rng(1)), std::invalid_argument);
  id_params tiny;
  tiny.node_stride = 4;
  tiny.r_max = 64;
  EXPECT_THROW(id_machine(0, 2, tiny, rng(1)), std::invalid_argument);
}

TEST(IdConsensus, SingleProcessDecidesItself) {
  id_machine m(0, 1, {}, rng(1));
  EXPECT_TRUE(m.done());
  EXPECT_EQ(m.decision(), 0);
  EXPECT_EQ(m.steps(), 0u);
}

TEST(IdConsensus, SoloRunnerWinsItsOwnId) {
  // One process of an 8-id space running alone must elect itself.
  sim_memory mem;
  id_machine m(5, 8, {}, rng(3));
  std::uint64_t guard = 0;
  while (!m.done() && guard++ < 100000) {
    const operation op = m.next_op();
    m.apply(mem.execute(0, op));
  }
  ASSERT_TRUE(m.done());
  EXPECT_EQ(m.decision(), 5);
  EXPECT_EQ(m.levels(), 3u);
}

TEST(IdConsensus, LevelsMatchCeilLog2) {
  EXPECT_EQ(id_machine(0, 2, {}, rng(1)).levels(), 1u);
  EXPECT_EQ(id_machine(0, 3, {}, rng(1)).levels(), 2u);
  EXPECT_EQ(id_machine(0, 4, {}, rng(1)).levels(), 2u);
  EXPECT_EQ(id_machine(0, 5, {}, rng(1)).levels(), 3u);
  EXPECT_EQ(id_machine(0, 16, {}, rng(1)).levels(), 4u);
}

class IdConsensusSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(IdConsensusSizes, RandomSchedulesAgreeOnALiveId) {
  const std::size_t n = GetParam();
  rng sched(100 + n);
  for (int trial = 0; trial < 30; ++trial) {
    sim_memory mem;
    auto machines = make_id_machines(n, 500 + static_cast<std::uint64_t>(trial) * 97 + n);
    ASSERT_TRUE(
        testing::random_schedule_run(machines, mem, sched, 10'000'000))
        << "n=" << n << " trial=" << trial;
    const int winner = machines[0]->decision();
    ASSERT_GE(winner, 0);
    ASSERT_LT(winner, static_cast<int>(n));
    for (const auto& m : machines) ASSERT_EQ(m->decision(), winner);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, IdConsensusSizes,
                         ::testing::Values(2, 3, 4, 5, 7, 8, 16),
                         [](const ::testing::TestParamInfo<std::size_t>& i) {
                           return "n" + std::to_string(i.param);
                         });

TEST(IdConsensus, AlternatingScheduleTerminates) {
  for (int trial = 0; trial < 10; ++trial) {
    sim_memory mem;
    auto machines = make_id_machines(2, 900 + trial);
    ASSERT_TRUE(
        testing::pattern_schedule_run(machines, mem, {0, 1}, 5'000'000));
    ASSERT_EQ(machines[0]->decision(), machines[1]->decision());
  }
}

TEST(IdConsensus, UnderNoisySchedulerViaSimulator) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim_config config;
    config.inputs.assign(8, 0);  // inputs unused; ids come from pids
    config.sched = figure1_params(make_exponential(1.0));
    config.check_invariants = false;  // id tree reuses race spaces per node
    config.seed = seed;
    config.factory = [](int pid, int /*input*/, rng gen) {
      return std::make_unique<id_machine>(static_cast<std::uint64_t>(pid), 8,
                                          id_params{}, gen);
    };
    const auto result = simulate(config);
    ASSERT_TRUE(result.all_live_decided) << "seed " << seed;
    const int winner = result.decision;
    ASSERT_GE(winner, 0);
    ASSERT_LT(winner, 8);
    for (const auto& p : result.processes) ASSERT_EQ(p.decision, winner);
  }
}

TEST(IdConsensus, SurvivorsAgreeUnderHaltingFailures) {
  // Random halting failures thin the tournament; survivors must still agree
  // on a single id in [0, n).
  int decided_trials = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sim_config config;
    config.inputs.assign(8, 0);
    config.sched = figure1_params(make_exponential(1.0));
    config.sched.halt_probability = 0.002;
    config.check_invariants = false;
    config.seed = 9200 + seed;
    config.factory = [](int pid, int, rng gen) {
      return std::make_unique<id_machine>(static_cast<std::uint64_t>(pid), 8,
                                          id_params{}, gen);
    };
    const auto result = simulate(config);
    if (!result.any_decided) continue;
    ++decided_trials;
    int winner = -1;
    for (const auto& p : result.processes) {
      if (!p.decided) continue;
      ASSERT_GE(p.decision, 0);
      ASSERT_LT(p.decision, 8);
      if (winner == -1) winner = p.decision;
      ASSERT_EQ(p.decision, winner);
    }
  }
  EXPECT_GT(decided_trials, 8);
}

TEST(IdConsensus, WinnersSpreadAcrossIds) {
  // Different seeds should elect different winners: the tournament is not
  // biased to a single id under symmetric random scheduling.
  rng sched(42);
  std::set<int> winners;
  for (int trial = 0; trial < 40; ++trial) {
    sim_memory mem;
    auto machines = make_id_machines(4, 7000 + trial);
    ASSERT_TRUE(testing::random_schedule_run(machines, mem, sched));
    winners.insert(machines[0]->decision());
  }
  EXPECT_GT(winners.size(), 1u);
}

TEST(IdConsensus, StepsAreCounted) {
  sim_memory mem;
  id_machine m(0, 4, {}, rng(9));
  std::uint64_t count = 0;
  while (!m.done()) {
    m.apply(mem.execute(0, m.next_op()));
    ++count;
  }
  EXPECT_EQ(m.steps(), count);
  EXPECT_GT(count, 0u);
}

TEST(IdConsensus, MisuseThrows) {
  id_machine m(0, 1, {}, rng(1));
  EXPECT_TRUE(m.done());
  EXPECT_THROW(m.next_op(), std::logic_error);
  EXPECT_THROW(m.apply(0), std::logic_error);
}

}  // namespace
}  // namespace leancon
