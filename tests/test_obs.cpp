// Tests for the observability layer (src/obs/): ring buffering and wrap
// accounting, span nesting and monotonicity, Chrome trace-event JSON
// structure, heartbeat line schema, counters — and the two identity
// contracts the instrumentation must uphold: with tracing DISABLED the
// fig1 smoke grid reproduces the committed BENCH baseline's series bytes
// exactly, and with tracing ENABLED trial results do not change.
#include "obs/obs.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "exp/campaign.h"
#include "exp/worker_pool.h"
#include "harness.h"
#include "noise/catalog.h"
#include "obs/heartbeat.h"
#include "obs/trace_json.h"
#include "scenario/scenario.h"
#include "util/json.h"

namespace leancon {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// RAII tracing toggle so a failing assertion cannot leak tracing into
/// later tests.
struct scoped_tracing {
  explicit scoped_tracing(bool on) { obs::set_enabled(on); }
  ~scoped_tracing() {
    obs::set_enabled(false);
    obs::drain();
  }
};

TEST(ObsRing, WrapKeepsNewestEventsInOrderAndCountsDropped) {
  obs::drain();  // discard anything earlier tests left buffered
  constexpr std::uint64_t kTotal = 200;
  constexpr std::uint64_t kCapacity = 64;
  obs::set_ring_capacity(kCapacity);
  {
    scoped_tracing on(true);
    // A fresh thread gets a fresh ring at the just-set capacity (the
    // capacity only applies to rings created after the call).
    std::thread writer([] {
      for (std::uint64_t i = 0; i < kTotal; ++i) {
        obs::mark("test.wrap", i);
      }
    });
    writer.join();
    const obs::drained_events drained = obs::drain();

    std::vector<std::uint64_t> payloads;
    for (const auto& e : drained.events) {
      if (e.kind == obs::event_kind::mark && e.name != nullptr &&
          std::string_view(e.name) == "test.wrap") {
        payloads.push_back(e.a);
      }
    }
    // The ring wraps: only the newest kCapacity events survive, in append
    // order, and the overwritten ones are accounted as dropped.
    ASSERT_EQ(payloads.size(), kCapacity);
    for (std::uint64_t i = 0; i < kCapacity; ++i) {
      EXPECT_EQ(payloads[i], kTotal - kCapacity + i) << i;
    }
    EXPECT_EQ(drained.dropped, kTotal - kCapacity);
  }
}

TEST(ObsRing, DrainClearsAndSecondDrainIsEmpty) {
  obs::drain();
  {
    scoped_tracing on(true);
    obs::mark("test.clear", 1);
    const auto first = obs::drain();
    bool found = false;
    for (const auto& e : first.events) {
      found = found || (e.name != nullptr &&
                        std::string_view(e.name) == "test.clear");
    }
    EXPECT_TRUE(found);
    const auto second = obs::drain();
    for (const auto& e : second.events) {
      EXPECT_TRUE(e.name == nullptr ||
                  std::string_view(e.name) != "test.clear");
    }
  }
}

TEST(ObsSpan, NestedSpansStayWithinParentAndAreMonotone) {
  obs::drain();
  {
    scoped_tracing on(true);
    {
      obs::span outer("test.outer");
      {
        obs::span inner("test.inner");
        obs::mark("test.inside");
      }
    }
    const auto drained = obs::drain();
    const obs::event* outer_ev = nullptr;
    const obs::event* inner_ev = nullptr;
    for (const auto& e : drained.events) {
      if (e.kind != obs::event_kind::span || e.name == nullptr) continue;
      if (std::string_view(e.name) == "test.outer") outer_ev = &e;
      if (std::string_view(e.name) == "test.inner") inner_ev = &e;
    }
    ASSERT_NE(outer_ev, nullptr);
    ASSERT_NE(inner_ev, nullptr);
    // The inner span nests inside the outer one on the wall clock.
    EXPECT_GE(inner_ev->ts_ns, outer_ev->ts_ns);
    EXPECT_LE(inner_ev->ts_ns + inner_ev->dur_ns,
              outer_ev->ts_ns + outer_ev->dur_ns);
    // Spans end no later than "now" — the steady-clock regression guard:
    // a wall-clock (system_clock) regression would show up as spans that
    // jump around NTP adjustments.
    const std::uint64_t now = obs::now_ns();
    EXPECT_LE(outer_ev->ts_ns + outer_ev->dur_ns, now);
    EXPECT_LE(inner_ev->ts_ns + inner_ev->dur_ns, now);
  }
}

TEST(ObsClock, NowIsMonotoneNonDecreasing) {
  std::uint64_t last = obs::now_ns();
  for (int i = 0; i < 10000; ++i) {
    const std::uint64_t now = obs::now_ns();
    ASSERT_GE(now, last);
    last = now;
  }
}

TEST(ObsDrain, EventsAreTimestampOrdered) {
  obs::drain();
  {
    scoped_tracing on(true);
    std::thread other([] {
      for (int i = 0; i < 50; ++i) obs::mark("test.order.other", i);
    });
    for (int i = 0; i < 50; ++i) obs::mark("test.order.main", i);
    other.join();
    const auto drained = obs::drain();
    for (std::size_t i = 1; i < drained.events.size(); ++i) {
      ASSERT_GE(drained.events[i].ts_ns, drained.events[i - 1].ts_ns) << i;
    }
  }
}

TEST(ObsCounters, RegistryIsStableAndSnapshotSorted) {
  auto* c1 = obs::counter("test.counter.alpha");
  auto* c2 = obs::counter("test.counter.beta");
  ASSERT_NE(c1, nullptr);
  ASSERT_NE(c2, nullptr);
  EXPECT_EQ(c1, obs::counter("test.counter.alpha"));
  const std::uint64_t before = c1->load();
  c1->fetch_add(3);
  c2->fetch_add(1);
  const auto snapshot = obs::counter_snapshot();
  bool found = false;
  for (std::size_t i = 0; i < snapshot.size(); ++i) {
    if (i > 0) EXPECT_LT(snapshot[i - 1].first, snapshot[i].first);
    if (snapshot[i].first == "test.counter.alpha") {
      found = true;
      EXPECT_EQ(snapshot[i].second, before + 3);
    }
  }
  EXPECT_TRUE(found);
}

TEST(ObsTraceJson, OutputRoundTripsThroughJsonParser) {
  obs::drain();
  std::string text;
  {
    scoped_tracing on(true);
    obs::emit(obs::event_kind::trial_begin, 0.0, 4, 7);
    obs::emit(obs::event_kind::round_advance, 1.5, 2, 3);
    obs::emit(obs::event_kind::decision, 2.0, 1, 0, 2);
    { obs::span s("test.json.span"); }
    obs::counter("test.json.counter")->fetch_add(5);
    const auto drained = obs::drain();
    text = obs::trace_json(drained.events, obs::counter_snapshot());
  }

  const json::value doc = json::parse(text);
  ASSERT_TRUE(doc.is(json::value::kind::object));
  const json::value* events = doc.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is(json::value::kind::array));
  ASSERT_FALSE(events->items.empty());

  bool saw_instant = false, saw_span = false, saw_counter = false;
  for (const auto& ev : events->items) {
    ASSERT_TRUE(ev.is(json::value::kind::object));
    const json::value* ph = ev.find("ph");
    ASSERT_NE(ph, nullptr);
    ASSERT_NE(ev.find("name"), nullptr);
    ASSERT_NE(ev.find("pid"), nullptr);
    if (ph->str == "i") {
      saw_instant = true;
      EXPECT_NE(ev.find("ts"), nullptr);
      EXPECT_NE(ev.find("args"), nullptr);
    } else if (ph->str == "X") {
      saw_span = true;
      EXPECT_NE(ev.find("dur"), nullptr);
    } else if (ph->str == "C") {
      saw_counter = true;
      const json::value* args = ev.find("args");
      ASSERT_NE(args, nullptr);
      EXPECT_NE(args->find("value"), nullptr);
    }
  }
  EXPECT_TRUE(saw_instant);
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_counter);
}

TEST(ObsHeartbeat, LinesCarryTheDocumentedSchema) {
  const std::string path = testing::TempDir() + "obs_heartbeat_test.jsonl";
  std::remove(path.c_str());
  {
    obs::heartbeat hb(path, 0.02);
    hb.set_totals(3, 300);
    hb.set_identity("2/5", obs::argv_fingerprint({"worker", "--shard=2/5"}));
    obs::set_status("cell A");
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
  }  // destructor emits a final line and joins the thread
  std::istringstream lines(read_file(path));
  std::string line;
  std::string last;
  std::size_t count = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const json::value hb = json::parse(line);
    ASSERT_TRUE(hb.is(json::value::kind::object)) << line;
    for (const char* field :
         {"uptime_s", "cells_done", "cells_total", "trials_done",
          "trials_total", "rss_kb", "pid"}) {
      const json::value* v = hb.find(field);
      ASSERT_NE(v, nullptr) << field;
      EXPECT_TRUE(v->is(json::value::kind::number)) << field;
    }
    // Rate and ETA are number-or-null: null stands in for the undefined
    // values (no progress yet / stalled), never bare inf or nan tokens.
    for (const char* field : {"trials_per_sec", "eta_s"}) {
      const json::value* v = hb.find(field);
      ASSERT_NE(v, nullptr) << field;
      EXPECT_TRUE(v->is(json::value::kind::number) ||
                  v->is(json::value::kind::null))
          << field << ": " << line;
    }
    for (const char* field : {"current_cell", "shard", "argv_hash"}) {
      const json::value* v = hb.find(field);
      ASSERT_NE(v, nullptr) << field;
      EXPECT_TRUE(v->is(json::value::kind::string)) << field;
    }
    EXPECT_EQ(hb.find("pid")->num,
              static_cast<double>(obs::own_pid()));
    last = line;
    ++count;
  }
  // At least the immediate line plus the final line.
  EXPECT_GE(count, 2u);
  // The first line may precede set_totals (it is emitted immediately so
  // short runs still report); the final line must carry the totals and the
  // identity set after construction.
  const json::value final_line = json::parse(last);
  EXPECT_EQ(final_line.find("cells_total")->num, 3.0);
  EXPECT_EQ(final_line.find("trials_total")->num, 300.0);
  EXPECT_EQ(final_line.find("shard")->str, "2/5");
  EXPECT_EQ(final_line.find("argv_hash")->str,
            obs::argv_fingerprint({"worker", "--shard=2/5"}));
}

TEST(ObsHeartbeat, UndefinedRateAndEtaEmitNullNeverInfOrNan) {
  // A worker that has made no progress has an undefined ETA: trials
  // remain but the rate is zero. The line must carry null there — a bare
  // "inf"/"nan" token would make the whole line unparseable to every
  // strict JSON reader (trace_validate.py now rejects those tokens).
  const std::string path = testing::TempDir() + "obs_heartbeat_null.jsonl";
  std::remove(path.c_str());
  {
    obs::heartbeat hb(path, 0.02);
    hb.set_totals(3, 300);  // totals known, zero trials done
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  const std::string text = read_file(path);
  EXPECT_EQ(text.find("inf"), std::string::npos) << text;
  EXPECT_EQ(text.find("nan"), std::string::npos) << text;
  std::istringstream lines(text);
  std::string line;
  std::string last;
  while (std::getline(lines, line)) {
    if (!line.empty()) last = line;
  }
  ASSERT_FALSE(last.empty());
  const json::value hb = json::parse(last);
  ASSERT_NE(hb.find("eta_s"), nullptr);
  EXPECT_TRUE(hb.find("eta_s")->is(json::value::kind::null)) << last;
  // The rate itself is well-defined (zero trials over positive uptime).
  ASSERT_NE(hb.find("trials_per_sec"), nullptr);
  EXPECT_TRUE(hb.find("trials_per_sec")->is(json::value::kind::number))
      << last;
}

// --- Identity contracts ----------------------------------------------------

std::vector<campaign_cell> fig1_smoke_grid() {
  // The exact grid of the committed smoke baseline (bench/fig1_mean_round
  // with --nmax=100 --trials=20 --op-budget=200000 --seed=20000625).
  const auto catalog = figure1_catalog();
  const std::uint64_t seed = 20000625;
  std::vector<campaign_cell> cells;
  for (const std::uint64_t n : {1u, 10u, 100u}) {
    for (std::size_t d = 0; d < catalog.size(); ++d) {
      const std::uint64_t per_trial = n * 48 + 8;
      campaign_cell cell;
      cell.scenario = "figure1-" + catalog[d].key;
      cell.params.n = n;
      cell.params.seed = seed + d * 1000003 + n;
      cell.trials = std::max<std::uint64_t>(
          6, std::min<std::uint64_t>(20, 200000 / per_trial));
      cells.push_back(std::move(cell));
    }
  }
  return cells;
}

/// The `"series": [...]` section of a BENCH json text — the deterministic
/// part (counters and seconds carry wall-clock values).
std::string series_section(const std::string& text) {
  const std::size_t begin = text.find("\"series\"");
  const std::size_t end = text.find("\"counters\"");
  EXPECT_NE(begin, std::string::npos);
  EXPECT_NE(end, std::string::npos);
  return text.substr(begin, end - begin);
}

TEST(ObsIdentity, TracingDisabledReproducesBaselineSeriesBytes) {
  // Tracing compiled in but DISABLED must leave the committed golden
  // byte-identical: rebuild the fig1 smoke grid, emit the same series
  // through the same serializer, and compare the series section bytes
  // against bench/baselines/BENCH_fig1_mean_round.json.
  ASSERT_FALSE(obs::enabled());
  const auto cells = fig1_smoke_grid();
  worker_pool pool(4);
  campaign_options opts;
  opts.threads = 4;
  opts.pool = &pool;
  const auto results = run_campaign(cells, opts);

  const auto catalog = figure1_catalog();
  bench::results res;
  res.bench = "fig1_mean_round";
  std::vector<bench::series*> json_series;
  for (const auto& entry : catalog) {
    res.series_list.push_back({"mean_round", entry.dist->name(), {}});
    json_series.push_back(&res.series_list.back());
  }
  for (std::size_t i = 0; i < results.size(); ++i) {
    const std::size_t d = i % catalog.size();
    const auto& m = results[i].metrics;
    json_series[d]
        ->at(static_cast<double>(results[i].cell.params.n))
        .set("mean_round", m.get("mean_round"))
        .set("ci95", m.get("round_ci95"))
        .set("trials", m.get("trials"));
  }

  const std::string baseline =
      read_file(std::string(LEANCON_SOURCE_DIR) +
                "/bench/baselines/BENCH_fig1_mean_round.json");
  EXPECT_EQ(series_section(bench::to_json(res)), series_section(baseline));
}

TEST(ObsIdentity, TracingEnabledDoesNotChangeTrialResults) {
  // Tracing ON must not perturb results either: the simulator falls back
  // from the pipelined loop to the general loop, whose results are
  // bit-identical by the documented loop-equivalence contract. Checked
  // across all backend families.
  const std::vector<std::pair<std::string, std::uint64_t>> presets = {
      {"figure1-exp1", 16}, {"mp-abd", 4},         {"mutex-noise", 4},
      {"hybrid-quantum", 4}, {"check-lean-n2", 2},
  };
  for (const auto& [preset, n] : presets) {
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      scenario_params params;
      params.n = n;
      params.seed = seed;
      obs::set_enabled(false);
      const trial_outcome off = run_scenario_trial(preset, params, seed);
      trial_outcome on;
      {
        scoped_tracing tracing(true);
        on = run_scenario_trial(preset, params, seed);
      }
      EXPECT_EQ(off.decided, on.decided) << preset << " seed " << seed;
      EXPECT_EQ(off.violation, on.violation) << preset << " seed " << seed;
      EXPECT_EQ(off.backup, on.backup) << preset << " seed " << seed;
      const auto& eo = off.metrics.entries();
      const auto& en = on.metrics.entries();
      ASSERT_EQ(eo.size(), en.size()) << preset << " seed " << seed;
      for (std::size_t i = 0; i < eo.size(); ++i) {
        EXPECT_EQ(eo[i].name, en[i].name) << preset;
        if (eo[i].is_counter) {
          EXPECT_EQ(eo[i].total, en[i].total) << preset << " " << eo[i].name;
        } else {
          EXPECT_EQ(eo[i].stats.count(), en[i].stats.count())
              << preset << " " << eo[i].name;
          if (eo[i].stats.count() > 0) {
            EXPECT_EQ(eo[i].stats.mean(), en[i].stats.mean())
                << preset << " " << eo[i].name;
            EXPECT_EQ(eo[i].stats.min(), en[i].stats.min())
                << preset << " " << eo[i].name;
            EXPECT_EQ(eo[i].stats.max(), en[i].stats.max())
                << preset << " " << eo[i].name;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace leancon
