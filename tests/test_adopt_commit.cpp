#include "backup/adopt_commit.h"

#include <gtest/gtest.h>

#include <memory>

#include "memory/sim_memory.h"
#include "test_util.h"
#include "util/rng.h"

namespace leancon {
namespace {

using verdict = adopt_commit_machine::verdict;

void step(adopt_commit_machine& m, sim_memory& mem, int pid = 0) {
  const operation op = m.next_op();
  m.apply(mem.execute(pid, op));
}

TEST(AdoptCommit, RejectsNonBitInput) {
  EXPECT_THROW(adopt_commit_machine(1, 2), std::invalid_argument);
}

TEST(AdoptCommit, SoloProcessCommitsInFourOps) {
  sim_memory mem;
  adopt_commit_machine m(1, 1);
  while (!m.done()) step(m, mem);
  EXPECT_EQ(m.outcome(), verdict::commit);
  EXPECT_EQ(m.value(), 1);
  EXPECT_EQ(m.steps(), 4u);
}

TEST(AdoptCommit, SequentialSameInputsBothCommit) {
  sim_memory mem;
  adopt_commit_machine a(1, 0), b(1, 0);
  while (!a.done()) step(a, mem, 0);
  while (!b.done()) step(b, mem, 1);
  EXPECT_EQ(a.outcome(), verdict::commit);
  EXPECT_EQ(b.outcome(), verdict::commit);
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(b.value(), 0);
}

TEST(AdoptCommit, SequentialConflictSecondAdoptsFirst) {
  sim_memory mem;
  adopt_commit_machine a(1, 0), b(1, 1);
  while (!a.done()) step(a, mem, 0);
  EXPECT_EQ(a.outcome(), verdict::commit);
  while (!b.done()) step(b, mem, 1);
  // b saw the conflicting doorway and must adopt a's committed value.
  EXPECT_EQ(b.outcome(), verdict::adopt);
  EXPECT_EQ(b.value(), 0);
}

TEST(AdoptCommit, OutcomeBeforeDoneThrows) {
  adopt_commit_machine m(1, 0);
  EXPECT_THROW(m.outcome(), std::logic_error);
  EXPECT_THROW(m.value(), std::logic_error);
}

TEST(AdoptCommit, MisuseAfterDoneThrows) {
  sim_memory mem;
  adopt_commit_machine m(1, 0);
  while (!m.done()) step(m, mem);
  EXPECT_THROW(m.next_op(), std::logic_error);
  EXPECT_THROW(m.apply(0), std::logic_error);
}

TEST(AdoptCommit, DistinctRoundsAreIndependentInstances) {
  sim_memory mem;
  adopt_commit_machine a(1, 0), b(2, 1);
  while (!a.done()) step(a, mem, 0);
  while (!b.done()) step(b, mem, 1);
  // Different rounds touch different registers: both commit their own value.
  EXPECT_EQ(a.outcome(), verdict::commit);
  EXPECT_EQ(b.outcome(), verdict::commit);
  EXPECT_EQ(a.value(), 0);
  EXPECT_EQ(b.value(), 1);
}

// ---------------------------------------------------------------------------
// Randomized interleavings: coherence / convergence / validity at scale.
// ---------------------------------------------------------------------------

struct ac_random_case {
  std::size_t n;
  std::uint64_t seed;
};

class AdoptCommitRandom : public ::testing::TestWithParam<ac_random_case> {};

TEST_P(AdoptCommitRandom, SafetyUnderRandomInterleavings) {
  const auto [n, seed] = GetParam();
  rng gen(seed);
  for (int trial = 0; trial < 200; ++trial) {
    sim_memory mem;
    std::vector<adopt_commit_machine> machines;
    std::vector<int> inputs;
    for (std::size_t i = 0; i < n; ++i) {
      inputs.push_back(static_cast<int>(gen.below(2)));
      machines.emplace_back(1, inputs.back());
    }
    // Random interleaving until all done.
    std::vector<std::size_t> pending(n);
    for (std::size_t i = 0; i < n; ++i) pending[i] = i;
    while (!pending.empty()) {
      const std::size_t slot = gen.below(pending.size());
      const std::size_t idx = pending[slot];
      step(machines[idx], mem, static_cast<int>(idx));
      if (machines[idx].done()) {
        pending[slot] = pending.back();
        pending.pop_back();
      }
    }

    int committed = -1;
    bool unanimous = true;
    for (int b : inputs) unanimous = unanimous && b == inputs[0];
    for (std::size_t i = 0; i < n; ++i) {
      const auto& m = machines[i];
      // Validity: outputs are inputs.
      bool present = false;
      for (int b : inputs) present = present || b == m.value();
      ASSERT_TRUE(present);
      if (m.outcome() == verdict::commit) {
        ASSERT_TRUE(committed == -1 || committed == m.value());
        committed = m.value();
      }
      // Convergence.
      if (unanimous) {
        ASSERT_EQ(m.outcome(), verdict::commit);
        ASSERT_EQ(m.value(), inputs[0]);
      }
    }
    // Coherence: a commit forces every return to carry the same value.
    if (committed != -1) {
      for (const auto& m : machines) ASSERT_EQ(m.value(), committed);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sizes, AdoptCommitRandom,
    ::testing::Values(ac_random_case{2, 11}, ac_random_case{3, 22},
                      ac_random_case{5, 33}, ac_random_case{8, 44},
                      ac_random_case{16, 55}),
    [](const ::testing::TestParamInfo<ac_random_case>& info) {
      return "n" + std::to_string(info.param.n);
    });

}  // namespace
}  // namespace leancon
