// The src/check/ subsystem itself: hasher and violation-sink semantics,
// explorer bounds/frontiers/partial-order reduction on a toy system with
// closed-form counts, golden exact state counts for the real protocol
// systems, frontier-order and POR determinism properties across every
// registered preset, and the fault-injection violation paths that prove
// each family's invariants have teeth.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "check/checkable.h"
#include "check/explorer.h"
#include "check/presets.h"
#include "check/systems.h"
#include "memory/register_model.h"

namespace leancon::check {
namespace {

// ---------------------------------------------------------------------------
// state_hasher

TEST(StateHasher, IsDeterministic) {
  state_hasher a, b;
  for (std::uint64_t w : {3u, 1u, 4u, 1u, 5u}) {
    a.word(w);
    b.word(w);
  }
  EXPECT_EQ(a.digest(), b.digest());
}

TEST(StateHasher, IsOrderSensitive) {
  state_hasher ab, ba;
  ab.word(1);
  ab.word(2);
  ba.word(2);
  ba.word(1);
  EXPECT_NE(ab.digest(), ba.digest());
}

TEST(StateHasher, PrefixNeverEqualsExtension) {
  // The digest folds the word count, so feeding an extra zero word (the
  // classic length-extension hazard for plain chaining) changes it.
  state_hasher shorter, longer, empty;
  shorter.word(7);
  longer.word(7);
  longer.word(0);
  EXPECT_NE(shorter.digest(), longer.digest());
  EXPECT_NE(empty.digest(), shorter.digest());
  state_hasher zero;
  zero.word(0);
  EXPECT_NE(empty.digest(), zero.digest());
}

// ---------------------------------------------------------------------------
// violation_sink

TEST(ViolationSink, CountsEverythingKeepsFirstDistinct) {
  violation_sink sink(/*keep=*/2);
  EXPECT_TRUE(sink.empty());
  sink.report("a");
  sink.report("a");
  sink.report("b");
  sink.report("c");  // beyond keep: counted, not retained
  sink.report("a");
  EXPECT_FALSE(sink.empty());
  EXPECT_EQ(sink.total(), 5u);
  ASSERT_EQ(sink.distinct().size(), 2u);
  EXPECT_EQ(sink.distinct()[0], "a");
  EXPECT_EQ(sink.distinct()[1], "b");
}

// ---------------------------------------------------------------------------
// A toy checkable with closed-form counts: walk a (limit+1) x (limit+1)
// grid by incrementing x (action 0) or y (action 1); terminal at the far
// corner. Options make action 1 invisible (to test POR accounting) or
// report a violation on the diagonal (to test bounded dedup end to end).

struct grid_system final : checkable {
  std::uint32_t limit;
  bool y_invisible;
  bool violate_on_diagonal;
  std::uint32_t x = 0;
  std::uint32_t y = 0;

  grid_system(std::uint32_t limit, bool y_invisible, bool violate_on_diagonal)
      : limit(limit),
        y_invisible(y_invisible),
        violate_on_diagonal(violate_on_diagonal) {}

  std::unique_ptr<checkable> clone() const override {
    return std::make_unique<grid_system>(*this);
  }
  void enabled(std::vector<check_action>& out) const override {
    if (x < limit) out.push_back({0, false});
    if (y < limit) out.push_back({1, y_invisible});
  }
  void apply(std::uint32_t action_id) override {
    if (action_id == 0) {
      ++x;
    } else {
      ++y;
    }
  }
  void hash_state(state_hasher& h) const override {
    h.word(x);
    h.word(y);
  }
  void check(violation_sink& sink) const override {
    if (violate_on_diagonal && x == y && x > 0) {
      sink.report("diagonal parity " + std::to_string(x % 2));
    }
  }
  std::uint64_t progress() const override { return x + y; }
};

TEST(Explorer, ToyGridHasClosedFormCounts) {
  const grid_system sys(/*limit=*/4, false, false);
  const mc_verdict v = explore(sys);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.states_visited, 25u);      // (limit+1)^2
  EXPECT_EQ(v.transitions, 40u);         // 2 * limit * (limit+1)
  EXPECT_EQ(v.terminal_states, 1u);      // the far corner
  EXPECT_EQ(v.max_depth_seen, 8u);       // 2 * limit
  EXPECT_EQ(v.max_progress, 8u);
  EXPECT_EQ(v.deduped, 40u - 24u);       // transitions minus new states
  EXPECT_GT(v.frontier_peak, 0u);
}

TEST(Explorer, PartialOrderReductionFiresInvisibleActionsAlone) {
  const grid_system sys(/*limit=*/4, /*y_invisible=*/true, false);
  const mc_verdict v = explore(sys);
  EXPECT_TRUE(v.ok());
  // Whenever y can move it moves alone, so only the y-then-x staircase
  // survives: limit+1 states up, then limit more across.
  EXPECT_EQ(v.states_visited, 9u);   // 2 * limit + 1
  EXPECT_EQ(v.por_skipped, 4u);      // one sibling skipped per mixed state
  EXPECT_EQ(v.terminal_states, 1u);
}

TEST(Explorer, MaxStatesTruncates) {
  const grid_system sys(/*limit=*/10, false, false);
  explore_options opts;
  opts.max_states = 50;
  const mc_verdict v = explore(sys, opts);
  EXPECT_TRUE(v.truncated);
  EXPECT_FALSE(v.ok());
  EXPECT_LE(v.states_visited, 50u);
}

TEST(Explorer, MaxDepthTruncates) {
  const grid_system sys(/*limit=*/2, false, false);
  explore_options opts;
  opts.order = frontier_order::bfs;
  opts.max_depth = 2;
  const mc_verdict v = explore(sys, opts);
  EXPECT_TRUE(v.truncated);
  // BFS discovery depth is the grid distance, so exactly the six states
  // with x + y <= 2 are expanded.
  EXPECT_EQ(v.states_visited, 6u);
}

TEST(Explorer, ViolationsAreCountedInFullAndDedupedBounded) {
  const grid_system sys(/*limit=*/4, false, /*violate_on_diagonal=*/true);
  explore_options opts;
  opts.max_violation_reports = 1;
  const mc_verdict v = explore(sys, opts);
  EXPECT_FALSE(v.ok());
  EXPECT_FALSE(v.truncated);
  // check() fires once per visited diagonal state (1,1)..(4,4); only the
  // first distinct message (in discovery order) is retained under the
  // bound of 1.
  EXPECT_EQ(v.violations_total, 4u);
  ASSERT_EQ(v.violations.size(), 1u);
  EXPECT_TRUE(v.violations[0] == "diagonal parity 0" ||
              v.violations[0] == "diagonal parity 1")
      << v.violations[0];
}

// ---------------------------------------------------------------------------
// Golden exact counts for the real systems. These pin the joint state
// encodings: any change to what the protocols or the hasher consider
// "a state" shows up here as an exact-number diff.

TEST(GoldenCounts, LeanTwoProcessSplitRoundCapTwo) {
  explore_options full;
  full.por = false;
  const mc_verdict v = explore(*make_lean_system({0, 1}, /*round_cap=*/2), full);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.states_visited, 213u);
  EXPECT_EQ(v.transitions, 344u);
  EXPECT_EQ(v.terminal_states, 9u);
  // POR merges schedules without losing states here, only transitions.
  const mc_verdict r = explore(*make_lean_system({0, 1}, /*round_cap=*/2));
  EXPECT_EQ(r.states_visited, 213u);
  EXPECT_EQ(r.transitions, 326u);
  EXPECT_EQ(r.por_skipped, 18u);
  EXPECT_EQ(r.terminal_states, 9u);
}

TEST(GoldenCounts, AdoptCommitThreeProcesses) {
  explore_options full;
  full.por = false;
  const mc_verdict v = explore(*make_adopt_commit_system({0, 1, 1}), full);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.states_visited, 298u);
  EXPECT_EQ(v.transitions, 585u);
  EXPECT_EQ(v.terminal_states, 11u);
  const mc_verdict r = explore(*make_adopt_commit_system({0, 1, 1}));
  EXPECT_EQ(r.states_visited, 210u);
  EXPECT_EQ(r.terminal_states, 11u);
}

TEST(GoldenCounts, ConciliatorBothCoinOutcomes) {
  explore_options full;
  full.por = false;
  EXPECT_EQ(explore(*make_conciliator_system({0, 1}), full).states_visited,
            12u);
  EXPECT_EQ(explore(*make_conciliator_system({0, 0}), full).states_visited,
            9u);
  EXPECT_EQ(explore(*make_conciliator_system({0, 1, 1}), full).states_visited,
            46u);
}

TEST(GoldenCounts, AbdTwoProcessRegisterWorkload) {
  explore_options full;
  full.por = false;
  const mc_verdict v = explore(*make_abd_register_system(2), full);
  EXPECT_TRUE(v.ok());
  EXPECT_EQ(v.states_visited, 5204u);
  EXPECT_EQ(v.transitions, 14736u);
  EXPECT_EQ(v.terminal_states, 9u);
  EXPECT_EQ(v.max_progress, 4u);
  const mc_verdict r = explore(*make_abd_register_system(2));
  EXPECT_EQ(r.states_visited, 3089u);
  EXPECT_EQ(r.terminal_states, 9u);
}

// ---------------------------------------------------------------------------
// Determinism properties across every registered preset: the reachable set
// is frontier-order independent, and POR never grows it or changes the
// verdict. (Discovery depth and frontier peak ARE order-dependent, so they
// are deliberately not compared.)

void expect_same_reachable_set(const mc_verdict& a, const mc_verdict& b,
                               const std::string& what) {
  EXPECT_EQ(a.states_visited, b.states_visited) << what;
  EXPECT_EQ(a.transitions, b.transitions) << what;
  EXPECT_EQ(a.terminal_states, b.terminal_states) << what;
  EXPECT_EQ(a.violations_total, b.violations_total) << what;
  EXPECT_EQ(a.truncated, b.truncated) << what;
}

TEST(PresetProperties, FrontierOrderAndPorAreSoundOnEveryPreset) {
  for (const auto& preset : check_presets()) {
    // The abd presets have no input cube, so one seed covers them.
    const std::vector<std::uint64_t> seeds =
        preset.family == "abd" ? std::vector<std::uint64_t>{1}
                               : std::vector<std::uint64_t>{1, 6};
    for (std::uint64_t seed : seeds) {
      explore_options dfs_full = preset.options;
      dfs_full.por = false;
      dfs_full.order = frontier_order::dfs;
      explore_options bfs_full = dfs_full;
      bfs_full.order = frontier_order::bfs;

      const mc_verdict vd = explore(*preset.build(seed), dfs_full);
      const mc_verdict vb = explore(*preset.build(seed), bfs_full);
      expect_same_reachable_set(
          vd, vb, preset.key + " seed " + std::to_string(seed) + " dfs/bfs");

      const mc_verdict vp = explore(*preset.build(seed), preset.options);
      EXPECT_LE(vp.states_visited, vd.states_visited) << preset.key;
      EXPECT_EQ(vp.terminal_states, vd.terminal_states) << preset.key;
      EXPECT_EQ(vp.violations_total, vd.violations_total) << preset.key;
      EXPECT_EQ(vp.truncated, vd.truncated) << preset.key;
      EXPECT_EQ(vp.max_progress, vd.max_progress) << preset.key;
    }
  }
}

TEST(PresetProperties, PorStrictlyReducesWhereInvisibleActionsOccur) {
  // The reduction must actually bite somewhere, or it is dead code: the
  // ABD message layer is its richest target (stale acks, no-op updates).
  explore_options full;
  full.por = false;
  const mc_verdict vf = explore(*make_abd_register_system(2), full);
  const mc_verdict vp = explore(*make_abd_register_system(2));
  EXPECT_LT(vp.states_visited, vf.states_visited);
  EXPECT_GT(vp.por_skipped, 0u);
}

// ---------------------------------------------------------------------------
// Fault injection: seed the shared medium with corrupt contents and make
// sure each family's invariants actually fire. Without these, a check()
// that silently returns would still pass every happy-path test above.

TEST(FaultInjection, LeanArrayGapTripsLemma2) {
  // a0 = 0b101 has a gap at round 1: "a[r] = 1 for r <= round" fails.
  const auto v = explore(
      *make_lean_system_with_arrays({0, 1}, /*round_cap=*/2, 0b101, 0b1));
  EXPECT_GT(v.violations_total, 0u);
  ASSERT_FALSE(v.violations.empty());
  EXPECT_NE(v.violations[0].find("Lemma 2"), std::string::npos)
      << v.violations[0];
}

TEST(FaultInjection, LeanForeignBitTripsLemma2a) {
  // a1 shows progress past the virtual prefix with no process holding
  // input 1.
  const auto v = explore(
      *make_lean_system_with_arrays({0, 0}, /*round_cap=*/2, 0b1, 0b11));
  EXPECT_GT(v.violations_total, 0u);
  bool lemma2a = false;
  for (const auto& s : v.violations) {
    lemma2a = lemma2a || s.find("Lemma 2a") != std::string::npos;
  }
  EXPECT_TRUE(lemma2a);
}

TEST(FaultInjection, AdoptCommitSeededProposalTripsValidity) {
  // Doorway already crossed for 1 with proposal 1: the lone 0-input
  // process can return 1, which validity forbids.
  const auto v = explore(*make_adopt_commit_system_with_registers(
      {0}, /*door0=*/0, /*door1=*/1, encode_proposal(1)));
  EXPECT_GT(v.violations_total, 0u);
  bool validity = false;
  for (const auto& s : v.violations) {
    validity = validity || s.find("AC validity") != std::string::npos;
  }
  EXPECT_TRUE(validity);
}

TEST(FaultInjection, ConciliatorSeededRegisterTripsIntegrity) {
  const auto v = explore(
      *make_conciliator_system_with_register({0, 0}, encode_proposal(1)));
  EXPECT_GT(v.violations_total, 0u);
  ASSERT_FALSE(v.violations.empty());
  EXPECT_NE(v.violations[0].find("conciliator"), std::string::npos);
}

TEST(FaultInjection, AbdWeakQuorumTripsAtomicity) {
  const location reg{space::scratch, 0};
  std::vector<std::vector<operation>> scripts = {
      {operation::write(reg, 1)},
      {operation::read(reg), operation::read(reg)}};
  explore_options full;
  full.por = false;
  const auto v =
      explore(*make_abd_system_with_quorum(std::move(scripts), 1), full);
  EXPECT_GT(v.violations_total, 0u);
  bool atomicity = false;
  for (const auto& s : v.violations) {
    atomicity = atomicity || s.find("abd atomicity") != std::string::npos;
  }
  EXPECT_TRUE(atomicity);
}

// ---------------------------------------------------------------------------
// The preset surface the scenario registry and the bench drive.

TEST(CheckPresets, RegistryExposesEveryFamilyAtBothSizes) {
  for (const char* key :
       {"check-lean-n2", "check-lean-n3", "check-ac-n2", "check-ac-n3",
        "check-conc-n2", "check-conc-n3", "check-abd-n2", "check-abd-n3"}) {
    const check_preset* p = find_check_preset(key);
    ASSERT_NE(p, nullptr) << key;
    EXPECT_EQ(p->key, key);
    EXPECT_FALSE(p->description.empty());
  }
  EXPECT_EQ(find_check_preset("check-nope-n9"), nullptr);
}

TEST(CheckPresets, TrialOutcomeCarriesExplorerMetrics) {
  const check_preset* p = find_check_preset("check-lean-n2");
  ASSERT_NE(p, nullptr);
  const trial_outcome out = run_check_trial(*p, /*seed=*/1);
  EXPECT_TRUE(out.decided);
  EXPECT_FALSE(out.violation);
  for (const char* name :
       {"states_visited", "transitions", "deduped", "por_skipped",
        "terminal_states", "frontier_peak", "max_depth", "max_progress"}) {
    EXPECT_NE(out.metrics.find(name), nullptr) << name;
    EXPECT_EQ(out.metrics.sample(name).count(), 1u) << name;
  }
  // The trial wraps explore() with the preset's own options and nothing
  // else: states agree with a direct exploration exactly.
  const mc_verdict direct = explore(*p->build(1), p->options);
  EXPECT_EQ(out.metrics.sample("states_visited").mean(),
            static_cast<double>(direct.states_visited));
}

TEST(CheckPresets, TrialsAreDeterministicPerSeed) {
  const check_preset* p = find_check_preset("check-abd-n2");
  ASSERT_NE(p, nullptr);
  const trial_outcome a = run_check_trial(*p, /*seed=*/3);
  const trial_outcome b = run_check_trial(*p, /*seed=*/3);
  EXPECT_EQ(a.metrics.sample("states_visited").mean(),
            b.metrics.sample("states_visited").mean());
  EXPECT_EQ(a.metrics.sample("max_depth").mean(),
            b.metrics.sample("max_depth").mean());
}

}  // namespace
}  // namespace leancon::check
