#include "sched/adversary.h"

#include <cmath>
#include <limits>

#include "util/rng.h"

namespace leancon {
namespace {

class zero_delays final : public delay_adversary {
 public:
  double delay(int, std::uint64_t) const override { return 0.0; }
  double bound() const override { return 0.0; }
  std::string name() const override { return "zero"; }
  compiled_delays compile() const override {
    compiled_delays c;
    c.kind = adversary_kind::zero;
    return c;
  }
};

class constant_delays final : public delay_adversary {
 public:
  explicit constant_delays(double m) : m_(m) {}
  double delay(int, std::uint64_t) const override { return m_; }
  double bound() const override { return m_; }
  std::string name() const override { return "constant"; }
  compiled_delays compile() const override {
    compiled_delays c;
    c.kind = adversary_kind::constant;
    c.m = m_;
    return c;
  }

 private:
  double m_;
};

class alternating_delays final : public delay_adversary {
 public:
  explicit alternating_delays(double m) : m_(m) {}
  double delay(int pid, std::uint64_t j) const override {
    return (static_cast<std::uint64_t>(pid) + j) % 2 == 0 ? m_ : 0.0;
  }
  double bound() const override { return m_; }
  std::string name() const override { return "alternating"; }
  compiled_delays compile() const override {
    compiled_delays c;
    c.kind = adversary_kind::alternating;
    c.m = m_;
    return c;
  }

 private:
  double m_;
};

class staggered_delays final : public delay_adversary {
 public:
  staggered_delays(double m, int period) : m_(m), period_(period) {}
  double delay(int pid, std::uint64_t) const override {
    return m_ * static_cast<double>(pid % period_) /
           static_cast<double>(period_);
  }
  double bound() const override { return m_; }
  std::string name() const override { return "staggered"; }
  compiled_delays compile() const override {
    compiled_delays c;
    c.kind = adversary_kind::staggered;
    c.m = m_;
    c.period = period_;
    return c;
  }

 private:
  double m_;
  int period_;
};

class random_bounded_delays final : public delay_adversary {
 public:
  random_bounded_delays(double m, std::uint64_t salt) : m_(m), salt_(salt) {}
  double delay(int pid, std::uint64_t j) const override {
    std::uint64_t state =
        salt_ ^ (static_cast<std::uint64_t>(pid) * 0x9e3779b97f4a7c15ULL) ^
        (j * 0xd1b54a32d192ed03ULL);
    const std::uint64_t h = splitmix64_next(state);
    return m_ * static_cast<double>(h >> 11) * 0x1.0p-53;
  }
  double bound() const override { return m_; }
  std::string name() const override { return "random-bounded"; }
  compiled_delays compile() const override {
    compiled_delays c;
    c.kind = adversary_kind::random_bounded;
    c.m = m_;
    c.u = salt_;
    return c;
  }

 private:
  double m_;
  std::uint64_t salt_;
};

class burst_delays final : public delay_adversary {
 public:
  burst_delays(double m, std::uint64_t period) : m_(m), period_(period) {}
  double delay(int pid, std::uint64_t j) const override {
    return (j + static_cast<std::uint64_t>(pid)) % period_ == 0 ? m_ : 0.0;
  }
  double bound() const override { return m_; }
  std::string name() const override { return "burst"; }
  compiled_delays compile() const override {
    compiled_delays c;
    c.kind = adversary_kind::burst;
    c.m = m_;
    c.u = period_;
    return c;
  }

 private:
  double m_;
  std::uint64_t period_;
};

class pack_delays final : public delay_adversary {
 public:
  explicit pack_delays(double m) : m_(m) {}
  double delay(int pid, std::uint64_t j) const override {
    // Processes with lower pids (which start marginally earlier under
    // dithered starts) receive slightly larger braking delays early on; the
    // handicap decays so it cannot slow the execution forever.
    const double handicap =
        m_ / (1.0 + 0.25 * static_cast<double>(j));
    return pid % 2 == 0 ? handicap : 0.0;
  }
  double bound() const override { return m_; }
  std::string name() const override { return "pack"; }
  compiled_delays compile() const override {
    compiled_delays c;
    c.kind = adversary_kind::pack;
    c.m = m_;
    return c;
  }

 private:
  double m_;
};

class zeno_delays final : public delay_adversary {
 public:
  explicit zeno_delays(double m) : m_(m) {}
  double delay(int, std::uint64_t j) const override {
    // Stall at powers of two; the stall at j covers the budget accumulated
    // since the previous one: sum_{j<=r} Delta <= M * (r - 1) < r * M.
    return (j & (j - 1)) == 0 && j >= 2 ? m_ * static_cast<double>(j) / 2.0
                                        : 0.0;
  }
  double bound() const override {
    return std::numeric_limits<double>::infinity();
  }
  std::string name() const override { return "zeno-statistical"; }
  compiled_delays compile() const override {
    compiled_delays c;
    c.kind = adversary_kind::zeno;
    c.m = m_;
    return c;
  }

 private:
  double m_;
};

}  // namespace

delay_adversary_ptr make_zero_delays() {
  return std::make_shared<zero_delays>();
}
delay_adversary_ptr make_constant_delays(double m) {
  return std::make_shared<constant_delays>(m);
}
delay_adversary_ptr make_alternating_delays(double m) {
  return std::make_shared<alternating_delays>(m);
}
delay_adversary_ptr make_staggered_delays(double m, int period) {
  return std::make_shared<staggered_delays>(m, period);
}
delay_adversary_ptr make_random_bounded_delays(double m, std::uint64_t salt) {
  return std::make_shared<random_bounded_delays>(m, salt);
}
delay_adversary_ptr make_burst_delays(double m, std::uint64_t period) {
  return std::make_shared<burst_delays>(m, period);
}
delay_adversary_ptr make_pack_delays(double m) {
  return std::make_shared<pack_delays>(m);
}
delay_adversary_ptr make_zeno_delays(double m) {
  return std::make_shared<zeno_delays>(m);
}

}  // namespace leancon
