#include "sched/crash_adversary.h"

#include <algorithm>

#include "util/rng.h"

namespace leancon {
namespace {

class kill_leader final : public crash_adversary {
 public:
  kill_leader(std::uint64_t budget, std::uint64_t every)
      : initial_budget_(budget), budget_(budget), every_(every) {}

  std::optional<int> maybe_kill(const std::vector<process_view>& processes,
                                int) override {
    if (budget_ == 0) return std::nullopt;
    // Find the live leader and the highest round reached so far.
    int leader = -1;
    std::uint64_t max_round = 0;
    for (std::size_t i = 0; i < processes.size(); ++i) {
      const auto& p = processes[i];
      if (p.halted || p.decided) continue;
      if (leader == -1 || p.round > max_round) {
        leader = static_cast<int>(i);
        max_round = p.round;
      }
    }
    if (leader == -1) return std::nullopt;
    if (max_round >= next_trigger_) {
      next_trigger_ = max_round + every_;
      --budget_;
      return leader;
    }
    return std::nullopt;
  }

  std::shared_ptr<crash_adversary> clone(std::uint64_t) const override {
    return std::make_shared<kill_leader>(initial_budget_, every_);
  }

  std::string name() const override { return "kill-leader"; }

 private:
  std::uint64_t initial_budget_ = 0;
  std::uint64_t budget_;
  std::uint64_t every_;
  std::uint64_t next_trigger_ = 2;
};

class kill_winner final : public crash_adversary {
 public:
  explicit kill_winner(std::uint64_t budget)
      : initial_budget_(budget), budget_(budget) {}

  std::optional<int> maybe_kill(const std::vector<process_view>& processes,
                                int last_stepped) override {
    if (budget_ == 0) return std::nullopt;
    const auto& p = processes[static_cast<std::size_t>(last_stepped)];
    if (p.halted || p.decided) return std::nullopt;
    // Is last_stepped two rounds ahead of every live rival?
    for (std::size_t i = 0; i < processes.size(); ++i) {
      if (static_cast<int>(i) == last_stepped) continue;
      const auto& q = processes[i];
      if (q.halted || q.decided) continue;
      if (q.round + 2 > p.round) return std::nullopt;
    }
    --budget_;
    return last_stepped;
  }

  std::shared_ptr<crash_adversary> clone(std::uint64_t) const override {
    return std::make_shared<kill_winner>(initial_budget_);
  }

  std::string name() const override { return "kill-winner"; }

 private:
  std::uint64_t initial_budget_ = 0;
  std::uint64_t budget_;
};

class kill_poised final : public crash_adversary {
 public:
  explicit kill_poised(std::uint64_t budget)
      : initial_budget_(budget), budget_(budget) {}

  std::optional<int> maybe_kill(const std::vector<process_view>& processes,
                                int last_stepped) override {
    if (budget_ == 0) return std::nullopt;
    const auto& p = processes[static_cast<std::size_t>(last_stepped)];
    if (p.halted || p.decided || !p.poised_to_decide) return std::nullopt;
    --budget_;
    return last_stepped;
  }

  std::shared_ptr<crash_adversary> clone(std::uint64_t) const override {
    return std::make_shared<kill_poised>(initial_budget_);
  }

  std::string name() const override { return "kill-poised"; }

 private:
  std::uint64_t initial_budget_ = 0;
  std::uint64_t budget_;
};

class kill_random final : public crash_adversary {
 public:
  kill_random(std::uint64_t budget, double p, std::uint64_t salt)
      : initial_budget_(budget), budget_(budget), p_(p), salt_(salt),
        gen_(salt) {}

  std::optional<int> maybe_kill(const std::vector<process_view>& processes,
                                int) override {
    if (budget_ == 0 || !gen_.bernoulli(p_)) return std::nullopt;
    std::vector<int> live;
    for (std::size_t i = 0; i < processes.size(); ++i) {
      if (!processes[i].halted && !processes[i].decided) {
        live.push_back(static_cast<int>(i));
      }
    }
    if (live.empty()) return std::nullopt;
    --budget_;
    return live[gen_.below(live.size())];
  }

  std::shared_ptr<crash_adversary> clone(std::uint64_t salt) const override {
    // Mix the trial salt into the construction salt so every trial draws an
    // independent (but per-trial deterministic) kill stream.
    return std::make_shared<kill_random>(initial_budget_, p_, salt_ ^ salt);
  }

  std::string name() const override { return "kill-random"; }

 private:
  std::uint64_t initial_budget_ = 0;
  std::uint64_t budget_;
  double p_;
  std::uint64_t salt_ = 0;
  rng gen_;
};

}  // namespace

crash_adversary_ptr make_kill_leader(std::uint64_t budget,
                                     std::uint64_t every) {
  return std::make_shared<kill_leader>(budget, every);
}

crash_adversary_ptr make_kill_winner(std::uint64_t budget) {
  return std::make_shared<kill_winner>(budget);
}

crash_adversary_ptr make_kill_poised(std::uint64_t budget) {
  return std::make_shared<kill_poised>(budget);
}

crash_adversary_ptr make_kill_random(std::uint64_t budget, double p,
                                     std::uint64_t salt) {
  return std::make_shared<kill_random>(budget, p, salt);
}

}  // namespace leancon
