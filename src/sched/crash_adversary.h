// Adaptive crash adversaries (paper Section 10, "Non-random failures").
//
// Unlike the random halting failures of Section 3.1.2, these adversaries
// observe the execution (rounds, preferences, decisions — the algorithm is
// deterministic, so full observation is the strongest case) and choose whom
// to crash, subject to a total budget f. The paper derives an O(f log n)
// upper bound by restarting Theorem 12 after each crash and conjectures
// O(log n); bench/failures measures both regimes.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace leancon {

/// Public per-process state exposed to adaptive adversaries.
struct process_view {
  std::uint64_t round = 1;
  int preference = 0;
  bool decided = false;
  bool halted = false;
  std::uint64_t ops = 0;
  /// True when the process's NEXT operation would make it decide (it is at
  /// the round's final read and the rival's previous-round cell is still 0).
  /// The strongest possible single-kill trigger for an omniscient adversary.
  bool poised_to_decide = false;
};

/// Observes each step and may kill one process at a time, up to a budget.
class crash_adversary {
 public:
  virtual ~crash_adversary() = default;

  /// Called after process `last_stepped` executes an operation. Returns the
  /// pid to crash now, or nullopt. Implementations enforce their own budget.
  virtual std::optional<int> maybe_kill(
      const std::vector<process_view>& processes, int last_stepped) = 0;

  /// Returns a fresh adversary with the full budget, as originally
  /// constructed. The trial runner clones the configured adversary for every
  /// trial so trials stay independent (a shared instance would leak budget
  /// state across trials and race under parallel execution). Randomized
  /// adversaries mix `salt` into their internal stream so each trial is
  /// deterministic given its seed; deterministic ones ignore it.
  virtual std::shared_ptr<crash_adversary> clone(std::uint64_t salt) const = 0;

  virtual std::string name() const = 0;
};

using crash_adversary_ptr = std::shared_ptr<crash_adversary>;

/// Kills the process with the maximum round (the current race leader) each
/// time some process first reaches a round that is a multiple of `every`.
/// The strongest simple strategy: it decapitates whoever is about to win.
crash_adversary_ptr make_kill_leader(std::uint64_t budget,
                                     std::uint64_t every = 2);

/// Kills any process the moment it is two rounds ahead of all rivals (i.e.
/// exactly when it could decide). Stalls termination for f decapitations.
crash_adversary_ptr make_kill_winner(std::uint64_t budget);

/// Kills a process the instant its next operation would decide (Section
/// 10's decapitation strategy, maximally adaptive). Note that with a dense
/// pack this buys the adversary little: same-preference teammates one step
/// behind decide immediately afterwards — which is the empirical support
/// for the paper's O(log n) conjecture over the O(f log n) bound.
crash_adversary_ptr make_kill_poised(std::uint64_t budget);

/// Kills pseudo-randomly: after each operation, with probability p, kills a
/// deterministic-hash-chosen live process. Oblivious-equivalent baseline.
crash_adversary_ptr make_kill_random(std::uint64_t budget, double p,
                                     std::uint64_t salt);

}  // namespace leancon
