#include "sched/hybrid.h"

#include <algorithm>
#include <stdexcept>

#include "core/invariants.h"
#include "obs/obs.h"
#include "util/rng.h"

namespace leancon {
namespace {

class run_to_completion final : public preemption_adversary {
 public:
  int choose(int running, const std::vector<int>& legal,
             const std::vector<hybrid_process_view>&) override {
    if (running != -1) return -1;
    return legal.empty() ? -1 : legal.front();
  }
  std::string name() const override { return "run-to-completion"; }
};

class round_robin final : public preemption_adversary {
 public:
  int choose(int running, const std::vector<int>& legal,
             const std::vector<hybrid_process_view>& view) override {
    if (legal.empty()) return -1;
    if (running == -1) return legal.front();
    // Switch exactly at quantum boundaries, cycling by pid.
    if (view[static_cast<std::size_t>(running)].quantum_remaining > 0) {
      return -1;
    }
    for (int pid : legal) {
      if (pid > running) return pid;
    }
    return legal.front();
  }
  std::string name() const override { return "round-robin"; }
};

// Theorem 14's proof scenario. The target (lowest-priority process, pid 0)
// runs its two round-1 reads; just before its round-1 write it is preempted
// by a chain of strictly-higher-priority processes. Legality permits this
// because every other process has higher priority. The chain processes then
// run to completion; the theorem predicts one of them decides within its
// first quantum and pid 0 still finishes within 12 operations total.
class preempt_before_write final : public preemption_adversary {
 public:
  int choose(int running, const std::vector<int>& legal,
             const std::vector<hybrid_process_view>& view) override {
    if (legal.empty()) return -1;
    if (running == -1) return legal.front();
    const auto& r = view[static_cast<std::size_t>(running)];
    const bool victim_poised =
        running == 0 && !r.done && r.machine != nullptr &&
        r.machine->round() == 1 &&
        r.machine->current_phase() == lean_machine::phase::write_own;
    if (victim_poised) {
      // Preempt with the highest-priority alternative available.
      int best = legal.front();
      for (int pid : legal) {
        if (view[static_cast<std::size_t>(pid)].priority >
            view[static_cast<std::size_t>(best)].priority) {
          best = pid;
        }
      }
      return best;
    }
    return -1;
  }
  std::string name() const override { return "preempt-before-write"; }
};

class random_preemption final : public preemption_adversary {
 public:
  random_preemption(double p, std::uint64_t salt) : p_(p), gen_(salt) {}
  int choose(int running, const std::vector<int>& legal,
             const std::vector<hybrid_process_view>&) override {
    if (legal.empty()) return -1;
    if (running == -1) return legal[gen_.below(legal.size())];
    if (gen_.bernoulli(p_)) return legal[gen_.below(legal.size())];
    return -1;
  }
  std::string name() const override { return "random-preemption"; }

 private:
  double p_;
  rng gen_;
};

}  // namespace

preemption_adversary_ptr make_run_to_completion() {
  return std::make_shared<run_to_completion>();
}
preemption_adversary_ptr make_round_robin() {
  return std::make_shared<round_robin>();
}
preemption_adversary_ptr make_preempt_before_write() {
  return std::make_shared<preempt_before_write>();
}
preemption_adversary_ptr make_random_preemption(double p, std::uint64_t salt) {
  return std::make_shared<random_preemption>(p, salt);
}

hybrid_result run_hybrid(const hybrid_config& config,
                         preemption_adversary& adversary) {
  const auto n = config.inputs.size();
  if (config.priorities.size() != n) {
    throw std::invalid_argument("run_hybrid: priorities size mismatch");
  }
  if (!config.initial_quantum_used.empty() &&
      config.initial_quantum_used.size() != n) {
    throw std::invalid_argument("run_hybrid: initial_quantum_used mismatch");
  }

  sim_memory memory;
  invariant_checker checker(config.inputs);
  memory.set_trace_hook([&checker](int pid, const operation& op,
                                   std::uint64_t value) {
    checker.on_op(pid, op, value);
  });

  std::vector<lean_machine> machines;
  machines.reserve(n);
  for (int input : config.inputs) machines.emplace_back(input);

  std::vector<hybrid_process_view> view(n);
  for (std::size_t i = 0; i < n; ++i) {
    view[i].priority = config.priorities[i];
    view[i].machine = &machines[i];
    view[i].quantum_remaining = config.quantum;
    if (!config.initial_quantum_used.empty()) {
      const auto used = config.initial_quantum_used[i];
      view[i].quantum_remaining =
          used >= config.quantum ? 0 : config.quantum - used;
    }
  }

  hybrid_result result;
  result.ops_per_process.assign(n, 0);

  int running = -1;
  bool first_dispatch = true;
  std::uint64_t total_ops = 0;
  std::vector<int> legal;

  // Uniprocessor executions have no simulated clock; traced events use the
  // operation count as their timeline.
  const bool obs_on = obs::enabled();
  std::vector<std::uint64_t> obs_rounds;
  if (obs_on) {
    obs_rounds.assign(n, 1);
    // The uniprocessor runner has no seed of its own (the adversary carries
    // the randomness); the begin event reports n only.
    obs::emit(obs::event_kind::trial_begin, 0.0, n, 0);
  }

  auto remaining = [&]() {
    std::size_t live = 0;
    for (const auto& v : view) {
      if (!v.done) ++live;
    }
    return live;
  };

  while (remaining() > 0 && total_ops < config.max_total_ops) {
    // Compute the set of processes that may legally take the CPU now.
    legal.clear();
    for (std::size_t i = 0; i < n; ++i) {
      if (view[i].done || static_cast<int>(i) == running) continue;
      bool allowed;
      if (running == -1 || view[static_cast<std::size_t>(running)].done) {
        allowed = true;  // CPU free: any runnable process may be dispatched
      } else {
        const auto& r = view[static_cast<std::size_t>(running)];
        allowed = view[i].priority > r.priority ||
                  (view[i].priority == r.priority && r.quantum_remaining == 0);
      }
      if (allowed) legal.push_back(static_cast<int>(i));
    }

    int choice = adversary.choose(running, legal, view);
    const bool running_usable =
        running != -1 && !view[static_cast<std::size_t>(running)].done;
    if (choice == -1 && !running_usable) {
      choice = legal.empty() ? -1 : legal.front();
      if (choice == -1) break;  // nothing runnable (cannot happen: loop guard)
    }
    if (choice != -1) {
      // Validate the adversary's pick, then dispatch. Every dispatch grants
      // a fresh quantum, except the very first of the execution: the process
      // already on the CPU when the protocol starts may be mid-quantum.
      bool ok = false;
      for (int pid : legal) ok = ok || pid == choice;
      if (!ok) throw std::logic_error("preemption adversary made illegal pick");
      ++result.dispatches;
      if (running_usable && choice != running) {
        ++result.preemptions;
        if (obs_on) {
          obs::emit(obs::event_kind::preemption,
                    static_cast<double>(total_ops),
                    static_cast<std::uint64_t>(running),
                    static_cast<std::uint64_t>(choice));
        }
      }
      if (obs_on) {
        obs::emit(obs::event_kind::dispatch, static_cast<double>(total_ops),
                  static_cast<std::uint64_t>(choice), result.dispatches);
      }
      running = choice;
      auto& v = view[static_cast<std::size_t>(running)];
      if (!first_dispatch) v.quantum_remaining = config.quantum;
      first_dispatch = false;
      v.started = true;
    }

    // Execute one operation of the running process.
    auto& v = view[static_cast<std::size_t>(running)];
    auto& m = machines[static_cast<std::size_t>(running)];
    const operation op = m.next_op();
    const std::uint64_t value = memory.execute(running, op);
    m.apply(value);
    ++v.ops;
    ++total_ops;
    if (v.quantum_remaining > 0) --v.quantum_remaining;
    if (obs_on && m.round() != obs_rounds[static_cast<std::size_t>(running)]) {
      obs_rounds[static_cast<std::size_t>(running)] = m.round();
      obs::emit(obs::event_kind::round_advance, static_cast<double>(total_ops),
                static_cast<std::uint64_t>(running), m.round());
    }
    if (m.done()) {
      v.done = true;
      checker.on_decision(running, m.decision(), m.round());
      if (result.decision == -1) result.decision = m.decision();
      if (obs_on) {
        obs::emit(obs::event_kind::decision, static_cast<double>(total_ops),
                  static_cast<std::uint64_t>(running),
                  static_cast<std::uint64_t>(m.decision()), m.round());
      }
    }
  }

  result.total_ops = total_ops;
  result.all_decided = remaining() == 0;
  for (std::size_t i = 0; i < n; ++i) {
    result.ops_per_process[i] = view[i].ops;
    result.max_ops_per_process =
        std::max(result.max_ops_per_process, view[i].ops);
  }
  result.violations = checker.violations();
  if (obs_on) {
    obs::emit(obs::event_kind::trial_end, static_cast<double>(total_ops),
              result.all_decided ? n : 0, 0, total_ops);
  }
  return result;
}

}  // namespace leancon
