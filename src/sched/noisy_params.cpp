#include "sched/noisy_params.h"

#include <stdexcept>

namespace leancon {

std::string_view start_mode_name(start_mode m) {
  switch (m) {
    case start_mode::dithered: return "dithered";
    case start_mode::staggered: return "staggered";
    case start_mode::random: return "random";
  }
  return "?";
}

double noisy_params::start_offset(int pid, int n, rng& gen) const {
  switch (starts) {
    case start_mode::dithered:
      return gen.uniform(0.0, start_dither);
    case start_mode::staggered:
      return static_cast<double>(pid) * stagger_step +
             gen.uniform(0.0, start_dither);
    case start_mode::random:
      return gen.uniform(0.0, stagger_step * static_cast<double>(n)) +
             gen.uniform(0.0, start_dither);
  }
  throw std::logic_error("noisy_params: bad start_mode");
}

double noisy_params::op_increment(int pid, std::uint64_t op_index,
                                  bool is_write, rng& gen,
                                  bool& halted) const {
  halted = halt_probability > 0.0 && gen.bernoulli(halt_probability);
  if (halted) return 0.0;
  double inc = 0.0;
  if (adversary) inc += adversary->delay(pid, op_index);
  const distribution* f =
      is_write && write_noise ? write_noise.get() : noise.get();
  if (f == nullptr) {
    throw std::logic_error("noisy_params: noise distribution not set");
  }
  inc += f->sample(gen);
  return inc;
}

increment_sampler::increment_sampler(const noisy_params& p) {
  if (p.noise == nullptr) {
    throw std::logic_error("noisy_params: noise distribution not set");
  }
  noise_ = p.noise->compile();
  if (p.write_noise) {
    write_noise_ = p.write_noise->compile();
    has_write_noise_ = true;
  }
  if (p.adversary) {
    delays_ = p.adversary->compile();
    has_adversary_ = true;
  }
  halt_probability_ = p.halt_probability;
}

noisy_params figure1_params(distribution_ptr noise) {
  noisy_params p;
  p.noise = std::move(noise);
  p.adversary = nullptr;
  p.halt_probability = 0.0;
  p.starts = start_mode::dithered;
  p.start_dither = 1e-8;
  return p;
}

}  // namespace leancon
