// Hybrid quantum + priority-based uniprocessor scheduling (paper Sections
// 3.2 and 7, following Anderson & Moir PODC'99).
//
// Model: all processes time-share one CPU. Each process has a fixed priority.
// The running process may be preempted
//   * at any time by a process of strictly higher priority, or
//   * by a process of the same priority only once it has exhausted its
//     quantum (a guaranteed minimum number of operations per scheduling).
// A process need not start the protocol at a quantum boundary: its first
// scheduling may have part (or all) of the quantum already consumed by
// non-protocol work. Failures are not part of this model; delays are
// unbounded but constrained by the rules above.
//
// Theorem 14: with quantum >= 8, every process running lean-consensus
// decides after at most 12 operations — for EVERY legal preemption choice.
// The preemption adversary is therefore a first-class pluggable strategy.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/lean_machine.h"
#include "memory/sim_memory.h"

namespace leancon {

/// Scheduler-visible state of one process in the hybrid model.
struct hybrid_process_view {
  int priority = 0;
  std::uint64_t quantum_remaining = 0;  ///< ops before same-priority preemption
  std::uint64_t ops = 0;
  bool done = false;
  bool started = false;
  const lean_machine* machine = nullptr;  ///< full observability (deterministic protocol)
};

/// Chooses scheduling decisions, subject to legality computed by the runner.
class preemption_adversary {
 public:
  virtual ~preemption_adversary() = default;

  /// Called before every operation. `running` is the current process (or -1
  /// if the CPU is free); `legal` lists the pids that may take the CPU now
  /// (already filtered by the quantum/priority rules; excludes `running`).
  /// Return -1 to let `running` continue, or one of `legal`.
  virtual int choose(int running, const std::vector<int>& legal,
                     const std::vector<hybrid_process_view>& view) = 0;

  virtual std::string name() const = 0;
};

using preemption_adversary_ptr = std::shared_ptr<preemption_adversary>;

/// Never preempts; runs each process to completion in pid order.
preemption_adversary_ptr make_run_to_completion();

/// Switches to the next same-priority process at every quantum boundary
/// (round-robin). With quantum = 4 (one full lean round) and two processes
/// this reproduces a perfect lockstep that never terminates — the reason the
/// theorem needs quantum >= 8.
preemption_adversary_ptr make_round_robin();

/// The proof's nasty schedule: lets the lowest-priority process run up to
/// its round-1 write, then keeps it off the CPU via higher-priority work as
/// long as legality allows.
preemption_adversary_ptr make_preempt_before_write();

/// Preempts pseudo-randomly whenever legal, with probability p per step.
preemption_adversary_ptr make_random_preemption(double p, std::uint64_t salt);

/// Configuration for one hybrid-scheduled execution.
struct hybrid_config {
  std::vector<int> inputs;             ///< input bit per process
  std::vector<int> priorities;         ///< priority per process (higher wins)
  std::uint64_t quantum = 8;
  /// Ops already consumed from the first-dispatched process's quantum by
  /// other work ("no requirement that a process start at the beginning of a
  /// quantum"). On a uniprocessor only the process holding the CPU when the
  /// protocol starts can be mid-quantum; every later dispatch begins a fresh
  /// quantum, which is what Theorem 14's chain argument relies on. The entry
  /// for the first process the adversary dispatches is honored; entries for
  /// all other processes are ignored.
  std::vector<std::uint64_t> initial_quantum_used;
  std::uint64_t max_total_ops = 100000;  ///< budget against livelock schedules
};

/// Result of one hybrid-scheduled execution.
struct hybrid_result {
  bool all_decided = false;
  int decision = -1;
  std::vector<std::uint64_t> ops_per_process;
  std::uint64_t max_ops_per_process = 0;
  std::uint64_t total_ops = 0;
  /// Dispatches that displaced a live running process (the model's native
  /// cost driver: every preemption restarts the victim's quantum clock).
  std::uint64_t preemptions = 0;
  /// All CPU grants, including initial dispatches and takeovers of a
  /// finished process's CPU.
  std::uint64_t dispatches = 0;
  std::vector<std::string> violations;  ///< safety-lemma violations (expect none)
};

/// Executes lean-consensus under the hybrid model with the given adversary.
hybrid_result run_hybrid(const hybrid_config& config,
                         preemption_adversary& adversary);

}  // namespace leancon
