// Adversary-controlled base delays for the noisy-scheduling model (paper
// Section 3.1). The adversary chooses, before the execution starts:
//   * a starting time Delta_i0 for each process,
//   * a non-negative delay Delta_ij <= M between consecutive operations.
// The random noise X_ij (src/noise) is then added on top, outside the
// adversary's control.
//
// Strategies here are deterministic functions of (pid, op index) so that a
// trial is reproducible from its seed alone; "random_bounded" derives its
// choices by hashing (pid, j) with a fixed salt, which is exactly as strong
// as an oblivious adversary committing to a schedule up front.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/rng.h"

namespace leancon {

class delay_adversary;

/// Sealed tags for the delay strategies this module ships. The simulator's
/// per-operation path evaluates these through `compiled_delays` without a
/// virtual call; `custom` is the extension escape hatch that routes back
/// through the virtual delay().
enum class adversary_kind : std::uint8_t {
  custom,
  zero,
  constant,
  alternating,
  staggered,
  random_bounded,
  burst,
  pack,
  zeno,
};

/// A delay schedule compiled down to a tagged union: one branch-predictable
/// switch instead of a virtual dispatch per operation. Produced once per
/// trial batch by delay_adversary::compile(); each arm replicates the
/// corresponding class's delay() arithmetic exactly, so the compiled path
/// is bit-identical to the virtual one.
struct compiled_delays {
  adversary_kind kind = adversary_kind::zero;
  double m = 0.0;          ///< magnitude parameter M of the strategy
  std::uint64_t u = 0;     ///< burst period / random-bounded salt
  int period = 0;          ///< staggered period
  const delay_adversary* fallback = nullptr;  ///< custom only

  double operator()(int pid, std::uint64_t j) const;
};

/// Deterministic oblivious schedule of base delays, bounded by bound().
class delay_adversary {
 public:
  virtual ~delay_adversary() = default;

  /// Delta_ij for process `pid`'s `op_index`-th operation (op_index >= 1).
  /// Must lie in [0, bound()].
  virtual double delay(int pid, std::uint64_t op_index) const = 0;

  /// The model's constant M.
  virtual double bound() const = 0;

  virtual std::string name() const = 0;

  /// Reduces the strategy to its tagged-union fast path. Third-party
  /// subclasses keep the default: a `custom` record whose evaluation calls
  /// the virtual delay(). The returned record borrows `this`; it must not
  /// outlive the adversary.
  virtual compiled_delays compile() const {
    compiled_delays c;
    c.kind = adversary_kind::custom;
    c.fallback = this;
    return c;
  }
};

inline double compiled_delays::operator()(int pid, std::uint64_t j) const {
  switch (kind) {
    case adversary_kind::zero:
      return 0.0;
    case adversary_kind::constant:
      return m;
    case adversary_kind::alternating:
      return (static_cast<std::uint64_t>(pid) + j) % 2 == 0 ? m : 0.0;
    case adversary_kind::staggered:
      return m * static_cast<double>(pid % period) /
             static_cast<double>(period);
    case adversary_kind::random_bounded: {
      std::uint64_t state =
          u ^ (static_cast<std::uint64_t>(pid) * 0x9e3779b97f4a7c15ULL) ^
          (j * 0xd1b54a32d192ed03ULL);
      const std::uint64_t h = splitmix64_next(state);
      return m * static_cast<double>(h >> 11) * 0x1.0p-53;
    }
    case adversary_kind::burst:
      return (j + static_cast<std::uint64_t>(pid)) % u == 0 ? m : 0.0;
    case adversary_kind::pack: {
      const double handicap = m / (1.0 + 0.25 * static_cast<double>(j));
      return pid % 2 == 0 ? handicap : 0.0;
    }
    case adversary_kind::zeno:
      return (j & (j - 1)) == 0 && j >= 2 ? m * static_cast<double>(j) / 2.0
                                          : 0.0;
    case adversary_kind::custom:
      break;
  }
  return fallback->delay(pid, j);
}

using delay_adversary_ptr = std::shared_ptr<const delay_adversary>;

/// Delta_ij = 0: the pure-noise schedule used for Figure 1.
delay_adversary_ptr make_zero_delays();

/// Delta_ij = m for every operation (uniform slowdown; termination behaviour
/// must be unchanged per Theorem 12's distribution independence).
delay_adversary_ptr make_constant_delays(double m);

/// Even pids get delay m on even operations, odd pids on odd operations —
/// an attempt to keep two cohorts out of phase.
delay_adversary_ptr make_alternating_delays(double m);

/// Process i's operations are delayed by m * (i mod period) / period,
/// spreading cohorts across a window of width < m.
delay_adversary_ptr make_staggered_delays(double m, int period = 8);

/// Deterministic pseudo-random delays in [0, m] from hashing (salt, pid, j).
delay_adversary_ptr make_random_bounded_delays(double m, std::uint64_t salt);

/// Periodic bursts: every `period` operations a process stalls the full M;
/// models coarse-grained interference (GC pauses, timer ticks).
delay_adversary_ptr make_burst_delays(double m, std::uint64_t period);

/// Anti-race: delays process i proportionally to how many operations it has
/// already completed relative to the slowest start, trying to bunch the pack
/// (the hardest oblivious strategy for lean-consensus in our ablations).
delay_adversary_ptr make_pack_delays(double m);

/// Statistical adversary (paper Section 10): instead of the per-operation
/// bound Delta_ij <= M, only the prefix-sum constraint
/// sum_{j<=r} Delta_ij <= r*M holds. This strategy concentrates its whole
/// budget into exponentially spaced stalls: Delta_ij = M * j / 2 at
/// j = 2, 4, 8, ... and zero elsewhere (prefix sums stay under r*M).
/// bound() returns infinity — individual delays are unbounded, which is
/// exactly what the paper's open question is about. The paper's Theorem 12
/// proof does NOT cover this adversary; the conjecture is that O(log n)
/// still holds, and bench/adversary_ablation measures it.
delay_adversary_ptr make_zeno_delays(double m);

}  // namespace leancon
