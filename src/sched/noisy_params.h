// Parameters of the noisy-scheduling model (paper Section 3.1):
//
//   S_ij = Delta_i0 + sum_{k=1..j} (Delta_ik + X_ik + H_ik)
//
// where Delta_i0 is the start offset, Delta_ik in [0, M] is adversarial,
// X_ik ~ F is i.i.d. noise, and H_ik is infinite with probability h(n)
// (random halting failures, Section 3.1.2).
#pragma once

#include <cstdint>
#include <string>

#include "noise/distribution.h"
#include "sched/adversary.h"

namespace leancon {

/// How the adversary chooses the start offsets Delta_i0.
enum class start_mode : std::uint8_t {
  dithered,   ///< all equal plus Uniform(0, dither) — the Figure 1 setup
  staggered,  ///< pid * stagger_step (a rolling start)
  random      ///< Uniform(0, stagger_step * n)
};

std::string_view start_mode_name(start_mode m);

/// Full description of one noisy schedule-generating process.
struct noisy_params {
  distribution_ptr noise;                 ///< F, applied to every operation
  distribution_ptr write_noise;           ///< optional distinct F for writes
                                          ///< (paper: per-op-type F_pi);
                                          ///< null = same as `noise`
  delay_adversary_ptr adversary;          ///< Delta_ij; null = all zero
  double halt_probability = 0.0;          ///< h(n) per operation
  start_mode starts = start_mode::dithered;
  double start_dither = 1e-8;             ///< Figure 1 uses U(0, 1e-8)
  double stagger_step = 0.0;

  /// Samples Delta_i0 for process pid (uses gen for the random components).
  double start_offset(int pid, int n, rng& gen) const;

  /// Samples the full increment Delta_ij + X_ij for one operation, and
  /// reports a halting failure through `halted`.
  double op_increment(int pid, std::uint64_t op_index, bool is_write, rng& gen,
                      bool& halted) const;
};

/// The exact Figure 1 configuration for a given interarrival distribution:
/// zero adversary delays, dithered equal starts, no failures.
noisy_params figure1_params(distribution_ptr noise);

}  // namespace leancon
