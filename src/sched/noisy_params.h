// Parameters of the noisy-scheduling model (paper Section 3.1):
//
//   S_ij = Delta_i0 + sum_{k=1..j} (Delta_ik + X_ik + H_ik)
//
// where Delta_i0 is the start offset, Delta_ik in [0, M] is adversarial,
// X_ik ~ F is i.i.d. noise, and H_ik is infinite with probability h(n)
// (random halting failures, Section 3.1.2).
#pragma once

#include <cstdint>
#include <string>

#include "noise/distribution.h"
#include "sched/adversary.h"

namespace leancon {

/// How the adversary chooses the start offsets Delta_i0.
enum class start_mode : std::uint8_t {
  dithered,   ///< all equal plus Uniform(0, dither) — the Figure 1 setup
  staggered,  ///< pid * stagger_step (a rolling start)
  random      ///< Uniform(0, stagger_step * n)
};

std::string_view start_mode_name(start_mode m);

/// Full description of one noisy schedule-generating process.
struct noisy_params {
  distribution_ptr noise;                 ///< F, applied to every operation
  distribution_ptr write_noise;           ///< optional distinct F for writes
                                          ///< (paper: per-op-type F_pi);
                                          ///< null = same as `noise`
  delay_adversary_ptr adversary;          ///< Delta_ij; null = all zero
  double halt_probability = 0.0;          ///< h(n) per operation
  start_mode starts = start_mode::dithered;
  double start_dither = 1e-8;             ///< Figure 1 uses U(0, 1e-8)
  double stagger_step = 0.0;

  /// Samples Delta_i0 for process pid (uses gen for the random components).
  double start_offset(int pid, int n, rng& gen) const;

  /// Samples the full increment Delta_ij + X_ij for one operation, and
  /// reports a halting failure through `halted`.
  double op_increment(int pid, std::uint64_t op_index, bool is_write, rng& gen,
                      bool& halted) const;
};

/// The exact Figure 1 configuration for a given interarrival distribution:
/// zero adversary delays, dithered equal starts, no failures.
noisy_params figure1_params(distribution_ptr noise);

/// op_increment with the per-op virtual dispatch compiled away: the noise
/// distributions and the adversary are reduced to tagged unions once, then
/// every operation evaluates through plain switches. Draws the same rng
/// sequence as op_increment, so the two are bit-identical.
///
/// Borrows the distributions/adversary owned by the source noisy_params;
/// the sampler must not outlive them.
class increment_sampler {
 public:
  increment_sampler() = default;

  /// Compiles `p`. Throws std::logic_error when p.noise is unset (the same
  /// complaint op_increment raises, just at compile time instead of on the
  /// first operation).
  explicit increment_sampler(const noisy_params& p);

  /// True when the drawn increment depends on WHICH operation is being
  /// scheduled — an adversary keyed on (pid, op_index) or a distinct
  /// write-noise distribution keyed on the op kind. When false, the draw is
  /// a pure function of the rng stream, so a caller may draw the increment
  /// before computing the operation it schedules (the simulator's
  /// pipelined fast path) and still consume the exact same stream values.
  bool schedule_sensitive() const {
    return has_adversary_ || has_write_noise_;
  }

  /// Batched draw: writes the next `count` values of operator() on this
  /// stream into inc[]/halted[], consuming the rng exactly as `count`
  /// successive calls would. Only meaningful when !schedule_sensitive()
  /// (the per-op arguments are ignored then, so the draws do not depend on
  /// which operations they will schedule). Batching matters because the
  /// heavier samplers call into libm: one call per simulated operation
  /// forces the simulator loop's live registers to spill around every
  /// operation, while a batch spills them once per `count` draws.
  void fill(int pid, rng& gen, double* inc, std::uint8_t* halted,
            std::size_t count) const {
    for (std::size_t k = 0; k < count; ++k) {
      bool h = false;
      inc[k] = (*this)(pid, /*op_index=*/0, /*is_write=*/false, gen, h);
      halted[k] = static_cast<std::uint8_t>(h);
    }
  }

  /// Drop-in replacement for noisy_params::op_increment.
  double operator()(int pid, std::uint64_t op_index, bool is_write, rng& gen,
                    bool& halted) const {
    halted = halt_probability_ > 0.0 && gen.bernoulli(halt_probability_);
    if (halted) return 0.0;
    double inc = 0.0;
    if (has_adversary_) inc += delays_(pid, op_index);
    const compiled_sampler& f =
        is_write && has_write_noise_ ? write_noise_ : noise_;
    inc += f.sample(gen);
    return inc;
  }

 private:
  compiled_sampler noise_;
  compiled_sampler write_noise_;
  compiled_delays delays_;
  double halt_probability_ = 0.0;
  bool has_adversary_ = false;
  bool has_write_noise_ = false;
};

}  // namespace leancon
