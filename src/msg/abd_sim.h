// Message-passing substrate (paper Section 10, "Message passing"): "It
// would be interesting to see whether a noisy scheduling assumption can be
// used to solve consensus quickly in an asynchronous message-passing model."
//
// This module answers the question empirically. It provides:
//
//   * an asynchronous point-to-point network simulator whose per-message
//     delays follow the noisy-scheduling decomposition (adversary-chosen
//     base delay, bounded by M, plus i.i.d. random noise), and
//   * multi-writer multi-reader atomic registers emulated over that network
//     with the ABD protocol (Attiya, Bar-Noy, Dolev): every process holds a
//     timestamped replica of each register;
//       - a write queries a majority for the highest timestamp, then
//         propagates (value, higher timestamp) to a majority;
//       - a read queries a majority, adopts the highest-timestamped value,
//         writes it back to a majority, then returns it.
//     Atomicity holds as long as a majority of processes stay alive.
//
// Any consensus_machine (lean, combined, backup, id tournament) can then run
// unchanged on top: each shared-memory operation becomes a two-phase
// majority exchange, and the noise that drives the paper's Theta(log n)
// termination now comes from message latency rather than operation timing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/machine.h"
#include "sched/noisy_params.h"
#include "sim/simulator.h"

namespace leancon {

/// ABD timestamp: lexicographic (sequence, writer id).
struct abd_timestamp {
  std::uint64_t seq = 0;
  int writer = -1;

  friend bool operator<(const abd_timestamp& a, const abd_timestamp& b) {
    if (a.seq != b.seq) return a.seq < b.seq;
    return a.writer < b.writer;
  }
  friend bool operator==(const abd_timestamp&, const abd_timestamp&) =
      default;
};

/// Completion record for one emulated register operation (for tests:
/// real-time ordering checks against the chosen timestamps).
struct abd_op_record {
  int pid = 0;
  operation op;
  std::uint64_t result = 0;
  double start_time = 0.0;
  double end_time = 0.0;
  abd_timestamp timestamp;  ///< timestamp the operation settled on
};

struct mp_config {
  std::vector<int> inputs;  ///< input bit per process (defines n)
  noisy_params net;         ///< per-message delay model
  protocol_kind protocol = protocol_kind::lean;
  std::uint64_t r_max = 0;  ///< for protocol_kind::combined; 0 = default
  /// Optional custom machine builder (pid, input, rng); overrides protocol.
  std::function<std::unique_ptr<consensus_machine>(int, int, rng)> factory;
  std::uint64_t seed = 1;
  std::uint64_t max_messages = 10'000'000;  ///< budget against livelock
  /// Processes crashed at adversarially chosen times (must stay < n/2 for
  /// the emulation's majorities to form). Crashed processes stop initiating
  /// operations and stop acknowledging.
  std::uint64_t crashes = 0;
  /// Optional observer invoked at each register-operation completion.
  std::function<void(const abd_op_record&)> op_hook;
};

struct mp_process_result {
  bool decided = false;
  int decision = -1;
  bool crashed = false;
  std::uint64_t register_ops = 0;  ///< completed emulated operations
  std::uint64_t messages_sent = 0;
};

struct mp_result {
  bool all_live_decided = false;
  bool budget_exhausted = false;
  int decision = -1;
  double first_decision_time = 0.0;
  double last_decision_time = 0.0;
  std::uint64_t total_messages = 0;
  std::vector<mp_process_result> processes;
};

/// Runs one message-passing execution of the configured protocol.
mp_result run_message_passing(const mp_config& config);

}  // namespace leancon
