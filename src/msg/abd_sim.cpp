#include "msg/abd_sim.h"

#include <algorithm>
#include <queue>
#include <stdexcept>
#include <unordered_map>

#include "backup/backup_machine.h"
#include "core/combined_machine.h"
#include "core/lean_machine.h"
#include "obs/obs.h"

namespace leancon {
namespace {

enum class msg_kind : std::uint8_t { query, query_ack, update, update_ack };

struct replica_cell {
  std::uint64_t value = 0;
  abd_timestamp ts;
};

struct mp_message {
  msg_kind kind;
  int from;
  int to;
  std::uint64_t op_id;  ///< client operation this message belongs to
  location loc;
  replica_cell cell;  ///< payload value + timestamp (query carries none)
};

struct pending_event {
  double time;
  std::uint64_t seq;
  mp_message msg;
};

struct event_later {
  bool operator()(const pending_event& a, const pending_event& b) const {
    if (a.time != b.time) return a.time > b.time;
    return a.seq > b.seq;
  }
};

/// Client-side state of the in-flight register operation.
struct client_op {
  bool active = false;
  std::uint64_t op_id = 0;
  operation op;
  double start_time = 0.0;
  int phase = 1;  ///< 1 = query, 2 = update/write-back
  std::uint64_t acks = 0;
  replica_cell best;  ///< highest-timestamped cell seen in phase 1
};

struct process_state {
  std::unique_ptr<consensus_machine> machine;
  std::unordered_map<std::uint64_t, replica_cell> replica;
  client_op current;
  bool crashed = false;
  bool decided = false;
  rng stream{0};
  std::uint64_t msg_index = 0;  ///< per-process message counter (delay model)
};

std::unique_ptr<consensus_machine> build_machine(const mp_config& config,
                                                 int pid, int input,
                                                 rng gen) {
  if (config.factory) return config.factory(pid, input, std::move(gen));
  const auto n = config.inputs.size();
  backup_params bp = backup_params::for_processes(n);
  switch (config.protocol) {
    case protocol_kind::lean:
      return std::make_unique<lean_machine>(input);
    case protocol_kind::combined: {
      const std::uint64_t r_max =
          config.r_max != 0 ? config.r_max : default_r_max(n);
      return std::make_unique<combined_machine>(input, r_max, bp, gen);
    }
    case protocol_kind::backup:
      return std::make_unique<backup_machine>(input, bp, gen);
  }
  throw std::logic_error("mp build_machine: bad protocol kind");
}

}  // namespace

mp_result run_message_passing(const mp_config& config) {
  const auto n = config.inputs.size();
  if (n == 0) throw std::invalid_argument("run_message_passing: no processes");
  if (config.crashes * 2 >= n) {
    throw std::invalid_argument(
        "run_message_passing: crashes must stay below n/2 for ABD majorities");
  }
  const std::uint64_t majority = n / 2 + 1;

  mp_result result;
  result.processes.assign(n, mp_process_result{});

  // Sampled once per emulation; per-message emission lives on the general
  // dispatch below, so the untraced path costs one predictable branch per
  // send/deliver.
  const bool obs_on = obs::enabled();
  if (obs_on) {
    obs::emit(obs::event_kind::trial_begin, 0.0, n, config.seed);
  }

  std::vector<process_state> procs(n);
  std::priority_queue<pending_event, std::vector<pending_event>, event_later>
      events;
  std::uint64_t event_seq = 0;
  std::uint64_t next_op_id = 1;
  std::uint64_t decided_live = 0;

  // Crash schedule: the adversary crashes the first `crashes` processes at
  // pseudo-random early times (the most disruptive window: mid-emulation).
  rng crash_gen(config.seed, 0xC0FFEE);
  std::vector<double> crash_at(n, -1.0);
  for (std::uint64_t c = 0; c < config.crashes; ++c) {
    crash_at[c] = crash_gen.uniform(0.5, 5.0);
  }

  auto send = [&](int from, int to, mp_message msg, double now) {
    auto& p = procs[static_cast<std::size_t>(from)];
    bool halted = false;
    const double delay = config.net.op_increment(
        from, ++p.msg_index, /*is_write=*/false, p.stream, halted);
    // Halting failures in the network model drop the message.
    if (halted) {
      if (obs_on) {
        obs::emit(obs::event_kind::msg_drop, now,
                  static_cast<std::uint64_t>(from),
                  static_cast<std::uint64_t>(msg.to),
                  static_cast<std::uint64_t>(msg.kind));
      }
      return;
    }
    if (obs_on) {
      obs::emit(obs::event_kind::msg_send, now,
                static_cast<std::uint64_t>(from),
                static_cast<std::uint64_t>(msg.to),
                static_cast<std::uint64_t>(msg.kind));
    }
    ++result.processes[static_cast<std::size_t>(from)].messages_sent;
    events.push(pending_event{now + delay, event_seq++, std::move(msg)});
  };

  auto replica_lookup = [&](process_state& p, location loc) -> replica_cell {
    auto it = p.replica.find(loc.packed());
    if (it != p.replica.end()) return it->second;
    replica_cell cell;
    // The lean arrays' virtual prefix (a0[0] = a1[0] = 1) is part of every
    // replica's initial state.
    if ((loc.where == space::race0 || loc.where == space::race1) &&
        loc.index == 0) {
      cell.value = 1;
    }
    return cell;
  };

  // Starts the next register operation for pid's machine, if any.
  auto start_next_op = [&](int pid, double now) {
    auto& p = procs[static_cast<std::size_t>(pid)];
    if (p.crashed || p.decided || p.machine->done()) return;
    p.current = client_op{};
    p.current.active = true;
    p.current.op_id = next_op_id++;
    p.current.op = p.machine->next_op();
    p.current.start_time = now;
    p.current.phase = 1;
    for (std::size_t to = 0; to < n; ++to) {
      send(pid, static_cast<int>(to),
           mp_message{msg_kind::query, pid, static_cast<int>(to),
                      p.current.op_id, p.current.op.where, {}},
           now);
    }
  };

  for (std::size_t i = 0; i < n; ++i) {
    procs[i].stream = rng(config.seed, i + 1);
    procs[i].machine = build_machine(config, static_cast<int>(i),
                                     config.inputs[i],
                                     procs[i].stream.fork());
    if (procs[i].machine->done()) {
      // Degenerate protocols (e.g. a 1-id tournament) decide without any
      // shared-memory operation.
      procs[i].decided = true;
      result.processes[i].decided = true;
      result.processes[i].decision = procs[i].machine->decision();
      ++decided_live;
      if (result.decision == -1) result.decision = procs[i].machine->decision();
      continue;
    }
    const double start = config.net.start_offset(
        static_cast<int>(i), static_cast<int>(n), procs[i].stream);
    start_next_op(static_cast<int>(i), start);
  }

  auto complete_op = [&](int pid, double now) {
    auto& p = procs[static_cast<std::size_t>(pid)];
    auto& pr = result.processes[static_cast<std::size_t>(pid)];
    client_op finished = p.current;
    p.current = client_op{};
    ++pr.register_ops;

    const std::uint64_t op_result = finished.op.kind == op_kind::read
                                        ? finished.best.value
                                        : finished.op.value;
    if (config.op_hook) {
      config.op_hook(abd_op_record{pid, finished.op, op_result,
                                   finished.start_time, now,
                                   finished.best.ts});
    }
    p.machine->apply(op_result);
    if (p.machine->done()) {
      p.decided = true;
      pr.decided = true;
      pr.decision = p.machine->decision();
      ++decided_live;
      if (obs_on) {
        obs::emit(obs::event_kind::decision, now,
                  static_cast<std::uint64_t>(pid),
                  static_cast<std::uint64_t>(pr.decision),
                  p.machine->lean_round());
      }
      if (result.decision == -1) {
        result.decision = pr.decision;
        result.first_decision_time = now;
      }
      result.last_decision_time = now;
      return;
    }
    start_next_op(pid, now);
  };

  while (!events.empty()) {
    if (result.total_messages >= config.max_messages) {
      result.budget_exhausted = true;
      break;
    }
    const pending_event ev = events.top();
    events.pop();
    ++result.total_messages;
    const mp_message& msg = ev.msg;
    auto& dst = procs[static_cast<std::size_t>(msg.to)];

    // Adversarial crash times take effect lazily as the clock passes them.
    for (std::size_t i = 0; i < n; ++i) {
      if (crash_at[i] >= 0.0 && ev.time >= crash_at[i] && !procs[i].crashed) {
        procs[i].crashed = true;
        result.processes[i].crashed = true;
        if (obs_on) obs::emit(obs::event_kind::crash, ev.time, i, i);
      }
    }
    if (dst.crashed) continue;
    if (obs_on) {
      obs::emit(obs::event_kind::msg_deliver, ev.time,
                static_cast<std::uint64_t>(msg.from),
                static_cast<std::uint64_t>(msg.to),
                static_cast<std::uint64_t>(msg.kind));
    }

    switch (msg.kind) {
      case msg_kind::query: {
        const replica_cell cell = replica_lookup(dst, msg.loc);
        send(msg.to, msg.from,
             mp_message{msg_kind::query_ack, msg.to, msg.from, msg.op_id,
                        msg.loc, cell},
             ev.time);
        break;
      }
      case msg_kind::update: {
        // Resolve through replica_lookup BEFORE touching the map: the first
        // contact with a virtual-prefix cell must observe its initial 1, not
        // a default-inserted 0.
        replica_cell cell = replica_lookup(dst, msg.loc);
        if (cell.ts < msg.cell.ts) cell = msg.cell;
        dst.replica[msg.loc.packed()] = cell;
        send(msg.to, msg.from,
             mp_message{msg_kind::update_ack, msg.to, msg.from, msg.op_id,
                        msg.loc, {}},
             ev.time);
        break;
      }
      case msg_kind::query_ack: {
        auto& cur = dst.current;
        if (!cur.active || cur.op_id != msg.op_id || cur.phase != 1) break;
        if (cur.acks == 0 || cur.best.ts < msg.cell.ts) cur.best = msg.cell;
        ++cur.acks;
        if (cur.acks >= majority) {
          // Phase 2: propagate. A write imposes a fresh higher timestamp;
          // a read writes back what it is about to return.
          cur.phase = 2;
          cur.acks = 0;
          replica_cell payload;
          if (cur.op.kind == op_kind::write) {
            payload.value = cur.op.value;
            payload.ts = abd_timestamp{cur.best.ts.seq + 1, msg.to};
            cur.best = payload;
          } else {
            payload = cur.best;
          }
          for (std::size_t to = 0; to < n; ++to) {
            send(msg.to, static_cast<int>(to),
                 mp_message{msg_kind::update, msg.to, static_cast<int>(to),
                            cur.op_id, cur.op.where, payload},
                 ev.time);
          }
        }
        break;
      }
      case msg_kind::update_ack: {
        auto& cur = dst.current;
        if (!cur.active || cur.op_id != msg.op_id || cur.phase != 2) break;
        ++cur.acks;
        if (cur.acks >= majority) complete_op(msg.to, ev.time);
        break;
      }
    }

    // Early exit once every live process decided.
    std::uint64_t live = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (!procs[i].crashed && !procs[i].decided) ++live;
    }
    if (live == 0) break;
  }

  result.all_live_decided = decided_live > 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (!procs[i].crashed && !procs[i].decided) {
      result.all_live_decided = false;
    }
  }
  if (obs_on) {
    obs::emit(obs::event_kind::trial_end, result.last_decision_time,
              decided_live, 0, result.total_messages);
  }
  return result;
}

}  // namespace leancon
