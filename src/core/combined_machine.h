// Combined bounded-space protocol (paper Section 8, Theorem 15):
//
//   1. Run lean-consensus through round r_max.
//   2. At round r_max + 1, switch to the backup protocol, using the
//      preference at the end of round r_max as the backup input.
//
// Correctness (Theorem 15): validity is immediate (unanimous inputs decide in
// lean round 2); for agreement, if any process decides b at a lean round
// r <= r_max then no process ever writes a(1-b)[r] (Lemma 4), so by Lemma 2
// every process that completes round r_max wrote ab[r_max] and enters the
// backup with input b, and backup validity forces b. With
// r_max = Theta(log^2 n) the backup runs with probability at most n^-c, so
// its polynomial cost contributes O(1) to the expected total.
#pragma once

#include <cstdint>

#include "backup/backup_machine.h"
#include "core/lean_machine.h"
#include "core/machine.h"

namespace leancon {

/// Suggested r_max for n active processes: Theta(log^2 n) plus a safety
/// constant, mirroring Theorem 15's T * c * log n with small constants.
std::uint64_t default_r_max(std::uint64_t n);

/// One process's combined (bounded-space) consensus execution.
class combined_machine final : public consensus_machine {
 public:
  /// @param input   input bit
  /// @param r_max   lean-consensus round cutoff (>= 1)
  /// @param params  backup tuning
  /// @param gen     local coin source for the backup stage
  combined_machine(int input, std::uint64_t r_max, const backup_params& params,
                   rng gen);

  operation next_op() const override;
  void apply(std::uint64_t result) override;
  bool done() const override;
  int decision() const override;
  std::uint64_t steps() const override;
  std::uint64_t lean_round() const override {
    return in_lean_stage() || lean_.done() ? lean_.round() : 0;
  }
  std::uint64_t preference_switches() const override {
    return lean_.preference_switches();
  }

  /// True while the lean stage is still running.
  bool in_lean_stage() const { return !lean_.exhausted() && !lean_.done(); }

  /// True if the backup stage was entered.
  bool backup_entered() const { return backup_.has_value(); }

  const lean_machine& lean() const { return lean_; }

 private:
  void maybe_enter_backup();

  backup_params params_;
  rng gen_;
  lean_machine lean_;
  std::optional<backup_machine> backup_;
};

}  // namespace leancon
