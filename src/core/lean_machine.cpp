#include "core/lean_machine.h"

#include <stdexcept>

namespace leancon {

lean_machine::lean_machine(int input, std::uint64_t max_round)
    : input_(input), pref_(input), max_round_(max_round) {
  if (input != 0 && input != 1) {
    throw std::invalid_argument("lean_machine: input must be 0 or 1");
  }
  if (max_round_ == 0) {
    exhausted_ = true;  // degenerate cutoff: straight to the backup
  }
}

// next_op and apply are the innermost calls of the discrete-event
// simulator, executed once per simulated operation with the stepping
// machine chosen quasi-randomly by the event order. A switch over phase_
// therefore presents the branch predictor with an effectively random
// 4-way target and costs a pipeline flush on most operations. Both
// functions instead compute their results arithmetically from the phase
// index — every select below is a branch-free conditional move — and the
// single remaining data-dependent branch (decide/exhaust) is taken at
// most once per machine lifetime. The state evolution is EXACTLY the
// switch-based one: same fields, same updates, same counters.
operation lean_machine::next_op() const {
  if (decided_ || exhausted_) {
    throw std::logic_error("lean_machine: next_op after done/exhausted");
  }
  const auto p = static_cast<std::uint32_t>(phase_);
  // Space by phase: 1→a0, 2→a1, 3→own(pref), 4→own(1-pref). own_space(b)
  // is race0+b, so the selector bit is (phase&1) for the fixed reads and
  // pref^(phase&1) for the preference-directed pair.
  const auto pref = static_cast<std::uint32_t>(pref_);
  const std::uint32_t bit = (p & 2u) != 0 ? (pref ^ (p & 1u)) : (p & 1u);
  const bool is_write = p == static_cast<std::uint32_t>(phase::write_own);
  const bool is_rival = p == static_cast<std::uint32_t>(phase::read_rival_prev);
  operation op;
  op.kind = is_write ? op_kind::write : op_kind::read;
  op.where = location{static_cast<space>(bit),
                      round_ - static_cast<std::uint64_t>(is_rival)};
  op.value = static_cast<std::uint64_t>(is_write);
  return op;
}

void lean_machine::apply(std::uint64_t result) {
  if (decided_ || exhausted_) {
    throw std::logic_error("lean_machine: apply after done/exhausted");
  }
  ++steps_;
  const auto p = static_cast<std::uint32_t>(phase_);

  // Step 1 stages a0[r]; a no-op store in every other phase.
  a0_value_ = p == static_cast<std::uint32_t>(phase::read_a0) ? result
                                                              : a0_value_;

  // Step 2 rule: "If for some b, ab[r] is 1 and a(1-b)[r] is 0, set p=b."
  // The two conditions are mutually exclusive; outside step 2 the mask
  // keeps the preference (and the switch counter) unchanged.
  {
    const bool in_step2 = p == static_cast<std::uint32_t>(phase::read_a1);
    const bool to0 = a0_value_ == 1 && result == 0;
    const bool to1 = result == 1 && a0_value_ == 0;
    const int target = to0 ? 0 : (to1 ? 1 : pref_);
    const int next_pref = in_step2 ? target : pref_;
    pref_switches_ += static_cast<std::uint64_t>(next_pref != pref_);
    pref_ = next_pref;
  }

  // Step 4 outcome: decide on a zero read, exhaust at the round cap,
  // otherwise enter the next round. The round advances branchlessly; the
  // terminal transition (at most once per machine) keeps phase_ frozen,
  // exactly like the switch-based code.
  const bool is_rival = p == static_cast<std::uint32_t>(phase::read_rival_prev);
  const bool decide = is_rival & (result == 0);
  const bool exhaust = is_rival & !decide & (round_ >= max_round_);
  round_ += static_cast<std::uint64_t>(is_rival & !decide & !exhaust);
  phase_ = static_cast<phase>((decide | exhaust) ? p : ((p + 1u) & 3u));
  if (decide | exhaust) {
    decided_ = decide;
    decision_ = decide ? pref_ : decision_;
    exhausted_ = exhaust;  // Section 8: hand preference to the backup
  }
}

}  // namespace leancon
