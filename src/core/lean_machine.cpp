#include "core/lean_machine.h"

#include <stdexcept>

namespace leancon {

lean_machine::lean_machine(int input, std::uint64_t max_round)
    : input_(input), pref_(input), max_round_(max_round) {
  if (input != 0 && input != 1) {
    throw std::invalid_argument("lean_machine: input must be 0 or 1");
  }
  if (max_round_ == 0) {
    exhausted_ = true;  // degenerate cutoff: straight to the backup
  }
}

operation lean_machine::next_op() const {
  if (decided_ || exhausted_) {
    throw std::logic_error("lean_machine: next_op after done/exhausted");
  }
  switch (phase_) {
    case phase::read_a0:
      return operation::read({space::race0, round_});
    case phase::read_a1:
      return operation::read({space::race1, round_});
    case phase::write_own:
      return operation::write({own_space(pref_), round_}, 1);
    case phase::read_rival_prev:
      return operation::read({own_space(1 - pref_), round_ - 1});
  }
  throw std::logic_error("lean_machine: invalid phase");
}

void lean_machine::apply(std::uint64_t result) {
  if (decided_ || exhausted_) {
    throw std::logic_error("lean_machine: apply after done/exhausted");
  }
  ++steps_;
  switch (phase_) {
    case phase::read_a0:
      a0_value_ = result;
      phase_ = phase::read_a1;
      break;
    case phase::read_a1:
      // Step 2 rule: "If for some b, ab[r] is 1 and a(1-b)[r] is 0, set p=b."
      if (a0_value_ == 1 && result == 0) {
        if (pref_ != 0) ++pref_switches_;
        pref_ = 0;
      } else if (result == 1 && a0_value_ == 0) {
        if (pref_ != 1) ++pref_switches_;
        pref_ = 1;
      }
      phase_ = phase::write_own;
      break;
    case phase::write_own:
      phase_ = phase::read_rival_prev;
      break;
    case phase::read_rival_prev:
      if (result == 0) {
        decided_ = true;
        decision_ = pref_;
      } else if (round_ >= max_round_) {
        exhausted_ = true;  // Section 8: hand preference to the backup
      } else {
        ++round_;
        phase_ = phase::read_a0;
      }
      break;
  }
}

}  // namespace leancon
