// Online checker for the paper's safety lemmas, attached as a trace hook to
// simulated executions. Violations are collected as human-readable strings so
// tests can assert emptiness and print the failure.
//
// Checked properties:
//   * Lemma 2:  no process sets ab[r] unless (r = 1 and b is an input value)
//               or ab[r-1] was already set.
//   * Lemma 4a: once some process decides b at round r, no write to
//               a(1-b)[r] ever occurs.
//   * Lemma 4b: all lean decision rounds lie within a window of one round
//               (if some process decides at round r, every process decides
//               at or before r + 1).
//   * Agreement: all decisions are for the same bit.
//   * Validity:  the decided bit is some process's input.
//   * Lemma 3 (checked by the caller when inputs are unanimous): every
//     process decides after exactly 8 operations.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "memory/register_model.h"

namespace leancon {

/// Collects race-array events and decision events and verifies the lemmas.
class invariant_checker {
 public:
  /// @param inputs  input bit of each process, indexed by pid
  explicit invariant_checker(std::vector<int> inputs);

  /// Feed from a memory trace hook (only race0/race1 writes are examined).
  void on_op(int pid, const operation& op, std::uint64_t value);

  /// Feed when a process decides `bit` at lean-consensus round `round`.
  void on_decision(int pid, int bit, std::uint64_t round);

  /// Feed when a process decides `bit` in the backup stage (agreement and
  /// validity are checked; the round-window lemma does not apply).
  void on_backup_decision(int pid, int bit);

  /// All violations found so far. Empty means every invariant held.
  const std::vector<std::string>& violations() const { return violations_; }

  bool ok() const { return violations_.empty(); }

  /// True once any process has decided.
  bool any_decision() const { return decided_bit_ != -1; }

  int decided_bit() const { return decided_bit_; }

 private:
  void violation(std::string message);
  void check_bit(int pid, int bit);

  std::vector<int> inputs_;
  bool input_present_[2] = {false, false};
  std::unordered_set<std::uint64_t> set_cells_[2];
  std::unordered_set<std::uint64_t> decision_rounds_;
  std::uint64_t min_decision_round_ = 0;  // 0 = no lean decision yet
  std::uint64_t max_decision_round_ = 0;
  int decided_bit_ = -1;
  std::vector<std::string> violations_;
};

}  // namespace leancon
