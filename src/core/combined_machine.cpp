#include "core/combined_machine.h"

#include <cmath>
#include <stdexcept>

namespace leancon {

std::uint64_t default_r_max(std::uint64_t n) {
  const double log_n = std::log2(static_cast<double>(n) + 2.0);
  return static_cast<std::uint64_t>(4.0 * log_n * log_n) + 16;
}

combined_machine::combined_machine(int input, std::uint64_t r_max,
                                   const backup_params& params, rng gen)
    : params_(params), gen_(gen), lean_(input, r_max) {
  maybe_enter_backup();
}

void combined_machine::maybe_enter_backup() {
  if (lean_.exhausted() && !backup_) {
    // Section 8: the input to the backup is the preference at the end of
    // round r_max.
    backup_.emplace(lean_.preference(), params_, gen_.fork());
  }
}

operation combined_machine::next_op() const {
  if (backup_) return backup_->next_op();
  return lean_.next_op();
}

void combined_machine::apply(std::uint64_t result) {
  if (backup_) {
    backup_->apply(result);
    return;
  }
  lean_.apply(result);
  maybe_enter_backup();
}

bool combined_machine::done() const {
  return backup_ ? backup_->done() : lean_.done();
}

int combined_machine::decision() const {
  return backup_ ? backup_->decision() : lean_.decision();
}

std::uint64_t combined_machine::steps() const {
  return lean_.steps() + (backup_ ? backup_->steps() : 0);
}

}  // namespace leancon
