// Pull-based protocol state machine interface.
//
// Every protocol in this library (lean-consensus, adopt-commit, conciliator,
// backup, and the combined bounded-space protocol) is expressed as a state
// machine that *emits* one atomic shared-memory operation at a time and
// consumes its result. This single-source design lets the same algorithm code
// run under:
//   * the discrete-event noisy-scheduling simulator (src/sim),
//   * the hybrid quantum/priority uniprocessor scheduler (src/sched),
//   * the exhaustive interleaving model checker (tests),
//   * native threads against std::atomic registers (src/runtime).
#pragma once

#include <cstdint>

#include "memory/register_model.h"

namespace leancon {

/// Interface for a single process's consensus protocol execution.
///
/// Driving contract: while !done(), call next_op() to obtain the pending
/// operation, execute it against some memory backend, then call apply() with
/// the result. next_op() is idempotent until the matching apply().
class consensus_machine {
 public:
  virtual ~consensus_machine() = default;

  /// The operation this process performs next. Precondition: !done().
  virtual operation next_op() const = 0;

  /// Feeds back the executed operation's result (the value read; for writes,
  /// the value written). Advances the machine by exactly one operation.
  virtual void apply(std::uint64_t result) = 0;

  /// True once the process has decided.
  virtual bool done() const = 0;

  /// The decided bit. Precondition: done().
  virtual int decision() const = 0;

  /// Number of shared-memory operations executed so far.
  virtual std::uint64_t steps() const = 0;

  /// Round number while the machine is in the lean-consensus stage (used for
  /// round metrics and the Lemma 4 round-window check); 0 otherwise.
  virtual std::uint64_t lean_round() const { return 0; }

  /// Number of times the process abandoned its preference for the rival's
  /// (lean stage only; 0 for other protocols).
  virtual std::uint64_t preference_switches() const { return 0; }
};

}  // namespace leancon
