#include "core/invariants.h"

#include <algorithm>
#include <sstream>

namespace leancon {

invariant_checker::invariant_checker(std::vector<int> inputs)
    : inputs_(std::move(inputs)) {
  for (int b : inputs_) {
    if (b == 0 || b == 1) input_present_[b] = true;
  }
}

void invariant_checker::violation(std::string message) {
  violations_.push_back(std::move(message));
}

void invariant_checker::on_op(int pid, const operation& op,
                              std::uint64_t /*value*/) {
  if (op.kind != op_kind::write) return;
  int b;
  if (op.where.where == space::race0) {
    b = 0;
  } else if (op.where.where == space::race1) {
    b = 1;
  } else {
    return;
  }
  const std::uint64_t r = op.where.index;

  // Lemma 2.
  if (r == 1) {
    if (!input_present_[b]) {
      std::ostringstream os;
      os << "Lemma 2: pid " << pid << " set a" << b
         << "[1] but no process has input " << b;
      violation(os.str());
    }
  } else if (r >= 2 && set_cells_[b].find(r - 1) == set_cells_[b].end()) {
    std::ostringstream os;
    os << "Lemma 2: pid " << pid << " set a" << b << "[" << r << "] before a"
       << b << "[" << r - 1 << "]";
    violation(os.str());
  }

  // Lemma 4a: after a decision for bit d at round r_d, a(1-d)[r_d] must never
  // be written (this applies to every round at which some process decided).
  if (decided_bit_ != -1 && b == 1 - decided_bit_ &&
      decision_rounds_.find(r) != decision_rounds_.end()) {
    std::ostringstream os;
    os << "Lemma 4a: pid " << pid << " wrote a" << b << "[" << r
       << "] after a decision for " << decided_bit_ << " at round " << r;
    violation(os.str());
  }

  set_cells_[b].insert(r);
}

void invariant_checker::check_bit(int pid, int bit) {
  if (bit != 0 && bit != 1) {
    std::ostringstream os;
    os << "decision: pid " << pid << " decided non-bit " << bit;
    violation(os.str());
    return;
  }
  // Validity (weak form: decided bit must be someone's input; the unanimous
  // 8-operation case is asserted separately by tests via Lemma 3).
  if (!input_present_[bit]) {
    std::ostringstream os;
    os << "Validity: pid " << pid << " decided " << bit
       << " which is no process's input";
    violation(os.str());
  }
  // Agreement.
  if (decided_bit_ != -1 && bit != decided_bit_) {
    std::ostringstream os;
    os << "Agreement: pid " << pid << " decided " << bit << " but "
       << decided_bit_ << " was already decided";
    violation(os.str());
  }
  if (decided_bit_ == -1) decided_bit_ = bit;
}

void invariant_checker::on_decision(int pid, int bit, std::uint64_t round) {
  check_bit(pid, bit);
  // Lemma 4a also forbids writes to a(1-b)[r] that happened *before* the
  // decision (the proof shows such a write is incompatible with the deciding
  // read of a(1-b)[r-1] returning 0).
  if (bit == 0 || bit == 1) {
    if (set_cells_[1 - bit].find(round) != set_cells_[1 - bit].end()) {
      std::ostringstream os;
      os << "Lemma 4a: a" << (1 - bit) << "[" << round
         << "] was written although pid " << pid << " decided " << bit
         << " at round " << round;
      violation(os.str());
    }
  }
  decision_rounds_.insert(round);
  if (min_decision_round_ == 0) {
    min_decision_round_ = max_decision_round_ = round;
  } else {
    min_decision_round_ = std::min(min_decision_round_, round);
    max_decision_round_ = std::max(max_decision_round_, round);
  }
  // Lemma 4b: decisions may span at most rounds {r, r+1}.
  if (max_decision_round_ > min_decision_round_ + 1) {
    std::ostringstream os;
    os << "Lemma 4b: decision rounds span [" << min_decision_round_ << ", "
       << max_decision_round_ << "] (pid " << pid << " at round " << round
       << ")";
    violation(os.str());
  }
}

void invariant_checker::on_backup_decision(int pid, int bit) {
  check_bit(pid, bit);
}

}  // namespace leancon
