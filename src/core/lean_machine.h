// lean-consensus (paper Section 4): Chandra's PODC'96 wait-free consensus
// protocol with the shared coins removed, leaving only the racing-counters
// mechanism over two arrays of multi-writer atomic bits.
//
// Each round r executes exactly four operations, in this fixed order:
//   1. read a0[r]
//   2. read a1[r]          — if ab[r]=1 and a(1-b)[r]=0, set preference to b
//   3. write 1 to ap[r]
//   4. read a(1-p)[r-1]    — if 0, decide p
//
// The paper stresses that the seemingly superfluous write in step 3 (when
// ap[r] is already set) and the final read in step 4 must NOT be optimized
// away: slow processes must keep paying full rounds so fast processes can
// pull ahead. This implementation keeps all four operations verbatim.
#pragma once

#include <cstdint>
#include <limits>

#include "core/machine.h"

namespace leancon {

/// One process's lean-consensus execution.
class lean_machine final : public consensus_machine {
 public:
  /// Sentinel for "no round cap" (standalone use with sparse memory).
  static constexpr std::uint64_t unbounded =
      std::numeric_limits<std::uint64_t>::max();

  /// Operation phases within a round, in execution order.
  enum class phase : std::uint8_t {
    read_a0,        ///< step 1
    read_a1,        ///< step 2
    write_own,      ///< step 3
    read_rival_prev ///< step 4
  };

  /// @param input      the process's input bit (0 or 1)
  /// @param max_round  rounds after which the machine reports exhausted()
  ///                   instead of continuing (Section 8 cutoff); unbounded
  ///                   by default.
  explicit lean_machine(int input, std::uint64_t max_round = unbounded);

  operation next_op() const override;
  void apply(std::uint64_t result) override;
  bool done() const override { return decided_; }
  int decision() const override { return decision_; }
  std::uint64_t steps() const override { return steps_; }
  std::uint64_t lean_round() const override { return round_; }
  std::uint64_t preference_switches() const override { return pref_switches_; }

  /// True once the machine has completed max_round rounds without deciding;
  /// the combined protocol then hands the preference to the backup.
  bool exhausted() const { return exhausted_; }

  /// Current round (1-based; the paper's r).
  std::uint64_t round() const { return round_; }

  /// Current preference (the paper's p).
  int preference() const { return pref_; }

  /// Phase of the pending operation.
  phase current_phase() const { return phase_; }

  /// The process's input bit (immutable).
  int input() const { return input_; }

  /// The round-r value of a0 staged by step 1 (meaningful between steps 1
  /// and 2). Exposed so model checkers can key the complete machine state.
  std::uint64_t staged_a0() const { return a0_value_; }

 private:
  static space own_space(int bit) {
    return bit == 0 ? space::race0 : space::race1;
  }

  int input_;
  int pref_;
  std::uint64_t round_ = 1;
  std::uint64_t max_round_;
  phase phase_ = phase::read_a0;
  std::uint64_t a0_value_ = 0;  ///< step-1 result held until step 2
  bool decided_ = false;
  bool exhausted_ = false;
  int decision_ = -1;
  std::uint64_t steps_ = 0;
  std::uint64_t pref_switches_ = 0;
};

}  // namespace leancon
