#include "check/presets.h"

#include "check/systems.h"

namespace leancon::check {
namespace {

/// The seed picks one input combination; each combination's schedule space
/// is explored exhaustively, so a handful of trials covers the whole cube.
std::vector<int> inputs_for(std::size_t n, std::uint64_t seed) {
  const std::uint64_t combo = seed % (std::uint64_t{1} << n);
  std::vector<int> inputs(n);
  for (std::size_t i = 0; i < n; ++i) {
    inputs[i] = static_cast<int>((combo >> i) & 1);
  }
  return inputs;
}

check_preset lean_preset(std::size_t n, std::uint64_t cap) {
  check_preset p;
  p.key = "check-lean-n" + std::to_string(n);
  p.family = "lean";
  p.n = n;
  p.description = "exhaustive lean-consensus safety check, " +
                  std::to_string(n) + " processes, rounds capped at " +
                  std::to_string(cap) +
                  " (Lemmas 2/4a/4b + agreement/validity at every state; "
                  "seed selects the input combination)";
  p.build = [n, cap](std::uint64_t seed) {
    return make_lean_system(inputs_for(n, seed), cap);
  };
  return p;
}

check_preset ac_preset(std::size_t n) {
  check_preset p;
  p.key = "check-ac-n" + std::to_string(n);
  p.family = "adopt-commit";
  p.n = n;
  p.description = "exhaustive adopt-commit check, " + std::to_string(n) +
                  " processes (coherence/validity at every state, "
                  "convergence at terminal states; seed selects the input "
                  "combination)";
  p.build = [n](std::uint64_t seed) {
    return make_adopt_commit_system(inputs_for(n, seed));
  };
  return p;
}

check_preset conc_preset(std::size_t n) {
  check_preset p;
  p.key = "check-conc-n" + std::to_string(n);
  p.family = "conciliator";
  p.n = n;
  p.description = "exhaustive conciliator check, " + std::to_string(n) +
                  " processes, both outcomes of every local coin "
                  "(validity, unanimity preservation, register integrity; "
                  "seed selects the input combination)";
  p.build = [n](std::uint64_t seed) {
    return make_conciliator_system(inputs_for(n, seed));
  };
  return p;
}

check_preset abd_preset(std::size_t n) {
  check_preset p;
  p.key = "check-abd-n" + std::to_string(n);
  p.family = "abd";
  p.n = n;
  p.description = "exhaustive ABD message-layer check, " + std::to_string(n) +
                  " processes on the canonical register workload, every "
                  "delivery order (atomicity against a committed watermark, "
                  "timestamp/value consistency)";
  // The schedule space is the set of delivery orders; there is no input
  // cube, so every seed explores the same (complete) space.
  p.build = [n](std::uint64_t) { return make_abd_register_system(n); };
  return p;
}

std::vector<check_preset> build_presets() {
  std::vector<check_preset> presets;
  presets.push_back(lean_preset(2, /*cap=*/5));
  presets.push_back(lean_preset(3, /*cap=*/4));
  presets.push_back(ac_preset(2));
  presets.push_back(ac_preset(3));
  presets.push_back(conc_preset(2));
  presets.push_back(conc_preset(3));
  presets.push_back(abd_preset(2));
  presets.push_back(abd_preset(3));
  for (auto& p : presets) {
    // Safety net far above every preset's honest size (the largest, lean
    // n=3, is ~44k states): a regression that explodes the space truncates
    // and fails fast instead of grinding toward the 20M default.
    p.options.max_states = 2'000'000;
  }
  return presets;
}

}  // namespace

const std::vector<check_preset>& check_presets() {
  static const std::vector<check_preset> presets = build_presets();
  return presets;
}

const check_preset* find_check_preset(const std::string& key) {
  for (const auto& p : check_presets()) {
    if (p.key == key) return &p;
  }
  return nullptr;
}

trial_outcome run_check_trial(const check_preset& preset,
                              std::uint64_t seed) {
  const mc_verdict v = explore(*preset.build(seed), preset.options);
  trial_outcome out;
  out.decided = !v.truncated;
  out.violation = v.violations_total > 0;
  auto& m = out.metrics;
  m.observe("states_visited", static_cast<double>(v.states_visited),
            metric_rollup::mean_and_sum);
  m.observe("transitions", static_cast<double>(v.transitions),
            metric_rollup::mean);
  m.observe("deduped", static_cast<double>(v.deduped), metric_rollup::mean);
  m.observe("por_skipped", static_cast<double>(v.por_skipped),
            metric_rollup::mean);
  m.observe("terminal_states", static_cast<double>(v.terminal_states),
            metric_rollup::mean);
  m.observe("frontier_peak", static_cast<double>(v.frontier_peak),
            metric_rollup::mean);
  m.observe("max_depth", static_cast<double>(v.max_depth_seen),
            metric_rollup::location);
  m.observe("max_progress", static_cast<double>(v.max_progress),
            metric_rollup::mean);
  return out;
}

}  // namespace leancon::check
