#include "check/explorer.h"

#include <deque>
#include <limits>
#include <unordered_set>
#include <utility>

#include "obs/obs.h"

namespace leancon::check {
namespace {

struct frontier_node {
  std::unique_ptr<checkable> sys;
  std::uint64_t depth = 0;
};

std::uint64_t hash_of(const checkable& sys) {
  state_hasher h;
  sys.hash_state(h);
  return h.digest();
}

}  // namespace

mc_verdict explore(const checkable& initial, const explore_options& opts) {
  mc_verdict verdict;
  violation_sink sink(opts.max_violation_reports);

  obs::span explore_span("check.explore");
  static auto* explored_counter = obs::counter("check.states_visited");
  const bool obs_on = obs::enabled();
  if (obs_on) {
    obs::emit(obs::event_kind::explore_begin,
              std::numeric_limits<double>::quiet_NaN(), opts.max_states,
              opts.max_depth);
  }
  // Frontier milestones: every new maximum depth plus every kMilestone
  // states, so even tiny explorations leave a visible trail and huge ones
  // stay bounded.
  constexpr std::uint64_t kMilestone = 4096;
  std::uint64_t next_milestone = kMilestone;
  std::uint64_t last_depth_reported = 0;

  std::deque<frontier_node> frontier;
  std::unordered_set<std::uint64_t> visited;

  visited.insert(hash_of(initial));
  frontier.push_back({initial.clone(), 0});
  verdict.frontier_peak = 1;

  std::vector<check_action> actions;
  while (!frontier.empty()) {
    if (verdict.states_visited >= opts.max_states) {
      verdict.truncated = true;
      break;
    }
    frontier_node node;
    if (opts.order == frontier_order::dfs) {
      node = std::move(frontier.back());
      frontier.pop_back();
    } else {
      node = std::move(frontier.front());
      frontier.pop_front();
    }

    ++verdict.states_visited;
    if (node.depth > verdict.max_depth_seen) {
      verdict.max_depth_seen = node.depth;
      if (obs_on && node.depth >= last_depth_reported + 1) {
        last_depth_reported = node.depth;
        obs::emit(obs::event_kind::frontier,
                  std::numeric_limits<double>::quiet_NaN(),
                  verdict.states_visited, frontier.size(), node.depth);
      }
    }
    if (obs_on && verdict.states_visited >= next_milestone) {
      next_milestone += kMilestone;
      obs::emit(obs::event_kind::frontier,
                std::numeric_limits<double>::quiet_NaN(),
                verdict.states_visited, frontier.size(),
                verdict.max_depth_seen);
    }
    const std::uint64_t progress = node.sys->progress();
    if (progress > verdict.max_progress) verdict.max_progress = progress;
    node.sys->check(sink);

    actions.clear();
    node.sys->enabled(actions);
    if (actions.empty()) {
      ++verdict.terminal_states;
      node.sys->check_terminal(sink);
      continue;
    }
    if (opts.max_depth != 0 && node.depth >= opts.max_depth) {
      verdict.truncated = true;  // enabled actions were left unexplored
      continue;
    }

    // Partial-order reduction: an invisible action commutes with every
    // other transition and cannot affect any invariant, so firing it alone
    // reaches (a superset of the behavior of) every skipped interleaving.
    std::size_t begin = 0, end = actions.size();
    if (opts.por) {
      for (std::size_t i = 0; i < actions.size(); ++i) {
        if (actions[i].invisible) {
          begin = i;
          end = i + 1;
          verdict.por_skipped += actions.size() - 1;
          break;
        }
      }
    }

    for (std::size_t i = begin; i < end; ++i) {
      ++verdict.transitions;
      // The last expansion consumes the node in place; earlier ones clone.
      std::unique_ptr<checkable> next =
          i + 1 == end ? std::move(node.sys) : node.sys->clone();
      next->apply(actions[i].id);
      if (!visited.insert(hash_of(*next)).second) {
        ++verdict.deduped;
        continue;
      }
      frontier.push_back({std::move(next), node.depth + 1});
      if (frontier.size() > verdict.frontier_peak) {
        verdict.frontier_peak = frontier.size();
      }
    }
  }

  verdict.violations_total = sink.total();
  verdict.violations = sink.distinct();
  explored_counter->fetch_add(verdict.states_visited,
                              std::memory_order_relaxed);
  if (obs_on) {
    obs::emit(obs::event_kind::explore_end,
              std::numeric_limits<double>::quiet_NaN(),
              verdict.states_visited, verdict.violations_total != 0 ? 1 : 0);
  }
  return verdict;
}

}  // namespace leancon::check
