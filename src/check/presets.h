// The surface layer of src/check/: named exhaustive-checking presets that
// plug into the scenario registry and the bench/model_check driver.
//
// A check preset is a pure function of (key, seed): `build(seed)` yields the
// initial joint state (the seed selects the input combination for the
// register protocols — every combination is itself explored exhaustively,
// the seed only picks which one this trial covers), and `run_check_trial`
// maps the explorer's verdict onto the unified trial_outcome form. Every
// emitted metric is structural (state counts, depths, frontier sizes) and
// therefore deterministic per seed, preserving the campaign engine's
// bit-identical merging; wall-clock rates (states_per_sec) exist only in
// bench/model_check, computed from harness timing.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "check/explorer.h"
#include "stats/metric_set.h"

namespace leancon::check {

struct check_preset {
  std::string key;     ///< registry key, e.g. "check-lean-n2"
  std::string family;  ///< "lean" | "adopt-commit" | "conciliator" | "abd"
  std::size_t n;       ///< process count baked into the preset
  std::string description;
  /// Builds the initial joint state for this trial's seed.
  std::function<std::unique_ptr<checkable>(std::uint64_t seed)> build;
  /// Default exploration bounds for this preset.
  explore_options options;
};

/// All check presets, in display order. Keys are unique and prefixed
/// "check-".
const std::vector<check_preset>& check_presets();

/// Preset by key; nullptr when unknown.
const check_preset* find_check_preset(const std::string& key);

/// Explores build(seed) under the preset's options and reports the verdict
/// as a trial: decided = the bounded space was fully explored, violation =
/// any invariant failed, metrics = the structural exploration counts.
trial_outcome run_check_trial(const check_preset& preset, std::uint64_t seed);

}  // namespace leancon::check
