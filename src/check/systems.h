// Concrete checkable systems: the joint state of each protocol family plus
// its shared medium, ready for src/check/explorer.
//
//   * lean        — lean_machine processes over the two racing-bit arrays
//                   (Lemmas 2/4a/4b + agreement/validity at every state).
//   * adopt-commit— adopt_commit_machine processes over the doorway/proposal
//                   registers (coherence/validity per state, convergence at
//                   terminal states).
//   * conciliator — conciliator_machine processes over the race register,
//                   exploring BOTH outcomes of every consumed local coin
//                   (validity, unanimity preservation, register integrity).
//   * abd         — scripted register clients over a model of the abd_sim
//                   message layer: the network is the multiset of pending
//                   messages, every delivery order is explored, and ABD
//                   atomicity (completed-operation timestamps against a
//                   ghost committed watermark, timestamp->value consistency)
//                   is asserted at every state.
//
// Every factory has a fault-injection variant that seeds the shared medium
// (or weakens the ABD quorum) so tests can drive the violation path of the
// whole stack, not just the happy path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "check/checkable.h"
#include "memory/register_model.h"

namespace leancon::check {

/// Lean-consensus at `inputs.size()` processes, rounds capped at
/// `round_cap` (machines exhaust past it; safety must hold regardless).
std::unique_ptr<checkable> make_lean_system(std::vector<int> inputs,
                                            std::uint64_t round_cap);

/// Fault injection: start from the given array bitmasks (bit r of `aB` is
/// aB[r]; the honest initial state is a0 = a1 = 1, the virtual 1-prefix).
std::unique_ptr<checkable> make_lean_system_with_arrays(
    std::vector<int> inputs, std::uint64_t round_cap, std::uint64_t a0,
    std::uint64_t a1);

/// One adopt-commit object at `inputs.size()` processes.
std::unique_ptr<checkable> make_adopt_commit_system(std::vector<int> inputs);

/// Fault injection: seed the doorway bits and the (encoded) proposal.
std::unique_ptr<checkable> make_adopt_commit_system_with_registers(
    std::vector<int> inputs, std::uint64_t door0, std::uint64_t door1,
    std::uint64_t proposal);

/// One conciliator round at `inputs.size()` processes; both coin outcomes
/// are explored wherever a step consumes the local coin.
std::unique_ptr<checkable> make_conciliator_system(std::vector<int> inputs);

/// Fault injection: seed the (encoded) race register.
std::unique_ptr<checkable> make_conciliator_system_with_register(
    std::vector<int> inputs, std::uint64_t reg);

/// ABD-emulated registers: process p runs `scripts[p]` (read/write
/// operations, executed sequentially) over the two-phase majority protocol;
/// every message delivery order is explored.
std::unique_ptr<checkable> make_abd_system(
    std::vector<std::vector<operation>> scripts);

/// Fault injection: override the quorum size (the honest value is
/// n/2 + 1; e.g. 1 makes two disjoint "majorities" possible and lets the
/// explorer reach a stale read, proving the atomicity check has teeth).
std::unique_ptr<checkable> make_abd_system_with_quorum(
    std::vector<std::vector<operation>> scripts, std::uint32_t quorum);

/// The canonical n-process register workload used by the check-abd presets:
/// concurrent writers of distinct values plus a double reader, all on one
/// location.
std::unique_ptr<checkable> make_abd_register_system(std::size_t n);

}  // namespace leancon::check
