// The exploration engine of src/check/: one explorer for every checkable
// system, replacing the per-protocol copy-pasted search loops that used to
// live in tests/model_check.h.
//
//   * DFS or BFS frontier order — the reachable set (and therefore
//     states_visited) is identical either way, which the bench driver and
//     the determinism tests assert.
//   * Memoized state dedup via the splitmix64 state hash.
//   * State and depth bounds (a depth bound prunes order-dependently; the
//     golden-count presets run unbounded and rely on the machines' own
//     round caps for finiteness).
//   * A partial-order-reduction pass: when a system flags an enabled
//     action as invisible (independent of every other transition and of
//     the invariants), the explorer fires it alone and skips the
//     commuting siblings. The reduced verdict must match the full one —
//     property-tested across every preset — while visiting strictly fewer
//     states wherever invisible actions occur.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "check/checkable.h"

namespace leancon::check {

enum class frontier_order : std::uint8_t { dfs, bfs };

struct explore_options {
  frontier_order order = frontier_order::dfs;
  /// Fire a flagged-invisible action as a singleton ample set.
  bool por = true;
  /// Hard cap on visited states; exceeding it sets verdict.truncated.
  std::uint64_t max_states = 20'000'000;
  /// 0 = unbounded. A bounded exploration prunes states whose discovery
  /// depth exceeds the bound, so visited counts become frontier-order
  /// dependent — use only as a safety net, never under a golden count.
  std::uint64_t max_depth = 0;
  /// Distinct violation strings retained (the total is always counted).
  std::size_t max_violation_reports = 8;
};

/// Everything one exploration established. ok() is the verdict the
/// scenario presets and the bench assert: the full bounded space was
/// explored and no invariant ever failed.
struct mc_verdict {
  std::uint64_t states_visited = 0;   ///< distinct states expanded
  std::uint64_t transitions = 0;      ///< actions fired
  std::uint64_t deduped = 0;          ///< successors already in the table
  std::uint64_t por_skipped = 0;      ///< commuting siblings never fired
  std::uint64_t terminal_states = 0;  ///< states with no enabled action
  std::uint64_t frontier_peak = 0;    ///< high-water frontier size
  std::uint64_t max_depth_seen = 0;   ///< deepest discovery depth
  std::uint64_t max_progress = 0;     ///< peak checkable::progress() seen
  bool truncated = false;             ///< a bound cut the exploration short
  std::uint64_t violations_total = 0;
  std::vector<std::string> violations;  ///< first K distinct messages

  bool ok() const { return violations_total == 0 && !truncated; }
};

/// Explores every schedule of `initial` reachable within the bounds.
/// `initial` itself is not modified.
mc_verdict explore(const checkable& initial, const explore_options& opts = {});

}  // namespace leancon::check
