#include "check/systems.h"

#include <algorithm>
#include <string>
#include <tuple>
#include <utility>

#include "backup/adopt_commit.h"
#include "backup/conciliator.h"
#include "core/lean_machine.h"
#include "msg/abd_sim.h"

namespace leancon::check {
namespace {

bool input_present(const std::vector<int>& inputs, int v) {
  for (int in : inputs) {
    if (in == v) return true;
  }
  return false;
}

bool unanimous(const std::vector<int>& inputs) {
  for (int in : inputs) {
    if (in != inputs[0]) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// Lean-consensus: machines over the two racing-bit arrays. Bit r of a_[b]
// is the value of ab[r]; the honest initial state sets bit 0 (the virtual
// 1-prefix a*[0] = 1). The cap must stay <= 62 so rounds fit the masks.
// ---------------------------------------------------------------------------

class lean_system final : public checkable {
 public:
  lean_system(std::vector<int> inputs, std::uint64_t cap, std::uint64_t a0,
              std::uint64_t a1)
      : inputs_(std::move(inputs)) {
    a_[0] = a0;
    a_[1] = a1;
    machines_.reserve(inputs_.size());
    for (int b : inputs_) machines_.emplace_back(b, cap);
  }

  std::unique_ptr<checkable> clone() const override {
    return std::make_unique<lean_system>(*this);
  }

  void enabled(std::vector<check_action>& out) const override {
    for (std::uint32_t i = 0; i < machines_.size(); ++i) {
      const auto& m = machines_[i];
      if (m.done() || m.exhausted()) continue;
      check_action a{i, false};
      // Step 3's write is invisible when the bit is already set: the shared
      // arrays don't change, the machine's own phase advance is private, and
      // a write's effect cannot be altered by any other transition.
      if (m.current_phase() == lean_machine::phase::write_own) {
        const operation op = m.next_op();
        const int array = op.where.where == space::race0 ? 0 : 1;
        a.invisible = ((a_[array] >> op.where.index) & 1) != 0;
      }
      out.push_back(a);
    }
  }

  void apply(std::uint32_t action_id) override {
    auto& m = machines_[action_id];
    const operation op = m.next_op();
    const int array = op.where.where == space::race0 ? 0 : 1;
    std::uint64_t value = 1;
    if (op.kind == op_kind::read) {
      value = (a_[array] >> op.where.index) & 1;
    } else {
      a_[array] |= std::uint64_t{1} << op.where.index;
    }
    m.apply(value);
  }

  void hash_state(state_hasher& h) const override {
    for (const auto& m : machines_) {
      h.word((static_cast<std::uint64_t>(m.current_phase()) << 0) |
             (static_cast<std::uint64_t>(m.preference()) << 2) |
             (m.round() << 3) | (m.staged_a0() << 11) |
             (static_cast<std::uint64_t>(m.done()) << 12) |
             (static_cast<std::uint64_t>(m.done() ? m.decision() : 0) << 13) |
             (static_cast<std::uint64_t>(m.exhausted()) << 14));
    }
    h.word(a_[0]);
    h.word(a_[1]);
  }

  void check(violation_sink& sink) const override {
    // Lemma 2: each array is a contiguous prefix of set bits (bits+1 is a
    // power of two iff bits is all-ones from bit 0).
    for (int b = 0; b < 2; ++b) {
      const std::uint64_t bits = a_[b];
      if ((bits & (bits + 1)) != 0) {
        sink.report("Lemma 2: a" + std::to_string(b) +
                    " not contiguous: " + std::to_string(bits));
      }
      // Validity precondition of Lemma 2(a): a_b[1] set requires input b.
      if ((bits & 2) != 0 && !input_present(inputs_, b)) {
        sink.report("Lemma 2a: a" + std::to_string(b) +
                    "[1] set without input " + std::to_string(b));
      }
    }
    int decided_bit = -1;
    std::uint64_t min_round = 0, max_round = 0;
    for (const auto& m : machines_) {
      if (!m.done()) continue;
      const int bit = m.decision();
      const std::uint64_t r = m.round();
      if (!input_present(inputs_, bit)) {
        sink.report("Validity: decided " + std::to_string(bit));
      }
      if (decided_bit == -1) {
        decided_bit = bit;
        min_round = max_round = r;
      } else {
        if (bit != decided_bit) {
          sink.report("Agreement: " + std::to_string(bit) + " vs " +
                      std::to_string(decided_bit));
        }
        min_round = std::min(min_round, r);
        max_round = std::max(max_round, r);
      }
      // Lemma 4a: rival array bit at the decision round must be clear.
      if ((a_[1 - bit] >> r) & 1) {
        sink.report("Lemma 4a: a" + std::to_string(1 - bit) + "[" +
                    std::to_string(r) + "] set despite decision");
      }
    }
    // Lemma 4b: all decision rounds within a window of one.
    if (decided_bit != -1 && max_round > min_round + 1) {
      sink.report("Lemma 4b: rounds span [" + std::to_string(min_round) +
                  "," + std::to_string(max_round) + "]");
    }
  }

  std::uint64_t progress() const override {
    std::uint64_t decided = 0;
    for (const auto& m : machines_) decided += m.done() ? 1 : 0;
    return decided;
  }

 private:
  std::vector<int> inputs_;
  std::vector<lean_machine> machines_;
  std::uint64_t a_[2] = {0, 0};
};

// ---------------------------------------------------------------------------
// Adopt-commit: machines over door[2] + proposal (encoded; 0 = empty).
// ---------------------------------------------------------------------------

class adopt_commit_system final : public checkable {
 public:
  adopt_commit_system(std::vector<int> inputs, std::uint64_t door0,
                      std::uint64_t door1, std::uint64_t proposal)
      : inputs_(std::move(inputs)), proposal_(proposal) {
    door_[0] = door0;
    door_[1] = door1;
    machines_.reserve(inputs_.size());
    for (int b : inputs_) machines_.emplace_back(/*round=*/1, b);
  }

  std::unique_ptr<checkable> clone() const override {
    return std::make_unique<adopt_commit_system>(*this);
  }

  void enabled(std::vector<check_action>& out) const override {
    for (std::uint32_t i = 0; i < machines_.size(); ++i) {
      const auto& m = machines_[i];
      if (m.done()) continue;
      check_action a{i, false};
      // A write whose target already holds the written word is invisible.
      const operation op = m.next_op();
      if (op.kind == op_kind::write) {
        a.invisible = register_of(op.where.where) == op.value;
      }
      out.push_back(a);
    }
  }

  void apply(std::uint32_t action_id) override {
    auto& m = machines_[action_id];
    const operation op = m.next_op();
    std::uint64_t& reg = register_of(op.where.where);
    std::uint64_t value = 0;
    if (op.kind == op_kind::read) {
      value = reg;
    } else {
      reg = op.value;
      value = op.value;
    }
    m.apply(value);
  }

  void hash_state(state_hasher& h) const override {
    for (const auto& m : machines_) {
      std::uint64_t enc = static_cast<std::uint64_t>(m.phase_index()) |
                          (static_cast<std::uint64_t>(m.done()) << 8);
      if (m.done()) {
        enc |= (static_cast<std::uint64_t>(m.value()) << 9) |
               (static_cast<std::uint64_t>(
                    m.outcome() == adopt_commit_machine::verdict::commit)
                << 10);
      }
      h.word(enc);
    }
    h.word(door_[0]);
    h.word(door_[1]);
    h.word(proposal_);
  }

  void check(violation_sink& sink) const override {
    // Coherence and validity hold at every state over the machines done so
    // far (their verdicts are final).
    int committed_value = -1;
    for (const auto& m : machines_) {
      if (!m.done()) continue;
      if (m.outcome() == adopt_commit_machine::verdict::commit) {
        if (committed_value != -1 && committed_value != m.value()) {
          sink.report("AC: two different commits");
        }
        committed_value = m.value();
      }
      if (!input_present(inputs_, m.value())) {
        sink.report("AC validity: returned " + std::to_string(m.value()));
      }
    }
    if (committed_value != -1) {
      for (const auto& m : machines_) {
        if (m.done() && m.value() != committed_value) {
          sink.report("AC coherence: adopt " + std::to_string(m.value()) +
                      " alongside commit " + std::to_string(committed_value));
        }
      }
    }
  }

  void check_terminal(violation_sink& sink) const override {
    // Convergence needs the complete return set: unanimous inputs force
    // every process to (commit, input).
    if (!unanimous(inputs_)) return;
    for (const auto& m : machines_) {
      if (m.outcome() != adopt_commit_machine::verdict::commit ||
          m.value() != inputs_[0]) {
        sink.report("AC convergence violated");
      }
    }
  }

  std::uint64_t progress() const override {
    std::uint64_t done = 0;
    for (const auto& m : machines_) done += m.done() ? 1 : 0;
    return done;
  }

 private:
  std::uint64_t& register_of(space s) {
    return s == space::ac_door0   ? door_[0]
           : s == space::ac_door1 ? door_[1]
                                  : proposal_;
  }
  std::uint64_t register_of(space s) const {
    return const_cast<adopt_commit_system*>(this)->register_of(s);
  }

  std::vector<int> inputs_;
  std::vector<adopt_commit_machine> machines_;
  std::uint64_t door_[2] = {0, 0};
  std::uint64_t proposal_ = 0;
};

// ---------------------------------------------------------------------------
// Conciliator: machines over the race register, with BOTH outcomes of every
// consumed coin enumerated as separate actions (id = 2*machine + outcome).
// A step consumes the coin iff the machine is about to read an empty
// register — the only path that reaches coin_source::flip.
// ---------------------------------------------------------------------------

class conciliator_system final : public checkable {
 public:
  conciliator_system(std::vector<int> inputs, std::uint64_t reg)
      : inputs_(std::move(inputs)), reg_(reg) {
    machines_.reserve(inputs_.size());
    for (int b : inputs_) {
      // The write probability is irrelevant under a forced coin; any value
      // in (0, 1] is accepted by the constructor.
      machines_.emplace_back(/*round=*/1, b, 0.5, &coin_);
    }
  }

  conciliator_system(const conciliator_system& other)
      : inputs_(other.inputs_),
        coin_(other.coin_),
        machines_(other.machines_),
        reg_(other.reg_) {
    for (auto& m : machines_) m.rebind_coin(&coin_);
  }

  std::unique_ptr<checkable> clone() const override {
    return std::make_unique<conciliator_system>(*this);
  }

  void enabled(std::vector<check_action>& out) const override {
    for (std::uint32_t i = 0; i < machines_.size(); ++i) {
      const auto& m = machines_[i];
      if (m.done()) continue;
      const operation op = m.next_op();
      if (op.kind == op_kind::read && proposal_empty(reg_)) {
        // The read will consume the coin: explore both outcomes.
        out.push_back({2 * i + 0, false});
        out.push_back({2 * i + 1, false});
      } else {
        // Re-writing the value the register already holds is invisible.
        const bool idempotent = op.kind == op_kind::write && reg_ == op.value;
        out.push_back({2 * i + 0, idempotent});
      }
    }
  }

  void apply(std::uint32_t action_id) override {
    coin_.value = (action_id & 1) != 0;
    auto& m = machines_[action_id >> 1];
    const operation op = m.next_op();
    std::uint64_t value = 0;
    if (op.kind == op_kind::read) {
      value = reg_;
    } else {
      reg_ = op.value;
      value = op.value;
    }
    m.apply(value);
  }

  void hash_state(state_hasher& h) const override {
    for (const auto& m : machines_) {
      h.word(static_cast<std::uint64_t>(m.phase_index()) |
             (static_cast<std::uint64_t>(m.done()) << 8) |
             (static_cast<std::uint64_t>(m.done() ? m.value() + 1 : 0) << 9));
    }
    h.word(reg_);
  }

  void check(violation_sink& sink) const override {
    if (!proposal_empty(reg_) &&
        !input_present(inputs_, decode_proposal(reg_))) {
      sink.report("conciliator: register holds non-input");
    }
    const bool all_same = unanimous(inputs_);
    for (const auto& m : machines_) {
      if (!m.done()) continue;
      if (!input_present(inputs_, m.value())) {
        sink.report("conciliator validity: returned " +
                    std::to_string(m.value()));
      }
      if (all_same && m.value() != inputs_[0]) {
        sink.report("conciliator unanimity violated");
      }
    }
  }

  std::uint64_t progress() const override {
    std::uint64_t done = 0;
    for (const auto& m : machines_) done += m.done() ? 1 : 0;
    return done;
  }

 private:
  /// Coin returning a preset outcome; apply() sets it from the action id
  /// immediately before the step that may consume it.
  struct forced_coin final : coin_source {
    bool value = false;
    bool flip(double) override { return value; }
  };

  std::vector<int> inputs_;
  forced_coin coin_;
  std::vector<conciliator_machine> machines_;
  std::uint64_t reg_ = 0;
};

// ---------------------------------------------------------------------------
// ABD: scripted register clients over a model of the abd_sim message layer.
// The network is the multiset of pending messages, kept as a sorted vector
// so two states with the same pending multiset hash identically; one action
// = deliver one pending message (adjacent duplicates are enumerated once —
// delivering either copy yields the same successor).
//
// Atomicity is asserted against ghost state the protocol cannot see: a
// per-location committed watermark (the highest timestamp any COMPLETED
// operation settled on) plus each client's last-completed-operation record.
// A write must complete above the watermark it started after; a read must
// not complete below it (no stale reads past a completed write). Equal
// timestamps must carry equal values everywhere they appear.
// ---------------------------------------------------------------------------

enum class abd_kind : std::uint8_t { query, query_ack, update, update_ack };

struct abd_cell {
  std::uint64_t value = 0;
  abd_timestamp ts;
  friend bool operator==(const abd_cell&, const abd_cell&) = default;
};

struct abd_message {
  abd_kind kind = abd_kind::query;
  std::int32_t from = 0;
  std::int32_t to = 0;
  std::uint32_t op_id = 0;
  std::uint32_t loc = 0;
  abd_cell cell;

  friend bool operator==(const abd_message&, const abd_message&) = default;
  friend bool operator<(const abd_message& a, const abd_message& b) {
    return std::tuple(a.to, static_cast<int>(a.kind), a.from, a.op_id, a.loc,
                      a.cell.ts.seq, a.cell.ts.writer, a.cell.value) <
           std::tuple(b.to, static_cast<int>(b.kind), b.from, b.op_id, b.loc,
                      b.cell.ts.seq, b.cell.ts.writer, b.cell.value);
  }
};

struct abd_client {
  std::uint32_t pos = 0;  ///< script position; == ops completed so far
  bool active = false;
  std::uint8_t phase = 1;
  std::uint32_t acks = 0;
  abd_cell best;
  abd_timestamp started_after;  ///< committed watermark when the op began
  // Last completed operation (ghost, for the atomicity invariant).
  bool has_completed = false;
  bool last_was_write = false;
  std::uint32_t last_loc = 0;
  std::uint64_t last_value = 0;
  abd_timestamp last_ts;
  abd_timestamp last_started_after;
};

class abd_system final : public checkable {
 public:
  abd_system(std::vector<std::vector<operation>> scripts,
             std::uint32_t quorum)
      : scripts_(std::make_shared<const std::vector<std::vector<operation>>>(
            std::move(scripts))),
        quorum_(quorum) {
    const std::size_t n = scripts_->size();
    for (const auto& script : *scripts_) {
      for (const auto& op : script) {
        if (loc_index(op.where) == locs_.size()) locs_.push_back(op.where);
      }
    }
    replicas_.assign(n, std::vector<abd_cell>(locs_.size()));
    committed_.assign(locs_.size(), abd_timestamp{});
    clients_.assign(n, abd_client{});
    for (std::size_t p = 0; p < n; ++p) {
      if (!(*scripts_)[p].empty()) start_op(static_cast<int>(p));
    }
  }

  std::unique_ptr<checkable> clone() const override {
    return std::make_unique<abd_system>(*this);  // scripts_ shared, immutable
  }

  void enabled(std::vector<check_action>& out) const override {
    for (std::uint32_t i = 0; i < network_.size(); ++i) {
      if (i > 0 && network_[i] == network_[i - 1]) continue;
      out.push_back({i, is_invisible(network_[i])});
    }
  }

  void apply(std::uint32_t action_id) override {
    const abd_message msg = network_[action_id];
    network_.erase(network_.begin() + action_id);
    switch (msg.kind) {
      case abd_kind::query:
        send({abd_kind::query_ack, msg.to, msg.from, msg.op_id, msg.loc,
              replicas_[static_cast<std::size_t>(msg.to)][msg.loc]});
        break;
      case abd_kind::update: {
        abd_cell& cell = replicas_[static_cast<std::size_t>(msg.to)][msg.loc];
        if (cell.ts < msg.cell.ts) cell = msg.cell;
        send({abd_kind::update_ack, msg.to, msg.from, msg.op_id, msg.loc,
              abd_cell{}});
        break;
      }
      case abd_kind::query_ack: {
        abd_client& c = clients_[static_cast<std::size_t>(msg.to)];
        if (!c.active || current_op_id(msg.to) != msg.op_id || c.phase != 1) {
          break;
        }
        if (c.acks == 0 || c.best.ts < msg.cell.ts) c.best = msg.cell;
        ++c.acks;
        if (c.acks >= quorum_) {
          // Phase 2: a write imposes a fresh higher timestamp; a read
          // writes back what it is about to return.
          c.phase = 2;
          c.acks = 0;
          const operation& op = current_op(msg.to);
          abd_cell payload;
          if (op.kind == op_kind::write) {
            payload.value = op.value;
            payload.ts = abd_timestamp{c.best.ts.seq + 1, msg.to};
            c.best = payload;
          } else {
            payload = c.best;
          }
          for (std::size_t to = 0; to < clients_.size(); ++to) {
            send({abd_kind::update, msg.to, static_cast<std::int32_t>(to),
                  msg.op_id, msg.loc, payload});
          }
        }
        break;
      }
      case abd_kind::update_ack: {
        abd_client& c = clients_[static_cast<std::size_t>(msg.to)];
        if (!c.active || current_op_id(msg.to) != msg.op_id || c.phase != 2) {
          break;
        }
        ++c.acks;
        if (c.acks >= quorum_) complete_op(msg.to);
        break;
      }
    }
  }

  void hash_state(state_hasher& h) const override {
    for (std::size_t p = 0; p < clients_.size(); ++p) {
      const abd_client& c = clients_[p];
      h.word(c.pos);
      h.word((c.active ? 1u : 0u) | (static_cast<std::uint64_t>(c.phase) << 1) |
             (static_cast<std::uint64_t>(c.acks) << 8));
      hash_cell(h, c.best);
      hash_ts(h, c.started_after);
      h.word((c.has_completed ? 1u : 0u) | (c.last_was_write ? 2u : 0u) |
             (static_cast<std::uint64_t>(c.last_loc) << 2));
      h.word(c.last_value);
      hash_ts(h, c.last_ts);
      hash_ts(h, c.last_started_after);
      for (const abd_cell& cell : replicas_[p]) hash_cell(h, cell);
    }
    for (const abd_timestamp& ts : committed_) hash_ts(h, ts);
    h.word(network_.size());
    for (const abd_message& m : network_) {
      h.word(static_cast<std::uint64_t>(m.kind) |
             (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.from))
              << 8) |
             (static_cast<std::uint64_t>(static_cast<std::uint32_t>(m.to))
              << 20) |
             (static_cast<std::uint64_t>(m.op_id) << 32));
      h.word(m.loc);
      hash_cell(h, m.cell);
    }
  }

  void check(violation_sink& sink) const override {
    // Atomicity of completed operations against the ghost watermark.
    for (const abd_client& c : clients_) {
      if (!c.has_completed) continue;
      if (c.last_was_write) {
        if (!(c.last_started_after < c.last_ts)) {
          sink.report("abd atomicity: write completed at ts not above the "
                      "watermark it started after");
        }
      } else if (c.last_ts < c.last_started_after) {
        sink.report("abd atomicity: stale read (completed below the "
                    "watermark it started after)");
      }
    }
    // Timestamp -> value consistency per location: a timestamp is written
    // with exactly one value, so every carrier of (loc, ts) must agree.
    cells_.clear();
    for (std::size_t p = 0; p < clients_.size(); ++p) {
      for (std::uint32_t l = 0; l < locs_.size(); ++l) {
        note_cell(l, replicas_[p][l]);
      }
      const abd_client& c = clients_[p];
      if (c.active && (c.phase == 2 || c.acks > 0)) {
        note_cell(current_loc(static_cast<int>(p)), c.best);
      }
      if (c.has_completed) {
        note_cell(c.last_loc, abd_cell{c.last_value, c.last_ts});
      }
    }
    for (const abd_message& m : network_) {
      if (m.kind == abd_kind::query_ack || m.kind == abd_kind::update) {
        note_cell(m.loc, m.cell);
      }
    }
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      for (std::size_t j = i + 1; j < cells_.size(); ++j) {
        if (std::get<0>(cells_[i]) == std::get<0>(cells_[j]) &&
            std::get<1>(cells_[i]) == std::get<1>(cells_[j]) &&
            std::get<2>(cells_[i]) != std::get<2>(cells_[j])) {
          sink.report("abd: one timestamp carries two values");
        }
      }
    }
  }

  void check_terminal(violation_sink& sink) const override {
    // With an honest quorum the network only drains once every script
    // finished: an in-flight phase always has outstanding messages.
    for (std::size_t p = 0; p < clients_.size(); ++p) {
      if (clients_[p].active || clients_[p].pos < (*scripts_)[p].size()) {
        sink.report("abd: empty network with unfinished scripts (process " +
                    std::to_string(p) + ")");
      }
    }
  }

  std::uint64_t progress() const override {
    std::uint64_t completed = 0;
    for (const abd_client& c : clients_) completed += c.pos;
    return completed;
  }

 private:
  static void hash_ts(state_hasher& h, const abd_timestamp& ts) {
    h.word(ts.seq);
    h.word(static_cast<std::uint64_t>(static_cast<std::int64_t>(ts.writer)));
  }
  static void hash_cell(state_hasher& h, const abd_cell& cell) {
    h.word(cell.value);
    hash_ts(h, cell.ts);
  }

  std::uint32_t loc_index(const location& where) const {
    for (std::uint32_t i = 0; i < locs_.size(); ++i) {
      if (locs_[i] == where) return i;
    }
    return static_cast<std::uint32_t>(locs_.size());
  }

  const operation& current_op(int pid) const {
    const abd_client& c = clients_[static_cast<std::size_t>(pid)];
    return (*scripts_)[static_cast<std::size_t>(pid)][c.pos];
  }
  std::uint32_t current_loc(int pid) const {
    return loc_index(current_op(pid).where);
  }
  // Deterministic per-(process, script position) id; never reused, so a
  // message from an earlier operation can never be mistaken for the
  // current one.
  std::uint32_t current_op_id(int pid) const {
    return static_cast<std::uint32_t>(pid) * 64u +
           clients_[static_cast<std::size_t>(pid)].pos + 1u;
  }

  void send(abd_message msg) {
    network_.insert(std::upper_bound(network_.begin(), network_.end(), msg),
                    msg);
  }

  void start_op(int pid) {
    abd_client& c = clients_[static_cast<std::size_t>(pid)];
    c.active = true;
    c.phase = 1;
    c.acks = 0;
    c.best = abd_cell{};
    const std::uint32_t loc = current_loc(pid);
    c.started_after = committed_[loc];
    for (std::size_t to = 0; to < clients_.size(); ++to) {
      send({abd_kind::query, pid, static_cast<std::int32_t>(to),
            current_op_id(pid), loc, abd_cell{}});
    }
  }

  void complete_op(int pid) {
    abd_client& c = clients_[static_cast<std::size_t>(pid)];
    const operation& op = current_op(pid);
    const std::uint32_t loc = current_loc(pid);
    c.has_completed = true;
    c.last_was_write = op.kind == op_kind::write;
    c.last_loc = loc;
    c.last_value = op.kind == op_kind::read ? c.best.value : op.value;
    c.last_ts = c.best.ts;
    c.last_started_after = c.started_after;
    if (committed_[loc] < c.best.ts) committed_[loc] = c.best.ts;
    c.active = false;
    ++c.pos;
    if (c.pos < (*scripts_)[static_cast<std::size_t>(pid)].size()) {
      start_op(pid);
    }
  }

  bool is_invisible(const abd_message& msg) const {
    switch (msg.kind) {
      case abd_kind::query:
        // Reads the target's replica, which other deliveries mutate.
        return false;
      case abd_kind::update: {
        // A no-op update (timestamp not above the replica's) stays a no-op
        // forever — replica timestamps only grow — and its ack carries no
        // payload, so delivering it commutes with everything.
        const abd_cell& cell =
            replicas_[static_cast<std::size_t>(msg.to)][msg.loc];
        return !(cell.ts < msg.cell.ts);
      }
      case abd_kind::query_ack: {
        const abd_client& c = clients_[static_cast<std::size_t>(msg.to)];
        // Stale acks (finished/superseded op or wrong phase) are dropped;
        // staleness is permanent because op ids are never reused. Live
        // ones fold into `best`, which feeds the phase-2 payload — order
        // matters, so they stay visible even below the quorum.
        return !c.active || current_op_id(msg.to) != msg.op_id ||
               c.phase != 1;
      }
      case abd_kind::update_ack: {
        const abd_client& c = clients_[static_cast<std::size_t>(msg.to)];
        if (!c.active || current_op_id(msg.to) != msg.op_id || c.phase != 2) {
          return true;  // stale, permanently
        }
        // Below the quorum an update_ack only bumps a private counter;
        // increments commute and nothing else observes the count.
        return c.acks + 1 < quorum_;
      }
    }
    return false;
  }

  void note_cell(std::uint32_t loc, const abd_cell& cell) const {
    if (cell.ts.writer < 0) return;  // initial cells carry no real write
    cells_.emplace_back(loc, cell.ts, cell.value);
  }

  std::shared_ptr<const std::vector<std::vector<operation>>> scripts_;
  std::uint32_t quorum_;
  std::vector<location> locs_;
  std::vector<std::vector<abd_cell>> replicas_;  ///< [pid][loc]
  std::vector<abd_client> clients_;
  std::vector<abd_timestamp> committed_;  ///< ghost watermark per location
  std::vector<abd_message> network_;      ///< sorted = canonical multiset
  /// check() scratch (loc, ts, value); mutable to keep check() const.
  mutable std::vector<std::tuple<std::uint32_t, abd_timestamp, std::uint64_t>>
      cells_;
};

}  // namespace

std::unique_ptr<checkable> make_lean_system(std::vector<int> inputs,
                                            std::uint64_t round_cap) {
  // Bit 0 = virtual prefix cell a*[0] = 1.
  return make_lean_system_with_arrays(std::move(inputs), round_cap, 1, 1);
}

std::unique_ptr<checkable> make_lean_system_with_arrays(
    std::vector<int> inputs, std::uint64_t round_cap, std::uint64_t a0,
    std::uint64_t a1) {
  return std::make_unique<lean_system>(std::move(inputs), round_cap, a0, a1);
}

std::unique_ptr<checkable> make_adopt_commit_system(std::vector<int> inputs) {
  return make_adopt_commit_system_with_registers(std::move(inputs), 0, 0, 0);
}

std::unique_ptr<checkable> make_adopt_commit_system_with_registers(
    std::vector<int> inputs, std::uint64_t door0, std::uint64_t door1,
    std::uint64_t proposal) {
  return std::make_unique<adopt_commit_system>(std::move(inputs), door0,
                                               door1, proposal);
}

std::unique_ptr<checkable> make_conciliator_system(std::vector<int> inputs) {
  return make_conciliator_system_with_register(std::move(inputs), 0);
}

std::unique_ptr<checkable> make_conciliator_system_with_register(
    std::vector<int> inputs, std::uint64_t reg) {
  return std::make_unique<conciliator_system>(std::move(inputs), reg);
}

std::unique_ptr<checkable> make_abd_system(
    std::vector<std::vector<operation>> scripts) {
  const std::uint32_t quorum =
      static_cast<std::uint32_t>(scripts.size() / 2 + 1);
  return make_abd_system_with_quorum(std::move(scripts), quorum);
}

std::unique_ptr<checkable> make_abd_system_with_quorum(
    std::vector<std::vector<operation>> scripts, std::uint32_t quorum) {
  return std::make_unique<abd_system>(std::move(scripts), quorum);
}

std::unique_ptr<checkable> make_abd_register_system(std::size_t n) {
  const location reg{space::scratch, 0};
  std::vector<std::vector<operation>> scripts(n);
  if (n == 2) {
    // Two write+read-back clients: both roles contend on both phases
    // (~5k joint states, fully explored).
    scripts[0] = {operation::write(reg, 1), operation::read(reg)};
    scripts[1] = {operation::write(reg, 2), operation::read(reg)};
  } else {
    // One writer racing one reader over n replicas — the core atomicity
    // scenario (a read overlapping a write may return old or new, but a
    // read STARTED after the write completed must not return old). Two
    // concurrent ops keep the delivery-order space tractable at n = 3
    // (~139k joint states); three concurrent ops already exceed 5M.
    scripts[0] = {operation::write(reg, 1)};
    scripts[1] = {operation::read(reg)};
  }
  return make_abd_system(std::move(scripts));
}

}  // namespace leancon::check
