// The generic "checkable" step interface of the exhaustive model-checking
// subsystem (src/check/).
//
// A checkable system is the WHOLE joint state — every protocol machine plus
// the shared medium they communicate through (registers, or the pending
// messages of the ABD emulation) — treated as one state machine, the way the
// classic model-checking-a-distributed-system exercises frame it. A system
//   * enumerates the transitions enabled in its current state,
//   * applies one of them in place,
//   * hashes its complete logical state (splitmix64 chaining) for dedup,
//   * snapshots itself via clone() so an explorer can keep frontiers, and
//   * asserts its safety invariants into a bounded violation sink.
//
// This splits what tests/model_check.h used to entangle: the protocol-
// specific state encoding lives in src/check/systems.*, and the exploration
// strategy (DFS/BFS frontiers, memoized dedup, bounds, partial-order
// reduction) lives once in src/check/explorer.*.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace leancon::check {

/// Order-sensitive splitmix64 chaining over the words a system feeds it.
/// Two states hash equal iff they feed the same word sequence (modulo the
/// usual 64-bit collision odds; the golden state-count tests would catch a
/// hash change that started merging distinct states).
class state_hasher {
 public:
  void word(std::uint64_t w) noexcept {
    std::uint64_t s = state_ ^ w;
    state_ = splitmix64_next(s);
    ++count_;
  }

  /// Folds the word count in so a prefix never collides with its extension.
  std::uint64_t digest() const noexcept {
    std::uint64_t s = state_ ^ count_;
    return splitmix64_next(s);
  }

 private:
  std::uint64_t state_ = 0x9e3779b97f4a7c15ULL;
  std::uint64_t count_ = 0;
};

/// One transition enabled in the current state.
struct check_action {
  /// System-defined index, stable until the next apply().
  std::uint32_t id = 0;
  /// True when the system can PROVE the action is invisible: it neither
  /// changes any state another process or invariant reads, nor has an
  /// effect that any other transition (current or future) could alter —
  /// e.g. a write of a value the register already holds, or an ABD ack
  /// that only bumps a private below-majority counter. The explorer's
  /// partial-order reduction may then fire it as a singleton ample set.
  bool invisible = false;
};

/// Bounded, deduplicated violation collector: keeps the first `keep`
/// distinct messages and counts every report, so a broken invariant in a
/// large state space cannot balloon memory with millions of identical
/// strings.
class violation_sink {
 public:
  explicit violation_sink(std::size_t keep) : keep_(keep) {}

  void report(std::string message) {
    ++total_;
    if (kept_.size() >= keep_) return;
    for (const auto& existing : kept_) {
      if (existing == message) return;
    }
    kept_.push_back(std::move(message));
  }

  std::uint64_t total() const { return total_; }
  const std::vector<std::string>& distinct() const { return kept_; }
  bool empty() const { return total_ == 0; }

 private:
  std::size_t keep_;
  std::uint64_t total_ = 0;
  std::vector<std::string> kept_;
};

/// A joint protocol state explorable by src/check/explorer.
///
/// Driving contract: enabled() appends the currently enabled actions;
/// apply(id) fires one of them in place; clone() deep-copies the state
/// (internal pointers rebound); hash_state() feeds every word that
/// determines future behavior — and nothing that does not, such as step
/// counters, so logically identical states dedup.
class checkable {
 public:
  virtual ~checkable() = default;

  virtual std::unique_ptr<checkable> clone() const = 0;

  /// Appends the enabled transitions. An empty result means the state is
  /// terminal.
  virtual void enabled(std::vector<check_action>& out) const = 0;

  /// Fires the action with the given id (one previously enumerated by
  /// enabled() on this exact state).
  virtual void apply(std::uint32_t action_id) = 0;

  /// Feeds the complete logical state into the hasher.
  virtual void hash_state(state_hasher& h) const = 0;

  /// Asserts the invariants that must hold at EVERY reachable state.
  virtual void check(violation_sink& sink) const = 0;

  /// Asserts the invariants that only make sense once no transition is
  /// enabled (e.g. adopt-commit convergence over complete return sets).
  virtual void check_terminal(violation_sink& sink) const { (void)sink; }

  /// Monotone count of noteworthy protocol events reached in this state
  /// (decisions made, operations completed). The explorer reports the
  /// maximum over all visited states, so "some schedule actually decides"
  /// stays assertable without protocol-specific engine hooks.
  virtual std::uint64_t progress() const { return 0; }
};

}  // namespace leancon::check
