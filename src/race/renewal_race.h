// Direct simulation of the delayed-renewal race of Theorem 10 / Corollary 11.
//
// n processes complete rounds at times S'_ir = Delta_i0 +
// sum_{j<=r} (Delta_ij + X_ij + H_ij). The race ends at the first round R
// such that either some process i finishes round R + c strictly before every
// rival finishes round R (a "win by c"), or every process has halted.
// Corollary 11: E[R] = O(log n) with an exponential tail.
//
// This module reproduces the probabilistic core of the paper without the
// consensus layer on top: it is the cleanest way to measure the O(log n)
// bound and its constants, and it doubles as a cross-check that the full
// simulator's round counts are explained by the renewal-race analysis.
//
// Implementation: only the current race leader can win at round R (times are
// non-decreasing in r), so it suffices to track, per round, the minimum and
// second minimum of S'_{., R} and the finishing time S'_{i*, R+c} of the
// row-R minimizer. Memory is O(n * (c + 1)) via a rolling window.
#pragma once

#include <cstdint>
#include <vector>

#include "sched/noisy_params.h"

namespace leancon {

struct race_config {
  std::size_t n = 2;        ///< number of racers
  int lead = 2;             ///< c, the required lead in rounds
  noisy_params sched;       ///< same delay model as the main simulator
  std::uint64_t seed = 1;
  std::uint64_t max_rounds = 1u << 22;  ///< budget (ties/degenerate noise)
};

struct race_result {
  bool won = false;         ///< false: all halted or budget exhausted
  bool all_halted = false;
  int winner = -1;
  std::uint64_t winning_round = 0;  ///< R (the round led by c)
  double winning_time = 0.0;        ///< S'_{winner, R+c}
};

/// Runs one renewal race.
race_result run_race(const race_config& config);

}  // namespace leancon
