#include "race/renewal_race.h"

#include <limits>
#include <stdexcept>

namespace leancon {

race_result run_race(const race_config& config) {
  const std::size_t n = config.n;
  if (n == 0) throw std::invalid_argument("run_race: no racers");
  if (config.lead < 1) throw std::invalid_argument("run_race: lead < 1");
  const auto c = static_cast<std::uint64_t>(config.lead);
  constexpr double inf = std::numeric_limits<double>::infinity();

  // Per-process state: current cumulative time, number of rounds generated,
  // halted flag, rolling window of the last (c + 1) round-completion times.
  std::vector<double> cur(n);
  std::vector<std::uint64_t> generated(n, 0);
  std::vector<bool> halted(n, false);
  std::vector<std::vector<double>> window(n,
                                          std::vector<double>(c + 1, inf));
  std::vector<rng> streams;
  streams.reserve(n);
  std::vector<std::uint64_t> op_index(n, 0);

  for (std::size_t i = 0; i < n; ++i) {
    streams.emplace_back(config.seed, i + 1);
    cur[i] = config.sched.start_offset(static_cast<int>(i),
                                       static_cast<int>(n), streams[i]);
  }

  // Theorem 10 abstracts one round as the sum of the lean round's four
  // operations (three reads and one write); a halting failure during any of
  // them halts the process.
  constexpr int ops_per_round = 4;
  auto generate_round = [&](std::size_t i) {
    if (halted[i]) {
      ++generated[i];
      window[i][generated[i] % (c + 1)] = inf;
      return;
    }
    double sum = 0.0;
    for (int k = 0; k < ops_per_round; ++k) {
      bool halt = false;
      sum += config.sched.op_increment(static_cast<int>(i), ++op_index[i],
                                       /*is_write=*/k == 2, streams[i], halt);
      if (halt) {
        halted[i] = true;
        ++generated[i];
        window[i][generated[i] % (c + 1)] = inf;
        return;
      }
    }
    cur[i] += sum;
    ++generated[i];
    window[i][generated[i] % (c + 1)] = cur[i];
  };

  race_result result;
  for (std::uint64_t round = 1; round <= config.max_rounds; ++round) {
    // Make sure every process has round + c rounds generated.
    for (std::size_t i = 0; i < n; ++i) {
      while (generated[i] < round + c) generate_round(i);
    }

    // Find the minimum and second minimum of S'_{., round}.
    double best = inf, second = inf;
    std::size_t best_i = 0;
    bool all_inf = true;
    for (std::size_t i = 0; i < n; ++i) {
      const double t = window[i][round % (c + 1)];
      if (t < inf) all_inf = false;
      if (t < best) {
        second = best;
        best = t;
        best_i = i;
      } else if (t < second) {
        second = t;
      }
    }
    if (all_inf) {
      result.all_halted = true;
      return result;
    }
    // Only the row minimizer can lead by c (times are non-decreasing in r).
    const double lead_time = window[best_i][(round + c) % (c + 1)];
    if (lead_time < second) {
      result.won = true;
      result.winner = static_cast<int>(best_i);
      result.winning_round = round;
      result.winning_time = lead_time;
      return result;
    }
  }
  return result;  // budget exhausted
}

}  // namespace leancon
