#include "util/table.h"

#include <algorithm>
#include <cctype>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace leancon {

std::string format_double(double value, int precision) {
  if (!std::isfinite(value)) return "-";  // empty summaries render as absent
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, value);
  return buf;
}

table::table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void table::begin_row() { rows_.emplace_back(); }

void table::cell(const std::string& text) { rows_.back().push_back(text); }

void table::cell(double value, int precision) {
  rows_.back().push_back(format_double(value, precision));
}

void table::cell(std::int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, value);
  rows_.back().push_back(buf);
}

void table::cell(std::uint64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, value);
  rows_.back().push_back(buf);
}

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' &&
        c != '+' && c != 'e' && c != 'E' && c != 'n' && c != 'a') {
      return false;
    }
  }
  return true;
}

}  // namespace

std::string table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, bool header) {
    os << "|";
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string cell = c < row.size() ? row[c] : "";
      const bool right = !header && looks_numeric(cell);
      os << ' ';
      if (right) {
        os << std::string(widths[c] - cell.size(), ' ') << cell;
      } else {
        os << cell << std::string(widths[c] - cell.size(), ' ');
      }
      os << " |";
    }
    os << '\n';
  };

  emit_row(headers_, true);
  os << "|";
  for (std::size_t c = 0; c < widths.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << '\n';
  for (const auto& row : rows_) emit_row(row, false);
  return os.str();
}

void table::print() const { std::fputs(to_string().c_str(), stdout); }

metric_table::metric_table(std::vector<std::string> lead_headers)
    : lead_headers_(std::move(lead_headers)) {}

void metric_table::begin_row(std::vector<std::string> lead) {
  rows_.push_back({std::move(lead), {}});
}

void metric_table::set(const std::string& metric, double value,
                       int precision) {
  std::size_t column = metric_names_.size();
  for (std::size_t c = 0; c < metric_names_.size(); ++c) {
    if (metric_names_[c] == metric) {
      column = c;
      break;
    }
  }
  if (column == metric_names_.size()) metric_names_.push_back(metric);
  rows_.back().cells.emplace_back(column, format_double(value, precision));
}

table metric_table::build() const {
  std::vector<std::string> headers = lead_headers_;
  headers.insert(headers.end(), metric_names_.begin(), metric_names_.end());
  table tbl(std::move(headers));
  for (const auto& r : rows_) {
    tbl.begin_row();
    for (const auto& lead : r.lead) tbl.cell(lead);
    std::vector<std::string> values(metric_names_.size(), "-");
    for (const auto& [column, text] : r.cells) values[column] = text;
    for (const auto& value : values) tbl.cell(value);
  }
  return tbl;
}

std::string metric_table::to_string() const { return build().to_string(); }

void metric_table::print() const { build().print(); }

}  // namespace leancon
