// Minimal JSON document model, parser, and writing helpers.
//
// Shared by the bench harness (BENCH json schema validation) and the
// campaign engine (streaming per-cell records and resume parsing). The model
// is deliberately small: just rich enough to validate schemas and read back
// documents this library itself emitted. Writers follow the BENCH json
// conventions — numbers render with %.17g (so doubles round-trip exactly)
// and non-finite values render as null.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

namespace leancon::json {

/// One JSON value. Objects keep member order; duplicate keys are preserved
/// (find returns the first).
struct value {
  enum class kind { null, boolean, number, string, object, array };
  kind k = kind::null;
  double num = 0.0;
  bool b = false;
  std::string str;
  std::vector<std::pair<std::string, value>> members;  // object
  std::vector<value> items;                            // array

  const value* find(const std::string& key) const {
    for (const auto& [name, member] : members) {
      if (name == key) return &member;
    }
    return nullptr;
  }

  bool is(kind expected) const { return k == expected; }
};

/// Parses a complete JSON document. Throws std::runtime_error (with the
/// offending byte offset) on malformed input or trailing content.
value parse(const std::string& text);

/// Writes `s` as a JSON string literal, escaping quotes, backslashes, and
/// control characters.
void write_string(std::ostream& os, const std::string& s);

/// Writes a JSON number with %.17g (doubles round-trip exactly through
/// parse); non-finite values render as null.
void write_number(std::ostream& os, double v);

/// Writes an unsigned integer in plain decimal, independent of any locale
/// imbued on the stream. Cells files and BENCH json are compared
/// byte-for-byte (shard merges, committed baselines), so integer fields
/// must never pick up digit grouping from the environment.
void write_uint(std::ostream& os, std::uint64_t v);

}  // namespace leancon::json
