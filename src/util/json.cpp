#include "util/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace leancon::json {

namespace {

/// Recursive-descent parser; throws std::runtime_error on malformed input.
class parser {
 public:
  explicit parser(const std::string& text) : text_(text) {}

  value parse_document() {
    value v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing content");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(what + " at offset " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    skip_ws();
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(const std::string& lit) {
    if (text_.compare(pos_, lit.size(), lit) == 0) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  value parse_value() {
    const char c = peek();
    value v;
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"':
        v.k = value::kind::string;
        v.str = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.k = value::kind::boolean;
        v.b = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.k = value::kind::boolean;
        v.b = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        v.k = value::kind::null;
        return v;
      default: return parse_number();
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            // Decoded code points are not needed for validation; keep the
            // raw escape so content checks still see something.
            out += "\\u" + text_.substr(pos_, 4);
            pos_ += 4;
            break;
          }
          default: fail("bad escape");
        }
      } else {
        out += c;
      }
    }
  }

  value parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected a value");
    value v;
    v.k = value::kind::number;
    try {
      v.num = std::stod(text_.substr(start, pos_ - start));
    } catch (const std::exception&) {
      fail("malformed number");
    }
    return v;
  }

  value parse_object() {
    expect('{');
    value v;
    v.k = value::kind::object;
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      expect(':');
      v.members.emplace_back(std::move(key), parse_value());
      const char c = peek();
      ++pos_;
      if (c == '}') return v;
      if (c != ',') fail("expected ',' or '}'");
    }
  }

  value parse_array() {
    expect('[');
    value v;
    v.k = value::kind::array;
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.items.push_back(parse_value());
      const char c = peek();
      ++pos_;
      if (c == ']') return v;
      if (c != ',') fail("expected ',' or ']'");
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

value parse(const std::string& text) { return parser(text).parse_document(); }

void write_string(std::ostream& os, const std::string& s) {
  os << '"';
  for (const char c : s) {
    switch (c) {
      case '"': os << "\\\""; break;
      case '\\': os << "\\\\"; break;
      case '\n': os << "\\n"; break;
      case '\r': os << "\\r"; break;
      case '\t': os << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

void write_number(std::ostream& os, double v) {
  if (!std::isfinite(v)) {
    os << "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  os << buf;
}

void write_uint(std::ostream& os, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  os << buf;
}

}  // namespace leancon::json
