#include "util/options.h"

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace leancon {

void options::add(const std::string& name, const std::string& default_value,
                  const std::string& help) {
  flags_[name] = flag{default_value, help, std::nullopt};
}

void options::set_diagnostics(std::ostream& os) { diag_ = &os; }

std::ostream& options::diag() const { return diag_ ? *diag_ : std::cerr; }

bool options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      diag() << usage(argv[0]);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      diag() << "unexpected positional argument: " << arg << "\n"
             << usage(argv[0]);
      return false;
    }
    const auto eq = arg.find('=');
    std::string name = arg.substr(2, eq == std::string::npos ? arg.size() - 2
                                                             : eq - 2);
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      diag() << "unknown flag --" << name << "\n" << usage(argv[0]);
      return false;
    }
    const std::string& dflt = it->second.default_value;
    const bool is_boolean = dflt == "true" || dflt == "false";
    std::string value;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc &&
               std::string(argv[i + 1]).rfind("--", 0) != 0) {
      value = argv[++i];
    } else if (is_boolean) {
      // A declared-boolean flag given bare (`--list`) means true.
      value = "true";
    } else {
      diag() << "flag --" << name << " needs a value\n";
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string options::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("undeclared flag: " + name);
  }
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t options::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double options::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool options::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::int64_t> options::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> options::flag_values() const {
  std::vector<std::pair<std::string, std::string>> out;
  out.reserve(flags_.size());
  for (const auto& [name, f] : flags_) {
    out.emplace_back(name, f.value.value_or(f.default_value));
  }
  return out;
}

std::string options::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [--flag=value ...]\n";
  for (const auto& [name, f] : flags_) {
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace leancon
