#include "util/options.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

namespace leancon {

void options::add(const std::string& name, const std::string& default_value,
                  const std::string& help) {
  flags_[name] = flag{default_value, help, std::nullopt};
}

bool options::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::fputs(usage(argv[0]).c_str(), stderr);
      return false;
    }
    if (arg.rfind("--", 0) != 0) {
      std::fprintf(stderr, "unexpected positional argument: %s\n%s",
                   arg.c_str(), usage(argv[0]).c_str());
      return false;
    }
    const auto eq = arg.find('=');
    std::string name = arg.substr(2, eq == std::string::npos ? arg.size() - 2
                                                             : eq - 2);
    std::string value;
    if (eq != std::string::npos) {
      value = arg.substr(eq + 1);
    } else if (i + 1 < argc) {
      value = argv[++i];
    } else {
      std::fprintf(stderr, "flag --%s needs a value\n", name.c_str());
      return false;
    }
    auto it = flags_.find(name);
    if (it == flags_.end()) {
      std::fprintf(stderr, "unknown flag --%s\n%s", name.c_str(),
                   usage(argv[0]).c_str());
      return false;
    }
    it->second.value = value;
  }
  return true;
}

std::string options::get(const std::string& name) const {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    throw std::invalid_argument("undeclared flag: " + name);
  }
  return it->second.value.value_or(it->second.default_value);
}

std::int64_t options::get_int(const std::string& name) const {
  return std::strtoll(get(name).c_str(), nullptr, 10);
}

double options::get_double(const std::string& name) const {
  return std::strtod(get(name).c_str(), nullptr);
}

bool options::get_bool(const std::string& name) const {
  const std::string v = get(name);
  return v == "1" || v == "true" || v == "yes" || v == "on";
}

std::vector<std::int64_t> options::get_int_list(const std::string& name) const {
  std::vector<std::int64_t> out;
  std::stringstream ss(get(name));
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(std::strtoll(item.c_str(), nullptr, 10));
  }
  return out;
}

std::string options::usage(const std::string& program) const {
  std::ostringstream os;
  os << "usage: " << program << " [--flag=value ...]\n";
  for (const auto& [name, f] : flags_) {
    os << "  --" << name << " (default: " << f.default_value << ")\n      "
       << f.help << "\n";
  }
  return os.str();
}

}  // namespace leancon
