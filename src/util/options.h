// Minimal command-line option parsing shared by benches and examples.
//
// Every experiment binary accepts `--key=value` flags (and `--help`). Flags
// are declared up front with defaults and a help line, so each bench can be
// rescaled (trials, n sweep, seed, ...) without recompiling.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace leancon {

/// A declared flag set plus parsed values. Unknown flags are reported as
/// errors so typos do not silently fall back to defaults.
class options {
 public:
  /// Declares a flag with a default value and a help description.
  void add(const std::string& name, const std::string& default_value,
           const std::string& help);

  /// Parses argv. Returns false (after writing usage to the diagnostics
  /// stream) on malformed or unknown flags, or when `--help` was requested.
  bool parse(int argc, const char* const* argv);

  /// Redirects parse() diagnostics (usage, errors). Defaults to std::cerr so
  /// they never pollute stdout result tables; tests inject a string stream
  /// to keep logs clean and assert the messages.
  void set_diagnostics(std::ostream& os);

  /// Typed accessors; the flag must have been declared via add().
  std::string get(const std::string& name) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool get_bool(const std::string& name) const;

  /// Parses a comma-separated list of integers, e.g. "1,10,100".
  std::vector<std::int64_t> get_int_list(const std::string& name) const;

  /// Writes a usage summary for all declared flags.
  std::string usage(const std::string& program) const;

  /// Every declared flag with its final (parsed-or-default) value, in
  /// declaration-name order. Used by the bench harness's JSON emitter.
  std::vector<std::pair<std::string, std::string>> flag_values() const;

 private:
  std::ostream& diag() const;

  struct flag {
    std::string default_value;
    std::string help;
    std::optional<std::string> value;
  };
  std::map<std::string, flag> flags_;
  std::ostream* diag_ = nullptr;  // null means std::cerr
};

}  // namespace leancon
