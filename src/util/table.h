// Fixed-width text table writer used by every bench binary to print
// paper-style rows (and by EXPERIMENTS.md generation).
#pragma once

#include <string>
#include <vector>

namespace leancon {

/// Accumulates rows of cells and renders them with aligned columns.
/// Numeric cells are right-aligned; text cells are left-aligned.
class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  void begin_row();
  void cell(const std::string& text);
  void cell(double value, int precision = 3);
  void cell(std::int64_t value);
  void cell(std::uint64_t value);

  /// Renders the table with a header separator line.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision = 3);

}  // namespace leancon
