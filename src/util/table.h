// Fixed-width text table writer used by every bench binary to print
// paper-style rows (and by EXPERIMENTS.md generation).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace leancon {

/// Accumulates rows of cells and renders them with aligned columns.
/// Numeric cells are right-aligned; text cells are left-aligned.
class table {
 public:
  explicit table(std::vector<std::string> headers);

  /// Starts a new row; subsequent cell() calls append to it.
  void begin_row();
  void cell(const std::string& text);
  void cell(double value, int precision = 3);
  void cell(std::int64_t value);
  void cell(std::uint64_t value);

  /// Renders the table with a header separator line.
  std::string to_string() const;

  /// Renders and writes to stdout.
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (helper shared with benches).
std::string format_double(double value, int precision = 3);

/// Table whose value columns are discovered dynamically: fixed lead
/// columns (labels, n, ...) followed by the union of metric names set
/// across all rows, in first-appearance order. Rows that never set a
/// metric render `-` in its column — built for workloads whose metric
/// sets differ (a shared-memory cell has round metrics, an ABD cell has
/// message metrics; one table shows both without fabricating zeros).
class metric_table {
 public:
  explicit metric_table(std::vector<std::string> lead_headers);

  /// Starts a new row with the given lead cells.
  void begin_row(std::vector<std::string> lead);

  /// Sets a metric on the current row (creating its column on first use
  /// anywhere). Non-finite values render as `-`.
  void set(const std::string& metric, double value, int precision = 3);

  /// Renders into a fixed table (lead headers + discovered metric columns).
  table build() const;
  std::string to_string() const;
  void print() const;

 private:
  std::vector<std::string> lead_headers_;
  std::vector<std::string> metric_names_;  ///< column order
  struct row {
    std::vector<std::string> lead;
    std::vector<std::pair<std::size_t, std::string>> cells;  ///< (column, text)
  };
  std::vector<row> rows_;
};

}  // namespace leancon
