#include "util/rng.h"

#include <cmath>

namespace leancon {
namespace {

constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64_next(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

rng::rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64_next(sm);
}

rng::rng(std::uint64_t seed, std::uint64_t stream) noexcept {
  // Mix the stream id through splitmix64 so that nearby streams diverge.
  std::uint64_t sm = stream;
  std::uint64_t mixed = seed ^ splitmix64_next(sm);
  std::uint64_t sm2 = mixed;
  for (auto& word : s_) word = splitmix64_next(sm2);
}

std::uint64_t rng::next() noexcept {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

std::uint64_t rng::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

bool rng::bernoulli(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double rng::exponential(double mean) noexcept {
  // Inverse CDF; 1 - uniform01() is in (0, 1], so the log argument is nonzero.
  return -mean * std::log(1.0 - uniform01());
}

double rng::normal() noexcept {
  if (has_spare_) {
    has_spare_ = false;
    return spare_normal_;
  }
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double rng::normal(double mu, double sigma) noexcept {
  return mu + sigma * normal();
}

std::uint64_t rng::geometric(double p) noexcept {
  if (p >= 1.0) return 1;
  if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
  // Inverse CDF: ceil(log(1-u) / log(1-p)) over support {1, 2, ...}.
  const double u = uniform01();
  const double value = std::ceil(std::log1p(-u) / std::log1p(-p));
  return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
}

rng rng::fork() noexcept {
  return rng(next(), 0x5eedf02dULL);
}

}  // namespace leancon
