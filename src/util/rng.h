// Deterministic pseudo-random number generation for reproducible experiments.
//
// The library never uses std::random_device or global state: every simulated
// trial derives its own `rng` from a user-supplied seed plus a stream id, so
// any experiment row can be re-run in isolation and produce identical output.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through splitmix64,
// which is the recommended seeding procedure for the xoshiro family.
#pragma once

#include <cstdint>
#include <limits>

namespace leancon {

/// Advances a splitmix64 state and returns the next output. Used for seeding
/// and for cheap one-off hashes of (seed, stream) pairs.
std::uint64_t splitmix64_next(std::uint64_t& state);

/// Deterministic PRNG with value semantics. Cheap to copy; copying forks an
/// identical stream, so prefer `fork()` when independent streams are needed.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four xoshiro256++ words from splitmix64(seed).
  explicit rng(std::uint64_t seed = 0) noexcept;

  /// Seeds from a (seed, stream) pair; distinct streams are statistically
  /// independent for any fixed seed.
  rng(std::uint64_t seed, std::uint64_t stream) noexcept;

  /// Next raw 64-bit output.
  std::uint64_t next() noexcept;

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept;

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept;

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean) noexcept;

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  double normal(double mu, double sigma) noexcept;

  /// Geometric variate: number of Bernoulli(p) trials up to and including the
  /// first success (support {1, 2, ...}).
  std::uint64_t geometric(double p) noexcept;

  /// Derives an independent child generator; the parent advances by one.
  rng fork() noexcept;

 private:
  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace leancon
