// Deterministic pseudo-random number generation for reproducible experiments.
//
// The library never uses std::random_device or global state: every simulated
// trial derives its own `rng` from a user-supplied seed plus a stream id, so
// any experiment row can be re-run in isolation and produce identical output.
//
// The generator is xoshiro256++ (Blackman & Vigna), seeded through splitmix64,
// which is the recommended seeding procedure for the xoshiro family.
//
// Everything here is header-inline: the simulator draws noise on every
// simulated operation, and an out-of-line call per draw costs more than the
// generator itself. The definitions are the same ones that used to live in
// rng.cpp — moving them is invisible to the output bytes.
#pragma once

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace leancon {

/// Advances a splitmix64 state and returns the next output. Used for seeding
/// and for cheap one-off hashes of (seed, stream) pairs.
inline std::uint64_t splitmix64_next(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Writes `count` consecutive splitmix64 outputs to `out`, starting from
/// `state`. The block form keeps the sequential dependency chain out of the
/// caller's loop body; seeding and bulk hashing use it.
inline void splitmix64_fill(std::uint64_t state, std::uint64_t* out,
                            std::size_t count) noexcept {
  for (std::size_t i = 0; i < count; ++i) out[i] = splitmix64_next(state);
}

/// Deterministic PRNG with value semantics. Cheap to copy; copying forks an
/// identical stream, so prefer `fork()` when independent streams are needed.
class rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four xoshiro256++ words from splitmix64(seed).
  explicit rng(std::uint64_t seed = 0) noexcept { splitmix64_fill(seed, s_, 4); }

  /// Seeds from a (seed, stream) pair; distinct streams are statistically
  /// independent for any fixed seed.
  rng(std::uint64_t seed, std::uint64_t stream) noexcept {
    // Mix the stream id through splitmix64 so that nearby streams diverge.
    std::uint64_t sm = stream;
    splitmix64_fill(seed ^ splitmix64_next(sm), s_, 4);
  }

  /// Next raw 64-bit output.
  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Writes `count` consecutive next() outputs to `out` — a batched draw for
  /// bulk consumers (identical to calling next() in a loop).
  void fill(std::uint64_t* out, std::size_t count) noexcept {
    for (std::size_t i = 0; i < count; ++i) out[i] = next();
  }

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  std::uint64_t operator()() noexcept { return next(); }
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

  /// Uniform double in [0, 1) with 53 bits of precision.
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t below(std::uint64_t bound) noexcept {
    if (bound == 0) return 0;
    // Lemire's nearly-divisionless method.
    std::uint64_t x = next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (lo < threshold) {
        x = next();
        m = static_cast<__uint128_t>(x) * bound;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Bernoulli trial with success probability p (clamped to [0, 1]).
  bool bernoulli(double p) noexcept {
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform01() < p;
  }

  /// Exponential variate with the given mean (mean > 0).
  double exponential(double mean) noexcept {
    // Inverse CDF; 1 - uniform01() is in (0, 1], so the log argument is
    // nonzero.
    return -mean * std::log(1.0 - uniform01());
  }

  /// Standard normal variate (Marsaglia polar method, cached spare).
  double normal() noexcept {
    if (has_spare_) {
      has_spare_ = false;
      return spare_normal_;
    }
    double u, v, s;
    do {
      u = uniform(-1.0, 1.0);
      v = uniform(-1.0, 1.0);
      s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double factor = std::sqrt(-2.0 * std::log(s) / s);
    spare_normal_ = v * factor;
    has_spare_ = true;
    return u * factor;
  }

  /// Normal variate with the given mean and standard deviation.
  double normal(double mu, double sigma) noexcept {
    return mu + sigma * normal();
  }

  /// Geometric variate: number of Bernoulli(p) trials up to and including the
  /// first success (support {1, 2, ...}).
  std::uint64_t geometric(double p) noexcept {
    if (p >= 1.0) return 1;
    if (p <= 0.0) return std::numeric_limits<std::uint64_t>::max();
    // Inverse CDF: ceil(log(1-u) / log(1-p)) over support {1, 2, ...}.
    const double u = uniform01();
    const double value = std::ceil(std::log1p(-u) / std::log1p(-p));
    return value < 1.0 ? 1 : static_cast<std::uint64_t>(value);
  }

  /// Derives an independent child generator; the parent advances by one.
  rng fork() noexcept { return rng(next(), 0x5eedf02dULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

/// A bounded integer draw with the Lemire rejection threshold precomputed.
/// rng::below() computes `-bound % bound` lazily on the (rare) low-product
/// path; a caller drawing against the same bound many times pins it here
/// once instead. The accepted/rejected word sequence — and therefore every
/// output — is identical to below(): a product below the threshold is
/// rejected in both, a product at or above it is accepted in both.
class bounded_uint {
 public:
  explicit bounded_uint(std::uint64_t bound) noexcept
      : bound_(bound), threshold_(bound ? (0 - bound) % bound : 0) {}

  std::uint64_t bound() const noexcept { return bound_; }

  std::uint64_t operator()(rng& gen) const noexcept {
    if (bound_ == 0) return 0;
    std::uint64_t x = gen.next();
    __uint128_t m = static_cast<__uint128_t>(x) * bound_;
    auto lo = static_cast<std::uint64_t>(m);
    while (lo < threshold_) {
      x = gen.next();
      m = static_cast<__uint128_t>(x) * bound_;
      lo = static_cast<std::uint64_t>(m);
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

 private:
  std::uint64_t bound_;
  std::uint64_t threshold_;
};

}  // namespace leancon
