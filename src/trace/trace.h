// Execution tracing and ASCII rendering of the consensus race.
//
// The simulator can report every executed operation; this module collects
// those events and renders the two artifacts most useful when studying the
// protocol's behaviour:
//   * a race chart — the frontier (highest written round) of a0 and a1 over
//     simulated time, which visualizes how noise breaks the tie, and
//   * a per-process round timeline, showing how the pack disperses and when
//     the laggards adopt the winner's preference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memory/register_model.h"

namespace leancon {

/// One executed shared-memory operation, as observed by the simulator.
struct trace_event {
  double time = 0.0;
  int pid = 0;
  operation op;
  std::uint64_t value = 0;     ///< read result / written value
  std::uint64_t round = 0;     ///< machine's lean round after the op (0 = n/a)
  bool decided = false;        ///< the op completed a decision
  int decision = -1;
};

/// Collects events in execution order and renders summaries.
class execution_trace {
 public:
  void add(const trace_event& event);

  const std::vector<trace_event>& events() const { return events_; }
  std::size_t size() const { return events_.size(); }
  bool empty() const { return events_.empty(); }

  /// Highest index written in a0 / a1 up to and including event `i`.
  std::uint64_t frontier(int array, std::size_t upto) const;

  /// ASCII chart: `buckets` time slices; each row shows the a0 and a1
  /// frontiers at the end of the slice, e.g.
  ///   t= 12.3  a0 |#########    | 9    a1 |#######      | 7
  std::string render_race_chart(std::size_t buckets = 20,
                                std::size_t bar_width = 24) const;

  /// ASCII per-process summary: final round, decision, ops.
  std::string render_process_summary(std::size_t processes) const;

 private:
  std::vector<trace_event> events_;
};

}  // namespace leancon
