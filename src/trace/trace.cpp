#include "trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace leancon {

void execution_trace::add(const trace_event& event) {
  events_.push_back(event);
}

std::uint64_t execution_trace::frontier(int array, std::size_t upto) const {
  const space target = array == 0 ? space::race0 : space::race1;
  std::uint64_t best = 0;
  const std::size_t limit = std::min(upto + 1, events_.size());
  for (std::size_t i = 0; i < limit; ++i) {
    const auto& e = events_[i];
    if (e.op.kind == op_kind::write && e.op.where.where == target) {
      best = std::max(best, e.op.where.index);
    }
  }
  return best;
}

std::string execution_trace::render_race_chart(std::size_t buckets,
                                               std::size_t bar_width) const {
  if (events_.empty() || buckets == 0) return "(empty trace)\n";

  const double t0 = events_.front().time;
  const double t1 = events_.back().time;
  const double span = t1 > t0 ? t1 - t0 : 1.0;

  // One pass: frontier of each array at the end of each time bucket.
  std::vector<std::uint64_t> f0(buckets, 0), f1(buckets, 0);
  std::uint64_t cur0 = 0, cur1 = 0;
  std::size_t bucket = 0;
  for (const auto& e : events_) {
    auto target = static_cast<std::size_t>((e.time - t0) / span *
                                           static_cast<double>(buckets));
    target = std::min(target, buckets - 1);
    while (bucket < target) {
      f0[bucket] = cur0;
      f1[bucket] = cur1;
      ++bucket;
    }
    if (e.op.kind == op_kind::write) {
      if (e.op.where.where == space::race0) {
        cur0 = std::max(cur0, e.op.where.index);
      } else if (e.op.where.where == space::race1) {
        cur1 = std::max(cur1, e.op.where.index);
      }
    }
  }
  while (bucket < buckets) {
    f0[bucket] = cur0;
    f1[bucket] = cur1;
    ++bucket;
  }

  const std::uint64_t peak = std::max<std::uint64_t>(
      1, std::max(*std::max_element(f0.begin(), f0.end()),
                  *std::max_element(f1.begin(), f1.end())));

  std::ostringstream os;
  auto bar = [&](std::uint64_t v) {
    const auto filled = static_cast<std::size_t>(
        static_cast<double>(v) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    std::string s(filled, '#');
    s.resize(bar_width, ' ');
    return s;
  };
  for (std::size_t b = 0; b < buckets; ++b) {
    const double t = t0 + span * static_cast<double>(b + 1) /
                              static_cast<double>(buckets);
    char line[160];
    std::snprintf(line, sizeof line,
                  "t=%8.2f  a0 |%s| %-4llu a1 |%s| %-4llu\n", t,
                  bar(f0[b]).c_str(), static_cast<unsigned long long>(f0[b]),
                  bar(f1[b]).c_str(), static_cast<unsigned long long>(f1[b]));
    os << line;
  }
  return os.str();
}

std::string execution_trace::render_process_summary(
    std::size_t processes) const {
  std::vector<std::uint64_t> ops(processes, 0);
  std::vector<std::uint64_t> round(processes, 0);
  std::vector<int> decision(processes, -1);
  for (const auto& e : events_) {
    const auto pid = static_cast<std::size_t>(e.pid);
    if (pid >= processes) continue;
    ++ops[pid];
    round[pid] = std::max(round[pid], e.round);
    if (e.decided) decision[pid] = e.decision;
  }
  std::ostringstream os;
  for (std::size_t i = 0; i < processes; ++i) {
    char line[128];
    std::snprintf(line, sizeof line,
                  "p%-3zu ops=%-5llu round=%-4llu decision=%s\n", i,
                  static_cast<unsigned long long>(ops[i]),
                  static_cast<unsigned long long>(round[i]),
                  decision[i] == -1 ? "-" : std::to_string(decision[i]).c_str());
    os << line;
  }
  return os.str();
}

}  // namespace leancon
