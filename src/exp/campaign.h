// Campaign engine: declarative experiment grids on the persistent worker
// pool.
//
// The paper's results — Figure 1, the O(log n) scaling fit, the failure
// tables — are all GRIDS of cells: scenario × n × noise/adversary variant,
// some trials per cell. A campaign describes such a grid declaratively,
// expands it into cells, and schedules every cell's chunk grid onto one
// worker_pool so work steals across cells AND within them: a straggler cell
// never idles the pool, and many tiny cells never pay per-batch thread
// spawn.
//
// Determinism contract (inherited from the trial executor, asserted by
// tests/test_campaign.cpp): each cell aggregates over the fixed chunk grid
// of sim/trial_executor.h and merges chunks in index order, so campaign
// results are BIT-IDENTICAL for any pool size, concurrency cap, or cell
// scheduling order. Per-cell wall time (`cell_result::seconds`, the summed
// chunk execution times) is the only non-deterministic output.
//
// Streaming + resume: give campaign_options an open campaign_io and every
// finished cell is appended to its JSON-lines file in cell-index order the
// moment it (and all cells before it) completes; re-opening the same file
// in resume mode skips cells whose (config hash, seed) was already
// recorded, restoring their metrics from disk instead of re-simulating.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "scenario/scenario.h"
#include "sim/runner.h"

namespace leancon {

class campaign_io;
class worker_pool;

/// One grid cell: a scenario preset at one (n, seed) with a trial count.
struct campaign_cell {
  std::string scenario;    ///< registry key
  scenario_params params;  ///< n and the cell's base seed
  std::uint64_t trials = 0;
  /// Discriminator for cells that share (scenario, n) but differ in `tweak`
  /// (e.g. "h=0.002"). Part of the label and the config hash — cells with
  /// different tweaks MUST carry different variants for resume to be sound.
  std::string variant;
  /// Optional sim_config adjustment applied when the workload is built
  /// (set a halt probability, swap the adversary, change the stop mode...).
  /// Native-backend scenarios have no sim_config and REJECT a non-null
  /// tweak: run_campaign throws std::invalid_argument before any work
  /// starts — no silent drops.
  config_tweak tweak;
  /// The cell's position in the FULL campaign it belongs to.
  /// campaign_grid::expand fills it; ad-hoc cell lists should too when they
  /// will be sharded or merged. It is emitted as the "index" field of the
  /// cell's campaign_io line, and campaign_io::merge_files orders merged
  /// records by it — that is what lets shard files (exp/campaign_shard.h)
  /// reassemble byte-identically to the single-process campaign. NOT part
  /// of cell_hash: moving a cell does not invalidate its resume record.
  std::uint64_t ordinal = 0;

  /// "<scenario>[/<variant>]/n=<n>"
  std::string label() const;
};

/// FNV-1a hash of the cell's declarative config (scenario, variant, n,
/// trials). Together with the seed this keys resume/skip-completed.
std::uint64_t cell_hash(const campaign_cell& cell);

/// Declarative axes, expanded scenario-major: for each scenario, for each
/// n, one cell with `trials` trials and seed trial_seed(seed, cell index)
/// (cells are decorrelated but each reproducible on its own).
struct campaign_grid {
  std::vector<std::string> scenarios;
  std::vector<std::uint64_t> ns;
  std::uint64_t trials = 200;
  std::uint64_t seed = 1;
  /// Optional per-cell trial count (op-budget style: down-weight large n so
  /// every cell costs about the same compute). When set it overrides
  /// `trials` for each (scenario, n). Cell seeds stay trial_seed(seed,
  /// cell index) — a pure function of the grid SHAPE — so changing the
  /// trial schedule never moves a cell's seed, and the (config hash, seed)
  /// resume key of an unchanged cell stays stable.
  std::function<std::uint64_t(const std::string& scenario, std::uint64_t n)>
      trials_for;

  std::vector<campaign_cell> expand() const;
};

/// Named per-cell metric values, in a fixed emission order.
struct cell_metrics {
  std::vector<std::pair<std::string, double>> values;

  /// Appends (or overwrites) a named value; returns *this for chaining.
  cell_metrics& set(const std::string& name, double value);
  /// Value by name; NaN when absent.
  double get(const std::string& name) const;
};

/// The standard extraction: the decision counters (trials/decided/
/// undecided/violations/backup) followed by every metric_set entry in
/// emission order, named by its rollup —
///
///   counter       -> <name>
///   mean          -> mean_<name>
///   location      -> mean_<name>, <name>_ci95, _p50, _p95, _min, _max
///   mean_and_sum  -> mean_<name>, <name>_sum
///
/// so shared-memory cells keep their historical names (mean_round,
/// round_ci95, ..., total_ops_sum) bit-identically, and backend-native
/// metrics flow through with no schema change. Metrics a workload never
/// emitted are ABSENT from the extraction (cell_metrics::get reads NaN;
/// tables render `-`, JSON omits them) — never fabricated zeros.
cell_metrics default_cell_metrics(const trial_stats& stats);

/// One finished (or resumed) cell, in cell-index order.
struct cell_result {
  campaign_cell cell;
  std::uint64_t hash = 0;  ///< cell_hash(cell)
  cell_metrics metrics;
  /// Summed wall-clock seconds of the cell's chunks (its compute cost; the
  /// campaign-level speedup metric). 0 for resumed cells. Not deterministic.
  double seconds = 0.0;
  bool resumed = false;  ///< metrics restored from campaign_io, not re-run
};

struct campaign_options {
  /// Concurrency cap across the whole campaign (participating threads,
  /// caller included); 0 = hardware concurrency.
  unsigned threads = 1;
  /// Pool the campaign runs on; null = worker_pool::shared().
  worker_pool* pool = nullptr;
  /// Streaming emission + resume index; null = neither.
  campaign_io* io = nullptr;
  /// Per-cell metric extraction; null = default_cell_metrics.
  std::function<cell_metrics(const campaign_cell&, const trial_stats&)>
      metrics;
  /// Invoked for every cell (fresh and resumed) in cell-index order, as
  /// soon as the cell and all its predecessors are done.
  std::function<void(const cell_result&)> on_cell;
};

/// Runs every cell and returns their results in cell order. Scenario keys
/// are validated up front (std::invalid_argument lists the known keys
/// before any work starts). Results are bit-identical for any
/// threads/pool/scheduling combination; see the header comment.
std::vector<cell_result> run_campaign(const std::vector<campaign_cell>& cells,
                                      const campaign_options& opts = {});

/// Convenience: expand + run.
std::vector<cell_result> run_campaign(const campaign_grid& grid,
                                      const campaign_options& opts = {});

}  // namespace leancon
