#include "exp/worker_pool.h"

#include "obs/obs.h"
#include "sim/trial_executor.h"

namespace leancon {

worker_pool::worker_pool(unsigned threads) {
  const unsigned n = resolve_threads(threads);
  workers_.reserve(n);
  for (unsigned w = 0; w < n; ++w) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

worker_pool::~worker_pool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (auto& th : workers_) th.join();
}

void worker_pool::drain(std::unique_lock<std::mutex>& lock, batch& b) {
  ++b.active;
  while (b.next < b.count) {
    const std::uint64_t index = b.next++;
    lock.unlock();
    try {
      (*b.fn)(index);
    } catch (...) {
      lock.lock();
      if (!b.failure) b.failure = std::current_exception();
      // Drop the unclaimed remainder so the batch drains promptly; tasks
      // already running elsewhere still finish and count toward done.
      b.done += b.count - b.next;
      b.next = b.count;
      ++b.done;
      continue;
    }
    lock.lock();
    ++b.done;
  }
  --b.active;
  if (b.done == b.count && b.active == 0) b.finished.notify_all();
}

void worker_pool::worker_loop() {
  std::unique_lock<std::mutex> lock(mutex_);
  while (true) {
    batch* todo = nullptr;
    for (batch* b : batches_) {
      if (claimable(*b)) {
        todo = b;
        break;
      }
    }
    if (todo != nullptr) {
      drain(lock, *todo);
      continue;
    }
    if (stopping_) return;
    work_ready_.wait(lock);
  }
}

void worker_pool::run(std::uint64_t count,
                      const std::function<void(std::uint64_t)>& fn,
                      unsigned cap) {
  if (count == 0) return;

  static auto* batches_counter = obs::counter("pool.batches");
  static auto* tasks_counter = obs::counter("pool.tasks");
  batches_counter->fetch_add(1, std::memory_order_relaxed);
  tasks_counter->fetch_add(count, std::memory_order_relaxed);
  obs::span batch_span("pool.batch");

  batch b;
  b.fn = &fn;
  b.count = count;
  b.cap = cap;

  std::unique_lock<std::mutex> lock(mutex_);
  batches_.push_back(&b);
  // Wake only as many workers as can usefully join (the caller takes one
  // slot below).
  const std::uint64_t useful =
      cap == 0 ? count : std::min<std::uint64_t>(count, cap);
  if (useful > 1) work_ready_.notify_all();

  // The caller works its own batch; this guarantees progress even when all
  // workers are busy elsewhere (including nested run() from inside a task).
  // When workers already hold every cap slot, progress is theirs to make — a
  // participant never leaves a batch while unclaimed tasks remain.
  if (claimable(b)) drain(lock, b);
  while (b.done < b.count || b.active > 0) b.finished.wait(lock);
  batches_.remove(&b);
  if (b.failure) std::rethrow_exception(b.failure);
}

worker_pool& worker_pool::shared() {
  static worker_pool pool(0);
  return pool;
}

}  // namespace leancon
