#include "exp/campaign_shard.h"

#include <stdexcept>

#include "util/rng.h"

namespace leancon {

shard_spec parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  shard_spec spec;
  try {
    std::size_t index_end = 0;
    std::size_t count_end = 0;
    if (slash == std::string::npos || slash == 0) throw std::exception();
    spec.index = std::stoull(text.substr(0, slash), &index_end);
    const std::string count_text = text.substr(slash + 1);
    if (count_text.empty()) throw std::exception();
    spec.count = std::stoull(count_text, &count_end);
    if (index_end != slash || count_end != count_text.size()) {
      throw std::exception();
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("shard \"" + text +
                                "\" is not of the form i/k (e.g. 0/3)");
  }
  if (spec.count == 0) {
    throw std::invalid_argument("shard \"" + text +
                                "\": shard count must be >= 1");
  }
  if (spec.index >= spec.count) {
    throw std::invalid_argument("shard \"" + text + "\": index " +
                                std::to_string(spec.index) +
                                " is out of range for " +
                                std::to_string(spec.count) + " shard(s)");
  }
  return spec;
}

std::uint64_t shard_of(const campaign_cell& cell, std::uint64_t count) {
  if (count == 0) {
    throw std::invalid_argument("shard_of: shard count must be >= 1");
  }
  // Hash the full resume key (config hash, seed). The golden-ratio multiply
  // spreads the seed before the xor so (hash, seed) and (hash ^ seed, 0)
  // cannot collide trivially; splitmix64 then mixes the combined word.
  std::uint64_t state =
      cell_hash(cell) ^ (cell.params.seed * 0x9e3779b97f4a7c15ULL);
  return splitmix64_next(state) % count;
}

std::vector<campaign_cell> filter_shard(const std::vector<campaign_cell>& cells,
                                        const shard_spec& shard) {
  if (shard.index >= shard.count) {
    throw std::invalid_argument(
        "filter_shard: index " + std::to_string(shard.index) +
        " is out of range for " + std::to_string(shard.count) + " shard(s)");
  }
  std::vector<campaign_cell> mine;
  for (const auto& cell : cells) {
    if (shard_of(cell, shard.count) == shard.index) mine.push_back(cell);
  }
  return mine;
}

}  // namespace leancon
