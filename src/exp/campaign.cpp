#include "exp/campaign.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "exp/campaign_io.h"
#include "exp/worker_pool.h"
#include "obs/obs.h"
#include "sim/trial_executor.h"

namespace leancon {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::uint64_t fnv1a_mix(std::uint64_t h, const std::string& s) {
  for (const unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  // Field separator, so ("ab", "c") and ("a", "bc") hash differently.
  h ^= 0xff;
  h *= 0x100000001b3ULL;
  return h;
}

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

std::string campaign_cell::label() const {
  std::string out = scenario;
  if (!variant.empty()) out += "/" + variant;
  out += "/n=" + std::to_string(params.n);
  return out;
}

std::uint64_t cell_hash(const campaign_cell& cell) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  h = fnv1a_mix(h, cell.scenario);
  h = fnv1a_mix(h, cell.variant);
  h = fnv1a_mix(h, std::to_string(cell.params.n));
  h = fnv1a_mix(h, std::to_string(cell.trials));
  return h;
}

std::vector<campaign_cell> campaign_grid::expand() const {
  std::vector<campaign_cell> cells;
  cells.reserve(scenarios.size() * ns.size());
  std::uint64_t index = 0;
  for (const auto& scenario : scenarios) {
    for (const auto n : ns) {
      campaign_cell cell;
      cell.scenario = scenario;
      cell.params.n = n;
      // Decorrelate cells (nearby indices never share trial-seed streams)
      // while keeping every cell reproducible from (seed, index) alone.
      // The seed never depends on the trial schedule, so op-budget reruns
      // resume cleanly.
      cell.params.seed = trial_seed(seed, index);
      cell.trials = trials_for ? trials_for(scenario, n) : trials;
      cell.ordinal = index;
      cells.push_back(std::move(cell));
      ++index;
    }
  }
  return cells;
}

cell_metrics& cell_metrics::set(const std::string& name, double value) {
  for (auto& [key, old] : values) {
    if (key == name) {
      old = value;
      return *this;
    }
  }
  values.emplace_back(name, value);
  return *this;
}

double cell_metrics::get(const std::string& name) const {
  for (const auto& [key, value] : values) {
    if (key == name) return value;
  }
  return kNaN;
}

cell_metrics default_cell_metrics(const trial_stats& stats) {
  cell_metrics m;
  m.set("trials", static_cast<double>(stats.trials))
      .set("decided", static_cast<double>(stats.decided_trials))
      .set("undecided", static_cast<double>(stats.undecided_trials))
      .set("violations", static_cast<double>(stats.violation_trials))
      .set("backup", static_cast<double>(stats.backup_trials));
  for (const auto& e : stats.metrics.entries()) {
    if (e.is_counter) {
      m.set(e.name, e.total);
      continue;
    }
    const summary& s = e.stats;
    m.set("mean_" + e.name, s.mean());
    switch (e.rollup) {
      case metric_rollup::mean:
        break;
      case metric_rollup::location:
        m.set(e.name + "_ci95", s.ci95_halfwidth())
            .set(e.name + "_p50", s.quantile(0.5))
            .set(e.name + "_p95", s.quantile(0.95))
            .set(e.name + "_min", s.min())
            .set(e.name + "_max", s.max());
        break;
      case metric_rollup::mean_and_sum:
        // Written exactly as the benches historically accumulated sim_ops
        // (mean * count), so campaign ports reproduce counters bit-for-bit.
        m.set(e.name + "_sum",
              s.mean() * static_cast<double>(s.count()));
        break;
    }
  }
  return m;
}

std::vector<cell_result> run_campaign(const std::vector<campaign_cell>& cells,
                                      const campaign_options& opts) {
  obs::span campaign_span("campaign.run");
  // Per-cell execution state for cells that actually run.
  struct cell_state {
    workload work;  ///< the cell's bound workload (tweak already applied)
    std::vector<trial_stats> chunk_stats;
    std::vector<double> chunk_seconds;
    std::atomic<std::uint64_t> remaining{0};
  };

  const std::size_t n_cells = cells.size();
  std::vector<cell_result> results(n_cells);
  std::vector<cell_state> states(n_cells);

  const auto extract = [&](const campaign_cell& cell,
                           const trial_stats& stats) {
    return opts.metrics ? opts.metrics(cell, stats)
                        : default_cell_metrics(stats);
  };

  // Validate and prepare every cell up front: unknown scenario keys fail
  // before any work is scheduled.
  std::vector<char> complete(n_cells, 0);
  struct task {
    std::uint32_t cell = 0;
    std::uint32_t chunk = 0;
  };
  std::vector<task> tasks;
  for (std::size_t i = 0; i < n_cells; ++i) {
    cell_result& r = results[i];
    r.cell = cells[i];
    r.hash = cell_hash(cells[i]);

    cell_state& st = states[i];
    // Build every cell's workload up front — unknown scenario keys and
    // tweaks on native backends fail here, before any work is scheduled,
    // with the cell named in the message.
    try {
      st.work = make_workload(cells[i].scenario, cells[i].params,
                              cells[i].tweak);
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("campaign cell " + std::to_string(i) +
                                  " (" + cells[i].label() + "): " + e.what());
    }

    if (opts.io != nullptr) {
      if (const auto* rec = opts.io->find(r.hash, cells[i].params.seed)) {
        r.metrics = rec->metrics;
        r.resumed = true;
        complete[i] = 1;
        continue;
      }
    }

    const std::uint64_t n_chunks = trial_chunk_count(cells[i].trials);
    if (n_chunks == 0) {
      r.metrics = extract(cells[i], trial_stats{});
      complete[i] = 1;
      continue;
    }
    st.chunk_stats.resize(n_chunks);
    st.chunk_seconds.resize(n_chunks, 0.0);
    st.remaining.store(n_chunks, std::memory_order_relaxed);
    for (std::uint64_t c = 0; c < n_chunks; ++c) {
      tasks.push_back({static_cast<std::uint32_t>(i),
                       static_cast<std::uint32_t>(c)});
    }
  }

  // Ordered streaming: a cell flushes (io emission + on_cell) once it AND
  // every cell before it completed, so output order equals cell order for
  // any scheduling.
  // Progress counters feeding the heartbeat emitter (always on; bumped at
  // chunk/cell granularity only). Resumed cells count their trials here,
  // since they never reach run_task.
  static auto* cells_done_counter = obs::counter("campaign.cells_done");
  static auto* trials_done_counter = obs::counter("campaign.trials_done");

  std::mutex flush_mutex;
  std::size_t cursor = 0;
  const auto flush_ready = [&] {
    while (cursor < n_cells && complete[cursor]) {
      const cell_result& r = results[cursor];
      if (opts.io != nullptr && !r.resumed) opts.io->emit(r);
      if (opts.on_cell) opts.on_cell(r);
      cells_done_counter->fetch_add(1, std::memory_order_relaxed);
      if (r.resumed) {
        trials_done_counter->fetch_add(r.cell.trials,
                                       std::memory_order_relaxed);
      }
      ++cursor;
    }
  };

  const auto finalize_cell = [&](std::size_t i) {
    cell_state& st = states[i];
    trial_stats total;
    double seconds = 0.0;
    for (std::size_t c = 0; c < st.chunk_stats.size(); ++c) {
      total.merge(st.chunk_stats[c]);
      seconds += st.chunk_seconds[c];
    }
    results[i].metrics = extract(cells[i], total);
    results[i].seconds = seconds;
    const std::lock_guard<std::mutex> lock(flush_mutex);
    complete[i] = 1;
    flush_ready();
  };

  const auto run_task = [&](std::uint64_t t) {
    const auto [cell_index, chunk] = tasks[t];
    const campaign_cell& cell = cells[cell_index];
    cell_state& st = states[cell_index];
    if (obs::status_active()) obs::set_status(cell.label());
    obs::span chunk_span("campaign.chunk");
    const auto start = std::chrono::steady_clock::now();

    trial_stats& stats = st.chunk_stats[chunk];
    const std::uint64_t begin = trial_chunk_begin(cell.trials, chunk);
    const std::uint64_t end = trial_chunk_begin(cell.trials, chunk + 1);
    for (std::uint64_t trial = begin; trial < end; ++trial) {
      stats.record(st.work.run_trial(trial_seed(cell.params.seed, trial)));
    }

    st.chunk_seconds[chunk] = seconds_since(start);
    trials_done_counter->fetch_add(end - begin, std::memory_order_relaxed);
    if (st.remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      finalize_cell(cell_index);
    }
  };

  if (!tasks.empty()) {
    worker_pool& pool =
        opts.pool != nullptr ? *opts.pool : worker_pool::shared();
    pool.run(tasks.size(), run_task, resolve_threads(opts.threads));
  }

  // Resumed-only (or empty) campaigns never enter finalize_cell; flush the
  // prefix that is already complete.
  {
    const std::lock_guard<std::mutex> lock(flush_mutex);
    flush_ready();
  }
  return results;
}

std::vector<cell_result> run_campaign(const campaign_grid& grid,
                                      const campaign_options& opts) {
  return run_campaign(grid.expand(), opts);
}

}  // namespace leancon
