// Deterministic cell → shard assignment for distributing a campaign across
// processes or hosts.
//
// Every worker expands the SAME full grid, keeps only the cells its shard
// owns, and streams them to its own campaign_io cells file; the files then
// merge back (campaign_io::merge_files / bench/campaign_report) into a
// stream byte-identical to the single-process campaign. The assignment is a
// pure function of the cell's (config hash, seed) resume key — never of its
// position — so editing the grid (appending a scenario, dropping a cell)
// moves no surviving cell to a different shard, and a shard's partial cells
// file stays resumable after the edit.
//
//   shard_of(cell, k) == splitmix64(cell_hash(cell) ^ mix(seed)) % k
//
// The k shards partition the grid exactly: every cell belongs to one and
// only one shard for any k >= 1. Balance is statistical (hash-uniform), not
// exact — fine for grids of tens of cells and up.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/campaign.h"

namespace leancon {

/// One shard of a campaign: run the cells assigned to `index` of `count`.
struct shard_spec {
  std::uint64_t index = 0;
  std::uint64_t count = 1;  ///< total shards; 1 = the whole campaign
};

/// Parses the CLI form "i/k" (e.g. "0/3"). Throws std::invalid_argument on
/// malformed text, k == 0, or i >= k.
shard_spec parse_shard(const std::string& text);

/// The shard (in [0, count)) that owns `cell` among `count` shards. Depends
/// only on (cell_hash(cell), cell.params.seed) — the cell's resume key —
/// so the assignment is stable under grid edits and identical on every
/// host. Throws std::invalid_argument when count == 0.
std::uint64_t shard_of(const campaign_cell& cell, std::uint64_t count);

/// The subset of `cells` owned by `shard`, in their original order (ordinals
/// and seeds untouched, so the shard's campaign_io lines are byte-identical
/// to the lines the single-process campaign would write for those cells).
std::vector<campaign_cell> filter_shard(const std::vector<campaign_cell>& cells,
                                        const shard_spec& shard);

}  // namespace leancon
