// Shared CLI → campaign_grid construction for the grid drivers
// (examples/sweep, bench/campaign_worker).
//
// The shard/merge byte-identity contract requires every worker and the
// single-process reference to expand EXACTLY the same grid from the same
// flags — cell_hash includes the per-cell trial count, so even the
// op-budget cost model drifting between two binaries would fork the
// (hash, seed) resume keys and make their files unmergeable. Keeping the
// flag set and the expansion in one place makes that divergence
// impossible.
#pragma once

#include <string>
#include <vector>

#include "exp/campaign.h"

namespace leancon {

class options;

/// Splits a comma-separated CLI list ("a,b,c") into its non-empty items —
/// the parsing every list-valued campaign flag (--scenarios, --cells)
/// shares.
std::vector<std::string> split_list(const std::string& list);

/// Declares the grid flags: --scenarios, --ns, --trials, --op-budget,
/// --seed. Every binary that calls grid_from_options must declare these
/// (and should document that distributed runs pass identical values on
/// every shard).
void add_grid_flags(options& opts);

/// Builds the declarative grid from the parsed flags. "all" expands to the
/// whole scenario registry in registry order. With --op-budget > 0 the
/// per-cell trial count scales down at large n under the shared cost model
/// (~n * 48 + 8 simulated ops per trial); only the trial count varies, so
/// cell seeds — and with them shard assignment and resume keys — stay a
/// pure function of the grid shape. Throws std::invalid_argument on an
/// unknown scenario key (the message lists the known keys).
campaign_grid grid_from_options(const options& opts);

}  // namespace leancon
