// Shared CLI → campaign_grid construction for the grid drivers
// (examples/sweep, bench/campaign_worker).
//
// The shard/merge byte-identity contract requires every worker and the
// single-process reference to expand EXACTLY the same grid from the same
// flags — cell_hash includes the per-cell trial count, so even the
// op-budget cost model drifting between two binaries would fork the
// (hash, seed) resume keys and make their files unmergeable. Keeping the
// flag set and the expansion in one place makes that divergence
// impossible.
#pragma once

#include <string>
#include <vector>

#include "exp/campaign.h"

namespace leancon {

class options;

/// Splits a comma-separated CLI list ("a,b,c") into its non-empty items —
/// the parsing every list-valued campaign flag (--scenarios, --cells)
/// shares.
std::vector<std::string> split_list(const std::string& list);

/// Declares the grid flags: --scenarios, --ns, --trials, --op-budget,
/// --seed. Every binary that calls grid_from_options must declare these
/// (and should document that distributed runs pass identical values on
/// every shard).
void add_grid_flags(options& opts);

/// Builds the declarative grid from the parsed flags. "all" expands to the
/// whole scenario registry in registry order. With --op-budget > 0 the
/// per-cell trial count scales down at large n under the shared cost model
/// (~n * 48 + 8 simulated ops per trial); only the trial count varies, so
/// cell seeds — and with them shard assignment and resume keys — stay a
/// pure function of the grid shape. Throws std::invalid_argument on an
/// unknown scenario key (the message lists the known keys).
campaign_grid grid_from_options(const options& opts);

// --- Explicit-cell (rebalance) grids ---------------------------------------
//
// When a shard exhausts its retry budget, the fleet supervisor re-issues
// the shard's REMAINING cells as explicit ordinal lists onto surviving
// workers (campaign_worker --only-cells=3,7,11). Ordinals index the FULL
// expanded grid, so the selected cells keep their seeds, hashes, and
// "index" fields — the rebalanced lines stay byte-identical to the lines
// the single-process campaign would write.

/// Parses a comma-separated ordinal list ("3,7,11"). Throws
/// std::invalid_argument on malformed, negative, or duplicate entries —
/// the message names the offending ordinal. (A duplicate means the caller
/// built a bad list; collapsing it silently would hide that bug.)
std::vector<std::uint64_t> parse_ordinal_list(const std::string& list);

/// Renders ordinals back into the --only-cells CLI form.
std::string format_ordinal_list(const std::vector<std::uint64_t>& ordinals);

/// The subset of `cells` whose ordinal is listed, in original grid order.
/// Throws std::invalid_argument when an ordinal matches no cell (e.g. out
/// of range for the expanded grid), naming the offending ordinal — a stale
/// list must fail loudly, never silently shrink the rebalanced set.
std::vector<campaign_cell> filter_ordinals(
    const std::vector<campaign_cell>& cells,
    const std::vector<std::uint64_t>& ordinals);

}  // namespace leancon
