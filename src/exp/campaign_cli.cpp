#include "exp/campaign_cli.h"

#include <algorithm>
#include <stdexcept>

#include "scenario/scenario.h"
#include "util/options.h"

namespace leancon {

std::vector<std::string> split_list(const std::string& list) {
  std::vector<std::string> items;
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) items.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return items;
}

void add_grid_flags(options& opts) {
  opts.add("scenarios", "all",
           "comma-separated scenario keys, or \"all\" (" + scenario_keys() +
               ")");
  opts.add("ns", "4,16,64", "comma-separated process counts");
  opts.add("trials", "200", "trials per (scenario, n) cell");
  opts.add("op-budget", "0",
           "approximate per-cell operation budget: scales trials down at "
           "large n (0 = off; cell seeds and resume keys stay stable)");
  opts.add("seed", "1", "base seed");
}

campaign_grid grid_from_options(const options& opts) {
  campaign_grid grid;
  if (opts.get("scenarios") == "all") {
    for (const auto& spec : scenario_registry()) {
      grid.scenarios.push_back(spec.key);
    }
  } else {
    for (const auto& key : split_list(opts.get("scenarios"))) {
      if (find_scenario(key) == nullptr) {
        throw std::invalid_argument("unknown scenario \"" + key +
                                    "\"; known: " + scenario_keys());
      }
      grid.scenarios.push_back(key);
    }
  }
  for (const std::int64_t n : opts.get_int_list("ns")) {
    grid.ns.push_back(static_cast<std::uint64_t>(n));
  }
  grid.trials = static_cast<std::uint64_t>(opts.get_int("trials"));
  grid.seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const auto op_budget = static_cast<std::uint64_t>(opts.get_int("op-budget"));
  if (op_budget > 0) {
    // THE shared cost model (see the header comment: a drifting copy would
    // fork resume keys between drivers). Only the trial count varies.
    const std::uint64_t max_trials = grid.trials;
    grid.trials_for = [op_budget, max_trials](const std::string&,
                                              std::uint64_t n) {
      const std::uint64_t per_trial = n * 48 + 8;
      return std::max<std::uint64_t>(
          1, std::min(max_trials, op_budget / per_trial));
    };
  }
  return grid;
}

std::vector<std::uint64_t> parse_ordinal_list(const std::string& list) {
  std::vector<std::uint64_t> ordinals;
  for (const auto& item : split_list(list)) {
    std::size_t used = 0;
    std::uint64_t value = 0;
    try {
      value = std::stoull(item, &used, 10);
    } catch (const std::exception&) {
      throw std::invalid_argument("malformed cell ordinal \"" + item + "\"");
    }
    if (used != item.size()) {
      throw std::invalid_argument("malformed cell ordinal \"" + item + "\"");
    }
    if (std::find(ordinals.begin(), ordinals.end(), value) !=
        ordinals.end()) {
      // A duplicate is a caller bug (a rebalance handing the same cell out
      // twice, a typo'd hand-written list) — silently collapsing it would
      // hide that, so name the offender instead.
      throw std::invalid_argument("duplicate cell ordinal " +
                                  std::to_string(value));
    }
    ordinals.push_back(value);
  }
  return ordinals;
}

std::string format_ordinal_list(const std::vector<std::uint64_t>& ordinals) {
  std::string out;
  for (const auto o : ordinals) {
    if (!out.empty()) out += ',';
    out += std::to_string(o);
  }
  return out;
}

std::vector<campaign_cell> filter_ordinals(
    const std::vector<campaign_cell>& cells,
    const std::vector<std::uint64_t>& ordinals) {
  std::vector<campaign_cell> kept;
  std::vector<std::uint64_t> unmatched = ordinals;
  for (const auto& cell : cells) {
    const auto it =
        std::find(unmatched.begin(), unmatched.end(), cell.ordinal);
    if (it == unmatched.end()) continue;
    kept.push_back(cell);
    unmatched.erase(it);
  }
  if (!unmatched.empty()) {
    throw std::invalid_argument(
        "cell ordinal " + std::to_string(unmatched.front()) +
        " matches no cell of the expanded grid (" +
        std::to_string(cells.size()) + " cells)");
  }
  return kept;
}

}  // namespace leancon
