// Persistent worker pool shared across all experiment cells.
//
// The trial executor used to spawn a fresh thread team for every run_trials
// batch; fine for a handful of big batches, wasteful for campaign grids made
// of many tiny cells. A worker_pool is created once (threads park between
// batches) and every batch — an executor's chunk grid, or a whole campaign's
// flattened (cell, chunk) task list — is scheduled onto it.
//
// Scheduling model:
//   * run(count, fn, cap) submits `count` indexed tasks. Workers claim
//     indices dynamically in increasing order (work-stealing across
//     whatever batches are live), so stragglers load-balance.
//   * The CALLING thread participates as a worker on its own batch, so a
//     pool with zero free workers still makes progress and nested run()
//     calls from inside a task cannot deadlock.
//   * `cap` bounds the number of concurrent participants (callers included)
//     per batch; it is how an executor honours --threads without resizing
//     the shared pool. 0 means no bound.
//
// Determinism: the pool only affects WHICH thread executes a task and WHEN;
// callers that keep per-task state separate and merge in fixed index order
// (the executor's chunk-grid contract) get bit-identical results for any
// pool size, cap, or claim interleaving.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <mutex>
#include <thread>
#include <vector>

namespace leancon {

class worker_pool {
 public:
  /// Spawns `threads` parked workers; 0 = hardware concurrency (at least 1).
  explicit worker_pool(unsigned threads = 0);

  /// Joins all workers. Outstanding run() calls must have returned.
  ~worker_pool();

  worker_pool(const worker_pool&) = delete;
  worker_pool& operator=(const worker_pool&) = delete;

  /// Worker threads owned by the pool (callers participate on top).
  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  /// Executes fn(0) .. fn(count - 1), each exactly once, and returns when
  /// all have finished. Tasks may run on any worker or on the calling
  /// thread; indices are claimed in increasing order. At most `cap`
  /// threads (including the caller) execute this batch concurrently; 0
  /// means unbounded. If any task throws, the first exception is rethrown
  /// here after the batch drains (remaining unclaimed tasks are dropped).
  ///
  /// Thread-safe: concurrent run() calls from different threads interleave
  /// their batches across the workers.
  void run(std::uint64_t count, const std::function<void(std::uint64_t)>& fn,
           unsigned cap = 0);

  /// The process-wide pool, created on first use with hardware-concurrency
  /// workers. Executors and campaigns default to it; tests build their own
  /// pools when they need a specific size.
  static worker_pool& shared();

 private:
  struct batch {
    const std::function<void(std::uint64_t)>* fn = nullptr;
    std::uint64_t count = 0;
    std::uint64_t next = 0;    ///< next unclaimed index (under mutex_)
    std::uint64_t done = 0;    ///< finished tasks (under mutex_)
    unsigned active = 0;       ///< threads currently inside this batch
    unsigned cap = 0;          ///< max concurrent participants; 0 = none
    std::exception_ptr failure;
    std::condition_variable finished;
  };

  /// True when a thread may claim work from `b` right now.
  static bool claimable(const batch& b) {
    return b.next < b.count && (b.cap == 0 || b.active < b.cap);
  }

  /// Claims and executes tasks from `b` until it has none left to hand out.
  /// Called with mutex_ held; returns with mutex_ held.
  void drain(std::unique_lock<std::mutex>& lock, batch& b);

  void worker_loop();

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;
  std::list<batch*> batches_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace leancon
