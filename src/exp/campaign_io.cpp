#include "exp/campaign_io.h"

#include <algorithm>
#include <cinttypes>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "obs/obs.h"
#include "util/json.h"

namespace leancon {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
  return buf;
}

bool blank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

/// Parses one emitted line back into a record; false when the line is not a
/// well-formed cell record (torn writes, foreign content).
bool parse_record(const std::string& line, campaign_io::record& out) {
  json::value v;
  try {
    v = json::parse(line);
  } catch (const std::exception&) {
    return false;
  }
  if (v.k != json::value::kind::object) return false;
  const json::value* hash = v.find("hash");
  const json::value* seed = v.find("seed");
  const json::value* metrics = v.find("metrics");
  if (hash == nullptr || hash->k != json::value::kind::string ||
      seed == nullptr || seed->k != json::value::kind::string ||
      metrics == nullptr || metrics->k != json::value::kind::object) {
    return false;
  }
  try {
    out.hash = std::stoull(hash->str, nullptr, 16);
    out.seed = std::stoull(seed->str, nullptr, 16);
  } catch (const std::exception&) {
    return false;
  }
  // Declarative fields: best-effort (older files may lack them).
  const auto read_string = [&v](const char* key, std::string& into) {
    const json::value* node = v.find(key);
    if (node != nullptr && node->k == json::value::kind::string) {
      into = node->str;
    }
  };
  const auto read_uint = [&v](const char* key, std::uint64_t& into) {
    const json::value* node = v.find(key);
    if (node != nullptr && node->k == json::value::kind::number) {
      into = static_cast<std::uint64_t>(node->num);
    }
  };
  read_string("cell", out.label);
  read_string("scenario", out.scenario);
  read_string("variant", out.variant);
  read_uint("n", out.n);
  read_uint("trials", out.trials);
  read_uint("index", out.ordinal);
  if (const json::value* seconds = v.find("seconds")) {
    if (seconds->k == json::value::kind::number) out.seconds = seconds->num;
  }
  out.metrics.values.clear();
  for (const auto& [name, value] : metrics->members) {
    if (value.k == json::value::kind::number) {
      out.metrics.set(name, value.num);
    } else if (value.k == json::value::kind::null) {
      // Non-finite values emit as null; NaN restores the "absent" reading.
      out.metrics.set(name, std::numeric_limits<double>::quiet_NaN());
    } else {
      return false;
    }
  }
  return true;
}

/// True when two records for the same (hash, seed) key agree on every
/// deterministic field — everything but "seconds", the one value allowed
/// to differ between re-runs of the same cell. Metric values round-trip
/// bit-exactly (%.17g), so exact comparison is right; NaN (restored from
/// null, meaning "absent") compares equal to NaN.
bool same_deterministic_fields(const campaign_io::record& a,
                               const campaign_io::record& b) {
  if (a.label != b.label || a.scenario != b.scenario ||
      a.variant != b.variant || a.n != b.n || a.trials != b.trials ||
      a.ordinal != b.ordinal) {
    return false;
  }
  if (a.metrics.values.size() != b.metrics.values.size()) return false;
  for (std::size_t i = 0; i < a.metrics.values.size(); ++i) {
    const auto& [an, av] = a.metrics.values[i];
    const auto& [bn, bv] = b.metrics.values[i];
    if (an != bn) return false;
    const bool both_nan = std::isnan(av) && std::isnan(bv);
    if (!both_nan && av != bv) return false;
  }
  return true;
}

}  // namespace

bool campaign_io::parse_line(const std::string& line, record& out) {
  return parse_record(line, out);
}

std::vector<campaign_io::record> campaign_io::read_records(
    const std::string& path, std::size_t* skipped) {
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    throw std::runtime_error("campaign_io: cannot read " + path);
  }
  std::vector<record> records;
  std::size_t bad = 0;
  std::string line;
  while (in.good() && std::getline(in, line)) {
    if (blank(line)) continue;
    record rec;
    if (parse_record(line, rec)) {
      records.push_back(std::move(rec));
    } else {
      ++bad;
    }
  }
  if (skipped != nullptr) *skipped = bad;
  return records;
}

campaign_io::merged_cells campaign_io::merge_files(
    const std::vector<std::string>& paths, bool tolerate_missing) {
  obs::span merge_span("campaign_io.merge");
  static auto* merged_counter = obs::counter("campaign_io.merged_records");
  merged_cells merged;
  // (hash, seed) key -> index of the kept record, so duplicate/conflict
  // detection stays linear in the total line count.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::size_t> by_key;
  // Source file of each kept record, for conflict diagnostics.
  std::vector<const std::string*> sources;
  for (const auto& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in.good()) {
      if (!tolerate_missing) {
        throw std::runtime_error("campaign_io: cannot read " + path);
      }
      merged.missing_files.push_back(path);
      continue;
    }
    std::size_t file_records = 0;
    std::string line;
    while (in.good() && std::getline(in, line)) {
      if (blank(line)) continue;
      record rec;
      if (!parse_record(line, rec)) {
        ++merged.skipped_lines;
        continue;
      }
      ++file_records;
      const auto [it, inserted] =
          by_key.try_emplace({rec.hash, rec.seed}, merged.records.size());
      if (!inserted) {
        // Byte-identical re-runs dedup outright. Lines differing only in
        // the non-deterministic "seconds" field (a --cell-seconds file
        // merged with a re-run of the same cell) are the same result and
        // dedup too — the hard error is reserved for real metric/config
        // divergence, which means a corrupted or mismatched campaign.
        if (merged.lines[it->second] == line ||
            same_deterministic_fields(merged.records[it->second], rec)) {
          ++merged.duplicate_cells;
          continue;
        }
        throw std::runtime_error(
            "campaign_io: conflicting records for cell \"" + rec.label +
            "\" (hash " + hex64(rec.hash) + ", seed " + hex64(rec.seed) +
            "): " + *sources[it->second] + " and " + path +
            " hold the same key with different deterministic fields");
      }
      merged.lines.push_back(line);
      merged.records.push_back(std::move(rec));
      sources.push_back(&path);
    }
    if (file_records == 0) merged.empty_files.push_back(path);
  }
  // Canonical order: the cells' positions in the full campaign. The sort is
  // stable, so records without an "index" (older files, ad-hoc campaigns)
  // keep their file-then-line order.
  std::vector<std::size_t> order(merged.records.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return merged.records[a].ordinal <
                            merged.records[b].ordinal;
                   });
  merged_cells sorted;
  sorted.duplicate_cells = merged.duplicate_cells;
  sorted.skipped_lines = merged.skipped_lines;
  sorted.missing_files = std::move(merged.missing_files);
  sorted.empty_files = std::move(merged.empty_files);
  sorted.lines.reserve(order.size());
  sorted.records.reserve(order.size());
  for (const std::size_t i : order) {
    sorted.lines.push_back(std::move(merged.lines[i]));
    sorted.records.push_back(std::move(merged.records[i]));
  }
  merged_counter->fetch_add(sorted.records.size(),
                            std::memory_order_relaxed);
  return sorted;
}

campaign_io::campaign_io(const std::string& path, bool resume,
                         bool record_seconds)
    : path_(path), record_seconds_(record_seconds) {
  obs::span resume_span("campaign_io.open");
  static auto* resumed_counter = obs::counter("campaign_io.resume_records");
  bool unterminated = false;
  if (resume) {
    std::ifstream in(path_, std::ios::binary);
    std::string line;
    while (in.good() && std::getline(in, line)) {
      if (blank(line)) continue;
      record rec;
      if (parse_record(line, rec)) {
        records_.push_back(std::move(rec));
      } else {
        ++skipped_lines_;
      }
    }
    // getline cannot see whether the final line carried its newline; check
    // the raw tail so a torn line cannot fuse with the next appended record.
    std::ifstream tail(path_, std::ios::binary | std::ios::ate);
    if (tail.good() && tail.tellg() > 0) {
      tail.seekg(-1, std::ios::end);
      char c = '\n';
      tail.get(c);
      unterminated = c != '\n';
    }
  }
  resumed_counter->fetch_add(records_.size(), std::memory_order_relaxed);
  file_ = std::fopen(path_.c_str(), resume ? "a" : "w");
  if (file_ == nullptr) {
    throw std::runtime_error("campaign_io: cannot open " + path_);
  }
  if (unterminated) std::fputc('\n', file_);
}

campaign_io::~campaign_io() {
  if (file_ != nullptr) std::fclose(file_);
}

const campaign_io::record* campaign_io::find(std::uint64_t hash,
                                             std::uint64_t seed) const {
  for (const auto& rec : records_) {
    if (rec.hash == hash && rec.seed == seed) return &rec;
  }
  return nullptr;
}

std::string campaign_io::format_line(const cell_result& r,
                                     bool record_seconds) {
  std::ostringstream os;
  os << "{\"cell\": ";
  json::write_string(os, r.cell.label());
  os << ", \"scenario\": ";
  json::write_string(os, r.cell.scenario);
  os << ", \"variant\": ";
  json::write_string(os, r.cell.variant);
  os << ", \"n\": ";
  json::write_uint(os, r.cell.params.n);
  os << ", \"trials\": ";
  json::write_uint(os, r.cell.trials);
  os << ", \"index\": ";
  json::write_uint(os, r.cell.ordinal);
  os << ", \"seed\": ";
  json::write_string(os, hex64(r.cell.params.seed));
  os << ", \"hash\": ";
  json::write_string(os, hex64(r.hash));
  if (record_seconds) {
    os << ", \"seconds\": ";
    json::write_number(os, r.seconds);
  }
  os << ", \"metrics\": {";
  for (std::size_t i = 0; i < r.metrics.values.size(); ++i) {
    if (i > 0) os << ", ";
    json::write_string(os, r.metrics.values[i].first);
    os << ": ";
    json::write_number(os, r.metrics.values[i].second);
  }
  os << "}}\n";
  return os.str();
}

void campaign_io::emit(const cell_result& r) {
  if (r.resumed) return;  // its line is already on file
  const std::string line = format_line(r, record_seconds_);
  std::fputs(line.c_str(), file_);
  std::fflush(file_);
}

}  // namespace leancon
