// Streaming campaign output and resume/skip-completed support.
//
// A campaign_io owns one JSON-lines file: one self-contained JSON object
// per finished cell, appended and flushed the moment the cell completes (in
// cell-index order), so a killed campaign loses at most the in-flight
// cells. Metric values follow the BENCH json conventions (util/json
// writers: %.17g numbers, null for non-finite), so every recorded value
// round-trips bit-exactly through resume.
//
// Line schema:
//
//   {"cell": "<label>", "scenario": "<key>", "variant": "<or empty>",
//    "n": <number>, "trials": <number>, "index": <number>,
//    "seed": "<0x hex>", "hash": "<0x hex of cell_hash>",
//    "seconds": <number>, "metrics": {"<name>": <number|null>}}
//
// ("index" is campaign_cell::ordinal — the cell's position in the FULL
// campaign. merge_files orders merged records by it, which is what lets a
// set of shard files written by exp/campaign_shard.h workers reassemble
// byte-identically to the single-process campaign's file.)
//
// (seed and hash are hex STRINGS: they are full 64-bit keys, which JSON
// numbers — doubles — cannot carry exactly.) A workload's absent metrics
// are OMITTED from the metrics object — absent is not zero — and restore
// as absent on resume. The "seconds" field (per-cell wall clock, for the
// campaign-level BENCH emitter) is opt-in via record_seconds: it is the
// one non-deterministic value, so recording it trades away the
// byte-identical-across-runs property of the default file.
//
// Resume: opening with resume = true indexes the existing records;
// run_campaign skips any cell whose (cell_hash, seed) pair is on file and
// restores its metrics from the record instead of re-simulating.
// Unparseable lines (e.g. a torn final line from a crash) are skipped and
// counted; their cells simply re-run.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "exp/campaign.h"

namespace leancon {

class campaign_io {
 public:
  /// One previously recorded cell. The declarative fields (label, scenario,
  /// variant, n, trials, seconds) are best-effort: files written before
  /// they existed parse with their defaults.
  struct record {
    std::uint64_t hash = 0;
    std::uint64_t seed = 0;
    std::string label;
    std::string scenario;
    std::string variant;
    std::uint64_t n = 0;
    std::uint64_t trials = 0;
    std::uint64_t ordinal = 0;  ///< "index": position in the full campaign
    double seconds = 0.0;  ///< 0 unless the writer enabled record_seconds
    cell_metrics metrics;
  };

  /// Opens `path` for appending. With resume = true an existing file is
  /// first indexed for skip-completed; with resume = false the file is
  /// truncated. With record_seconds = true every emitted line carries the
  /// cell's wall-clock seconds (see the header comment for the
  /// determinism trade-off). Throws std::runtime_error when the file
  /// cannot be opened.
  campaign_io(const std::string& path, bool resume = false,
              bool record_seconds = false);
  ~campaign_io();

  campaign_io(const campaign_io&) = delete;
  campaign_io& operator=(const campaign_io&) = delete;

  /// Parses one cells-file line into a record; false when the line is not
  /// a well-formed cell record (torn writes, foreign content). The read
  /// side of format_line, for callers that keep the raw bytes too (the
  /// campaign service's cell cache).
  static bool parse_line(const std::string& line, record& out);

  /// Parses every well-formed cell record of a cells file (without opening
  /// it for writing) — the read side the campaign-level BENCH emitter
  /// aggregates from. Unparseable lines are counted into *skipped when
  /// given. Throws std::runtime_error when the file cannot be read.
  static std::vector<record> read_records(const std::string& path,
                                          std::size_t* skipped = nullptr);

  /// The union of several cells files in canonical order. Each parallel
  /// (lines[i], records[i]) pair is one cell: the raw line bytes exactly as
  /// on file (no trailing newline) plus its parsed record.
  struct merged_cells {
    std::vector<std::string> lines;
    std::vector<record> records;
    /// (hash, seed) keys seen more than once with IDENTICAL bytes —
    /// dropped after the first occurrence (e.g. overlapping resume files).
    std::size_t duplicate_cells = 0;
    /// Lines that failed to parse (torn tails, foreign content) — skipped.
    std::size_t skipped_lines = 0;
    /// Input paths that could not be read at all (tolerate_missing mode
    /// only — without it an unreadable path throws). A missing shard file
    /// is a worker that never produced output; callers aggregating a
    /// sharded campaign must surface these, not emit a short result.
    std::vector<std::string> missing_files;
    /// Input paths that were readable but held zero well-formed records —
    /// a worker that opened its file and then died before its first cell.
    std::vector<std::string> empty_files;
  };

  /// Merges many cells files — shard outputs, resume fragments, repeated
  /// runs — into one canonical stream: records sorted by their "index"
  /// field (stable, so records without one keep file-then-line order),
  /// duplicate (hash, seed) keys deduplicated and counted when their
  /// deterministic fields agree — byte-identical lines, or lines differing
  /// only in the non-deterministic "seconds" field (overlapping
  /// record_seconds files re-ran the same cell) — and a duplicate key with
  /// DIFFERING deterministic fields a hard error: std::runtime_error
  /// naming the cell and both files (two shards that disagree about the
  /// same cell's metrics or config mean a corrupted or mismatched
  /// campaign, never something to merge silently). When every input was
  /// written by workers over the same full grid, the merged lines are
  /// byte-identical to the single-process campaign's file. Throws
  /// std::runtime_error when a file cannot be read, unless
  /// tolerate_missing — then unreadable paths are collected into
  /// merged_cells::missing_files instead (for supervisors that already
  /// know which shards died and verify full-grid coverage themselves).
  /// Readable files with zero records are recorded in empty_files either
  /// way.
  static merged_cells merge_files(const std::vector<std::string>& paths,
                                  bool tolerate_missing = false);

  /// The indexed record for (hash, seed), or null when the cell has not
  /// been recorded (or resume was off).
  const record* find(std::uint64_t hash, std::uint64_t seed) const;

  /// The exact line bytes emit() would append for `r` (including the
  /// trailing newline). Public so other producers of cell records (e.g.
  /// the campaign service's cache) are byte-identical by construction.
  static std::string format_line(const cell_result& r, bool record_seconds);

  /// Appends one cell line and flushes. Resumed cells are not re-emitted
  /// (their line is already on file).
  void emit(const cell_result& r);

  const std::string& path() const { return path_; }
  /// Records indexed at open (0 unless resume).
  std::size_t loaded() const { return records_.size(); }
  /// Lines that failed to parse at open (each re-runs its cell).
  std::size_t skipped_lines() const { return skipped_lines_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  bool record_seconds_ = false;
  std::vector<record> records_;
  std::size_t skipped_lines_ = 0;
};

}  // namespace leancon
