#include "obs/trace_json.h"

#include <cmath>
#include <ostream>
#include <set>
#include <sstream>

#include "util/json.h"

namespace leancon::obs {
namespace {

// Trace-process ids: real time vs simulated time (see header).
constexpr int kWallPid = 0;
constexpr int kSimPid = 1;
// Trial-scoped sim events (begin/end, frontier) share one sentinel lane
// instead of a per-process lane.
constexpr std::uint32_t kTrialLane = 9999;

struct arg_names_t {
  const char* a;
  const char* b;
  const char* c;
};

arg_names_t arg_names(event_kind k) {
  switch (k) {
    case event_kind::trial_begin: return {"n", "seed", nullptr};
    case event_kind::trial_end: return {"decided", "round", "total_ops"};
    case event_kind::round_advance: return {"pid", "round", nullptr};
    case event_kind::pref_switch: return {"pid", "switches", nullptr};
    case event_kind::halt: return {"pid", nullptr, nullptr};
    case event_kind::crash: return {"victim", "by", nullptr};
    case event_kind::decision: return {"pid", "value", "round"};
    case event_kind::msg_send:
    case event_kind::msg_deliver:
    case event_kind::msg_drop: return {"from", "to", "kind"};
    case event_kind::dispatch: return {"pid", "index", nullptr};
    case event_kind::preemption: return {"victim", "by", nullptr};
    case event_kind::cs_enter: return {"pid", "fast", nullptr};
    case event_kind::cs_exit: return {"pid", "entries", nullptr};
    case event_kind::frontier: return {"visited", "frontier", "depth"};
    case event_kind::explore_begin: return {"state_budget", "depth_budget", nullptr};
    case event_kind::explore_end: return {"visited", "violation", nullptr};
    case event_kind::span:
    case event_kind::mark: return {"a", "b", "c"};
  }
  return {"a", "b", "c"};
}

// Does this event belong on the simulated-time track?
bool on_sim_track(const event& e) {
  return std::isfinite(e.sim_time) && e.kind != event_kind::span &&
         e.kind != event_kind::mark;
}

// Thread lane within the simulated-time process.
std::uint32_t sim_lane(const event& e) {
  switch (e.kind) {
    case event_kind::msg_deliver:
      return static_cast<std::uint32_t>(e.b);  // receiver's lane
    case event_kind::trial_begin:
    case event_kind::trial_end:
    case event_kind::frontier:
    case event_kind::explore_begin:
    case event_kind::explore_end:
      return kTrialLane;
    default:
      return static_cast<std::uint32_t>(e.a);  // pid-like first payload
  }
}

void write_args(std::ostream& os, const event& e) {
  const arg_names_t names = arg_names(e.kind);
  os << "\"args\":{";
  bool first = true;
  auto field = [&](const char* name, std::uint64_t v) {
    if (name == nullptr) return;
    if (!first) os << ",";
    first = false;
    json::write_string(os, name);
    os << ":";
    json::write_uint(os, v);
  };
  field(names.a, e.a);
  field(names.b, e.b);
  field(names.c, e.c);
  os << "}";
}

void write_event(std::ostream& os, const event& e) {
  const std::string name(e.name != nullptr ? std::string_view(e.name)
                                           : kind_name(e.kind));
  os << "{\"name\":";
  json::write_string(os, name);
  if (e.kind == event_kind::span) {
    os << ",\"ph\":\"X\",\"pid\":" << kWallPid << ",\"tid\":" << e.tid
       << ",\"ts\":";
    json::write_number(os, static_cast<double>(e.ts_ns) / 1000.0);
    os << ",\"dur\":";
    json::write_number(os, static_cast<double>(e.dur_ns) / 1000.0);
    os << ",";
    write_args(os, e);
    os << "}";
    return;
  }
  const bool sim = on_sim_track(e);
  os << ",\"cat\":";
  json::write_string(os, std::string(kind_name(e.kind)));
  os << ",\"ph\":\"i\",\"s\":\"t\",\"pid\":" << (sim ? kSimPid : kWallPid)
     << ",\"tid\":" << (sim ? sim_lane(e) : e.tid) << ",\"ts\":";
  json::write_number(os, sim ? e.sim_time * 1e6
                             : static_cast<double>(e.ts_ns) / 1000.0);
  os << ",";
  write_args(os, e);
  os << "}";
}

void write_metadata(std::ostream& os, int pid, std::uint32_t tid,
                    const char* what, const std::string& name) {
  os << "{\"name\":\"" << what << "\",\"ph\":\"M\",\"pid\":" << pid;
  if (what[0] == 't') os << ",\"tid\":" << tid;
  os << ",\"args\":{\"name\":";
  json::write_string(os, name);
  os << "}}";
}

}  // namespace

void write_trace_json(
    std::ostream& os, const std::vector<event>& events,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  os << "{\"traceEvents\":[";
  bool first = true;
  auto sep = [&] {
    if (!first) os << ",";
    first = false;
    os << "\n";
  };

  sep();
  write_metadata(os, kWallPid, 0, "process_name", "wall clock");
  sep();
  write_metadata(os, kSimPid, 0, "process_name", "simulated time");

  // Name the simulated lanes that actually appear.
  std::set<std::uint32_t> lanes;
  std::uint64_t last_ts_ns = 0;
  for (const event& e : events) {
    if (on_sim_track(e)) lanes.insert(sim_lane(e));
    const std::uint64_t end = e.ts_ns + e.dur_ns;
    if (end > last_ts_ns) last_ts_ns = end;
  }
  for (std::uint32_t lane : lanes) {
    sep();
    write_metadata(os, kSimPid, lane, "thread_name",
                   lane == kTrialLane ? std::string("trial")
                                      : "p" + std::to_string(lane));
  }

  for (const event& e : events) {
    sep();
    write_event(os, e);
  }

  // Final counter values as Chrome counter tracks at the last timestamp.
  for (const auto& [name, value] : counters) {
    sep();
    os << "{\"name\":";
    json::write_string(os, name);
    os << ",\"ph\":\"C\",\"pid\":" << kWallPid << ",\"tid\":0,\"ts\":";
    json::write_number(os, static_cast<double>(last_ts_ns) / 1000.0);
    os << ",\"args\":{\"value\":";
    json::write_uint(os, value);
    os << "}}";
  }

  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

std::string trace_json(
    const std::vector<event>& events,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters) {
  std::ostringstream os;
  write_trace_json(os, events, counters);
  return os.str();
}

}  // namespace leancon::obs
