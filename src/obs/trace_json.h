// Chrome trace-event / Perfetto JSON export for drained obs events.
//
// Layout: two trace "processes". pid 0 ("wall clock") carries spans,
// marks, and counter tracks on real (steady-clock) time in microseconds;
// pid 1 ("simulated time") carries per-trial events with ts = simulated
// time * 1e6 and one thread lane per simulated process, so Perfetto shows
// the schedule the simulator actually produced. Load the file at
// https://ui.perfetto.dev or chrome://tracing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "obs/obs.h"

namespace leancon::obs {

/// Writes the events (and a final snapshot of the counters, as Chrome "C"
/// counter events) as a complete Chrome trace-event JSON document.
void write_trace_json(
    std::ostream& os, const std::vector<event>& events,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters);

/// As write_trace_json, into a string.
std::string trace_json(
    const std::vector<event>& events,
    const std::vector<std::pair<std::string, std::uint64_t>>& counters);

}  // namespace leancon::obs
