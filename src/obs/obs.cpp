#include "obs/obs.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>

namespace leancon::obs {
namespace {

using steady = std::chrono::steady_clock;

steady::time_point trace_epoch() {
  static const steady::time_point epoch = steady::now();
  return epoch;
}

// --- per-thread rings -------------------------------------------------------

struct ring {
  explicit ring(std::size_t capacity, std::uint32_t tid)
      : slots(capacity), mask(capacity - 1), tid(tid) {}

  std::vector<event> slots;
  std::size_t mask;
  std::uint32_t tid;
  // Total events ever appended (writer-owned; release-published so drain
  // sees completed slots). Oldest retained index is max(consumed, head-cap).
  std::atomic<std::uint64_t> head{0};
  std::uint64_t consumed = 0;  // drain() bookkeeping, guarded by sink mutex
};

struct sink_state {
  std::mutex mutex;  // ring registry + capacity + drain
  std::deque<std::unique_ptr<ring>> rings;
  std::size_t capacity = std::size_t{1} << 16;
};

sink_state& sink() {
  static sink_state* s = new sink_state;  // leaked: threads may outlive exit
  return *s;
}

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

ring* this_thread_ring() {
  thread_local ring* r = nullptr;
  if (r == nullptr) {
    auto& s = sink();
    std::lock_guard<std::mutex> lock(s.mutex);
    s.rings.push_back(std::make_unique<ring>(
        s.capacity, static_cast<std::uint32_t>(s.rings.size())));
    r = s.rings.back().get();
  }
  return r;
}

void append(ring& r, event& e) {
  const std::uint64_t head = r.head.load(std::memory_order_relaxed);
  e.tid = r.tid;
  r.slots[head & r.mask] = e;
  r.head.store(head + 1, std::memory_order_release);
}

// --- status -----------------------------------------------------------------

struct status_state {
  std::mutex mutex;
  std::string text;
  std::atomic<int> consumers{0};
};

status_state& status_store() {
  static status_state* s = new status_state;
  return *s;
}

// --- counters ---------------------------------------------------------------

struct counter_slot {
  std::string name;
  std::atomic<std::uint64_t> value{0};
};

struct counter_state {
  std::mutex mutex;
  std::deque<counter_slot> slots;  // deque: stable addresses on growth
};

counter_state& counters() {
  static counter_state* s = new counter_state;
  return *s;
}

// Honour LEANCON_TRACE=1 before main() so any binary can be traced without
// growing its own flag.
const bool g_env_init = [] {
  const char* v = std::getenv("LEANCON_TRACE");
  if (v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0')) {
    detail::g_enabled.store(true, std::memory_order_relaxed);
  }
  return true;
}();

}  // namespace

namespace detail {
std::atomic<bool> g_enabled{false};

void add_status_consumer(int delta) {
  status_store().consumers.fetch_add(delta, std::memory_order_relaxed);
}
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(steady::now() -
                                                           trace_epoch())
          .count());
}

void record(event e) {
  e.ts_ns = now_ns();
  append(*this_thread_ring(), e);
}

void span::record_at(event e) {
  append(*this_thread_ring(), e);
}

drained_events drain() {
  drained_events out;
  auto& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  for (auto& rp : s.rings) {
    ring& r = *rp;
    const std::uint64_t head = r.head.load(std::memory_order_acquire);
    const std::uint64_t capacity = r.mask + 1;
    std::uint64_t first = r.consumed;
    if (head - first > capacity) {
      out.dropped += (head - first) - capacity;
      first = head - capacity;
    }
    for (std::uint64_t i = first; i < head; ++i) {
      out.events.push_back(r.slots[i & r.mask]);
    }
    r.consumed = head;
  }
  std::stable_sort(out.events.begin(), out.events.end(),
                   [](const event& x, const event& y) {
                     return x.ts_ns < y.ts_ns;
                   });
  return out;
}

void set_ring_capacity(std::size_t events) {
  auto& s = sink();
  std::lock_guard<std::mutex> lock(s.mutex);
  s.capacity = round_up_pow2(events < 2 ? 2 : events);
}

std::atomic<std::uint64_t>* counter(std::string_view name) {
  auto& c = counters();
  std::lock_guard<std::mutex> lock(c.mutex);
  for (auto& slot : c.slots) {
    if (slot.name == name) return &slot.value;
  }
  c.slots.emplace_back();
  c.slots.back().name.assign(name);
  return &c.slots.back().value;
}

std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot() {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  auto& c = counters();
  {
    std::lock_guard<std::mutex> lock(c.mutex);
    out.reserve(c.slots.size());
    for (auto& slot : c.slots) {
      out.emplace_back(slot.name,
                       slot.value.load(std::memory_order_relaxed));
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool status_active() {
  return status_store().consumers.load(std::memory_order_relaxed) > 0;
}

void set_status(std::string s) {
  auto& st = status_store();
  if (st.consumers.load(std::memory_order_relaxed) <= 0) return;
  std::lock_guard<std::mutex> lock(st.mutex);
  st.text = std::move(s);
}

std::string status() {
  auto& st = status_store();
  std::lock_guard<std::mutex> lock(st.mutex);
  return st.text;
}

std::string_view kind_name(event_kind k) {
  switch (k) {
    case event_kind::trial_begin: return "trial_begin";
    case event_kind::trial_end: return "trial_end";
    case event_kind::round_advance: return "round_advance";
    case event_kind::pref_switch: return "pref_switch";
    case event_kind::halt: return "halt";
    case event_kind::crash: return "crash";
    case event_kind::decision: return "decision";
    case event_kind::msg_send: return "msg_send";
    case event_kind::msg_deliver: return "msg_deliver";
    case event_kind::msg_drop: return "msg_drop";
    case event_kind::dispatch: return "dispatch";
    case event_kind::preemption: return "preemption";
    case event_kind::cs_enter: return "cs_enter";
    case event_kind::cs_exit: return "cs_exit";
    case event_kind::frontier: return "frontier";
    case event_kind::explore_begin: return "explore_begin";
    case event_kind::explore_end: return "explore_end";
    case event_kind::span: return "span";
    case event_kind::mark: return "mark";
  }
  return "unknown";
}

}  // namespace leancon::obs
