// Observability core: a process-wide tracing flag, typed trial/engine
// events collected in per-thread ring buffers, RAII span timers, and a
// registry of always-on counters.
//
// Design contract (PR 6 hot path depends on it):
//   - Tracing is OFF by default. Every event-recording site is guarded by a
//     branch-predictable `if (obs::enabled())` (or a bool cached once per
//     trial), so the disabled cost is one relaxed atomic load per guard and
//     all committed goldens stay byte-identical.
//   - Counters are always on but are only bumped at coarse boundaries
//     (per chunk / cell / batch / merge), never per simulated op.
//   - Event append is lock-free: each thread owns a private ring buffer
//     (registry mutex taken only on a thread's first event). Rings have
//     bounded memory; when one wraps, the oldest events are overwritten and
//     counted as dropped. `drain()` is meant to run while recording threads
//     are quiescent (after a pool batch / at end of a trial); it is not a
//     concurrent consumer.
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace leancon::obs {

// ---------------------------------------------------------------------------
// Runtime flag

namespace detail {
extern std::atomic<bool> g_enabled;
}  // namespace detail

/// True when event tracing is on. Relaxed load; safe to call from any
/// thread at any frequency.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Flips event tracing. Also honoured at process start: setting the
/// LEANCON_TRACE environment variable to anything but "0" enables tracing
/// before main() runs (useful for binaries without their own flag).
void set_enabled(bool on);

// ---------------------------------------------------------------------------
// Events

/// Typed events. The payload fields a/b/c are interpreted per kind (see
/// arg_names in trace_json.cpp and the table in kind_name's definition).
enum class event_kind : std::uint8_t {
  trial_begin,    ///< a=n, b=seed
  trial_end,      ///< a=decided count, b=max round, c=total ops
  round_advance,  ///< a=pid, b=new round
  pref_switch,    ///< a=pid, b=cumulative switches
  halt,           ///< a=pid (random halt drawn by the simulator)
  crash,          ///< a=victim, b=killer pid (adversary action)
  decision,       ///< a=pid, b=value, c=round
  msg_send,       ///< a=from, b=to, c=message kind
  msg_deliver,    ///< a=from, b=to, c=message kind
  msg_drop,       ///< a=from, b=to, c=message kind
  dispatch,       ///< a=pid, b=quantum/dispatch index
  preemption,     ///< a=victim, b=preempting pid
  cs_enter,       ///< a=pid, b=1 if via fast path
  cs_exit,        ///< a=pid, b=completed entries
  frontier,       ///< a=states visited, b=frontier size, c=depth
  explore_begin,  ///< a=state budget, b=depth budget
  explore_end,    ///< a=states visited, b=1 if violation found
  span,           ///< completed span: name + dur_ns
  mark,           ///< free-form instant: name + payloads
};

/// Stable lowercase name for a kind ("round_advance", ...).
std::string_view kind_name(event_kind k);

/// One recorded event. POD; `name` must point at static storage (string
/// literals) — rings outlive any dynamic string a caller could pass.
struct event {
  std::uint64_t ts_ns = 0;   ///< steady-clock ns since process trace epoch
  std::uint64_t dur_ns = 0;  ///< span kind only
  const char* name = nullptr;  ///< span/mark label; null => kind_name(kind)
  double sim_time = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
  std::uint32_t tid = 0;  ///< recording thread (small dense index)
  event_kind kind = event_kind::mark;
};

/// Steady-clock nanoseconds since the process trace epoch (first use).
std::uint64_t now_ns();

/// Appends one event to the calling thread's ring. ts_ns and tid are filled
/// in here. Callers are expected to guard with enabled() (or a cached copy);
/// recording while disabled is harmless but wasted work.
void record(event e);

/// Convenience: record a typed instant carrying a simulated timestamp.
inline void emit(event_kind k, double sim_time, std::uint64_t a = 0,
                 std::uint64_t b = 0, std::uint64_t c = 0) {
  event e;
  e.kind = k;
  e.sim_time = sim_time;
  e.a = a;
  e.b = b;
  e.c = c;
  record(e);
}

/// Convenience: record a named instant on the wall-clock track.
inline void mark(const char* name, std::uint64_t a = 0, std::uint64_t b = 0,
                 std::uint64_t c = 0) {
  event e;
  e.kind = event_kind::mark;
  e.name = name;
  e.a = a;
  e.b = b;
  e.c = c;
  record(e);
}

/// Result of drain(): all buffered events merged across threads in
/// timestamp order, plus how many were lost to ring wrap.
struct drained_events {
  std::vector<event> events;
  std::uint64_t dropped = 0;
};

/// Collects and clears every thread's buffered events. Call while recording
/// threads are quiescent (concurrent recorders may race with the copy-out).
drained_events drain();

/// Sets the per-thread ring capacity (rounded up to a power of two) for
/// rings created *after* this call; existing rings keep their size. Call
/// early — e.g. explain_trial raises it before the trial starts.
void set_ring_capacity(std::size_t events);

// ---------------------------------------------------------------------------
// Counters (always on; coarse-grained)

/// Returns a stable pointer to the named counter cell, registering it on
/// first use. Typical call site:
///     static auto* c = obs::counter("pool.batches");
///     c->fetch_add(1, std::memory_order_relaxed);
std::atomic<std::uint64_t>* counter(std::string_view name);

/// Snapshot of every registered counter, sorted by name.
std::vector<std::pair<std::string, std::uint64_t>> counter_snapshot();

// ---------------------------------------------------------------------------
// Spans

/// RAII wall-clock timer. Emits one `span` event (with dur_ns) on
/// destruction when tracing was enabled at construction. `name` must be a
/// string literal / static storage.
class span {
 public:
  explicit span(const char* name)
      : name_(name), armed_(enabled()), start_(armed_ ? now_ns() : 0) {}
  ~span() {
    if (!armed_) return;
    event e;
    e.kind = event_kind::span;
    e.name = name_;
    e.ts_ns = start_;
    e.dur_ns = now_ns() - start_;
    record_at(e);
  }
  span(const span&) = delete;
  span& operator=(const span&) = delete;

 private:
  // Like record() but keeps the caller-provided ts_ns (the span start).
  static void record_at(event e);

  const char* name_;
  bool armed_;
  std::uint64_t start_;
};

// ---------------------------------------------------------------------------
// Status line (what is this process working on right now?)

/// Cheap no-op unless a consumer (the heartbeat emitter) is active, so the
/// campaign engine can call it per chunk unconditionally.
void set_status(std::string s);

/// True while a status consumer is registered. Callers whose status string
/// is costly to build should check this first.
bool status_active();

/// Last status set (empty if none). Used by the heartbeat emitter.
std::string status();

namespace detail {
/// Heartbeat registration: set_status only stores while >0 consumers exist.
void add_status_consumer(int delta);
}  // namespace detail

}  // namespace leancon::obs
