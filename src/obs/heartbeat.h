// Periodic campaign progress heartbeat: one JSON object per line appended
// to a file, consumable by a supervisor (fleet/supervisor.h tails these
// files as its liveness/progress protocol) or a human with tail -f.
//
// Line schema (all fields always present; pinned by tools/trace_validate.py):
//   {"uptime_s": <double>, "cells_done": <u64>, "cells_total": <u64>,
//    "trials_done": <u64>, "trials_total": <u64>,
//    "trials_per_sec": <double|null>, "eta_s": <double|null>,
//    "current_cell": <string>, "rss_kb": <u64>,
//    "shard": "<i/k>", "pid": <u64>, "argv_hash": "<0x hex>"}
//
// trials_per_sec and eta_s are null exactly when undefined — no progress
// signal yet, or a stalled rate with work remaining. JSON has no inf/nan
// literals, so emitting null (instead of a bare token json parsers choke
// on) is what keeps every line machine-parseable; trace_validate.py
// rejects non-finite number tokens outright.
//
// The identity triple (shard, pid, argv_hash) lets a supervisor attribute a
// heartbeat file to the worker it spawned without trusting file names: the
// shard is the worker's "i/k" assignment (set_identity; "0/1" for unsharded
// runs), pid is the emitting process, and argv_hash is argv_fingerprint()
// over the worker's exact command line — a reused or mixed-up file fails
// the pid/argv check instead of silently feeding another shard's progress.
//
// Progress is read from the always-on obs counters the campaign engine
// bumps ("campaign.cells_done", "campaign.trials_done") relative to their
// values at construction, so one emitter reports exactly the campaign(s)
// run during its lifetime. Durations use std::chrono::steady_clock.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>

namespace leancon::obs {

class heartbeat {
 public:
  /// Opens `path` for append and starts the emitter thread. Throws
  /// std::runtime_error if the file cannot be opened. `interval_s` is the
  /// emission period (clamped to >= 10ms).
  explicit heartbeat(const std::string& path, double interval_s = 1.0);

  /// Emits one final line and stops the thread.
  ~heartbeat();

  /// Totals the progress fractions and ETA are computed against.
  void set_totals(std::uint64_t cells, std::uint64_t trials);

  /// The identity fields of every emitted line: the worker's shard
  /// assignment ("i/k"; defaults to "0/1" for unsharded runs) and the
  /// fingerprint of its command line (argv_fingerprint; defaults to "0x0").
  /// The pid field is always the emitting process's own pid.
  void set_identity(std::string shard, std::string argv_hash);

  /// Emits one line immediately (serialized against the periodic emitter).
  /// The worker's SIGTERM path calls this so the supervisor sees a final
  /// progress line even when the process exits without running destructors.
  void flush_now();

  heartbeat(const heartbeat&) = delete;
  heartbeat& operator=(const heartbeat&) = delete;

 private:
  void run();
  void emit_line();

  std::ofstream out_;
  double interval_s_;
  std::uint64_t base_cells_ = 0;
  std::uint64_t base_trials_ = 0;
  std::uint64_t cells_total_ = 0;
  std::uint64_t trials_total_ = 0;
  std::uint64_t start_ns_ = 0;
  std::string shard_ = "0/1";
  std::string argv_hash_ = "0x0";

  std::mutex mutex_;
  // Serializes whole-line emission (periodic thread vs flush_now callers)
  // so lines never interleave; distinct from mutex_, which emit_line takes
  // internally for the totals/identity snapshot.
  std::mutex emit_mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Resident set size in kB from /proc/self/status (0 where unavailable).
std::uint64_t rss_kb();

/// The calling process's pid (0 where unavailable).
std::uint64_t own_pid();

/// Stable "0x..." FNV-1a fingerprint of a command line, for the heartbeat
/// argv_hash field. The supervisor computes the same fingerprint over the
/// argv it spawned and rejects heartbeat lines that do not match.
std::string argv_fingerprint(const std::vector<std::string>& argv);
std::string argv_fingerprint(int argc, const char* const* argv);

}  // namespace leancon::obs
