// Periodic campaign progress heartbeat: one JSON object per line appended
// to a file, consumable by a supervisor (the ROADMAP's campaign_launch)
// or a human with tail -f.
//
// Line schema (all fields always present):
//   {"uptime_s": <double>, "cells_done": <u64>, "cells_total": <u64>,
//    "trials_done": <u64>, "trials_total": <u64>,
//    "trials_per_sec": <double>, "eta_s": <double>,
//    "current_cell": <string>, "rss_kb": <u64>}
//
// Progress is read from the always-on obs counters the campaign engine
// bumps ("campaign.cells_done", "campaign.trials_done") relative to their
// values at construction, so one emitter reports exactly the campaign(s)
// run during its lifetime. Durations use std::chrono::steady_clock.
#pragma once

#include <cstdint>
#include <string>

#include <condition_variable>
#include <fstream>
#include <mutex>
#include <thread>

namespace leancon::obs {

class heartbeat {
 public:
  /// Opens `path` for append and starts the emitter thread. Throws
  /// std::runtime_error if the file cannot be opened. `interval_s` is the
  /// emission period (clamped to >= 10ms).
  explicit heartbeat(const std::string& path, double interval_s = 1.0);

  /// Emits one final line and stops the thread.
  ~heartbeat();

  /// Totals the progress fractions and ETA are computed against.
  void set_totals(std::uint64_t cells, std::uint64_t trials);

  heartbeat(const heartbeat&) = delete;
  heartbeat& operator=(const heartbeat&) = delete;

 private:
  void run();
  void emit_line();

  std::ofstream out_;
  double interval_s_;
  std::uint64_t base_cells_ = 0;
  std::uint64_t base_trials_ = 0;
  std::uint64_t cells_total_ = 0;
  std::uint64_t trials_total_ = 0;
  std::uint64_t start_ns_ = 0;

  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread thread_;
};

/// Resident set size in kB from /proc/self/status (0 where unavailable).
std::uint64_t rss_kb();

}  // namespace leancon::obs
