#include "obs/heartbeat.h"

#include <chrono>
#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <unistd.h>
#endif

#include "obs/obs.h"
#include "util/json.h"

namespace leancon::obs {
namespace {

std::uint64_t counter_value(const char* name) {
  return obs::counter(name)->load(std::memory_order_relaxed);
}

}  // namespace

std::uint64_t rss_kb() {
#if defined(__linux__)
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  std::uint64_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::strncmp(line, "VmRSS:", 6) == 0) {
      kb = std::strtoull(line + 6, nullptr, 10);
      break;
    }
  }
  std::fclose(f);
  return kb;
#else
  return 0;
#endif
}

std::uint64_t own_pid() {
#if defined(__unix__) || defined(__APPLE__)
  return static_cast<std::uint64_t>(::getpid());
#else
  return 0;
#endif
}

std::string argv_fingerprint(const std::vector<std::string>& argv) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const auto& arg : argv) {
    for (const unsigned char c : arg) {
      h ^= c;
      h *= 0x100000001b3ULL;
    }
    // Argument separator, so {"ab"} and {"a", "b"} hash differently.
    h ^= 0xff;
    h *= 0x100000001b3ULL;
  }
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, h);
  return buf;
}

std::string argv_fingerprint(int argc, const char* const* argv) {
  std::vector<std::string> args;
  args.reserve(static_cast<std::size_t>(argc));
  for (int i = 0; i < argc; ++i) args.emplace_back(argv[i]);
  return argv_fingerprint(args);
}

heartbeat::heartbeat(const std::string& path, double interval_s)
    : out_(path, std::ios::app),
      interval_s_(interval_s < 0.01 ? 0.01 : interval_s) {
  if (!out_) {
    throw std::runtime_error("heartbeat: cannot open " + path);
  }
  base_cells_ = counter_value("campaign.cells_done");
  base_trials_ = counter_value("campaign.trials_done");
  start_ns_ = obs::now_ns();
  detail::add_status_consumer(+1);
  thread_ = std::thread([this] { run(); });
}

heartbeat::~heartbeat() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  thread_.join();
  emit_line();  // final line with the finished totals
  detail::add_status_consumer(-1);
}

void heartbeat::set_totals(std::uint64_t cells, std::uint64_t trials) {
  std::lock_guard<std::mutex> lock(mutex_);
  cells_total_ = cells;
  trials_total_ = trials;
}

void heartbeat::set_identity(std::string shard, std::string argv_hash) {
  std::lock_guard<std::mutex> lock(mutex_);
  shard_ = std::move(shard);
  argv_hash_ = std::move(argv_hash);
}

void heartbeat::flush_now() { emit_line(); }

void heartbeat::run() {
  emit_line();  // immediate first line so short runs still report
  std::unique_lock<std::mutex> lock(mutex_);
  const auto interval = std::chrono::duration<double>(interval_s_);
  while (!cv_.wait_for(lock, interval, [this] { return stop_; })) {
    lock.unlock();
    emit_line();
    lock.lock();
  }
}

void heartbeat::emit_line() {
  const double uptime_s =
      static_cast<double>(obs::now_ns() - start_ns_) / 1e9;
  const std::uint64_t cells_done =
      counter_value("campaign.cells_done") - base_cells_;
  const std::uint64_t trials_done =
      counter_value("campaign.trials_done") - base_trials_;
  std::uint64_t cells_total = 0;
  std::uint64_t trials_total = 0;
  std::string shard;
  std::string argv_hash;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    cells_total = cells_total_;
    trials_total = trials_total_;
    shard = shard_;
    argv_hash = argv_hash_;
  }
  // Unknown-rate lines (the immediate first line, or a zero-progress
  // stall) carry NaN, which json::write_number renders as null — never
  // `inf`/`nan` tokens, which are not JSON and would poison downstream
  // parsers (tools/trace_validate.py rejects them).
  const double rate = uptime_s > 0.0
                          ? static_cast<double>(trials_done) / uptime_s
                          : std::numeric_limits<double>::quiet_NaN();
  const std::uint64_t remaining =
      trials_total > trials_done ? trials_total - trials_done : 0;
  const double eta_s =
      remaining == 0
          ? 0.0
          : (std::isfinite(rate) && rate > 0.0
                 ? static_cast<double>(remaining) / rate
                 : std::numeric_limits<double>::quiet_NaN());

  // Build the whole line first and append it with one buffered write, so a
  // process killed mid-emission tears at most one unflushed line (the
  // supervisor's tailer and tools/trace_validate.py never see a torn
  // prefix followed by a healthy suffix fused together).
  std::ostringstream os;
  os << "{\"uptime_s\":";
  json::write_number(os, uptime_s);
  os << ",\"cells_done\":";
  json::write_uint(os, cells_done);
  os << ",\"cells_total\":";
  json::write_uint(os, cells_total);
  os << ",\"trials_done\":";
  json::write_uint(os, trials_done);
  os << ",\"trials_total\":";
  json::write_uint(os, trials_total);
  os << ",\"trials_per_sec\":";
  json::write_number(os, rate);
  os << ",\"eta_s\":";
  json::write_number(os, eta_s);
  os << ",\"current_cell\":";
  json::write_string(os, obs::status());
  os << ",\"rss_kb\":";
  json::write_uint(os, rss_kb());
  os << ",\"shard\":";
  json::write_string(os, shard);
  os << ",\"pid\":";
  json::write_uint(os, own_pid());
  os << ",\"argv_hash\":";
  json::write_string(os, argv_hash);
  os << "}\n";

  const std::lock_guard<std::mutex> emit_lock(emit_mutex_);
  out_ << os.str();
  out_.flush();
}

}  // namespace leancon::obs
