// Adopt-commit object from atomic registers.
//
// An adopt-commit object is a one-shot agreement primitive with the
// guarantees (for inputs v in {0, 1}):
//   * Coherence:   if any process returns (commit, v), every process returns
//                  (commit, v) or (adopt, v).
//   * Convergence: if all inputs equal v, every process returns (commit, v).
//   * Validity:    every returned value is some process's input.
//
// Construction (doorway + proposal, 3 registers, <= 4 operations):
//   1. write 1 to door[v]
//   2. read door[1-v]
//      clean doorway (0):
//        3. write v to proposal
//        4. re-read door[1-v]; if still 0 -> (commit, v), else (adopt, v)
//      conflict (1):
//        3. read proposal; if set -> (adopt, proposal), else (adopt, v)
//
// Safety sketch (exhaustively model-checked in tests/test_model_check.cpp):
// if P commits v, P's step-4 read saw door[1-v] = 0, so every (1-v)-input
// process enters its doorway after that read, observes door[v] = 1, takes the
// conflict branch, and reads the proposal after P wrote v into it. No process
// with input 1-v can reach the proposal write (its step-2 read would have to
// have seen door[v] = 0, which orders it before P's commit re-read and makes
// that re-read return 1). Hence all other returns carry v.
//
// This object is the deterministic safety half of the backup protocol
// (Section 8 of the paper); the conciliator supplies probabilistic
// convergence.
#pragma once

#include <cstdint>

#include "core/machine.h"

namespace leancon {

/// One process's execution of the round-r adopt-commit object.
/// Not a consensus_machine (its result is a verdict, not a decision), but it
/// follows the same next_op()/apply() driving contract.
class adopt_commit_machine {
 public:
  enum class verdict : std::uint8_t { commit, adopt };

  /// @param round  instance index (selects the register triple)
  /// @param input  proposed bit
  adopt_commit_machine(std::uint64_t round, int input);

  operation next_op() const;
  void apply(std::uint64_t result);
  bool done() const { return done_; }

  verdict outcome() const;  ///< precondition: done()
  int value() const;        ///< precondition: done()

  std::uint64_t steps() const { return steps_; }

  /// Internal phase index, exposed so model checkers can key the complete
  /// machine state (step counts alone do not determine the branch taken).
  int phase_index() const { return static_cast<int>(phase_); }

 private:
  enum class phase : std::uint8_t {
    write_own_door,
    read_other_door,
    write_proposal,
    reread_other_door,
    read_proposal,
    finished
  };

  static space door_space(int bit) {
    return bit == 0 ? space::ac_door0 : space::ac_door1;
  }

  std::uint64_t round_;
  int input_;
  phase phase_ = phase::write_own_door;
  bool done_ = false;
  verdict verdict_ = verdict::adopt;
  int value_ = -1;
  std::uint64_t steps_ = 0;
};

}  // namespace leancon
