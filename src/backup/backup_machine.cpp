#include "backup/backup_machine.h"

#include <stdexcept>

namespace leancon {

backup_machine::backup_machine(int input, const backup_params& params, rng gen)
    : params_(params), gen_(gen), coin_(gen_.fork()), value_(input) {
  if (input != 0 && input != 1) {
    throw std::invalid_argument("backup_machine: input must be 0 or 1");
  }
  start_round();
}

void backup_machine::start_round() {
  if (round_ > params_.max_rounds) {
    stuck_ = true;
    ac_.reset();
    conc_.reset();
    return;
  }
  ac_.emplace(round_, value_);
  conc_.reset();
}

operation backup_machine::next_op() const {
  if (decided_ || stuck_) {
    throw std::logic_error("backup_machine: next_op after done/stuck");
  }
  if (ac_) return ac_->next_op();
  return conc_->next_op();
}

void backup_machine::apply(std::uint64_t result) {
  if (decided_ || stuck_) {
    throw std::logic_error("backup_machine: apply after done/stuck");
  }
  ++steps_;
  if (ac_) {
    ac_->apply(result);
    if (ac_->done()) {
      value_ = ac_->value();
      if (ac_->outcome() == adopt_commit_machine::verdict::commit) {
        decided_ = true;
        decision_ = value_;
        ac_.reset();
      } else {
        conc_.emplace(round_, value_, params_.write_prob, &coin_);
        ac_.reset();
      }
    }
    return;
  }
  conc_->apply(result);
  if (conc_->done()) {
    value_ = conc_->value();
    ++round_;
    start_round();
  }
}

int backup_machine::decision() const {
  if (!decided_) throw std::logic_error("backup_machine: decision before done");
  return decision_;
}

}  // namespace leancon
