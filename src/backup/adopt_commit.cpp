#include "backup/adopt_commit.h"

#include <stdexcept>

namespace leancon {

adopt_commit_machine::adopt_commit_machine(std::uint64_t round, int input)
    : round_(round), input_(input) {
  if (input != 0 && input != 1) {
    throw std::invalid_argument("adopt_commit: input must be 0 or 1");
  }
}

operation adopt_commit_machine::next_op() const {
  switch (phase_) {
    case phase::write_own_door:
      return operation::write({door_space(input_), round_}, 1);
    case phase::read_other_door:
    case phase::reread_other_door:
      return operation::read({door_space(1 - input_), round_});
    case phase::write_proposal:
      return operation::write({space::ac_proposal, round_},
                              encode_proposal(input_));
    case phase::read_proposal:
      return operation::read({space::ac_proposal, round_});
    case phase::finished:
      break;
  }
  throw std::logic_error("adopt_commit: next_op after done");
}

void adopt_commit_machine::apply(std::uint64_t result) {
  if (done_) throw std::logic_error("adopt_commit: apply after done");
  ++steps_;
  switch (phase_) {
    case phase::write_own_door:
      phase_ = phase::read_other_door;
      break;
    case phase::read_other_door:
      phase_ = result == 0 ? phase::write_proposal : phase::read_proposal;
      break;
    case phase::write_proposal:
      phase_ = phase::reread_other_door;
      break;
    case phase::reread_other_door:
      verdict_ = result == 0 ? verdict::commit : verdict::adopt;
      value_ = input_;
      done_ = true;
      phase_ = phase::finished;
      break;
    case phase::read_proposal:
      verdict_ = verdict::adopt;
      value_ = proposal_empty(result) ? input_ : decode_proposal(result);
      done_ = true;
      phase_ = phase::finished;
      break;
    case phase::finished:
      break;
  }
}

adopt_commit_machine::verdict adopt_commit_machine::outcome() const {
  if (!done_) throw std::logic_error("adopt_commit: outcome before done");
  return verdict_;
}

int adopt_commit_machine::value() const {
  if (!done_) throw std::logic_error("adopt_commit: value before done");
  return value_;
}

}  // namespace leancon
