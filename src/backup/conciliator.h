// Conciliator (probabilistic agreement stage) in the style of
// Chor-Israeli-Li: a "slow write" race on a single multi-writer register.
//
// Each process repeatedly reads the round's register; if it is still empty
// the process writes its own value with small probability p (nominally
// 1/(2n)) per step, otherwise it keeps polling. A process returns the first
// non-empty value it reads (or its own value immediately after writing).
//
// Properties:
//   * Validity / unanimity preservation: only input values are ever written,
//     so if all participants carry v, every return is v. (Deterministic.)
//   * Probabilistic agreement: with probability Omega(1) exactly one process
//     writes before any other process polls again, so all processes return
//     the same value. Guaranteed against oblivious schedulers, which the
//     noisy-scheduling model's adversary is (the schedule is fixed before
//     the noise and local coins are drawn).
//   * Expected O(n) steps per process for p = 1/(2n).
//
// The local coin flips here are the only randomness in the whole combined
// protocol, and they are reached only when lean-consensus has already failed
// to terminate within r_max rounds (probability O(n^-c), Theorem 15).
#pragma once

#include <cstdint>

#include "core/machine.h"
#include "util/rng.h"

namespace leancon {

/// Source of the conciliator's local coin flips. Abstracted so that tests
/// and the exhaustive model checker can drive the coin deterministically or
/// explore BOTH outcomes at every flip; production code uses rng_coin.
class coin_source {
 public:
  virtual ~coin_source() = default;
  /// One Bernoulli(probability) trial.
  virtual bool flip(double probability) = 0;
};

/// Production coin: an owned PRNG stream.
class rng_coin final : public coin_source {
 public:
  explicit rng_coin(rng gen) : gen_(gen) {}
  bool flip(double probability) override { return gen_.bernoulli(probability); }

 private:
  rng gen_;
};

/// One process's execution of the round-r conciliator.
class conciliator_machine {
 public:
  /// @param round        instance index (selects the race register)
  /// @param input        the value carried into this round
  /// @param write_prob   per-step write probability (1/(2n) nominal)
  /// @param coin         local coin source (owned by the caller)
  conciliator_machine(std::uint64_t round, int input, double write_prob,
                      coin_source* coin);

  operation next_op() const;
  void apply(std::uint64_t result);
  bool done() const { return done_; }

  int value() const;  ///< the conciliated value; precondition: done()

  std::uint64_t steps() const { return steps_; }

  /// Re-points the coin source after the machine was copied (model checking
  /// copies whole system states; the copy must not flip the original's
  /// coin). Not needed in production code.
  void rebind_coin(coin_source* coin) { coin_ = coin; }

  /// Internal phase index, exposed for model-checker state keys.
  int phase_index() const { return static_cast<int>(phase_); }

 private:
  enum class phase : std::uint8_t { read_register, write_register, finished };

  std::uint64_t round_;
  int input_;
  double write_prob_;
  coin_source* coin_;
  phase phase_ = phase::read_register;
  bool done_ = false;
  int value_ = -1;
  std::uint64_t steps_ = 0;
};

}  // namespace leancon
