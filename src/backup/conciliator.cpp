#include "backup/conciliator.h"

#include <stdexcept>

namespace leancon {

conciliator_machine::conciliator_machine(std::uint64_t round, int input,
                                         double write_prob, coin_source* coin)
    : round_(round), input_(input), write_prob_(write_prob), coin_(coin) {
  if (input != 0 && input != 1) {
    throw std::invalid_argument("conciliator: input must be 0 or 1");
  }
  if (!(write_prob > 0.0) || write_prob > 1.0) {
    throw std::invalid_argument("conciliator: write_prob must be in (0, 1]");
  }
  if (coin == nullptr) {
    throw std::invalid_argument("conciliator: null coin source");
  }
}

operation conciliator_machine::next_op() const {
  switch (phase_) {
    case phase::read_register:
      return operation::read({space::conc_value, round_});
    case phase::write_register:
      return operation::write({space::conc_value, round_},
                              encode_proposal(input_));
    case phase::finished:
      break;
  }
  throw std::logic_error("conciliator: next_op after done");
}

void conciliator_machine::apply(std::uint64_t result) {
  if (done_) throw std::logic_error("conciliator: apply after done");
  ++steps_;
  switch (phase_) {
    case phase::read_register:
      if (!proposal_empty(result)) {
        value_ = decode_proposal(result);
        done_ = true;
        phase_ = phase::finished;
      } else if (coin_->flip(write_prob_)) {
        phase_ = phase::write_register;
      }
      // else: poll again (phase stays read_register)
      break;
    case phase::write_register:
      value_ = input_;
      done_ = true;
      phase_ = phase::finished;
      break;
    case phase::finished:
      break;
  }
}

int conciliator_machine::value() const {
  if (!done_) throw std::logic_error("conciliator: value before done");
  return value_;
}

}  // namespace leancon
