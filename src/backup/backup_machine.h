// Backup consensus protocol (paper Section 8).
//
// The paper cuts lean-consensus off after r_max = O(log^2 n) rounds and runs
// "a more expensive, bounded-memory consensus algorithm satisfying the
// validity property" (it cites the O(n^4) protocol of Aspnes '93). Theorem 15
// only relies on three properties of that backup: validity, agreement under
// any schedule, and polynomial expected work. This module provides a compact
// protocol with exactly those properties (see DESIGN.md for the substitution
// rationale):
//
//   value v = input
//   for round r = 1, 2, ...:
//     (verdict, v) = adopt_commit_r(v)     // deterministic safety
//     if verdict == commit: decide v
//     v = conciliator_r(v)                 // probabilistic convergence
//
// Agreement: if any process commits v in round r, adopt-commit coherence
// forces every other process to carry v into conciliator_r; the conciliator
// preserves unanimity, so round r+1 is unanimous and commits v.
// Validity: unanimous inputs commit in round 1 (convergence).
// Termination: each conciliator produces agreement with constant probability
// against an oblivious scheduler, so the expected number of rounds is O(1)
// and expected work is O(n) operations per process (p_write = 1/(2n)).
#pragma once

#include <cstdint>
#include <optional>

#include "backup/adopt_commit.h"
#include "backup/conciliator.h"
#include "core/machine.h"
#include "util/rng.h"

namespace leancon {

/// Tuning parameters for the backup protocol.
struct backup_params {
  /// Per-step conciliator write probability; 1/(2n) is the analyzed value.
  double write_prob = 0.25;
  /// Rounds after which the machine declares itself stuck (never expected in
  /// practice: the per-round failure probability is bounded below 1).
  std::uint64_t max_rounds = 1u << 20;

  /// Canonical parameters for an n-process instance.
  static backup_params for_processes(std::uint64_t n) {
    backup_params p;
    p.write_prob = 1.0 / (2.0 * static_cast<double>(n == 0 ? 1 : n));
    return p;
  }
};

/// One process's backup-consensus execution.
class backup_machine final : public consensus_machine {
 public:
  /// @param input   the bit carried in (the lean preference, or a raw input
  ///                when the backup runs standalone)
  /// @param params  protocol tuning
  /// @param gen     local coin source (copied; machine owns its stream)
  backup_machine(int input, const backup_params& params, rng gen);

  operation next_op() const override;
  void apply(std::uint64_t result) override;
  bool done() const override { return decided_; }
  int decision() const override;
  std::uint64_t steps() const override { return steps_; }

  /// Rounds of (adopt-commit + conciliator) consumed so far (1-based).
  std::uint64_t round() const { return round_; }

  /// Current carried value.
  int value() const { return value_; }

  /// True if max_rounds was exceeded (the machine stops making progress).
  bool stuck() const { return stuck_; }

 private:
  void start_round();

  backup_params params_;
  rng gen_;
  rng_coin coin_;
  int value_;
  std::uint64_t round_ = 1;
  bool decided_ = false;
  bool stuck_ = false;
  int decision_ = -1;
  std::uint64_t steps_ = 0;
  // Stage within the current round. Exactly one is engaged at a time.
  std::optional<adopt_commit_machine> ac_;
  std::optional<conciliator_machine> conc_;
};

}  // namespace leancon
