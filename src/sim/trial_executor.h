// Parallel multi-trial engine. Trials in the noisy-scheduling model are
// independent given their per-trial seed (paper Section 3.1), so batches are
// embarrassingly parallel; this executor partitions them across a thread
// pool while keeping the results a pure function of (config, trial count):
//
//  * Per-trial seeds are trial_seed(base.seed, t), a splitmix64 hash of the
//    (base seed, trial index) pair — no state flows between trials.
//  * Stateful crash adversaries are cloned per trial (a shared instance
//    would leak budget across trials and race under parallel execution).
//  * Aggregation runs over a fixed chunk grid that depends only on the
//    trial count, never on the thread count: workers claim chunks
//    dynamically, accumulate chunk-local trial_stats sequentially, and the
//    chunks are merged in index order at the end.
//
// Together these make the output BIT-IDENTICAL for any thread count,
// including the single-threaded run_trials path.
//
// Parallel batches execute on a persistent worker_pool (by default the
// process-wide worker_pool::shared()) instead of spawning a thread team per
// batch; --threads becomes a concurrency cap on the batch, not a thread
// count. The campaign engine (exp/campaign.h) schedules whole grids of
// cells onto the same pool using the same chunk grid, which is exposed
// below so both engines share one aggregation contract.
#pragma once

#include <cstdint>

#include "sim/runner.h"

namespace leancon {

class worker_pool;

/// The seed of trial `trial` under base seed `base_seed`: the trial-th
/// output of the splitmix64 stream seeded with `base_seed`. The splitmix64
/// output mix decorrelates nearby base seeds and nearby trial indices alike,
/// unlike an affine map, whose images of nearby seeds overlap across
/// batches.
std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial);

/// Resolves a requested worker count: 0 means hardware concurrency (at
/// least 1).
unsigned resolve_threads(unsigned threads);

/// Signed-input form for values parsed from the command line: negative
/// counts (a typo'd flag would otherwise wrap through unsigned) resolve
/// to 1.
unsigned resolve_threads(std::int64_t threads);

/// The fixed aggregation grid shared by the executor and the campaign
/// engine: a batch of `trials` splits into trial_chunk_count(trials) chunks,
/// chunk c covering trials [trial_chunk_begin(c), trial_chunk_begin(c + 1)).
/// The grid depends only on the trial count, never on thread or pool sizes.
std::uint64_t trial_chunk_count(std::uint64_t trials);
std::uint64_t trial_chunk_begin(std::uint64_t trials, std::uint64_t chunk);

/// The config trial `trial` of a batch of `base` runs with: the trial seed
/// swapped in and any stateful crash adversary cloned for the trial.
sim_config trial_config(const sim_config& base, std::uint64_t trial);

struct executor_options {
  /// Concurrency cap for a batch (participating threads, caller included);
  /// 0 = std::thread::hardware_concurrency().
  unsigned threads = 1;
  /// Pool the batch runs on; null = worker_pool::shared(). The pool's size
  /// never affects results, only how many chunks run concurrently.
  worker_pool* pool = nullptr;
};

/// Runs batches of independent trials across a thread pool and aggregates
/// them into trial_stats. Configs with an event_hook run single-threaded:
/// the hook observes operations in execution order and concurrent trials
/// would interleave its calls. A custom machine `factory` must be safe to
/// invoke concurrently.
class trial_executor {
 public:
  explicit trial_executor(executor_options opts = {});

  /// Runs `trials` simulations of `base`; bit-identical for any thread
  /// count.
  trial_stats run(const sim_config& base, std::uint64_t trials) const;

  /// Generic form: runs `trials` trials of any workload (shared-memory or
  /// native backend) with per-trial seeds trial_seed(base_seed, t), over
  /// the same chunk grid; bit-identical for any thread count. The
  /// workload's run_trial must be safe to call concurrently; workloads
  /// bound to a sim_config with an event_hook run single-threaded (the
  /// per-trial config copies share the hook's state).
  trial_stats run(const workload& w, std::uint64_t base_seed,
                  std::uint64_t trials) const;

  unsigned threads() const { return threads_; }

 private:
  trial_stats run_batch(
      std::uint64_t trials,
      const std::function<trial_outcome(std::uint64_t)>& one_trial,
      unsigned workers) const;

  unsigned threads_;
  worker_pool* pool_;
};

}  // namespace leancon
