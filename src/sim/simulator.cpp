#include "sim/simulator.h"

#include <algorithm>
#include <stdexcept>

#include "core/combined_machine.h"
#include "core/invariants.h"
#include "core/lean_machine.h"
#include "backup/backup_machine.h"
#include "memory/sim_memory.h"
#include "sim/event_queue.h"

namespace leancon {

std::string_view protocol_name(protocol_kind k) {
  switch (k) {
    case protocol_kind::lean: return "lean";
    case protocol_kind::combined: return "combined";
    case protocol_kind::backup: return "backup";
  }
  return "?";
}

std::vector<int> split_inputs(std::size_t n) {
  std::vector<int> inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs[i] = static_cast<int>(i % 2);
  return inputs;
}

std::vector<int> unanimous_inputs(std::size_t n, int bit) {
  return std::vector<int>(n, bit);
}

namespace {

std::unique_ptr<consensus_machine> build_machine(const sim_config& config,
                                                 int pid, int input, rng gen) {
  if (config.factory) return config.factory(pid, input, std::move(gen));
  const auto n = config.inputs.size();
  backup_params bp = backup_params::for_processes(n);
  if (config.backup_write_prob > 0.0) bp.write_prob = config.backup_write_prob;
  switch (config.protocol) {
    case protocol_kind::lean:
      return std::make_unique<lean_machine>(input);
    case protocol_kind::combined: {
      const std::uint64_t r_max =
          config.r_max != 0 ? config.r_max : default_r_max(n);
      return std::make_unique<combined_machine>(input, r_max, bp, gen);
    }
    case protocol_kind::backup:
      return std::make_unique<backup_machine>(input, bp, gen);
  }
  throw std::logic_error("build_machine: bad protocol kind");
}

}  // namespace

sim_result simulate(const sim_config& config) {
  const auto n = config.inputs.size();
  if (n == 0) throw std::invalid_argument("simulate: no processes");

  sim_result result;
  result.processes.assign(n, sim_process_result{});

  sim_memory memory;
  invariant_checker checker(config.inputs);
  if (config.check_invariants) {
    memory.set_trace_hook([&checker](int pid, const operation& op,
                                     std::uint64_t value) {
      checker.on_op(pid, op, value);
    });
  }

  // Per-process state.
  std::vector<std::unique_ptr<consensus_machine>> machines(n);
  std::vector<rng> streams;
  streams.reserve(n);
  std::vector<process_view> views(n);
  rng root(config.seed);

  event_queue queue;
  for (std::size_t i = 0; i < n; ++i) {
    streams.emplace_back(config.seed, /*stream=*/i + 1);
    machines[i] = build_machine(config, static_cast<int>(i), config.inputs[i],
                                streams[i].fork());
    views[i].preference = config.inputs[i];

    double t = config.sched.start_offset(static_cast<int>(i),
                                         static_cast<int>(n), streams[i]);
    bool halted = false;
    t += config.sched.op_increment(static_cast<int>(i), 1, /*is_write=*/false,
                                   streams[i], halted);
    if (halted) {
      result.processes[i].halted = true;
      views[i].halted = true;
      ++result.halted_processes;
    } else {
      queue.push(t, static_cast<int>(i));
    }
  }

  std::uint64_t decided_live = 0;
  auto live_undecided = [&]() {
    return n - result.halted_processes - decided_live;
  };

  while (!queue.empty()) {
    if (result.total_ops >= config.max_total_ops) {
      result.budget_exhausted = true;
      break;
    }
    const sim_event ev = queue.pop();
    const auto pid = static_cast<std::size_t>(ev.pid);
    auto& machine = *machines[pid];
    auto& pr = result.processes[pid];
    if (pr.halted || pr.decided) continue;  // stale event (defensive)

    // Execute one atomic operation.
    const operation op = machine.next_op();
    const std::uint64_t value = memory.execute(ev.pid, op);
    machine.apply(value);
    ++pr.ops;
    ++result.total_ops;
    if (config.event_hook) {
      trace_event te;
      te.time = ev.time;
      te.pid = ev.pid;
      te.op = op;
      te.value = value;
      te.round = machine.lean_round();
      te.decided = machine.done();
      te.decision = machine.done() ? machine.decision() : -1;
      config.event_hook(te);
    }

    // Update bookkeeping visible to adaptive adversaries and metrics.
    const std::uint64_t lr = machine.lean_round();
    if (lr != 0) {
      pr.round_reached = lr;
      result.max_round_reached = std::max(result.max_round_reached, lr);
    }
    pr.preference_switches = machine.preference_switches();
    views[pid].round = pr.round_reached;
    views[pid].ops = pr.ops;

    if (machine.done()) {
      pr.decided = true;
      pr.decision = machine.decision();
      views[pid].decided = true;
      ++decided_live;
      const std::uint64_t round = machine.lean_round();
      if (config.check_invariants) {
        if (round != 0) {
          checker.on_decision(ev.pid, pr.decision, round);
        } else {
          checker.on_backup_decision(ev.pid, pr.decision);
        }
      }
      if (!result.any_decided) {
        result.any_decided = true;
        result.decision = pr.decision;
        result.first_decision_round = round != 0 ? round : pr.round_reached;
        result.first_decision_time = ev.time;
        result.ops_until_first_decision = result.total_ops;
        if (config.stop == stop_mode::first_decision) break;
      }
      result.last_decision_round =
          std::max(result.last_decision_round,
                   round != 0 ? round : pr.round_reached);
      if (live_undecided() == 0) break;
      continue;  // no further ops for this process
    }

    // Adaptive crash adversary moves after observing the step. It also sees
    // whether the stepping process's NEXT operation would decide (the
    // round-final read of a still-zero rival cell).
    if (config.crashes) {
      const operation next = machine.next_op();
      const std::uint64_t next_round = machine.lean_round();
      views[pid].poised_to_decide =
          next_round != 0 && next.kind == op_kind::read &&
          (next.where.where == space::race0 ||
           next.where.where == space::race1) &&
          next.where.index + 1 == next_round &&
          memory.peek(next.where) == 0;
      if (auto victim = config.crashes->maybe_kill(views, ev.pid)) {
        const auto v = static_cast<std::size_t>(*victim);
        if (v < n && !result.processes[v].halted &&
            !result.processes[v].decided) {
          result.processes[v].halted = true;
          views[v].halted = true;
          ++result.halted_processes;
          if (live_undecided() == 0) break;
          // The victim's pending event, if any, becomes stale and is skipped
          // when popped.
        }
      }
    }
    if (pr.halted) continue;  // the adversary crashed the stepping process

    // Schedule this process's next operation.
    const operation next = machine.next_op();
    bool halted = false;
    const double inc = config.sched.op_increment(
        ev.pid, pr.ops + 1, next.kind == op_kind::write, streams[pid], halted);
    if (halted) {
      pr.halted = true;
      views[pid].halted = true;
      ++result.halted_processes;
      if (live_undecided() == 0) break;
    } else {
      queue.push(ev.time + inc, ev.pid);
    }
  }

  result.all_live_decided = live_undecided() == 0 && decided_live > 0;
  for (const auto& pr : result.processes) {
    if (pr.decided && pr.round_reached != 0) {
      result.last_decision_round =
          std::max(result.last_decision_round, pr.round_reached);
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (auto* cm = dynamic_cast<combined_machine*>(machines[i].get())) {
      if (cm->backup_entered()) ++result.backup_entries;
    }
  }
  result.violations = checker.violations();
  return result;
}

}  // namespace leancon
