#include "sim/simulator.h"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "core/combined_machine.h"
#include "core/invariants.h"
#include "core/lean_machine.h"
#include "backup/backup_machine.h"
#include "memory/sim_memory.h"
#include "obs/obs.h"
#include "sim/event_queue.h"

namespace leancon {

std::string_view protocol_name(protocol_kind k) {
  switch (k) {
    case protocol_kind::lean: return "lean";
    case protocol_kind::combined: return "combined";
    case protocol_kind::backup: return "backup";
  }
  return "?";
}

std::vector<int> split_inputs(std::size_t n) {
  std::vector<int> inputs(n);
  for (std::size_t i = 0; i < n; ++i) inputs[i] = static_cast<int>(i % 2);
  return inputs;
}

std::vector<int> unanimous_inputs(std::size_t n, int bit) {
  return std::vector<int>(n, bit);
}

namespace {

// The hot loop is templated on the concrete machine type: lean_machine,
// combined_machine and backup_machine are final classes, so every next_op /
// apply / done call below compiles to a direct (usually inlined) call. The
// sim_config::factory escape hatch instantiates the same loop over
// unique_ptr<consensus_machine> and keeps its virtual dispatch.
template <class M>
M& deref(M& machine) {
  return machine;
}
consensus_machine& deref(std::unique_ptr<consensus_machine>& machine) {
  return *machine;
}

// backup_entries counts combined machines that fell through to the backup
// stage; the sentinel pre-refactor behaviour (a dynamic_cast per machine)
// counted nothing for lean and standalone-backup runs, which the typed
// overloads reproduce for free.
void count_backup_entry(const lean_machine&, sim_result&) {}
void count_backup_entry(const backup_machine&, sim_result&) {}
void count_backup_entry(const combined_machine& m, sim_result& r) {
  if (m.backup_entered()) ++r.backup_entries;
}
void count_backup_entry(const std::unique_ptr<consensus_machine>& m,
                        sim_result& r) {
  if (const auto* cm = dynamic_cast<const combined_machine*>(m.get())) {
    if (cm->backup_entered()) ++r.backup_entries;
  }
}

/// Reusable per-trial state: machines, rng streams, the event heap, shared
/// memory, and struct-of-arrays process bookkeeping. One instance lives per
/// (thread, machine type); consecutive trials on a worker reuse its storage
/// instead of allocating, and every field is fully reinitialized per trial,
/// so reuse cannot leak state between trials.
template <class M>
struct sim_workspace {
  std::vector<M> machines;
  std::vector<rng> streams;
  std::vector<process_view> views;  ///< only maintained under crash adversaries
  event_scheduler sched;
  sim_memory memory;
  // Struct-of-arrays per-process state; folded into sim_result::processes
  // once at the end of the trial.
  std::vector<std::uint8_t> halted;
  std::vector<std::uint8_t> decided;
  std::vector<int> decisions;
  std::vector<std::uint64_t> ops;
  std::vector<std::uint64_t> rounds;
  std::vector<std::uint64_t> obs_prefs;  ///< last seen switch counts (tracing)
  // Fast-path pre-drawn increments: pending_inc[p]/pending_halt[p] hold the
  // NEXT draw off streams[p], made early so the sampler's latency overlaps
  // the tournament replay instead of extending it. Behind them sits a
  // per-process ring of kIncBatch draws (inc_buf/halt_buf stripes) refilled
  // with increment_sampler::fill, so the libm-heavy samplers run in batches
  // instead of once per simulated operation.
  std::vector<double> pending_inc;
  std::vector<std::uint8_t> pending_halt;
  std::vector<double> inc_buf;
  std::vector<std::uint8_t> halt_buf;
  std::vector<std::uint8_t> buf_pos;
  bool in_use = false;  ///< re-entrancy guard (factories may nest simulate)
};

/// Pre-drawn increments per process in the pipelined fast path. Large
/// enough to amortize the spill around the samplers' libm calls, small
/// enough that the draws left unconsumed when a trial ends stay cheap.
constexpr std::size_t kIncBatch = 4;

template <class M, class MakeMachine>
sim_result run_simulation(const sim_config& config, std::uint64_t seed,
                          sim_workspace<M>& ws, MakeMachine&& make_machine) {
  const auto n = config.inputs.size();

  sim_result result;

  // Compile the per-op increment once per trial: adversary and noise become
  // tagged unions, so the loop below draws without virtual dispatch.
  const increment_sampler next_increment(config.sched);

  std::optional<invariant_checker> checker;
  ws.memory.reset();
  if (config.check_invariants) {
    checker.emplace(config.inputs);
    ws.memory.set_trace_hook(
        [&checker](int pid, const operation& op, std::uint64_t value) {
          checker->on_op(pid, op, value);
        });
  } else {
    ws.memory.set_trace_hook(nullptr);
  }

  const bool track_views = config.crashes != nullptr;
  // Event tracing runs on the general loop: it produces bit-identical
  // results (documented below) and has natural per-event emission points.
  // The flag is sampled once per trial so the hot loops never re-load it.
  const bool obs_on = obs::enabled();
  // The fast path below needs the draws to be position-independent; decided
  // before the init loop so it can pre-draw each stream's next increment.
  const bool pipelined = config.crashes == nullptr &&
                         !next_increment.schedule_sensitive() && !obs_on;
  ws.sched.reset(n);
  ws.machines.clear();
  ws.machines.reserve(n);
  ws.streams.clear();
  ws.streams.reserve(n);
  if (track_views) ws.views.assign(n, process_view{});
  ws.halted.assign(n, 0);
  ws.decided.assign(n, 0);
  ws.decisions.assign(n, -1);
  ws.ops.assign(n, 0);
  ws.rounds.assign(n, 1);
  if (pipelined) {
    ws.pending_inc.assign(n, 0.0);
    ws.pending_halt.assign(n, 0);
    // resize, not assign: every slot is written by fill() before it is read
    // (buf_pos gates validity), so stale values from the previous trial are
    // unreachable and re-zeroing would be pure cost.
    ws.inc_buf.resize(n * kIncBatch);
    ws.halt_buf.resize(n * kIncBatch);
    ws.buf_pos.assign(n, 0);
  }
  if (obs_on) {
    ws.obs_prefs.assign(n, 0);
    obs::emit(obs::event_kind::trial_begin, 0.0, n, seed);
  }

  for (std::size_t i = 0; i < n; ++i) {
    ws.streams.emplace_back(seed, /*stream=*/i + 1);
    // The fork() below advances stream i by one draw even when the machine
    // (lean) never uses the forked generator; the stream positions are part
    // of the bit-identity contract.
    ws.machines.emplace_back(make_machine(static_cast<int>(i),
                                          config.inputs[i],
                                          ws.streams[i].fork()));
    if (track_views) ws.views[i].preference = config.inputs[i];

    double t = config.sched.start_offset(static_cast<int>(i),
                                         static_cast<int>(n), ws.streams[i]);
    bool halted = false;
    if (pipelined) {
      // Batch the stream's first kIncBatch increments. The first one is
      // the op_index=1 draw the general path makes right here; the rest
      // are the same stream's next draws, just made early (the draws are
      // position-independent — see schedule_sensitive).
      double* buf = ws.inc_buf.data() + i * kIncBatch;
      std::uint8_t* hbuf = ws.halt_buf.data() + i * kIncBatch;
      next_increment.fill(static_cast<int>(i), ws.streams[i], buf, hbuf,
                          kIncBatch);
      t += buf[0];
      halted = hbuf[0] != 0;
      ws.pending_inc[i] = buf[1];
      ws.pending_halt[i] = hbuf[1];
      ws.buf_pos[i] = 2;
    } else {
      t += next_increment(static_cast<int>(i), 1, /*is_write=*/false,
                          ws.streams[i], halted);
    }
    if (halted) {
      ws.halted[i] = 1;
      if (track_views) ws.views[i].halted = true;
      ++result.halted_processes;
      if (obs_on) obs::emit(obs::event_kind::halt, t, i);
    } else {
      // prime() assigns sequence numbers in pid order, exactly like the
      // pushes the generic heap used to see.
      ws.sched.prime(static_cast<int>(i), t);
    }
  }
  ws.sched.build();

  std::uint64_t decided_live = 0;
  auto live_undecided = [&]() {
    return n - result.halted_processes - decided_live;
  };

  const std::uint64_t max_total_ops = config.max_total_ops;
  const bool has_hook = static_cast<bool>(config.event_hook);

  // Pipelined fast path. The general loop below is latency-bound: every
  // iteration serializes top -> next_op -> execute -> apply -> draw ->
  // replay, because the next event is unknown until the tournament replay
  // finishes — nothing overlaps across iterations. When the increment draw
  // does not depend on WHICH operation is scheduled (no adversary delays,
  // no per-op-kind write noise) and no crash adversary watches the step,
  // the draw and the reschedule can issue FIRST: the replay then runs
  // concurrently with the machine/memory work in the out-of-order window,
  // roughly halving the per-operation critical path.
  //
  // Bit-identity with the general loop:
  //  - The rng stream draws are identical: the increment is the next draw
  //    off streams[pid] either way (schedule_sensitive()==false means the
  //    arguments the draw ignores are the only ones that changed), and the
  //    halting Bernoulli stays in the same position inside the draw.
  //  - A process that decides or halts AFTER its slot was rescheduled
  //    leaves a stale slot behind instead of a removed one. Stale slots are
  //    skipped (and removed) when they win, which cannot move any real
  //    event's pop position: (time, seq) is a total order over real events
  //    and their relative seq order is preserved — doomed reschedules only
  //    shift later seq values up, never reorder them.
  //  - Each step consumes a PRE-DRAWN increment, made up to kIncBatch
  //    steps early by a batched draw on the same stream. Draws stay in
  //    per-stream order — streams are per-process, so moving a draw earlier
  //    in wall time never reorders it within its own stream, and
  //    cross-stream order is immaterial.
  //  - Up to kIncBatch draws sit unconsumed on a stream when its process
  //    decides or halts (or the trial ends); such a stream is never drawn
  //    from again, so no later value changes.
  //  - The budget check runs after the stale skip, so it still fires only
  //    ahead of real operations, exactly like the general loop (which never
  //    sees stale slots in fast-path-eligible configs).
  while (pipelined && !ws.sched.empty()) {
    const sim_event ev = ws.sched.top();
    const auto pid = static_cast<std::size_t>(ev.pid);
    if (ws.halted[pid] || ws.decided[pid]) {
      ws.sched.remove_top();  // stale slot of a decided/halted process
      continue;
    }
    if (result.total_ops >= max_total_ops) {
      result.budget_exhausted = true;
      break;
    }

    // Reschedule with the increment pre-drawn at this process's previous
    // step: the only work between the tournament replays is an indexed
    // load and an add, so consecutive replays nearly abut, and the actual
    // sampler draw below runs in the replay's out-of-order shadow.
    const double inc = ws.pending_inc[pid];
    const bool halted_next = ws.pending_halt[pid] != 0;
    ws.sched.reschedule_top(ev.time + inc);

    // Advance this process's pre-draw pipeline (all off the critical
    // path): stage the stream's next increment from its ring, refilling
    // the ring by a batched draw when it runs dry.
    {
      std::size_t idx = ws.buf_pos[pid];
      double* buf = ws.inc_buf.data() + pid * kIncBatch;
      std::uint8_t* hbuf = ws.halt_buf.data() + pid * kIncBatch;
      if (idx == kIncBatch) {
        next_increment.fill(ev.pid, ws.streams[pid], buf, hbuf, kIncBatch);
        idx = 0;
      }
      ws.pending_inc[pid] = buf[idx];
      ws.pending_halt[pid] = hbuf[idx];
      ws.buf_pos[pid] = static_cast<std::uint8_t>(idx + 1);
    }

    // Execute one atomic operation.
    auto& machine = deref(ws.machines[pid]);
    const operation op = machine.next_op();
    const std::uint64_t value = ws.memory.execute(ev.pid, op);
    machine.apply(value);
    ++ws.ops[pid];
    ++result.total_ops;
    if (has_hook) {
      trace_event te;
      te.time = ev.time;
      te.pid = ev.pid;
      te.op = op;
      te.value = value;
      te.round = machine.lean_round();
      te.decided = machine.done();
      te.decision = machine.done() ? machine.decision() : -1;
      config.event_hook(te);
    }

    const std::uint64_t lr = machine.lean_round();
    if (lr != 0) {
      ws.rounds[pid] = lr;
      result.max_round_reached = std::max(result.max_round_reached, lr);
    }

    if (machine.done()) {
      ws.decided[pid] = 1;  // the rescheduled slot goes stale
      ws.decisions[pid] = machine.decision();
      ++decided_live;
      const std::uint64_t round = machine.lean_round();
      if (checker) {
        if (round != 0) {
          checker->on_decision(ev.pid, ws.decisions[pid], round);
        } else {
          checker->on_backup_decision(ev.pid, ws.decisions[pid]);
        }
      }
      if (!result.any_decided) {
        result.any_decided = true;
        result.decision = ws.decisions[pid];
        result.first_decision_round = round != 0 ? round : ws.rounds[pid];
        result.first_decision_time = ev.time;
        result.ops_until_first_decision = result.total_ops;
        if (config.stop == stop_mode::first_decision) break;
      }
      result.last_decision_round =
          std::max(result.last_decision_round,
                   round != 0 ? round : ws.rounds[pid]);
      if (live_undecided() == 0) break;
      continue;
    }

    if (halted_next) {
      // The halting failure lands on the operation just scheduled; its
      // slot goes stale exactly like a decided process's.
      ws.halted[pid] = 1;
      ++result.halted_processes;
      if (live_undecided() == 0) break;
    }
  }

  double obs_last_time = 0.0;  // latest executed-event time (tracing only)
  while (!pipelined && !ws.sched.empty()) {
    if (result.total_ops >= max_total_ops) {
      result.budget_exhausted = true;
      break;
    }
    const sim_event ev = ws.sched.top();
    const auto pid = static_cast<std::size_t>(ev.pid);
    auto& machine = deref(ws.machines[pid]);
    if (obs_on) obs_last_time = ev.time;
    if (ws.halted[pid] || ws.decided[pid]) {
      // Stale event: the process was crashed by the adversary after this
      // event was scheduled. The generic heap popped and skipped it; the
      // scheduler drops the slot at the same point in the pop order.
      ws.sched.remove_top();
      continue;
    }

    // Execute one atomic operation.
    const operation op = machine.next_op();
    const std::uint64_t value = ws.memory.execute(ev.pid, op);
    machine.apply(value);
    ++ws.ops[pid];
    ++result.total_ops;
    if (has_hook) {
      trace_event te;
      te.time = ev.time;
      te.pid = ev.pid;
      te.op = op;
      te.value = value;
      te.round = machine.lean_round();
      te.decided = machine.done();
      te.decision = machine.done() ? machine.decision() : -1;
      config.event_hook(te);
    }

    // Update bookkeeping visible to adaptive adversaries and metrics.
    const std::uint64_t lr = machine.lean_round();
    if (lr != 0) {
      if (obs_on && lr != ws.rounds[pid]) {
        obs::emit(obs::event_kind::round_advance, ev.time,
                  static_cast<std::uint64_t>(ev.pid), lr);
      }
      ws.rounds[pid] = lr;
      result.max_round_reached = std::max(result.max_round_reached, lr);
    }
    if (obs_on) {
      const std::uint64_t switches = machine.preference_switches();
      if (switches != ws.obs_prefs[pid]) {
        ws.obs_prefs[pid] = switches;
        obs::emit(obs::event_kind::pref_switch, ev.time,
                  static_cast<std::uint64_t>(ev.pid), switches);
      }
    }
    if (track_views) {
      ws.views[pid].round = ws.rounds[pid];
      ws.views[pid].ops = ws.ops[pid];
    }

    if (machine.done()) {
      ws.sched.remove_top();  // no further ops for this process
      ws.decided[pid] = 1;
      ws.decisions[pid] = machine.decision();
      if (track_views) ws.views[pid].decided = true;
      ++decided_live;
      const std::uint64_t round = machine.lean_round();
      if (obs_on) {
        obs::emit(obs::event_kind::decision, ev.time,
                  static_cast<std::uint64_t>(ev.pid),
                  static_cast<std::uint64_t>(ws.decisions[pid]),
                  round != 0 ? round : ws.rounds[pid]);
      }
      if (checker) {
        if (round != 0) {
          checker->on_decision(ev.pid, ws.decisions[pid], round);
        } else {
          checker->on_backup_decision(ev.pid, ws.decisions[pid]);
        }
      }
      if (!result.any_decided) {
        result.any_decided = true;
        result.decision = ws.decisions[pid];
        result.first_decision_round = round != 0 ? round : ws.rounds[pid];
        result.first_decision_time = ev.time;
        result.ops_until_first_decision = result.total_ops;
        if (config.stop == stop_mode::first_decision) break;
      }
      result.last_decision_round =
          std::max(result.last_decision_round,
                   round != 0 ? round : ws.rounds[pid]);
      if (live_undecided() == 0) break;
      continue;  // no further ops for this process
    }

    // The process's next operation, computed once: the crash adversary's
    // poised-to-decide view and the write-noise selection below both key
    // off it (next_op is const, so one call serves both).
    const operation next = machine.next_op();

    // Adaptive crash adversary moves after observing the step. It also sees
    // whether the stepping process's NEXT operation would decide (the
    // round-final read of a still-zero rival cell).
    if (config.crashes) {
      const std::uint64_t next_round = machine.lean_round();
      ws.views[pid].poised_to_decide =
          next_round != 0 && next.kind == op_kind::read &&
          (next.where.where == space::race0 ||
           next.where.where == space::race1) &&
          next.where.index + 1 == next_round &&
          ws.memory.peek(next.where) == 0;
      if (auto victim = config.crashes->maybe_kill(ws.views, ev.pid)) {
        const auto v = static_cast<std::size_t>(*victim);
        if (v < n && !ws.halted[v] && !ws.decided[v]) {
          ws.halted[v] = 1;
          ws.views[v].halted = true;
          ++result.halted_processes;
          if (obs_on) {
            obs::emit(obs::event_kind::crash, ev.time, v,
                      static_cast<std::uint64_t>(ev.pid));
          }
          if (live_undecided() == 0) break;
          // The victim's pending event, if any, becomes stale and is skipped
          // when popped.
        }
      }
      if (ws.halted[pid]) {
        ws.sched.remove_top();  // the adversary crashed the stepping process
        continue;
      }
    }

    // Schedule this process's next operation.
    bool halted = false;
    const double inc =
        next_increment(ev.pid, ws.ops[pid] + 1, next.kind == op_kind::write,
                       ws.streams[pid], halted);
    if (halted) {
      ws.sched.remove_top();
      ws.halted[pid] = 1;
      if (track_views) ws.views[pid].halted = true;
      ++result.halted_processes;
      if (obs_on) {
        obs::emit(obs::event_kind::halt, ev.time + inc,
                  static_cast<std::uint64_t>(ev.pid));
      }
      if (live_undecided() == 0) break;
    } else {
      ws.sched.reschedule_top(ev.time + inc);
    }
  }

  if (obs_on) {
    obs::emit(obs::event_kind::trial_end, obs_last_time, decided_live,
              result.max_round_reached, result.total_ops);
  }

  result.all_live_decided = live_undecided() == 0 && decided_live > 0;

  // Fold the struct-of-arrays bookkeeping into the public per-process form.
  result.processes.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto& pr = result.processes[i];
    pr.decided = ws.decided[i] != 0;
    pr.decision = ws.decisions[i];
    pr.halted = ws.halted[i] != 0;
    pr.ops = ws.ops[i];
    pr.round_reached = ws.rounds[i];
    pr.preference_switches = deref(ws.machines[i]).preference_switches();
    if (pr.decided && pr.round_reached != 0) {
      result.last_decision_round =
          std::max(result.last_decision_round, pr.round_reached);
    }
    count_backup_entry(ws.machines[i], result);
  }
  if (checker) result.violations = checker->violations();
  return result;
}

template <class M, class MakeMachine>
sim_result simulate_typed(const sim_config& config, std::uint64_t seed,
                          MakeMachine&& make_machine) {
  static thread_local sim_workspace<M> shared_ws;
  if (!shared_ws.in_use) {
    shared_ws.in_use = true;
    struct release {
      bool* flag;
      ~release() { *flag = false; }
    } rel{&shared_ws.in_use};
    return run_simulation(config, seed, shared_ws, make_machine);
  }
  // Nested simulate() (e.g. from a factory or hook): fall back to a fresh
  // local workspace instead of clobbering the one mid-trial.
  sim_workspace<M> local;
  return run_simulation(config, seed, local, make_machine);
}

}  // namespace

sim_result simulate(const sim_config& config, std::uint64_t seed) {
  const auto n = config.inputs.size();
  if (n == 0) throw std::invalid_argument("simulate: no processes");

  if (config.factory) {
    return simulate_typed<std::unique_ptr<consensus_machine>>(
        config, seed, [&config](int pid, int input, rng gen) {
          return config.factory(pid, input, std::move(gen));
        });
  }
  backup_params bp = backup_params::for_processes(n);
  if (config.backup_write_prob > 0.0) bp.write_prob = config.backup_write_prob;
  switch (config.protocol) {
    case protocol_kind::lean:
      return simulate_typed<lean_machine>(
          config, seed,
          [](int, int input, rng) { return lean_machine(input); });
    case protocol_kind::combined: {
      const std::uint64_t r_max =
          config.r_max != 0 ? config.r_max : default_r_max(n);
      return simulate_typed<combined_machine>(
          config, seed, [&bp, r_max](int, int input, rng gen) {
            return combined_machine(input, r_max, bp, std::move(gen));
          });
    }
    case protocol_kind::backup:
      return simulate_typed<backup_machine>(
          config, seed, [&bp](int, int input, rng gen) {
            return backup_machine(input, bp, std::move(gen));
          });
  }
  throw std::logic_error("build_machine: bad protocol kind");
}

sim_result simulate(const sim_config& config) {
  return simulate(config, config.seed);
}

}  // namespace leancon
