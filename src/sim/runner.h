// Multi-trial orchestration: runs `trials` independent simulations (seeds
// derived deterministically from the base seed) and aggregates the metrics
// every experiment reports. The parallel engine lives in
// sim/trial_executor.h; run_trials below is its single-threaded form.
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "stats/summary.h"

namespace leancon {

/// Aggregated outcome of a batch of simulated executions.
///
/// Metrics split into two groups. *Ops-side* metrics (`total_ops`,
/// `ops_per_process`, `max_ops`, `pref_switches`, `survivors`) count EVERY
/// trial, including budget-exhausted and all-halted ones — dropping them
/// would bias cost statistics low exactly when the adversary is strongest.
/// *Decision-side* metrics (`first_round`, `first_time`, `last_round`) count
/// decided trials only, because an undecided trial has no decision round or
/// time to report.
struct trial_stats {
  std::uint64_t trials = 0;
  std::uint64_t decided_trials = 0;     ///< trials where someone decided
  std::uint64_t undecided_trials = 0;   ///< budget exhausted or all halted
  std::uint64_t violation_trials = 0;   ///< trials with any lemma violation
  std::uint64_t backup_trials = 0;      ///< trials where any process entered
                                        ///< the backup stage
  summary first_round;       ///< round of first termination (Figure 1 metric)
  summary last_round;        ///< round of last termination (all_decided mode)
  summary first_time;        ///< simulated clock of first decision
  summary ops_per_process;   ///< mean ops per live process, per trial
  summary max_ops;           ///< max ops over processes, per trial
  summary pref_switches;     ///< total preference switches, per trial
  summary total_ops;         ///< total ops until stop, per trial
  summary survivors;         ///< processes that never halted, per trial

  /// Folds one simulated execution into the aggregate. `base` supplies the
  /// stop mode (which gates `last_round`).
  void record(const sim_config& base, const sim_result& r);

  /// Folds another aggregate into this one; all summaries merge via
  /// summary::merge, counters add.
  void merge(const trial_stats& other);
};

/// Runs `trials` simulations of `base` with per-trial seeds
/// trial_seed(base.seed, trial) — see sim/trial_executor.h for the seed
/// contract. All other configuration is shared; stateful crash adversaries
/// are cloned per trial. Equivalent to trial_executor with one thread (and
/// bit-identical to any other thread count).
trial_stats run_trials(const sim_config& base, std::uint64_t trials);

}  // namespace leancon
