// Multi-trial orchestration: runs `trials` independent simulations (seeds
// derived deterministically from the base seed) and aggregates the metrics
// every experiment reports.
#pragma once

#include <cstdint>

#include "sim/simulator.h"
#include "stats/summary.h"

namespace leancon {

/// Aggregated outcome of a batch of simulated executions.
struct trial_stats {
  std::uint64_t trials = 0;
  std::uint64_t decided_trials = 0;     ///< trials where someone decided
  std::uint64_t undecided_trials = 0;   ///< budget exhausted or all halted
  std::uint64_t violation_trials = 0;   ///< trials with any lemma violation
  std::uint64_t backup_trials = 0;      ///< trials where any process entered
                                        ///< the backup stage
  summary first_round;       ///< round of first termination (Figure 1 metric)
  summary last_round;        ///< round of last termination (all_decided mode)
  summary first_time;        ///< simulated clock of first decision
  summary ops_per_process;   ///< mean ops per live process, per trial
  summary max_ops;           ///< max ops over processes, per trial
  summary pref_switches;     ///< total preference switches, per trial
  summary total_ops;         ///< total ops until stop, per trial
};

/// Runs `trials` simulations of `base` with per-trial seeds
/// splitmix(base.seed, trial). All other configuration is shared.
trial_stats run_trials(const sim_config& base, std::uint64_t trials);

}  // namespace leancon
