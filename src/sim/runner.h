// Multi-trial orchestration: runs `trials` independent executions (seeds
// derived deterministically from the base seed) and aggregates the metrics
// every experiment reports. The parallel engine lives in
// sim/trial_executor.h; run_trials below is its single-threaded form.
//
// Aggregation is workload-agnostic: each trial reports a `trial_outcome`
// (stats/metric_set.h) and `trial_stats` folds outcomes generically, so the
// shared-memory simulator, the ABD message-passing port, the mutex-noise
// executor, and the hybrid-quantum model all aggregate through one path —
// each with its own native metrics, none with fabricated zeros.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "sim/simulator.h"
#include "stats/metric_set.h"
#include "stats/summary.h"

namespace leancon {

/// Aggregated outcome of a batch of trials: the fixed decision counters
/// plus a metric_set merging every trial's observations.
///
/// Core shared-memory metric names (the contract the committed baselines
/// pin; see sim_trial_outcome):
///
///   name              rollup        when observed
///   "total_ops"       mean_and_sum  every trial
///   "survivors"       mean          every trial
///   "ops_per_process" mean          every trial with a live process
///   "max_ops"         mean          every trial
///   "pref_switches"   mean          every trial
///   "round"           location      decided trials (round of first decision)
///   "first_time"      mean          decided trials
///   "last_round"      mean          all_decided runs where everyone decided
///
/// *Ops-side* metrics count EVERY trial, including budget-exhausted and
/// all-halted ones — dropping them would bias cost statistics low exactly
/// when the adversary is strongest. *Decision-side* metrics ("round",
/// "first_time", "last_round") are observed on decided trials only, because
/// an undecided trial has no decision round or time to report — they are
/// ABSENT (not zero) when nothing decided. Native backends emit their own
/// names (e.g. "messages", "slow_path_entries", "preemptions") and omit
/// the round metrics they have no notion of.
struct trial_stats {
  std::uint64_t trials = 0;
  std::uint64_t decided_trials = 0;     ///< trials where someone decided
  std::uint64_t undecided_trials = 0;   ///< budget exhausted or all halted
  std::uint64_t violation_trials = 0;   ///< trials with any lemma violation
  std::uint64_t backup_trials = 0;      ///< trials where any process entered
                                        ///< the backup stage
  metric_set metrics;                   ///< merged per-trial observations

  /// Folds one trial into the aggregate: decision counters bump and the
  /// outcome's observations replay into `metrics` in emission order.
  void record(const trial_outcome& outcome);

  /// Shared-memory convenience: record(sim_trial_outcome(base, r)).
  void record(const sim_config& base, const sim_result& r);

  /// Folds another aggregate into this one; counters add, metric entries
  /// merge per-name in index order (see metric_set::merge).
  void merge(const trial_stats& other);

  /// Named views of the core metrics; an empty summary (count 0, NaN
  /// min/max) when the workload never emitted them.
  const summary& round() const { return metrics.sample("round"); }
  const summary& last_round() const { return metrics.sample("last_round"); }
  const summary& first_time() const { return metrics.sample("first_time"); }
  const summary& ops_per_process() const {
    return metrics.sample("ops_per_process");
  }
  const summary& max_ops() const { return metrics.sample("max_ops"); }
  const summary& pref_switches() const {
    return metrics.sample("pref_switches");
  }
  const summary& total_ops() const { return metrics.sample("total_ops"); }
  const summary& survivors() const { return metrics.sample("survivors"); }
};

/// Adapts one shared-memory execution into the unified trial_outcome,
/// emitting the core metric names documented on trial_stats. `base`
/// supplies the stop mode (which gates "last_round").
trial_outcome sim_trial_outcome(const sim_config& base, const sim_result& r);

/// The core metric names pre-bound as handles in emission order (see
/// metric_handle). Resolved once per process and shared by every workload
/// make_sim_workload builds; sim_trial_outcome emits through these, so the
/// per-trial recording path indexes entries instead of scanning names.
struct sim_metric_handles {
  metric_handle total_ops;
  metric_handle survivors;
  metric_handle ops_per_process;
  metric_handle max_ops;
  metric_handle pref_switches;
  metric_handle round;
  metric_handle first_time;
  metric_handle last_round;

  /// The shared instance (bind order = the emission order above).
  static const sim_metric_handles& core();
};

/// A bound workload: one scenario at one (n, seed), ready to run trials.
/// This is the ONE way every backend executes — the scenario registry
/// builds workloads, and trial_executor/campaign consume them.
struct workload {
  /// Runs one trial with the given trial seed and returns its outcome.
  /// Must be safe to call concurrently (trials are independent given their
  /// seed).
  std::function<trial_outcome(std::uint64_t trial_seed)> run_trial;

  /// The bound sim_config for workloads running on the shared-memory
  /// simulator (null for native backends). Exposed for introspection and
  /// config-level tooling; run_trial already has it bound.
  std::shared_ptr<const sim_config> config;
};

/// Wraps a sim_config as a workload: each trial copies the config, swaps
/// the trial seed in, clones any stateful crash adversary, simulates, and
/// adapts the result via sim_trial_outcome. `extra` (optional) observes
/// additional metrics from the raw sim_result after the core ones.
workload make_sim_workload(
    sim_config base,
    std::function<void(const sim_result&, trial_outcome&)> extra = nullptr);

/// Runs `trials` simulations of `base` with per-trial seeds
/// trial_seed(base.seed, trial) — see sim/trial_executor.h for the seed
/// contract. All other configuration is shared; stateful crash adversaries
/// are cloned per trial. Equivalent to trial_executor with one thread (and
/// bit-identical to any other thread count).
trial_stats run_trials(const sim_config& base, std::uint64_t trials);

}  // namespace leancon
