#include "sim/trial_executor.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace leancon {

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial) {
  // Jump the splitmix64 state to position `trial`, then take one step: the
  // additive constant below is splitmix64's gamma, so this is exactly the
  // trial-th output of the stream seeded with base_seed.
  std::uint64_t state = base_seed + trial * 0x9e3779b97f4a7c15ULL;
  return splitmix64_next(state);
}

unsigned resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned resolve_threads(std::int64_t threads) {
  return resolve_threads(threads < 0 ? 1u
                                     : static_cast<unsigned>(threads));
}

trial_executor::trial_executor(executor_options opts)
    : threads_(resolve_threads(opts.threads)) {}

namespace {

// Upper bound on the aggregation grid. Small enough that merging is noise,
// large enough that dynamic chunk claiming load-balances even when a few
// trials dominate the wall clock (large-n cells run single-digit trials).
constexpr std::uint64_t kMaxChunks = 256;

sim_config trial_config(const sim_config& base, std::uint64_t trial) {
  sim_config config = base;
  config.seed = trial_seed(base.seed, trial);
  if (base.crashes) config.crashes = base.crashes->clone(config.seed);
  return config;
}

}  // namespace

trial_stats trial_executor::run(const sim_config& base,
                                std::uint64_t trials) const {
  trial_stats total;
  if (trials == 0) return total;

  const std::uint64_t n_chunks = std::min(trials, kMaxChunks);
  const auto chunk_begin = [&](std::uint64_t c) {
    return trials * c / n_chunks;
  };

  std::vector<trial_stats> chunk_stats(n_chunks);
  const auto run_chunk = [&](std::uint64_t c) {
    trial_stats& stats = chunk_stats[c];
    const std::uint64_t end = chunk_begin(c + 1);
    for (std::uint64_t t = chunk_begin(c); t < end; ++t) {
      stats.record(base, simulate(trial_config(base, t)));
    }
  };

  const unsigned workers =
      base.event_hook ? 1u
                      : static_cast<unsigned>(
                            std::min<std::uint64_t>(threads_, n_chunks));
  if (workers <= 1) {
    for (std::uint64_t c = 0; c < n_chunks; ++c) run_chunk(c);
  } else {
    std::atomic<std::uint64_t> next_chunk{0};
    std::exception_ptr failure;
    std::mutex failure_mutex;
    const auto worker = [&] {
      try {
        while (true) {
          const std::uint64_t c = next_chunk.fetch_add(1);
          if (c >= n_chunks) return;
          run_chunk(c);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(failure_mutex);
        if (!failure) failure = std::current_exception();
      }
    };
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
    if (failure) std::rethrow_exception(failure);
  }

  for (const auto& chunk : chunk_stats) total.merge(chunk);
  return total;
}

}  // namespace leancon
