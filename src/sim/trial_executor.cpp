#include "sim/trial_executor.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "exp/worker_pool.h"
#include "util/rng.h"

namespace leancon {

std::uint64_t trial_seed(std::uint64_t base_seed, std::uint64_t trial) {
  // Jump the splitmix64 state to position `trial`, then take one step: the
  // additive constant below is splitmix64's gamma, so this is exactly the
  // trial-th output of the stream seeded with base_seed.
  std::uint64_t state = base_seed + trial * 0x9e3779b97f4a7c15ULL;
  return splitmix64_next(state);
}

unsigned resolve_threads(unsigned threads) {
  if (threads != 0) return threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

unsigned resolve_threads(std::int64_t threads) {
  return resolve_threads(threads < 0 ? 1u
                                     : static_cast<unsigned>(threads));
}

namespace {

// Upper bound on the aggregation grid. Small enough that merging is noise,
// large enough that dynamic chunk claiming load-balances even when a few
// trials dominate the wall clock (large-n cells run single-digit trials).
constexpr std::uint64_t kMaxChunks = 256;

}  // namespace

std::uint64_t trial_chunk_count(std::uint64_t trials) {
  return std::min(trials, kMaxChunks);
}

std::uint64_t trial_chunk_begin(std::uint64_t trials, std::uint64_t chunk) {
  return trials * chunk / trial_chunk_count(trials);
}

sim_config trial_config(const sim_config& base, std::uint64_t trial) {
  sim_config config = base;
  config.seed = trial_seed(base.seed, trial);
  if (base.crashes) config.crashes = base.crashes->clone(config.seed);
  return config;
}

trial_executor::trial_executor(executor_options opts)
    : threads_(resolve_threads(opts.threads)), pool_(opts.pool) {}

trial_stats trial_executor::run_batch(
    std::uint64_t trials,
    const std::function<trial_outcome(std::uint64_t)>& one_trial,
    unsigned workers) const {
  trial_stats total;
  if (trials == 0) return total;

  const std::uint64_t n_chunks = trial_chunk_count(trials);
  std::vector<trial_stats> chunk_stats(n_chunks);
  const auto run_chunk = [&](std::uint64_t c) {
    trial_stats& stats = chunk_stats[c];
    const std::uint64_t end = trial_chunk_begin(trials, c + 1);
    for (std::uint64_t t = trial_chunk_begin(trials, c); t < end; ++t) {
      stats.record(one_trial(t));
    }
  };

  workers = static_cast<unsigned>(std::min<std::uint64_t>(workers, n_chunks));
  if (workers <= 1) {
    for (std::uint64_t c = 0; c < n_chunks; ++c) run_chunk(c);
  } else {
    worker_pool& pool = pool_ != nullptr ? *pool_ : worker_pool::shared();
    pool.run(n_chunks, run_chunk, workers);
  }

  for (const auto& chunk : chunk_stats) total.merge(chunk);
  return total;
}

trial_stats trial_executor::run(const sim_config& base,
                                std::uint64_t trials) const {
  return run_batch(
      trials,
      [&base](std::uint64_t t) {
        return sim_trial_outcome(base, simulate(trial_config(base, t)));
      },
      base.event_hook ? 1u : threads_);
}

trial_stats trial_executor::run(const workload& w, std::uint64_t base_seed,
                                std::uint64_t trials) const {
  // Hooked sim configs run single-threaded here too: every per-trial copy
  // shares the hook's captured state.
  const bool hooked = w.config != nullptr && w.config->event_hook;
  return run_batch(
      trials,
      [&w, base_seed](std::uint64_t t) {
        return w.run_trial(trial_seed(base_seed, t));
      },
      hooked ? 1u : threads_);
}

}  // namespace leancon
