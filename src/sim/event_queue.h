// Deterministic discrete-event queue for the interleaving simulator.
//
// Events are ordered by (time, sequence number); the sequence number makes
// pops total and deterministic even if two events carry the same timestamp.
// The paper's model forbids simultaneous operations (probability-zero ties,
// arranged via dithered starts); the tiebreak is a safety net that keeps a
// tie from producing nondeterminism rather than a modeling feature.
#pragma once

#include <cstdint>
#include <queue>
#include <vector>

namespace leancon {

struct sim_event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< global issue order, breaks timestamp ties
  int pid = 0;
};

class event_queue {
 public:
  void push(double time, int pid) {
    events_.push(sim_event{time, next_seq_++, pid});
  }

  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

  /// Removes and returns the earliest event. Precondition: !empty().
  sim_event pop() {
    sim_event e = events_.top();
    events_.pop();
    return e;
  }

  const sim_event& peek() const { return events_.top(); }

 private:
  struct later {
    bool operator()(const sim_event& a, const sim_event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<sim_event, std::vector<sim_event>, later> events_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace leancon
