// Deterministic discrete-event queue for the interleaving simulator.
//
// Events are ordered by (time, sequence number); the sequence number makes
// pops total and deterministic even if two events carry the same timestamp.
// The paper's model forbids simultaneous operations (probability-zero ties,
// arranged via dithered starts); the tiebreak is a safety net that keeps a
// tie from producing nondeterminism rather than a modeling feature.
//
// The container is a hand-rolled flat 4-ary min-heap rather than
// std::priority_queue, tuned for the simulator's pop-one/push-one cadence:
//
//  - 4-ary layout: half the depth of a binary heap, and a node's children
//    sit adjacent in memory, so a sift touches fewer cache lines.
//  - Lazy hole: pop() only copies the minimum out and marks the root slot
//    as a hole; the heap is repaired on the NEXT operation. When that
//    operation is push() — the simulator schedules the stepping process's
//    next event right after popping it — the new event sinks from the root
//    directly (a classic replace-top), doing one sift instead of a
//    sift-down plus a sift-up.
//  - Reusable storage: clear() keeps capacity, reserve() pre-sizes it.
//
// Because (time, seq) is a total order, any correct heap pops in exactly
// the same sequence — arity, hole timing, and layout are unobservable.
#pragma once

#include <bit>
#include <cstdint>
#include <limits>
#include <vector>

namespace leancon {

struct sim_event {
  double time = 0.0;
  std::uint64_t seq = 0;  ///< global issue order, breaks timestamp ties
  int pid = 0;
};

class event_queue {
 public:
  void push(double time, int pid) {
    const sim_event e{time, next_seq_++, pid};
    if (hole_) {
      // Replace-top: the new event sinks from the root hole; nothing grows.
      hole_ = false;
      sift_down(e);
      return;
    }
    events_.push_back(e);
    sift_up(events_.size() - 1);
  }

  bool empty() const { return size() == 0; }
  std::size_t size() const {
    return events_.size() - static_cast<std::size_t>(hole_);
  }

  /// Removes and returns the earliest event. Precondition: !empty().
  sim_event pop() {
    if (hole_) repair();
    hole_ = true;
    return events_.front();
  }

  const sim_event& peek() {
    if (hole_) repair();
    return events_.front();
  }

  /// Pre-sizes the backing storage for n pending events.
  void reserve(std::size_t n) { events_.reserve(n); }

  /// Drops all pending events and resets the tiebreak counter; keeps the
  /// backing storage so a reused queue stops allocating after warm-up.
  void clear() {
    events_.clear();
    hole_ = false;
    next_seq_ = 0;
  }

 private:
  static bool earlier(const sim_event& a, const sim_event& b) {
    // Bitwise instead of short-circuit logic: the comparison compiles to
    // setcc/cmov with no data-dependent branch, which matters inside the
    // sift loops (event order is essentially random → branches mispredict).
    return (a.time < b.time) |
           (static_cast<int>(a.time == b.time) &
            static_cast<int>(a.seq < b.seq));
  }

  /// Fills the root hole with the last element (standard heap deletion,
  /// deferred from pop()).
  void repair() {
    const sim_event last = events_.back();
    events_.pop_back();
    hole_ = false;
    if (!events_.empty()) sift_down(last);
  }

  void sift_up(std::size_t i) {
    const sim_event e = events_[i];
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, events_[parent])) break;
      events_[i] = events_[parent];
      i = parent;
    }
    events_[i] = e;
  }

  /// Re-inserts `e` starting from the hole at the root, bottom-up style:
  /// the hole first descends along the min-child path all the way to a
  /// leaf (no exit test, and the child selection is branchless), then `e`
  /// sifts up from the leaf. Replace-top insertions usually belong deep —
  /// the simulator pushes the popped event's successor, which is later
  /// than everything scheduled in between — so the up-walk is short, and
  /// dropping the per-level exit comparison removes the loop's only
  /// unpredictable branch.
  void sift_down(const sim_event& e) {
    const std::size_t n = events_.size();
    std::size_t i = 0;
    for (;;) {
      const std::size_t first = 4 * i + 1;
      if (first >= n) break;
      const std::size_t last = first + 4 < n ? first + 4 : n;
      std::size_t best = first;
      for (std::size_t c = first + 1; c < last; ++c) {
        best = earlier(events_[c], events_[best]) ? c : best;
      }
      events_[i] = events_[best];
      i = best;
    }
    while (i > 0) {
      const std::size_t parent = (i - 1) / 4;
      if (!earlier(e, events_[parent])) break;
      events_[i] = events_[parent];
      i = parent;
    }
    events_[i] = e;
  }

  std::vector<sim_event> events_;
  std::uint64_t next_seq_ = 0;
  bool hole_ = false;  ///< events_[0] was popped but not yet repaired
};

/// Fixed-slot replace-min scheduler: at most ONE pending event per process,
/// which is exactly the interleaving simulator's shape (each process has
/// one next operation scheduled).
///
/// The structure is a loser tree (tournament tree of replacement
/// selection), tuned for dependency LATENCY rather than comparison count.
/// The simulator's loop is a serial chain — the next event is unknown
/// until the current update finishes — so the scheduler's update latency
/// is paid in full on every operation. Three choices keep that chain
/// short:
///
///  - An update replays ONE leaf-to-root path (ceil(log2 n) comparisons,
///    vs. a binary heap's down-AND-up sift), and the path's node addresses
///    depend only on the slot index, so every load issues as soon as the
///    previous winner is known.
///  - Each pending event packs into a single sortable 128-bit integer,
///    (time-bits << 64) | (seq << 32) | slot. Simulated times are finite
///    and non-negative (offsets and increments never go below zero), and
///    for non-negative IEEE doubles the bit pattern is order-isomorphic
///    to the value — so unsigned 128-bit comparison IS the (time, seq)
///    lexicographic order: seq is unique per event, so the slot bits
///    never decide between two real events. Packing the slot into the
///    key halves the tree's stores and loads — each internal node is one
///    16-byte value instead of a key plus a side index array — which
///    matters because the replay's stores all leave through the core's
///    single store port. seq fits 32 bits because it resets with the
///    trial and a trial's events are bounded by n plus the op budget,
///    orders of magnitude under 2^32.
///  - The per-level conditional swap must not become a data-dependent
///    branch: comparison outcomes are effectively random, and a branch
///    costs a mispredict every other level (measured ~55ns/update branchy
///    at n = 100). On x86-64/GCC the swap is a hand-scheduled
///    cmp/sbb/cmov sequence (~3 cycles of chain per level);
///    elsewhere it falls back to an XOR-mask dance, which the compiler
///    cannot turn back into a branch (~6 cycles).
///
/// The winner's packed key lives in a register-friendly member, so top()
/// and empty() touch no tree storage.
///
/// The simulator only ever changes the winner's slot: prime()+build() to
/// start a trial, then reschedule_top()/remove_top() against top().
///
/// Sequence numbers are assigned per prime()/reschedule_top() in call
/// order, mirroring event_queue::push, and (time, seq) is a total order —
/// the minimum is unique, so ANY correct structure reports the same pop
/// sequence and the committed baselines cannot tell them apart. (Empty
/// slots share the one duplicate key, {+inf, seq ~0, slot ~0}; which of
/// them wins an all-empty tournament is deterministic and unobservable —
/// empty() is true either way, and top() is never consulted then.)
class event_scheduler {
 public:
  /// Resets to `n` empty slots and restarts the tiebreak counter. Keeps
  /// backing storage, so a reused scheduler stops allocating after warm-up.
  void reset(std::size_t n) {
    size_ = 1;
    while (size_ < n) size_ <<= 1;
    // Only leaf_ needs clearing: slots never primed must read empty. The
    // loser array and the build workspace are fully overwritten by
    // build(), so they are merely sized here.
    leaf_.assign(size_, kEmpty);
    lkey_.resize(size_);
    wkey_.resize(2 * size_);
    next_seq_ = 0;
    win_key_ = kEmpty;
  }

  /// Stages `pid`'s initial event, assigning the next sequence number —
  /// exactly like the initial pushes on event_queue. Call between reset()
  /// and build(); slots never primed (processes halted before their first
  /// op) stay empty.
  void prime(int pid, double time) {
    leaf_[static_cast<std::size_t>(pid)] =
        encode(time, next_seq_++, static_cast<std::uint32_t>(pid));
  }

  /// Runs the initial tournament over every slot, recording the loser of
  /// each internal match. Must be called once after priming; winner-path
  /// replays keep the tree consistent from then on.
  void build() {
    for (std::size_t i = 0; i < size_; ++i) {
      wkey_[size_ + i] = leaf_[i];
    }
    for (std::size_t i = size_ - 1; i >= 1; --i) {
      const bool r = wkey_[2 * i + 1] < wkey_[2 * i];
      wkey_[i] = r ? wkey_[2 * i + 1] : wkey_[2 * i];
      lkey_[i] = r ? wkey_[2 * i] : wkey_[2 * i + 1];
    }
    win_key_ = wkey_[1];
  }

  /// Reschedules the winner's slot to `time` (its process's next
  /// operation), assigning the next sequence number. Precondition:
  /// !empty().
  void reschedule_top(double time) {
    replay(encode(time, next_seq_++,
                  static_cast<std::uint32_t>(win_key_)));
  }

  /// Drops the winner's pending event (its process halted or decided).
  /// Precondition: !empty().
  void remove_top() { replay(kEmpty); }

  /// True when no slot has a pending event. Precondition: build() ran.
  bool empty() const { return win_key_ == kEmpty; }

  /// The earliest pending event. Precondition: !empty(). The slot stays
  /// scheduled until reschedule_top()/remove_top() — the simulator steps
  /// the winner and then either reschedules it or removes it.
  sim_event top() const {
    return sim_event{
        decode_time(win_key_),
        static_cast<std::uint64_t>(win_key_) >> 32,
        static_cast<int>(static_cast<std::uint32_t>(win_key_))};
  }

 private:
  using u128 = unsigned __int128;

  static u128 encode(double time, std::uint64_t seq, std::uint32_t slot) {
    return (static_cast<u128>(std::bit_cast<std::uint64_t>(time)) << 64) |
           (seq << 32) | slot;
  }
  static double decode_time(u128 k) {
    return std::bit_cast<double>(static_cast<std::uint64_t>(k >> 64));
  }

  /// Later than every real event: +inf time, maximal seq and slot.
  static constexpr u128 kEmpty =
      (static_cast<u128>(0x7FF0000000000000ULL) << 64) | ~std::uint64_t{0};

  /// One tournament level of the winner-path replay: the candidate
  /// (ck_hi:ck_lo) meets the loser stored at internal node `i`; the
  /// smaller key continues up as the new candidate, the larger stays as
  /// the node's loser. The slot index travels inside the key's low bits,
  /// so one 16-byte exchange is the whole level. `lk64` views lkey_ as
  /// u64 pairs (little-endian: element i's low half at lk64[2i], high
  /// half at lk64[2i+1] — the in-memory layout of the u128).
  static inline void level(std::uint64_t* __restrict lk64, std::size_t i,
                           std::uint64_t& ck_lo, std::uint64_t& ck_hi) {
    const std::uint64_t ok_lo = lk64[2 * i];
    const std::uint64_t ok_hi = lk64[2 * i + 1];
#if defined(__GNUC__) && defined(__x86_64__)
    // cmp/sbb computes the 128-bit (ok < ck) into CF, then four cmovs swap
    // candidate and loser when it holds. The serial chain per level is
    // just cmp+sbb+cmov (~3 cycles); GCC compiles the equivalent ternaries
    // (and even the XOR-mask form) into longer chains or, worse, into
    // data-dependent branches that mispredict on random event orders.
    std::uint64_t t0, t1;
    asm("cmpq %[cklo], %[olo]\n\t"
        "movq %[ohi], %[t0]\n\t"
        "sbbq %[ckhi], %[t0]\n\t"
        "movq %[olo], %[t0]\n\t"
        "cmovcq %[cklo], %[t0]\n\t"
        "cmovcq %[olo], %[cklo]\n\t"
        "movq %[ohi], %[t1]\n\t"
        "cmovcq %[ckhi], %[t1]\n\t"
        "cmovcq %[ohi], %[ckhi]\n\t"
        : [t0] "=&r"(t0), [t1] "=&r"(t1),
          [cklo] "+&r"(ck_lo), [ckhi] "+&r"(ck_hi)
        : [olo] "r"(ok_lo), [ohi] "r"(ok_hi)
        : "cc");
    lk64[2 * i] = t0;
    lk64[2 * i + 1] = t1;
#else
    // XOR-mask conditional swap: dk is (old ^ cand) when the swap happens
    // and 0 when it doesn't, so x ^ dk applies or skips the exchange with
    // no data-dependent branch.
    const u128 ok = (static_cast<u128>(ok_hi) << 64) | ok_lo;
    const u128 ck = (static_cast<u128>(ck_hi) << 64) | ck_lo;
    const bool r = ok < ck;
    const u128 m = static_cast<u128>(0) - static_cast<u128>(r);
    const u128 dk = (ok ^ ck) & m;
    const u128 nk = ok ^ dk;
    lk64[2 * i] = static_cast<std::uint64_t>(nk);
    lk64[2 * i + 1] = static_cast<std::uint64_t>(nk >> 64);
    const u128 nc = ck ^ dk;
    ck_lo = static_cast<std::uint64_t>(nc);
    ck_hi = static_cast<std::uint64_t>(nc >> 64);
#endif
  }

  /// Replays the winner's leaf-to-root path with new key `k` (see level()).
  template <int Depth>
  void replay_fixed(u128 k) {
    const auto pid =
        static_cast<std::size_t>(static_cast<std::uint32_t>(win_key_));
    std::uint64_t ck_lo = static_cast<std::uint64_t>(k);
    std::uint64_t ck_hi = static_cast<std::uint64_t>(k >> 64);
    std::uint64_t* __restrict lk64 =
        reinterpret_cast<std::uint64_t*>(lkey_.data());
    std::size_t i = (pid + size_) >> 1;
    for (int d = 0; d < Depth; ++d, i >>= 1) {
      level(lk64, i, ck_lo, ck_hi);
    }
    win_key_ = (static_cast<u128>(ck_hi) << 64) | ck_lo;
  }

  /// Dispatches replay_fixed on the (power-of-two) tree size so the path
  /// loop fully unrolls for every size the benchmarks use.
  void replay(u128 k) {
    switch (size_) {
      case 1: replay_fixed<0>(k); return;
      case 2: replay_fixed<1>(k); return;
      case 4: replay_fixed<2>(k); return;
      case 8: replay_fixed<3>(k); return;
      case 16: replay_fixed<4>(k); return;
      case 32: replay_fixed<5>(k); return;
      case 64: replay_fixed<6>(k); return;
      case 128: replay_fixed<7>(k); return;
      case 256: replay_fixed<8>(k); return;
      case 512: replay_fixed<9>(k); return;
      case 1024: replay_fixed<10>(k); return;
      default: break;
    }
    const auto pid =
        static_cast<std::size_t>(static_cast<std::uint32_t>(win_key_));
    std::uint64_t ck_lo = static_cast<std::uint64_t>(k);
    std::uint64_t ck_hi = static_cast<std::uint64_t>(k >> 64);
    std::uint64_t* lk64 = reinterpret_cast<std::uint64_t*>(lkey_.data());
    for (std::size_t i = (pid + size_) >> 1; i >= 1; i >>= 1) {
      level(lk64, i, ck_lo, ck_hi);
    }
    win_key_ = (static_cast<u128>(ck_hi) << 64) | ck_lo;
  }

  std::size_t size_ = 1;        ///< leaf count, power of two
  std::vector<u128> lkey_;      ///< loser key per internal node (1-based)
  std::vector<u128> leaf_;      ///< staging area for prime()/build()
  std::vector<u128> wkey_;      ///< build() workspace (winner keys)
  u128 win_key_ = kEmpty;
  std::uint64_t next_seq_ = 0;
};

}  // namespace leancon
