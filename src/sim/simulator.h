// Discrete-event interleaving simulator for the noisy-scheduling model.
//
// Every process is a consensus_machine; the simulator maintains the next
// operation time of each process,
//
//   S_ij = Delta_i0 + sum_{k<=j} (Delta_ik + X_ik + H_ik)   (Section 3.1),
//
// pops the earliest pending operation, executes it atomically against shared
// memory (interleaving semantics), feeds the result back, and schedules the
// process's next operation. Random halting failures and adaptive crash
// adversaries remove processes from the race.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/machine.h"
#include "sched/crash_adversary.h"
#include "sched/noisy_params.h"
#include "trace/trace.h"

namespace leancon {

/// Which protocol each simulated process runs.
enum class protocol_kind : std::uint8_t {
  lean,      ///< unbounded lean-consensus (Section 4)
  combined,  ///< lean up to r_max, then backup (Section 8)
  backup     ///< backup protocol standalone (baseline/ablation)
};

std::string_view protocol_name(protocol_kind k);

/// When the simulation stops.
enum class stop_mode : std::uint8_t {
  first_decision,  ///< Figure 1 metric: round of first termination
  all_decided      ///< run until every live process has decided
};

struct sim_config {
  std::vector<int> inputs;  ///< input bit per process (defines n)
  noisy_params sched;       ///< the noisy-scheduling model parameters
  protocol_kind protocol = protocol_kind::lean;
  /// Optional custom machine builder (pid, input, per-process rng). When
  /// set it overrides `protocol`. Custom protocols that reuse the race
  /// spaces with translated indices (e.g. id-consensus) must also set
  /// check_invariants = false, because the lemma checker assumes the
  /// single-instance layout.
  std::function<std::unique_ptr<consensus_machine>(int, int, rng)> factory;
  std::uint64_t r_max = 0;  ///< combined-protocol cutoff; 0 = default_r_max(n)
  double backup_write_prob = 0.0;  ///< 0 = canonical 1/(2n)
  stop_mode stop = stop_mode::all_decided;
  std::uint64_t seed = 1;
  std::uint64_t max_total_ops = 50'000'000;  ///< budget against livelock
  bool check_invariants = true;
  crash_adversary_ptr crashes;  ///< optional adaptive crash adversary
  /// Optional observer invoked after every executed operation (tracing,
  /// visualization). Adds overhead; leave unset for measured runs.
  std::function<void(const trace_event&)> event_hook;
};

/// Per-process outcome.
struct sim_process_result {
  bool decided = false;
  int decision = -1;
  bool halted = false;  ///< random halting failure or adaptive crash
  std::uint64_t ops = 0;
  std::uint64_t round_reached = 1;
  std::uint64_t preference_switches = 0;
};

/// Whole-execution outcome.
struct sim_result {
  bool any_decided = false;
  int decision = -1;
  std::uint64_t first_decision_round = 0;  ///< lean round of earliest decision
  double first_decision_time = 0.0;        ///< simulated clock
  std::uint64_t ops_until_first_decision = 0;
  std::uint64_t last_decision_round = 0;
  bool all_live_decided = false;  ///< every non-halted process decided
  bool budget_exhausted = false;  ///< max_total_ops hit before completion
  std::uint64_t total_ops = 0;
  std::uint64_t max_round_reached = 0;
  std::uint64_t halted_processes = 0;
  std::uint64_t backup_entries = 0;  ///< processes that entered the backup
  std::vector<sim_process_result> processes;
  std::vector<std::string> violations;  ///< safety-lemma violations
};

/// Runs one simulated execution.
sim_result simulate(const sim_config& config);

/// Runs one simulated execution with `seed` in place of config.seed — the
/// per-trial form used by workloads, which would otherwise copy the whole
/// config (inputs vector and all) just to change the seed. Bit-identical to
/// copying the config and setting its seed.
sim_result simulate(const sim_config& config, std::uint64_t seed);

/// Convenience: a half-zeros/half-ones input vector (the Figure 1 workload;
/// inputs alternate so cohort membership is independent of start dither).
std::vector<int> split_inputs(std::size_t n);

/// All-equal inputs (validity / Lemma 3 workloads).
std::vector<int> unanimous_inputs(std::size_t n, int bit);

}  // namespace leancon
