#include "sim/runner.h"

#include <algorithm>

#include "sim/trial_executor.h"

namespace leancon {

void trial_stats::record(const sim_config& base, const sim_result& r) {
  ++trials;
  if (!r.violations.empty()) ++violation_trials;
  if (r.backup_entries > 0) ++backup_trials;

  // Ops-side metrics: every trial counts, decided or not.
  total_ops.add(static_cast<double>(r.total_ops));
  survivors.add(static_cast<double>(r.processes.size() - r.halted_processes));

  double ops_sum = 0.0;
  std::uint64_t max_ops_seen = 0;
  std::uint64_t switches = 0;
  std::uint64_t live = 0;
  for (const auto& p : r.processes) {
    if (p.halted && p.ops == 0) continue;  // never woke up
    ++live;
    ops_sum += static_cast<double>(p.ops);
    max_ops_seen = std::max(max_ops_seen, p.ops);
    switches += p.preference_switches;
  }
  if (live > 0) {
    ops_per_process.add(ops_sum / static_cast<double>(live));
  }
  max_ops.add(static_cast<double>(max_ops_seen));
  pref_switches.add(static_cast<double>(switches));

  // Decision-side metrics: decided trials only.
  if (!r.any_decided) {
    ++undecided_trials;
    return;
  }
  ++decided_trials;
  first_round.add(static_cast<double>(r.first_decision_round));
  first_time.add(r.first_decision_time);
  if (base.stop == stop_mode::all_decided && r.all_live_decided) {
    last_round.add(static_cast<double>(r.last_decision_round));
  }
}

void trial_stats::merge(const trial_stats& other) {
  trials += other.trials;
  decided_trials += other.decided_trials;
  undecided_trials += other.undecided_trials;
  violation_trials += other.violation_trials;
  backup_trials += other.backup_trials;
  first_round.merge(other.first_round);
  last_round.merge(other.last_round);
  first_time.merge(other.first_time);
  ops_per_process.merge(other.ops_per_process);
  max_ops.merge(other.max_ops);
  pref_switches.merge(other.pref_switches);
  total_ops.merge(other.total_ops);
  survivors.merge(other.survivors);
}

trial_stats run_trials(const sim_config& base, std::uint64_t trials) {
  return trial_executor().run(base, trials);
}

}  // namespace leancon
