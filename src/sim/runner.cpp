#include "sim/runner.h"

#include <algorithm>

#include "util/rng.h"

namespace leancon {

trial_stats run_trials(const sim_config& base, std::uint64_t trials) {
  trial_stats stats;
  for (std::uint64_t t = 0; t < trials; ++t) {
    sim_config config = base;
    std::uint64_t mix = base.seed;
    (void)splitmix64_next(mix);
    config.seed = mix + t * 0x9e3779b97f4a7c15ULL + t;

    const sim_result r = simulate(config);
    ++stats.trials;
    if (!r.violations.empty()) ++stats.violation_trials;
    if (r.backup_entries > 0) ++stats.backup_trials;

    if (!r.any_decided) {
      ++stats.undecided_trials;
      continue;
    }
    ++stats.decided_trials;
    stats.first_round.add(static_cast<double>(r.first_decision_round));
    stats.first_time.add(r.first_decision_time);
    stats.total_ops.add(static_cast<double>(r.total_ops));

    if (base.stop == stop_mode::all_decided && r.all_live_decided) {
      stats.last_round.add(static_cast<double>(r.last_decision_round));
    }

    double ops_sum = 0.0;
    std::uint64_t max_ops = 0;
    std::uint64_t switches = 0;
    std::uint64_t live = 0;
    for (const auto& p : r.processes) {
      if (p.halted && p.ops == 0) continue;
      ++live;
      ops_sum += static_cast<double>(p.ops);
      max_ops = std::max(max_ops, p.ops);
      switches += p.preference_switches;
    }
    if (live > 0) {
      stats.ops_per_process.add(ops_sum / static_cast<double>(live));
    }
    stats.max_ops.add(static_cast<double>(max_ops));
    stats.pref_switches.add(static_cast<double>(switches));
  }
  return stats;
}

}  // namespace leancon
