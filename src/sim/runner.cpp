#include "sim/runner.h"

#include <algorithm>
#include <utility>

#include "sim/trial_executor.h"

namespace leancon {

void trial_stats::record(const trial_outcome& outcome) {
  ++trials;
  if (outcome.violation) ++violation_trials;
  if (outcome.backup) ++backup_trials;
  if (outcome.decided) {
    ++decided_trials;
  } else {
    ++undecided_trials;
  }
  metrics.record(outcome.metrics);
}

void trial_stats::record(const sim_config& base, const sim_result& r) {
  record(sim_trial_outcome(base, r));
}

void trial_stats::merge(const trial_stats& other) {
  trials += other.trials;
  decided_trials += other.decided_trials;
  undecided_trials += other.undecided_trials;
  violation_trials += other.violation_trials;
  backup_trials += other.backup_trials;
  metrics.merge(other.metrics);
}

const sim_metric_handles& sim_metric_handles::core() {
  static const sim_metric_handles handles = [] {
    metric_binder bind;
    sim_metric_handles h;
    h.total_ops = bind.sample("total_ops", metric_rollup::mean_and_sum);
    h.survivors = bind.sample("survivors");
    h.ops_per_process = bind.sample("ops_per_process");
    h.max_ops = bind.sample("max_ops");
    h.pref_switches = bind.sample("pref_switches");
    h.round = bind.sample("round", metric_rollup::location);
    h.first_time = bind.sample("first_time");
    h.last_round = bind.sample("last_round");
    return h;
  }();
  return handles;
}

trial_outcome sim_trial_outcome(const sim_config& base, const sim_result& r) {
  const sim_metric_handles& h = sim_metric_handles::core();
  trial_outcome out;
  out.decided = r.any_decided;
  out.violation = !r.violations.empty();
  out.backup = r.backup_entries > 0;

  // Ops-side metrics: every trial counts, decided or not.
  auto& m = out.metrics;
  m.observe(h.total_ops, static_cast<double>(r.total_ops));
  m.observe(h.survivors,
            static_cast<double>(r.processes.size() - r.halted_processes));

  double ops_sum = 0.0;
  std::uint64_t max_ops_seen = 0;
  std::uint64_t switches = 0;
  std::uint64_t live = 0;
  for (const auto& p : r.processes) {
    if (p.halted && p.ops == 0) continue;  // never woke up
    ++live;
    ops_sum += static_cast<double>(p.ops);
    max_ops_seen = std::max(max_ops_seen, p.ops);
    switches += p.preference_switches;
  }
  if (live > 0) {
    m.observe(h.ops_per_process, ops_sum / static_cast<double>(live));
  }
  m.observe(h.max_ops, static_cast<double>(max_ops_seen));
  m.observe(h.pref_switches, static_cast<double>(switches));

  // Decision-side metrics: decided trials only — absent otherwise. Their
  // handle hints only match when every ops-side metric was emitted; on the
  // (rare) live == 0 trials the hints shift and resolution falls back to
  // the name scan, keeping entry order identical to the name-based path.
  if (r.any_decided) {
    m.observe(h.round, static_cast<double>(r.first_decision_round));
    m.observe(h.first_time, r.first_decision_time);
    if (base.stop == stop_mode::all_decided && r.all_live_decided) {
      m.observe(h.last_round, static_cast<double>(r.last_decision_round));
    }
  }
  return out;
}

workload make_sim_workload(
    sim_config base,
    std::function<void(const sim_result&, trial_outcome&)> extra) {
  auto cfg = std::make_shared<const sim_config>(std::move(base));
  workload w;
  w.config = cfg;
  w.run_trial = [cfg, extra = std::move(extra)](std::uint64_t seed) {
    sim_result r;
    if (cfg->crashes) {
      // Crash adversaries are stateful per trial: clone against the trial
      // seed, which needs a mutable config copy.
      sim_config config = *cfg;
      config.seed = seed;
      config.crashes = cfg->crashes->clone(seed);
      r = simulate(config);
    } else {
      // Common case: only the seed varies, so skip the per-trial copy of
      // the config (inputs vector, shared_ptrs, std::functions).
      r = simulate(*cfg, seed);
    }
    trial_outcome out = sim_trial_outcome(*cfg, r);
    if (extra) extra(r, out);
    return out;
  };
  return w;
}

trial_stats run_trials(const sim_config& base, std::uint64_t trials) {
  return trial_executor().run(base, trials);
}

}  // namespace leancon
