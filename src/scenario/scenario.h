// Named, options-constructible experiment presets ("scenarios").
//
// Benches, examples, the sweep driver, and the campaign engine share one
// registry of workloads — the Figure 1 noise families, failure-heavy
// regimes, staggered/random starts, heavy-tail noise, the combined-protocol
// cutoff family, the adversary-delay family, and the custom-backend
// extensions (message-passing/ABD, mutex under noise, hybrid quantum
// scheduling) — so a new workload is one table entry in scenario.cpp
// instead of a new binary. Every scenario is a pure function of (n, seed):
// building the same scenario twice yields identical configs, and the trial
// executor / campaign engine keep results bit-identical for any thread or
// pool count on top of that.
//
// Two preset forms exist. Shared-memory presets provide `build`, a
// sim_config factory consumed by simulate()/trial_executor. Custom-backend
// presets (whose workload runs on a different engine: the ABD message
// simulator, the mutex executor, the hybrid uniprocessor runner) provide
// `run_one`, which executes ONE trial for a given trial seed and adapts the
// backend's outcome into a sim_result so trial_stats aggregation is
// uniform. Exactly one of the two is set per spec. Adapted results report
// decision/ops/time metrics faithfully; lean-round metrics read 0 where the
// backend has no round notion (noted per preset description).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace leancon {

/// Knobs every preset accepts; scenario-specific structure is baked into
/// the preset itself.
struct scenario_params {
  std::uint64_t n = 16;    ///< process count
  std::uint64_t seed = 1;  ///< base seed of the built config
};

/// One registry entry: a stable CLI key, a one-line description, and
/// exactly one of the two workload forms.
struct scenario_spec {
  std::string key;
  std::string description;
  /// Shared-memory form: builds a sim_config for simulate()/trial_executor.
  /// Null for custom-backend presets.
  std::function<sim_config(const scenario_params&)> build;
  /// Custom-backend form: runs one trial with the given trial seed and
  /// returns the adapted outcome. Null for shared-memory presets. Must be
  /// safe to call concurrently (trials are independent given their seed).
  std::function<sim_result(const scenario_params&, std::uint64_t)> run_one;
};

/// All named presets, in display order. Keys are unique.
const std::vector<scenario_spec>& scenario_registry();

/// Looks up a preset by key; nullptr when unknown.
const scenario_spec* find_scenario(const std::string& key);

/// Builds a shared-memory preset's config directly. Throws
/// std::invalid_argument on an unknown key (the message lists the known
/// keys) or on a custom-backend preset (which has no sim_config; run it
/// through run_scenario_trial or the campaign engine).
sim_config make_scenario(const std::string& key,
                         const scenario_params& params);

/// Runs one trial of any preset — shared-memory or custom-backend — with
/// the given trial seed. For shared-memory presets this is
/// simulate(build(params) with the seed swapped in); for custom backends it
/// calls run_one. Throws std::invalid_argument on an unknown key.
sim_result run_scenario_trial(const std::string& key,
                              const scenario_params& params,
                              std::uint64_t seed);

/// Comma-separated registry keys (for --help output).
std::string scenario_keys();

}  // namespace leancon
