// Named, options-constructible experiment presets ("scenarios").
//
// Benches, examples, the sweep driver, and the campaign engine share one
// registry of workloads — the Figure 1 noise families, failure-heavy
// regimes, staggered/random starts, heavy-tail noise, the combined-protocol
// cutoff family, the adversary-delay family, and the native-backend
// presets (message-passing/ABD, mutex under noise, hybrid quantum
// scheduling) — so a new workload is one table entry in scenario.cpp
// instead of a new binary. Every scenario is a pure function of (n, seed):
// building the same scenario twice yields identical workloads, and the
// trial executor / campaign engine keep results bit-identical for any
// thread or pool count on top of that.
//
// ONE workload form. Each spec exposes `make`, which binds
// (params, optional sim_config tweak) into a `workload`
// (sim/runner.h): `run_trial(trial_seed) -> trial_outcome`. Shared-memory
// presets implement it over simulate() and emit the core metric names
// documented on trial_stats; native-backend presets (ABD message passing,
// the mutex executor, the hybrid uniprocessor runner) emit their own
// native metrics — message round-trips, register ops, slow-path
// contention, quantum preemptions — and OMIT the lean-round metrics they
// have no notion of (absent, never zero-filled). A sim_config tweak
// applies to shared-memory workloads at build time; native backends
// reject a non-null tweak with std::invalid_argument instead of silently
// dropping it.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/runner.h"
#include "sim/simulator.h"

namespace leancon {

/// Knobs every preset accepts; scenario-specific structure is baked into
/// the preset itself.
struct scenario_params {
  std::uint64_t n = 16;    ///< process count
  std::uint64_t seed = 1;  ///< base seed of the built workload
};

/// Optional per-cell sim_config adjustment (set a halt probability, swap
/// the adversary, change the stop mode...). Only shared-memory workloads
/// can honor one; native backends fail fast.
using config_tweak = std::function<void(sim_config&)>;

/// One registry entry: a stable CLI key, a one-line description, and THE
/// workload form.
struct scenario_spec {
  std::string key;
  std::string description;
  /// Binds params (and an optional tweak) into a runnable workload.
  /// Shared-memory presets apply the tweak to the built sim_config;
  /// native-backend presets throw std::invalid_argument on a non-null
  /// tweak — no silent drops.
  std::function<workload(const scenario_params&, const config_tweak&)> make;
};

/// All named presets, in display order. Keys are unique.
const std::vector<scenario_spec>& scenario_registry();

/// Looks up a preset by key; nullptr when unknown.
const scenario_spec* find_scenario(const std::string& key);

/// Builds any preset's workload. Throws std::invalid_argument on an
/// unknown key (the message lists the known keys) or on a native-backend
/// preset with a non-null tweak.
workload make_workload(const std::string& key, const scenario_params& params,
                       const config_tweak& tweak = nullptr);

/// Builds a shared-memory preset's sim_config directly (the workload's
/// bound config). Throws std::invalid_argument on an unknown key or on a
/// native-backend preset (which has no sim_config; use make_workload /
/// run_scenario_trial or the campaign engine).
sim_config make_scenario(const std::string& key,
                         const scenario_params& params);

/// Runs one trial of any preset with the given trial seed:
/// make_workload(key, params).run_trial(seed). Throws
/// std::invalid_argument on an unknown key.
trial_outcome run_scenario_trial(const std::string& key,
                                 const scenario_params& params,
                                 std::uint64_t seed);

/// Comma-separated registry keys (for --help output).
std::string scenario_keys();

}  // namespace leancon
