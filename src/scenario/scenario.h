// Named, options-constructible sim_config presets ("scenarios").
//
// Benches, examples, and the sweep driver share one registry of workloads —
// the Figure 1 noise families, failure-heavy regimes, staggered/random
// starts, heavy-tail noise, and the combined-protocol cutoff family — so a
// new workload is one table entry in scenario.cpp instead of a new binary.
// Every scenario is a pure function of (n, seed): building the same scenario
// twice yields identical configs, and the trial executor keeps results
// bit-identical for any thread count on top of that.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/simulator.h"

namespace leancon {

/// Knobs every preset accepts; scenario-specific structure is baked into
/// the preset itself.
struct scenario_params {
  std::uint64_t n = 16;    ///< process count
  std::uint64_t seed = 1;  ///< base seed of the built config
};

/// One registry entry: a stable CLI key, a one-line description, and the
/// config builder.
struct scenario_spec {
  std::string key;
  std::string description;
  std::function<sim_config(const scenario_params&)> build;
};

/// All named presets, in display order. Keys are unique.
const std::vector<scenario_spec>& scenario_registry();

/// Looks up a preset by key; nullptr when unknown.
const scenario_spec* find_scenario(const std::string& key);

/// Builds a preset's config directly. Throws std::invalid_argument on an
/// unknown key (the message lists the known keys).
sim_config make_scenario(const std::string& key,
                         const scenario_params& params);

/// Comma-separated registry keys (for --help output).
std::string scenario_keys();

}  // namespace leancon
