#include "scenario/scenario.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "msg/abd_sim.h"
#include "mutex/fast_mutex.h"
#include "noise/catalog.h"
#include "sched/adversary.h"
#include "sched/crash_adversary.h"
#include "sched/hybrid.h"

namespace leancon {
namespace {

/// Common skeleton: split inputs, Figure 1 scheduling around `noise`, first
/// decision, invariants off (measured workloads; the test suite enforces
/// the lemmas at small scale).
sim_config measured_base(const scenario_params& p, distribution_ptr noise) {
  sim_config config;
  config.inputs = split_inputs(p.n);
  config.sched = figure1_params(std::move(noise));
  config.stop = stop_mode::first_decision;
  config.check_invariants = false;
  config.seed = p.seed;
  return config;
}

// --- Custom-backend trial adapters -----------------------------------------
//
// Each runs one trial of a non-shared-memory engine and maps its outcome
// onto sim_result so trial_stats aggregation is uniform. Decision, ops,
// time, and violation fields are mapped faithfully; round fields stay 0
// where the backend has no lean-round notion.

sim_result run_mp_abd_trial(const scenario_params& p, std::uint64_t seed) {
  mp_config config;
  config.inputs = split_inputs(p.n);
  config.net = figure1_params(make_exponential(1.0));
  config.protocol = protocol_kind::lean;
  config.seed = seed;
  const mp_result mp = run_message_passing(config);

  sim_result r;
  r.decision = mp.decision;
  r.all_live_decided = mp.all_live_decided;
  r.budget_exhausted = mp.budget_exhausted;
  r.first_decision_time = mp.first_decision_time;
  r.total_ops = mp.total_messages;
  r.processes.resize(mp.processes.size());
  for (std::size_t i = 0; i < mp.processes.size(); ++i) {
    const auto& src = mp.processes[i];
    r.any_decided = r.any_decided || src.decided;
    r.processes[i].decided = src.decided;
    r.processes[i].decision = src.decision;
    r.processes[i].halted = src.crashed;
    r.processes[i].ops = src.register_ops;
    if (src.crashed) ++r.halted_processes;
  }
  return r;
}

sim_result run_mutex_trial(const scenario_params& p, std::uint64_t seed) {
  mutex_config config;
  config.processes = p.n;
  config.entries_per_process = 4;
  config.sched = figure1_params(make_exponential(1.0));
  config.seed = seed;
  const mutex_result mx = run_mutex(config);

  sim_result r;
  // "Deciding" here means the workload completed: every process performed
  // all its critical sections.
  r.any_decided = mx.all_finished;
  r.all_live_decided = mx.all_finished;
  r.decision = mx.all_finished ? 0 : -1;
  r.budget_exhausted = !mx.all_finished;
  r.first_decision_time = mx.finish_time;
  r.total_ops = mx.total_ops;
  if (mx.overlap_violations > 0) {
    r.violations.push_back("mutex overlap violations: " +
                           std::to_string(mx.overlap_violations));
  }
  if (mx.canary_violations > 0) {
    r.violations.push_back("mutex canary violations: " +
                           std::to_string(mx.canary_violations));
  }
  r.processes.resize(mx.ops_per_process.size());
  for (std::size_t i = 0; i < mx.ops_per_process.size(); ++i) {
    r.processes[i].decided = mx.all_finished;
    r.processes[i].decision = r.decision;
    r.processes[i].ops = mx.ops_per_process[i];
  }
  return r;
}

sim_result run_hybrid_trial(const scenario_params& p, std::uint64_t seed) {
  hybrid_config config;
  config.inputs = split_inputs(p.n);
  // Two priority bands so both preemption rules (higher-priority any time,
  // same-priority at quantum boundaries) are exercised.
  config.priorities.resize(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    config.priorities[i] = static_cast<int>(i % 2);
  }
  config.quantum = 8;  // Theorem 14's threshold
  // "No requirement that a process start at the beginning of a quantum":
  // the first-dispatched process has part of its quantum pre-consumed.
  config.initial_quantum_used.assign(p.n, seed % config.quantum);
  const auto adversary = make_random_preemption(0.3, seed);
  const hybrid_result hy = run_hybrid(config, *adversary);

  sim_result r;
  r.any_decided = hy.all_decided;
  r.all_live_decided = hy.all_decided;
  r.decision = hy.decision;
  r.budget_exhausted = !hy.all_decided;
  r.total_ops = hy.total_ops;
  r.violations = hy.violations;
  r.processes.resize(hy.ops_per_process.size());
  for (std::size_t i = 0; i < hy.ops_per_process.size(); ++i) {
    r.processes[i].decided = hy.all_decided;
    r.processes[i].decision = hy.decision;
    r.processes[i].ops = hy.ops_per_process[i];
  }
  return r;
}

std::vector<scenario_spec> build_registry() {
  std::vector<scenario_spec> reg;

  // Figure 1, one scenario per noise family of the paper's Section 9.
  for (const auto& entry : figure1_catalog()) {
    reg.push_back(
        {"figure1-" + entry.key,
         "Figure 1 workload under " + entry.dist->name() + " noise",
         [dist = entry.dist](const scenario_params& p) {
           return measured_base(p, dist);
         }});
  }

  reg.push_back(
      {"crash-heavy",
       "kill-poised adversary with budget n/2 (Section 10 decapitation)",
       [](const scenario_params& p) {
         sim_config config = measured_base(p, make_exponential(1.0));
         config.crashes = make_kill_poised(p.n / 2);
         return config;
       }});

  reg.push_back(
      {"staggered-starts",
       "rolling start: process i wakes at i * 0.5 (exp(1) noise)",
       [](const scenario_params& p) {
         sim_config config = measured_base(p, make_exponential(1.0));
         config.sched.starts = start_mode::staggered;
         config.sched.stagger_step = 0.5;
         return config;
       }});

  reg.push_back(
      {"random-starts",
       "starts uniform over a window of width 0.5 * n (exp(1) noise)",
       [](const scenario_params& p) {
         sim_config config = measured_base(p, make_exponential(1.0));
         config.sched.starts = start_mode::random;
         config.sched.stagger_step = 0.5;
         return config;
       }});

  reg.push_back(
      {"heavy-tail",
       "Pareto(0.5, 1.5) interarrival noise: heavy tail, finite mean",
       [](const scenario_params& p) {
         return measured_base(p, make_pareto(0.5, 1.5));
       }});

  // Combined-protocol cutoff family (Theorem 15): from a punishingly small
  // r_max (backup nearly always runs) to the default Theta(log^2 n).
  const struct {
    const char* key;
    const char* description;
    std::uint64_t r_max;
  } cutoffs[] = {
      {"combined-cutoff-1", "combined protocol, r_max = 1 (backup-heavy)", 1},
      {"combined-cutoff-4", "combined protocol, r_max = 4", 4},
      {"combined-default",
       "combined protocol, default r_max = Theta(log^2 n)", 0},
  };
  for (const auto& c : cutoffs) {
    reg.push_back({c.key, c.description,
                   [r_max = c.r_max](const scenario_params& p) {
                     sim_config config =
                         measured_base(p, make_exponential(1.0));
                     config.protocol = protocol_kind::combined;
                     config.r_max = r_max;
                     config.stop = stop_mode::all_decided;
                     return config;
                   }});
  }

  // Adversary-delay family: Figure 1 noise with a non-trivial oblivious
  // base-delay schedule Delta_ij on top (Theorem 12 claims the O(log n)
  // bound for ANY such schedule with Delta_ij <= M).
  const struct {
    const char* key;
    const char* description;
    delay_adversary_ptr (*make)();
  } delays[] = {
      {"adv-pack",
       "pack adversary, M = 2 (anti-race bunching; hardest in ablations)",
       [] { return make_pack_delays(2.0); }},
      {"adv-burst", "burst adversary: a full M = 4 stall every 16 ops",
       [] { return make_burst_delays(4.0, 16); }},
      {"adv-random", "oblivious pseudo-random delays in [0, 2]",
       [] { return make_random_bounded_delays(2.0, 0x5eedULL); }},
  };
  for (const auto& d : delays) {
    reg.push_back({d.key, d.description,
                   [make = d.make](const scenario_params& p) {
                     sim_config config =
                         measured_base(p, make_exponential(1.0));
                     config.sched.adversary = make();
                     return config;
                   }});
  }

  // Custom-backend presets: these workloads run on their own engines, so
  // they provide run_one (trial seed -> adapted sim_result) instead of a
  // sim_config builder.
  scenario_spec mp;
  mp.key = "mp-abd";
  mp.description =
      "message passing: lean-consensus on ABD-emulated registers, noisy "
      "per-message delays (rounds read 0; see ops = messages, first_time)";
  mp.run_one = [](const scenario_params& p, std::uint64_t seed) {
    return run_mp_abd_trial(p, seed);
  };
  reg.push_back(std::move(mp));

  scenario_spec mutex;
  mutex.key = "mutex-noise";
  mutex.description =
      "Lamport fast mutex under noisy scheduling, 4 entries/process "
      "(decided = all finished; rounds read 0, violations must stay 0)";
  mutex.run_one = [](const scenario_params& p, std::uint64_t seed) {
    return run_mutex_trial(p, seed);
  };
  reg.push_back(std::move(mutex));

  scenario_spec hybrid;
  hybrid.key = "hybrid-quantum";
  hybrid.description =
      "hybrid quantum/priority uniprocessor, quantum 8, random preemption "
      "(Theorem 14: max_ops <= 12; rounds read 0)";
  hybrid.run_one = [](const scenario_params& p, std::uint64_t seed) {
    return run_hybrid_trial(p, seed);
  };
  reg.push_back(std::move(hybrid));

  return reg;
}

}  // namespace

const std::vector<scenario_spec>& scenario_registry() {
  static const std::vector<scenario_spec> registry = build_registry();
  return registry;
}

const scenario_spec* find_scenario(const std::string& key) {
  for (const auto& spec : scenario_registry()) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

sim_config make_scenario(const std::string& key,
                         const scenario_params& params) {
  const scenario_spec* spec = find_scenario(key);
  if (spec == nullptr) {
    throw std::invalid_argument("unknown scenario \"" + key +
                                "\"; known: " + scenario_keys());
  }
  if (!spec->build) {
    throw std::invalid_argument(
        "scenario \"" + key +
        "\" runs on a custom backend and has no sim_config; use "
        "run_scenario_trial or the campaign engine");
  }
  return spec->build(params);
}

sim_result run_scenario_trial(const std::string& key,
                              const scenario_params& params,
                              std::uint64_t seed) {
  const scenario_spec* spec = find_scenario(key);
  if (spec == nullptr) {
    throw std::invalid_argument("unknown scenario \"" + key +
                                "\"; known: " + scenario_keys());
  }
  if (spec->run_one) return spec->run_one(params, seed);
  sim_config config = spec->build(params);
  config.seed = seed;
  if (config.crashes) config.crashes = config.crashes->clone(seed);
  return simulate(config);
}

std::string scenario_keys() {
  std::ostringstream os;
  bool first = true;
  for (const auto& spec : scenario_registry()) {
    if (!first) os << ",";
    first = false;
    os << spec.key;
  }
  return os.str();
}

}  // namespace leancon
