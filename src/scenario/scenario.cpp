#include "scenario/scenario.h"

#include <sstream>
#include <stdexcept>

#include "noise/catalog.h"
#include "sched/crash_adversary.h"

namespace leancon {
namespace {

/// Common skeleton: split inputs, Figure 1 scheduling around `noise`, first
/// decision, invariants off (measured workloads; the test suite enforces
/// the lemmas at small scale).
sim_config measured_base(const scenario_params& p, distribution_ptr noise) {
  sim_config config;
  config.inputs = split_inputs(p.n);
  config.sched = figure1_params(std::move(noise));
  config.stop = stop_mode::first_decision;
  config.check_invariants = false;
  config.seed = p.seed;
  return config;
}

std::vector<scenario_spec> build_registry() {
  std::vector<scenario_spec> reg;

  // Figure 1, one scenario per noise family of the paper's Section 9.
  for (const auto& entry : figure1_catalog()) {
    reg.push_back(
        {"figure1-" + entry.key,
         "Figure 1 workload under " + entry.dist->name() + " noise",
         [dist = entry.dist](const scenario_params& p) {
           return measured_base(p, dist);
         }});
  }

  reg.push_back(
      {"crash-heavy",
       "kill-poised adversary with budget n/2 (Section 10 decapitation)",
       [](const scenario_params& p) {
         sim_config config = measured_base(p, make_exponential(1.0));
         config.crashes = make_kill_poised(p.n / 2);
         return config;
       }});

  reg.push_back(
      {"staggered-starts",
       "rolling start: process i wakes at i * 0.5 (exp(1) noise)",
       [](const scenario_params& p) {
         sim_config config = measured_base(p, make_exponential(1.0));
         config.sched.starts = start_mode::staggered;
         config.sched.stagger_step = 0.5;
         return config;
       }});

  reg.push_back(
      {"random-starts",
       "starts uniform over a window of width 0.5 * n (exp(1) noise)",
       [](const scenario_params& p) {
         sim_config config = measured_base(p, make_exponential(1.0));
         config.sched.starts = start_mode::random;
         config.sched.stagger_step = 0.5;
         return config;
       }});

  reg.push_back(
      {"heavy-tail",
       "Pareto(0.5, 1.5) interarrival noise: heavy tail, finite mean",
       [](const scenario_params& p) {
         return measured_base(p, make_pareto(0.5, 1.5));
       }});

  // Combined-protocol cutoff family (Theorem 15): from a punishingly small
  // r_max (backup nearly always runs) to the default Theta(log^2 n).
  const struct {
    const char* key;
    const char* description;
    std::uint64_t r_max;
  } cutoffs[] = {
      {"combined-cutoff-1", "combined protocol, r_max = 1 (backup-heavy)", 1},
      {"combined-cutoff-4", "combined protocol, r_max = 4", 4},
      {"combined-default",
       "combined protocol, default r_max = Theta(log^2 n)", 0},
  };
  for (const auto& c : cutoffs) {
    reg.push_back({c.key, c.description,
                   [r_max = c.r_max](const scenario_params& p) {
                     sim_config config =
                         measured_base(p, make_exponential(1.0));
                     config.protocol = protocol_kind::combined;
                     config.r_max = r_max;
                     config.stop = stop_mode::all_decided;
                     return config;
                   }});
  }

  return reg;
}

}  // namespace

const std::vector<scenario_spec>& scenario_registry() {
  static const std::vector<scenario_spec> registry = build_registry();
  return registry;
}

const scenario_spec* find_scenario(const std::string& key) {
  for (const auto& spec : scenario_registry()) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

sim_config make_scenario(const std::string& key,
                         const scenario_params& params) {
  const scenario_spec* spec = find_scenario(key);
  if (spec == nullptr) {
    throw std::invalid_argument("unknown scenario \"" + key +
                                "\"; known: " + scenario_keys());
  }
  return spec->build(params);
}

std::string scenario_keys() {
  std::ostringstream os;
  bool first = true;
  for (const auto& spec : scenario_registry()) {
    if (!first) os << ",";
    first = false;
    os << spec.key;
  }
  return os.str();
}

}  // namespace leancon
