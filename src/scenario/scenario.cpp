#include "scenario/scenario.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "check/presets.h"
#include "msg/abd_sim.h"
#include "mutex/fast_mutex.h"
#include "noise/catalog.h"
#include "sched/adversary.h"
#include "sched/crash_adversary.h"
#include "sched/hybrid.h"
#include "util/rng.h"

namespace leancon {
namespace {

/// Common skeleton: split inputs, Figure 1 scheduling around `noise`, first
/// decision, invariants off (measured workloads; the test suite enforces
/// the lemmas at small scale).
sim_config measured_base(const scenario_params& p, distribution_ptr noise) {
  sim_config config;
  config.inputs = split_inputs(p.n);
  config.sched = figure1_params(std::move(noise));
  config.stop = stop_mode::first_decision;
  config.check_invariants = false;
  config.seed = p.seed;
  return config;
}

/// Wraps a sim_config builder as the unified workload form: the tweak (if
/// any) applies to the built config, and `extra` lets a preset observe
/// additional metrics off the raw sim_result (after the core names).
scenario_spec sim_spec(
    std::string key, std::string description,
    std::function<sim_config(const scenario_params&)> build,
    std::function<void(const sim_result&, trial_outcome&)> extra = nullptr) {
  scenario_spec spec;
  spec.key = std::move(key);
  spec.description = std::move(description);
  spec.make = [build = std::move(build), extra = std::move(extra)](
                  const scenario_params& p, const config_tweak& tweak) {
    sim_config config = build(p);
    if (tweak) tweak(config);
    return make_sim_workload(std::move(config), extra);
  };
  return spec;
}

/// Wraps a native-backend trial function as the unified workload form.
/// Native backends have no sim_config, so a non-null tweak fails fast
/// instead of being silently dropped.
scenario_spec native_spec(
    std::string key, std::string description,
    std::function<trial_outcome(const scenario_params&, std::uint64_t)> run) {
  scenario_spec spec;
  spec.key = key;
  spec.description = std::move(description);
  spec.make = [key = std::move(key), run = std::move(run)](
                  const scenario_params& p, const config_tweak& tweak) {
    if (tweak) {
      throw std::invalid_argument(
          "scenario \"" + key +
          "\" runs on a native backend and has no sim_config to tweak; "
          "drop the tweak or target a shared-memory scenario");
    }
    workload w;
    w.run_trial = [run, p](std::uint64_t seed) { return run(p, seed); };
    return w;
  };
  return spec;
}

// --- Native-backend workloads ----------------------------------------------
//
// Each runs one trial of a non-shared-memory engine and reports the
// engine's NATIVE metrics (message round-trips, register ops, slow-path
// contention, quantum preemptions). Lean-round metrics are omitted — the
// backends have no round notion, and absent is not zero.

trial_outcome run_mp_abd_trial(const scenario_params& p, std::uint64_t seed,
                               std::uint64_t crashes = 0) {
  mp_config config;
  config.inputs = split_inputs(p.n);
  config.net = figure1_params(make_exponential(1.0));
  config.protocol = protocol_kind::lean;
  config.seed = seed;
  // ABD needs a live majority: cap at a strict minority of n so every
  // (n, seed) is legal for any preset of the family.
  config.crashes = p.n > 0 ? std::min(crashes, (p.n - 1) / 2) : 0;
  const mp_result mp = run_message_passing(config);

  trial_outcome out;
  // The workload's success notion is the protocol's: EVERY live process
  // decided (a crashed process owes nothing). Any-decided trials that
  // exhaust the budget before the stragglers finish count as failures,
  // exactly as the pre-port bench counted them.
  out.decided = mp.all_live_decided;
  std::uint64_t register_ops = 0;
  std::uint64_t live_register_ops = 0;
  std::uint64_t crashed = 0;
  int decision = -1;
  for (const auto& proc : mp.processes) {
    register_ops += proc.register_ops;
    if (proc.crashed) {
      ++crashed;
    } else {
      live_register_ops += proc.register_ops;
    }
    if (proc.decided) {
      // Agreement: every decided process (crashed-after-deciding included)
      // reports the same value.
      if (decision == -1) decision = proc.decision;
      if (proc.decision != decision) out.violation = true;
      // Validity: the value must be some process's input.
      bool is_input = false;
      for (const int input : config.inputs) {
        is_input = is_input || input == proc.decision;
      }
      if (!is_input) out.violation = true;
    }
  }

  // Cost-side metrics follow the library's every-trial convention (see
  // trial_stats): budget-truncated trials still spent their messages and
  // register operations, and dropping them would bias cost means low
  // exactly when the run is hardest. (The pre-port bench averaged these
  // over decided trials only — a deliberate fix, not drift; decision-side
  // metrics below stay decided-only.)
  auto& m = out.metrics;
  m.observe("messages", static_cast<double>(mp.total_messages),
            metric_rollup::mean_and_sum);
  m.observe("register_ops", static_cast<double>(register_ops));
  if (register_ops > 0) {
    // ABD cost of one emulated register operation: two majority exchanges,
    // so this sits near 4 * (majority size) messages per op.
    m.observe("msgs_per_reg_op", static_cast<double>(mp.total_messages) /
                                     static_cast<double>(register_ops));
  }
  const std::uint64_t live = mp.processes.size() - crashed;
  m.observe("survivors", static_cast<double>(live));
  if (live > 0) {
    // Per-LIVE-process cost, the bench's historical reg-ops/proc column
    // (crashed processes stop mid-run and would bias the mean low).
    m.observe("reg_ops_per_proc", static_cast<double>(live_register_ops) /
                                      static_cast<double>(live));
  }
  if (out.decided) {
    m.observe("first_time", mp.first_decision_time);
    // When the LAST live process decided — the bench's decision-time
    // column (the protocol is only done once everyone is).
    m.observe("last_time", mp.last_decision_time);
  }
  return out;
}

trial_outcome run_mutex_trial(const scenario_params& p, std::uint64_t seed) {
  mutex_config config;
  config.processes = p.n;
  config.entries_per_process = 4;
  config.sched = figure1_params(make_exponential(1.0));
  config.seed = seed;
  const mutex_result mx = run_mutex(config);

  trial_outcome out;
  // "Deciding" here means the workload completed: every process performed
  // all its critical sections.
  out.decided = mx.all_finished;
  out.violation = mx.overlap_violations > 0 || mx.canary_violations > 0;

  auto& m = out.metrics;
  m.observe("total_ops", static_cast<double>(mx.total_ops),
            metric_rollup::mean_and_sum);
  m.observe("entries", static_cast<double>(mx.total_entries));
  // Contention-window metrics: entries that left Lamport's fast path
  // observed another process inside the gate-to-release window. Observed
  // on every trial with entries (a COMPLETED entry is a valid observation
  // even when the op budget later aborted the run — the every-trial
  // convention of trial_stats); the per-entry cost metrics below are
  // finished-run-only because an aborted attempt's partial ops would
  // distort them.
  m.observe("slow_path_entries",
            static_cast<double>(mx.total_entries - mx.fast_path_entries));
  if (mx.total_entries > 0) {
    m.observe("fast_path_frac", static_cast<double>(mx.fast_path_entries) /
                                    static_cast<double>(mx.total_entries));
  }
  if (p.n > 0) {
    m.observe("ops_per_process", static_cast<double>(mx.total_ops) /
                                     static_cast<double>(p.n));
  }
  if (mx.all_finished) m.observe("finish_time", mx.finish_time);
  // Per-entry costs, observed on completed runs only (an aborted run's
  // partial entries would bias them): the mutex bench's historical
  // ops/entry and sim-time/entry columns.
  if (mx.all_finished && mx.total_entries > 0) {
    m.observe("ops_per_entry", static_cast<double>(mx.total_ops) /
                                   static_cast<double>(mx.total_entries));
    m.observe("time_per_entry",
              mx.finish_time / static_cast<double>(mx.total_entries));
  }
  return out;
}

trial_outcome run_hybrid_trial(const scenario_params& p, std::uint64_t seed) {
  hybrid_config config;
  config.inputs = split_inputs(p.n);
  // Two priority bands so both preemption rules (higher-priority any time,
  // same-priority at quantum boundaries) are exercised.
  config.priorities.resize(p.n);
  for (std::size_t i = 0; i < p.n; ++i) {
    config.priorities[i] = static_cast<int>(i % 2);
  }
  config.quantum = 8;  // Theorem 14's threshold
  // "No requirement that a process start at the beginning of a quantum":
  // the first-dispatched process has part of its quantum pre-consumed.
  config.initial_quantum_used.assign(p.n, seed % config.quantum);
  const auto adversary = make_random_preemption(0.3, seed);
  const hybrid_result hy = run_hybrid(config, *adversary);

  trial_outcome out;
  out.decided = hy.all_decided;
  out.violation = !hy.violations.empty();

  auto& m = out.metrics;
  m.observe("total_ops", static_cast<double>(hy.total_ops),
            metric_rollup::mean_and_sum);
  // Theorem 14's headline: max ops any process needs before deciding.
  m.observe("max_ops", static_cast<double>(hy.max_ops_per_process));
  m.observe("preemptions", static_cast<double>(hy.preemptions));
  m.observe("dispatches", static_cast<double>(hy.dispatches));
  if (p.n > 0) {
    m.observe("ops_per_process", static_cast<double>(hy.total_ops) /
                                     static_cast<double>(p.n));
  }
  return out;
}

/// One seed-sampled execution of the hybrid quantum/priority model at a
/// given quantum: the trial seed draws the priority layout (flat / all
/// distinct / paired bands), the initial mid-quantum offset, and the
/// preemption adversary — including the deterministic worst-case strategies
/// — so a cell of trials covers the legality space the quantum_hybrid
/// bench used to enumerate. Theorem 14's bound (quantum >= 8 => max_ops <=
/// 12) must hold for EVERY draw; below quantum 8 some draws (round-robin
/// lockstep at the right offset) livelock until the op budget.
trial_outcome run_hybrid_sweep_trial(const scenario_params& p,
                                     std::uint64_t seed,
                                     std::uint64_t quantum) {
  rng gen(seed, quantum);
  hybrid_config config;
  config.inputs = split_inputs(p.n);
  config.priorities.resize(p.n);
  const std::uint64_t layout = gen.below(3);
  for (std::size_t i = 0; i < p.n; ++i) {
    switch (layout) {
      case 0: config.priorities[i] = 0; break;
      case 1: config.priorities[i] = static_cast<int>(i); break;
      default: config.priorities[i] = static_cast<int>(i / 2);
    }
  }
  config.quantum = quantum;
  config.initial_quantum_used.assign(p.n, gen.below(quantum + 1));
  config.max_total_ops = 20000;  // bounds livelocked schedules
  preemption_adversary_ptr adversary;
  switch (gen.below(4)) {
    case 0: adversary = make_run_to_completion(); break;
    case 1: adversary = make_round_robin(); break;
    case 2: adversary = make_preempt_before_write(); break;
    default: adversary = make_random_preemption(0.4, gen.next());
  }
  const hybrid_result hy = run_hybrid(config, *adversary);

  trial_outcome out;
  out.decided = hy.all_decided;
  out.violation = !hy.violations.empty();

  auto& m = out.metrics;
  m.observe("total_ops", static_cast<double>(hy.total_ops),
            metric_rollup::mean_and_sum);
  // Theorem 14's headline is a WORST case, so the location rollup carries
  // max_ops_max through to reports (unlike hybrid-quantum's mean).
  m.observe("max_ops", static_cast<double>(hy.max_ops_per_process),
            metric_rollup::location);
  m.observe("preemptions", static_cast<double>(hy.preemptions));
  m.observe("dispatches", static_cast<double>(hy.dispatches));
  if (p.n > 0) {
    m.observe("ops_per_process", static_cast<double>(hy.total_ops) /
                                     static_cast<double>(p.n));
  }
  return out;
}

std::vector<scenario_spec> build_registry() {
  std::vector<scenario_spec> reg;

  // Figure 1, one scenario per noise family of the paper's Section 9.
  for (const auto& entry : figure1_catalog()) {
    reg.push_back(sim_spec(
        "figure1-" + entry.key,
        "Figure 1 workload under " + entry.dist->name() + " noise",
        [dist = entry.dist](const scenario_params& p) {
          return measured_base(p, dist);
        }));
  }

  reg.push_back(sim_spec(
      "crash-heavy",
      "kill-poised adversary with budget n/2 (Section 10 decapitation)",
      [](const scenario_params& p) {
        sim_config config = measured_base(p, make_exponential(1.0));
        config.crashes = make_kill_poised(p.n / 2);
        return config;
      }));

  reg.push_back(sim_spec(
      "staggered-starts",
      "rolling start: process i wakes at i * 0.5 (exp(1) noise)",
      [](const scenario_params& p) {
        sim_config config = measured_base(p, make_exponential(1.0));
        config.sched.starts = start_mode::staggered;
        config.sched.stagger_step = 0.5;
        return config;
      }));

  reg.push_back(sim_spec(
      "random-starts",
      "starts uniform over a window of width 0.5 * n (exp(1) noise)",
      [](const scenario_params& p) {
        sim_config config = measured_base(p, make_exponential(1.0));
        config.sched.starts = start_mode::random;
        config.sched.stagger_step = 0.5;
        return config;
      }));

  reg.push_back(sim_spec(
      "heavy-tail", "Pareto(0.5, 1.5) interarrival noise: heavy tail, finite mean",
      [](const scenario_params& p) {
        return measured_base(p, make_pareto(0.5, 1.5));
      }));

  // Combined-protocol cutoff family (Theorem 15): from a punishingly small
  // r_max (backup nearly always runs) to the default Theta(log^2 n).
  const struct {
    const char* key;
    const char* description;
    std::uint64_t r_max;
  } cutoffs[] = {
      {"combined-cutoff-1", "combined protocol, r_max = 1 (backup-heavy)", 1},
      {"combined-cutoff-4", "combined protocol, r_max = 4", 4},
      {"combined-default",
       "combined protocol, default r_max = Theta(log^2 n)", 0},
  };
  for (const auto& c : cutoffs) {
    reg.push_back(sim_spec(c.key, c.description,
                           [r_max = c.r_max](const scenario_params& p) {
                             sim_config config =
                                 measured_base(p, make_exponential(1.0));
                             config.protocol = protocol_kind::combined;
                             config.r_max = r_max;
                             config.stop = stop_mode::all_decided;
                             return config;
                           }));
  }

  // Adversary-delay family: Figure 1 noise with a non-trivial oblivious
  // base-delay schedule Delta_ij on top (Theorem 12 claims the O(log n)
  // bound for ANY such schedule with Delta_ij <= M). These also observe
  // "ops_to_first" — the operation count the schedule forces before the
  // first decision — as an extra adversary-facing metric.
  const auto adversary_extra = [](const sim_result& r, trial_outcome& out) {
    if (r.any_decided) {
      out.metrics.observe("ops_to_first",
                          static_cast<double>(r.ops_until_first_decision));
    }
  };
  const struct {
    const char* key;
    const char* description;
    delay_adversary_ptr (*make)();
  } delays[] = {
      {"adv-pack",
       "pack adversary, M = 2 (anti-race bunching; hardest in ablations)",
       [] { return make_pack_delays(2.0); }},
      {"adv-burst", "burst adversary: a full M = 4 stall every 16 ops",
       [] { return make_burst_delays(4.0, 16); }},
      {"adv-random", "oblivious pseudo-random delays in [0, 2]",
       [] { return make_random_bounded_delays(2.0, 0x5eedULL); }},
  };
  for (const auto& d : delays) {
    reg.push_back(sim_spec(d.key, d.description,
                           [make = d.make](const scenario_params& p) {
                             sim_config config =
                                 measured_base(p, make_exponential(1.0));
                             config.sched.adversary = make();
                             return config;
                           },
                           adversary_extra));
  }

  // Native-backend presets: these workloads run on their own engines and
  // report their engines' native metrics (no lean-round metrics — absent,
  // not zero).
  reg.push_back(native_spec(
      "mp-abd",
      "message passing: lean-consensus on ABD-emulated registers, noisy "
      "per-message delays (native: messages, register_ops, msgs_per_reg_op)",
      [](const scenario_params& p, std::uint64_t seed) {
        return run_mp_abd_trial(p, seed);
      }));

  // Crash-tolerance family: the same ABD substrate with c adversarially
  // crashed processes (capped at a strict minority so majorities form).
  for (const std::uint64_t c : {1, 2, 3}) {
    reg.push_back(native_spec(
        "mp-abd-crash" + std::to_string(c),
        "mp-abd with " + std::to_string(c) +
            " mid-run crash(es), capped at a strict minority of n",
        [c](const scenario_params& p, std::uint64_t seed) {
          return run_mp_abd_trial(p, seed, c);
        }));
  }

  reg.push_back(native_spec(
      "mutex-noise",
      "Lamport fast mutex under noisy scheduling, 4 entries/process "
      "(native: entries, slow_path_entries, fast_path_frac, finish_time)",
      run_mutex_trial));

  reg.push_back(native_spec(
      "hybrid-quantum",
      "hybrid quantum/priority uniprocessor, quantum 8, random preemption "
      "(Theorem 14: max_ops <= 12; native: preemptions, dispatches)",
      run_hybrid_trial));

  // Quantum-sweep family (Theorem 14's x axis): one preset per quantum,
  // each trial seed-sampling layout x offset x preemption adversary. The
  // quantum_hybrid bench runs these as a campaign grid.
  for (std::uint64_t quantum = 2; quantum <= 16; ++quantum) {
    reg.push_back(native_spec(
        "hybrid-q" + std::to_string(quantum),
        "hybrid uniprocessor at quantum " + std::to_string(quantum) +
            ", seed-sampled layout/offset/adversary (Theorem 14 bound " +
            std::string(quantum >= 8 ? "applies: max_ops <= 12)"
                                     : "not yet in force)"),
        [quantum](const scenario_params& p, std::uint64_t seed) {
          return run_hybrid_sweep_trial(p, seed, quantum);
        }));
  }

  // Exhaustive model-checking presets (src/check/): each trial explores
  // EVERY schedule of a small instance and reports structural exploration
  // counts. The process count is baked into the preset key; params.n is
  // ignored (exhaustive exploration is only tractable at the baked-in n).
  for (const auto& preset : check::check_presets()) {
    reg.push_back(native_spec(
        preset.key, preset.description,
        [preset = &preset](const scenario_params&, std::uint64_t seed) {
          return check::run_check_trial(*preset, seed);
        }));
  }

  return reg;
}

}  // namespace

const std::vector<scenario_spec>& scenario_registry() {
  static const std::vector<scenario_spec> registry = build_registry();
  return registry;
}

const scenario_spec* find_scenario(const std::string& key) {
  for (const auto& spec : scenario_registry()) {
    if (spec.key == key) return &spec;
  }
  return nullptr;
}

workload make_workload(const std::string& key, const scenario_params& params,
                       const config_tweak& tweak) {
  const scenario_spec* spec = find_scenario(key);
  if (spec == nullptr) {
    throw std::invalid_argument("unknown scenario \"" + key +
                                "\"; known: " + scenario_keys());
  }
  return spec->make(params, tweak);
}

sim_config make_scenario(const std::string& key,
                         const scenario_params& params) {
  const workload w = make_workload(key, params);
  if (!w.config) {
    throw std::invalid_argument(
        "scenario \"" + key +
        "\" runs on a native backend and has no sim_config; use "
        "make_workload/run_scenario_trial or the campaign engine");
  }
  return *w.config;
}

trial_outcome run_scenario_trial(const std::string& key,
                                 const scenario_params& params,
                                 std::uint64_t seed) {
  return make_workload(key, params).run_trial(seed);
}

std::string scenario_keys() {
  std::ostringstream os;
  bool first = true;
  for (const auto& spec : scenario_registry()) {
    if (!first) os << ",";
    first = false;
    os << spec.key;
  }
  return os.str();
}

}  // namespace leancon
