// Interarrival/noise distributions for the noisy-scheduling model (paper
// Section 3.1). The adversary picks a common distribution F of non-negative
// random delays X_ij added to each operation; the only restrictions the paper
// imposes are non-negativity and not being concentrated on a point.
//
// This module provides:
//  * a type-erased `distribution` interface,
//  * every distribution used in the paper's Figure 1 simulation (Section 9),
//  * the pathological heavy-tail distribution of Theorem 1,
//  * the two-point {1, 2} distribution of the Theorem 13 lower bound,
//  * a handful of extras (pareto, lognormal, constant) for ablations and for
//    testing the "not concentrated on a point" boundary.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace leancon {

/// A sampleable non-negative delay distribution.
///
/// Implementations must be immutable after construction so a single instance
/// can be shared by all simulated processes (each process supplies its own
/// rng stream).
class distribution {
 public:
  virtual ~distribution() = default;

  /// Draws one variate (always >= 0).
  virtual double sample(rng& gen) const = 0;

  /// Human-readable name used in tables (e.g. "exponential(1)").
  virtual std::string name() const = 0;

  /// Analytic mean, or a negative value when the mean is infinite/undefined
  /// (e.g. the Theorem 1 pathological distribution).
  virtual double mean() const = 0;

  /// Analytic median (inf{x : F(x) >= 1/2} for discrete supports), or a
  /// negative value when unknown. Distributions reporting an infinite mean
  /// MUST provide a median: it is their empirical-vs-analytic test anchor,
  /// since no bounded number of trials can pin down an infinite mean.
  virtual double median() const { return -1.0; }

  /// True when the distribution is concentrated on a point, i.e. violates the
  /// noisy-scheduling model's non-degeneracy requirement. Kept so tests and
  /// benches can exercise the boundary deliberately.
  virtual bool degenerate() const { return false; }
};

using distribution_ptr = std::shared_ptr<const distribution>;

// --- Factories -------------------------------------------------------------

/// Point mass at `value` (degenerate; excluded by the model, used in tests).
distribution_ptr make_constant(double value);

/// Uniform on (lo, hi).
distribution_ptr make_uniform(double lo, double hi);

/// Exponential with the given mean. (Figure 1: "exponential(1)" — a Poisson
/// process with no initial delay.)
distribution_ptr make_exponential(double mean);

/// shift + Exponential(mean). (Figure 1: "0.5 + exponential(0.5)" — a delayed
/// Poisson process.)
distribution_ptr make_shifted_exponential(double shift, double mean);

/// Normal(mu, sigma) rejected outside (lo, hi). (Figure 1: normal(1, 0.04)
/// i.e. sigma = 0.2, truncated to (0, 2).)
distribution_ptr make_truncated_normal(double mu, double sigma, double lo,
                                       double hi);

/// Two-point distribution: `a` or `b` with equal probability.
/// (Figure 1: {2/3, 4/3}; Theorem 13: {1, 2}.)
distribution_ptr make_two_point(double a, double b);

/// Geometric(p) on support {1, 2, 3, ...}. (Figure 1: geometric(0.5).)
distribution_ptr make_geometric(double p);

/// Theorem 1 pathological distribution: X = 2^{k^2} with probability 2^{-k},
/// k = 1, 2, ... Expected number of rival operations between two consecutive
/// operations of one process is infinite. `max_k` truncates the support so
/// simulations stay finite; the default keeps values up to 2^{144}.
distribution_ptr make_pathological_heavy(int max_k = 12);

/// Pareto with scale x_m and shape alpha (heavy tail; infinite mean when
/// alpha <= 1). Used in ablations beyond the paper's distribution set.
distribution_ptr make_pareto(double scale, double alpha);

/// Lognormal(mu, sigma) of the underlying normal.
distribution_ptr make_lognormal(double mu, double sigma);

/// A named distribution entry for catalogs and CLI lookup.
struct named_distribution {
  std::string key;  ///< stable CLI key, e.g. "exp1"
  distribution_ptr dist;
};

}  // namespace leancon
