// Interarrival/noise distributions for the noisy-scheduling model (paper
// Section 3.1). The adversary picks a common distribution F of non-negative
// random delays X_ij added to each operation; the only restrictions the paper
// imposes are non-negativity and not being concentrated on a point.
//
// This module provides:
//  * a type-erased `distribution` interface,
//  * every distribution used in the paper's Figure 1 simulation (Section 9),
//  * the pathological heavy-tail distribution of Theorem 1,
//  * the two-point {1, 2} distribution of the Theorem 13 lower bound,
//  * a handful of extras (pareto, lognormal, constant) for ablations and for
//    testing the "not concentrated on a point" boundary.
#pragma once

#include <bit>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/rng.h"

namespace leancon {

class distribution;

/// Sealed tags for the distributions this module ships: the simulator's
/// per-operation noise draw goes through `compiled_sampler` with one switch
/// instead of a virtual call. `custom` routes back through the virtual
/// sample() — the escape hatch for distributions defined elsewhere (and for
/// the heavy-tail ones whose sampling loop isn't worth flattening).
enum class sampler_kind : std::uint8_t {
  custom,
  constant,
  uniform,
  exponential,
  shifted_exponential,
  truncated_normal,
  two_point,
  geometric,
};

/// A distribution reduced to a tagged union of its sampling parameters.
/// Each arm replays the corresponding class's sample() arithmetic verbatim
/// — same rng calls in the same order — so compiled and virtual draws are
/// bit-identical. Produced by distribution::compile() once per trial batch;
/// borrows the distribution for the `custom` arm, so it must not outlive it.
struct compiled_sampler {
  sampler_kind kind = sampler_kind::custom;
  double a = 0.0, b = 0.0, c = 0.0, d = 0.0;  ///< meaning depends on kind
  const distribution* fallback = nullptr;

  double sample(rng& gen) const;
};

/// A sampleable non-negative delay distribution.
///
/// Implementations must be immutable after construction so a single instance
/// can be shared by all simulated processes (each process supplies its own
/// rng stream).
class distribution {
 public:
  virtual ~distribution() = default;

  /// Draws one variate (always >= 0).
  virtual double sample(rng& gen) const = 0;

  /// Reduces the distribution to its tagged-union fast path; the default is
  /// a `custom` record that defers to the virtual sample().
  virtual compiled_sampler compile() const {
    compiled_sampler s;
    s.kind = sampler_kind::custom;
    s.fallback = this;
    return s;
  }

  /// Human-readable name used in tables (e.g. "exponential(1)").
  virtual std::string name() const = 0;

  /// Analytic mean, or a negative value when the mean is infinite/undefined
  /// (e.g. the Theorem 1 pathological distribution).
  virtual double mean() const = 0;

  /// Analytic median (inf{x : F(x) >= 1/2} for discrete supports), or a
  /// negative value when unknown. Distributions reporting an infinite mean
  /// MUST provide a median: it is their empirical-vs-analytic test anchor,
  /// since no bounded number of trials can pin down an infinite mean.
  virtual double median() const { return -1.0; }

  /// True when the distribution is concentrated on a point, i.e. violates the
  /// noisy-scheduling model's non-degeneracy requirement. Kept so tests and
  /// benches can exercise the boundary deliberately.
  virtual bool degenerate() const { return false; }
};

using distribution_ptr = std::shared_ptr<const distribution>;

inline double compiled_sampler::sample(rng& gen) const {
  switch (kind) {
    case sampler_kind::constant:
      return a;
    case sampler_kind::uniform:
      return gen.uniform(a, b);
    case sampler_kind::exponential:
      return gen.exponential(a);
    case sampler_kind::shifted_exponential:
      return a + gen.exponential(b);
    case sampler_kind::truncated_normal:
      // Rejection sampling, identical to truncated_normal_dist::sample.
      for (;;) {
        const double x = gen.normal(a, b);
        if (x > c && x < d) return x;
      }
    case sampler_kind::two_point: {
      // Same single draw as rng::bernoulli(0.5) — uniform01() < 0.5 — but
      // the select is a bit mask: the outcome is a fair coin, so a branch
      // here mispredicts half the time.
      const std::uint64_t mask =
          -static_cast<std::uint64_t>(gen.uniform01() < 0.5);
      return std::bit_cast<double>((std::bit_cast<std::uint64_t>(a) & mask) |
                                   (std::bit_cast<std::uint64_t>(b) & ~mask));
    }
    case sampler_kind::geometric: {
      // rng::geometric(a) with the constant log1p(-a) precomputed as b at
      // compile() time (one libm call per draw instead of two). Same draw,
      // same division, same truncation — bit-identical output. The
      // constructor guarantees 0 < a < 1, so the rng's p<=0 / p>=1 guards
      // are unreachable here.
      const double u = gen.uniform01();
      const double value = std::ceil(std::log1p(-u) / b);
      return static_cast<double>(
          value < 1.0 ? std::uint64_t{1} : static_cast<std::uint64_t>(value));
    }
    case sampler_kind::custom:
      break;
  }
  return fallback->sample(gen);
}

// --- Factories -------------------------------------------------------------

/// Point mass at `value` (degenerate; excluded by the model, used in tests).
distribution_ptr make_constant(double value);

/// Uniform on (lo, hi).
distribution_ptr make_uniform(double lo, double hi);

/// Exponential with the given mean. (Figure 1: "exponential(1)" — a Poisson
/// process with no initial delay.)
distribution_ptr make_exponential(double mean);

/// shift + Exponential(mean). (Figure 1: "0.5 + exponential(0.5)" — a delayed
/// Poisson process.)
distribution_ptr make_shifted_exponential(double shift, double mean);

/// Normal(mu, sigma) rejected outside (lo, hi). (Figure 1: normal(1, 0.04)
/// i.e. sigma = 0.2, truncated to (0, 2).)
distribution_ptr make_truncated_normal(double mu, double sigma, double lo,
                                       double hi);

/// Two-point distribution: `a` or `b` with equal probability.
/// (Figure 1: {2/3, 4/3}; Theorem 13: {1, 2}.)
distribution_ptr make_two_point(double a, double b);

/// Geometric(p) on support {1, 2, 3, ...}. (Figure 1: geometric(0.5).)
distribution_ptr make_geometric(double p);

/// Theorem 1 pathological distribution: X = 2^{k^2} with probability 2^{-k},
/// k = 1, 2, ... Expected number of rival operations between two consecutive
/// operations of one process is infinite. `max_k` truncates the support so
/// simulations stay finite; the default keeps values up to 2^{144}.
distribution_ptr make_pathological_heavy(int max_k = 12);

/// Pareto with scale x_m and shape alpha (heavy tail; infinite mean when
/// alpha <= 1). Used in ablations beyond the paper's distribution set.
distribution_ptr make_pareto(double scale, double alpha);

/// Lognormal(mu, sigma) of the underlying normal.
distribution_ptr make_lognormal(double mu, double sigma);

/// A named distribution entry for catalogs and CLI lookup.
struct named_distribution {
  std::string key;  ///< stable CLI key, e.g. "exp1"
  distribution_ptr dist;
};

}  // namespace leancon
