// Named catalogs of distributions used by benches and the CLI.
#pragma once

#include <optional>

#include "noise/distribution.h"

namespace leancon {

/// The six interarrival distributions of the paper's Figure 1, in the order
/// listed in Section 9.
std::vector<named_distribution> figure1_catalog();

/// Everything the library knows how to build by key (figure-1 set plus
/// theorem constructions and ablation extras).
std::vector<named_distribution> full_catalog();

/// Looks up a distribution by catalog key (e.g. "exp1", "norm", "lower").
/// Returns nullopt when the key is unknown.
std::optional<distribution_ptr> find_distribution(const std::string& key);

/// Comma-separated list of all known keys (for --help output).
std::string catalog_keys();

}  // namespace leancon
