#include "noise/catalog.h"

#include <sstream>

namespace leancon {

std::vector<named_distribution> figure1_catalog() {
  return {
      {"norm", make_truncated_normal(1.0, 0.2, 0.0, 2.0)},
      {"twopoint", make_two_point(2.0 / 3.0, 4.0 / 3.0)},
      {"delayed-poisson", make_shifted_exponential(0.5, 0.5)},
      {"geom", make_geometric(0.5)},
      {"unif", make_uniform(0.0, 2.0)},
      {"exp1", make_exponential(1.0)},
  };
}

std::vector<named_distribution> full_catalog() {
  auto cat = figure1_catalog();
  cat.push_back({"lower", make_two_point(1.0, 2.0)});        // Theorem 13
  cat.push_back({"pathological", make_pathological_heavy()});  // Theorem 1
  cat.push_back({"pareto-heavy", make_pareto(0.5, 0.9)});
  cat.push_back({"pareto-light", make_pareto(0.5, 2.5)});
  cat.push_back({"lognormal", make_lognormal(0.0, 0.5)});
  cat.push_back({"constant", make_constant(1.0)});  // degenerate boundary
  return cat;
}

std::optional<distribution_ptr> find_distribution(const std::string& key) {
  for (const auto& entry : full_catalog()) {
    if (entry.key == key) return entry.dist;
  }
  return std::nullopt;
}

std::string catalog_keys() {
  std::ostringstream os;
  bool first = true;
  for (const auto& entry : full_catalog()) {
    if (!first) os << ",";
    os << entry.key;
    first = false;
  }
  return os.str();
}

}  // namespace leancon
