#include "noise/distribution.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace leancon {
namespace {

class constant_dist final : public distribution {
 public:
  explicit constant_dist(double value) : value_(value) {}
  double sample(rng&) const override { return value_; }
  std::string name() const override {
    return "constant(" + format(value_) + ")";
  }
  compiled_sampler compile() const override {
    compiled_sampler s;
    s.kind = sampler_kind::constant;
    s.a = value_;
    return s;
  }
  double mean() const override { return value_; }
  double median() const override { return value_; }
  bool degenerate() const override { return true; }

 private:
  static std::string format(double v) {
    std::ostringstream os;
    os << v;
    return os.str();
  }
  double value_;
};

class uniform_dist final : public distribution {
 public:
  uniform_dist(double lo, double hi) : lo_(lo), hi_(hi) {
    if (!(lo >= 0.0) || !(hi > lo)) {
      throw std::invalid_argument("uniform: need 0 <= lo < hi");
    }
  }
  double sample(rng& gen) const override { return gen.uniform(lo_, hi_); }
  std::string name() const override {
    std::ostringstream os;
    os << "uniform[" << lo_ << "," << hi_ << "]";
    return os.str();
  }
  compiled_sampler compile() const override {
    compiled_sampler s;
    s.kind = sampler_kind::uniform;
    s.a = lo_;
    s.b = hi_;
    return s;
  }
  double mean() const override { return 0.5 * (lo_ + hi_); }
  double median() const override { return 0.5 * (lo_ + hi_); }

 private:
  double lo_, hi_;
};

class exponential_dist final : public distribution {
 public:
  explicit exponential_dist(double mean) : mean_(mean) {
    if (!(mean > 0.0)) throw std::invalid_argument("exponential: mean <= 0");
  }
  double sample(rng& gen) const override { return gen.exponential(mean_); }
  std::string name() const override {
    std::ostringstream os;
    os << "exponential(" << mean_ << ")";
    return os.str();
  }
  compiled_sampler compile() const override {
    compiled_sampler s;
    s.kind = sampler_kind::exponential;
    s.a = mean_;
    return s;
  }
  double mean() const override { return mean_; }
  double median() const override { return mean_ * std::log(2.0); }

 private:
  double mean_;
};

class shifted_exponential_dist final : public distribution {
 public:
  shifted_exponential_dist(double shift, double mean)
      : shift_(shift), mean_(mean) {
    if (shift < 0.0 || !(mean > 0.0)) {
      throw std::invalid_argument("shifted_exponential: bad parameters");
    }
  }
  double sample(rng& gen) const override {
    return shift_ + gen.exponential(mean_);
  }
  compiled_sampler compile() const override {
    compiled_sampler s;
    s.kind = sampler_kind::shifted_exponential;
    s.a = shift_;
    s.b = mean_;
    return s;
  }
  std::string name() const override {
    std::ostringstream os;
    os << shift_ << " + exponential(" << mean_ << ")";
    return os.str();
  }
  double mean() const override { return shift_ + mean_; }
  double median() const override { return shift_ + mean_ * std::log(2.0); }

 private:
  double shift_, mean_;
};

class truncated_normal_dist final : public distribution {
 public:
  truncated_normal_dist(double mu, double sigma, double lo, double hi)
      : mu_(mu), sigma_(sigma), lo_(lo), hi_(hi) {
    if (!(sigma > 0.0) || !(hi > lo) || lo < 0.0) {
      throw std::invalid_argument("truncated_normal: bad parameters");
    }
  }
  double sample(rng& gen) const override {
    // Rejection sampling, exactly as the paper describes ("rejecting points
    // outside (0,2)"). With mu centered in (lo, hi) acceptance is ~1.
    for (;;) {
      const double x = gen.normal(mu_, sigma_);
      if (x > lo_ && x < hi_) return x;
    }
  }
  compiled_sampler compile() const override {
    compiled_sampler s;
    s.kind = sampler_kind::truncated_normal;
    s.a = mu_;
    s.b = sigma_;
    s.c = lo_;
    s.d = hi_;
    return s;
  }
  std::string name() const override {
    std::ostringstream os;
    os << "normal(" << mu_ << "," << sigma_ * sigma_ << ")";
    return os.str();
  }
  double mean() const override { return mu_; }  // symmetric truncation
  double median() const override {
    // Only the symmetric-truncation case has a closed form we rely on.
    return std::abs(lo_ + (hi_ - lo_) * 0.5 - mu_) < 1e-12 ? mu_ : -1.0;
  }

 private:
  double mu_, sigma_, lo_, hi_;
};

class two_point_dist final : public distribution {
 public:
  two_point_dist(double a, double b) : a_(a), b_(b) {
    if (a < 0.0 || b < 0.0) throw std::invalid_argument("two_point: negative");
    if (a == b) throw std::invalid_argument("two_point: degenerate");
  }
  double sample(rng& gen) const override {
    return gen.bernoulli(0.5) ? a_ : b_;
  }
  compiled_sampler compile() const override {
    compiled_sampler s;
    s.kind = sampler_kind::two_point;
    s.a = a_;
    s.b = b_;
    return s;
  }
  std::string name() const override {
    std::ostringstream os;
    os << "{" << a_ << "," << b_ << "}";
    return os.str();
  }
  double mean() const override { return 0.5 * (a_ + b_); }
  double median() const override { return std::min(a_, b_); }

 private:
  double a_, b_;
};

class geometric_dist final : public distribution {
 public:
  explicit geometric_dist(double p) : p_(p) {
    if (!(p > 0.0) || !(p < 1.0)) {
      throw std::invalid_argument("geometric: need 0 < p < 1");
    }
  }
  double sample(rng& gen) const override {
    return static_cast<double>(gen.geometric(p_));
  }
  compiled_sampler compile() const override {
    compiled_sampler s;
    s.kind = sampler_kind::geometric;
    s.a = p_;
    // The inverse-CDF denominator, hoisted out of the per-draw path. The
    // compiled draw keeps the division by this exact value, so it returns
    // bit-identical variates to rng::geometric.
    s.b = std::log1p(-p_);
    return s;
  }
  std::string name() const override {
    std::ostringstream os;
    os << "geometric(" << p_ << ")";
    return os.str();
  }
  double mean() const override { return 1.0 / p_; }
  double median() const override {
    return std::ceil(std::log(0.5) / std::log(1.0 - p_));
  }

 private:
  double p_;
};

// Theorem 1: X = 2^{k^2} with probability 2^{-k}, k >= 1. The tail mass
// beyond max_k is assigned to k = max_k so probabilities sum to one.
class pathological_heavy_dist final : public distribution {
 public:
  explicit pathological_heavy_dist(int max_k) : max_k_(max_k) {
    if (max_k < 2) throw std::invalid_argument("pathological: max_k < 2");
  }
  double sample(rng& gen) const override {
    // Draw k geometrically: P[k] = 2^{-k}.
    int k = 1;
    while (k < max_k_ && gen.bernoulli(0.5)) ++k;
    return std::ldexp(1.0, k * k);  // 2^{k^2}
  }
  std::string name() const override {
    std::ostringstream os;
    os << "2^{k^2} w.p. 2^{-k} (k<=" << max_k_ << ")";
    return os.str();
  }
  double mean() const override { return -1.0; }  // infinite (in the limit)
  double median() const override { return 2.0; }  // P[X = 2^1] = 1/2

 private:
  int max_k_;
};

class pareto_dist final : public distribution {
 public:
  pareto_dist(double scale, double alpha) : scale_(scale), alpha_(alpha) {
    if (!(scale > 0.0) || !(alpha > 0.0)) {
      throw std::invalid_argument("pareto: bad parameters");
    }
  }
  double sample(rng& gen) const override {
    return scale_ / std::pow(1.0 - gen.uniform01(), 1.0 / alpha_);
  }
  std::string name() const override {
    std::ostringstream os;
    os << "pareto(" << scale_ << "," << alpha_ << ")";
    return os.str();
  }
  double mean() const override {
    return alpha_ > 1.0 ? alpha_ * scale_ / (alpha_ - 1.0) : -1.0;
  }
  double median() const override {
    return scale_ * std::pow(2.0, 1.0 / alpha_);
  }

 private:
  double scale_, alpha_;
};

class lognormal_dist final : public distribution {
 public:
  lognormal_dist(double mu, double sigma) : mu_(mu), sigma_(sigma) {
    if (!(sigma > 0.0)) throw std::invalid_argument("lognormal: sigma <= 0");
  }
  double sample(rng& gen) const override {
    return std::exp(gen.normal(mu_, sigma_));
  }
  std::string name() const override {
    std::ostringstream os;
    os << "lognormal(" << mu_ << "," << sigma_ << ")";
    return os.str();
  }
  double mean() const override {
    return std::exp(mu_ + 0.5 * sigma_ * sigma_);
  }
  double median() const override { return std::exp(mu_); }

 private:
  double mu_, sigma_;
};

}  // namespace

distribution_ptr make_constant(double value) {
  return std::make_shared<constant_dist>(value);
}
distribution_ptr make_uniform(double lo, double hi) {
  return std::make_shared<uniform_dist>(lo, hi);
}
distribution_ptr make_exponential(double mean) {
  return std::make_shared<exponential_dist>(mean);
}
distribution_ptr make_shifted_exponential(double shift, double mean) {
  return std::make_shared<shifted_exponential_dist>(shift, mean);
}
distribution_ptr make_truncated_normal(double mu, double sigma, double lo,
                                       double hi) {
  return std::make_shared<truncated_normal_dist>(mu, sigma, lo, hi);
}
distribution_ptr make_two_point(double a, double b) {
  return std::make_shared<two_point_dist>(a, b);
}
distribution_ptr make_geometric(double p) {
  return std::make_shared<geometric_dist>(p);
}
distribution_ptr make_pathological_heavy(int max_k) {
  return std::make_shared<pathological_heavy_dist>(max_k);
}
distribution_ptr make_pareto(double scale, double alpha) {
  return std::make_shared<pareto_dist>(scale, alpha);
}
distribution_ptr make_lognormal(double mu, double sigma) {
  return std::make_shared<lognormal_dist>(mu, sigma);
}

}  // namespace leancon
