// Extensible named metrics: the aggregation currency of the unified
// workload API.
//
// Every workload — the shared-memory lean-consensus simulator, the ABD
// message-passing port, the mutex-under-noise executor, the hybrid-quantum
// uniprocessor — reports each trial as a `trial_outcome`: a small fixed
// decision record plus a `metric_set` of NAMED metrics. A backend emits the
// metrics it actually has (message round-trips, CAS-window contention,
// quantum preemptions, lean rounds...) and simply omits the ones it does
// not; nothing is ever zero-filled. Absent metrics stay absent end to end:
// they render `-` in tables and are omitted from (or `null` in) JSON.
//
// Two metric kinds:
//   * counters — additive doubles (merge = sum), reported by name;
//   * samples  — per-trial observations aggregated into a `summary`, each
//     carrying a `metric_rollup` that says which derived values a report
//     extracts (mean only, full location/spread, or mean + sum).
//
// Determinism contract (shared with trial_executor/campaign): folding is
// index-ordered. `record` replays a trial's observations with summary::add
// in emission order — bit-identical to accumulating the trial directly —
// and `merge` combines per-name in this set's entry order with new names
// appended in the other's order. Merging chunk aggregates in a fixed chunk
// order therefore yields bit-identical results for any pool size.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stats/summary.h"

namespace leancon {

/// Which derived values a sample metric contributes to a per-cell report
/// (see default_cell_metrics in exp/campaign.h for the exact names).
enum class metric_rollup : std::uint8_t {
  mean,          ///< mean_<name>
  location,      ///< mean_<name>, <name>_ci95, _p50, _p95, _min, _max
  mean_and_sum,  ///< mean_<name>, <name>_sum
};

/// Pre-bound identity of one metric: its name, kind, rollup, and the entry
/// index it lands at under the producer's canonical emission order. Hot
/// recording paths resolve a handle by index — one vector access plus a
/// confirming name compare — instead of a linear name scan per emission.
/// The hint is advisory: when it does not match (conditionally omitted
/// metrics shift indices), resolution falls back to the name scan, so a
/// handle is never wrong, only occasionally slower.
///
/// Build handles through `metric_binder`, which assigns hints in emission
/// order and hands out each name exactly once. A handle whose hint equals
/// the set's current size appends WITHOUT scanning — that is what makes a
/// fresh per-trial emission O(1) per metric — so two hand-built handles
/// sharing a name can create duplicate entries. Don't hand-build them.
struct metric_handle {
  std::string name;
  metric_rollup rollup = metric_rollup::mean;
  bool is_counter = false;
  std::uint32_t hint = 0;
};

/// Ordered, named counters and sample summaries. Entry order is
/// first-insertion order and is preserved by record/merge (new names
/// append), so reports and emitted files are deterministic.
class metric_set {
 public:
  struct entry {
    std::string name;
    bool is_counter = false;
    metric_rollup rollup = metric_rollup::mean;
    double total = 0.0;  ///< counter accumulator (unused for samples)
    summary stats;       ///< sample accumulator (unused for counters)
  };

  /// Adds `delta` to the named counter (created at 0 on first use).
  /// Returns *this for chaining.
  metric_set& count(const std::string& name, double delta);

  /// Adds one observation to the named sample metric. The rollup is fixed
  /// by the first observation; later calls ignore the argument.
  /// Returns *this for chaining.
  metric_set& observe(const std::string& name, double x,
                      metric_rollup rollup = metric_rollup::mean);

  /// Handle forms of count/observe: index hit or canonical append on the
  /// fast path, name-scan fallback when the hint is stale. Equivalent to
  /// the name forms entry-for-entry (same order, same kind checks).
  metric_set& count(const metric_handle& h, double delta) {
    resolve(h, /*is_counter=*/true).total += delta;
    return *this;
  }
  metric_set& observe(const metric_handle& h, double x) {
    resolve(h, /*is_counter=*/false).stats.add(x);
    return *this;
  }

  /// Folds one trial's metric_set into this aggregate: counters add, and
  /// every sample observation is replayed through summary::add in emission
  /// order — bit-identical to having observed the trial here directly.
  /// Throws std::logic_error when `one` holds a sample metric without
  /// retained samples (nothing to replay) or a name changes kind.
  void record(const metric_set& one);

  /// Folds another aggregate into this one: counters add, summaries merge
  /// via summary::merge (Chan combine). Per-name combination happens in
  /// this set's entry order; names new to this set append in `other`'s
  /// order. Throws std::logic_error when a name changes kind.
  void merge(const metric_set& other);

  /// Entry by name; nullptr when absent.
  const entry* find(const std::string& name) const;

  /// The named sample summary; a shared empty summary when the name is
  /// absent or names a counter (so absent metrics read count() == 0 and
  /// NaN min/max, never fabricated zeros).
  const summary& sample(const std::string& name) const;

  /// The named counter total; NaN when absent (absent != zero).
  double counter_total(const std::string& name) const;

  const std::vector<entry>& entries() const { return entries_; }
  bool empty() const { return entries_.empty(); }

 private:
  entry& upsert(const std::string& name, bool is_counter,
                metric_rollup rollup);

  entry& resolve(const metric_handle& h, bool is_counter) {
    if (h.hint < entries_.size()) {
      entry& e = entries_[h.hint];
      if (e.name == h.name && e.is_counter == is_counter) return e;
    }
    return resolve_slow(h, is_counter);
  }
  entry& resolve_slow(const metric_handle& h, bool is_counter);

  std::vector<entry> entries_;
};

/// Assigns handles with hints in emission order: the k-th bound name gets
/// hint k, matching the entry index it will occupy when the producer emits
/// every bound metric, in bind order, onto a fresh metric_set. One binder
/// per producer; bind each name once.
class metric_binder {
 public:
  metric_handle counter(std::string name) {
    return metric_handle{std::move(name), metric_rollup::mean,
                         /*is_counter=*/true, next_++};
  }
  metric_handle sample(std::string name,
                       metric_rollup rollup = metric_rollup::mean) {
    return metric_handle{std::move(name), rollup, /*is_counter=*/false,
                         next_++};
  }

 private:
  std::uint32_t next_ = 0;
};

/// One trial under the unified workload API: the fixed decision record
/// every aggregator understands, plus the workload's named metrics.
struct trial_outcome {
  bool decided = false;    ///< the trial's success notion (someone decided,
                           ///< the workload completed, ...)
  bool violation = false;  ///< any safety violation observed
  bool backup = false;     ///< any process entered a backup stage
  metric_set metrics;      ///< this trial's observations
};

}  // namespace leancon
