#include "stats/histogram.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>
#include <stdexcept>

namespace leancon {

histogram::histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)),
      counts_(bins, 0) {
  if (!(hi > lo) || bins == 0) {
    throw std::invalid_argument("histogram: bad range or bin count");
  }
}

void histogram::add(double x) {
  std::size_t idx;
  if (x < lo_) {
    idx = 0;
  } else if (x >= hi_) {
    idx = counts_.size() - 1;
  } else {
    idx = std::min(static_cast<std::size_t>((x - lo_) / width_),
                   counts_.size() - 1);
  }
  ++counts_[idx];
  ++total_;
}

double histogram::bin_low(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double histogram::bin_high(std::size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

std::string histogram::to_string(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    char label[64];
    std::snprintf(label, sizeof label, "[%8.3f, %8.3f) %8llu ", bin_low(i),
                  bin_high(i),
                  static_cast<unsigned long long>(counts_[i]));
    os << label << std::string(std::max<std::size_t>(bar, 1), '#') << '\n';
  }
  return os.str();
}

void log2_histogram::add(double x) {
  int exp = 0;
  if (x > 0.0) {
    (void)std::frexp(x, &exp);
  }
  const int idx = std::clamp(exp + 64, 0, static_cast<int>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

std::string log2_histogram::to_string(std::size_t bar_width) const {
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const int k = static_cast<int>(i) - 64;
    const auto bar = static_cast<std::size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(bar_width));
    char label[64];
    std::snprintf(label, sizeof label, "[2^%-4d, 2^%-4d) %8llu ", k - 1, k,
                  static_cast<unsigned long long>(counts_[i]));
    os << label << std::string(std::max<std::size_t>(bar, 1), '#') << '\n';
  }
  return os.str();
}

}  // namespace leancon
