#include "stats/metric_set.h"

#include <limits>
#include <stdexcept>

namespace leancon {

namespace {

[[noreturn]] void kind_mismatch(const std::string& name, bool is_counter) {
  throw std::logic_error("metric_set: \"" + name + "\" is already a " +
                         (is_counter ? "sample metric" : "counter") +
                         " and cannot change kind");
}

}  // namespace

metric_set::entry& metric_set::upsert(const std::string& name,
                                      bool is_counter, metric_rollup rollup) {
  for (auto& e : entries_) {
    if (e.name == name) {
      if (e.is_counter != is_counter) kind_mismatch(name, is_counter);
      return e;
    }
  }
  entry e;
  e.name = name;
  e.is_counter = is_counter;
  e.rollup = rollup;
  entries_.push_back(std::move(e));
  return entries_.back();
}

metric_set& metric_set::count(const std::string& name, double delta) {
  upsert(name, true, metric_rollup::mean).total += delta;
  return *this;
}

metric_set& metric_set::observe(const std::string& name, double x,
                                metric_rollup rollup) {
  upsert(name, false, rollup).stats.add(x);
  return *this;
}

metric_set::entry& metric_set::resolve_slow(const metric_handle& h,
                                            bool is_counter) {
  if (h.hint == entries_.size()) {
    // Canonical append: the producer is emitting in bind order onto a set
    // that has exactly the previously-bound entries, so the name cannot be
    // present yet (metric_binder hands out each name once). Skip the scan.
    entry e;
    e.name = h.name;
    e.is_counter = is_counter;
    e.rollup = h.rollup;
    entries_.push_back(std::move(e));
    return entries_.back();
  }
  return upsert(h.name, is_counter, h.rollup);
}

void metric_set::record(const metric_set& one) {
  // Trials from one producer arrive with entries in a fixed emission order,
  // so after the first trial each incoming entry is usually at the cursor
  // position in this aggregate; conditionally-omitted metrics make the
  // cursor miss and fall back to the name scan.
  std::size_t cursor = 0;
  for (const auto& e : one.entries_) {
    if (!e.is_counter && e.stats.samples().size() != e.stats.count()) {
      throw std::logic_error("metric_set::record: sample metric \"" + e.name +
                             "\" lacks retained samples to replay");
    }
    std::size_t idx;
    if (cursor < entries_.size() && entries_[cursor].name == e.name &&
        entries_[cursor].is_counter == e.is_counter) {
      idx = cursor;
    } else {
      idx = static_cast<std::size_t>(&upsert(e.name, e.is_counter, e.rollup) -
                                     entries_.data());
    }
    cursor = idx + 1;
    entry& mine = entries_[idx];
    if (e.is_counter) {
      mine.total += e.total;
      continue;
    }
    for (const double x : e.stats.samples()) mine.stats.add(x);
  }
}

void metric_set::merge(const metric_set& other) {
  std::size_t cursor = 0;  // same cursor heuristic as record()
  for (const auto& e : other.entries_) {
    std::size_t idx;
    if (cursor < entries_.size() && entries_[cursor].name == e.name &&
        entries_[cursor].is_counter == e.is_counter) {
      idx = cursor;
    } else {
      idx = static_cast<std::size_t>(&upsert(e.name, e.is_counter, e.rollup) -
                                     entries_.data());
    }
    cursor = idx + 1;
    entry& mine = entries_[idx];
    if (e.is_counter) {
      mine.total += e.total;
    } else {
      mine.stats.merge(e.stats);
    }
  }
}

const metric_set::entry* metric_set::find(const std::string& name) const {
  for (const auto& e : entries_) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

const summary& metric_set::sample(const std::string& name) const {
  static const summary empty;
  const entry* e = find(name);
  return (e == nullptr || e->is_counter) ? empty : e->stats;
}

double metric_set::counter_total(const std::string& name) const {
  const entry* e = find(name);
  return (e == nullptr || !e->is_counter)
             ? std::numeric_limits<double>::quiet_NaN()
             : e->total;
}

}  // namespace leancon
