#include "stats/effect_size.h"

#include <cmath>
#include <limits>

namespace leancon {

namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// The z in summary::ci95_halfwidth; inverted exactly when recovering sd.
constexpr double kZ95 = 1.96;

}  // namespace

double normal_cdf(double x) {
  return 0.5 * std::erfc(-x / std::sqrt(2.0));
}

effect_size cohens_d(double mean_a, double sd_a, std::uint64_t count_a,
                     double mean_b, double sd_b, std::uint64_t count_b) {
  effect_size e;
  if (count_a < 2 || count_b < 2) {
    e.cohens_d = kNaN;
    e.overlap = kNaN;
    return e;
  }
  const double dof_a = static_cast<double>(count_a - 1);
  const double dof_b = static_cast<double>(count_b - 1);
  const double pooled_var =
      (dof_a * sd_a * sd_a + dof_b * sd_b * sd_b) / (dof_a + dof_b);
  const double diff = mean_a - mean_b;
  if (pooled_var == 0.0) {
    // Two point masses: identical (d = 0) or infinitely separated.
    e.cohens_d = diff == 0.0 ? 0.0
                             : std::copysign(
                                   std::numeric_limits<double>::infinity(),
                                   diff);
  } else {
    e.cohens_d = diff / std::sqrt(pooled_var);
  }
  e.overlap = std::isnan(e.cohens_d)
                  ? kNaN
                  : 2.0 * normal_cdf(-std::fabs(e.cohens_d) / 2.0);
  return e;
}

effect_size cohens_d_from_ci95(double mean_a, double ci95_a,
                               std::uint64_t count_a, double mean_b,
                               double ci95_b, std::uint64_t count_b) {
  const double sd_a =
      ci95_a / kZ95 * std::sqrt(static_cast<double>(count_a));
  const double sd_b =
      ci95_b / kZ95 * std::sqrt(static_cast<double>(count_b));
  return cohens_d(mean_a, sd_a, count_a, mean_b, sd_b, count_b);
}

}  // namespace leancon
