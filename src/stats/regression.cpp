#include "stats/regression.h"

#include <cmath>
#include <stdexcept>

namespace leancon {

linear_fit fit_linear(const std::vector<double>& x,
                      const std::vector<double>& y) {
  if (x.size() != y.size()) {
    throw std::invalid_argument("fit_linear: size mismatch");
  }
  linear_fit fit;
  fit.points = x.size();
  if (x.size() < 2) return fit;

  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
    syy += y[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return fit;  // all x identical

  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double ss_tot = syy - sy * sy / n;
  if (ss_tot > 0.0) {
    double ss_res = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double e = y[i] - (fit.slope * x[i] + fit.intercept);
      ss_res += e * e;
    }
    fit.r_squared = 1.0 - ss_res / ss_tot;
  }
  return fit;
}

linear_fit fit_against_log2(const std::vector<double>& x,
                            const std::vector<double>& y) {
  std::vector<double> lx;
  lx.reserve(x.size());
  for (double v : x) lx.push_back(std::log2(v));
  return fit_linear(lx, y);
}

}  // namespace leancon
