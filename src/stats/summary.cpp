#include "stats/summary.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace leancon {

void summary::add(double x) {
  ++count_;
  if (count_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  if (keep_samples_) {
    samples_.push_back(x);
    sorted_ = false;
  }
}

void summary::merge(const summary& other) {
  if (other.count_ == 0) return;
  if (keep_samples_) {
    if (!other.keep_samples_) {
      throw std::logic_error(
          "summary::merge: cannot merge a summary without retained samples "
          "into one that keeps them");
    }
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
    sorted_ = false;
  }
  if (count_ == 0) {
    count_ = other.count_;
    mean_ = other.mean_;
    m2_ = other.m2_;
    min_ = other.min_;
    max_ = other.max_;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double total = na + nb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * (nb / total);
  m2_ += other.m2_ + delta * delta * (na * nb / total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ += other.count_;
}

double summary::mean() const { return count_ == 0 ? 0.0 : mean_; }

double summary::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double summary::stddev() const { return std::sqrt(variance()); }

double summary::stderror() const {
  return count_ == 0 ? 0.0 : stddev() / std::sqrt(static_cast<double>(count_));
}

double summary::ci95_halfwidth() const { return 1.96 * stderror(); }

double summary::min() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double summary::max() const {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

double summary::quantile(double q) const {
  if (!keep_samples_ || samples_.empty()) {
    throw std::logic_error("summary::quantile requires retained samples");
  }
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double summary::tail_fraction_above(double x) const {
  if (!keep_samples_ || samples_.empty()) return 0.0;
  std::size_t above = 0;
  for (double s : samples_) {
    if (s > x) ++above;
  }
  return static_cast<double>(above) / static_cast<double>(samples_.size());
}

}  // namespace leancon
