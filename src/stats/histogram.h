// Simple fixed-bin and log-bin histograms for experiment reporting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace leancon {

/// Histogram over [lo, hi) with `bins` equal-width bins; values outside the
/// range land in saturating edge bins.
class histogram {
 public:
  histogram(double lo, double hi, std::size_t bins);

  void add(double x);

  std::uint64_t total() const { return total_; }
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  double bin_low(std::size_t i) const;
  double bin_high(std::size_t i) const;

  /// ASCII rendering: one line per non-empty bin with a proportional bar.
  std::string to_string(std::size_t bar_width = 40) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Histogram with power-of-two bins [2^k, 2^{k+1}), suited to heavy tails.
class log2_histogram {
 public:
  void add(double x);
  std::string to_string(std::size_t bar_width = 40) const;
  std::uint64_t total() const { return total_; }

 private:
  // counts_[k] covers [2^{k-64}, 2^{k-63}); index chosen so tiny and huge
  // values both fit without reallocation logic at the call site.
  std::vector<std::uint64_t> counts_ = std::vector<std::uint64_t>(160, 0);
  std::uint64_t total_ = 0;
};

}  // namespace leancon
