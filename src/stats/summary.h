// Streaming summary statistics (Welford) plus quantiles over retained
// samples. Used by the trial runner to aggregate per-trial metrics.
#pragma once

#include <cstdint>
#include <vector>

namespace leancon {

/// Online mean/variance/min/max with optional sample retention for quantiles.
class summary {
 public:
  /// When `keep_samples` is true, every observation is retained so exact
  /// quantiles can be computed afterwards.
  explicit summary(bool keep_samples = true) : keep_samples_(keep_samples) {}

  void add(double x);

  /// Folds `other` into this summary (Chan's parallel Welford combine).
  /// Count, min, and max merge exactly; mean and variance agree with
  /// single-pass accumulation up to floating-point grouping. Retained
  /// samples are concatenated in order, so quantiles stay exact. Merging an
  /// empty summary is a no-op; merging into an empty summary copies. Throws
  /// std::logic_error when this summary retains samples but a non-empty
  /// `other` does not (the quantile contract could not be preserved).
  void merge(const summary& other);

  std::uint64_t count() const { return count_; }
  double mean() const;
  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double stderror() const;
  /// Half-width of the normal-approximation 95% confidence interval.
  double ci95_halfwidth() const;
  /// Smallest/largest observation; NaN when no observations were added
  /// (emitters render non-finite values as absent).
  double min() const;
  double max() const;

  /// Exact empirical quantile in [0, 1]; requires keep_samples.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// Fraction of retained samples strictly greater than x.
  double tail_fraction_above(double x) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  bool keep_samples_;
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace leancon
