// Effect-size summaries for comparing two measured groups (the ROADMAP's
// "per-metric significance" follow-up to the ci95 rollup).
//
// A campaign records, per cell and location-rollup metric, a mean and a
// normal-approximation 95% CI half-width (summary::ci95_halfwidth = 1.96 *
// sd / sqrt(count)). Two cells' values of the same metric — two scenarios
// at the same n, two adversaries, two protocol cutoffs — compare via
// Cohen's d, the standardized mean difference
//
//   d = (mean_a - mean_b) / s_pooled,
//   s_pooled^2 = ((n_a - 1) s_a^2 + (n_b - 1) s_b^2) / (n_a + n_b - 2),
//
// and the overlapping coefficient OVL = 2 * Phi(-|d| / 2): the shared area
// of two unit-variance normals d apart — 1 when the groups coincide, → 0 as
// they separate. |d| ~ 0.2 is conventionally "small", 0.5 "medium", 0.8
// "large". bench/campaign_report --effect computes these per (series pair,
// n) straight from the recorded mean/ci95/count columns.
#pragma once

#include <cstdint>

namespace leancon {

/// Standardized comparison of two sample means.
struct effect_size {
  double cohens_d = 0.0;  ///< (mean_a - mean_b) / pooled sd; signed
  double overlap = 1.0;   ///< OVL = 2 * Phi(-|d| / 2), in [0, 1]
};

/// Standard normal CDF Phi(x).
double normal_cdf(double x);

/// Cohen's d and OVL from raw group moments (sample standard deviations).
/// Degenerate inputs follow the arithmetic: equal means with zero pooled
/// variance give d = 0 (identical point masses); differing means with zero
/// pooled variance give d = +-inf and overlap 0. Counts below 2 per group
/// leave no variance information: d is NaN.
effect_size cohens_d(double mean_a, double sd_a, std::uint64_t count_a,
                     double mean_b, double sd_b, std::uint64_t count_b);

/// The same, from the values a campaign cell records for a location-rollup
/// metric: mean_<m>, <m>_ci95, and the metric's observation count (e.g.
/// the "decided" column for decided-only metrics like "round", "trials"
/// for every-trial metrics). Inverts ci95 = 1.96 * sd / sqrt(count) back
/// to the sample sd, then defers to cohens_d.
effect_size cohens_d_from_ci95(double mean_a, double ci95_a,
                               std::uint64_t count_a, double mean_b,
                               double ci95_b, std::uint64_t count_b);

}  // namespace leancon
