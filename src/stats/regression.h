// Ordinary least squares y = a*x + b, used to fit mean-round curves against
// log2(n) (Theorems 12 and 13 predict positive slope; the benches report it).
#pragma once

#include <cstddef>
#include <vector>

namespace leancon {

struct linear_fit {
  double slope = 0.0;
  double intercept = 0.0;
  double r_squared = 0.0;
  std::size_t points = 0;
};

/// Least-squares fit of y over x. Returns a zero fit when fewer than two
/// distinct x values are supplied.
linear_fit fit_linear(const std::vector<double>& x,
                      const std::vector<double>& y);

/// Convenience: fit y against log2(x).
linear_fit fit_against_log2(const std::vector<double>& x,
                            const std::vector<double>& y);

}  // namespace leancon
