#include "runtime/thread_consensus.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "core/combined_machine.h"
#include "memory/atomic_memory.h"
#include "util/rng.h"

namespace leancon {
namespace {

/// Busy-waits for approximately `ns` nanoseconds (sleeping would invite the
/// OS to batch wakeups and serialize the race artificially).
void spin_for_ns(double ns) {
  if (ns <= 0.0) return;
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + std::chrono::nanoseconds(
                                    static_cast<std::int64_t>(ns));
  while (std::chrono::steady_clock::now() < deadline) {
    // spin
  }
}

}  // namespace

thread_run_result run_threads(const thread_run_config& config) {
  const auto n = config.inputs.size();
  if (n == 0) throw std::invalid_argument("run_threads: no threads");
  const std::uint64_t r_max =
      config.r_max != 0 ? config.r_max : default_r_max(n);

  atomic_memory_config mem_config;
  mem_config.race_rounds = r_max + 2;
  mem_config.backup_rounds = 1u << 16;
  atomic_memory memory(mem_config);

  thread_run_result result;
  result.steps.assign(n, 0);
  result.lean_rounds.assign(n, 0);
  std::vector<int> decisions(n, -1);
  std::vector<std::uint8_t> entered_backup(n, 0);

  std::atomic<std::uint32_t> ready{0};
  std::atomic<bool> go{false};

  auto worker = [&](std::size_t tid) {
    rng gen(config.seed, tid + 1);
    backup_params bp = backup_params::for_processes(n);
    combined_machine machine(config.inputs[tid], r_max, bp, gen.fork());

    ready.fetch_add(1, std::memory_order_acq_rel);
    while (!go.load(std::memory_order_acquire)) {
      // spin until all threads are staged
    }

    std::uint64_t steps = 0;
    while (!machine.done() && steps < config.max_steps_per_thread) {
      const operation op = machine.next_op();
      const std::uint64_t value = memory.execute(op);
      machine.apply(value);
      ++steps;
      if (config.yield_probability > 0.0 &&
          gen.bernoulli(config.yield_probability)) {
        std::this_thread::yield();
      }
      if (config.injected_noise) {
        spin_for_ns(config.injected_noise->sample(gen) *
                    config.noise_scale_ns);
      }
    }

    result.steps[tid] = steps;
    result.lean_rounds[tid] = machine.lean().round();
    entered_backup[tid] = machine.backup_entered() ? 1 : 0;
    if (machine.done()) decisions[tid] = machine.decision();
  };

  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  threads.reserve(n);
  for (std::size_t i = 0; i < n; ++i) threads.emplace_back(worker, i);
  while (ready.load(std::memory_order_acquire) <
         static_cast<std::uint32_t>(n)) {
    // wait for all workers to stage
  }
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const auto wall_end = std::chrono::steady_clock::now();
  result.wall_ms = std::chrono::duration<double, std::milli>(wall_end -
                                                             wall_start)
                       .count();

  result.all_decided = true;
  for (std::size_t i = 0; i < n; ++i) {
    result.max_steps = std::max(result.max_steps, result.steps[i]);
    result.backup_entries += entered_backup[i];
    if (decisions[i] == -1) {
      result.all_decided = false;
      continue;
    }
    if (result.decision == -1) {
      result.decision = decisions[i];
    } else if (decisions[i] != result.decision) {
      result.agreement = false;
    }
  }
  return result;
}

}  // namespace leancon
