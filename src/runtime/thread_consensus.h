// Native execution of the consensus protocols on real threads over
// std::atomic registers (sequentially consistent operations = the paper's
// atomic read/write register model).
//
// Here the "noisy scheduler" is the actual machine: OS preemption, cache
// traffic, and an optional injected busy-wait noise sampled from any of the
// library's distributions. The combined protocol (lean + backup) is used so
// termination is guaranteed regardless of how adversarial the hardware
// schedule turns out to be, with bounded register arrays.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "noise/distribution.h"

namespace leancon {

struct thread_run_config {
  std::vector<int> inputs;         ///< one thread per input bit
  std::uint64_t r_max = 0;         ///< lean cutoff; 0 = default_r_max(n)
  distribution_ptr injected_noise; ///< optional per-op busy-wait noise
  double noise_scale_ns = 200.0;   ///< nanoseconds per noise unit
  /// Probability of calling std::this_thread::yield() after an operation.
  /// On an oversubscribed (or single-core) host, long OS quanta let each
  /// thread finish both rounds before its rivals run at all; forced yields
  /// re-create a genuinely interleaved race.
  double yield_probability = 0.0;
  std::uint64_t seed = 1;
  std::uint64_t max_steps_per_thread = 10'000'000;  ///< safety budget
};

struct thread_run_result {
  bool all_decided = false;
  bool agreement = true;     ///< all decided threads agree
  int decision = -1;
  std::vector<std::uint64_t> steps;   ///< shared-memory ops per thread
  std::uint64_t max_steps = 0;
  std::vector<std::uint64_t> lean_rounds;  ///< last lean round per thread
  std::uint64_t backup_entries = 0;
  double wall_ms = 0.0;
};

/// Runs one consensus instance with config.inputs.size() threads.
/// Threads spin on a start barrier so their first operations race.
thread_run_result run_threads(const thread_run_config& config);

}  // namespace leancon
