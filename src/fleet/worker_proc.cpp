#include "fleet/worker_proc.h"

#include <stdexcept>

#if defined(__unix__) || defined(__APPLE__)
#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>
#endif

#include "obs/obs.h"

namespace leancon::fleet {

void worker_proc::spawn(const std::vector<std::string>& argv,
                        const std::string& log_path) {
#if defined(__unix__) || defined(__APPLE__)
  if (argv.empty()) {
    throw std::runtime_error("worker_proc: empty argv");
  }
  if (pid_ != 0) {
    throw std::runtime_error("worker_proc: already spawned");
  }
  // Everything that allocates happens BEFORE fork: in a multithreaded
  // parent the child may only call async-signal-safe functions between
  // fork and exec (another thread could hold the allocator lock at the
  // moment of the fork).
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& arg : argv) {
    cargv.push_back(const_cast<char*>(arg.c_str()));
  }
  cargv.push_back(nullptr);
  int log_fd = -1;
  if (!log_path.empty()) {
    log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd < 0) {
      throw std::runtime_error("worker_proc: cannot open log " + log_path);
    }
  }

  const pid_t child = ::fork();
  if (child < 0) {
    if (log_fd >= 0) ::close(log_fd);
    throw std::runtime_error("worker_proc: fork failed");
  }
  if (child == 0) {
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    ::execv(cargv[0], cargv.data());
    _exit(127);  // exec failed; the supervisor sees a distinct code
  }
  if (log_fd >= 0) ::close(log_fd);
  pid_ = child;
  spawn_ns_ = obs::now_ns();
#else
  (void)argv;
  (void)log_path;
  throw std::runtime_error("worker_proc: unsupported platform");
#endif
}

bool worker_proc::running() {
#if defined(__unix__) || defined(__APPLE__)
  if (pid_ == 0 || reaped_) return false;
  int status = 0;
  const pid_t r = ::waitpid(static_cast<pid_t>(pid_), &status, WNOHANG);
  if (r == 0) return true;  // still alive
  // r == pid: reaped. r < 0 (ECHILD...) should not happen for our own
  // children; treat it as reaped-with-failure so the supervisor never
  // spins on a phantom process.
  status_ = r > 0 ? status : 0;
  reaped_ = true;
  reap_ns_ = obs::now_ns();
  return false;
#else
  return false;
#endif
}

bool worker_proc::signaled() const {
#if defined(__unix__) || defined(__APPLE__)
  return reaped_ && WIFSIGNALED(status_);
#else
  return false;
#endif
}

int worker_proc::term_signal() const {
#if defined(__unix__) || defined(__APPLE__)
  return signaled() ? WTERMSIG(status_) : 0;
#else
  return 0;
#endif
}

int worker_proc::exit_code() const {
#if defined(__unix__) || defined(__APPLE__)
  return reaped_ && WIFEXITED(status_) ? WEXITSTATUS(status_) : -1;
#else
  return -1;
#endif
}

void worker_proc::kill(int sig) {
#if defined(__unix__) || defined(__APPLE__)
  if (pid_ != 0 && !reaped_) ::kill(static_cast<pid_t>(pid_), sig);
#else
  (void)sig;
#endif
}

double worker_proc::seconds() const {
  if (pid_ == 0) return 0.0;
  const std::uint64_t end = reaped_ ? reap_ns_ : obs::now_ns();
  return static_cast<double>(end - spawn_ns_) / 1e9;
}

}  // namespace leancon::fleet
