// Elastic campaign fleet supervisor: fork, watch, heal, merge, report.
//
// run_fleet forks k local campaign_worker processes (one config-hash shard
// each, exp/campaign_shard.h), tails every shard's heartbeat JSONL as the
// liveness/progress protocol (fleet/hb_tail.h), and survives the same
// adversary the simulations model:
//
//   lost   a worker died (nonzero exit, signal) or froze (its heartbeat's
//          uptime_s stopped advancing for stale_timeout_s while the pid
//          still exists — the supervisor SIGTERMs it, waits term_grace_s
//          for the worker's final-heartbeat flush, then SIGKILLs)
//   heal   the lost shard re-runs with --resume after an exponential
//          backoff: its cells file is a content-addressed memo table
//          keyed on (config hash, seed), so completed cells are never
//          re-simulated and re-run lines are byte-identical
//   rebalance  after `retries` re-runs the job is declared exhausted and
//          its REMAINING cells are re-issued as explicit ordinal lists
//          (campaign_worker --only-cells) split across the surviving
//          workers' slots — ordinals index the full grid, so seeds,
//          hashes, and "index" fields are unchanged
//
// On completion the supervisor merges every cells file
// (campaign_io::merge_files) and verifies coverage: every cell of the
// full grid must be present in the union, and expected-but-missing or
// empty shard files are surfaced — a short BENCH is an error, never a
// silent success. The merged stream is byte-identical to the
// single-process campaign's file even across injected worker deaths.
//
// Fault injection (so the healing path is CI-testable, not just
// promised): kill_rules make shard i's FIRST attempt self-SIGKILL after
// c flushed cells (campaign_worker --die-after-cells — deterministic, no
// race against worker completion), and kill_prob fires supervisor-side
// SIGKILLs from a seeded generator.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/campaign.h"
#include "exp/campaign_io.h"

namespace leancon::fleet {

/// Deterministic fault injection: shard `shard`'s first attempt self-kills
/// (SIGKILL) after `after_cells` cells have been flushed to its file.
struct kill_rule {
  std::uint64_t shard = 0;
  std::uint64_t after_cells = 1;
};

/// Parses the CLI form "i@cells:c" (e.g. "1@cells:2"). Throws
/// std::invalid_argument on malformed text.
kill_rule parse_kill_rule(const std::string& text);

/// Everything the supervisor is about to fork: tests mutate `argv` through
/// fleet_config::plan_hook to substitute fake workers for specific
/// (shard, attempt) pairs; the supervisor keeps its own paths either way.
struct spawn_plan {
  std::uint64_t shard = 0;      ///< originating shard index
  unsigned attempt = 0;         ///< 0 = first launch
  bool rebalance = false;       ///< an --only-cells job, not a full shard
  std::string cells_path;
  std::string heartbeat_path;
  std::vector<std::string> argv;
};

struct fleet_config {
  /// The full grid — MUST expand to the same cells as `grid_flags` do in
  /// the workers (use campaign_cli's grid_from_options on both sides).
  campaign_grid grid;
  /// Grid flags forwarded verbatim to every worker ("--scenarios=...",
  /// "--ns=...", "--trials=...", "--op-budget=...", "--seed=...").
  std::vector<std::string> grid_flags;
  /// When non-empty, the fleet runs ONLY these full-grid cell ordinals
  /// (each worker gets its slice as an explicit --only-cells list; the
  /// cells keep their full-grid seeds/hashes/"index" fields, so the merged
  /// lines stay byte-identical to the single-process campaign's lines for
  /// those cells). Coverage is verified over the selection, not the full
  /// grid. This is how the campaign service schedules just its cache-miss
  /// cells onto a worker fleet. Throws std::invalid_argument (via
  /// filter_ordinals) when an ordinal matches no cell.
  std::vector<std::uint64_t> only_ordinals;
  std::uint64_t shards = 1;
  /// Per-run directory for cells files, heartbeats, and worker logs
  /// (created if absent).
  std::string run_dir;
  /// Worker argv prefix, typically {"<path>/campaign_worker"}.
  std::vector<std::string> worker_argv;
  unsigned worker_threads = 1;
  double worker_heartbeat_interval_s = 0.1;

  double poll_interval_s = 0.02;
  /// A running worker whose heartbeat uptime_s has not advanced for this
  /// long is declared frozen.
  double stale_timeout_s = 30.0;
  /// SIGTERM → SIGKILL grace for frozen workers.
  double term_grace_s = 1.0;
  /// Re-runs (with --resume) per job before its remaining cells rebalance.
  unsigned retries = 2;
  /// First-retry backoff; doubles per subsequent attempt.
  double backoff_s = 0.25;
  /// Fleet-wide cap on heal spawns (retries + rebalance jobs); exceeding
  /// it aborts the run — a crash-looping configuration must not fork
  /// forever.
  unsigned max_restarts = 64;

  std::vector<kill_rule> kill_rules;
  /// Per poll, per running worker probability of an injected SIGKILL.
  double kill_prob = 0.0;
  std::uint64_t kill_seed = 1;

  /// Fleet-level aggregate heartbeat JSONL (empty = run_dir/fleet_hb.jsonl;
  /// schema-compatible with worker heartbeats, shard = "fleet", plus a
  /// per-shard "shards" status array).
  std::string heartbeat_path;
  double heartbeat_interval_s = 0.5;
  /// argv_hash stamped on fleet heartbeat lines (the launcher passes
  /// obs::argv_fingerprint of its own command line).
  std::string argv_hash = "0x0";

  bool verbose = true;  ///< per-event progress lines on stdout

  /// Test hook: invoked just before each fork; may rewrite plan.argv.
  std::function<void(spawn_plan&)> plan_hook;
};

/// Final status of one supervised job.
struct job_status {
  std::uint64_t shard = 0;
  bool rebalance = false;
  std::string cells_path;
  unsigned attempts = 0;  ///< processes spawned for this job
  bool complete = false;
  std::uint64_t cells = 0;  ///< cells the job owned
};

struct fleet_report {
  bool ok = false;
  std::string error;  ///< non-empty when !ok
  /// The merged union of every job's cells file, in canonical (full-grid
  /// index) order — byte-identical to the single-process campaign when ok.
  campaign_io::merged_cells merged;
  std::vector<std::string> cells_paths;
  std::vector<job_status> jobs;

  std::uint64_t restarts = 0;          ///< heal re-spawns (beyond first launches)
  std::uint64_t rebalanced_cells = 0;  ///< cells re-issued via --only-cells
  std::uint64_t lost_events = 0;       ///< deaths + freezes observed
  std::uint64_t injected_kills = 0;    ///< kill_rules fired + kill_prob shots
  std::uint64_t missing_cells = 0;     ///< grid cells absent from the union
  double worker_seconds = 0.0;         ///< summed child process lifetimes
};

/// Runs the whole campaign through a supervised worker fleet; blocks until
/// every cell is accounted for (or the run aborts). Also bumps the obs
/// counters fleet.restarts / fleet.rebalanced_cells / fleet.lost /
/// fleet.injected_kills / fleet.worker_seconds_ms. Throws
/// std::invalid_argument on an unusable configuration (no shards, no
/// worker binary, unexpandable grid).
fleet_report run_fleet(const fleet_config& cfg);

}  // namespace leancon::fleet
