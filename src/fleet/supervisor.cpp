#include "fleet/supervisor.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <limits>
#include <memory>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/campaign_cli.h"
#include "exp/campaign_shard.h"
#include "fleet/hb_tail.h"
#include "fleet/worker_proc.h"
#include "obs/heartbeat.h"
#include "obs/obs.h"
#include "sim/trial_executor.h"
#include "util/json.h"

namespace leancon::fleet {

namespace {

double now_s() { return static_cast<double>(obs::now_ns()) / 1e9; }

double u01(std::uint64_t seed, std::uint64_t n) {
  // 53-bit mantissa draw from the shared splitmix64 stream.
  return static_cast<double>(trial_seed(seed, n) >> 11) *
         (1.0 / 9007199254740992.0);
}

enum class jstate { pending, running, done, exhausted };

const char* jstate_name(jstate s) {
  switch (s) {
    case jstate::pending: return "pending";
    case jstate::running: return "running";
    case jstate::done: return "done";
    case jstate::exhausted: return "exhausted";
  }
  return "?";
}

/// One supervised job: a full shard, or an --only-cells rebalance slice.
struct job {
  std::uint64_t shard = 0;  ///< originating shard index
  bool rebalance = false;
  std::size_t id = 0;  ///< unique across the run, for file naming
  std::vector<campaign_cell> cells;  ///< the cells this job owns
  std::string cells_path;
  std::string log_path;

  jstate state = jstate::pending;
  unsigned attempts = 0;  ///< processes spawned so far
  double respawn_at = 0.0;
  worker_proc proc;
  std::unique_ptr<hb_tail> tail;
  std::string expected_hash;  ///< argv_fingerprint of the spawned argv
  double spawned_at = 0.0;
  double last_progress_at = 0.0;
  double term_deadline = 0.0;  ///< SIGTERM sent; SIGKILL past this time
  double last_uptime = -1.0;
  std::uint64_t progress_cells = 0;
  std::uint64_t progress_trials = 0;
  bool die_injected = false;  ///< this attempt carries --die-after-cells

  std::uint64_t owned_trials() const {
    std::uint64_t total = 0;
    for (const auto& c : cells) total += c.trials;
    return total;
  }
};

}  // namespace

kill_rule parse_kill_rule(const std::string& text) {
  const std::size_t at = text.find("@cells:");
  if (at == std::string::npos || at == 0 ||
      at + 7 >= text.size() + 1) {
    throw std::invalid_argument("malformed kill rule \"" + text +
                                "\" (want i@cells:c)");
  }
  kill_rule rule;
  try {
    std::size_t used = 0;
    rule.shard = std::stoull(text.substr(0, at), &used, 10);
    if (used != at) throw std::invalid_argument(text);
    const std::string count = text.substr(at + 7);
    rule.after_cells = std::stoull(count, &used, 10);
    if (used != count.size()) throw std::invalid_argument(text);
  } catch (const std::exception&) {
    throw std::invalid_argument("malformed kill rule \"" + text +
                                "\" (want i@cells:c)");
  }
  return rule;
}

fleet_report run_fleet(const fleet_config& cfg) {
  if (cfg.shards == 0) {
    throw std::invalid_argument("fleet: shards must be >= 1");
  }
  if (cfg.worker_argv.empty()) {
    throw std::invalid_argument("fleet: worker_argv is empty");
  }
  if (cfg.run_dir.empty()) {
    throw std::invalid_argument("fleet: run_dir is required");
  }
  const auto expanded = cfg.grid.expand();
  if (expanded.empty()) {
    throw std::invalid_argument("fleet: the grid expands to no cells");
  }
  // The fleet's working set: the full grid, or the explicit ordinal
  // selection (cache-miss scheduling). Either way the cells keep their
  // full-grid seeds/hashes/ordinals.
  const auto all_cells = cfg.only_ordinals.empty()
                             ? expanded
                             : filter_ordinals(expanded, cfg.only_ordinals);
  std::filesystem::create_directories(cfg.run_dir);

  fleet_report rep;
  const double start = now_s();

  const auto log = [&cfg](const std::string& line) {
    if (!cfg.verbose) return;
    std::printf("fleet: %s\n", line.c_str());
    std::fflush(stdout);
  };

  // --- Job table -----------------------------------------------------------
  std::deque<job> jobs;
  std::size_t next_id = 0;
  for (std::uint64_t i = 0; i < cfg.shards; ++i) {
    job j;
    j.shard = i;
    j.id = next_id++;
    j.cells = filter_shard(all_cells, {i, cfg.shards});
    // Under an ordinal restriction an empty slice must not fork: the
    // worker would see an empty --only-cells, fall back to its shard
    // filter, and run cells outside the selection.
    if (j.cells.empty() && !cfg.only_ordinals.empty()) continue;
    j.cells_path =
        cfg.run_dir + "/shard_" + std::to_string(i) + ".jsonl";
    j.log_path = cfg.run_dir + "/log_s" + std::to_string(i) + ".txt";
    j.respawn_at = start;
    jobs.push_back(std::move(j));
  }

  const auto shard_str = [&cfg](const job& j) {
    return std::to_string(j.shard) + "/" + std::to_string(cfg.shards);
  };
  const auto job_name = [&](const job& j) {
    std::string name = (j.rebalance ? "rebalance " : "shard ") + shard_str(j);
    if (j.rebalance) name += " #" + std::to_string(j.id);
    return name;
  };

  // --- Fleet-level aggregate heartbeat -------------------------------------
  const std::string fleet_hb_path = cfg.heartbeat_path.empty()
                                        ? cfg.run_dir + "/fleet_hb.jsonl"
                                        : cfg.heartbeat_path;
  std::ofstream fleet_hb(fleet_hb_path, std::ios::app);
  if (!fleet_hb) {
    throw std::invalid_argument("fleet: cannot open heartbeat " +
                                fleet_hb_path);
  }
  const std::uint64_t cells_total = all_cells.size();
  std::uint64_t trials_total = 0;
  for (const auto& c : all_cells) trials_total += c.trials;

  const auto emit_fleet_hb = [&] {
    const double uptime = now_s() - start;
    std::uint64_t cells_done = 0;
    std::uint64_t trials_done = 0;
    std::size_t n_running = 0, n_pending = 0, n_done = 0, n_exhausted = 0;
    for (const auto& j : jobs) {
      cells_done += j.progress_cells;
      trials_done += j.progress_trials;
      switch (j.state) {
        case jstate::pending: ++n_pending; break;
        case jstate::running: ++n_running; break;
        case jstate::done: ++n_done; break;
        case jstate::exhausted: ++n_exhausted; break;
      }
    }
    // Unknown rate/eta are NaN, rendered as null by json::write_number —
    // the same convention as obs/heartbeat.cpp (trace_validate.py rejects
    // bare inf/nan tokens).
    const double rate = uptime > 0.0
                            ? static_cast<double>(trials_done) / uptime
                            : std::numeric_limits<double>::quiet_NaN();
    const std::uint64_t remaining =
        trials_total > trials_done ? trials_total - trials_done : 0;
    const double eta =
        remaining == 0
            ? 0.0
            : (std::isfinite(rate) && rate > 0.0
                   ? static_cast<double>(remaining) / rate
                   : std::numeric_limits<double>::quiet_NaN());
    std::ostringstream status;
    status << "running=" << n_running << " pending=" << n_pending
           << " done=" << n_done << " exhausted=" << n_exhausted
           << " lost=" << rep.lost_events;

    std::ostringstream os;
    os << "{\"uptime_s\":";
    json::write_number(os, uptime);
    os << ",\"cells_done\":";
    json::write_uint(os, cells_done);
    os << ",\"cells_total\":";
    json::write_uint(os, cells_total);
    os << ",\"trials_done\":";
    json::write_uint(os, trials_done);
    os << ",\"trials_total\":";
    json::write_uint(os, trials_total);
    os << ",\"trials_per_sec\":";
    json::write_number(os, rate);
    os << ",\"eta_s\":";
    json::write_number(os, eta);
    os << ",\"current_cell\":";
    json::write_string(os, status.str());
    os << ",\"rss_kb\":";
    json::write_uint(os, obs::rss_kb());
    os << ",\"shard\":";
    json::write_string(os, "fleet");
    os << ",\"pid\":";
    json::write_uint(os, obs::own_pid());
    os << ",\"argv_hash\":";
    json::write_string(os, cfg.argv_hash);
    os << ",\"shards\":[";
    bool first = true;
    for (const auto& j : jobs) {
      if (!first) os << ',';
      first = false;
      os << "{\"shard\":";
      json::write_string(os, shard_str(j));
      os << ",\"rebalance\":" << (j.rebalance ? "true" : "false");
      os << ",\"state\":";
      json::write_string(os, jstate_name(j.state));
      os << ",\"pid\":";
      json::write_uint(os,
                       static_cast<std::uint64_t>(std::max<std::int64_t>(
                           j.proc.pid(), 0)));
      os << ",\"attempts\":";
      json::write_uint(os, j.attempts);
      os << ",\"cells_done\":";
      json::write_uint(os, j.progress_cells);
      os << ",\"cells_owned\":";
      json::write_uint(os, j.cells.size());
      os << "}";
    }
    os << "]}\n";
    fleet_hb << os.str();
    fleet_hb.flush();
  };

  // --- Spawning ------------------------------------------------------------
  std::vector<char> rule_fired(cfg.kill_rules.size(), 0);
  unsigned heal_spawns = 0;  // retries + rebalance jobs, vs max_restarts

  const auto spawn = [&](job& j) {
    spawn_plan plan;
    plan.shard = j.shard;
    plan.attempt = j.attempts;
    plan.rebalance = j.rebalance;
    plan.cells_path = j.cells_path;
    plan.heartbeat_path = cfg.run_dir + "/hb_" +
                          (j.rebalance ? "r" : "s") + std::to_string(j.id) +
                          "_a" + std::to_string(j.attempts) + ".jsonl";
    plan.argv = cfg.worker_argv;
    for (const auto& flag : cfg.grid_flags) plan.argv.push_back(flag);
    plan.argv.push_back("--shard=" + shard_str(j));
    plan.argv.push_back("--threads=" + std::to_string(cfg.worker_threads));
    plan.argv.push_back("--cells=" + j.cells_path);
    plan.argv.push_back("--resume=true");
    plan.argv.push_back("--heartbeat=" + plan.heartbeat_path);
    plan.argv.push_back(
        "--heartbeat-interval=" +
        std::to_string(cfg.worker_heartbeat_interval_s));
    if (j.rebalance || !cfg.only_ordinals.empty()) {
      // Rebalance jobs always run explicit ordinal lists; under a
      // restricted fleet (cfg.only_ordinals) every job does — the shard
      // filter alone would make workers run cells outside the selection.
      std::vector<std::uint64_t> ordinals;
      ordinals.reserve(j.cells.size());
      for (const auto& c : j.cells) ordinals.push_back(c.ordinal);
      plan.argv.push_back("--only-cells=" + format_ordinal_list(ordinals));
    }
    j.die_injected = false;
    if (!j.rebalance && j.attempts == 0) {
      for (std::size_t r = 0; r < cfg.kill_rules.size(); ++r) {
        if (rule_fired[r] || cfg.kill_rules[r].shard != j.shard) continue;
        rule_fired[r] = 1;
        j.die_injected = true;
        ++rep.injected_kills;
        plan.argv.push_back(
            "--die-after-cells=" +
            std::to_string(cfg.kill_rules[r].after_cells));
        log(job_name(j) + ": injecting self-kill after " +
            std::to_string(cfg.kill_rules[r].after_cells) + " cell(s)");
      }
    }
    if (cfg.plan_hook) cfg.plan_hook(plan);

    j.expected_hash = obs::argv_fingerprint(plan.argv);
    j.proc = worker_proc{};
    j.proc.spawn(plan.argv, j.log_path);
    j.tail = std::make_unique<hb_tail>(plan.heartbeat_path);
    j.state = jstate::running;
    ++j.attempts;
    j.spawned_at = now_s();
    j.last_progress_at = j.spawned_at;
    j.term_deadline = 0.0;
    j.last_uptime = -1.0;
    log(job_name(j) + ": spawned pid " + std::to_string(j.proc.pid()) +
        " (attempt " + std::to_string(j.attempts) + ", " +
        std::to_string(j.cells.size()) + " cell(s))");
  };

  const auto complete = [&](job& j) {
    j.state = jstate::done;
    j.progress_cells = j.cells.size();
    j.progress_trials = j.owned_trials();
    log(job_name(j) + ": complete (" + std::to_string(j.cells.size()) +
        " cell(s), " + std::to_string(j.attempts) + " attempt(s))");
  };

  /// Cells of `j` not yet recorded in its cells file.
  const auto remaining_cells = [](const job& j) {
    std::set<std::pair<std::uint64_t, std::uint64_t>> recorded;
    try {
      for (const auto& rec : campaign_io::read_records(j.cells_path)) {
        recorded.insert({rec.hash, rec.seed});
      }
    } catch (const std::exception&) {
      // No file yet: the worker died before opening it; everything remains.
    }
    std::vector<campaign_cell> remaining;
    for (const auto& c : j.cells) {
      if (recorded.count({cell_hash(c), c.params.seed}) == 0) {
        remaining.push_back(c);
      }
    }
    return remaining;
  };

  const auto abort_run = [&](const std::string& why) {
    rep.error = why;
    log("ABORT: " + why);
    for (auto& j : jobs) {
      if (j.state == jstate::running && j.proc.running()) {
        j.proc.kill(SIGKILL);
      }
    }
    // Reap briefly so no zombies outlive the supervisor.
    const double deadline = now_s() + 2.0;
    for (auto& j : jobs) {
      while (j.proc.spawned() && j.proc.running() && now_s() < deadline) {
        std::this_thread::sleep_for(std::chrono::milliseconds(5));
      }
      if (j.state == jstate::running) rep.worker_seconds += j.proc.seconds();
    }
  };

  const auto rebalance = [&](job& j,
                             const std::vector<campaign_cell>& remaining) {
    j.state = jstate::exhausted;
    rep.rebalanced_cells += remaining.size();
    std::size_t live = 0;
    for (const auto& other : jobs) {
      if (&other != &j && (other.state == jstate::running ||
                           other.state == jstate::pending)) {
        ++live;
      }
    }
    // One slice per surviving worker slot — at least one either way: with
    // no survivors the fleet still owes the cells, so it forks anew.
    const std::size_t parts =
        std::max<std::size_t>(1, std::min(live, remaining.size()));
    if (heal_spawns + parts > cfg.max_restarts) {
      abort_run("restart budget exhausted (max_restarts=" +
                std::to_string(cfg.max_restarts) + ") while rebalancing " +
                job_name(j));
      return;
    }
    heal_spawns += static_cast<unsigned>(parts);
    log(job_name(j) + ": retry budget exhausted; rebalancing " +
        std::to_string(remaining.size()) + " cell(s) onto " +
        std::to_string(parts) + " new worker(s)");
    const double t = now_s();
    for (std::size_t p = 0; p < parts; ++p) {
      job nj;
      nj.shard = j.shard;
      nj.rebalance = true;
      nj.id = next_id++;
      for (std::size_t c = p; c < remaining.size(); c += parts) {
        nj.cells.push_back(remaining[c]);
      }
      nj.cells_path = cfg.run_dir + "/rebalance_" +
                      std::to_string(j.shard) + "_" +
                      std::to_string(nj.id) + ".jsonl";
      nj.log_path = cfg.run_dir + "/log_r" + std::to_string(nj.id) + ".txt";
      nj.respawn_at = t;
      jobs.push_back(std::move(nj));
    }
  };

  const auto on_exit = [&](job& j) {
    rep.worker_seconds += j.proc.seconds();
    if (!j.proc.signaled() && j.proc.exit_code() == exit_ok) {
      complete(j);
      return;
    }
    if (!j.proc.signaled() && j.proc.exit_code() == exit_usage) {
      abort_run(job_name(j) +
                " exited with a usage/config error (code 2); re-running "
                "the same argv cannot succeed — see " +
                j.log_path);
      return;
    }
    if (!j.proc.signaled() && j.proc.exit_code() == 127) {
      abort_run("cannot exec worker binary " + cfg.worker_argv.front());
      return;
    }
    const auto remaining = remaining_cells(j);
    const std::string cause =
        j.proc.signaled()
            ? "killed by signal " + std::to_string(j.proc.term_signal())
            : "exited with code " + std::to_string(j.proc.exit_code());
    if (remaining.empty()) {
      // Incomplete exit but every owned cell is on file: the shard finished
      // its work and reported violations (or was told to stop after the
      // final flush) — nothing to heal.
      log(job_name(j) + ": " + cause + " with all cells recorded");
      complete(j);
      return;
    }
    ++rep.lost_events;
    log(job_name(j) + ": LOST (" + cause + ", " +
        std::to_string(remaining.size()) + " cell(s) remaining)");
    if (j.attempts - 1 < cfg.retries) {
      if (heal_spawns + 1 > cfg.max_restarts) {
        abort_run("restart budget exhausted (max_restarts=" +
                  std::to_string(cfg.max_restarts) + ") while healing " +
                  job_name(j));
        return;
      }
      ++heal_spawns;
      ++rep.restarts;
      const double backoff =
          cfg.backoff_s * std::pow(2.0, static_cast<double>(j.attempts - 1));
      j.state = jstate::pending;
      j.respawn_at = now_s() + backoff;
      log(job_name(j) + ": re-running with --resume in " +
          std::to_string(backoff) + "s (attempt " +
          std::to_string(j.attempts + 1) + "/" +
          std::to_string(1 + cfg.retries) + ")");
    } else {
      rebalance(j, remaining);
    }
  };

  // --- Watch loop ----------------------------------------------------------
  std::uint64_t kill_draws = 0;
  double next_hb = start;  // first line immediately
  while (rep.error.empty()) {
    const double t = now_s();
    bool any_active = false;
    for (std::size_t idx = 0; idx < jobs.size(); ++idx) {
      job& j = jobs[idx];
      if (j.state == jstate::pending) {
        any_active = true;
        if (t >= j.respawn_at) spawn(j);
        continue;
      }
      if (j.state != jstate::running) continue;
      any_active = true;

      // Drain the heartbeat tail; accept only samples attributable to the
      // child we spawned (pid + argv fingerprint — file names are not
      // trusted).
      if (j.tail != nullptr && j.tail->poll() > 0) {
        const hb_sample& s = j.tail->last();
        if (s.pid == static_cast<std::uint64_t>(j.proc.pid()) &&
            s.argv_hash == j.expected_hash) {
          if (s.uptime_s > j.last_uptime) {
            j.last_uptime = s.uptime_s;
            j.last_progress_at = t;
          }
          j.progress_cells = std::max(j.progress_cells, s.cells_done);
          j.progress_trials = std::max(j.progress_trials, s.trials_done);
        }
      }

      if (!j.proc.running()) {
        on_exit(j);
        if (!rep.error.empty()) break;
        continue;
      }

      // Random fault injection (supervisor-side SIGKILL).
      if (cfg.kill_prob > 0.0 && j.term_deadline == 0.0 &&
          u01(cfg.kill_seed, kill_draws++) < cfg.kill_prob) {
        ++rep.injected_kills;
        log(job_name(j) + ": injected SIGKILL (pid " +
            std::to_string(j.proc.pid()) + ")");
        j.proc.kill(SIGKILL);
        continue;
      }

      // Freeze detection: a live pid whose heartbeat uptime stopped
      // advancing. SIGTERM first (the worker flushes a final heartbeat
      // line and exits with exit_incomplete), SIGKILL past the grace.
      if (j.term_deadline == 0.0 &&
          t - j.last_progress_at > cfg.stale_timeout_s) {
        log(job_name(j) + ": heartbeat stale for " +
            std::to_string(t - j.last_progress_at) +
            "s — declaring frozen, sending SIGTERM to pid " +
            std::to_string(j.proc.pid()));
        j.proc.kill(SIGTERM);
        j.term_deadline = t + cfg.term_grace_s;
      } else if (j.term_deadline != 0.0 && t > j.term_deadline) {
        j.proc.kill(SIGKILL);
      }
    }
    if (!rep.error.empty()) break;
    if (t >= next_hb) {
      emit_fleet_hb();
      next_hb = t + cfg.heartbeat_interval_s;
    }
    if (!any_active) break;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(cfg.poll_interval_s));
  }

  // --- Merge + coverage ----------------------------------------------------
  for (const auto& j : jobs) {
    rep.cells_paths.push_back(j.cells_path);
    job_status st;
    st.shard = j.shard;
    st.rebalance = j.rebalance;
    st.cells_path = j.cells_path;
    st.attempts = j.attempts;
    st.complete = j.state == jstate::done;
    st.cells = j.cells.size();
    rep.jobs.push_back(std::move(st));
  }
  if (rep.error.empty()) {
    try {
      rep.merged =
          campaign_io::merge_files(rep.cells_paths, /*tolerate_missing=*/true);
    } catch (const std::exception& e) {
      rep.error = std::string("merge failed: ") + e.what();
    }
  }
  if (rep.error.empty()) {
    std::set<std::pair<std::uint64_t, std::uint64_t>> present;
    for (const auto& rec : rep.merged.records) {
      present.insert({rec.hash, rec.seed});
    }
    std::string missing_labels;
    for (const auto& c : all_cells) {
      if (present.count({cell_hash(c), c.params.seed}) == 0) {
        ++rep.missing_cells;
        if (rep.missing_cells <= 4) {
          missing_labels += (missing_labels.empty() ? "" : ", ") + c.label();
        }
      }
    }
    if (rep.missing_cells > 0) {
      rep.error = std::to_string(rep.missing_cells) +
                  " grid cell(s) missing from the merged union (" +
                  missing_labels + "...) — refusing to emit a short BENCH";
    }
    // A DONE job whose cells file cannot be read claimed completion it
    // cannot back up — fail loudly. Exhausted jobs may legitimately have
    // no file (a worker that crashed before opening it); their cells were
    // re-issued to rebalance jobs and the coverage check above is the
    // authority for them.
    if (rep.error.empty()) {
      for (const auto& missing : rep.merged.missing_files) {
        for (const auto& j : jobs) {
          if (j.cells_path == missing && j.state == jstate::done) {
            rep.error = "completed job's cells file is missing: " + missing;
            break;
          }
        }
        if (!rep.error.empty()) break;
      }
    }
  }
  rep.ok = rep.error.empty();
  emit_fleet_hb();  // final line with the settled totals

  // Always-on fleet counters (coarse; once per run).
  obs::counter("fleet.restarts")
      ->fetch_add(rep.restarts, std::memory_order_relaxed);
  obs::counter("fleet.rebalanced_cells")
      ->fetch_add(rep.rebalanced_cells, std::memory_order_relaxed);
  obs::counter("fleet.lost")
      ->fetch_add(rep.lost_events, std::memory_order_relaxed);
  obs::counter("fleet.injected_kills")
      ->fetch_add(rep.injected_kills, std::memory_order_relaxed);
  obs::counter("fleet.worker_seconds_ms")
      ->fetch_add(static_cast<std::uint64_t>(rep.worker_seconds * 1e3),
                  std::memory_order_relaxed);

  if (rep.ok) {
    log("fleet complete: " + std::to_string(rep.merged.records.size()) +
        " cell(s) from " + std::to_string(jobs.size()) + " job(s), " +
        std::to_string(rep.restarts) + " restart(s), " +
        std::to_string(rep.rebalanced_cells) + " rebalanced cell(s)");
  }
  return rep;
}

}  // namespace leancon::fleet
