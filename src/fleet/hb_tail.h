// Incremental tailer for one worker heartbeat JSONL file — the fleet
// supervisor's liveness/progress channel (obs/heartbeat.h writes the
// lines; tools/trace_validate.py pins the schema).
//
// poll() reads whatever bytes were appended since the last call, splits
// them into complete lines, and parses each into an hb_sample. A partial
// final line (the worker is mid-write, or died mid-write) is buffered and
// completed by a later poll — or never, which is fine: the supervisor's
// staleness clock, not the tailer, decides when silence means loss.
// Attribution is the caller's job: every sample carries the identity
// triple (shard, pid, argv_hash) and the supervisor rejects samples whose
// pid/argv_hash do not match the worker it spawned.
#pragma once

#include <cstdint>
#include <string>

namespace leancon::fleet {

/// One parsed heartbeat line (field meanings in obs/heartbeat.h).
struct hb_sample {
  double uptime_s = 0.0;
  std::uint64_t cells_done = 0;
  std::uint64_t cells_total = 0;
  std::uint64_t trials_done = 0;
  std::uint64_t trials_total = 0;
  double trials_per_sec = 0.0;
  double eta_s = 0.0;
  std::string current_cell;
  std::uint64_t rss_kb = 0;
  std::string shard;
  std::uint64_t pid = 0;
  std::string argv_hash;
};

/// Parses one heartbeat JSONL line. False when the line is not a
/// well-formed heartbeat object (torn writes, foreign content).
bool parse_hb_line(const std::string& line, hb_sample& out);

class hb_tail {
 public:
  /// Tails `path`. The file need not exist yet — polls simply return 0
  /// until the worker creates it.
  explicit hb_tail(std::string path);

  /// Reads and parses newly appended complete lines; returns how many new
  /// samples were parsed. Unparseable complete lines are counted into
  /// skipped() and otherwise ignored. If the file shrank since the last
  /// poll (a healed shard truncated/recreated it), the tail resets and
  /// re-reads from the start (counted into resets()).
  std::size_t poll();

  bool has_sample() const { return samples_ > 0; }
  /// The most recent sample (valid once has_sample()).
  const hb_sample& last() const { return last_; }

  std::uint64_t samples() const { return samples_; }
  std::uint64_t skipped() const { return skipped_; }
  std::uint64_t resets() const { return resets_; }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;  ///< bytes of the file consumed so far
  std::string pending_;       ///< buffered partial final line
  hb_sample last_;
  std::uint64_t samples_ = 0;
  std::uint64_t skipped_ = 0;
  std::uint64_t resets_ = 0;  ///< shrunk-file re-tails (truncate/recreate)
};

}  // namespace leancon::fleet
