// One supervised worker process: fork/exec, non-blocking reap, signals.
//
// The fleet supervisor (fleet/supervisor.h) forks k campaign_worker
// processes and has to tell four outcomes apart without ambiguity, so the
// worker exit protocol is pinned here and shared by both sides:
//
//   exit_ok         (0)  the shard ran to completion, every cell safe
//   exit_usage      (2)  flag/config error (unknown scenario, malformed
//                        shard, unopenable file) — re-running the same
//                        argv can never succeed, so the supervisor treats
//                        it as fatal instead of burning the retry budget
//   exit_incomplete (3)  the shard ran but ended incomplete or unsafe:
//                        recorded violations, a runtime error mid-run, or
//                        a SIGTERM-initiated shutdown (the worker flushes a
//                        final heartbeat line, then exits with this code)
//
// Anything else — including death by signal, which waitpid reports
// separately — means the shard is lost and its cells file holds only a
// prefix; the supervisor re-runs it with --resume.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace leancon::fleet {

/// The worker exit protocol (see the header comment).
inline constexpr int exit_ok = 0;
inline constexpr int exit_usage = 2;
inline constexpr int exit_incomplete = 3;

/// A forked child process. Movable handle; the destructor does NOT kill or
/// reap — the supervisor owns the lifecycle explicitly.
class worker_proc {
 public:
  worker_proc() = default;

  /// Forks and execs `argv` (argv[0] is the binary path), redirecting the
  /// child's stdout+stderr to `log_path` (append; empty = inherit). All
  /// allocation happens before fork so a multithreaded parent cannot
  /// deadlock the child. Throws std::runtime_error when fork fails or
  /// argv is empty; exec failure surfaces as exit code 127.
  void spawn(const std::vector<std::string>& argv,
             const std::string& log_path);

  /// Polls waitpid(WNOHANG). True while the child is alive (or was never
  /// spawned... false); once the child is reaped, records its status and
  /// returns false from then on.
  bool running();

  bool spawned() const { return pid_ != 0; }
  bool reaped() const { return reaped_; }

  /// True when the reaped child terminated by signal (SIGKILL, a crash...).
  bool signaled() const;
  /// The terminating signal (signaled() only).
  int term_signal() const;
  /// The exit code (reaped and not signaled; see the protocol above).
  int exit_code() const;

  /// Sends `sig` to the child (no-op once reaped).
  void kill(int sig);

  /// Child pid (0 before spawn).
  std::int64_t pid() const { return pid_; }

  /// Wall-clock seconds from spawn to reap (to now while running) — the
  /// fleet.worker_seconds accounting unit.
  double seconds() const;

 private:
  std::int64_t pid_ = 0;
  bool reaped_ = false;
  int status_ = 0;
  std::uint64_t spawn_ns_ = 0;
  std::uint64_t reap_ns_ = 0;
};

}  // namespace leancon::fleet
