#include "fleet/hb_tail.h"

#include <fstream>
#include <limits>
#include <utility>

#include "util/json.h"

namespace leancon::fleet {

bool parse_hb_line(const std::string& line, hb_sample& out) {
  json::value v;
  try {
    v = json::parse(line);
  } catch (const std::exception&) {
    return false;
  }
  if (v.k != json::value::kind::object) return false;
  const auto number = [&v](const char* key, double& into) {
    const json::value* node = v.find(key);
    if (node == nullptr || node->k != json::value::kind::number) return false;
    into = node->num;
    return true;
  };
  const auto uint = [&number](const char* key, std::uint64_t& into) {
    double d = 0.0;
    if (!number(key, d) || d < 0.0) return false;
    into = static_cast<std::uint64_t>(d);
    return true;
  };
  // Rate/eta may be null per the util/json non-finite convention (the
  // immediate first line, a zero-progress stall): restore as NaN.
  const auto number_or_null = [&v](const char* key, double& into) {
    const json::value* node = v.find(key);
    if (node == nullptr) return false;
    if (node->k == json::value::kind::null) {
      into = std::numeric_limits<double>::quiet_NaN();
      return true;
    }
    if (node->k != json::value::kind::number) return false;
    into = node->num;
    return true;
  };
  const auto text = [&v](const char* key, std::string& into) {
    const json::value* node = v.find(key);
    if (node == nullptr || node->k != json::value::kind::string) return false;
    into = node->str;
    return true;
  };
  hb_sample s;
  if (!number("uptime_s", s.uptime_s) || !uint("cells_done", s.cells_done) ||
      !uint("cells_total", s.cells_total) ||
      !uint("trials_done", s.trials_done) ||
      !uint("trials_total", s.trials_total) ||
      !number_or_null("trials_per_sec", s.trials_per_sec) ||
      !number_or_null("eta_s", s.eta_s) ||
      !text("current_cell", s.current_cell) ||
      !uint("rss_kb", s.rss_kb) || !text("shard", s.shard) ||
      !uint("pid", s.pid) || !text("argv_hash", s.argv_hash)) {
    return false;
  }
  out = std::move(s);
  return true;
}

hb_tail::hb_tail(std::string path) : path_(std::move(path)) {}

std::size_t hb_tail::poll() {
  std::ifstream in(path_, std::ios::binary);
  if (!in.good()) return 0;  // not created yet (or transiently unreadable)
  // A healed shard may truncate/recreate its heartbeat file. If the file
  // is now smaller than what we already consumed, seeking to offset_
  // would silently read nothing forever — detect the shrink, drop any
  // buffered partial line (it belonged to the old incarnation), and
  // re-tail from the start.
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  if (size >= 0 && static_cast<std::uint64_t>(size) < offset_) {
    offset_ = 0;
    pending_.clear();
    ++resets_;
  }
  in.seekg(static_cast<std::streamoff>(offset_));
  if (!in.good()) return 0;
  std::string fresh((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  offset_ += fresh.size();
  pending_ += fresh;

  std::size_t parsed = 0;
  std::size_t start = 0;
  while (true) {
    const std::size_t nl = pending_.find('\n', start);
    if (nl == std::string::npos) break;
    const std::string line = pending_.substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    hb_sample s;
    if (parse_hb_line(line, s)) {
      last_ = std::move(s);
      ++samples_;
      ++parsed;
    } else {
      ++skipped_;
    }
  }
  pending_.erase(0, start);
  return parsed;
}

}  // namespace leancon::fleet
