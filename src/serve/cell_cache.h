// Persistent cross-run cell cache — the campaign service's memo table.
//
// The cache stores finished cells as raw cells-file lines (the exact bytes
// campaign_io::format_line emits, without the trailing newline), keyed the
// same way as resume: (cell_hash, seed). That makes the cache file itself
// a valid cells file — campaign_report and campaign_io::merge_files read
// it unchanged — and makes a cache hit byte-identical by construction to
// the line a fresh single-process campaign would write.
//
// Persistence: every insert appends its line to the file and flushes, so a
// killed daemon loses at most the in-flight cells (exactly the campaign_io
// durability story). Recency changes and evictions are memory-only until
// compact() (called on clean shutdown, and automatically when the on-disk
// file grows past twice the live bytes) rewrites the file atomically in
// LRU order — oldest first — so a reload preserves the eviction order.
//
// Eviction/consistency policy:
//   - size-capped LRU: when max_bytes > 0, inserting past the cap evicts
//     least-recently-used entries until the cache fits (the newest entry
//     is never evicted — a cache that cannot hold one line would thrash
//     into uselessness). find() refreshes recency.
//   - conflicts are a HARD error, mirroring campaign_io::merge_files: a
//     key already cached with DIFFERENT bytes throws std::runtime_error
//     (a determinism violation or a mismatched cache file — never
//     something to overwrite silently). Re-inserting identical bytes is
//     benign and refreshes recency.
//
// Not thread-safe: the owning cell_service serializes access.
#pragma once

#include <cstdint>
#include <cstdio>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <utility>

namespace leancon::serve {

class cell_cache {
 public:
  /// Opens (creating if absent) the cache file at `path` and indexes its
  /// records. max_bytes = 0 means unbounded. Unparseable lines are counted
  /// into skipped_lines() and ignored; a duplicated key with differing
  /// bytes throws std::runtime_error (corrupt or foreign cache file).
  explicit cell_cache(std::string path, std::uint64_t max_bytes = 0);
  ~cell_cache();  ///< compacts (best-effort) and closes

  cell_cache(const cell_cache&) = delete;
  cell_cache& operator=(const cell_cache&) = delete;

  /// The cached line for (hash, seed) — a copy, valid across later
  /// evictions — refreshing the entry's recency. std::nullopt on miss.
  std::optional<std::string> find(std::uint64_t hash, std::uint64_t seed);

  /// Caches `line` (no trailing newline) under (hash, seed), appends it to
  /// the file, and evicts past the size cap. Identical re-insertion just
  /// refreshes recency; differing bytes throw std::runtime_error.
  void insert(std::uint64_t hash, std::uint64_t seed,
              const std::string& line);

  /// Rewrites the file atomically (tmp + rename) holding exactly the live
  /// entries in LRU order, oldest first.
  void compact();

  std::size_t entries() const { return by_key_.size(); }
  /// Live bytes (line bytes + newlines) — what the size cap compares.
  std::uint64_t bytes() const { return bytes_; }
  std::uint64_t max_bytes() const { return max_bytes_; }
  std::uint64_t evictions() const { return evictions_; }
  /// Entries restored from the file at open.
  std::size_t loaded() const { return loaded_; }
  std::size_t skipped_lines() const { return skipped_lines_; }
  const std::string& path() const { return path_; }

 private:
  struct entry {
    std::uint64_t hash = 0;
    std::uint64_t seed = 0;
    std::string line;
  };
  using key = std::pair<std::uint64_t, std::uint64_t>;

  void evict_to_cap();
  void append_line(const std::string& line);

  std::string path_;
  std::uint64_t max_bytes_ = 0;
  std::FILE* append_ = nullptr;
  std::list<entry> lru_;  ///< front = least recently used
  std::map<key, std::list<entry>::iterator> by_key_;
  std::uint64_t bytes_ = 0;       ///< live bytes
  std::uint64_t file_bytes_ = 0;  ///< bytes on disk (stale lines included)
  std::uint64_t evictions_ = 0;
  std::size_t loaded_ = 0;
  std::size_t skipped_lines_ = 0;
};

}  // namespace leancon::serve
