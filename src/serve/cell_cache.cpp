#include "serve/cell_cache.h"

#include <cinttypes>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "exp/campaign_io.h"

namespace leancon::serve {

namespace {

std::string hex64(std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016" PRIx64, v);
  return buf;
}

bool blank(const std::string& line) {
  for (const char c : line) {
    if (c != ' ' && c != '\t' && c != '\r') return false;
  }
  return true;
}

}  // namespace

cell_cache::cell_cache(std::string path, std::uint64_t max_bytes)
    : path_(std::move(path)), max_bytes_(max_bytes) {
  {
    std::ifstream in(path_, std::ios::binary);
    std::string line;
    while (in.good() && std::getline(in, line)) {
      file_bytes_ += line.size() + 1;
      if (blank(line)) continue;
      campaign_io::record rec;
      if (!campaign_io::parse_line(line, rec)) {
        ++skipped_lines_;
        continue;
      }
      const key k{rec.hash, rec.seed};
      const auto it = by_key_.find(k);
      if (it != by_key_.end()) {
        if (it->second->line == line) {
          // A repeated identical line (e.g. a cells file copied onto the
          // cache twice) refreshes recency: later occurrence = newer.
          lru_.splice(lru_.end(), lru_, it->second);
          continue;
        }
        throw std::runtime_error(
            "cell_cache: " + path_ + " holds conflicting records for cell "
            "(hash " + hex64(rec.hash) + ", seed " + hex64(rec.seed) +
            ") — refusing to serve from a corrupt cache");
      }
      lru_.push_back(entry{rec.hash, rec.seed, line});
      by_key_.emplace(k, std::prev(lru_.end()));
      bytes_ += line.size() + 1;
    }
    loaded_ = by_key_.size();
  }
  evict_to_cap();  // may compact(), which opens the append handle itself
  if (append_ == nullptr) {
    append_ = std::fopen(path_.c_str(), "a");
    if (append_ == nullptr) {
      throw std::runtime_error("cell_cache: cannot open " + path_);
    }
  }
}

cell_cache::~cell_cache() {
  try {
    compact();
  } catch (const std::exception&) {
    // Best-effort: the append-log alone is still a correct (if stale-line
    // carrying) cache file.
  }
  if (append_ != nullptr) std::fclose(append_);
}

std::optional<std::string> cell_cache::find(std::uint64_t hash,
                                            std::uint64_t seed) {
  const auto it = by_key_.find({hash, seed});
  if (it == by_key_.end()) return std::nullopt;
  lru_.splice(lru_.end(), lru_, it->second);  // most recently used
  return it->second->line;
}

void cell_cache::insert(std::uint64_t hash, std::uint64_t seed,
                        const std::string& line) {
  const key k{hash, seed};
  const auto it = by_key_.find(k);
  if (it != by_key_.end()) {
    if (it->second->line == line) {
      lru_.splice(lru_.end(), lru_, it->second);
      return;
    }
    throw std::runtime_error(
        "cell_cache: conflicting record for cell (hash " + hex64(hash) +
        ", seed " + hex64(seed) + "): cache " + path_ +
        " holds the same key with different bytes");
  }
  lru_.push_back(entry{hash, seed, line});
  by_key_.emplace(k, std::prev(lru_.end()));
  bytes_ += line.size() + 1;
  append_line(line);
  evict_to_cap();
}

void cell_cache::evict_to_cap() {
  if (max_bytes_ == 0) return;
  while (bytes_ > max_bytes_ && lru_.size() > 1) {
    const entry& victim = lru_.front();
    bytes_ -= victim.line.size() + 1;
    by_key_.erase({victim.hash, victim.seed});
    lru_.pop_front();
    ++evictions_;
  }
  // Evictions leave stale lines on disk; rewrite once they dominate.
  if (file_bytes_ > 2 * bytes_ + 4096) compact();
}

void cell_cache::append_line(const std::string& line) {
  if (append_ == nullptr) return;  // still loading (constructor)
  std::fputs(line.c_str(), append_);
  std::fputc('\n', append_);
  std::fflush(append_);
  file_bytes_ += line.size() + 1;
}

void cell_cache::compact() {
  const std::string tmp = path_ + ".compact.tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out.good()) {
      throw std::runtime_error("cell_cache: cannot write " + tmp);
    }
    for (const auto& e : lru_) out << e.line << '\n';
    out.flush();
    if (!out.good()) {
      throw std::runtime_error("cell_cache: short write to " + tmp);
    }
  }
  if (append_ != nullptr) {
    std::fclose(append_);
    append_ = nullptr;
  }
  std::filesystem::rename(tmp, path_);
  file_bytes_ = bytes_;
  append_ = std::fopen(path_.c_str(), "a");
  if (append_ == nullptr) {
    throw std::runtime_error("cell_cache: cannot reopen " + path_);
  }
}

}  // namespace leancon::serve
