// Unix-domain-socket JSONL front-end for the campaign service.
//
// One long-running daemon (bench/campaign_serve) listens on a filesystem
// socket; clients connect and exchange newline-delimited JSON. Each
// connection is handled on its own thread, so concurrent clients
// requesting overlapping grids coalesce inside cell_service instead of
// queueing behind each other.
//
// Protocol (one JSON object per line):
//
//   request   {"op": "submit", "scenarios": "...", "ns": "...",
//              "trials": "...", "op-budget": "...", "seed": "..."}
//             Fields mirror the campaign grid CLI flags exactly (string or
//             number; absent fields take the flag defaults), so server and
//             workers expand the identical grid (campaign_cli.h).
//   response  {"ack": {"cells": N}}
//             ...one raw cells-file record line per cell, in full-grid
//             ordinal order — the concatenation is byte-identical to the
//             single-process campaign's cells file...
//             {"done": {"cells": N, "cache_hits": N, "cache_misses": N,
//                       "coalesced": N, "evictions": N, "sim_ops": X}}
//
//   {"op": "ping"}     -> {"pong": {"pid": N}}
//   {"op": "stats"}    -> {"stats": {...cumulative counters, cache size...}}
//   {"op": "shutdown"} -> {"ok": true}, then the daemon drains and exits.
//
// Any failure is reported as {"error": "..."} — mid-stream for a submit
// that dies after its ack (the client must treat a stream not terminated
// by "done" as failed).
#pragma once

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "serve/service.h"

namespace leancon::serve {

class server {
 public:
  /// Binds the unix socket at `socket_path` (an existing socket file is
  /// replaced). Throws std::runtime_error when the socket cannot be bound.
  server(std::string socket_path, cell_service& service);
  ~server();

  server(const server&) = delete;
  server& operator=(const server&) = delete;

  /// Accept loop: blocks until request_stop() (or a shutdown op), then
  /// joins every connection thread.
  void run();

  /// Thread- and signal-safe: makes run() return after in-flight
  /// connections drain.
  void request_stop() { stop_.store(true); }

  const std::string& socket_path() const { return socket_path_; }

 private:
  void handle_connection(int fd);
  void handle_request(int fd, const std::string& line);

  std::string socket_path_;
  cell_service& service_;
  int listen_fd_ = -1;
  std::atomic<bool> stop_{false};
  std::vector<std::thread> connections_;
};

}  // namespace leancon::serve
