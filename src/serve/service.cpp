#include "serve/service.h"

#include <atomic>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <utility>

#include "exp/campaign_io.h"
#include "fleet/supervisor.h"
#include "obs/obs.h"

namespace leancon::serve {

namespace {

double cell_sim_ops(const cell_metrics& metrics) {
  const double ops = metrics.get("total_ops_sum");
  return std::isfinite(ops) ? ops : 0.0;
}

/// format_line emits a trailing newline; the cache and the service speak
/// bare lines.
std::string strip_newline(std::string line) {
  while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
    line.pop_back();
  }
  return line;
}

}  // namespace

cell_service::cell_service(cell_cache& cache, miss_runner runner)
    : cache_(cache), runner_(std::move(runner)) {}

miss_runner cell_service::pool_runner(unsigned threads) {
  return [threads](const grid_request&,
                   const std::vector<campaign_cell>& missing,
                   const line_sink& on_line) {
    campaign_options copts;
    copts.threads = threads;
    copts.on_cell = [&on_line](const cell_result& r) {
      on_line(r.hash, r.cell.params.seed,
              strip_newline(campaign_io::format_line(
                  r, /*record_seconds=*/false)),
              cell_sim_ops(r.metrics));
    };
    run_campaign(missing, copts);
  };
}

miss_runner cell_service::fleet_runner(fleet::fleet_config base) {
  // Each request gets its own run directory so concurrent fleets never
  // share shard/heartbeat files.
  auto req_counter = std::make_shared<std::atomic<std::uint64_t>>(0);
  return [base = std::move(base), req_counter](
             const grid_request& req,
             const std::vector<campaign_cell>& missing,
             const line_sink& on_line) {
    fleet::fleet_config cfg = base;
    cfg.grid = req.grid;
    cfg.grid_flags = req.grid_flags;
    cfg.only_ordinals.clear();
    cfg.only_ordinals.reserve(missing.size());
    for (const auto& c : missing) cfg.only_ordinals.push_back(c.ordinal);
    cfg.run_dir = base.run_dir + "/req_" +
                  std::to_string(req_counter->fetch_add(1));
    const fleet::fleet_report rep = fleet::run_fleet(cfg);
    if (!rep.ok) {
      throw std::runtime_error("serve: fleet run failed: " + rep.error);
    }
    for (std::size_t i = 0; i < rep.merged.records.size(); ++i) {
      const campaign_io::record& rec = rep.merged.records[i];
      on_line(rec.hash, rec.seed, rep.merged.lines[i],
              cell_sim_ops(rec.metrics));
    }
  };
}

request_stats cell_service::run(
    const grid_request& req,
    const std::function<void(const std::string& line)>& emit) {
  static auto* hits_counter = obs::counter("serve.cache_hits");
  static auto* misses_counter = obs::counter("serve.cache_misses");
  static auto* coalesced_counter = obs::counter("serve.coalesced");
  static auto* evictions_counter = obs::counter("serve.evictions");

  const std::vector<campaign_cell> cells = req.grid.expand();
  request_stats stats;
  stats.cells = cells.size();

  // Per-cell resolution slots, aligned with `cells` (= ordinal order).
  // ready slots carry the line; the rest wait on an in-flight entry.
  struct slot {
    std::string line;
    std::shared_ptr<inflight> wait;
  };
  std::vector<slot> slots(cells.size());
  std::vector<campaign_cell> missing;
  // Entries THIS request registered; on runner failure every one of them
  // must be failed so no waiter (ours or a coalesced request's) hangs.
  std::vector<std::pair<key, std::shared_ptr<inflight>>> owned;

  std::uint64_t evictions_before = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    evictions_before = cache_.evictions();
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const key k{cell_hash(cells[i]), cells[i].params.seed};
      if (auto line = cache_.find(k.first, k.second)) {
        slots[i].line = std::move(*line);
        ++stats.cache_hits;
        continue;
      }
      const auto it = inflight_.find(k);
      if (it != inflight_.end()) {
        slots[i].wait = it->second;
        ++stats.coalesced;
        continue;
      }
      auto entry = std::make_shared<inflight>();
      inflight_.emplace(k, entry);
      slots[i].wait = entry;
      owned.emplace_back(k, entry);
      missing.push_back(cells[i]);
      ++stats.cache_misses;
    }
    ++requests_;
  }
  hits_counter->fetch_add(stats.cache_hits, std::memory_order_relaxed);
  misses_counter->fetch_add(stats.cache_misses, std::memory_order_relaxed);
  coalesced_counter->fetch_add(stats.coalesced, std::memory_order_relaxed);

  // Simulate the claimed cells on the runner while the streaming loop
  // below releases lines in ordinal order as they resolve.
  std::thread runner_thread;
  if (!missing.empty()) {
    runner_thread = std::thread([&] {
      const line_sink on_line = [&](std::uint64_t hash, std::uint64_t seed,
                                    const std::string& line,
                                    double sim_ops) {
        std::lock_guard<std::mutex> lock(mu_);
        // Cache first, then wake: a request classifying between the two
        // would either hit the cache or find the entry still in-flight —
        // never miss a cell that is already done.
        cache_.insert(hash, seed, line);
        stats.sim_ops += sim_ops;
        const auto it = inflight_.find({hash, seed});
        if (it != inflight_.end()) {
          it->second->line = line;
          it->second->done = true;
          inflight_.erase(it);
        }
        cv_.notify_all();
      };
      try {
        runner_(req, missing, on_line);
        // A runner that returns without reporting every claimed cell
        // would hang the waiters — fail the stragglers loudly instead.
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [k, entry] : owned) {
          if (entry->done || entry->failed) continue;
          entry->failed = true;
          entry->error = "serve: runner finished without reporting cell";
          inflight_.erase(k);
        }
        cv_.notify_all();
      } catch (const std::exception& e) {
        std::lock_guard<std::mutex> lock(mu_);
        for (auto& [k, entry] : owned) {
          if (entry->done || entry->failed) continue;
          entry->failed = true;
          entry->error = e.what();
          inflight_.erase(k);
        }
        cv_.notify_all();
      }
    });
  }

  // Ordinal-order release: each cell streams the moment it and all its
  // predecessors are resolved. The runner must be joined no matter how
  // streaming ends (a sink that throws on a dead socket included).
  std::string error;
  try {
    for (auto& s : slots) {
      if (s.wait != nullptr) {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [&] { return s.wait->done || s.wait->failed; });
        if (s.wait->failed) {
          error = s.wait->error;
          break;
        }
        s.line = s.wait->line;
      }
      emit(s.line);
    }
  } catch (...) {
    if (runner_thread.joinable()) runner_thread.join();
    throw;
  }
  if (runner_thread.joinable()) runner_thread.join();

  {
    std::lock_guard<std::mutex> lock(mu_);
    stats.evictions = cache_.evictions() - evictions_before;
    totals_.cells += stats.cells;
    totals_.cache_hits += stats.cache_hits;
    totals_.cache_misses += stats.cache_misses;
    totals_.coalesced += stats.coalesced;
    totals_.evictions += stats.evictions;
    totals_.sim_ops += stats.sim_ops;
  }
  evictions_counter->fetch_add(stats.evictions, std::memory_order_relaxed);
  if (!error.empty()) {
    throw std::runtime_error("serve: request failed: " + error);
  }
  return stats;
}

request_stats cell_service::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  return totals_;
}

std::uint64_t cell_service::requests() const {
  std::lock_guard<std::mutex> lock(mu_);
  return requests_;
}

}  // namespace leancon::serve
