// Campaign service core: classify → schedule → coalesce → stream.
//
// A cell_service answers grid requests from a persistent cell_cache plus a
// pluggable miss runner. For each request it classifies every cell of the
// expanded grid under one lock:
//
//   hit        the (cell_hash, seed) key is cached — the line is answered
//              byte-for-byte from the cache with zero simulator work
//   coalesced  another request is already simulating the cell — this
//              request waits on the SAME in-flight entry instead of
//              duplicating the work
//   miss       this request claims the cell, registers an in-flight entry,
//              and schedules it on the miss runner
//
// and then streams the request's lines back in full-grid ordinal order —
// each line released as soon as it and all its predecessors are resolved —
// which makes the concatenated stream byte-identical to the cells file the
// single-process campaign would write for the same grid.
//
// The miss runner is how cache-miss cells reach the simulator: the
// in-process pool_runner schedules them on the exp/ worker pool
// (run_campaign), the fleet_runner forks them through the src/fleet/
// supervisor as an --only-cells restricted fleet. Either way the runner
// reports each finished cell's canonical line bytes, which are inserted
// into the cache BEFORE the waiters are woken — a concurrent request can
// never observe the cell "done but uncached".
//
// Thread-safety: run() may be called from many threads concurrently (the
// socket server calls it from per-connection threads); the cache and the
// in-flight table are guarded by one service mutex.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <utility>
#include <string>
#include <vector>

#include "exp/campaign.h"
#include "serve/cell_cache.h"

namespace leancon::fleet {
struct fleet_config;
}  // namespace leancon::fleet

namespace leancon::serve {

/// One parsed grid request: the declarative grid plus the verbatim CLI
/// flags that produced it ("--scenarios=...", ...), so a fleet runner can
/// forward EXACTLY the flags the request's grid was expanded from
/// (campaign_cli.h explains why byte-identity depends on it).
struct grid_request {
  campaign_grid grid;
  std::vector<std::string> grid_flags;
};

/// Per-request outcome counters (the client's BENCH counters).
/// cache_hits + cache_misses + coalesced == cells.
struct request_stats {
  std::uint64_t cells = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;  ///< cells THIS request simulated
  std::uint64_t coalesced = 0;     ///< waited on another request's work
  std::uint64_t evictions = 0;     ///< cache evictions during this request
  /// Simulated shared-memory ops this request's fresh cells cost (summed
  /// total_ops_sum where present). 0 for a fully-warm request.
  double sim_ops = 0.0;
};

/// Reports one finished cell: its resume key, its canonical line bytes (no
/// trailing newline), and its simulated op count (0 when unknown).
using line_sink =
    std::function<void(std::uint64_t hash, std::uint64_t seed,
                       const std::string& line, double sim_ops)>;

/// Simulates `missing` (cells keep full-grid seeds/hashes/ordinals) and
/// invokes on_line once per cell, in any order. Throwing fails every
/// waiter of the batch.
using miss_runner = std::function<void(const grid_request& req,
                                       const std::vector<campaign_cell>& missing,
                                       const line_sink& on_line)>;

class cell_service {
 public:
  /// `cache` must outlive the service.
  cell_service(cell_cache& cache, miss_runner runner);

  /// In-process runner: run_campaign on the shared worker pool with the
  /// given concurrency cap (0 = hardware concurrency).
  static miss_runner pool_runner(unsigned threads);

  /// Fleet runner: forks the missing cells through fleet::run_fleet as an
  /// --only-cells restricted fleet. `base` supplies shards, worker_argv,
  /// run_dir (each request runs under run_dir/req_<k>), and tuning; grid
  /// and grid_flags are overwritten per request.
  static miss_runner fleet_runner(fleet::fleet_config base);

  /// Serves one request: streams every cell line of the expanded grid (no
  /// trailing newline) to `emit` in ordinal order. Throws
  /// std::runtime_error when the miss runner fails (waiters of coalesced
  /// cells see the owner's failure); cells already streamed stay streamed.
  request_stats run(const grid_request& req,
                    const std::function<void(const std::string& line)>& emit);

  /// Cumulative totals across all requests (the daemon's BENCH counters).
  request_stats totals() const;
  std::uint64_t requests() const;

  cell_cache& cache() { return cache_; }
  /// The service mutex — hold it when touching cache() from outside run()
  /// (e.g. the stats op of the socket server).
  std::mutex& mutex() { return mu_; }

 private:
  struct inflight {
    bool done = false;
    bool failed = false;
    std::string line;
    std::string error;
  };
  using key = std::pair<std::uint64_t, std::uint64_t>;

  cell_cache& cache_;
  miss_runner runner_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::map<key, std::shared_ptr<inflight>> inflight_;
  request_stats totals_;
  std::uint64_t requests_ = 0;
};

}  // namespace leancon::serve
