#include "serve/server.h"

#include <cerrno>
#include <cmath>
#include <cstring>
#include <sstream>
#include <stdexcept>
#include <utility>

#if defined(__unix__) || defined(__APPLE__)
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "exp/campaign_cli.h"
#include "obs/heartbeat.h"
#include "util/json.h"
#include "util/options.h"

namespace leancon::serve {

#if defined(__unix__) || defined(__APPLE__)

namespace {

/// Writes all of `text`, surviving partial writes; MSG_NOSIGNAL so a
/// client that hung up yields an error return, not SIGPIPE. Returns false
/// when the peer is gone.
bool send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool send_line(int fd, const std::string& line) {
  return send_all(fd, line + "\n");
}

bool send_error(int fd, const std::string& message) {
  std::ostringstream os;
  os << "{\"error\":";
  json::write_string(os, message);
  os << "}";
  return send_line(fd, os.str());
}

/// A request field may arrive as a JSON string or number; grid flags are
/// strings either way. Returns false on a type it cannot render (or a
/// non-integral number — grid flags are integer-valued).
bool field_as_flag(const json::value& v, std::string& out) {
  if (v.k == json::value::kind::string) {
    out = v.str;
    return true;
  }
  if (v.k == json::value::kind::number) {
    if (!std::isfinite(v.num) || v.num != std::floor(v.num) ||
        std::fabs(v.num) > 9.007199254740992e15) {
      return false;
    }
    out = std::to_string(static_cast<std::int64_t>(v.num));
    return true;
  }
  return false;
}

}  // namespace

server::server(std::string socket_path, cell_service& service)
    : socket_path_(std::move(socket_path)), service_(service) {
  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    throw std::runtime_error("serve: cannot create socket: " +
                             std::string(std::strerror(errno)));
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path_.size() >= sizeof(addr.sun_path)) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: socket path too long: " + socket_path_);
  }
  std::strncpy(addr.sun_path, socket_path_.c_str(),
               sizeof(addr.sun_path) - 1);
  ::unlink(socket_path_.c_str());  // replace a stale socket file
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, 16) != 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("serve: cannot bind " + socket_path_ + ": " +
                             why);
  }
}

server::~server() {
  if (listen_fd_ >= 0) ::close(listen_fd_);
  for (auto& t : connections_) {
    if (t.joinable()) t.join();
  }
  ::unlink(socket_path_.c_str());
}

void server::run() {
  while (!stop_.load()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0 && errno != EINTR) break;
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    connections_.emplace_back([this, fd] { handle_connection(fd); });
  }
  for (auto& t : connections_) {
    if (t.joinable()) t.join();
  }
  connections_.clear();
}

void server::handle_connection(int fd) {
  std::string buffer;
  char chunk[4096];
  while (true) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF or error: client is done
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (true) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (!line.empty()) handle_request(fd, line);
    }
    buffer.erase(0, start);
  }
  ::close(fd);
}

void server::handle_request(int fd, const std::string& line) {
  json::value req;
  try {
    req = json::parse(line);
  } catch (const std::exception& e) {
    send_error(fd, std::string("bad request line: ") + e.what());
    return;
  }
  const json::value* op = req.find("op");
  if (req.k != json::value::kind::object || op == nullptr ||
      op->k != json::value::kind::string) {
    send_error(fd, "request must be an object with a string \"op\"");
    return;
  }

  if (op->str == "ping") {
    std::ostringstream os;
    os << "{\"pong\":{\"pid\":";
    json::write_uint(os, obs::own_pid());
    os << "}}";
    send_line(fd, os.str());
    return;
  }

  if (op->str == "stats") {
    const request_stats t = service_.totals();
    std::size_t cache_cells = 0;
    std::uint64_t cache_bytes = 0;
    {
      std::lock_guard<std::mutex> lock(service_.mutex());
      cache_cells = service_.cache().entries();
      cache_bytes = service_.cache().bytes();
    }
    std::ostringstream os;
    os << "{\"stats\":{\"requests\":";
    json::write_uint(os, service_.requests());
    os << ",\"cells\":";
    json::write_uint(os, t.cells);
    os << ",\"cache_hits\":";
    json::write_uint(os, t.cache_hits);
    os << ",\"cache_misses\":";
    json::write_uint(os, t.cache_misses);
    os << ",\"coalesced\":";
    json::write_uint(os, t.coalesced);
    os << ",\"evictions\":";
    json::write_uint(os, t.evictions);
    os << ",\"sim_ops\":";
    json::write_number(os, t.sim_ops);
    os << ",\"cache_cells\":";
    json::write_uint(os, cache_cells);
    os << ",\"cache_bytes\":";
    json::write_uint(os, cache_bytes);
    os << "}}";
    send_line(fd, os.str());
    return;
  }

  if (op->str == "shutdown") {
    send_line(fd, "{\"ok\":true}");
    request_stop();
    return;
  }

  if (op->str != "submit") {
    send_error(fd, "unknown op \"" + op->str + "\"");
    return;
  }

  // Rebuild the grid through the SAME flag surface the workers use
  // (add_grid_flags + grid_from_options), so server-side expansion, cell
  // hashes, and seeds are identical to every other driver's.
  options opts;
  add_grid_flags(opts);
  std::vector<std::string> argv_strings = {"campaign_serve"};
  for (const char* flag :
       {"scenarios", "ns", "trials", "op-budget", "seed"}) {
    const json::value* field = req.find(flag);
    if (field == nullptr) continue;
    std::string value;
    if (!field_as_flag(*field, value)) {
      send_error(fd, std::string("field \"") + flag +
                         "\" must be a string or an integer");
      return;
    }
    argv_strings.push_back("--" + std::string(flag) + "=" + value);
  }
  std::vector<const char*> argv;
  argv.reserve(argv_strings.size());
  for (const auto& s : argv_strings) argv.push_back(s.c_str());
  std::ostringstream diag;
  opts.set_diagnostics(diag);
  if (!opts.parse(static_cast<int>(argv.size()), argv.data())) {
    send_error(fd, "bad grid flags: " + diag.str());
    return;
  }

  grid_request request;
  try {
    request.grid = grid_from_options(opts);
  } catch (const std::exception& e) {
    send_error(fd, e.what());
    return;
  }
  for (const char* flag :
       {"scenarios", "ns", "trials", "op-budget", "seed"}) {
    request.grid_flags.push_back("--" + std::string(flag) + "=" +
                                 opts.get(flag));
  }

  {
    std::ostringstream os;
    os << "{\"ack\":{\"cells\":";
    json::write_uint(os, request.grid.expand().size());
    os << "}}";
    if (!send_line(fd, os.str())) return;
  }

  request_stats stats;
  try {
    stats = service_.run(request, [fd](const std::string& cell_line) {
      if (!send_line(fd, cell_line)) {
        // The client hung up mid-stream; the runner still finishes (its
        // results are cached for the next request), but stop writing.
        throw std::runtime_error("client disconnected");
      }
    });
  } catch (const std::exception& e) {
    send_error(fd, e.what());
    return;
  }

  std::ostringstream os;
  os << "{\"done\":{\"cells\":";
  json::write_uint(os, stats.cells);
  os << ",\"cache_hits\":";
  json::write_uint(os, stats.cache_hits);
  os << ",\"cache_misses\":";
  json::write_uint(os, stats.cache_misses);
  os << ",\"coalesced\":";
  json::write_uint(os, stats.coalesced);
  os << ",\"evictions\":";
  json::write_uint(os, stats.evictions);
  os << ",\"sim_ops\":";
  json::write_number(os, stats.sim_ops);
  os << "}}";
  send_line(fd, os.str());
}

#else  // !unix

server::server(std::string socket_path, cell_service& service)
    : socket_path_(std::move(socket_path)), service_(service) {
  throw std::runtime_error("serve: unix-domain sockets are unavailable on "
                           "this platform");
}

server::~server() = default;
void server::run() {}
void server::handle_connection(int) {}
void server::handle_request(int, const std::string&) {}

#endif

}  // namespace leancon::serve
