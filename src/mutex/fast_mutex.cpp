#include "mutex/fast_mutex.h"

#include <stdexcept>

#include "memory/sim_memory.h"
#include "obs/obs.h"
#include "sim/event_queue.h"

namespace leancon {

fast_mutex_machine::fast_mutex_machine(int pid, std::size_t n,
                                       std::uint64_t entries,
                                       std::uint64_t cs_work)
    : pid_(pid), n_(n), entries_(entries), cs_work_(cs_work) {
  if (pid < 0 || static_cast<std::size_t>(pid) >= n) {
    throw std::invalid_argument("fast_mutex: pid out of range");
  }
  if (entries == 0) done_ = true;
}

operation fast_mutex_machine::next_op() const {
  if (done_) throw std::logic_error("fast_mutex: next_op after done");
  switch (phase_) {
    case phase::set_b:
      return operation::write(b_reg(pid_), 1);
    case phase::set_x:
      return operation::write(x_reg(), self());
    case phase::read_y_gate:
    case phase::spin_y:
    case phase::read_y_final:
    case phase::spin_y2:
      return operation::read(y_reg());
    case phase::backoff_b:
    case phase::slow_clear_b:
    case phase::release_b:
      return operation::write(b_reg(pid_), 0);
    case phase::set_y:
      return operation::write(y_reg(), self());
    case phase::read_x_check:
      return operation::read(x_reg());
    case phase::scan_b:
      return operation::read(b_reg(static_cast<int>(scan_index_)));
    case phase::enter_cs:
      return operation::write(canary_reg(), self());
    case phase::cs_body:
      return operation::read(canary_reg());
    case phase::release_y:
      return operation::write(y_reg(), 0);
    case phase::finished:
      break;
  }
  throw std::logic_error("fast_mutex: invalid phase");
}

void fast_mutex_machine::apply(std::uint64_t result) {
  if (done_) throw std::logic_error("fast_mutex: apply after done");
  ++steps_;
  switch (phase_) {
    case phase::set_b:
      phase_ = phase::set_x;
      break;
    case phase::set_x:
      phase_ = phase::read_y_gate;
      break;
    case phase::read_y_gate:
      if (result != 0) {
        slow_path_taken_ = true;
        phase_ = phase::backoff_b;
      } else {
        phase_ = phase::set_y;
      }
      break;
    case phase::backoff_b:
      phase_ = phase::spin_y;
      break;
    case phase::spin_y:
      if (result == 0) phase_ = phase::set_b;  // restart
      break;
    case phase::set_y:
      phase_ = phase::read_x_check;
      break;
    case phase::read_x_check:
      if (result == self()) {
        phase_ = phase::enter_cs;
      } else {
        slow_path_taken_ = true;
        phase_ = phase::slow_clear_b;
      }
      break;
    case phase::slow_clear_b:
      scan_index_ = 0;
      phase_ = phase::scan_b;
      break;
    case phase::scan_b:
      if (result == 0) {
        ++scan_index_;
        if (scan_index_ >= n_) phase_ = phase::read_y_final;
      }
      // else: keep spinning on the same b[j]
      break;
    case phase::read_y_final:
      if (result == self()) {
        phase_ = phase::enter_cs;
      } else if (result == 0) {
        phase_ = phase::set_b;  // restart immediately
      } else {
        phase_ = phase::spin_y2;
      }
      break;
    case phase::spin_y2:
      if (result == 0) phase_ = phase::set_b;  // restart
      break;
    case phase::enter_cs:
      in_cs_ = true;
      cs_reads_done_ = 0;
      phase_ = cs_work_ > 0 ? phase::cs_body : phase::release_y;
      break;
    case phase::cs_body:
      if (result != self()) ++canary_violations_;
      ++cs_reads_done_;
      if (cs_reads_done_ >= cs_work_) phase_ = phase::release_y;
      break;
    case phase::release_y:
      in_cs_ = false;
      phase_ = phase::release_b;
      break;
    case phase::release_b:
      ++completed_;
      if (!slow_path_taken_) ++fast_entries_;
      slow_path_taken_ = false;
      if (completed_ >= entries_) {
        done_ = true;
        phase_ = phase::finished;
      } else {
        phase_ = phase::set_b;
      }
      break;
    case phase::finished:
      break;
  }
}

mutex_result run_mutex(const mutex_config& config) {
  const std::size_t n = config.processes;
  if (n == 0) throw std::invalid_argument("run_mutex: no processes");

  mutex_result result;
  result.ops_per_process.assign(n, 0);

  sim_memory memory;
  std::vector<fast_mutex_machine> machines;
  std::vector<rng> streams;
  machines.reserve(n);
  streams.reserve(n);
  event_queue queue;

  for (std::size_t i = 0; i < n; ++i) {
    machines.emplace_back(static_cast<int>(i), n, config.entries_per_process,
                          config.cs_work);
    streams.emplace_back(config.seed, i + 1);
    if (machines[i].done()) continue;
    double t = config.sched.start_offset(static_cast<int>(i),
                                         static_cast<int>(n), streams[i]);
    bool halted = false;
    t += config.sched.op_increment(static_cast<int>(i), 1, false, streams[i],
                                   halted);
    if (!halted) queue.push(t, static_cast<int>(i));
  }

  const bool obs_on = obs::enabled();
  if (obs_on) {
    obs::emit(obs::event_kind::trial_begin, 0.0, n, config.seed);
  }

  std::uint64_t in_cs_count = 0;
  while (!queue.empty() && result.total_ops < config.max_total_ops) {
    const sim_event ev = queue.pop();
    const auto pid = static_cast<std::size_t>(ev.pid);
    auto& m = machines[pid];
    if (m.done()) continue;

    const bool was_in_cs = m.in_critical_section();
    const operation op = m.next_op();
    const std::uint64_t value = memory.execute(ev.pid, op);
    m.apply(value);
    ++result.total_ops;
    ++result.ops_per_process[pid];

    // Exact interleaving-level mutual-exclusion check.
    if (m.in_critical_section() != was_in_cs) {
      in_cs_count += m.in_critical_section() ? 1 : -1;
      if (in_cs_count > 1) ++result.overlap_violations;
      if (obs_on) {
        if (m.in_critical_section()) {
          obs::emit(obs::event_kind::cs_enter, ev.time,
                    static_cast<std::uint64_t>(ev.pid));
        } else {
          obs::emit(obs::event_kind::cs_exit, ev.time,
                    static_cast<std::uint64_t>(ev.pid),
                    m.completed_entries());
        }
      }
    }

    if (!m.done()) {
      bool halted = false;
      const operation next = m.next_op();
      const double inc = config.sched.op_increment(
          ev.pid, result.ops_per_process[pid] + 1,
          next.kind == op_kind::write, streams[pid], halted);
      if (!halted) queue.push(ev.time + inc, ev.pid);
    }
    result.finish_time = ev.time;
  }

  result.all_finished = true;
  for (const auto& m : machines) {
    result.all_finished = result.all_finished && m.done();
    result.total_entries += m.completed_entries();
    result.fast_path_entries += m.fast_path_entries();
    result.canary_violations += m.canary_violations();
  }
  if (obs_on) {
    obs::emit(obs::event_kind::trial_end, result.finish_time,
              result.all_finished ? n : 0, 0, result.total_ops);
  }
  return result;
}

}  // namespace leancon
