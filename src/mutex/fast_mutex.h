// Mutual exclusion under noisy scheduling (paper Section 10: "the line of
// inquiry started by Gafni and Mitzenmacher, on analyzing the behavior of
// timing-based algorithms for mutual exclusion and related problems with
// random scheduling, could naturally extend to the more general model of
// noisy scheduling").
//
// We implement Lamport's fast mutual exclusion algorithm (TOCS 1987) — the
// classic "fast path" lock whose uncontended entry costs O(1) operations —
// as an operation-granular state machine, and run it under the same noisy
// scheduler as lean-consensus. Shared registers (all multi-writer):
//
//   x, y      : pid gates (y doubles as the lock word; 0 = free)
//   b[0..n-1] : per-process interest bits
//
// Entry protocol for process i (pid values are stored as pid+1; 0 = none):
//   start: b[i] := 1; x := i
//          if y != 0        { b[i] := 0; await y == 0; goto start }
//          y := i
//          if x != i        { b[i] := 0; for all j await b[j] == 0;
//                             if y != i { await y == 0; goto start } }
//          -- critical section --
//   exit:  y := 0; b[i] := 0
//
// Mutual exclusion is verified two ways: the executor checks, after every
// atomic step, that at most one process is between its successful gate and
// its release of y (exact, interleaving-level), and each process writes a
// canary register on entry and re-reads it through its critical section
// (an intrusion by any other process would clobber it).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "memory/register_model.h"
#include "sched/noisy_params.h"

namespace leancon {

/// One process's repeated acquire/release cycles of the fast mutex.
class fast_mutex_machine {
 public:
  /// @param pid         process id, in [0, n)
  /// @param n           number of processes (sizes the b[] scan)
  /// @param entries     critical sections to perform before finishing
  /// @param cs_work     canary re-reads inside each critical section
  fast_mutex_machine(int pid, std::size_t n, std::uint64_t entries,
                     std::uint64_t cs_work = 2);

  operation next_op() const;
  void apply(std::uint64_t result);
  bool done() const { return done_; }

  /// True while the process holds the lock (gate passed, y not yet cleared).
  bool in_critical_section() const { return in_cs_; }

  std::uint64_t completed_entries() const { return completed_; }
  /// Entries that never left the fast path (no contention detected).
  std::uint64_t fast_path_entries() const { return fast_entries_; }
  /// Times the canary was found clobbered (must stay 0).
  std::uint64_t canary_violations() const { return canary_violations_; }
  std::uint64_t steps() const { return steps_; }

  /// Register layout inside space::scratch (exposed for tests).
  static location x_reg() { return {space::scratch, 0}; }
  static location y_reg() { return {space::scratch, 1}; }
  static location canary_reg() { return {space::scratch, 2}; }
  static location b_reg(int pid) {
    return {space::scratch, 16 + static_cast<std::uint64_t>(pid)};
  }

 private:
  enum class phase : std::uint8_t {
    set_b,        ///< b[i] := 1
    set_x,        ///< x := i
    read_y_gate,  ///< y != 0 ? back off : proceed
    backoff_b,    ///< b[i] := 0, then spin on y
    spin_y,       ///< await y == 0, then restart
    set_y,        ///< y := i
    read_x_check, ///< x == i ? enter : slow path
    slow_clear_b, ///< b[i] := 0
    scan_b,       ///< for all j await b[j] == 0
    read_y_final, ///< y == i ? enter : await free and restart
    spin_y2,      ///< await y == 0, then restart
    enter_cs,     ///< canary := i (lock held from here)
    cs_body,      ///< re-read canary cs_work times
    release_y,    ///< y := 0 (lock released here)
    release_b,    ///< b[i] := 0
    finished
  };

  std::uint64_t self() const { return static_cast<std::uint64_t>(pid_) + 1; }

  int pid_;
  std::size_t n_;
  std::uint64_t entries_;
  std::uint64_t cs_work_;
  phase phase_ = phase::set_b;
  std::size_t scan_index_ = 0;
  std::uint64_t cs_reads_done_ = 0;
  bool slow_path_taken_ = false;
  bool in_cs_ = false;
  bool done_ = false;
  std::uint64_t completed_ = 0;
  std::uint64_t fast_entries_ = 0;
  std::uint64_t canary_violations_ = 0;
  std::uint64_t steps_ = 0;
};

/// Configuration of a noisy-scheduled mutex experiment.
struct mutex_config {
  std::size_t processes = 2;
  std::uint64_t entries_per_process = 4;
  std::uint64_t cs_work = 2;
  noisy_params sched;       ///< same timing model as the consensus simulator
  std::uint64_t seed = 1;
  std::uint64_t max_total_ops = 10'000'000;
};

struct mutex_result {
  bool all_finished = false;
  std::uint64_t total_entries = 0;
  std::uint64_t fast_path_entries = 0;
  std::uint64_t overlap_violations = 0;  ///< exact executor-level check
  std::uint64_t canary_violations = 0;   ///< machine-level canary check
  std::uint64_t total_ops = 0;
  double finish_time = 0.0;              ///< simulated clock at completion
  std::vector<std::uint64_t> ops_per_process;
};

/// Runs the fast mutex under the noisy scheduler, checking mutual exclusion
/// after every atomic operation.
mutex_result run_mutex(const mutex_config& config);

}  // namespace leancon
