// The abstract shared-memory model: named register spaces, locations, and
// atomic read/write operations.
//
// Protocol state machines (core/, backup/) emit `operation`s against abstract
// `location`s; executors resolve them against a concrete backend:
//   * sim_memory    — hash-map registers for the discrete-event simulator and
//                     the exhaustive model checker (op counting, trace hooks),
//   * atomic_memory — std::atomic arrays for the native thread runtime.
//
// All registers are multi-writer multi-reader atomic registers holding a
// 64-bit word, matching the paper's "atomic read/write bits" (a bit is a word
// constrained to {0, 1}) and the single-writer registers used by the backup.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace leancon {

/// Register spaces. Keeping spaces explicit (instead of one flat address
/// range) lets backends size arrays independently and lets traces/invariant
/// checkers interpret operations structurally.
enum class space : std::uint8_t {
  race0 = 0,       ///< lean-consensus array a0; a0[0] is the virtual 1-prefix
  race1 = 1,       ///< lean-consensus array a1; a1[0] is the virtual 1-prefix
  ac_door0 = 2,    ///< adopt-commit doorway bit for value 0, indexed by round
  ac_door1 = 3,    ///< adopt-commit doorway bit for value 1, indexed by round
  ac_proposal = 4, ///< adopt-commit proposal register, indexed by round
  conc_value = 5,  ///< conciliator race register, indexed by round
  scratch = 6,     ///< free-form space for tests
  space_count = 7
};

constexpr std::size_t space_cardinality =
    static_cast<std::size_t>(space::space_count);

/// Returns a short stable name ("a0", "ac_prop", ...) for traces.
std::string_view space_name(space s);

/// An abstract register address.
struct location {
  space where = space::scratch;
  std::uint64_t index = 0;

  friend bool operator==(const location&, const location&) = default;

  /// Packs into a single word for hash-map backends. Index must fit 56 bits,
  /// which every protocol here respects by construction.
  std::uint64_t packed() const {
    return (static_cast<std::uint64_t>(where) << 56) | index;
  }
};

enum class op_kind : std::uint8_t { read, write };

/// One atomic shared-memory operation. For writes, `value` is the word to
/// store; for reads it is unused.
struct operation {
  op_kind kind = op_kind::read;
  location where;
  std::uint64_t value = 0;

  static operation read(location l) { return {op_kind::read, l, 0}; }
  static operation write(location l, std::uint64_t v) {
    return {op_kind::write, l, v};
  }
};

/// Encoding of the adopt-commit proposal register: 0 = empty, 1 = value 0,
/// 2 = value 1. (Registers start zeroed, so "empty" must be 0.)
constexpr std::uint64_t encode_proposal(int bit) {
  return static_cast<std::uint64_t>(bit) + 1;
}
constexpr bool proposal_empty(std::uint64_t raw) { return raw == 0; }
constexpr int decode_proposal(std::uint64_t raw) {
  return static_cast<int>(raw - 1);
}

}  // namespace leancon

template <>
struct std::hash<leancon::location> {
  std::size_t operator()(const leancon::location& l) const noexcept {
    return std::hash<std::uint64_t>{}(l.packed());
  }
};
