// Native shared memory backed by std::atomic arrays, for running the
// protocols on real threads. Sequentially consistent operations give exactly
// the atomic-register semantics the paper assumes (each read returns the
// value of the last preceding write in the total memory order).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "memory/register_model.h"

namespace leancon {

/// Per-space capacities for a bounded native register file.
struct atomic_memory_config {
  std::uint64_t race_rounds = 4096;    ///< cells per lean-consensus array
  std::uint64_t backup_rounds = 4096;  ///< cells per adopt-commit/conciliator space
  std::uint64_t scratch_cells = 64;

  std::uint64_t capacity(space s) const {
    switch (s) {
      case space::race0:
      case space::race1:
        return race_rounds;
      case space::ac_door0:
      case space::ac_door1:
      case space::ac_proposal:
      case space::conc_value:
        return backup_rounds;
      default:
        return scratch_cells;
    }
  }
};

/// Fixed-capacity atomic register file shared by a set of threads.
/// Out-of-range accesses throw; protocols are expected to be configured with
/// bounds (r_max / backup cutoff) that fit the capacities.
class atomic_memory {
 public:
  explicit atomic_memory(const atomic_memory_config& config = {});

  atomic_memory(const atomic_memory&) = delete;
  atomic_memory& operator=(const atomic_memory&) = delete;

  /// Executes one atomic operation. Thread-safe; seq_cst ordering.
  std::uint64_t execute(const operation& op);

  /// Test helpers (seq_cst, but not counted anywhere).
  std::uint64_t peek(location l) const;
  void poke(location l, std::uint64_t value);

  const atomic_memory_config& config() const { return config_; }

 private:
  std::atomic<std::uint64_t>& cell(location l);
  const std::atomic<std::uint64_t>& cell(location l) const;

  atomic_memory_config config_;
  // One flat array per space; std::unique_ptr because std::atomic is neither
  // copyable nor movable.
  std::vector<std::unique_ptr<std::atomic<std::uint64_t>[]>> spaces_;
};

}  // namespace leancon
