// Simulated shared memory: a sparse map of 64-bit registers with operation
// counting and an optional trace hook. This is the backend used by the
// discrete-event simulator, the hybrid uniprocessor scheduler, and the
// exhaustive model checker.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>

#include "memory/register_model.h"

namespace leancon {

/// Sparse register file. All registers read 0 until written, except the
/// virtual prefix cells a0[0] and a1[0], which the paper defines as
/// "effectively read-only locations set to 1".
class sim_memory {
 public:
  /// Called after each operation with (process id, op, value read-or-written).
  using trace_hook =
      std::function<void(int pid, const operation& op, std::uint64_t value)>;

  sim_memory();

  /// Executes one atomic operation on behalf of `pid`. Returns the value read
  /// (for writes, returns the written value).
  std::uint64_t execute(int pid, const operation& op);

  /// Direct access helpers used by tests and invariant checkers. These do not
  /// count as protocol operations.
  std::uint64_t peek(location l) const;
  void poke(location l, std::uint64_t value);

  /// Number of protocol operations executed, total and by space.
  std::uint64_t op_count() const { return total_ops_; }
  std::uint64_t op_count(space s) const {
    return ops_by_space_[static_cast<std::size_t>(s)];
  }
  std::uint64_t read_count() const { return reads_; }
  std::uint64_t write_count() const { return writes_; }

  void set_trace_hook(trace_hook hook) { hook_ = std::move(hook); }

  /// Resets contents and counters to the initial state.
  void reset();

  /// Snapshot of the raw contents, used by the model checker to key visited
  /// states. Deterministic order is not guaranteed; callers canonicalize.
  const std::unordered_map<std::uint64_t, std::uint64_t>& cells() const {
    return cells_;
  }

 private:
  std::unordered_map<std::uint64_t, std::uint64_t> cells_;
  std::uint64_t total_ops_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::array<std::uint64_t, space_cardinality> ops_by_space_{};
  trace_hook hook_;
};

}  // namespace leancon
