// Simulated shared memory: per-space registers with operation counting and
// an optional trace hook. This is the backend used by the discrete-event
// simulator, the hybrid uniprocessor scheduler, and the exhaustive model
// checker.
//
// Storage is a flat vector per register space, grown on write, with a sparse
// overflow map for the rare huge indices (custom protocols that pack node
// ids into the index). A vector slot never written reads 0 — identical to
// the "absent key" semantics of the hash-map representation this replaced —
// and reset() keeps the capacity, so a reused instance stops allocating
// after the first trial.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "memory/register_model.h"

namespace leancon {

/// Sparse register file. All registers read 0 until written, except the
/// virtual prefix cells a0[0] and a1[0], which the paper defines as
/// "effectively read-only locations set to 1".
class sim_memory {
 public:
  /// Called after each operation with (process id, op, value read-or-written).
  using trace_hook =
      std::function<void(int pid, const operation& op, std::uint64_t value)>;

  sim_memory() { reset(); }

  /// Executes one atomic operation on behalf of `pid`. Returns the value read
  /// (for writes, returns the written value).
  std::uint64_t execute(int pid, const operation& op) {
    ++total_ops_;
    ++ops_by_space_[static_cast<std::size_t>(op.where.where)];
    std::uint64_t result;
    if (op.kind == op_kind::read) {
      ++reads_;
      result = load(op.where);
    } else {
      ++writes_;
      store(op.where, op.value);
      result = op.value;
    }
    if (hook_) hook_(pid, op, result);
    return result;
  }

  /// Direct access helpers used by tests and invariant checkers. These do not
  /// count as protocol operations.
  std::uint64_t peek(location l) const { return load(l); }
  void poke(location l, std::uint64_t value) { store(l, value); }

  /// Number of protocol operations executed, total and by space.
  std::uint64_t op_count() const { return total_ops_; }
  std::uint64_t op_count(space s) const {
    return ops_by_space_[static_cast<std::size_t>(s)];
  }
  std::uint64_t read_count() const { return reads_; }
  std::uint64_t write_count() const { return writes_; }

  void set_trace_hook(trace_hook hook) { hook_ = std::move(hook); }

  /// Resets contents and counters to the initial state (keeping capacity).
  void reset();

 private:
  /// Indices below this live in the flat vectors; at or above, in overflow_.
  /// Every protocol here stays far below the limit; the map is a safety net
  /// so a pathological index cannot demand gigabytes of dense storage.
  static constexpr std::uint64_t kDenseLimit = 1ULL << 20;

  std::uint64_t load(location l) const {
    const auto& v = spaces_[static_cast<std::size_t>(l.where)];
    if (l.index < v.size()) return v[l.index];
    if (l.index < kDenseLimit) return 0;
    const auto it = overflow_.find(l.packed());
    return it == overflow_.end() ? 0 : it->second;
  }

  void store(location l, std::uint64_t value) {
    if (l.index < kDenseLimit) {
      auto& v = spaces_[static_cast<std::size_t>(l.where)];
      // resize() value-initializes the gap, so unwritten slots read 0.
      if (l.index >= v.size()) v.resize(l.index + 1);
      v[l.index] = value;
    } else {
      overflow_[l.packed()] = value;
    }
  }

  std::array<std::vector<std::uint64_t>, space_cardinality> spaces_;
  std::unordered_map<std::uint64_t, std::uint64_t> overflow_;
  std::uint64_t total_ops_ = 0;
  std::uint64_t reads_ = 0;
  std::uint64_t writes_ = 0;
  std::array<std::uint64_t, space_cardinality> ops_by_space_{};
  trace_hook hook_;
};

}  // namespace leancon
