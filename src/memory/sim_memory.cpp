#include "memory/sim_memory.h"

namespace leancon {

std::string_view space_name(space s) {
  switch (s) {
    case space::race0: return "a0";
    case space::race1: return "a1";
    case space::ac_door0: return "ac_d0";
    case space::ac_door1: return "ac_d1";
    case space::ac_proposal: return "ac_prop";
    case space::conc_value: return "conc";
    case space::scratch: return "scratch";
    case space::space_count: break;
  }
  return "?";
}

void sim_memory::reset() {
  for (auto& v : spaces_) v.clear();
  overflow_.clear();
  total_ops_ = 0;
  reads_ = 0;
  writes_ = 0;
  ops_by_space_.fill(0);
  // Paper, Section 4: a0 and a1 "are prefixed with (effectively read-only)
  // locations a0[0] and a1[0], both set to 1."
  poke(location{space::race0, 0}, 1);
  poke(location{space::race1, 0}, 1);
}

}  // namespace leancon
