#include "memory/sim_memory.h"

namespace leancon {

std::string_view space_name(space s) {
  switch (s) {
    case space::race0: return "a0";
    case space::race1: return "a1";
    case space::ac_door0: return "ac_d0";
    case space::ac_door1: return "ac_d1";
    case space::ac_proposal: return "ac_prop";
    case space::conc_value: return "conc";
    case space::scratch: return "scratch";
    case space::space_count: break;
  }
  return "?";
}

sim_memory::sim_memory() { reset(); }

void sim_memory::reset() {
  cells_.clear();
  total_ops_ = 0;
  reads_ = 0;
  writes_ = 0;
  ops_by_space_.fill(0);
  // Paper, Section 4: a0 and a1 "are prefixed with (effectively read-only)
  // locations a0[0] and a1[0], both set to 1."
  cells_[location{space::race0, 0}.packed()] = 1;
  cells_[location{space::race1, 0}.packed()] = 1;
}

std::uint64_t sim_memory::execute(int pid, const operation& op) {
  ++total_ops_;
  ++ops_by_space_[static_cast<std::size_t>(op.where.where)];
  std::uint64_t result;
  if (op.kind == op_kind::read) {
    ++reads_;
    auto it = cells_.find(op.where.packed());
    result = it == cells_.end() ? 0 : it->second;
  } else {
    ++writes_;
    cells_[op.where.packed()] = op.value;
    result = op.value;
  }
  if (hook_) hook_(pid, op, result);
  return result;
}

std::uint64_t sim_memory::peek(location l) const {
  auto it = cells_.find(l.packed());
  return it == cells_.end() ? 0 : it->second;
}

void sim_memory::poke(location l, std::uint64_t value) {
  cells_[l.packed()] = value;
}

}  // namespace leancon
