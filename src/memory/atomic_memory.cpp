#include "memory/atomic_memory.h"

#include <stdexcept>

namespace leancon {

atomic_memory::atomic_memory(const atomic_memory_config& config)
    : config_(config) {
  spaces_.reserve(space_cardinality);
  for (std::size_t s = 0; s < space_cardinality; ++s) {
    const auto cap = config_.capacity(static_cast<space>(s));
    auto cells = std::make_unique<std::atomic<std::uint64_t>[]>(cap);
    for (std::uint64_t i = 0; i < cap; ++i) {
      cells[i].store(0, std::memory_order_relaxed);
    }
    spaces_.push_back(std::move(cells));
  }
  // Virtual prefix: a0[0] = a1[0] = 1 (paper, Section 4).
  poke({space::race0, 0}, 1);
  poke({space::race1, 0}, 1);
}

std::atomic<std::uint64_t>& atomic_memory::cell(location l) {
  const auto cap = config_.capacity(l.where);
  if (l.index >= cap) {
    throw std::out_of_range("atomic_memory: index beyond configured capacity");
  }
  return spaces_[static_cast<std::size_t>(l.where)][l.index];
}

const std::atomic<std::uint64_t>& atomic_memory::cell(location l) const {
  const auto cap = config_.capacity(l.where);
  if (l.index >= cap) {
    throw std::out_of_range("atomic_memory: index beyond configured capacity");
  }
  return spaces_[static_cast<std::size_t>(l.where)][l.index];
}

std::uint64_t atomic_memory::execute(const operation& op) {
  if (op.kind == op_kind::read) {
    return cell(op.where).load(std::memory_order_seq_cst);
  }
  cell(op.where).store(op.value, std::memory_order_seq_cst);
  return op.value;
}

std::uint64_t atomic_memory::peek(location l) const {
  return cell(l).load(std::memory_order_seq_cst);
}

void atomic_memory::poke(location l, std::uint64_t value) {
  cell(l).store(value, std::memory_order_seq_cst);
}

}  // namespace leancon
