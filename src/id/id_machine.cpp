#include "id/id_machine.h"

#include <stdexcept>

namespace leancon {
namespace {

std::uint32_t levels_for(std::uint64_t n_ids) {
  std::uint32_t levels = 0;
  while ((std::uint64_t{1} << levels) < n_ids) ++levels;
  return levels;
}

}  // namespace

id_machine::id_machine(std::uint64_t self_id, std::uint64_t n_ids,
                       const id_params& params, rng gen)
    : params_(params),
      gen_(gen),
      n_ids_(n_ids),
      candidate_(self_id),
      levels_(levels_for(n_ids)) {
  if (n_ids == 0 || self_id >= n_ids) {
    throw std::invalid_argument("id_machine: self_id out of range");
  }
  if (params_.node_stride <= params_.r_max + 2) {
    throw std::invalid_argument("id_machine: node_stride too small");
  }
  if (levels_ == 0) {
    done_ = true;  // single-process id space: trivially decided
    return;
  }
  start_level();
}

std::uint64_t id_machine::node() const {
  // Heap numbering: level `level_` (0 = leaves' parents) hosts
  // 2^(levels-1-level) nodes; ids within a level are candidate >> (level+1).
  return (std::uint64_t{1} << (levels_ - 1 - level_)) +
         (candidate_ >> (level_ + 1));
}

location id_machine::reg(int s) const {
  return {space::scratch, node() * 4 + static_cast<std::uint64_t>(s)};
}

void id_machine::start_level() {
  stage_ = stage::announce;
  sub_.reset();
}

operation id_machine::next_op() const {
  if (done_) throw std::logic_error("id_machine: next_op after done");
  switch (stage_) {
    case stage::announce:
      return operation::write(reg(side()), candidate_ + 1);
    case stage::agree: {
      operation op = sub_->next_op();
      op.where.index += node() * params_.node_stride;
      return op;
    }
    case stage::fetch:
      return operation::read(reg(sub_->decision()));
  }
  throw std::logic_error("id_machine: invalid stage");
}

void id_machine::apply(std::uint64_t result) {
  if (done_) throw std::logic_error("id_machine: apply after done");
  ++steps_;
  switch (stage_) {
    case stage::announce: {
      backup_params bp = backup_params::for_processes(n_ids_);
      if (params_.backup_write_prob > 0.0) {
        bp.write_prob = params_.backup_write_prob;
      }
      // Keep backup rounds within the node's index slice.
      bp.max_rounds = params_.node_stride / 2;
      sub_.emplace(side(), params_.r_max, bp, gen_.fork());
      stage_ = stage::agree;
      return;
    }
    case stage::agree: {
      // Synthesize the per-node virtual prefix: the lean round-1 decision
      // read targets a*[node-base + 0], which is never written and must
      // behave as the paper's read-only 1 cell.
      const operation op = sub_->next_op();
      if ((op.where.where == space::race0 ||
           op.where.where == space::race1) &&
          op.kind == op_kind::read && op.where.index == 0) {
        result = 1;
      }
      sub_->apply(result);
      if (!sub_->done()) return;
      if (sub_->decision() == side()) {
        // Our subtree won; keep the candidate.
        ++level_;
        if (level_ == levels_) {
          done_ = true;
        } else {
          start_level();
        }
      } else {
        stage_ = stage::fetch;
      }
      return;
    }
    case stage::fetch: {
      if (result == 0) {
        // Unreachable by the Lemma 2 argument in the header; fail loudly so
        // tests would catch a regression.
        throw std::logic_error("id_machine: winning side never announced");
      }
      candidate_ = result - 1;
      ++level_;
      if (level_ == levels_) {
        done_ = true;
      } else {
        start_level();
      }
      return;
    }
  }
  throw std::logic_error("id_machine: invalid stage");
}

int id_machine::decision() const {
  if (!done_) throw std::logic_error("id_machine: decision before done");
  return static_cast<int>(candidate_);
}

}  // namespace leancon
