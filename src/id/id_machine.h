// Id consensus (paper, footnote 2): "the decision value is the id of some
// active process. In many cases, id consensus can be solved in a natural way
// using a (lg n)-depth tree of binary consensus protocols."
//
// Construction (a tournament tree over the id space, padded to 2^L):
//   * A process's candidate starts as its own id.
//   * At level l, candidates in subtree g = candidate >> (l+1) meet at tree
//     node (heap-numbered) to merge with the sibling subtree. The process
//       1. announces its candidate in the node's register for its side
//          s = (candidate >> l) & 1,
//       2. runs binary consensus (the combined lean+backup protocol) on s,
//       3. if the decision d differs from s, reads the winning side's
//          register and adopts that candidate.
//   * After level L-1, the candidate is the agreed id.
//
// Correctness invariant: all processes whose candidate lies in subtree g
// carry the SAME candidate (trivially true at the leaves; preserved because
// winners keep a unanimous candidate and losers adopt from the winners'
// register). The winning side's register is non-empty whenever consensus
// decides d: by Lemma 2 a decision for d requires a round-1 write to a_d,
// which only a side-d process performs, after its announcement.
//
// Each tree node gets a disjoint slice of every register space via a fixed
// index stride; the lean arrays' virtual prefix a*[node-base + 0] = 1 is
// synthesized by the wrapper (the cell is never written, so overriding the
// read result preserves atomic-register semantics).
#pragma once

#include <cstdint>
#include <optional>

#include "core/combined_machine.h"
#include "core/machine.h"

namespace leancon {

/// Tuning for the per-node binary consensus instances.
struct id_params {
  std::uint64_t r_max = 64;        ///< lean cutoff per tree node
  double backup_write_prob = 0.0;  ///< 0 = canonical 1/(2n)
  /// Index stride separating tree nodes inside each register space. Must
  /// exceed r_max and any plausible backup round count.
  std::uint64_t node_stride = 1u << 16;
};

/// One process's id-consensus execution. decision() returns the agreed id.
class id_machine final : public consensus_machine {
 public:
  /// @param self_id  this process's id, in [0, n_ids)
  /// @param n_ids    size of the id space (number of processes)
  id_machine(std::uint64_t self_id, std::uint64_t n_ids,
             const id_params& params, rng gen);

  operation next_op() const override;
  void apply(std::uint64_t result) override;
  bool done() const override { return done_; }
  int decision() const override;
  std::uint64_t steps() const override { return steps_; }

  std::uint64_t candidate() const { return candidate_; }
  std::uint32_t level() const { return level_; }
  std::uint32_t levels() const { return levels_; }

 private:
  enum class stage : std::uint8_t { announce, agree, fetch };

  /// Heap-style unique node id for the current (level, candidate).
  std::uint64_t node() const;
  /// This process's side at the current node.
  int side() const { return static_cast<int>((candidate_ >> level_) & 1); }
  /// Registration register for side s of the current node.
  location reg(int s) const;
  void start_level();

  id_params params_;
  rng gen_;
  std::uint64_t n_ids_;
  std::uint64_t candidate_;
  std::uint32_t levels_;
  std::uint32_t level_ = 0;
  stage stage_ = stage::announce;
  bool done_ = false;
  std::uint64_t steps_ = 0;
  std::optional<combined_machine> sub_;
};

}  // namespace leancon
