// Client for the campaign service (bench/campaign_serve): submits one
// campaign grid over the daemon's unix socket and writes the streamed cell
// records — byte-identical to the cells file a single-process campaign
// would write — plus a BENCH json carrying the request's cache counters.
//
//   ./campaign_submit --socket=/tmp/leancon.sock \
//       --scenarios=mutex-noise --ns=2,4 --trials=4 --seed=1 \
//       --out=cells.jsonl --json=BENCH_submit.json
//
// Exit is nonzero when the daemon reports an error or the stream ends
// before its "done" line (a short stream is a failed request, never a
// silently small result). A fully-warm request reports cache_hits ==
// cells and sim_ops == 0 — the serving contract CI asserts.
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>
#endif

#include "exp/campaign_cli.h"
#include "harness.h"
#include "util/json.h"
#include "util/options.h"

using namespace leancon;

#if defined(__unix__) || defined(__APPLE__)

namespace {

bool send_all(int fd, const std::string& text) {
  std::size_t off = 0;
  while (off < text.size()) {
    const ssize_t n =
        ::send(fd, text.data() + off, text.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

double stat_value(const json::value& done, const char* name) {
  const json::value* v = done.find(name);
  return (v != nullptr && v->k == json::value::kind::number) ? v->num : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  options opts;
  add_grid_flags(opts);  // the daemon expands EXACTLY these flags
  opts.add("socket", "", "REQUIRED: the daemon's unix socket path");
  opts.add("out", "",
           "write the streamed cell records (canonical cells-file bytes) "
           "to this path (default: stdout)");
  opts.add("name", "campaign_submit", "bench name for the emitted json");
  opts.add("json", "", "write request results as BENCH json to this path");
  opts.add("quiet", "false", "suppress the summary line");
  if (!opts.parse(argc, argv)) return 1;

  if (opts.get("socket").empty()) {
    std::fprintf(stderr, "campaign_submit: --socket is required\n");
    return 1;
  }

  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    std::fprintf(stderr, "campaign_submit: cannot create socket: %s\n",
                 std::strerror(errno));
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  const std::string socket_path = opts.get("socket");
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "campaign_submit: socket path too long\n");
    ::close(fd);
    return 1;
  }
  std::strncpy(addr.sun_path, socket_path.c_str(),
               sizeof(addr.sun_path) - 1);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    std::fprintf(stderr, "campaign_submit: cannot connect to %s: %s\n",
                 socket_path.c_str(), std::strerror(errno));
    ::close(fd);
    return 1;
  }

  // The request carries the grid flags verbatim (strings), so the daemon
  // re-parses them through the same add_grid_flags surface.
  std::string request = "{\"op\":\"submit\"";
  for (const char* flag :
       {"scenarios", "ns", "trials", "op-budget", "seed"}) {
    std::ostringstream os;
    os << ",";
    json::write_string(os, flag);
    os << ":";
    json::write_string(os, opts.get(flag));
    request += os.str();
  }
  request += "}\n";
  if (!send_all(fd, request)) {
    std::fprintf(stderr, "campaign_submit: send failed\n");
    ::close(fd);
    return 1;
  }

  std::FILE* out = stdout;
  const std::string out_path = opts.get("out");
  if (!out_path.empty()) {
    out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "campaign_submit: cannot open %s\n",
                   out_path.c_str());
      ::close(fd);
      return 1;
    }
  }

  // Read the response stream: ack, raw record lines (forwarded BYTE FOR
  // BYTE — re-serializing would break the cmp contract), then done.
  std::string buffer;
  char chunk[4096];
  bool got_ack = false;
  bool got_done = false;
  std::uint64_t expected_cells = 0;
  std::uint64_t received_cells = 0;
  json::value done;
  std::string error;
  while (!got_done && error.empty()) {
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;  // EOF
    buffer.append(chunk, static_cast<std::size_t>(n));
    std::size_t start = 0;
    while (error.empty() && !got_done) {
      const std::size_t nl = buffer.find('\n', start);
      if (nl == std::string::npos) break;
      const std::string line = buffer.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      json::value v;
      try {
        v = json::parse(line);
      } catch (const std::exception& e) {
        error = std::string("unparseable response line: ") + e.what();
        break;
      }
      if (const json::value* err = v.find("error")) {
        error = err->k == json::value::kind::string ? err->str
                                                    : "daemon error";
        break;
      }
      if (const json::value* ack = v.find("ack")) {
        got_ack = true;
        if (const json::value* cells = ack->find("cells")) {
          expected_cells = static_cast<std::uint64_t>(cells->num);
        }
        continue;
      }
      if (const json::value* d = v.find("done")) {
        done = *d;
        got_done = true;
        break;
      }
      if (!got_ack) {
        error = "record line before ack";
        break;
      }
      std::fputs(line.c_str(), out);
      std::fputc('\n', out);
      ++received_cells;
    }
    buffer.erase(0, start);
  }
  ::close(fd);
  if (out != stdout) std::fclose(out);

  if (!error.empty()) {
    std::fprintf(stderr, "campaign_submit: FAILED: %s\n", error.c_str());
    return 1;
  }
  if (!got_done) {
    std::fprintf(stderr,
                 "campaign_submit: FAILED: stream ended before \"done\" "
                 "(%llu of %llu cell(s) received)\n",
                 static_cast<unsigned long long>(received_cells),
                 static_cast<unsigned long long>(expected_cells));
    return 1;
  }
  if (received_cells != expected_cells) {
    std::fprintf(stderr,
                 "campaign_submit: FAILED: %llu cell(s) received, ack "
                 "promised %llu\n",
                 static_cast<unsigned long long>(received_cells),
                 static_cast<unsigned long long>(expected_cells));
    return 1;
  }

  const std::string json_path = opts.get("json");
  if (!json_path.empty()) {
    bench::results res;
    res.bench = opts.get("name");
    res.params = opts.flag_values();
    for (const char* name : {"cells", "cache_hits", "cache_misses",
                             "coalesced", "evictions", "sim_ops"}) {
      res.counters.emplace_back(name, stat_value(done, name));
    }
    const std::string text = bench::to_json(res);
    if (const auto bad = bench::validate_bench_json(text)) {
      std::fprintf(stderr, "campaign_submit: emitted json is invalid: %s\n",
                   bad->c_str());
      return 1;
    }
    std::FILE* jout = std::fopen(json_path.c_str(), "w");
    if (jout == nullptr) {
      std::fprintf(stderr, "campaign_submit: cannot open %s\n",
                   json_path.c_str());
      return 1;
    }
    std::fputs(text.c_str(), jout);
    std::fclose(jout);
  }

  if (!opts.get_bool("quiet")) {
    std::fprintf(stderr,
                 "campaign_submit: %llu cell(s) — %.0f hit, %.0f "
                 "simulated, %.0f coalesced, %.0f sim_ops\n",
                 static_cast<unsigned long long>(received_cells),
                 stat_value(done, "cache_hits"),
                 stat_value(done, "cache_misses"),
                 stat_value(done, "coalesced"), stat_value(done, "sim_ops"));
  }
  return 0;
}

#else  // !unix

int main() {
  std::fprintf(stderr, "campaign_submit: unix-domain sockets are "
                       "unavailable on this platform\n");
  return 1;
}

#endif
