// explain_trial: replay ONE trial of any registered scenario preset with
// tracing forced on, and explain what happened.
//
//   explain_trial --preset fig1-base --n 16 --seed 7 --trace out.trace.json
//
// Output is a human-readable timeline on stdout (round advances, preference
// switches, crashes/halts, message traffic, decisions — whatever the
// backend emits) plus, with --trace, a Chrome trace-event JSON file
// loadable at https://ui.perfetto.dev. Works for shared-memory sim presets,
// the native backends (mp-abd, mutex-noise, hybrid-quantum), and check-*
// exhaustive explorations (which report frontier milestones instead of a
// simulated clock).
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "obs/obs.h"
#include "obs/trace_json.h"
#include "scenario/scenario.h"
#include "util/options.h"

namespace {

using namespace leancon;

std::string pname(std::uint64_t pid) { return "p" + std::to_string(pid); }

const char* abd_kind_name(std::uint64_t k) {
  switch (k) {
    case 0: return "query";
    case 1: return "query_ack";
    case 2: return "update";
    case 3: return "update_ack";
  }
  return "?";
}

/// One human line for a sim-track event (finite simulated timestamp).
std::string describe(const obs::event& e) {
  using k = obs::event_kind;
  switch (e.kind) {
    case k::trial_begin:
      return "trial begins: n=" + std::to_string(e.a) +
             " seed=" + std::to_string(e.b);
    case k::trial_end:
      return "trial ends: decided=" + std::to_string(e.a) +
             " max_round=" + std::to_string(e.b) +
             " total_ops=" + std::to_string(e.c);
    case k::round_advance:
      return pname(e.a) + " advances to round " + std::to_string(e.b);
    case k::pref_switch:
      return pname(e.a) + " switches preference (switch #" +
             std::to_string(e.b) + ")";
    case k::halt:
      return pname(e.a) + " halts (noise failure)";
    case k::crash:
      return pname(e.a) + " CRASHED (adversary, after " + pname(e.b) +
             " stepped)";
    case k::decision:
      return pname(e.a) + " DECIDES value=" + std::to_string(e.b) +
             " at round " + std::to_string(e.c);
    case k::msg_send:
      return pname(e.a) + " -> " + pname(e.b) + "  send " +
             abd_kind_name(e.c);
    case k::msg_deliver:
      return pname(e.a) + " -> " + pname(e.b) + "  deliver " +
             abd_kind_name(e.c);
    case k::msg_drop:
      return pname(e.a) + " -> " + pname(e.b) + "  DROPPED " +
             abd_kind_name(e.c);
    case k::dispatch:
      return pname(e.a) + " dispatched (dispatch #" + std::to_string(e.b) +
             ")";
    case k::preemption:
      return pname(e.a) + " preempted by " + pname(e.b);
    case k::cs_enter:
      return pname(e.a) + " enters the critical section";
    case k::cs_exit:
      return pname(e.a) + " leaves the critical section (entries=" +
             std::to_string(e.b) + ")";
    default:
      return std::string(obs::kind_name(e.kind));
  }
}

/// One human line for a wall-track event (exploration milestones, spans).
std::string describe_wall(const obs::event& e) {
  using k = obs::event_kind;
  switch (e.kind) {
    case k::explore_begin:
      return "exploration begins (state budget " + std::to_string(e.a) +
             ", depth budget " + std::to_string(e.b) + ")";
    case k::explore_end:
      return "exploration ends: " + std::to_string(e.a) + " states" +
             (e.b != 0 ? ", VIOLATIONS FOUND" : ", no violations");
    case k::frontier:
      return "frontier: " + std::to_string(e.a) + " states visited, " +
             std::to_string(e.b) + " queued, depth " + std::to_string(e.c);
    default:
      return std::string(obs::kind_name(e.kind));
  }
}

// The registry's fig1 family keys are "figure1-<dist>"; accept the short
// campaign-style spellings too.
std::string resolve_preset(const std::string& key) {
  if (key == "fig1-base" || key == "fig1") return "figure1-exp1";
  return key;
}

// options::parse only accepts --key=value; fuse "--key value" pairs so the
// documented command shape works as typed.
std::vector<std::string> fuse_argv(int argc, char** argv) {
  std::vector<std::string> out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.size() > 2 && arg.rfind("--", 0) == 0 &&
        arg.find('=') == std::string::npos && i + 1 < argc &&
        std::string(argv[i + 1]).rfind("--", 0) != 0) {
      arg += "=";
      arg += argv[++i];
    }
    out.push_back(std::move(arg));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  options opts;
  opts.add("preset", "fig1-base",
           "scenario preset key (fig1-base = figure1-exp1); see --list");
  opts.add("n", "16", "process count");
  opts.add("seed", "7", "trial seed (also the workload base seed)");
  opts.add("trace", "", "write Chrome trace-event JSON (Perfetto) here");
  opts.add("max-events", "200", "timeline rows to print, 0 = unlimited");
  opts.add("ring", "1048576", "per-thread trace ring capacity (events)");
  opts.add("list", "false", "list the registered presets and exit");

  const std::vector<std::string> fused = fuse_argv(argc, argv);
  std::vector<const char*> argv2;
  argv2.push_back(argc > 0 ? argv[0] : "explain_trial");
  for (const auto& s : fused) argv2.push_back(s.c_str());
  if (!opts.parse(static_cast<int>(argv2.size()), argv2.data())) return 1;

  if (opts.get_bool("list")) {
    for (const auto& spec : scenario_registry()) {
      std::printf("%-24s %s\n", spec.key.c_str(), spec.description.c_str());
    }
    return 0;
  }

  const std::string preset = resolve_preset(opts.get("preset"));
  scenario_params params;
  params.n = static_cast<std::uint64_t>(opts.get_int("n"));
  params.seed = static_cast<std::uint64_t>(opts.get_int("seed"));
  const std::uint64_t seed = params.seed;

  // Tracing forced on for exactly the replayed trial: a big ring so long
  // trials keep every event, a drain first so the trace holds only ours.
  obs::set_ring_capacity(
      static_cast<std::size_t>(opts.get_int("ring")));
  obs::drain();
  obs::set_enabled(true);

  trial_outcome outcome;
  try {
    outcome = run_scenario_trial(preset, params, seed);
  } catch (const std::exception& e) {
    obs::set_enabled(false);
    std::fprintf(stderr, "explain_trial: %s\n", e.what());
    return 2;
  }
  obs::set_enabled(false);
  obs::drained_events drained = obs::drain();

  std::printf("explain_trial: preset=%s n=%llu seed=%llu\n", preset.c_str(),
              static_cast<unsigned long long>(params.n),
              static_cast<unsigned long long>(seed));
  std::printf("outcome: decided=%s violation=%s backup=%s\n",
              outcome.decided ? "yes" : "no",
              outcome.violation ? "yes" : "no",
              outcome.backup ? "yes" : "no");
  for (const auto& e : outcome.metrics.entries()) {
    const double v = e.is_counter ? e.total : e.stats.mean();
    std::printf("  metric %-18s %.6g\n", e.name.c_str(), v);
  }
  if (drained.dropped != 0) {
    std::printf("note: ring wrapped, %llu oldest events dropped "
                "(raise --ring)\n",
                static_cast<unsigned long long>(drained.dropped));
  }

  // Split the timeline: simulated-clock events vs wall-clock milestones.
  std::vector<const obs::event*> sim_events;
  std::vector<const obs::event*> wall_events;
  for (const auto& e : drained.events) {
    if (e.kind == obs::event_kind::span || e.kind == obs::event_kind::mark) {
      continue;
    }
    if (e.sim_time == e.sim_time) {  // finite (never NaN) => sim track
      sim_events.push_back(&e);
    } else {
      wall_events.push_back(&e);
    }
  }

  const std::uint64_t max_rows =
      static_cast<std::uint64_t>(opts.get_int("max-events"));
  auto print_rows = [&](const std::vector<const obs::event*>& events,
                        bool sim_clock) {
    const std::uint64_t total = events.size();
    // When over budget, keep the head and tail halves: begins/early rounds
    // AND the decisions at the end both survive the elision.
    std::uint64_t head = total, tail = 0;
    if (max_rows != 0 && total > max_rows) {
      head = max_rows / 2;
      tail = max_rows - head;
    }
    for (std::uint64_t i = 0; i < total; ++i) {
      if (i == head && tail != 0) {
        std::printf("  ... (%llu events elided; see --trace for all)\n",
                    static_cast<unsigned long long>(total - head - tail));
        i = total - tail;
      }
      const obs::event& e = *events[i];
      if (sim_clock) {
        std::printf("  t=%11.4f  %s\n", e.sim_time, describe(e).c_str());
      } else {
        std::printf("  wall=%9.3fms  %s\n",
                    static_cast<double>(e.ts_ns) / 1e6,
                    describe_wall(e).c_str());
      }
    }
  };

  if (!sim_events.empty()) {
    std::printf("\ntimeline (simulated clock, %llu events):\n",
                static_cast<unsigned long long>(sim_events.size()));
    print_rows(sim_events, /*sim_clock=*/true);
  }
  if (!wall_events.empty()) {
    std::printf("\nexploration timeline (%llu events):\n",
                static_cast<unsigned long long>(wall_events.size()));
    print_rows(wall_events, /*sim_clock=*/false);
  }
  if (sim_events.empty() && wall_events.empty()) {
    std::printf("\n(no trace events recorded — nothing to explain)\n");
  }

  const std::string trace_path = opts.get("trace");
  if (!trace_path.empty()) {
    std::ofstream out(trace_path, std::ios::binary);
    if (!out) {
      std::fprintf(stderr, "explain_trial: cannot write %s\n",
                   trace_path.c_str());
      return 3;
    }
    obs::write_trace_json(out, drained.events, obs::counter_snapshot());
    std::printf("\ntrace written: %s (%llu events) — open at "
                "https://ui.perfetto.dev\n",
                trace_path.c_str(),
                static_cast<unsigned long long>(drained.events.size()));
  }
  return 0;
}
