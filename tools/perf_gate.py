#!/usr/bin/env python3
"""Advisory performance gate for the fig1 smoke-grid throughput.

Compares the ``trials_per_sec`` counter of a freshly produced BENCH json
against the committed baseline (bench/baselines/PERF_fig1.json by
default). CI machines are noisy shared VMs — run-to-run throughput on the
identical binary swings tens of percent — so moderate regressions only
WARN (exit 0, annotated output); the gate hard-fails (exit 1) only on a
collapse past --fail-ratio, the kind a real algorithmic regression (a
re-virtualized hot path, an accidental O(n) scan per event) produces.

Usage:
    perf_gate.py BENCH_fig1.json [--baseline=...] \
        [--warn-ratio=0.67] [--fail-ratio=0.5]

Measure the fresh json with the SAME grid as the baseline's ``command``
(single-threaded, fixed trial count) or the comparison is meaningless.
"""
import argparse
import json
import sys


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("bench_json", help="fresh BENCH json to check")
    parser.add_argument("--baseline", default="bench/baselines/PERF_fig1.json")
    parser.add_argument("--warn-ratio", type=float, default=0.67,
                        help="warn below this fraction of baseline (default "
                             "0.67, i.e. a >1.5x slowdown)")
    parser.add_argument("--fail-ratio", type=float, default=0.5,
                        help="hard-fail below this fraction of baseline "
                             "(default 0.5, i.e. a >2x slowdown)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.bench_json) as f:
        bench = json.load(f)

    expected = float(baseline["trials_per_sec"])
    try:
        measured = float(bench["counters"]["trials_per_sec"])
    except KeyError:
        print(f"perf gate: {args.bench_json} has no counters.trials_per_sec "
              "(was the bench built from this tree?)")
        return 1

    ratio = measured / expected
    line = (f"perf gate: {measured:,.0f} trials/sec vs baseline "
            f"{expected:,.0f} (ratio {ratio:.2f}; warn<{args.warn_ratio}, "
            f"fail<{args.fail_ratio})")
    if ratio < args.fail_ratio:
        print(f"FAIL {line}")
        print("perf gate: throughput collapsed past the hard threshold — "
              "this is larger than machine noise; inspect the hot path.")
        return 1
    if ratio < args.warn_ratio:
        print(f"WARN {line}")
        print("perf gate: advisory only (noisy-runner tolerance); "
              "re-run locally with repeated measurements before concluding "
              "a regression.")
        return 0
    print(f"OK   {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
