#!/usr/bin/env python3
"""Campaign service smoke: the serving contract, end to end.

Starts a campaign_serve daemon on a fresh unix socket, submits the fig1
smoke grid twice through campaign_submit, and asserts the contract the
service exists for:

  - the cold pass simulates every cell (cache_misses == cells),
  - the warm pass answers entirely from the persistent cache
    (cache_hits == cells, sim_ops == 0),
  - both streamed cells files are byte-identical to each other and to the
    committed baseline (--baseline), i.e. to what a single-process
    campaign writes for the same grid,
  - the daemon's heartbeat file passes tools/trace_validate.py,
  - SIGTERM shuts the daemon down cleanly (exit 0).

Exits non-zero with a pointed message on the first violation.
"""
import argparse
import filecmp
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

FIG1_SMOKE_GRID = [
    "--scenarios=figure1-norm,figure1-twopoint,figure1-delayed-poisson,"
    "figure1-geom,figure1-unif,figure1-exp1",
    "--ns=1,10,100",
    "--trials=20",
    "--op-budget=200000",
    "--seed=20000625",
]


def fail(message: str) -> None:
    print(f"serve_smoke: FAILED: {message}", file=sys.stderr)
    sys.exit(1)


def submit(client: str, sock: str, out: str, bench_json: str) -> dict:
    """Runs one submission (retrying while the daemon is still binding)."""
    argv = [client, f"--socket={sock}", *FIG1_SMOKE_GRID,
            f"--out={out}", f"--json={bench_json}", "--quiet=true"]
    deadline = time.monotonic() + 60
    while True:
        proc = subprocess.run(argv, capture_output=True, text=True)
        if proc.returncode == 0:
            break
        if time.monotonic() >= deadline:
            fail(f"campaign_submit kept failing: {proc.stderr.strip()}")
        time.sleep(0.1)
    with open(bench_json) as f:
        return json.load(f)["counters"]


def main() -> None:
    parser = argparse.ArgumentParser()
    parser.add_argument("--serve", required=True,
                        help="campaign_serve binary")
    parser.add_argument("--submit", required=True,
                        help="campaign_submit binary")
    parser.add_argument("--baseline", default="",
                        help="committed cells baseline to cmp against")
    args = parser.parse_args()

    work = tempfile.mkdtemp(prefix="serve_smoke_")
    sock = os.path.join(work, "serve.sock")
    cache = os.path.join(work, "cache.jsonl")
    hb = os.path.join(work, "hb.jsonl")
    daemon = subprocess.Popen(
        [args.serve, f"--socket={sock}", f"--cache={cache}", "--threads=2",
         f"--heartbeat={hb}", "--heartbeat-interval=0.1", "--quiet=true"])
    try:
        cold_out = os.path.join(work, "cold.jsonl")
        warm_out = os.path.join(work, "warm.jsonl")
        cold = submit(args.submit, sock, cold_out,
                      os.path.join(work, "cold.json"))
        warm = submit(args.submit, sock, warm_out,
                      os.path.join(work, "warm.json"))
    finally:
        daemon.send_signal(signal.SIGTERM)
        rc = daemon.wait(timeout=30)

    cells = cold["cells"]
    if cells <= 0:
        fail(f"empty grid served: {cold}")
    if cold["cache_misses"] != cells:
        fail(f"cold pass was not cold: {cold}")
    if warm["cache_hits"] != cells or warm["cache_misses"] != 0:
        fail(f"warm pass missed the cache: {warm}")
    if warm["sim_ops"] != 0:
        fail(f"warm pass burned simulator work: {warm}")
    if not filecmp.cmp(cold_out, warm_out, shallow=False):
        fail("cold and warm streams differ")
    if args.baseline and not filecmp.cmp(args.baseline, warm_out,
                                         shallow=False):
        fail(f"stream differs from the committed baseline {args.baseline}")
    if rc != 0:
        fail(f"daemon exited {rc} on SIGTERM")

    validate = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "trace_validate.py")
    proc = subprocess.run([sys.executable, validate, "--heartbeat", hb],
                          capture_output=True, text=True)
    if proc.returncode != 0:
        fail(f"heartbeat validation: {proc.stderr.strip() or proc.stdout}")

    print(f"serve_smoke: OK — {cells} cell(s): cold simulated all, warm "
          f"hit all with sim_ops == 0, streams byte-identical"
          + (" to the committed baseline" if args.baseline else ""))


if __name__ == "__main__":
    main()
