#!/usr/bin/env python3
"""Schema validator for observability artifacts.

Checks Chrome trace-event JSON files written by obs::write_trace_json
(``--trace``) and heartbeat JSONL files written by obs::heartbeat
(``--heartbeat``). Used by CI after the explain_trial smoke run and the
sharded-campaign smoke; exits non-zero with a pointed message on the first
schema violation.

Usage:
    trace_validate.py --trace out.trace.json [--trace more.json ...]
                      --heartbeat hb.jsonl [--heartbeat ...]
"""
import argparse
import json
import re
import sys

VALID_PHASES = {"X", "i", "C", "M"}

HEARTBEAT_FIELDS = {
    "uptime_s": (int, float),
    "cells_done": int,
    "cells_total": int,
    "trials_done": int,
    "trials_total": int,
    # Rate/eta are null when unknown (immediate first line, zero-progress
    # stall) per the util/json non-finite convention; never inf/nan tokens.
    "trials_per_sec": (int, float, type(None)),
    "eta_s": (int, float, type(None)),
    "current_cell": str,
    "rss_kb": int,
    # Identity triple: lets a supervisor attribute the file to the worker
    # it spawned without trusting the file name (fleet/supervisor.h).
    "shard": str,
    "pid": int,
    "argv_hash": str,
}

# "i/k" for workers, "fleet" for the supervisor's own aggregate heartbeat.
SHARD_RE = re.compile(r"^(\d+/\d+|fleet|serve)$")
ARGV_HASH_RE = re.compile(r"^0x[0-9a-f]+$")


def fail(msg):
    print(f"trace_validate: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def reject_nonfinite(token):
    # json.loads accepts Infinity/-Infinity/NaN by default; those tokens are
    # not JSON and downstream consumers choke on them. Heartbeat writers must
    # emit null for unknown values instead.
    raise ValueError(f"non-finite token {token!r} (emit null instead)")


def validate_trace(path):
    try:
        with open(path, "rb") as f:
            doc = json.load(f)
    except OSError as e:
        fail(f"{path}: cannot read: {e}")
    except json.JSONDecodeError as e:
        fail(f"{path}: not valid JSON: {e}")
    if not isinstance(doc, dict):
        fail(f"{path}: top level must be an object")
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: traceEvents must be a non-empty array")
    payload_events = 0
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        ph = ev.get("ph")
        if ph not in VALID_PHASES:
            fail(f"{where}: bad ph {ph!r} (want one of {sorted(VALID_PHASES)})")
        if not isinstance(ev.get("name"), str) or not ev["name"]:
            fail(f"{where}: missing/empty name")
        if not isinstance(ev.get("pid"), int):
            fail(f"{where}: missing integer pid")
        if ph != "M":
            payload_events += 1
            if not isinstance(ev.get("tid"), int):
                fail(f"{where}: missing integer tid")
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)):
                fail(f"{where}: missing numeric ts")
            if ts < 0:
                fail(f"{where}: negative ts {ts}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where}: complete event needs non-negative dur")
        if ph in ("X", "i", "C") and not isinstance(ev.get("args"), dict):
            fail(f"{where}: missing args object")
        if ph == "C" and "value" not in ev["args"]:
            fail(f"{where}: counter event needs args.value")
    if payload_events == 0:
        fail(f"{path}: only metadata events, no payload")
    print(f"trace_validate: OK {path}: {payload_events} events")


def validate_heartbeat(path):
    lines = 0
    last_uptime = -1.0
    try:
        f = open(path, "r", encoding="utf-8")
    except OSError as e:
        fail(f"{path}: cannot read: {e}")
    with f:
        for lineno, line in enumerate(f, start=1):
            line = line.strip()
            if not line:
                continue
            where = f"{path}:{lineno}"
            try:
                hb = json.loads(line, parse_constant=reject_nonfinite)
            except json.JSONDecodeError as e:
                fail(f"{where}: not valid JSON: {e}")
            except ValueError as e:
                fail(f"{where}: {e}")
            if not isinstance(hb, dict):
                fail(f"{where}: heartbeat line must be an object")
            for field, types in HEARTBEAT_FIELDS.items():
                if field not in hb:
                    fail(f"{where}: missing field {field!r}")
                if not isinstance(hb[field], types) or isinstance(
                        hb[field], bool):
                    fail(f"{where}: field {field!r} has wrong type "
                         f"({type(hb[field]).__name__})")
            for field in ("uptime_s", "trials_per_sec", "eta_s"):
                if hb[field] is not None and hb[field] < 0:
                    fail(f"{where}: negative {field}")
            if not SHARD_RE.match(hb["shard"]):
                fail(f"{where}: shard {hb['shard']!r} is not i/k, 'fleet', "
                     "or 'serve'")
            if not ARGV_HASH_RE.match(hb["argv_hash"]):
                fail(f"{where}: argv_hash {hb['argv_hash']!r} is not 0x hex")
            if hb["pid"] <= 0:
                fail(f"{where}: pid must be positive")
            if hb["uptime_s"] < last_uptime:
                fail(f"{where}: uptime_s went backwards "
                     f"({last_uptime} -> {hb['uptime_s']})")
            last_uptime = hb["uptime_s"]
            if hb["cells_total"] and hb["cells_done"] > hb["cells_total"]:
                fail(f"{where}: cells_done > cells_total")
            lines += 1
    if lines == 0:
        fail(f"{path}: no heartbeat lines")
    print(f"trace_validate: OK {path}: {lines} heartbeat lines")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--trace", action="append", default=[],
                    help="Chrome trace-event JSON file to validate")
    ap.add_argument("--heartbeat", action="append", default=[],
                    help="heartbeat JSONL file to validate")
    args = ap.parse_args()
    if not args.trace and not args.heartbeat:
        ap.error("nothing to validate (pass --trace and/or --heartbeat)")
    for path in args.trace:
        validate_trace(path)
    for path in args.heartbeat:
        validate_heartbeat(path)


if __name__ == "__main__":
    main()
