// Scenario: tasks on an embedded uniprocessor RTOS must agree on a mode
// switch (e.g. "enter degraded mode?"). The kernel schedules by priority
// with a pre-emption quantum — exactly the paper's Section 7 model. With a
// quantum of at least 8 operations, Theorem 14 guarantees every task decides
// within 12 shared-memory operations, deterministically, no matter how
// pre-emption falls.
//
// The example runs three scheduling scenarios, including the proof's worst
// case (a low-priority task pre-empted between its reads and its write).
#include <cstdio>

#include "sched/hybrid.h"

namespace {

void report(const char* label, const leancon::hybrid_result& result) {
  std::printf("%-28s decided=%s value=%d max-ops=%llu violations=%zu\n",
              label, result.all_decided ? "yes" : "NO", result.decision,
              static_cast<unsigned long long>(result.max_ops_per_process),
              result.violations.size());
}

}  // namespace

int main() {
  using namespace leancon;

  // Four tasks: a background logger (priority 0) wants mode 0; a sensor
  // task, a control task, and a watchdog (priorities 1-3) want mode 1.
  hybrid_config config;
  config.inputs = {0, 1, 1, 1};
  config.priorities = {0, 1, 2, 3};
  config.quantum = 8;

  std::printf("uniprocessor mode-switch agreement, quantum = %llu\n\n",
              static_cast<unsigned long long>(config.quantum));

  {
    auto adv = make_run_to_completion();
    report("no preemption:", run_hybrid(config, *adv));
  }
  {
    // The Theorem 14 proof scenario: the logger is descheduled right before
    // its round-1 write; the higher-priority chain must still decide, and
    // the logger adopts their value within its 12-op budget.
    auto adv = make_preempt_before_write();
    report("preempt-before-write:", run_hybrid(config, *adv));
  }
  {
    auto adv = make_random_preemption(0.5, /*salt=*/99);
    report("random preemption:", run_hybrid(config, *adv));
  }

  // The logger may also start mid-quantum (it was running other work when
  // the mode-switch vote began).
  config.initial_quantum_used = {6, 0, 0, 0};
  {
    auto adv = make_round_robin();
    report("mid-quantum start:", run_hybrid(config, *adv));
  }

  std::printf("\nTheorem 14 bound: every task decides within 12 operations"
              " when quantum >= 8.\n");
  return 0;
}
