// Visualizes one lean-consensus race: the frontiers of the a0 and a1 arrays
// over simulated time (who is ahead, and when the tie breaks), followed by a
// per-process summary. Run it a few times with different seeds to watch the
// environment's noise decide different races differently.
#include <cstdio>

#include "noise/catalog.h"
#include "sim/simulator.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace leancon;

  const std::uint64_t seed =
      argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 42;

  execution_trace trace;
  sim_config config;
  config.inputs = split_inputs(10);
  config.sched = figure1_params(make_two_point(2.0 / 3.0, 4.0 / 3.0));
  config.seed = seed;
  config.event_hook = [&trace](const trace_event& e) { trace.add(e); };

  const sim_result result = simulate(config);

  std::printf("lean-consensus race, 10 processes, {2/3, 4/3} noise,"
              " seed %llu\n\n",
              static_cast<unsigned long long>(seed));
  std::printf("%s\n", trace.render_race_chart(18, 30).c_str());
  std::printf("decision: %d at round %llu (simulated time %.2f)\n\n",
              result.decision,
              static_cast<unsigned long long>(result.first_decision_round),
              result.first_decision_time);
  std::printf("%s", trace.render_process_summary(10).c_str());
  std::printf("\nviolations: %zu (must be 0)\n", result.violations.size());
  return result.violations.empty() ? 0 : 1;
}
