// Quickstart: simulate lean-consensus among 8 processes under noisy
// scheduling and print what happened.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "noise/catalog.h"
#include "sim/simulator.h"

int main() {
  using namespace leancon;

  // 1. Describe the environment: a Poisson scheduler (exponential
  //    interarrival noise), no adversary delays, no failures — the exact
  //    Figure 1 setup from the paper.
  sim_config config;
  config.inputs = split_inputs(8);  // processes 0..7, alternating 0/1 inputs
  config.sched = figure1_params(make_exponential(1.0));
  config.seed = 2026;

  // 2. Run one execution. Safety (agreement, validity, Lemmas 2-4) is
  //    re-checked operation by operation; `violations` must stay empty.
  const sim_result result = simulate(config);

  // 3. Inspect the outcome.
  std::printf("decided value        : %d\n", result.decision);
  std::printf("first decision round : %llu (simulated time %.2f)\n",
              static_cast<unsigned long long>(result.first_decision_round),
              result.first_decision_time);
  std::printf("last decision round  : %llu\n",
              static_cast<unsigned long long>(result.last_decision_round));
  std::printf("total operations     : %llu\n",
              static_cast<unsigned long long>(result.total_ops));
  std::printf("safety violations    : %zu\n", result.violations.size());

  std::printf("\nper-process outcomes:\n");
  for (std::size_t i = 0; i < result.processes.size(); ++i) {
    const auto& p = result.processes[i];
    std::printf("  p%zu: input=%d decided=%d ops=%llu rounds=%llu"
                " pref-switches=%llu\n",
                i, config.inputs[i], p.decision,
                static_cast<unsigned long long>(p.ops),
                static_cast<unsigned long long>(p.round_reached),
                static_cast<unsigned long long>(p.preference_switches));
  }
  return result.violations.empty() && result.all_live_decided ? 0 : 1;
}
