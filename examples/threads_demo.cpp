// Native execution: lean-consensus (with the bounded-space combined
// fallback) on real std::thread workers over std::atomic registers. The
// "noisy scheduler" here is the actual machine — OS pre-emption, cache
// traffic — optionally thickened with injected busy-wait noise drawn from
// any catalog distribution.
#include <cstdio>

#include "noise/catalog.h"
#include "runtime/thread_consensus.h"

int main() {
  using namespace leancon;

  std::printf("native std::atomic lean-consensus, 4 threads, inputs"
              " 0/1/0/1\n\n");

  for (int run = 0; run < 5; ++run) {
    thread_run_config config;
    config.inputs = {0, 1, 0, 1};
    config.seed = 40 + static_cast<std::uint64_t>(run);
    // Inject exponential think-time so the race disperses even on a single
    // hardware thread (mirrors the paper's noisy-scheduling assumption).
    config.injected_noise = make_exponential(1.0);
    config.noise_scale_ns = 150.0;

    const thread_run_result result = run_threads(config);
    std::printf("run %d: decision=%d agreement=%s steps:[", run,
                result.decision, result.agreement ? "yes" : "NO");
    for (std::size_t i = 0; i < result.steps.size(); ++i) {
      std::printf("%s%llu", i ? " " : "",
                  static_cast<unsigned long long>(result.steps[i]));
    }
    std::printf("] rounds:[");
    for (std::size_t i = 0; i < result.lean_rounds.size(); ++i) {
      std::printf("%s%llu", i ? " " : "",
                  static_cast<unsigned long long>(result.lean_rounds[i]));
    }
    std::printf("] backup=%llu wall=%.3fms\n",
                static_cast<unsigned long long>(result.backup_entries),
                result.wall_ms);
    if (!result.agreement || !result.all_decided) return 1;
  }
  std::printf("\nall runs decided with agreement; validity follows because"
              " each decision\nwas 0 or 1 and both inputs were present.\n");
  return 0;
}
